# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test test-short bench experiments experiments-quick examples fuzz vet clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/exper/ ./internal/stream/

test-short:
	$(GO) test -short ./...

# Micro-benchmarks and the E1–E12 tables via testing.B (quick mode).
bench:
	$(GO) test -bench=. -benchmem ./...

# Full-fidelity experiment suite (minutes).
experiments:
	$(GO) run ./cmd/histbench -run all -v

experiments-quick:
	$(GO) run ./cmd/histbench -run all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/modelselection
	$(GO) run ./examples/selectivity
	$(GO) run ./examples/streamcheck
	$(GO) run ./examples/shapeaudit
	$(GO) run ./examples/abcompare

# Short fuzz pass over the structural fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzFromBoundaries -fuzztime=15s ./internal/intervals/
	$(GO) test -fuzz=FuzzDomainAlgebra -fuzztime=15s ./internal/intervals/
	$(GO) test -fuzz=FuzzProjectTV -fuzztime=15s ./internal/histdp/

clean:
	$(GO) clean ./...
