# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test test-short conformance bench bench-json bench-ingest-json bench-gate soak-smoke experiments experiments-quick examples fuzz fuzz-smoke race test-race vet lint clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# Static analysis beyond go vet: staticcheck plus a known-vulnerability
# scan, at pinned versions so CI runs are reproducible. Both tools are
# fetched by `go run`, so this target needs network access (it runs as
# its own CI job; locally it works wherever the module proxy is
# reachable).
STATICCHECK_VERSION ?= v0.5.1
GOVULNCHECK_VERSION ?= v1.1.4

lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

test: vet conformance
	$(GO) test ./...

# Cross-engine conformance battery, with the engine set named EXPLICITLY:
# a registered engine missing from this list — or a listed engine missing
# from the registry — fails loudly instead of silently shrinking the
# table. Extend the list when registering a new engine.
CONFORMANCE_ENGINES ?= adk,cdkl22

conformance:
	$(GO) test ./internal/core/ -run 'TestConformance' -conformance-engines=$(CONFORMANCE_ENGINES) -count=1

# Full race-detector pass; the sieve fan-out in internal/core is the
# main concurrent code path.
race:
	$(GO) test -race ./...

test-race: race

test-short:
	$(GO) test -short ./...

# Micro-benchmarks and the E1–E14 tables via testing.B (quick mode).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the recorded hot-path perf numbers (BENCH_hotpath.json).
# The pre-pooling baseline embedded in cmd/histbench is preserved.
bench-json:
	$(GO) run ./cmd/histbench -hotpath-json BENCH_hotpath.json

# Regenerate the recorded streaming-ingestion throughput numbers
# (BENCH_ingest.json).
bench-ingest-json:
	$(GO) run ./cmd/histbench -ingest-json BENCH_ingest.json

# CI perf gate: re-measure the hot-path micro-benchmarks and fail when
# allocs/op regressed more than 10% — or ns/op more than 15% — against
# the committed report, comparing only entries with equal gomaxprocs.
# Then the ingest gate: events/s must stay within 30% of the committed
# report and the 4-way soak above an absolute 1M events/s floor.
bench-gate:
	$(GO) run ./cmd/histbench -hotpath-gate BENCH_hotpath.json
	$(GO) run ./cmd/histbench -ingest-gate BENCH_ingest.json

# Short-mode ingest soak under the race detector: concurrent writers,
# a racing snapshotter, and the conservation invariant (every
# acknowledged event lands in exactly one tally).
soak-smoke:
	$(GO) test -race -short -count=1 -run 'TestSoakIngestConservation' ./internal/stream/

# Full-fidelity experiment suite (minutes).
experiments:
	$(GO) run ./cmd/histbench -run all -v

experiments-quick:
	$(GO) run ./cmd/histbench -run all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/modelselection
	$(GO) run ./examples/selectivity
	$(GO) run ./examples/streamcheck
	$(GO) run ./examples/shapeaudit
	$(GO) run ./examples/abcompare

# Short fuzz pass over the structural fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzEngineSelection -fuzztime=15s ./internal/serve/
	$(GO) test -fuzz=FuzzFromBoundaries -fuzztime=15s ./internal/intervals/
	$(GO) test -fuzz=FuzzDomainAlgebra -fuzztime=15s ./internal/intervals/
	$(GO) test -fuzz=FuzzProjectTV -fuzztime=15s ./internal/histdp/
	$(GO) test -fuzz=FuzzSerializeRoundTrip -fuzztime=15s ./histtest/
	$(GO) test -fuzz=FuzzDenseSparseEquivalence -fuzztime=15s ./internal/oracle/

# Quick fuzz smoke for CI: the two differential targets that guard the
# wire format and the dense/sparse counting crossover.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSerializeRoundTrip -fuzztime=10s ./histtest/
	$(GO) test -fuzz=FuzzDenseSparseEquivalence -fuzztime=10s ./internal/oracle/

clean:
	$(GO) clean ./...
