# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test test-short bench bench-json experiments experiments-quick examples fuzz fuzz-smoke race test-race vet clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test: vet
	$(GO) test ./...

# Full race-detector pass; the sieve fan-out in internal/core is the
# main concurrent code path.
race:
	$(GO) test -race ./...

test-race: race

test-short:
	$(GO) test -short ./...

# Micro-benchmarks and the E1–E12 tables via testing.B (quick mode).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the recorded hot-path perf numbers (BENCH_hotpath.json).
# The pre-pooling baseline embedded in cmd/histbench is preserved.
bench-json:
	$(GO) run ./cmd/histbench -hotpath-json BENCH_hotpath.json

# Full-fidelity experiment suite (minutes).
experiments:
	$(GO) run ./cmd/histbench -run all -v

experiments-quick:
	$(GO) run ./cmd/histbench -run all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/modelselection
	$(GO) run ./examples/selectivity
	$(GO) run ./examples/streamcheck
	$(GO) run ./examples/shapeaudit
	$(GO) run ./examples/abcompare

# Short fuzz pass over the structural fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzFromBoundaries -fuzztime=15s ./internal/intervals/
	$(GO) test -fuzz=FuzzDomainAlgebra -fuzztime=15s ./internal/intervals/
	$(GO) test -fuzz=FuzzProjectTV -fuzztime=15s ./internal/histdp/
	$(GO) test -fuzz=FuzzSerializeRoundTrip -fuzztime=15s ./histtest/
	$(GO) test -fuzz=FuzzDenseSparseEquivalence -fuzztime=15s ./internal/oracle/

# Quick fuzz smoke for CI: the two differential targets that guard the
# wire format and the dense/sparse counting crossover.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSerializeRoundTrip -fuzztime=10s ./histtest/
	$(GO) test -fuzz=FuzzDenseSparseEquivalence -fuzztime=10s ./internal/oracle/

clean:
	$(GO) clean ./...
