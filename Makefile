# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test test-short conformance conformance-list bench bench-json bench-ingest-json bench-gate soak-smoke experiments experiments-quick examples fuzz fuzz-smoke race test-race vet lint lint-tools cover cover-json clean FORCE

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# Static analysis beyond go vet: staticcheck plus a known-vulnerability
# scan, at pinned versions so CI runs are reproducible. Tool binaries are
# installed once into $(TOOLBIN) by lint-tools — NOT re-fetched by `go
# run` on every lint — so the network is only touched on a cold cache,
# the installed binaries land in CI's setup-go module/build cache, and a
# fetch failure (proxy down, checksum mismatch) is reported as exactly
# that instead of masquerading as a lint finding.
STATICCHECK_VERSION ?= v0.5.1
GOVULNCHECK_VERSION ?= v1.1.4
TOOLBIN ?= $(CURDIR)/.tools

$(TOOLBIN)/staticcheck:
	@GOBIN=$(TOOLBIN) $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) \
		|| { echo "lint: TOOL FETCH FAILED for staticcheck@$(STATICCHECK_VERSION) (network/module proxy problem, NOT a lint finding)" >&2; exit 1; }

$(TOOLBIN)/govulncheck:
	@GOBIN=$(TOOLBIN) $(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) \
		|| { echo "lint: TOOL FETCH FAILED for govulncheck@$(GOVULNCHECK_VERSION) (network/module proxy problem, NOT a lint finding)" >&2; exit 1; }

lint-tools: $(TOOLBIN)/staticcheck $(TOOLBIN)/govulncheck

lint: lint-tools
	$(TOOLBIN)/staticcheck ./...
	$(TOOLBIN)/govulncheck ./...

test: vet conformance
	$(GO) test ./...

# Cross-engine conformance battery, with the engine set named EXPLICITLY:
# a registered engine missing from this list — or a listed engine missing
# from the registry — fails loudly instead of silently shrinking the
# table. Extend the list when registering a new engine, and keep every
# declaration in sync — `make conformance-list` diffs the Makefile
# defaults here, every CI workflow occurrence, and the in-code
# registries (core.Engines, serve.Workloads), failing on any drift.
CONFORMANCE_ENGINES ?= adk,cdkl22
CONFORMANCE_WORKLOADS ?= histogram,closeness

conformance:
	$(GO) test ./internal/core/ -run 'TestConformance' -conformance-engines=$(CONFORMANCE_ENGINES) -count=1

conformance-list:
	$(GO) run ./cmd/histbench -conformance-list .

# Full race-detector pass; the sieve fan-out in internal/core is the
# main concurrent code path.
race:
	$(GO) test -race ./...

test-race: race

test-short:
	$(GO) test -short ./...

# Micro-benchmarks and the E1–E14 tables via testing.B (quick mode).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the recorded hot-path perf numbers (BENCH_hotpath.json).
# The pre-pooling baseline embedded in cmd/histbench is preserved.
bench-json:
	$(GO) run ./cmd/histbench -hotpath-json BENCH_hotpath.json

# Regenerate the recorded streaming-ingestion throughput numbers
# (BENCH_ingest.json).
bench-ingest-json:
	$(GO) run ./cmd/histbench -ingest-json BENCH_ingest.json

# CI perf gate: re-measure the hot-path micro-benchmarks and fail when
# allocs/op regressed more than 10% — or ns/op more than 15% — against
# the committed report, comparing only entries with equal gomaxprocs.
# Then the ingest gate: events/s must stay within 30% of the committed
# report and the 4-way soak above an absolute 1M events/s floor.
bench-gate:
	$(GO) run ./cmd/histbench -hotpath-gate BENCH_hotpath.json
	$(GO) run ./cmd/histbench -ingest-gate BENCH_ingest.json

# Short-mode ingest soak under the race detector: concurrent writers,
# a racing snapshotter, and the conservation invariant (every
# acknowledged event lands in exactly one tally).
soak-smoke:
	$(GO) test -race -short -count=1 -run 'TestSoakIngestConservation' ./internal/stream/

# Full-fidelity experiment suite (minutes).
experiments:
	$(GO) run ./cmd/histbench -run all -v

experiments-quick:
	$(GO) run ./cmd/histbench -run all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/modelselection
	$(GO) run ./examples/selectivity
	$(GO) run ./examples/streamcheck
	$(GO) run ./examples/shapeaudit
	$(GO) run ./examples/abcompare

# Fuzz pass over the structural fuzz targets. FUZZTIME is per target:
# the default 15s is the local/CI smoke budget; the nightly workflow
# runs the same list at 5m per target with the discovered corpus cached
# across runs (see .github/workflows/nightly.yml).
FUZZTIME ?= 15s

fuzz:
	$(GO) test -fuzz=FuzzEngineSelection -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzClosenessDecoder -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzFromBoundaries -fuzztime=$(FUZZTIME) ./internal/intervals/
	$(GO) test -fuzz=FuzzDomainAlgebra -fuzztime=$(FUZZTIME) ./internal/intervals/
	$(GO) test -fuzz=FuzzProjectTV -fuzztime=$(FUZZTIME) ./internal/histdp/
	$(GO) test -fuzz=FuzzSerializeRoundTrip -fuzztime=$(FUZZTIME) ./histtest/
	$(GO) test -fuzz=FuzzDenseSparseEquivalence -fuzztime=$(FUZZTIME) ./internal/oracle/

# Quick fuzz smoke for CI: the two differential targets that guard the
# wire format and the dense/sparse counting crossover.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSerializeRoundTrip -fuzztime=10s ./histtest/
	$(GO) test -fuzz=FuzzDenseSparseEquivalence -fuzztime=10s ./internal/oracle/

# Coverage ratchet: measure statement coverage and fail when it drops
# more than 1pt — total or per-package — below the committed
# COVERAGE.json floor. cover-json regenerates the floor (commit the
# result when coverage legitimately moves).
COVERPROFILE ?= cover.out

$(COVERPROFILE): FORCE
	$(GO) test -count=1 -coverprofile=$(COVERPROFILE) ./...

cover: $(COVERPROFILE)
	$(GO) run ./cmd/histbench -cover-profile $(COVERPROFILE) -cover-gate COVERAGE.json

cover-json: $(COVERPROFILE)
	$(GO) run ./cmd/histbench -cover-profile $(COVERPROFILE) -cover-json COVERAGE.json

FORCE:

clean:
	$(GO) clean ./...
	rm -f $(COVERPROFILE)
	rm -rf $(TOOLBIN)
