package histtest

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestSourcesDeterministicAcrossWorkers(t *testing.T) {
	// TestSources unlocks the parallel sieve path; the verdict must be
	// identical at every worker count.
	h := fourBucket(t, 1024)
	cfg := core.PracticalConfig()
	cfg.SieveReps = 5
	mk := func(stream uint64) Source { return h.Sampler(900 + stream) }
	run := func(workers int) Verdict {
		v, err := TestSources(mk, 1024, 4, 0.8, Options{Seed: 9, Workers: workers, Config: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	serial := run(1)
	for _, w := range []int{0, 2, 8} {
		if got := run(w); got != serial {
			t.Fatalf("workers=%d verdict %+v differs from serial %+v", w, got, serial)
		}
	}
	if !serial.IsKHistogram {
		t.Fatalf("4-histogram rejected: %+v", serial)
	}
}

func TestSamplesUsedReportsDrawCount(t *testing.T) {
	// A dataset far below the budget must come back as ErrNeedMoreSamples
	// with Used equal to the replay's actual draw count.
	h := fourBucket(t, 256)
	src := h.Sampler(77)
	data := make([]int, 500)
	for i := range data {
		data[i] = src()
	}
	_, err := TestSamples(data, 256, 4, 0.5, Options{Seed: 3})
	var need *ErrNeedMoreSamples
	if !errors.As(err, &need) {
		t.Fatalf("err = %v, want *ErrNeedMoreSamples", err)
	}
	if need.Have != len(data) {
		t.Fatalf("Have = %d, want %d", need.Have, len(data))
	}
	if need.Used != len(data) {
		t.Fatalf("Used = %d, want the %d draws actually consumed", need.Used, len(data))
	}
}

func TestSamplesUnrelatedPanicPropagates(t *testing.T) {
	// Regression test: a panic that is NOT the replay-exhaustion sentinel
	// must propagate even when the replay happens to be exhausted at that
	// moment. Previously the recover discriminated on Remaining() == 0
	// and silently misreported any coinciding panic as a small dataset.
	const n, k = 64, 2
	const eps = 0.5
	cfg := core.PracticalConfig()

	// Dry run to find the exact partition+learn budget, then record
	// exactly that many draws so the dataset runs dry at sieve entry.
	d := dist.Uniform(n)
	dryRes, err := core.Test(oracle.NewSampler(d, rng.New(600)), rng.New(601), k, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := dryRes.Trace.PartitionSamples + dryRes.Trace.LearnSamples
	data := oracle.DrawN(oracle.NewSampler(d, rng.New(600)), int(cut))

	// Sabotage the sieve: a negative Poisson mean panics inside rng, with
	// the replay exhausted at exactly that point.
	bad := cfg
	bad.SieveMFactor = -1
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unrelated panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "rng: Poisson with negative or NaN mean" {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	v, err := TestSamples(data, n, k, eps, Options{Seed: 601, Config: &bad})
	t.Fatalf("TestSamples returned (%+v, %v), want the rng panic to propagate", v, err)
}
