package histtest

import "fmt"

// SelectOptions tune SmallestK.
type SelectOptions struct {
	// Options are passed to each underlying tester invocation.
	Options
	// Reps is the number of tester invocations per k, decided by majority
	// (default 3). Raising it stabilizes the search at the cost of samples.
	Reps int
	// KMax caps the search (default n). If no k <= KMax passes, SmallestK
	// returns KMax+1.
	KMax int
}

// SelectResult reports a model-selection run.
type SelectResult struct {
	// K is the smallest accepted bucket count (KMax+1 if none passed).
	K int
	// SamplesUsed is the total sample consumption of the search.
	SamplesUsed int64
	// Probed lists every k that was tested, in order.
	Probed []int
}

// SmallestK finds the smallest k for which the distribution behind src
// passes the k-histogram test at distance ε — the model-selection loop of
// the paper's introduction (Section 1.1): doubling search on k followed by
// binary refinement, with each decision a majority over Reps tester runs.
//
// The returned k satisfies, with high probability, dTV(D, H_k) < ε (the
// accepted model is adequate) while H_{k/2-ish} was still rejected — i.e.
// k is within a factor ~2 and distance slack ε of the true complexity.
// Feeding k to BuildHistogram(·, ·, k, BuildVOptimal) then yields a sketch
// with the accuracy/conciseness trade-off the paper describes.
func SmallestK(src Source, n int, eps float64, sel SelectOptions) (*SelectResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("histtest: n = %d must be positive", n)
	}
	reps := sel.Reps
	if reps < 1 {
		reps = 3
	}
	kMax := sel.KMax
	if kMax < 1 || kMax > n {
		kMax = n
	}
	res := &SelectResult{}
	seed := sel.Seed
	if seed == 0 {
		seed = 1
	}

	passes := func(k int) (bool, error) {
		accepts := 0
		for i := 0; i < reps; i++ {
			opt := sel.Options
			opt.Seed = seed
			seed++ // fresh tester randomness per invocation
			v, err := TestSource(src, n, k, eps, opt)
			if err != nil {
				return false, err
			}
			res.SamplesUsed += v.SamplesUsed
			if v.IsKHistogram {
				accepts++
			}
		}
		res.Probed = append(res.Probed, k)
		return 2*accepts > reps, nil
	}

	// Doubling phase.
	lo := 0 // largest known-rejected k (0 = none)
	hi := -1
	for k := 1; ; k *= 2 {
		if k > kMax {
			k = kMax
		}
		ok, err := passes(k)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = k
			break
		}
		lo = k
		if k == kMax {
			res.K = kMax + 1
			return res, nil
		}
	}
	// Binary refinement on (lo, hi].
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := passes(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.K = hi
	return res, nil
}
