// Package client is the typed Go client of the histd serving layer
// (cmd/histd): the JSON wire types of the /v1 API and an http.Client
// wrapper with retry/backoff on admission-control pushback (429) and
// drain (503).
//
// The wire schema is shared with the server (internal/serve marshals
// exactly these structs), so a round trip through the service carries
// the full tester verdict — including the stage-level Trace — without
// loss: a served run is bit-identical to a direct core.Test call with
// the same request parameters.
package client

// HistogramSpec is the wire form of a piecewise-constant distribution
// over [0, n): interior cut points (ascending, in (0, n)) and one mass
// per bucket (len(Masses) == len(Cuts)+1; masses are normalized
// server-side). It matches the JSON sketch format of
// histtest.Histogram.MarshalJSON.
type HistogramSpec struct {
	N      int       `json:"n"`
	Cuts   []int     `json:"cuts,omitempty"`
	Masses []float64 `json:"masses"`
}

// TestRequest asks the server to run the k-histogram tester once.
// Exactly one sample source must be set: Samples (a recorded dataset,
// replayed), Spec (an inline distribution the server samples from), or
// Sampler (the ID of a spec previously registered via RegisterSampler).
type TestRequest struct {
	// Samples is a recorded dataset of values in [0, N). The server
	// replays it; if the tester's budget exceeds the dataset the request
	// fails with ErrCodeNeedMoreSamples.
	Samples []int `json:"samples,omitempty"`
	// Spec is an inline distribution to draw i.i.d. samples from.
	Spec *HistogramSpec `json:"spec,omitempty"`
	// Sampler references a registered spec by ID.
	Sampler string `json:"sampler,omitempty"`
	// SamplerSeed seeds the sampler's draw stream (Spec/Sampler sources;
	// 0 means 1). Together with Seed it makes a served run reproducible.
	SamplerSeed uint64 `json:"sampler_seed,omitempty"`

	// N is the domain size. Required with Samples; optional otherwise
	// (it must match the spec's domain when both are set).
	N int `json:"n,omitempty"`
	// K is the histogram class parameter.
	K int `json:"k"`
	// Eps is the distance parameter ε in (0, 1].
	Eps float64 `json:"eps"`

	// Seed seeds the tester's internal randomness (0 means 1), matching
	// histtest.Options.Seed semantics.
	Seed uint64 `json:"seed,omitempty"`
	// Scale multiplies every stage's sample budget (0 means 1).
	Scale float64 `json:"scale,omitempty"`
	// Paper switches to the literal paper constants.
	Paper bool `json:"paper,omitempty"`
	// Workers bounds the sieve's replicate fan-out WITHIN this request
	// (0 means serial). The server caps it at its -sieve-workers limit;
	// the verdict is identical for every value.
	Workers int `json:"workers,omitempty"`
	// CountStrategy selects how Poissonized count vectors are
	// synthesized: "" or "exact" draws every sample individually (the
	// default, bit-identical to historical runs), "closed-form"
	// synthesizes counts from the sampler's run structure in
	// O(k + occupied) RNG calls per batch. Spec/Sampler sources only;
	// replay datasets always use the exact path (samples are data, not
	// randomness), so closed-form silently falls back there.
	CountStrategy string `json:"count_strategy,omitempty"`
	// Engine selects the tester implementation: "" or "adk" runs the
	// source paper's Algorithm 1, "cdkl22" the CDKL'22 near-optimal
	// tester (sieve-free; roughly an order of magnitude fewer samples
	// at equal operating characteristics — see README). Unknown names
	// are rejected with 400 at admission time, never silently replaced
	// by the default.
	Engine string `json:"engine,omitempty"`
	// TimeoutMS caps the request's server-side wall clock; on expiry the
	// run is cancelled at the tester's next cancellation point. 0 means
	// the server default; the server clamps it to its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Trace is the wire form of the tester's core.Trace: stage-level sample
// accounting, sieve activity, and the deciding statistics.
type Trace struct {
	N              int     `json:"n"`
	K              int     `json:"k"`
	B              float64 `json:"b"`
	SieveRoundsRun int     `json:"sieve_rounds_run"`

	PartitionSamples int64 `json:"partition_samples"`
	LearnSamples     int64 `json:"learn_samples"`
	SieveSamples     int64 `json:"sieve_samples"`
	TestSamples      int64 `json:"test_samples"`

	RemovedHeavy    int     `json:"removed_heavy"`
	HeavySingletons int     `json:"heavy_singletons"`
	RemovedRounds   int     `json:"removed_rounds"`
	RemovedMass     float64 `json:"removed_mass"`

	CheckRelaxed float64 `json:"check_relaxed"`
	FinalZ       float64 `json:"final_z"`
	FinalThresh  float64 `json:"final_thresh"`

	RejectStage  string `json:"reject_stage,omitempty"`
	RejectReason string `json:"reject_reason,omitempty"`
}

// TestResult is the verdict of one served tester run.
type TestResult struct {
	// Index identifies the sub-request within a streamed batch (0 for
	// single-request calls). Batch results arrive in completion order.
	Index int `json:"index"`
	// Accept is the tester's decision.
	Accept bool `json:"accept"`
	// SamplesUsed is the total number of oracle draws consumed.
	SamplesUsed int64 `json:"samples_used"`
	// Stage and Detail explain a rejection ("" on accept).
	Stage  string `json:"stage,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Trace is the full stage-level trace (nil on the trivial k >= n
	// accept path, which runs no stages).
	Trace *Trace `json:"trace,omitempty"`
	// Closeness carries the full two-sample verdict when the run was a
	// /v1/closeness request (nil for ordinary one-sample tests).
	Closeness *ClosenessVerdict `json:"closeness,omitempty"`
	// ElapsedMS is the server-side wall clock of the run in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Err reports a per-item failure inside a streamed batch (the HTTP
	// status is already committed when a batch item fails). Empty on
	// success; Code classifies it.
	Err  string `json:"err,omitempty"`
	Code string `json:"code,omitempty"`
}

// Error codes returned in ErrorResponse.Code / TestResult.Code.
const (
	// ErrCodeBadRequest marks a malformed or invalid request.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeNeedMoreSamples marks a replay dataset smaller than the
	// tester's budget.
	ErrCodeNeedMoreSamples = "need_more_samples"
	// ErrCodeOverloaded marks admission-control pushback: the queue is
	// full. Retry after the Retry-After hint.
	ErrCodeOverloaded = "overloaded"
	// ErrCodeDraining marks a server that is shutting down.
	ErrCodeDraining = "draining"
	// ErrCodeCanceled marks a run cancelled by the client or cut off by
	// its deadline.
	ErrCodeCanceled = "canceled"
	// ErrCodeUnknownSampler marks a Sampler ID that is not registered.
	ErrCodeUnknownSampler = "unknown_sampler"
	// ErrCodeNotFound marks a stream ID that is not registered (it may
	// have been TTL-evicted).
	ErrCodeNotFound = "not_found"
	// ErrCodeInternal marks any other server-side failure.
	ErrCodeInternal = "internal"
)

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// BatchRequest is the body of /v1/test/stream: sub-requests run
// concurrently on the server's worker pool and results stream back as
// JSON lines in completion order, each tagged with its Index.
type BatchRequest struct {
	Requests []TestRequest `json:"requests"`
}

// RegisterResponse is the body returned by /v1/samplers.
type RegisterResponse struct {
	// ID names the registered spec in TestRequest.Sampler.
	ID string `json:"id"`
	// Buckets is the registered distribution's piece count.
	Buckets int `json:"buckets"`
	// N is the registered distribution's domain size.
	N int `json:"n"`
}
