package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer fails the first fail attempts with status (plus a
// Retry-After hint) and then succeeds.
func fakeServer(t *testing.T, fail int, status int, attempts *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if n <= int64(fail) {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(ErrorResponse{Code: ErrCodeOverloaded, Error: "busy"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TestResult{Accept: true, SamplesUsed: 42})
	}))
}

// retryClient returns a client with a tight, test-friendly backoff.
func retryClient(url string) *Client {
	c := New(url)
	c.BaseBackoff = 5 * time.Millisecond
	c.MaxBackoff = 20 * time.Millisecond // clamps the server's 1s Retry-After hint
	return c
}

func TestRetriesOn429(t *testing.T) {
	var attempts atomic.Int64
	hs := fakeServer(t, 2, http.StatusTooManyRequests, &attempts)
	defer hs.Close()

	res, err := retryClient(hs.URL).Test(context.Background(), TestRequest{K: 2, Eps: 0.5})
	if err != nil {
		t.Fatalf("expected the retries to succeed, got %v", err)
	}
	if !res.Accept || res.SamplesUsed != 42 {
		t.Fatalf("unexpected result %+v", res)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRetriesOn503(t *testing.T) {
	var attempts atomic.Int64
	hs := fakeServer(t, 1, http.StatusServiceUnavailable, &attempts)
	defer hs.Close()

	if _, err := retryClient(hs.URL).Test(context.Background(), TestRequest{K: 2, Eps: 0.5}); err != nil {
		t.Fatalf("expected the retry to succeed, got %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

func TestRetryAfterHintIsHonoredButClamped(t *testing.T) {
	var attempts atomic.Int64
	hs := fakeServer(t, 1, http.StatusTooManyRequests, &attempts)
	defer hs.Close()

	start := time.Now()
	if _, err := retryClient(hs.URL).Test(context.Background(), TestRequest{K: 2, Eps: 0.5}); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	// The server hinted Retry-After: 1s; MaxBackoff clamps the wait to
	// 20ms, so the whole call must finish far below a second.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("call took %s; the Retry-After hint was not clamped", elapsed)
	}
}

func TestNoRetryOnBadRequest(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{Code: ErrCodeBadRequest, Error: "nope"})
	}))
	defer hs.Close()

	_, err := retryClient(hs.URL).Test(context.Background(), TestRequest{})
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("expected an APIError, got %v", err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Code != ErrCodeBadRequest || apiErr.Temporary() {
		t.Fatalf("unexpected APIError %+v", apiErr)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a non-retryable failure, want 1", got)
	}
}

func TestRetriesExhaust(t *testing.T) {
	var attempts atomic.Int64
	hs := fakeServer(t, 1000, http.StatusTooManyRequests, &attempts)
	defer hs.Close()

	c := retryClient(hs.URL)
	c.MaxRetries = 2
	_, err := c.Test(context.Background(), TestRequest{K: 2, Eps: 0.5})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("expected the final 429 to surface, got %v", err)
	}
	if got := attempts.Load(); got != 3 { // 1 try + 2 retries
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestContextCancelDuringBackoff(t *testing.T) {
	var attempts atomic.Int64
	hs := fakeServer(t, 1000, http.StatusTooManyRequests, &attempts)
	defer hs.Close()

	c := retryClient(hs.URL)
	c.BaseBackoff = 10 * time.Second // park the retry loop in its wait
	c.MaxBackoff = 10 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Test(ctx, TestRequest{K: 2, Eps: 0.5})
	if err != context.DeadlineExceeded {
		t.Fatalf("expected the context to cut the backoff short, got %v", err)
	}
}

// TestHintedWaitsDoNotInflateBackoff: attempts that waited on a server
// Retry-After hint must not advance the exponential backoff state. Before
// the fix, backoff doubled unconditionally, so a streak of hinted
// pushbacks silently inflated the exponent and the first hint-less wait
// jumped to an outsized value.
func TestHintedWaitsDoNotInflateBackoff(t *testing.T) {
	c := &Client{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Minute, MaxRetries: 10}
	var stamps []time.Time
	n := 0
	err := c.retry(context.Background(), func() error {
		stamps = append(stamps, time.Now())
		n++
		switch {
		case n <= 3:
			// Hinted pushback: wait 5ms, leave the exponential state alone.
			return &APIError{Status: http.StatusTooManyRequests, Code: ErrCodeOverloaded, RetryAfter: 5 * time.Millisecond}
		case n == 4:
			// First hint-less pushback: must wait BaseBackoff, not
			// BaseBackoff << 3.
			return &APIError{Status: http.StatusTooManyRequests, Code: ErrCodeOverloaded}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if n != 5 {
		t.Fatalf("attempt ran %d times, want 5", n)
	}
	gap := stamps[4].Sub(stamps[3])
	if gap < 10*time.Millisecond {
		t.Fatalf("hint-less wait was %s, below BaseBackoff", gap)
	}
	// With the inflation bug the wait would be 10ms << 3 = 80ms; allow
	// generous scheduler slack below that.
	if gap >= 60*time.Millisecond {
		t.Fatalf("hint-less wait was %s; hinted attempts inflated the exponential state", gap)
	}
}

// TestParseRetryAfter covers both header forms RFC 9110 allows:
// delay-seconds and HTTP-date (which decodeAPIError used to drop).
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("120"); d != 120*time.Second {
		t.Fatalf("parseRetryAfter(\"120\") = %s, want 120s", d)
	}
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= time.Second || d > 3*time.Second {
		t.Fatalf("parseRetryAfter(%q) = %s, want a positive sub-3s delay", future, d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	for _, v := range []string{"", "0", "-5", "soon", past} {
		if d := parseRetryAfter(v); d != 0 {
			t.Fatalf("parseRetryAfter(%q) = %s, want 0 (no hint)", v, d)
		}
	}
}

// TestRetryAfterHTTPDateReachesAPIError: the date form survives the full
// decodeAPIError path, not just the parser.
func TestRetryAfterHTTPDateReachesAPIError(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ErrorResponse{Code: ErrCodeDraining, Error: "draining"})
	}))
	defer hs.Close()

	c := New(hs.URL)
	c.MaxRetries = -1 // surface the first pushback instead of retrying
	_, err := c.Test(context.Background(), TestRequest{K: 2, Eps: 0.5})
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("expected an APIError, got %v", err)
	}
	if apiErr.RetryAfter <= 0 || apiErr.RetryAfter > 2*time.Second {
		t.Fatalf("HTTP-date Retry-After was not decoded: %+v", apiErr)
	}
}

func TestStreamDecoding(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var batch BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			t.Errorf("decoding batch server-side: %v", err)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		// Completion order is not request order.
		for _, i := range []int{2, 0, 1} {
			enc.Encode(TestResult{Index: i, Accept: i%2 == 0})
		}
	}))
	defer hs.Close()

	got, err := New(hs.URL).TestBatch(context.Background(), make([]TestRequest, 3))
	if err != nil {
		t.Fatalf("batch failed: %v", err)
	}
	for i, res := range got {
		if res.Index != i {
			t.Fatalf("results not sorted by index: %+v", got)
		}
		if res.Accept != (i%2 == 0) {
			t.Fatalf("result %d lost its payload: %+v", i, res)
		}
	}
}

func TestAPIErrorToleratesNonJSONBodies(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, "upstream exploded")
	}))
	defer hs.Close()

	_, err := New(hs.URL).Test(context.Background(), TestRequest{})
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("expected an APIError, got %v", err)
	}
	if apiErr.Status != http.StatusBadGateway || apiErr.Message != "upstream exploded" {
		t.Fatalf("unexpected APIError %+v", apiErr)
	}
}
