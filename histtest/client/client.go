package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx response from the server, decoded from its JSON
// error body.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the wire error code (ErrCode*).
	Code string
	// Message is the server's human-readable explanation.
	Message string
	// RetryAfter is the server's Retry-After hint, when it sent one.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("histd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Temporary reports whether the failure is admission-control pushback
// (429) or drain (503) — the conditions Client retries with backoff.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Client is a typed client of the histd HTTP API with retry/backoff on
// admission-control pushback: a 429 (queue full) or 503 (draining)
// response is retried up to MaxRetries times, waiting the server's
// Retry-After hint (clamped to MaxBackoff) or an exponential backoff
// when the hint is absent. All other failures surface immediately.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8765".
	BaseURL string
	// HTTPClient is the underlying transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds the retry attempts after the first try (default 5;
	// negative disables retrying).
	MaxRetries int
	// BaseBackoff seeds the exponential backoff used when the server
	// sends no Retry-After hint (default 100ms). Doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff clamps every wait, hinted or not (default 5s).
	MaxBackoff time.Duration
}

// New returns a Client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	if c.MaxRetries == 0 {
		return 5
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c *Client) baseBackoff() time.Duration {
	if c.BaseBackoff > 0 {
		return c.BaseBackoff
	}
	return 100 * time.Millisecond
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 5 * time.Second
}

// Test runs one tester request and returns its verdict.
func (c *Client) Test(ctx context.Context, req TestRequest) (*TestResult, error) {
	var res TestResult
	if err := c.postRetry(ctx, "/v1/test", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RegisterSampler registers a distribution spec and returns its ID for
// use in TestRequest.Sampler.
func (c *Client) RegisterSampler(ctx context.Context, spec HistogramSpec) (*RegisterResponse, error) {
	var res RegisterResponse
	if err := c.postRetry(ctx, "/v1/samplers", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// TestStream submits a batch and invokes fn for each result as it
// arrives (completion order, each tagged with its request index). A
// non-nil error from fn aborts the stream and is returned.
func (c *Client) TestStream(ctx context.Context, reqs []TestRequest, fn func(TestResult) error) error {
	return c.retry(ctx, func() error {
		resp, err := c.post(ctx, "/v1/test/stream", BatchRequest{Requests: reqs})
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<26)
		for sc.Scan() {
			var res TestResult
			if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
				return fmt.Errorf("histd: decoding stream line: %w", err)
			}
			if err := fn(res); err != nil {
				return err
			}
		}
		return sc.Err()
	})
}

// TestBatch submits a batch and collects every result, returned in
// request order (index i of the result slice answers reqs[i]).
func (c *Client) TestBatch(ctx context.Context, reqs []TestRequest) ([]TestResult, error) {
	out := make([]TestResult, 0, len(reqs))
	err := c.TestStream(ctx, reqs, func(r TestResult) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// Health reports whether the server is admitting requests (nil), or the
// reason it is not.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	return decodeAPIError(resp)
}

// postRetry posts the request with the retry policy and decodes the JSON
// response into out.
func (c *Client) postRetry(ctx context.Context, path string, body, out any) error {
	return c.retry(ctx, func() error {
		resp, err := c.post(ctx, path, body)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// post performs one POST attempt; a non-2xx response is returned as
// *APIError.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		apiErr := decodeAPIError(resp)
		resp.Body.Close()
		return nil, apiErr
	}
	return resp, nil
}

// retry runs attempt under the client's backoff policy: temporary
// pushback (429/503) waits and retries; anything else returns at once.
func (c *Client) retry(ctx context.Context, attempt func() error) error {
	backoff := c.baseBackoff()
	for tries := 0; ; tries++ {
		err := attempt()
		apiErr, ok := err.(*APIError)
		if err == nil || !ok || !apiErr.Temporary() || tries >= c.maxRetries() {
			return err
		}
		// A server Retry-After hint overrides the exponential schedule for
		// this wait and leaves the exponential state untouched: the hint
		// says nothing about how loaded the server will be next time, and
		// advancing the exponent on hinted attempts meant a long pushback
		// streak silently inflated the state so a later hint-less attempt
		// jumped to an outsized wait. Only hint-less waits double it.
		wait := apiErr.RetryAfter
		if wait <= 0 {
			wait = backoff
			backoff *= 2
		}
		if lim := c.maxBackoff(); wait > lim {
			wait = lim
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// decodeAPIError turns a non-2xx response into an *APIError, tolerating
// non-JSON bodies.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{Status: resp.StatusCode, Code: ErrCodeInternal}
	apiErr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var wire ErrorResponse
	if err := json.Unmarshal(body, &wire); err == nil && wire.Code != "" {
		apiErr.Code = wire.Code
		apiErr.Message = wire.Error
	} else {
		apiErr.Message = strings.TrimSpace(string(body))
		if apiErr.Message == "" {
			apiErr.Message = resp.Status
		}
	}
	return apiErr
}

// parseRetryAfter parses both forms RFC 9110 §10.2.3 allows for the
// Retry-After header: delay-seconds ("120") and an HTTP-date ("Fri, 07
// Aug 2026 12:00:00 GMT"). histd itself always sends delay-seconds, but
// the client may sit behind proxies and gateways that rewrite the header
// to a date — dropping it there silently degraded hinted waits to the
// exponential schedule. A date in the past (or an unparsable value)
// yields 0, i.e. no hint.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
