package client

import "context"

// ClosenessSide names one sample source of a two-sample closeness
// request. Exactly one field must be set; the four kinds may be mixed
// freely across the two sides (e.g. a registered sampler vs. a live
// stream window — the canary-vs-baseline shape).
type ClosenessSide struct {
	// Samples is a recorded dataset of values in [0, N), replayed
	// without replacement. If the tester's budget exceeds the dataset
	// the request fails with ErrCodeNeedMoreSamples.
	Samples []int `json:"samples,omitempty"`
	// Spec is an inline distribution the server samples from.
	Spec *HistogramSpec `json:"spec,omitempty"`
	// Sampler references a spec previously registered via /v1/samplers.
	Sampler string `json:"sampler,omitempty"`
	// Stream references a live ingestion stream by ID; its current
	// window is snapshotted at admission. An empty window fails with
	// ErrCodeNeedMoreSamples (there is nothing to compare yet).
	Stream string `json:"stream,omitempty"`
}

// ClosenessRequest asks the server to decide whether two sample sources
// serve the same distribution or distributions ε-far in total variation,
// under the promise both are (close to) k-histograms (the DKN'17
// two-sample tester — see DESIGN.md "Two-sample closeness").
type ClosenessRequest struct {
	// A and B are the two sample sources.
	A ClosenessSide `json:"a"`
	B ClosenessSide `json:"b"`

	// N is the common domain size. Required when either side is a
	// Samples dataset; optional otherwise (it must match every source's
	// domain when set).
	N int `json:"n,omitempty"`
	// K is the histogram class parameter of the promise.
	K int `json:"k"`
	// Eps is the distance parameter ε in (0, 1].
	Eps float64 `json:"eps"`

	// Seed seeds the tester's internal randomness (0 means 1). Together
	// with SamplerSeed it makes a served verdict reproducible; the
	// per-side derivations (side B's sampler and shuffle streams are
	// salted so twin sources don't draw in lockstep) are pinned by the
	// serve layer's bit-identity tests.
	Seed uint64 `json:"seed,omitempty"`
	// SamplerSeed seeds the Spec/Sampler draw streams (0 means 1).
	SamplerSeed uint64 `json:"sampler_seed,omitempty"`
	// Scale multiplies every stage's sample budget (0 means 1).
	Scale float64 `json:"scale,omitempty"`
	// Workers bounds the replicate fan-out WITHIN this request (0 means
	// serial). The server caps it at its -sieve-workers limit; the
	// verdict is identical for every value.
	Workers int `json:"workers,omitempty"`
	// CountStrategy selects Poissonized count synthesis, as in
	// TestRequest: "" or "exact", or "closed-form" (sampler-backed
	// sides only; dataset and stream sides always use the exact path).
	CountStrategy string `json:"count_strategy,omitempty"`
	// Reps overrides the majority-amplification replicate count
	// (0 means the server default, 5).
	Reps int `json:"reps,omitempty"`
	// TimeoutMS caps the request's server-side wall clock, as in
	// TestRequest.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ClosenessVerdict is the wire form of the two-sample tester's result
// (closeness.TwoSampleResult).
type ClosenessVerdict struct {
	// Accept means the samples are consistent with equal distributions.
	Accept bool `json:"accept"`
	// N is the raw domain size; Intervals the reduced domain size K
	// after the common-refinement flattening (== N when the reduction
	// did not apply).
	N         int `json:"n"`
	Intervals int `json:"intervals"`
	// B is the reduction parameter (0 when the reduction did not apply);
	// M the per-side Poisson mean of each replicate batch.
	B float64 `json:"b"`
	M float64 `json:"m"`
	// Reps and Accepts give the majority tally; Z and Threshold the
	// median replicate's statistic and cutoff.
	Reps      int     `json:"reps"`
	Accepts   int     `json:"accepts"`
	Z         float64 `json:"z"`
	Threshold float64 `json:"threshold"`
	// PartitionSamples and TestSamples split the total draw count by
	// stage; SamplesA and SamplesB split it by side.
	PartitionSamples int64 `json:"partition_samples"`
	TestSamples      int64 `json:"test_samples"`
	SamplesA         int64 `json:"samples_a"`
	SamplesB         int64 `json:"samples_b"`
}

// ClosenessResponse is the body of a successful POST /v1/closeness.
type ClosenessResponse struct {
	ClosenessVerdict
	// EventsA/EventsB report the snapshotted window sizes of stream
	// sides (0 for non-stream sides).
	EventsA int64 `json:"events_a,omitempty"`
	EventsB int64 `json:"events_b,omitempty"`
	// ElapsedMS is the server-side wall clock of the run.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Closeness runs one two-sample closeness request and returns its
// verdict, under the client's usual retry policy for admission pushback.
func (c *Client) Closeness(ctx context.Context, req ClosenessRequest) (*ClosenessResponse, error) {
	var res ClosenessResponse
	if err := c.postRetry(ctx, "/v1/closeness", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
