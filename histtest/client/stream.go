package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"
)

// Streaming-ingestion API: register a stream, pour raw events into it,
// and ask the server to test the accumulated counts — the tester runs
// over the tally without the client ever materializing a sample array.
//
// Every method reuses the client's bounded retry/backoff: 429 (ingest
// queue or registry full) and 503 (draining) wait out the server's
// Retry-After hint and try again, so ingest clients degrade gracefully
// under backpressure instead of dropping batches. Ingest retries are
// safe: the server acquires its admission slot BEFORE reading the body,
// so a 429/503 response means no event of the batch was applied.

// StreamSpec registers an ingestion stream: the domain and tester
// parameters, plus the accumulator/window shape.
type StreamSpec struct {
	// Tenant scopes the server's per-tenant stream quota ("" = default).
	Tenant string `json:"tenant,omitempty"`
	// N is the domain size: events are integers in [0, N). Required.
	N int `json:"n"`
	// K and Eps are the tester parameters bound to the stream.
	K   int     `json:"k"`
	Eps float64 `json:"eps"`
	// Seed anchors snapshot reproducibility (0 means 1): tests of equal
	// tallies under equal seeds return bit-identical verdicts.
	Seed uint64 `json:"seed,omitempty"`
	// Paper switches the stream's tests to the literal paper constants.
	Paper bool `json:"paper,omitempty"`

	// Shards overrides the accumulator shard count (0 = server default,
	// 4× server GOMAXPROCS rounded to a power of two).
	Shards int `json:"shards,omitempty"`
	// Generations is the sliding-window sub-tally count (0 = server
	// default: 1 without a window, 8 with one).
	Generations int `json:"generations,omitempty"`
	// WindowMS rotates the window every WindowMS milliseconds; 0 keeps
	// an ever-growing tally.
	WindowMS int64 `json:"window_ms,omitempty"`
	// RetestEveryMS schedules periodic automatic re-tests; 0 disables.
	RetestEveryMS int64 `json:"retest_every_ms,omitempty"`
	// ForceSparse forces the open-addressed backing regardless of the
	// dense/sparse heuristic (diagnostics; huge sparse domains).
	ForceSparse bool `json:"force_sparse,omitempty"`
}

// StreamTestRecord is a stream's most recent test outcome, echoed in
// StreamInfo.
type StreamTestRecord struct {
	At       time.Time `json:"at"`
	Seed     uint64    `json:"seed"`
	Events   int64     `json:"events"`
	Distinct int       `json:"distinct"`
	Accept   bool      `json:"accept"`
	Stage    string    `json:"reject_stage,omitempty"`
	Err      string    `json:"error,omitempty"`
}

// StreamInfo describes a live stream.
type StreamInfo struct {
	ID          string    `json:"id"`
	Tenant      string    `json:"tenant"`
	N           int       `json:"n"`
	K           int       `json:"k"`
	Eps         float64   `json:"eps"`
	Seed        uint64    `json:"seed"`
	Dense       bool      `json:"dense"`
	Shards      int       `json:"shards"`
	Generations int       `json:"generations"`
	WindowMS    int64     `json:"window_ms,omitempty"`
	Created     time.Time `json:"created"`

	// WindowEvents counts the events inside the live window;
	// TotalEvents every event ever ingested; Rotations how many times
	// the window has advanced.
	WindowEvents int64 `json:"window_events"`
	TotalEvents  int64 `json:"total_events"`
	Batches      int64 `json:"batches"`
	Rotations    int64 `json:"rotations"`

	LastTest *StreamTestRecord `json:"last_test,omitempty"`
}

// IngestResponse acknowledges one ingested batch.
type IngestResponse struct {
	// Events is the number of events applied from this request.
	Events int64 `json:"events"`
	// WindowEvents / TotalEvents mirror StreamInfo after the batch.
	WindowEvents int64 `json:"window_events"`
	TotalEvents  int64 `json:"total_events"`
}

// StreamTestRequest asks for a test over a stream's current window.
// Zero values inherit the stream's registration parameters.
type StreamTestRequest struct {
	// Seed overrides the stream's snapshot seed for this run (0 = the
	// stream's own seed).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the sieve fan-out within the run (as in
	// TestRequest.Workers).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps the run's server-side wall clock.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StreamTestResponse is a test verdict over a stream snapshot: the
// ordinary TestResult plus the snapshot's provenance.
type StreamTestResponse struct {
	TestResult
	StreamID string `json:"stream_id"`
	// Events and Distinct describe the snapshot the verdict covers.
	Events   int64  `json:"events"`
	Distinct int    `json:"distinct"`
	Seed     uint64 `json:"seed"`
}

// EncodeEventsBinary renders values as one binary ingest frame (uvarint
// event count, then each event as a uvarint) — the payload of
// IngestEvents and the fastest wire form for bulk ingest.
func EncodeEventsBinary(values []int) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+2*len(values))
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(values)))]...)
	for _, v := range values {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(v))]...)
	}
	return buf
}

// CreateStream registers an ingestion stream and returns its info
// (including the server-assigned ID).
func (c *Client) CreateStream(ctx context.Context, spec StreamSpec) (*StreamInfo, error) {
	var info StreamInfo
	if err := c.postRetry(ctx, "/v1/streams", spec, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GetStream fetches a stream's current state.
func (c *Client) GetStream(ctx context.Context, id string) (*StreamInfo, error) {
	var info StreamInfo
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.streamURL(id, ""), nil)
		if err != nil {
			return err
		}
		resp, err := c.do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(&info)
	})
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteStream removes a stream and frees its accumulator.
func (c *Client) DeleteStream(ctx context.Context, id string) error {
	return c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.streamURL(id, ""), nil)
		if err != nil {
			return err
		}
		resp, err := c.do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	})
}

// IngestEvents posts one batch of events (values in [0, N)) in the
// binary frame format and returns the server's acknowledgment. The
// payload is encoded once and reused across retries.
func (c *Client) IngestEvents(ctx context.Context, id string, values []int) (*IngestResponse, error) {
	return c.ingest(ctx, id, "application/octet-stream", EncodeEventsBinary(values))
}

// IngestNDJSON posts a pre-rendered ndjson payload (one bare integer or
// one JSON array of integers per line).
func (c *Client) IngestNDJSON(ctx context.Context, id string, payload []byte) (*IngestResponse, error) {
	return c.ingest(ctx, id, "application/x-ndjson", payload)
}

func (c *Client) ingest(ctx context.Context, id, contentType string, payload []byte) (*IngestResponse, error) {
	var ack IngestResponse
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.streamURL(id, "events"), bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := c.do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(&ack)
	})
	if err != nil {
		return nil, err
	}
	return &ack, nil
}

// StreamTest snapshots the stream's live window and runs the tester
// over it, returning the verdict.
func (c *Client) StreamTest(ctx context.Context, id string, req StreamTestRequest) (*StreamTestResponse, error) {
	var res StreamTestResponse
	if err := c.postRetry(ctx, fmt.Sprintf("/v1/streams/%s/test", url.PathEscape(id)), req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// streamURL renders /v1/streams/{id}[/suffix].
func (c *Client) streamURL(id, suffix string) string {
	u := c.BaseURL + "/v1/streams/" + url.PathEscape(id)
	if suffix != "" {
		u += "/" + suffix
	}
	return u
}

// do performs one prepared request attempt under the client's error
// decoding: non-2xx responses surface as *APIError (feeding the retry
// policy's Temporary check).
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		apiErr := decodeAPIError(resp)
		resp.Body.Close()
		return nil, apiErr
	}
	return resp, nil
}
