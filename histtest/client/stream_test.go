package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestEncodeEventsBinary: the frame format round-trips — uvarint count,
// then each value as a uvarint.
func TestEncodeEventsBinary(t *testing.T) {
	values := []int{0, 1, 127, 128, 300, 1 << 20}
	r := bytes.NewReader(EncodeEventsBinary(values))
	count, err := binary.ReadUvarint(r)
	if err != nil || count != uint64(len(values)) {
		t.Fatalf("count prefix = %d (%v), want %d", count, err, len(values))
	}
	for i, want := range values {
		v, err := binary.ReadUvarint(r)
		if err != nil || v != uint64(want) {
			t.Fatalf("value %d = %d (%v), want %d", i, v, err, want)
		}
	}
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("trailing bytes after the frame")
	}

	empty := EncodeEventsBinary(nil)
	if len(empty) != 1 || empty[0] != 0 {
		t.Fatalf("empty frame = %v, want a single zero byte", empty)
	}
}

// TestIngestRetriesReuseBody: ingest pushed back with 429 retries with
// the SAME payload bytes, and the retry succeeds.
func TestIngestRetriesReuseBody(t *testing.T) {
	values := []int{3, 1, 4, 1, 5}
	want := EncodeEventsBinary(values)
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if !bytes.Equal(body, want) {
			t.Errorf("attempt %d body = %v, want %v", attempts.Load()+1, body, want)
		}
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorResponse{Code: ErrCodeOverloaded, Error: "ingest queue full"})
			return
		}
		json.NewEncoder(w).Encode(IngestResponse{Events: int64(len(values)), TotalEvents: int64(len(values))})
	}))
	defer hs.Close()

	ack, err := retryClient(hs.URL).IngestEvents(context.Background(), "st1", values)
	if err != nil {
		t.Fatalf("ingest did not recover from the 429: %v", err)
	}
	if ack.Events != int64(len(values)) {
		t.Fatalf("ack = %+v, want %d events", ack, len(values))
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

// TestStreamMethodsEscapeIDs: stream IDs are path-escaped, so a hostile
// ID cannot traverse into another route.
func TestStreamMethodsEscapeIDs(t *testing.T) {
	var path atomic.Value
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path.Store(r.URL.EscapedPath())
		json.NewEncoder(w).Encode(StreamInfo{ID: "x"})
	}))
	defer hs.Close()

	c := New(hs.URL)
	if _, err := c.GetStream(context.Background(), "../admin"); err != nil {
		t.Fatalf("get: %v", err)
	}
	if got := path.Load().(string); got != "/v1/streams/..%2Fadmin" {
		t.Fatalf("request path = %q; the stream ID was not escaped", got)
	}
}

// TestStreamTestNotRetriedOnBadRequest: terminal errors surface
// immediately with their typed code.
func TestStreamTestNotRetriedOnBadRequest(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ErrorResponse{Code: ErrCodeNotFound, Error: "stream not registered"})
	}))
	defer hs.Close()

	_, err := retryClient(hs.URL).StreamTest(context.Background(), "gone", StreamTestRequest{})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != ErrCodeNotFound || apiErr.Temporary() {
		t.Fatalf("expected a terminal not_found, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a terminal failure, want 1", got)
	}
}
