package histtest

import (
	"encoding/json"
	"fmt"
)

// histogramJSON is the stable wire format of a Histogram sketch: the
// domain size, interior cut points, and bucket masses.
type histogramJSON struct {
	N      int       `json:"n"`
	Cuts   []int     `json:"cuts"`
	Masses []float64 `json:"masses"`
}

// MarshalJSON encodes the histogram as {"n":…, "cuts":[…], "masses":[…]}.
// Sketches produced by BuildHistogram round-trip exactly.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	pieces := h.pc.Pieces()
	enc := histogramJSON{N: h.pc.N()}
	for i, pc := range pieces {
		if i > 0 {
			enc.Cuts = append(enc.Cuts, pc.Iv.Lo)
		}
		enc.Masses = append(enc.Masses, pc.Mass)
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes the MarshalJSON format, validating it as a
// distribution.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var enc histogramJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return fmt.Errorf("histtest: decoding histogram: %w", err)
	}
	decoded, err := NewHistogram(enc.N, enc.Cuts, enc.Masses)
	if err != nil {
		return fmt.Errorf("histtest: invalid histogram payload: %w", err)
	}
	h.pc = decoded.pc
	return nil
}
