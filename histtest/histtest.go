// Package histtest is the public API of this repository: property testing
// of histogram distributions, after
//
//	Clément L. Canonne, "Are Few Bins Enough: Testing Histogram
//	Distributions" (PODS 2016; corrigendum PODS 2023).
//
// Given samples from an unknown distribution over {0, ..., n−1}, the
// tester decides whether the distribution is a k-histogram — piecewise
// constant on at most k contiguous intervals — or ε-far in total variation
// from every k-histogram, using O(√n/ε²·log k + poly(k,1/ε)) samples
// (Theorem 1.1). The package also provides the model-selection driver the
// paper's introduction motivates (find the smallest adequate k, then
// build a histogram sketch) and classical histogram constructions for
// selectivity estimation.
//
// Basic use:
//
//	src := histtest.SamplerFor(myHistogram, 42)     // or your own Source
//	v, err := histtest.TestSource(src, n, k, 0.25, histtest.Options{})
//	if v.IsKHistogram { ... }
package histtest

import (
	"fmt"

	"repro/internal/chisq"
	"repro/internal/closeness"
	"repro/internal/core"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/shape"
)

// Source yields one sample from the unknown distribution per call. Values
// must lie in [0, n) for the n passed alongside the source.
type Source func() int

// Options tune the tester.
type Options struct {
	// Seed makes the tester's internal randomness reproducible. Zero means
	// seed 1 (the tester is always deterministic given Seed and the
	// sample stream).
	Seed uint64
	// Paper switches to the literal constants of the paper's proofs. They
	// are extremely sample-hungry; the default calibrated constants keep
	// the same guarantees structure at laptop-scale budgets.
	Paper bool
	// Scale multiplies every stage's sample budget (default 1). Values
	// below 1 trade confidence for samples.
	Scale float64
	// Workers bounds the goroutines the tester's sieve uses for its
	// independent replicate draws: 0 means all cores (GOMAXPROCS), 1
	// forces serial execution. The verdict is identical for every value —
	// parallelism only changes wall-clock time, never the decision.
	// Parallel drawing needs independent sample streams, so it takes
	// effect for TestSources; the single-stream entry points (TestSource,
	// TestSamples) always draw serially.
	Workers int
	// Config, if non-nil, overrides Paper/Scale entirely (expert use).
	Config *core.Config
}

func (o Options) config() core.Config {
	cfg := core.PracticalConfig()
	if o.Paper {
		cfg = core.PaperConfig()
	}
	if o.Config != nil {
		cfg = *o.Config
	} else if o.Scale > 0 && o.Scale != 1 {
		cfg = cfg.Scale(o.Scale)
	}
	if o.Workers != 0 {
		cfg.Workers = o.Workers
	}
	return cfg
}

func (o Options) rng() *rng.RNG {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return rng.New(seed)
}

// Verdict is the tester's decision.
type Verdict struct {
	// IsKHistogram is true when the tester accepted (the distribution is a
	// k-histogram, with probability >= 2/3), false when it rejected (the
	// distribution is ε-far from every k-histogram, with probability >= 2/3).
	IsKHistogram bool
	// SamplesUsed is the number of samples consumed.
	SamplesUsed int64
	// Stage is the pipeline stage that decided ("" for an accept).
	Stage string
	// Detail is a human-readable explanation of a rejection.
	Detail string
}

// sourceOracle adapts a Source to the internal oracle interface.
type sourceOracle struct {
	n     int
	src   Source
	count int64
}

func (s *sourceOracle) N() int { return s.n }
func (s *sourceOracle) Draw() int {
	v := s.src()
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("histtest: source produced %d outside [0,%d)", v, s.n))
	}
	s.count++
	return v
}
func (s *sourceOracle) Samples() int64 { return s.count }

// TestSource tests whether the distribution behind src is a k-histogram
// over [0, n) versus ε-far from every k-histogram. It draws as many
// samples as the configured budgets require.
func TestSource(src Source, n, k int, eps float64, opt Options) (Verdict, error) {
	if n < 1 {
		return Verdict{}, fmt.Errorf("histtest: n = %d must be positive", n)
	}
	o := &sourceOracle{n: n, src: src}
	res, err := core.Test(o, opt.rng(), k, eps, opt.config())
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		IsKHistogram: res.Accept,
		SamplesUsed:  o.count,
		Stage:        res.Trace.RejectStage,
		Detail:       res.Trace.RejectReason,
	}, nil
}

// Sources is a factory of independent sample streams over the same
// distribution: mk(stream) must return a Source whose draws are
// independent of every other stream's (e.g. samplers seeded per stream).
// Stream 0 is the tester's primary stream; other ids are derived
// deterministically from Options.Seed, so a run is reproducible end to
// end. Each returned Source is only ever drawn from one goroutine at a
// time, but DISTINCT streams may be drawn concurrently — they must not
// share mutable state.
type Sources func(stream uint64) Source

// sourcesOracle adapts a Sources factory to the internal oracle
// interface. Unlike the single-callback sourceOracle it supports cloning,
// which lets the tester's sieve draw its independent replicates in
// parallel (see Options.Workers).
type sourcesOracle struct {
	sourceOracle
	mk Sources
}

func (s *sourcesOracle) CanFork() bool { return true }

func (s *sourcesOracle) Fork(r *rng.RNG) oracle.Oracle {
	return &sourceOracle{n: s.n, src: s.mk(r.Uint64())}
}

func (s *sourcesOracle) Absorb(drawn int64) { s.count += drawn }

var _ oracle.Forker = (*sourcesOracle)(nil)

// TestSources is TestSource for callers that can provide independent
// sample streams. The extra capability unlocks the tester's parallel
// sieve path: the independent replicate batches are drawn concurrently
// across Options.Workers goroutines, each from its own stream. The
// verdict is deterministic given Options.Seed and the streams, and does
// not depend on the worker count.
func TestSources(mk Sources, n, k int, eps float64, opt Options) (Verdict, error) {
	if n < 1 {
		return Verdict{}, fmt.Errorf("histtest: n = %d must be positive", n)
	}
	o := &sourcesOracle{sourceOracle: sourceOracle{n: n, src: mk(0)}, mk: mk}
	res, err := core.Test(o, opt.rng(), k, eps, opt.config())
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		IsKHistogram: res.Accept,
		SamplesUsed:  o.count,
		Stage:        res.Trace.RejectStage,
		Detail:       res.Trace.RejectReason,
	}, nil
}

// ErrNeedMoreSamples reports that a recorded dataset was too small for the
// configured budgets.
type ErrNeedMoreSamples struct {
	Have, Used int
}

func (e *ErrNeedMoreSamples) Error() string {
	return fmt.Sprintf("histtest: dataset of %d samples exhausted after %d draws; provide more data or lower Options.Scale", e.Have, e.Used)
}

// TestSamples tests a recorded dataset (e.g. a column of values read from
// disk). Values must lie in [0, n). If the dataset is smaller than the
// tester's sample budget, an *ErrNeedMoreSamples is returned; use
// RequiredSamples to size datasets in advance.
func TestSamples(samples []int, n, k int, eps float64, opt Options) (v Verdict, err error) {
	rep, err := oracle.NewReplay(n, samples)
	if err != nil {
		return Verdict{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			// Discriminate on the panic VALUE: only the replay oracle's own
			// exhaustion sentinel means "dataset too small". Any other panic
			// — even one that happens to coincide with an exhausted replay —
			// is a real bug and must propagate.
			if r == oracle.ErrReplayExhausted {
				err = &ErrNeedMoreSamples{Have: len(samples), Used: int(rep.Samples())}
				return
			}
			panic(r)
		}
	}()
	res, errTest := core.Test(rep, opt.rng(), k, eps, opt.config())
	if errTest != nil {
		return Verdict{}, errTest
	}
	return Verdict{
		IsKHistogram: res.Accept,
		SamplesUsed:  rep.Samples(),
		Stage:        res.Trace.RejectStage,
		Detail:       res.Trace.RejectReason,
	}, nil
}

// RequiredSamples estimates the total sample budget one Test invocation
// needs for the given parameters (an upper-bound style nominal figure;
// the realized usage is close but Poisson-randomized).
func RequiredSamples(n, k int, eps float64, opt Options) int64 {
	return core.ExpectedSamples(n, k, eps, opt.config())
}

// TestIdentity is the goodness-of-fit companion to TestSource: given a
// KNOWN reference histogram, it decides whether the samples come from
// that exact distribution (accept w.p. >= 2/3 when dχ² is tiny, in
// particular when D = reference) or from one ε-far in total variation
// (reject w.p. >= 2/3). This is the [ADK15] identity tester (the paper's
// Theorem 3.2) with the reference as D*, at O(√n/ε²) samples — no
// learning stage, since the hypothesis is given.
func TestIdentity(src Source, reference *Histogram, eps float64, opt Options) (Verdict, error) {
	if reference == nil {
		return Verdict{}, fmt.Errorf("histtest: nil reference histogram")
	}
	if eps <= 0 || eps > 1 {
		return Verdict{}, fmt.Errorf("histtest: eps = %v must be in (0, 1]", eps)
	}
	n := reference.N()
	o := &sourceOracle{n: n, src: src}
	cfg := opt.config()
	res := chisq.Test(o, opt.rng(), reference.pc, intervals.FullDomain(n), eps, cfg.Chi)
	v := Verdict{IsKHistogram: res.Accept, SamplesUsed: o.count}
	if !res.Accept {
		v.Stage = "identity"
		v.Detail = fmt.Sprintf("χ² statistic %.1f above threshold %.1f", res.Z, res.Threshold)
	}
	return v, nil
}

// RequiredIdentitySamples returns the nominal budget of one TestIdentity
// call.
func RequiredIdentitySamples(n int, eps float64, opt Options) int64 {
	return int64(opt.config().Chi.SampleMean(n, eps))
}

// TestCloseness is the two-sample companion: given two sample sources
// over the same domain [0, n), decide whether they follow the SAME
// distribution (accept w.p. >= 2/3) or distributions ε-far in total
// variation (reject w.p. >= 2/3) — the [CDVV14] closeness tester whose χ²
// statistic the paper's machinery descends from (footnote 2), at
// O(max(n^{2/3}/ε^{4/3}, √n/ε²)) samples per source.
func TestCloseness(srcA, srcB Source, n int, eps float64, opt Options) (Verdict, error) {
	if n < 1 {
		return Verdict{}, fmt.Errorf("histtest: n = %d must be positive", n)
	}
	if eps <= 0 || eps > 1 {
		return Verdict{}, fmt.Errorf("histtest: eps = %v must be in (0, 1]", eps)
	}
	oa := &sourceOracle{n: n, src: srcA}
	ob := &sourceOracle{n: n, src: srcB}
	res := closeness.Test(oa, ob, opt.rng(), eps, closeness.DefaultParams())
	v := Verdict{IsKHistogram: res.Accept, SamplesUsed: oa.count + ob.count}
	if !res.Accept {
		v.Stage = "closeness"
		v.Detail = fmt.Sprintf("two-sample χ² statistic %.1f above threshold %.1f", res.Z, res.Threshold)
	}
	return v, nil
}

// TestPartition decides the known-partition variant ([DK16], contrasted
// in the paper's Section 1.2): is the distribution behind src piecewise
// constant on the EXPLICIT partition of [0, n) cut at the given interior
// points, or ε-far from every such distribution? Knowing the breakpoints
// removes the sieve and the projection DP, so the budget is far below
// TestSource's (experiment E13 measures a 70–170× gap).
func TestPartition(src Source, n int, cuts []int, eps float64, opt Options) (Verdict, error) {
	if n < 1 {
		return Verdict{}, fmt.Errorf("histtest: n = %d must be positive", n)
	}
	part := intervals.FromBoundaries(n, cuts)
	o := &sourceOracle{n: n, src: src}
	res, err := core.TestKnownPartition(o, opt.rng(), part, eps, core.PracticalKnownPartition())
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{IsKHistogram: res.Accept, SamplesUsed: o.count}
	if !res.Accept {
		v.Stage = "identity"
		v.Detail = fmt.Sprintf("not flat on the given partition (χ² %.1f above threshold %.1f)", res.Z, res.Threshold)
	}
	return v, nil
}

// TestMonotone decides whether the distribution behind src is monotone
// over [0, n) (non-increasing when decreasing, else non-decreasing) or
// ε-far from every such distribution. This is the [ADK15]-style
// testing-by-learning specialization (oblivious Birgé decomposition, no
// sieve) whose generalization to H_k is the paper's main algorithm; it
// rounds out the shape-testing toolkit alongside TestSource and the
// shape-distance accessors on Histogram.
func TestMonotone(src Source, n int, decreasing bool, eps float64, opt Options) (Verdict, error) {
	if n < 1 {
		return Verdict{}, fmt.Errorf("histtest: n = %d must be positive", n)
	}
	o := &sourceOracle{n: n, src: src}
	res, err := shape.TestMonotone(o, opt.rng(), decreasing, eps, shape.PracticalMonotone())
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{IsKHistogram: res.Accept, SamplesUsed: o.count}
	if !res.Accept {
		v.Stage = res.Stage
		v.Detail = fmt.Sprintf("monotone test rejected at stage %s (hypothesis distance %.4f)", res.Stage, res.CheckDistance)
	}
	return v, nil
}
