package histtest

import (
	"errors"
	"math"
	"testing"
)

// fourBucket returns a well-separated 4-histogram over [0, n).
func fourBucket(t *testing.T, n int) *Histogram {
	t.Helper()
	h, err := NewHistogram(n, []int{n / 8, n / 2, 3 * n / 4}, []float64{0.4, 0.1, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(10, []int{5}, []float64{0.5}); err == nil {
		t.Fatal("mass/bucket mismatch accepted")
	}
	if _, err := NewHistogram(10, []int{5}, []float64{0.5, -0.1}); err == nil {
		t.Fatal("negative mass accepted")
	}
	if _, err := NewHistogram(10, []int{5}, []float64{0, 0}); err == nil {
		t.Fatal("zero mass accepted")
	}
	h, err := NewHistogram(10, []int{5}, []float64{3, 1}) // normalizes
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Prob(0)-0.75/5) > 1e-12 {
		t.Fatalf("Prob(0) = %v", h.Prob(0))
	}
}

func TestHistogramAccessors(t *testing.T) {
	h := fourBucket(t, 256)
	if h.N() != 256 || h.Buckets() != 4 || h.Complexity() != 4 {
		t.Fatalf("N=%d buckets=%d complexity=%d", h.N(), h.Buckets(), h.Complexity())
	}
	if got := h.Selectivity(0, 256); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full-range selectivity = %v", got)
	}
	if got := h.Selectivity(0, 32); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("first-bucket selectivity = %v", got)
	}
	lower, upper, err := h.DistanceToClass(4)
	if err != nil {
		t.Fatal(err)
	}
	if lower != 0 || upper > 1e-12 {
		t.Fatalf("distance to own class = [%v, %v]", lower, upper)
	}
	lower, _, _ = h.DistanceToClass(1)
	if lower <= 0.05 {
		t.Fatalf("distance to H_1 = %v, should be substantial", lower)
	}
}

func TestHistogramStatistics(t *testing.T) {
	u := Uniform(8)
	if math.Abs(u.Mean()-3.5) > 1e-9 {
		t.Fatalf("Mean = %v", u.Mean())
	}
	if math.Abs(u.Entropy()-3) > 1e-9 {
		t.Fatalf("Entropy = %v", u.Entropy())
	}
	if u.Quantile(0.5) != 3 {
		t.Fatalf("Quantile = %d", u.Quantile(0.5))
	}
	if u.Modality() != 1 {
		t.Fatalf("Modality = %d", u.Modality())
	}
	h := fourBucket(t, 256)
	if h.Modality() < 2 {
		t.Fatalf("four-bucket modality = %d", h.Modality())
	}
	if h.Quantile(1) != 255 {
		t.Fatalf("Quantile(1) = %d", h.Quantile(1))
	}
}

func TestShapeDistances(t *testing.T) {
	// A decreasing staircase: monotone-decreasing distance 0, increasing
	// distance positive, unimodal distance 0 (monotone ⊂ unimodal).
	h, err := NewHistogram(100, []int{30, 60}, []float64{0.6, 0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dDec, projDec := h.DistanceToMonotone(true)
	if dDec > 1e-12 {
		t.Fatalf("decreasing distance = %v", dDec)
	}
	if tv, _ := TotalVariation(h, projDec); tv > 1e-9 {
		t.Fatal("projection of feasible input moved")
	}
	dInc, _ := h.DistanceToMonotone(false)
	if dInc < 0.1 {
		t.Fatalf("increasing distance = %v, want substantial", dInc)
	}
	dUni, _ := h.DistanceToUnimodal()
	if dUni > 1e-12 {
		t.Fatalf("unimodal distance = %v", dUni)
	}
	// A two-peak histogram is far from unimodal but 3-modal-close.
	twoPeak, err := NewHistogram(100, []int{20, 40, 60, 80}, []float64{0.1, 0.3, 0.05, 0.45, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dU, _ := twoPeak.DistanceToUnimodal()
	if dU < 0.01 {
		t.Fatalf("two-peak unimodal distance = %v", dU)
	}
	d3, _, err := twoPeak.DistanceToKModal(3)
	if err != nil {
		t.Fatal(err)
	}
	if d3 > 1e-12 {
		t.Fatalf("3-modal distance of two-peak = %v", d3)
	}
	if _, _, err := twoPeak.DistanceToKModal(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTestSourceAcceptsHistogram(t *testing.T) {
	h := fourBucket(t, 512)
	accepts := 0
	for i := uint64(0); i < 8; i++ {
		v, err := TestSource(h.Sampler(100+i), 512, 4, 0.5, Options{Seed: 200 + i})
		if err != nil {
			t.Fatal(err)
		}
		if v.IsKHistogram {
			accepts++
		}
		if v.SamplesUsed <= 0 {
			t.Fatal("no samples recorded")
		}
	}
	if accepts < 6 {
		t.Fatalf("accepted %d/8", accepts)
	}
}

func TestTestSourceRejectsFar(t *testing.T) {
	// Alternating comb via an explicit 256-bucket histogram.
	n := 256
	cuts := make([]int, 0, n-1)
	masses := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			cuts = append(cuts, i)
		}
		if i%2 == 0 {
			masses = append(masses, 2.0/float64(n))
		} else {
			masses = append(masses, 0)
		}
	}
	h, err := NewHistogram(n, cuts, masses)
	if err != nil {
		t.Fatal(err)
	}
	rejects := 0
	for i := uint64(0); i < 8; i++ {
		v, err := TestSource(h.Sampler(300+i), n, 4, 0.45, Options{Seed: 400 + i})
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsKHistogram {
			rejects++
			if v.Stage == "" || v.Detail == "" {
				t.Fatal("rejection missing stage/detail")
			}
		}
	}
	if rejects < 6 {
		t.Fatalf("rejected %d/8", rejects)
	}
}

func TestTestSourceValidation(t *testing.T) {
	h := Uniform(16)
	if _, err := TestSource(h.Sampler(1), 0, 1, 0.5, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := TestSource(h.Sampler(1), 16, 0, 0.5, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTestSamplesReplay(t *testing.T) {
	h := Uniform(128)
	src := h.Sampler(7)
	need := RequiredSamples(128, 1, 0.5, Options{})
	data := make([]int, need+need/4)
	for i := range data {
		data[i] = src()
	}
	v, err := TestSamples(data, 128, 1, 0.5, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsKHistogram {
		t.Fatal("uniform dataset rejected")
	}
}

func TestTestSamplesTooFew(t *testing.T) {
	h := Uniform(128)
	src := h.Sampler(9)
	data := make([]int, 100)
	for i := range data {
		data[i] = src()
	}
	_, err := TestSamples(data, 128, 1, 0.5, Options{})
	var need *ErrNeedMoreSamples
	if !errors.As(err, &need) {
		t.Fatalf("expected ErrNeedMoreSamples, got %v", err)
	}
}

func TestOptionsScaleReducesSamples(t *testing.T) {
	if RequiredSamples(1024, 4, 0.5, Options{Scale: 0.25}) >= RequiredSamples(1024, 4, 0.5, Options{}) {
		t.Fatal("Scale < 1 should reduce the budget")
	}
	if RequiredSamples(1024, 4, 0.5, Options{Paper: true}) <= RequiredSamples(1024, 4, 0.5, Options{}) {
		t.Fatal("paper constants should dwarf practical ones")
	}
}

func TestBuildHistogramAndSelectivity(t *testing.T) {
	truth := fourBucket(t, 256)
	src := truth.Sampler(11)
	data := make([]int, 300000)
	for i := range data {
		data[i] = src()
	}
	for _, method := range []BuildMethod{BuildEquiWidth, BuildEquiDepth, BuildMaxDiff, BuildVOptimal} {
		sk, err := BuildHistogram(data, 256, 4, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if sk.Buckets() > 4 {
			t.Fatalf("%s: %d buckets", method, sk.Buckets())
		}
	}
	// V-optimal on the exact generating histogram recovers it closely.
	vo, err := BuildHistogram(data, 256, 4, BuildVOptimal)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := TotalVariation(truth, vo)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Fatalf("V-optimal TV to truth = %v", tv)
	}
	if _, err := BuildHistogram(nil, 16, 2, BuildVOptimal); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := TotalVariation(truth, Uniform(16)); err == nil {
		t.Fatal("mismatched domains accepted")
	}
}

func TestIdentityAcceptsMatch(t *testing.T) {
	h := fourBucket(t, 1024)
	accepts := 0
	for i := uint64(0); i < 10; i++ {
		v, err := TestIdentity(h.Sampler(500+i), h, 0.3, Options{Seed: 600 + i})
		if err != nil {
			t.Fatal(err)
		}
		if v.IsKHistogram {
			accepts++
		}
		if v.SamplesUsed <= 0 {
			t.Fatal("no samples used")
		}
	}
	if accepts < 8 {
		t.Fatalf("identity accepted %d/10 on a perfect match", accepts)
	}
}

func TestIdentityRejectsFar(t *testing.T) {
	ref := fourBucket(t, 1024)
	// A distribution 0.4-far from the reference: swap the bucket weights.
	other, err := NewHistogram(1024, []int{128, 512, 768}, []float64{0.1, 0.4, 0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	rejects := 0
	for i := uint64(0); i < 10; i++ {
		v, err := TestIdentity(other.Sampler(700+i), ref, 0.3, Options{Seed: 800 + i})
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsKHistogram {
			rejects++
			if v.Stage != "identity" || v.Detail == "" {
				t.Fatalf("rejection metadata missing: %+v", v)
			}
		}
	}
	if rejects < 8 {
		t.Fatalf("identity rejected %d/10 on a far distribution", rejects)
	}
}

func TestIdentityUsesFewerSamplesThanFullTest(t *testing.T) {
	// Knowing the hypothesis removes the learning and sieving budgets.
	idBudget := RequiredIdentitySamples(4096, 0.3, Options{})
	fullBudget := RequiredSamples(4096, 4, 0.3, Options{})
	if idBudget*5 > fullBudget {
		t.Fatalf("identity budget %d not far below full budget %d", idBudget, fullBudget)
	}
}

func TestIdentityValidation(t *testing.T) {
	h := Uniform(16)
	if _, err := TestIdentity(h.Sampler(1), nil, 0.3, Options{}); err == nil {
		t.Fatal("nil reference accepted")
	}
	if _, err := TestIdentity(h.Sampler(1), h, 0, Options{}); err == nil {
		t.Fatal("eps = 0 accepted")
	}
}

func TestSmallestK(t *testing.T) {
	truth := fourBucket(t, 512)
	res, err := SmallestK(truth.Sampler(21), 512, 0.4, SelectOptions{
		Options: Options{Seed: 77},
		Reps:    3,
		KMax:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// True complexity is 4; accept anything in [2, 8] (distance slack can
	// legitimately admit slightly smaller k; noise can overshoot a bit).
	if res.K < 2 || res.K > 8 {
		t.Fatalf("selected k = %d for a 4-histogram (probed %v)", res.K, res.Probed)
	}
	if res.SamplesUsed <= 0 || len(res.Probed) == 0 {
		t.Fatal("search accounting missing")
	}
}

func TestSmallestKExhaustsKMax(t *testing.T) {
	// The comb passes for no small k; with KMax = 4 the search must
	// report KMax+1.
	n := 128
	cuts := make([]int, 0, n-1)
	masses := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			cuts = append(cuts, i)
		}
		if i%2 == 0 {
			masses = append(masses, 1)
		} else {
			masses = append(masses, 0)
		}
	}
	h, err := NewHistogram(n, cuts, masses)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SmallestK(h.Sampler(31), n, 0.4, SelectOptions{
		Options: Options{Seed: 88},
		Reps:    3,
		KMax:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 5 {
		t.Fatalf("K = %d, want KMax+1 = 5", res.K)
	}
}

func TestMonotonePublicAPI(t *testing.T) {
	// Decreasing 3-step histogram: monotone-decreasing passes, increasing
	// rejects.
	h, err := NewHistogram(512, []int{128, 320}, []float64{0.6, 0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := TestMonotone(h.Sampler(1), 512, true, 0.4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsKHistogram {
		t.Fatalf("decreasing shape rejected: %s", v.Detail)
	}
	v, err = TestMonotone(h.Sampler(3), 512, false, 0.4, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsKHistogram {
		t.Fatal("increasing test accepted a decreasing shape")
	}
	if v.Stage == "" || v.Detail == "" {
		t.Fatal("rejection metadata missing")
	}
	if _, err := TestMonotone(h.Sampler(1), 0, true, 0.4, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestPartitionPublicAPI(t *testing.T) {
	h := fourBucket(t, 512) // cuts at 64, 256, 384
	// Aligned partition: accept.
	v, err := TestPartition(h.Sampler(1), 512, []int{64, 256, 384}, 0.4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsKHistogram {
		t.Fatalf("aligned partition rejected: %s", v.Detail)
	}
	// Misaligned partition: the same distribution is far from flat on it.
	v, err = TestPartition(h.Sampler(3), 512, []int{128, 256, 448}, 0.2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsKHistogram {
		t.Fatal("misaligned partition accepted")
	}
	if _, err := TestPartition(h.Sampler(1), 0, nil, 0.4, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRandomHistogram(t *testing.T) {
	h, err := Random(1024, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if h.Complexity() != 6 {
		t.Fatalf("complexity = %d", h.Complexity())
	}
	// Deterministic in seed.
	h2, _ := Random(1024, 6, 42)
	if tv, _ := TotalVariation(h, h2); tv != 0 {
		t.Fatal("same seed gave different histograms")
	}
	h3, _ := Random(1024, 6, 43)
	if tv, _ := TotalVariation(h, h3); tv == 0 {
		t.Fatal("different seeds gave identical histograms")
	}
	if _, err := Random(4, 5, 1); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestClosenessPublicAPI(t *testing.T) {
	a := fourBucket(t, 1024)
	// Same distribution behind both sources: accept.
	accepts := 0
	for i := uint64(0); i < 10; i++ {
		v, err := TestCloseness(a.Sampler(900+i), a.Sampler(950+i), 1024, 0.3, Options{Seed: 1000 + i})
		if err != nil {
			t.Fatal(err)
		}
		if v.IsKHistogram {
			accepts++
		}
		if v.SamplesUsed <= 0 {
			t.Fatal("no samples counted")
		}
	}
	if accepts < 8 {
		t.Fatalf("same-source closeness accepted %d/10", accepts)
	}
	// Far pair: reject.
	b, err := NewHistogram(1024, []int{128, 512, 768}, []float64{0.1, 0.4, 0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	rejects := 0
	for i := uint64(0); i < 10; i++ {
		v, err := TestCloseness(a.Sampler(1100+i), b.Sampler(1150+i), 1024, 0.3, Options{Seed: 1200 + i})
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsKHistogram {
			rejects++
			if v.Stage != "closeness" {
				t.Fatalf("stage = %q", v.Stage)
			}
		}
	}
	if rejects < 8 {
		t.Fatalf("far-pair closeness rejected %d/10", rejects)
	}
	if _, err := TestCloseness(a.Sampler(1), a.Sampler(2), 0, 0.3, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := TestCloseness(a.Sampler(1), a.Sampler(2), 1024, 0, Options{}); err == nil {
		t.Fatal("eps=0 accepted")
	}
}
