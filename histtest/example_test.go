package histtest_test

import (
	"fmt"

	"repro/histtest"
)

// ExampleTestSource tests a live sample source for k-histogram-ness.
func ExampleTestSource() {
	// A genuine 3-histogram over {0, ..., 4095}.
	h, err := histtest.NewHistogram(4096, []int{1024, 2048}, []float64{0.5, 0.1, 0.4})
	if err != nil {
		panic(err)
	}
	v, err := histtest.TestSource(h.Sampler(1), 4096, 3, 0.4, histtest.Options{Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Println("is a 3-histogram:", v.IsKHistogram)
	// Output:
	// is a 3-histogram: true
}

// ExampleTestPartition tests against an explicitly known partition
// (the easier [DK16] variant).
func ExampleTestPartition() {
	h, err := histtest.NewHistogram(1024, []int{256, 512}, []float64{0.6, 0.1, 0.3})
	if err != nil {
		panic(err)
	}
	// Aligned partition: flat on every interval.
	v, err := histtest.TestPartition(h.Sampler(2), 1024, []int{256, 512}, 0.4, histtest.Options{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println("flat on the given partition:", v.IsKHistogram)
	// Output:
	// flat on the given partition: true
}

// ExampleHistogram_DistanceCurve computes the scree curve that drives
// bin-budget decisions.
func ExampleHistogram_DistanceCurve() {
	h, err := histtest.NewHistogram(100, []int{25, 50, 75}, []float64{0.4, 0.1, 0.3, 0.2})
	if err != nil {
		panic(err)
	}
	curve, err := h.DistanceCurve(5)
	if err != nil {
		panic(err)
	}
	for k, d := range curve {
		fmt.Printf("k=%d dist=%.3f\n", k+1, d)
	}
	// Output:
	// k=1 dist=0.200
	// k=2 dist=0.100
	// k=3 dist=0.050
	// k=4 dist=0.000
	// k=5 dist=0.000
}

// ExampleBuildHistogram builds a V-optimal sketch from raw values and
// answers a selectivity query.
func ExampleBuildHistogram() {
	truth, err := histtest.NewHistogram(256, []int{64}, []float64{0.75, 0.25})
	if err != nil {
		panic(err)
	}
	src := truth.Sampler(3)
	data := make([]int, 200000)
	for i := range data {
		data[i] = src()
	}
	sketch, err := histtest.BuildHistogram(data, 256, 2, histtest.BuildVOptimal)
	if err != nil {
		panic(err)
	}
	fmt.Printf("buckets: %d, sel[0,64): %.2f\n", sketch.Buckets(), sketch.Selectivity(0, 64))
	// Output:
	// buckets: 2, sel[0,64): 0.75
}

// ExampleGrid discretizes continuous data for the tester (the paper's
// Section 2 note on continuous domains).
func ExampleGrid() {
	g, err := histtest.NewGrid(0, 10, 5)
	if err != nil {
		panic(err)
	}
	cells := g.Discretize([]float64{0.5, 3.9, 9.99})
	fmt.Println(cells, g.Value(2))
	// Output:
	// [0 1 4] 4
}

// ExampleHistogram_Modality inspects shape statistics.
func ExampleHistogram_Modality() {
	// Rising then falling: a single interior peak.
	h, err := histtest.NewHistogram(90, []int{30, 60}, []float64{0.2, 0.6, 0.2})
	if err != nil {
		panic(err)
	}
	d, _ := h.DistanceToUnimodal()
	fmt.Printf("modality=%d unimodal-distance=%.2f\n", h.Modality(), d)
	// Output:
	// modality=2 unimodal-distance=0.00
}
