package histtest

import (
	"fmt"
	"sync"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/histbuild"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/shape"
)

// Histogram is a public handle on a piecewise-constant distribution over
// [0, n): k buckets, each spreading its probability mass uniformly over a
// contiguous interval. It is both a workload generator for the tester and
// the sketch type produced by the histogram constructions.
type Histogram struct {
	pc *dist.PiecewiseConstant

	// samplerOnce guards proto, the lazily built alias-table prototype
	// shared (immutably) by every Sampler fork of this histogram.
	samplerOnce sync.Once
	proto       *oracle.Sampler
}

// NewHistogram builds a histogram over [0, n) with buckets delimited by
// the interior cut points (ascending, in (0, n)) and the given bucket
// masses (len(masses) == len(cuts)+1; masses are normalized to sum to 1).
func NewHistogram(n int, cuts []int, masses []float64) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("histtest: domain size %d must be positive", n)
	}
	p := intervals.FromBoundaries(n, cuts)
	if p.Count() != len(masses) {
		return nil, fmt.Errorf("histtest: %d masses for %d buckets", len(masses), p.Count())
	}
	total := 0.0
	for _, m := range masses {
		if m < 0 {
			return nil, fmt.Errorf("histtest: negative bucket mass %v", m)
		}
		total += m
	}
	if total <= 0 {
		return nil, fmt.Errorf("histtest: zero total mass")
	}
	norm := make([]float64, len(masses))
	for i, m := range masses {
		norm[i] = m / total
	}
	pc, err := dist.FromWeights(p, norm)
	if err != nil {
		return nil, err
	}
	return &Histogram{pc: pc}, nil
}

// Uniform returns the uniform histogram over [0, n) (one bucket).
func Uniform(n int) *Histogram { return &Histogram{pc: dist.Uniform(n)} }

// Random returns a uniformly random k-histogram over [0, n): k−1 distinct
// breakpoints and Dirichlet bucket masses, with exactly k distinct levels.
// Deterministic in seed — handy for writing reproducible benchmarks and
// demos against the tester.
func Random(n, k int, seed uint64) (*Histogram, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("histtest: k = %d out of [1, %d]", k, n)
	}
	return &Histogram{pc: gen.KHistogram(rng.New(seed), n, k)}, nil
}

// N returns the domain size.
func (h *Histogram) N() int { return h.pc.N() }

// Buckets returns the number of buckets in the representation.
func (h *Histogram) Buckets() int { return h.pc.PieceCount() }

// Complexity returns the smallest k for which the histogram is a
// k-histogram (merging equal adjacent levels).
func (h *Histogram) Complexity() int { return histdp.HistogramComplexity(h.pc) }

// Prob returns the probability of element i.
func (h *Histogram) Prob(i int) float64 { return h.pc.Prob(i) }

// Selectivity returns the probability mass of the value range [lo, hi) —
// the range-query selectivity estimate when the histogram is used as a
// database sketch.
func (h *Histogram) Selectivity(lo, hi int) float64 {
	return histbuild.Selectivity(h.pc, lo, hi)
}

// Mean returns the expected element index under h.
func (h *Histogram) Mean() float64 { return dist.Mean(h.pc) }

// Quantile returns the smallest element i with CDF(i) >= q, q in [0, 1].
func (h *Histogram) Quantile(q float64) int { return dist.Quantile(h.pc, q) }

// Entropy returns the Shannon entropy of h in bits.
func (h *Histogram) Entropy() float64 { return dist.Entropy(h.pc) }

// Modality returns the number of monotone "modes" of h's pmf (see the
// paper's remark that the Theorem 1.2 lower bound extends to k-modal
// distributions).
func (h *Histogram) Modality() int { return dist.Modality(h.pc) }

// Sampler returns a deterministic sample source drawing i.i.d. from h.
// The alias tables are built once per Histogram and shared immutably
// across all returned sources (each fork draws from its own seeded RNG,
// so distinct sources remain independent and reproducible — the draw
// stream per seed is identical to a freshly built sampler's).
func (h *Histogram) Sampler(seed uint64) Source {
	h.samplerOnce.Do(func() {
		// The prototype's RNG is never drawn from; forks rebind their own.
		h.proto = oracle.NewSampler(h.pc, rng.New(0))
	})
	s := h.proto.Fork(rng.New(seed))
	return s.Draw
}

// DistanceToClass brackets the total-variation distance from h to the
// class of k-histograms: lower <= dTV(h, H_k) <= upper (the two coincide
// up to the distribution-normalization slack of the projection DP).
func (h *Histogram) DistanceToClass(k int) (lower, upper float64, err error) {
	return histdp.DistanceToHk(h.pc, k, intervals.FullDomain(h.pc.N()))
}

// DistanceCurve returns the distance from h to H_k for every k = 1..kMax
// (index k-1) — the scree curve behind "how many bins does this
// distribution need": the curve drops to ~0 at h's true complexity.
func (h *Histogram) DistanceCurve(kMax int) ([]float64, error) {
	return histdp.DistanceCurve(h.pc, kMax, intervals.FullDomain(h.pc.N()))
}

// DistanceToMonotone returns the TV distance from h to the class of
// monotone (non-increasing if decreasing, else non-decreasing) pmfs,
// along with the projection.
func (h *Histogram) DistanceToMonotone(decreasing bool) (float64, *Histogram) {
	d, proj := shape.Monotone(h.pc, decreasing)
	return d, &Histogram{pc: proj}
}

// DistanceToUnimodal returns the TV distance from h to the class of
// single-peak pmfs, with the projection.
func (h *Histogram) DistanceToUnimodal() (float64, *Histogram) {
	d, proj, _ := shape.Unimodal(h.pc)
	return d, &Histogram{pc: proj}
}

// DistanceToKModal returns the TV distance from h to the k-modal class in
// the paper's counting (pmf changes direction at most k times), with the
// projection.
func (h *Histogram) DistanceToKModal(k int) (float64, *Histogram, error) {
	d, proj, err := shape.KModal(h.pc, k)
	if err != nil {
		return 0, nil, err
	}
	return d, &Histogram{pc: proj}, nil
}

// TotalVariation returns the total-variation distance between two
// histograms over the same domain.
func TotalVariation(a, b *Histogram) (float64, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("histtest: domains %d and %d differ", a.N(), b.N())
	}
	return dist.TV(a.pc, b.pc), nil
}

// BuildMethod names a histogram construction algorithm for BuildHistogram.
type BuildMethod string

// The supported construction methods.
const (
	// BuildEquiWidth uses equal-length buckets.
	BuildEquiWidth BuildMethod = "equiwidth"
	// BuildEquiDepth uses equal-mass buckets.
	BuildEquiDepth BuildMethod = "equidepth"
	// BuildMaxDiff places boundaries at the largest value jumps.
	BuildMaxDiff BuildMethod = "maxdiff"
	// BuildVOptimal minimizes the squared error [JKM+98].
	BuildVOptimal BuildMethod = "voptimal"
)

// BuildHistogram constructs a k-bucket histogram sketch from a dataset of
// values in [0, n), using the requested construction (V-optimal, equi-depth,
// equi-width, or MaxDiff).
func BuildHistogram(samples []int, n, k int, method BuildMethod) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("histtest: empty dataset")
	}
	counts := oracle.NewCounts(n, samples)
	pc, err := histbuild.BuildFromSamples(counts, k, histbuild.Method(method))
	if err != nil {
		return nil, err
	}
	return &Histogram{pc: pc}, nil
}

// SamplerFor is a convenience wrapper: a deterministic Source for any
// histogram (equivalent to h.Sampler(seed)).
func SamplerFor(h *Histogram, seed uint64) Source { return h.Sampler(seed) }
