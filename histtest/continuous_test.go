package histtest

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(1, 1, 4); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewGrid(2, 1, 4); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := NewGrid(0, 1, 0); err == nil {
		t.Fatal("zero cells accepted")
	}
	if _, err := NewGrid(math.Inf(-1), 1, 4); err == nil {
		t.Fatal("infinite range accepted")
	}
}

func TestGridCellMapping(t *testing.T) {
	g, err := NewGrid(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1.99, 0}, {2, 1}, {9.99, 4},
		{-5, 0},  // clamped low
		{10, 4},  // clamped high
		{100, 4}, // clamped high
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := g.Cell(c.x); got != c.want {
			t.Fatalf("Cell(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if g.Value(1) != 2 {
		t.Fatalf("Value(1) = %v", g.Value(1))
	}
}

func TestGridRoundTripProperty(t *testing.T) {
	g, _ := NewGrid(-3, 7, 100)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		x := -3 + 10*r.Float64()
		c := g.Cell(x)
		// x must lie inside [Value(c), Value(c+1)).
		if x < g.Value(c)-1e-9 || x >= g.Value(c+1)+1e-9 {
			t.Fatalf("x=%v mapped to cell %d = [%v, %v)", x, c, g.Value(c), g.Value(c+1))
		}
	}
}

func TestTestContinuous(t *testing.T) {
	// A continuous 2-band density: uniform on [0,1) with a heavy band on
	// [0, 0.25). After gridding it is a 2-histogram.
	r := rng.New(2)
	n := 512
	need := RequiredSamples(n, 2, 0.5, Options{})
	xs := make([]float64, need+need/4)
	for i := range xs {
		if r.Bernoulli(0.6) {
			xs[i] = 0.25 * r.Float64()
		} else {
			xs[i] = r.Float64()
		}
	}
	v, err := TestContinuous(xs, 0, 1, n, 2, 0.5, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsKHistogram {
		t.Fatalf("gridded 2-band density rejected: %s %s", v.Stage, v.Detail)
	}
	if _, err := TestContinuous(xs, 1, 0, n, 2, 0.5, Options{}); err == nil {
		t.Fatal("bad range accepted")
	}
}
