package histtest

import (
	"fmt"

	"repro/internal/stats"
)

// TestSourceWithConfidence runs the tester enough independent times (with
// fresh samples each run) and takes the majority verdict, so that the
// resulting decision errs with probability at most delta instead of the
// base 1/3 — the standard amplification the paper invokes in §3.2.1.
// delta must lie in (0, 1/2); the sample cost multiplies by
// Θ(log(1/delta)).
func TestSourceWithConfidence(src Source, n, k int, eps, delta float64, opt Options) (Verdict, error) {
	if delta <= 0 || delta >= 0.5 {
		return Verdict{}, fmt.Errorf("histtest: confidence delta %v must be in (0, 0.5)", delta)
	}
	reps := stats.RepsForConfidence(delta)
	accepts := 0
	var total int64
	var lastReject Verdict
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	for i := 0; i < reps; i++ {
		o := opt
		o.Seed = seed
		seed++
		v, err := TestSource(src, n, k, eps, o)
		if err != nil {
			return Verdict{}, err
		}
		total += v.SamplesUsed
		if v.IsKHistogram {
			accepts++
		} else {
			lastReject = v
		}
	}
	out := Verdict{IsKHistogram: 2*accepts > reps, SamplesUsed: total}
	if !out.IsKHistogram {
		out.Stage = lastReject.Stage
		out.Detail = fmt.Sprintf("majority of %d runs rejected (last: %s)", reps, lastReject.Detail)
	}
	return out, nil
}

// RequiredSamplesWithConfidence returns the nominal total budget of
// TestSourceWithConfidence.
func RequiredSamplesWithConfidence(n, k int, eps, delta float64, opt Options) int64 {
	return RequiredSamples(n, k, eps, opt) * int64(stats.RepsForConfidence(delta))
}
