package histtest

import (
	"encoding/json"
	"math"
	"testing"
)

func TestTestSourceWithConfidence(t *testing.T) {
	h := Uniform(256)
	v, err := TestSourceWithConfidence(h.Sampler(1), 256, 1, 0.5, 0.05, Options{Seed: 2, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsKHistogram {
		t.Fatalf("amplified tester rejected uniform: %s", v.Detail)
	}
	if v.SamplesUsed <= RequiredSamples(256, 1, 0.5, Options{Scale: 0.5}) {
		t.Fatal("amplification should multiply the budget")
	}
	if _, err := TestSourceWithConfidence(h.Sampler(1), 256, 1, 0.5, 0.7, Options{}); err == nil {
		t.Fatal("delta >= 0.5 accepted")
	}
	if _, err := TestSourceWithConfidence(h.Sampler(1), 256, 1, 0.5, 0, Options{}); err == nil {
		t.Fatal("delta = 0 accepted")
	}
}

func TestTestSourceWithConfidenceRejects(t *testing.T) {
	n := 256
	cuts := make([]int, 0, n-1)
	masses := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			cuts = append(cuts, i)
		}
		masses = append(masses, float64(i%2*12+1))
	}
	comb, err := NewHistogram(n, cuts, masses)
	if err != nil {
		t.Fatal(err)
	}
	v, err := TestSourceWithConfidence(comb.Sampler(3), n, 2, 0.4, 0.05, Options{Seed: 4, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsKHistogram {
		t.Fatal("amplified tester accepted the comb")
	}
	if v.Stage == "" || v.Detail == "" {
		t.Fatal("amplified rejection lost its explanation")
	}
}

func TestRequiredSamplesWithConfidence(t *testing.T) {
	base := RequiredSamples(1024, 2, 0.5, Options{})
	amp := RequiredSamplesWithConfidence(1024, 2, 0.5, 0.01, Options{})
	if amp <= base*10 {
		t.Fatalf("δ=0.01 should cost >10× the base budget: %d vs %d", amp, base)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	orig, err := NewHistogram(512, []int{100, 300}, []float64{0.5, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	tv, err := TotalVariation(orig, &back)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 1e-12 {
		t.Fatalf("round trip drifted by %v", tv)
	}
	if back.N() != 512 || back.Buckets() != 3 {
		t.Fatalf("round trip shape: n=%d buckets=%d", back.N(), back.Buckets())
	}
}

func TestHistogramJSONValidation(t *testing.T) {
	var h Histogram
	if err := json.Unmarshal([]byte(`{"n":4,"cuts":[2],"masses":[0.5]}`), &h); err == nil {
		t.Fatal("mismatched payload accepted")
	}
	if err := json.Unmarshal([]byte(`{"n":0,"cuts":[],"masses":[1]}`), &h); err == nil {
		t.Fatal("zero-domain payload accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &h); err == nil {
		t.Fatal("garbage accepted")
	}
	// Masses are normalized on decode.
	if err := json.Unmarshal([]byte(`{"n":4,"cuts":[2],"masses":[3,1]}`), &h); err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Selectivity(0, 2)-0.75) > 1e-12 {
		t.Fatalf("normalized mass = %v", h.Selectivity(0, 2))
	}
}
