package histtest

import (
	"encoding/json"
	"math"
	"testing"
)

// sameHistogram reports whether two histograms are the same distribution
// up to the float drift UnmarshalJSON's renormalization may introduce
// (NewHistogram divides by the decoded total, which is 1 only up to
// rounding).
func sameHistogram(t *testing.T, a, b *Histogram, context string) {
	t.Helper()
	if a.N() != b.N() || a.Buckets() != b.Buckets() {
		t.Fatalf("%s: shape changed: %d/%d -> %d/%d", context, a.N(), a.Buckets(), b.N(), b.Buckets())
	}
	ap, bp := a.pc.Pieces(), b.pc.Pieces()
	for i := range ap {
		if ap[i].Iv != bp[i].Iv {
			t.Fatalf("%s: bucket %d interval %v -> %v", context, i, ap[i].Iv, bp[i].Iv)
		}
		if diff := math.Abs(ap[i].Mass - bp[i].Mass); diff > 1e-12 {
			t.Fatalf("%s: bucket %d mass %v -> %v (drift %v)", context, i, ap[i].Mass, bp[i].Mass, diff)
		}
	}
}

// FuzzSerializeRoundTrip fuzzes the JSON wire format from both ends:
// every constructible histogram must survive marshal → unmarshal with
// identical bucket structure and masses (up to renormalization rounding
// of at most 1e-12), and arbitrary attacker-controlled bytes must either
// be rejected by UnmarshalJSON or decode to a histogram that itself
// round-trips stably — no accept-then-corrupt states.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(1), uint64(0), []byte(`{"n":4,"cuts":[2],"masses":[0.5,0.5]}`))
	f.Add(uint16(64), uint16(4), uint64(7), []byte(`{"n":0}`))
	f.Add(uint16(1000), uint16(32), uint64(9), []byte(`{"n":3,"cuts":[9],"masses":[1,1]}`))
	f.Add(uint16(17), uint16(17), uint64(3), []byte(`{"n":2,"cuts":[],"masses":[-1]}`))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint16, seed uint64, raw []byte) {
		// Forward direction: generated histograms round-trip.
		n := int(nRaw)%4096 + 1
		k := int(kRaw)%n + 1
		h, err := Random(n, k, seed)
		if err != nil {
			t.Fatalf("Random(%d,%d,%d): %v", n, k, seed, err)
		}
		enc, err := json.Marshal(h)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Histogram
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("unmarshal of own output %s: %v", enc, err)
		}
		sameHistogram(t, h, &back, "generated")

		// Reverse direction: arbitrary bytes either fail validation or
		// yield a valid histogram whose own encoding round-trips.
		var wild Histogram
		if err := json.Unmarshal(raw, &wild); err != nil {
			return // rejected — fine
		}
		if wild.N() < 1 || wild.Buckets() < 1 {
			t.Fatalf("accepted invalid payload %q: n=%d buckets=%d", raw, wild.N(), wild.Buckets())
		}
		total := 0.0
		for _, p := range wild.pc.Pieces() {
			if p.Mass < 0 || math.IsNaN(p.Mass) || math.IsInf(p.Mass, 0) {
				t.Fatalf("accepted payload %q with mass %v", raw, p.Mass)
			}
			total += p.Mass
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("accepted payload %q decodes to total mass %v", raw, total)
		}
		mid, err := json.Marshal(&wild)
		if err != nil {
			t.Fatalf("accepted payload %q but cannot re-marshal: %v", raw, err)
		}
		var again Histogram
		if err := json.Unmarshal(mid, &again); err != nil {
			t.Fatalf("own output %s of accepted payload rejected: %v", mid, err)
		}
		sameHistogram(t, &wild, &again, "wild")
	})
}
