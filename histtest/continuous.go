package histtest

import (
	"fmt"
	"math"
)

// Grid discretizes a continuous domain [lo, hi) into n equal-width cells,
// realizing the paper's Section 2 note ("On discrete domains"): the
// testing machinery extends to continuous data by suitable gridding. The
// choice of n trades resolution against sample cost — the tester's
// n-dependent term grows as √n — and a k-histogram density over [lo, hi)
// with cut points on the grid maps to a k-histogram over [0, n).
type Grid struct {
	Lo, Hi float64
	N      int
	width  float64
}

// NewGrid validates the range and cell count.
func NewGrid(lo, hi float64, n int) (*Grid, error) {
	if !(lo < hi) || math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("histtest: bad grid range [%v, %v)", lo, hi)
	}
	if n < 1 {
		return nil, fmt.Errorf("histtest: grid needs n >= 1 cells, got %d", n)
	}
	return &Grid{Lo: lo, Hi: hi, N: n, width: (hi - lo) / float64(n)}, nil
}

// Cell maps a continuous value to its grid cell in [0, n). Values outside
// [lo, hi) clamp to the boundary cells (standard practice for histogram
// sketches; callers wanting strict behaviour should filter first).
func (g *Grid) Cell(x float64) int {
	if math.IsNaN(x) {
		return 0
	}
	c := int(math.Floor((x - g.Lo) / g.width))
	if c < 0 {
		return 0
	}
	if c >= g.N {
		return g.N - 1
	}
	return c
}

// Discretize maps a continuous dataset to grid cells, ready for
// TestSamples or BuildHistogram.
func (g *Grid) Discretize(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = g.Cell(x)
	}
	return out
}

// Value returns the left edge of cell c — the inverse mapping for
// reporting bucket boundaries of a built sketch in original units.
func (g *Grid) Value(c int) float64 {
	return g.Lo + float64(c)*g.width
}

// TestContinuous grids a continuous dataset and tests it for
// k-histogram-ness over the grid (see Grid for the semantics: the verdict
// is about the gridded distribution).
func TestContinuous(xs []float64, lo, hi float64, n, k int, eps float64, opt Options) (Verdict, error) {
	g, err := NewGrid(lo, hi, n)
	if err != nil {
		return Verdict{}, err
	}
	return TestSamples(g.Discretize(xs), n, k, eps, opt)
}
