// Integration tests: cross-module scenarios wiring the tester, the
// lower-bound instances, the baselines, and the public API together.
package repro

import (
	"math"
	"testing"

	"repro/histtest"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/lowerbound"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// TestTesterOnPaninskiFamily wires the Proposition 4.1 instances to the
// full tester: Q_ε members must be rejected for k = 1 (they are ε-far
// from H_k for all k < n/3), while the uniform distribution is accepted.
func TestTesterOnPaninskiFamily(t *testing.T) {
	r := rng.New(1)
	n := 512
	eps := 1.0 / 6
	cfg := core.PracticalConfig()

	acceptsUniform, rejectsQ := 0, 0
	const trials = 8
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(dist.Uniform(n), r.Split())
		res, err := core.Test(s, r, 1, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			acceptsUniform++
		}

		q, err := lowerbound.Paninski(r, n, eps, 6)
		if err != nil {
			t.Fatal(err)
		}
		sq := oracle.NewSampler(q, r.Split())
		resQ, err := core.Test(sq, r, 1, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !resQ.Accept {
			rejectsQ++
		}
	}
	if acceptsUniform < trials*3/4 {
		t.Fatalf("uniform accepted only %d/%d", acceptsUniform, trials)
	}
	if rejectsQ < trials*3/4 {
		t.Fatalf("Q_ε rejected only %d/%d", rejectsQ, trials)
	}
}

// TestSupportSizeReductionEndToEnd runs the Proposition 4.2 reduction
// with an affordable tester and checks that it solves the SUPPSIZE
// promise problem.
func TestSupportSizeReductionEndToEnd(t *testing.T) {
	r := rng.New(2)
	m, n := 30, 2100
	rd, err := lowerbound.NewReduction(n, m)
	if err != nil {
		t.Fatal(err)
	}
	tester := baselines.NewNaive()

	decide := func(size int) int {
		accepts := 0
		const trials = 5
		for i := 0; i < trials; i++ {
			d, err := lowerbound.SupportInstance(m, size)
			if err != nil {
				t.Fatal(err)
			}
			inner := oracle.NewSampler(d, r.Split())
			emb, err := rd.Embed(inner, r)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := tester.Run(nil, emb, r, rd.K(), rd.Eps())
			if err != nil {
				t.Fatal(err)
			}
			if dec.Accept {
				accepts++
			}
		}
		return accepts
	}

	if got := decide(lowerbound.SmallSupport(m)); got < 4 {
		t.Fatalf("small-support side accepted only %d/5", got)
	}
	if got := decide(lowerbound.LargeSupport(m)); got > 1 {
		t.Fatalf("large-support side accepted %d/5", got)
	}
}

// TestGeneratedWorkloadsRoundTrip checks the generator / distance-oracle
// contract the experiments rely on: generated k-histograms measure as
// distance ~0 from H_k, and far instances measure as far.
func TestGeneratedWorkloadsRoundTrip(t *testing.T) {
	r := rng.New(3)
	for _, k := range []int{1, 3, 7} {
		d := gen.KHistogram(r, 2048, k)
		lower, upper, err := histdp.DistanceToHk(d, k, intervals.FullDomain(2048))
		if err != nil {
			t.Fatal(err)
		}
		if lower != 0 || upper > 1e-9 {
			t.Fatalf("k=%d histogram measures [%v, %v] from its own class", k, lower, upper)
		}
		far := gen.FarFromHk(r, 2048, k, 0.4, 64)
		lower, _, err = histdp.DistanceToHk(far, k, intervals.FullDomain(2048))
		if err != nil {
			t.Fatal(err)
		}
		if lower < 0.25 {
			t.Fatalf("k=%d far instance measures only %v", k, lower)
		}
	}
}

// TestPublicPipeline runs the full public flow: generate → select k →
// build sketch → verify sketch quality and selectivity consistency.
func TestPublicPipeline(t *testing.T) {
	n := 1024
	truth, err := histtest.NewHistogram(n, []int{300, 700}, []float64{0.5, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := histtest.SmallestK(truth.Sampler(5), n, 0.4, histtest.SelectOptions{
		Options: histtest.Options{Seed: 6},
		Reps:    3,
		KMax:    32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K < 1 || sel.K > 6 {
		t.Fatalf("selected k = %d for a 3-histogram", sel.K)
	}

	src := truth.Sampler(7)
	data := make([]int, 200000)
	for i := range data {
		data[i] = src()
	}
	k := sel.K
	if k < 3 {
		k = 3 // sketch at least at the true complexity for the check below
	}
	sketch, err := histtest.BuildHistogram(data, n, k, histtest.BuildVOptimal)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := histtest.TotalVariation(truth, sketch)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Fatalf("sketch TV distance = %v", tv)
	}
	// Selectivity answers agree with the truth on coarse ranges.
	for _, q := range [][2]int{{0, 300}, {300, 700}, {700, n}} {
		got := sketch.Selectivity(q[0], q[1])
		want := truth.Selectivity(q[0], q[1])
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("selectivity [%d,%d): %v vs %v", q[0], q[1], got, want)
		}
	}
}

// TestScaleMonotonicity verifies the one-knob budget contract across the
// whole pipeline: scaling the config scales realized sample usage in the
// same direction.
func TestScaleMonotonicity(t *testing.T) {
	r := rng.New(8)
	d := gen.KHistogram(r, 1024, 3)
	usage := func(scale float64) int64 {
		s := oracle.NewSampler(d, r.Split())
		res, err := core.Test(s, r, 3, 0.5, core.PracticalConfig().Scale(scale))
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace.TotalSamples()
	}
	lo, hi := usage(0.25), usage(1)
	if lo >= hi {
		t.Fatalf("scale 0.25 used %d >= scale 1's %d", lo, hi)
	}
	if float64(hi)/float64(lo) < 2 {
		t.Fatalf("scaling barely changed usage: %d vs %d", lo, hi)
	}
}

// TestPaperConfigIsGuarded documents why the literal paper constants are
// configuration rather than the default: even on a 64-element domain the
// nominal budget exceeds 10¹¹ samples, and the budget guard turns the
// impossible run into a clear error instead of an OOM.
func TestPaperConfigIsGuarded(t *testing.T) {
	cfg := core.PaperConfig()
	if est := core.ExpectedSamples(64, 1, 0.5, cfg); est < 1e10 {
		t.Fatalf("paper budget surprisingly small: %d", est)
	}
	r := rng.New(9)
	s := oracle.NewSampler(dist.Uniform(64), r)
	if _, err := core.Test(s, r, 1, 0.5, cfg); err == nil {
		t.Fatal("budget guard did not trip")
	}
	// Scaled far down, the same constants run fine.
	res, err := core.Test(s, r, 1, 0.5, cfg.Scale(1.0/100000))
	if err != nil {
		t.Fatal(err)
	}
	_ = res // verdict at this scale is not meaningful, only that it runs
}
