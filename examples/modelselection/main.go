// Model selection: the pipeline from the paper's introduction
// (Section 1.1). A dataset's distribution has an unknown histogram
// complexity; the tester, driven by a doubling search, finds the smallest
// adequate bucket count k — using far fewer samples than learning the
// distribution outright — and an agnostic learner then builds the final
// k-bucket summary.
//
//	go run ./examples/modelselection
package main

import (
	"fmt"
	"log"

	"repro/histtest"
)

func main() {
	const (
		n   = 2048
		eps = 0.35
	)

	// Ground truth: a 6-histogram modeling a bimodal column (e.g. ages in
	// a two-cohort table). Its complexity is hidden from the search.
	truth, err := histtest.NewHistogram(n,
		[]int{200, 420, 700, 1200, 1500},
		[]float64{0.05, 0.30, 0.10, 0.02, 0.38, 0.15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: a %d-histogram over [0, %d)\n", truth.Complexity(), n)

	res, err := histtest.SmallestK(truth.Sampler(7), n, eps, histtest.SelectOptions{
		Options: histtest.Options{Seed: 99},
		Reps:    3,
		KMax:    128,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doubling search probed k = %v\n", res.Probed)
	fmt.Printf("selected k = %d using %d samples total\n\n", res.K, res.SamplesUsed)

	// Learn the final sketch at the selected k from a fresh dataset.
	src := truth.Sampler(8)
	data := make([]int, 300000)
	for i := range data {
		data[i] = src()
	}
	sketch, err := histtest.BuildHistogram(data, n, res.K, histtest.BuildVOptimal)
	if err != nil {
		log.Fatal(err)
	}
	tv, err := histtest.TotalVariation(truth, sketch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V-optimal sketch at k=%d: TV distance to truth = %.4f (target ε=%.2f)\n",
		res.K, tv, eps)

	// The alternative the paper argues against: skipping the test and
	// always using a fixed small bucket budget.
	rigid, err := histtest.BuildHistogram(data, n, 2, histtest.BuildVOptimal)
	if err != nil {
		log.Fatal(err)
	}
	tvRigid, _ := histtest.TotalVariation(truth, rigid)
	fmt.Printf("rigid k=2 sketch for comparison: TV distance = %.4f\n", tvRigid)
}
