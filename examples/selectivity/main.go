// Selectivity estimation: the database use-case that motivates histogram
// testing ([Koo80], [PIHS96], [JKM+98] in the paper's introduction). A
// query optimizer keeps a histogram sketch of a column to estimate range
// predicates' selectivity. The tester validates the bin budget before the
// sketch is built: if the column passes the k-histogram test, a k-bucket
// V-optimal sketch is trustworthy; if it fails, the optimizer knows k
// buckets cannot represent this column within ε.
//
//	go run ./examples/selectivity
package main

import (
	"fmt"
	"log"

	"repro/histtest"
)

// column simulates a table column: order totals concentrated in a few
// price bands (a natural near-histogram). The row count is sized so the
// tester's sample budget fits in the dataset.
func column(rowsNeeded int) ([]int, *histtest.Histogram, error) {
	const n = 4096
	truth, err := histtest.NewHistogram(n,
		[]int{100, 500, 520, 2000, 3500},
		[]float64{0.02, 0.45, 0.08, 0.30, 0.10, 0.05})
	if err != nil {
		return nil, nil, err
	}
	src := truth.Sampler(1234)
	rows := make([]int, rowsNeeded)
	for i := range rows {
		rows[i] = src()
	}
	return rows, truth, nil
}

func main() {
	const (
		n   = 4096
		eps = 0.35
	)
	need := histtest.RequiredSamples(n, 6, eps, histtest.Options{})
	if r2 := histtest.RequiredSamples(n, 2, eps, histtest.Options{}); r2 > need {
		need = r2
	}
	rows, truth, err := column(int(need + need/4))
	if err != nil {
		log.Fatal(err)
	}

	// Validate candidate bin budgets with the tester before building.
	for _, k := range []int{2, 6} {
		v, err := histtest.TestSamples(rows, n, k, eps, histtest.Options{Seed: 5})
		if err != nil {
			log.Fatalf("k=%d: %v", k, err)
		}
		verdict := "REJECT (needs more bins)"
		if v.IsKHistogram {
			verdict = "ACCEPT (k bins suffice)"
		}
		fmt.Printf("validate k=%d: %s  (%d samples)\n", k, verdict, v.SamplesUsed)
	}

	// Build the sketch at the accepted budget and answer range queries.
	sketch, err := histtest.BuildHistogram(rows, n, 6, histtest.BuildVOptimal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nV-optimal sketch: %d buckets for %d rows\n\n", sketch.Buckets(), len(rows))
	queries := []struct {
		name   string
		lo, hi int
	}{
		{"price < 100", 0, 100},
		{"100 <= price < 520", 100, 520},
		{"price >= 2000", 2000, n},
		{"narrow band [500,520)", 500, 520},
	}
	fmt.Printf("%-24s %10s %10s %10s\n", "query", "estimated", "true", "abs err")
	for _, q := range queries {
		est := sketch.Selectivity(q.lo, q.hi)
		want := truth.Selectivity(q.lo, q.hi)
		diff := est - want
		if diff < 0 {
			diff = -diff
		}
		fmt.Printf("%-24s %10.4f %10.4f %10.4f\n", q.name, est, want, diff)
	}
}
