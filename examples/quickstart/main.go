// Quickstart: test whether a stream of samples comes from a k-histogram
// distribution.
//
//	go run ./examples/quickstart
//
// Builds a known 3-histogram and a far-from-histogram staircase, runs the
// tester on both, and prints the verdicts with their sample usage.
package main

import (
	"fmt"
	"log"

	"repro/histtest"
)

func main() {
	const (
		n   = 1 << 12 // domain {0, ..., 4095}
		k   = 3       // histogram class to test against
		eps = 0.4     // distance parameter
	)

	// A genuine 3-histogram: three flat buckets.
	hist, err := histtest.NewHistogram(n, []int{n / 4, n / 2}, []float64{0.5, 0.1, 0.4})
	if err != nil {
		log.Fatal(err)
	}

	// A 48-step high-contrast sawtooth: provably far from every
	// 3-histogram (the printed DP bound exceeds ε).
	cuts := make([]int, 0, 47)
	masses := make([]float64, 0, 48)
	for j := 0; j < 48; j++ {
		if j > 0 {
			cuts = append(cuts, j*n/48)
		}
		masses = append(masses, float64(j%2*12+1))
	}
	stairs, err := histtest.NewHistogram(n, cuts, masses)
	if err != nil {
		log.Fatal(err)
	}
	if lo, _, err := stairs.DistanceToClass(k); err == nil {
		fmt.Printf("staircase is provably %.3f-far from every %d-histogram\n\n", lo, k)
	}

	fmt.Printf("budget estimate: ~%d samples per test (n=%d, k=%d, eps=%.2f)\n\n",
		histtest.RequiredSamples(n, k, eps, histtest.Options{}), n, k, eps)

	for _, tc := range []struct {
		name string
		src  histtest.Source
	}{
		{"3-histogram", hist.Sampler(1)},
		{"staircase", stairs.Sampler(2)},
	} {
		v, err := histtest.TestSource(tc.src, n, k, eps, histtest.Options{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		if v.IsKHistogram {
			fmt.Printf("%-12s ACCEPT  (%d samples)\n", tc.name, v.SamplesUsed)
		} else {
			fmt.Printf("%-12s REJECT  (%d samples; stage %s)\n", tc.name, v.SamplesUsed, v.Stage)
		}
	}
}
