// Stream drift detection: monitor a live data stream and alert when its
// distribution stops being representable by the k-histogram model the
// downstream system assumes. Events flow through a fixed-size chunker
// (internal/stream); each complete chunk is handed to the tester. An
// accepted chunk keeps the model, a rejected one signals that the summary
// (and anything tuned to it — query plans, alert thresholds) must be
// rebuilt with more bins.
//
//	go run ./examples/streamcheck
package main

import (
	"fmt"
	"log"

	"repro/histtest"
	"repro/internal/stream"
)

const (
	n   = 1 << 11
	k   = 3
	eps = 0.45
)

// phase describes one regime of the simulated stream.
type phase struct {
	name   string
	src    histtest.Source
	events int
}

func phases(window int) ([]phase, error) {
	// Regime A: a clean 3-histogram (the provisioned model).
	clean, err := histtest.NewHistogram(n, []int{400, 1400}, []float64{0.3, 0.5, 0.2})
	if err != nil {
		return nil, err
	}
	// Regime B: mild drift — still a 3-histogram, shifted weights.
	drifted, err := histtest.NewHistogram(n, []int{400, 1400}, []float64{0.45, 0.35, 0.2})
	if err != nil {
		return nil, err
	}
	// Regime C: structural break — a 40-step sawtooth no 3-histogram fits.
	cuts := make([]int, 0, 39)
	masses := make([]float64, 0, 40)
	for j := 0; j < 40; j++ {
		if j > 0 {
			cuts = append(cuts, j*n/40)
		}
		masses = append(masses, float64(j%5+1))
	}
	broken, err := histtest.NewHistogram(n, cuts, masses)
	if err != nil {
		return nil, err
	}
	return []phase{
		{"regime A (provisioned 3-histogram)", clean.Sampler(10), window},
		{"regime B (drifted, still 3 bands)", drifted.Sampler(11), window},
		{"regime C (structural break)", broken.Sampler(12), window},
	}, nil
}

func main() {
	window := int(histtest.RequiredSamples(n, k, eps, histtest.Options{}))
	window += window / 4
	ps, err := phases(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunk size: %d events; model: %d-histogram over [0,%d) at ε=%.2f\n\n", window, k, n, eps)

	// The chunker hands each complete window to the tester.
	seed := uint64(100)
	names := make([]string, 0, len(ps))
	chunker, err := stream.NewChunker(window, func(samples []int) (bool, error) {
		v, err := histtest.TestSamples(samples, n, k, eps, histtest.Options{Seed: seed})
		if err != nil {
			return false, err
		}
		seed++
		return v.IsKHistogram, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replay the regimes through the stream.
	for _, p := range ps {
		names = append(names, p.name)
		for i := 0; i < p.events; i++ {
			chunker.Offer(p.src())
		}
	}

	for i, v := range chunker.Verdicts() {
		status := "OK      model holds"
		if v.Err != nil {
			status = "ERROR   " + v.Err.Error()
		} else if !v.Accept {
			status = "ALERT   rebuild summary"
		}
		fmt.Printf("%-38s %s\n", names[i], status)
	}
}
