// A/B comparison: decide from samples alone whether two deployments
// serve the same distribution — canary analysis with the two-sample
// (closeness) tester, the [CDVV14] primitive the paper's χ² machinery
// descends from (footnote 2). No model of either side is needed; the
// cost is O(max(n^{2/3}/ε^{4/3}, √n/ε²)) samples per side, sublinear in
// the domain.
//
//	go run ./examples/abcompare
package main

import (
	"fmt"
	"log"

	"repro/histtest"
)

const (
	n   = 1 << 12 // e.g. bucketized latency in 4096 microsecond cells
	eps = 0.25
)

func main() {
	// Version A: the production latency profile.
	prodA, err := histtest.NewHistogram(n,
		[]int{300, 800, 2000},
		[]float64{0.15, 0.6, 0.2, 0.05})
	if err != nil {
		log.Fatal(err)
	}
	// Canary 1: identical behaviour.
	sameCanary := prodA
	// Canary 2: a regression shifted mass into the tail.
	slowCanary, err := histtest.NewHistogram(n,
		[]int{300, 800, 2000},
		[]float64{0.08, 0.35, 0.25, 0.32})
	if err != nil {
		log.Fatal(err)
	}

	check := func(name string, canary *histtest.Histogram, seed uint64) {
		v, err := histtest.TestCloseness(
			prodA.Sampler(seed), canary.Sampler(seed+100), n, eps,
			histtest.Options{Seed: seed + 200},
		)
		if err != nil {
			log.Fatal(err)
		}
		status := "SAME      promote the canary"
		if !v.IsKHistogram {
			status = "DIVERGED  hold the rollout (" + v.Detail + ")"
		}
		fmt.Printf("%-22s %s  [%d samples]\n", name, status, v.SamplesUsed)
	}

	fmt.Printf("two-sample canary analysis over [0,%d), ε=%.2f\n\n", n, eps)
	check("canary: identical", sameCanary, 10)
	check("canary: tail regression", slowCanary, 20)

	// For context: the true divergence of the bad canary.
	if tv, err := histtest.TotalVariation(prodA, slowCanary); err == nil {
		fmt.Printf("\n(true TV distance of the regressed canary: %.3f)\n", tv)
	}
}
