// Shape audit: beyond "how many bins", characterize WHAT shape a
// distribution has — monotone, unimodal, k-modal, or none of the above —
// using the ℓ1 shape projections (the classes of the paper's Theorem 1.2
// remark and its [ADK15] lineage). A data platform can use this to decide
// which compressed representation (monotone fit, unimodal fit, k-bucket
// histogram) is faithful enough for a column.
//
//	go run ./examples/shapeaudit
package main

import (
	"fmt"
	"log"

	"repro/histtest"
)

func audit(name string, h *histtest.Histogram, eps float64) {
	fmt.Printf("%s (complexity %d, modality %d, entropy %.2f bits)\n",
		name, h.Complexity(), h.Modality(), h.Entropy())

	if d, _ := h.DistanceToMonotone(true); d <= eps {
		fmt.Printf("  monotone-decreasing fit OK (distance %.3f)\n", d)
	} else if d, _ := h.DistanceToMonotone(false); d <= eps {
		fmt.Printf("  monotone-increasing fit OK (distance %.3f)\n", d)
	} else if d, _ := h.DistanceToUnimodal(); d <= eps {
		fmt.Printf("  unimodal fit OK (distance %.3f)\n", d)
	} else {
		for k := 2; k <= 8; k *= 2 {
			if d, _, err := h.DistanceToKModal(k); err == nil && d <= eps {
				fmt.Printf("  %d-modal fit OK (distance %.3f)\n", k, d)
				return
			}
		}
		lo, _, _ := h.DistanceToClass(8)
		fmt.Printf("  no simple shape fits; 8-bucket histogram distance %.3f\n", lo)
	}
}

func main() {
	const n = 1024
	const eps = 0.05

	// A long-tailed rank distribution: monotone decreasing.
	zipfCuts := []int{8, 32, 128, 512}
	zipf, err := histtest.NewHistogram(n, zipfCuts, []float64{0.4, 0.3, 0.17, 0.09, 0.04})
	if err != nil {
		log.Fatal(err)
	}

	// A latency-like profile: single peak with a shoulder.
	peak, err := histtest.NewHistogram(n, []int{200, 300, 420, 700}, []float64{0.1, 0.35, 0.3, 0.2, 0.05})
	if err != nil {
		log.Fatal(err)
	}

	// A two-cohort mixture: bimodal (2-modal in the paper's counting needs
	// up-down-up-down = 3 direction changes).
	bimodal, err := histtest.NewHistogram(n,
		[]int{150, 250, 500, 650, 800},
		[]float64{0.08, 0.3, 0.07, 0.33, 0.14, 0.08})
	if err != nil {
		log.Fatal(err)
	}

	// A sawtooth: no small shape class fits.
	cuts := make([]int, 0, 15)
	masses := make([]float64, 0, 16)
	for j := 0; j < 16; j++ {
		if j > 0 {
			cuts = append(cuts, j*n/16)
		}
		masses = append(masses, float64(j%2*9+1))
	}
	saw, err := histtest.NewHistogram(n, cuts, masses)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		h    *histtest.Histogram
	}{
		{"rank popularity", zipf},
		{"latency profile", peak},
		{"two cohorts", bimodal},
		{"sawtooth", saw},
	} {
		audit(tc.name, tc.h, eps)
		fmt.Println()
	}
}
