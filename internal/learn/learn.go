// Package learn implements the learning-stage subroutines of Algorithm 1:
//
//   - ApproxPart (Proposition 3.4, from the full version of [ADK15]): from
//     O(b log b) samples, partition the domain so that heavy elements
//     (mass >= 1/b) are singletons and every other interval has small mass.
//   - LaplaceEstimate / Learn (Lemma 3.5, following the Laplace/add-one
//     estimator analysis of [KOPS15]): from O(ℓ/ε²) samples over an
//     ℓ-interval partition, output a flattened histogram D̂ that is
//     ε²-close in χ² distance to the flattening of D — except possibly on
//     D's breakpoint intervals, which the sieve later removes.
package learn

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// PartResult is the output of ApproxPart.
type PartResult struct {
	// Partition divides [0, n) into K intervals.
	Partition *intervals.Partition
	// Heavy[j] reports whether interval j was emitted as a heavy singleton
	// (empirical mass >= the singleton threshold).
	Heavy []bool
	// SamplesUsed is the number of samples drawn.
	SamplesUsed int
}

// ApproxPartSamples returns the sample budget C·b·log2(b+2) used by
// ApproxPart.
func ApproxPartSamples(b, c float64) int {
	return int(math.Ceil(c * b * math.Log2(b+2)))
}

// ApproxPart draws O(b log b) samples and returns a partition of the
// domain such that, with high probability:
//
//	(i)  every element with true mass >= 1/b is a singleton interval;
//	(ii) every non-singleton interval has true mass <= 2/b;
//	(iii) the number of intervals K is O(b).
//
// The greedy differs from the paper's statement only in the constant of
// (iii): K <= 7b/3 + #heavy + 2 rather than 2b+2, because trailing light
// chunks before each heavy singleton are kept separate instead of merged
// (merging would break the 2/b bound of (ii)). Downstream only O(b)
// matters. c scales the sample budget (the paper's O(·); default 20 in
// core.Config).
func ApproxPart(o oracle.Oracle, r *rng.RNG, b, c float64) (*PartResult, error) {
	return ApproxPartContext(context.Background(), o, r, b, c)
}

// ApproxPartContext is ApproxPart honoring ctx: the context is checked
// before the sample batch is drawn (batch-draw granularity; the batch
// itself is not interruptible), and ctx.Err() is returned on
// cancellation with no samples consumed and no pooled buffers retained.
func ApproxPartContext(ctx context.Context, o oracle.Oracle, r *rng.RNG, b, c float64) (*PartResult, error) {
	n := o.N()
	if b < 1 {
		return nil, fmt.Errorf("learn: ApproxPart needs b >= 1, got %v", b)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := ApproxPartSamples(b, c)
	// Pooled tally: identical draw sequence to NewCounts(n, DrawN(o, m))
	// without materializing the m-sample slice.
	counts := oracle.DrawNCounts(o, m)
	defer counts.Release()

	// Thresholds on empirical mass: an element is heavy at 3/(4b); an
	// accumulating chunk closes at 3/(4b).
	heavyThr := 3.0 / (4 * b) * float64(m)
	chunkThr := 3.0 / (4 * b) * float64(m)

	// K <= ~7b/3 + #heavy + 2 (see the doc comment); pre-size so the chunk
	// walk appends without regrowing.
	estK := int(7*b/3) + 4
	ivs := make([]intervals.Interval, 0, estK)
	heavy := make([]bool, 0, estK)
	start := 0
	acc := 0.0
	closeChunk := func(end int) {
		if end > start {
			ivs = append(ivs, intervals.Interval{Lo: start, Hi: end})
			heavy = append(heavy, false)
		}
		start = end
		acc = 0
	}
	// Only sampled elements can be heavy or contribute mass; walk the
	// sampled elements in order and close chunks lazily so the cost is
	// O(m + K), not O(n).
	counts.ForEach(func(i, ni int) {
		ci := float64(ni)
		if ci >= heavyThr {
			closeChunk(i)
			ivs = append(ivs, intervals.Interval{Lo: i, Hi: i + 1})
			heavy = append(heavy, true)
			start = i + 1
			return
		}
		acc += ci
		if acc >= chunkThr {
			closeChunk(i + 1)
		}
	})
	closeChunk(n)
	if len(ivs) == 0 {
		// No samples at all (possible only for tiny m): single interval.
		ivs = append(ivs, intervals.Interval{Lo: 0, Hi: n})
		heavy = append(heavy, false)
	}
	p, err := intervals.NewPartition(n, ivs)
	if err != nil {
		return nil, fmt.Errorf("learn: internal partition error: %w", err)
	}
	return &PartResult{Partition: p, Heavy: heavy, SamplesUsed: m}, nil
}

// LaplaceEstimate computes the add-one estimator of Lemma 3.5 from counts
// tallied over the partition p: interval I_i receives mass
// (m_{I_i} + 1) / (m + ℓ), spread uniformly. The masses sum to one by
// construction.
func LaplaceEstimate(counts *oracle.Counts, p *intervals.Partition) *dist.PiecewiseConstant {
	ell := p.Count()
	m := counts.Total()
	masses := make([]float64, ell)
	for j := range masses {
		masses[j] = 1.0 / float64(m+ell)
	}
	counts.ForEach(func(i, ni int) {
		masses[p.Find(i)] += float64(ni) / float64(m+ell)
	})
	d, err := dist.FromWeights(p, masses)
	if err != nil {
		panic(err) // masses are positive and complete by construction
	}
	return d
}

// LearnSamples returns the sample budget ⌈c·ℓ/ε²⌉ used by Learn.
func LearnSamples(ell int, eps, c float64) int {
	return int(math.Ceil(c * float64(ell) / (eps * eps)))
}

// Learn draws O(ℓ/ε²) samples and returns the Laplace estimate over p.
// Guarantee (Lemma 3.5): if D ∈ H_k, then with probability >= 9/10 the
// output D̂ satisfies dχ²(D̃^J ‖ D̂) <= ε², where D̃^J is D flattened on
// every non-breakpoint interval of p. c scales the sample budget.
func Learn(o oracle.Oracle, r *rng.RNG, p *intervals.Partition, eps, c float64) (*dist.PiecewiseConstant, int) {
	est, m, _ := LearnContext(context.Background(), o, r, p, eps, c)
	return est, m
}

// LearnContext is Learn honoring ctx at batch-draw granularity: the
// context is checked before the sample batch is drawn, and ctx.Err() is
// returned on cancellation with nothing drawn. The pooled count buffer
// is released on every path, including a panicking estimator.
func LearnContext(ctx context.Context, o oracle.Oracle, r *rng.RNG, p *intervals.Partition, eps, c float64) (*dist.PiecewiseConstant, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	m := LearnSamples(p.Count(), eps, c)
	counts := oracle.DrawNCounts(o, m)
	defer counts.Release()
	return LaplaceEstimate(counts, p), m, nil
}

// EmpiricalFlattening returns the plain empirical flattening over p:
// interval I receives mass m_I/m. Used by the agnostic-TV baselines.
// It panics if counts is empty.
func EmpiricalFlattening(counts *oracle.Counts, p *intervals.Partition) *dist.PiecewiseConstant {
	m := counts.Total()
	if m == 0 {
		panic("learn: empirical flattening of zero samples")
	}
	masses := make([]float64, p.Count())
	counts.ForEach(func(i, ni int) {
		masses[p.Find(i)] += float64(ni) / float64(m)
	})
	d, err := dist.FromWeights(p, masses)
	if err != nil {
		panic(err)
	}
	return d
}

// BreakpointIntervals returns the indices of the intervals of p that
// contain a breakpoint of the piecewise-constant distribution d (an i with
// d(i) != d(i+1) strictly inside the interval). A k-histogram has at most
// k-1 breakpoints, hence at most k-1 breakpoint intervals (the paper's set
// J in Lemma 3.5). Used by tests and experiments that need the ground
// truth.
func BreakpointIntervals(d *dist.PiecewiseConstant, p *intervals.Partition) []int {
	if d.N() != p.N() {
		panic("learn: mismatched domains")
	}
	var out []int
	for _, cut := range d.Compact().Partition().Boundaries() {
		// The breakpoint is between elements cut-1 and cut; it is interior
		// to interval j iff j contains both.
		j := p.Find(cut)
		if p.Interval(j).Contains(cut - 1) {
			if len(out) == 0 || out[len(out)-1] != j {
				out = append(out, j)
			}
		}
	}
	return out
}
