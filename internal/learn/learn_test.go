package learn

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestApproxPartHeavySingletons(t *testing.T) {
	// One element with mass 0.5 over n=1000, rest uniform: with b = 10,
	// the heavy element must come out as a singleton.
	r := rng.New(1)
	n := 1000
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.5 / float64(n-1)
	}
	p[371] = 0.5
	d := dist.MustDense(p)
	failures := 0
	for trial := 0; trial < 20; trial++ {
		s := oracle.NewSampler(d, r)
		res, err := ApproxPart(s, r, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		j := res.Partition.Find(371)
		if res.Partition.Interval(j).Len() != 1 || !res.Heavy[j] {
			failures++
		}
		if res.SamplesUsed != ApproxPartSamples(10, 20) {
			t.Fatalf("samples used = %d", res.SamplesUsed)
		}
	}
	if failures > 2 {
		t.Fatalf("heavy element missed in %d/20 trials", failures)
	}
}

func TestApproxPartIntervalMasses(t *testing.T) {
	// Non-singleton intervals should have true mass <= ~2/b whp.
	r := rng.New(2)
	n := 4096
	d := dist.Uniform(n)
	s := oracle.NewSampler(d, r)
	b := 20.0
	res, err := ApproxPart(s, r, b, 20)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for j := 0; j < res.Partition.Count(); j++ {
		iv := res.Partition.Interval(j)
		if iv.Len() > 1 && d.IntervalMass(iv) > 2/b {
			violations++
		}
	}
	if violations > 1 {
		t.Fatalf("%d non-singleton intervals exceed mass 2/b", violations)
	}
	// Interval count is O(b).
	if res.Partition.Count() > int(4*b) {
		t.Fatalf("K = %d too large for b = %v", res.Partition.Count(), b)
	}
}

func TestApproxPartCoversDomain(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		n := 100 + r.Intn(1000)
		d := dist.Uniform(n)
		s := oracle.NewSampler(d, r)
		res, err := ApproxPart(s, r, 5+float64(r.Intn(20)), 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Partition.N() != n {
			t.Fatal("partition over wrong domain")
		}
		if len(res.Heavy) != res.Partition.Count() {
			t.Fatal("heavy mask length mismatch")
		}
	}
}

func TestApproxPartRejectsBadB(t *testing.T) {
	r := rng.New(4)
	s := oracle.NewSampler(dist.Uniform(10), r)
	if _, err := ApproxPart(s, r, 0.5, 10); err == nil {
		t.Fatal("b < 1 accepted")
	}
}

func TestApproxPartPointMass(t *testing.T) {
	// All mass on one element: that element is a singleton, everything
	// else is light.
	r := rng.New(5)
	d := dist.PointMass(100, 42)
	s := oracle.NewSampler(d, r)
	res, err := ApproxPart(s, r, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Partition.Find(42)
	if res.Partition.Interval(j).Len() != 1 {
		t.Fatalf("point mass not isolated: %v", res.Partition.Interval(j))
	}
}

func TestLaplaceEstimateSumsToOne(t *testing.T) {
	r := rng.New(6)
	n := 200
	d := dist.Uniform(n)
	s := oracle.NewSampler(d, r)
	p := intervals.EquiWidth(n, 10)
	counts := oracle.NewCounts(n, oracle.DrawN(s, 500))
	est := LaplaceEstimate(counts, p)
	if math.Abs(dist.TotalMass(est)-1) > 1e-9 {
		t.Fatalf("estimate mass = %v", dist.TotalMass(est))
	}
	if est.PieceCount() != 10 {
		t.Fatalf("pieces = %d", est.PieceCount())
	}
}

func TestLaplaceEstimateZeroCountsPositive(t *testing.T) {
	// Add-one smoothing: intervals with no samples still get positive mass
	// (this is what makes the χ² distance finite).
	p := intervals.EquiWidth(100, 5)
	counts := oracle.NewCounts(100, []int{0, 1, 2}) // all in interval 0
	est := LaplaceEstimate(counts, p)
	for j := 1; j < 5; j++ {
		iv := p.Interval(j)
		if est.IntervalMass(iv) <= 0 {
			t.Fatalf("interval %d has non-positive mass", j)
		}
	}
	// Interval 0: (3+1)/(3+5) = 0.5.
	if math.Abs(est.IntervalMass(p.Interval(0))-0.5) > 1e-12 {
		t.Fatalf("interval 0 mass = %v", est.IntervalMass(p.Interval(0)))
	}
}

func TestLearnChiSqGuarantee(t *testing.T) {
	// D a 3-histogram, partition aligned with its breakpoints: the learner
	// should achieve small χ² distance to D's flattening (no breakpoint
	// intervals to excuse).
	r := rng.New(7)
	n := 300
	d := dist.MustPiecewiseConstant(n, []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: 100}, Mass: 0.2},
		{Iv: intervals.Interval{Lo: 100, Hi: 150}, Mass: 0.5},
		{Iv: intervals.Interval{Lo: 150, Hi: 300}, Mass: 0.3},
	})
	part := intervals.FromBoundaries(n, []int{50, 100, 150, 200})
	eps := 0.2
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		s := oracle.NewSampler(d, r)
		est, m := Learn(s, r, part, eps, 2)
		if m != LearnSamples(part.Count(), eps, 2) {
			t.Fatalf("sample budget = %d", m)
		}
		flat := dist.Flatten(d, part)
		if got := dist.ChiSq(flat, est); got > eps*eps {
			failures++
			if failures > trials/4 {
				t.Fatalf("χ² guarantee failed %d times (last: %v > %v)", failures, got, eps*eps)
			}
		}
	}
}

func TestLearnExcusesBreakpointIntervals(t *testing.T) {
	// A breakpoint strictly inside a partition interval makes the
	// flattening lossy there, but off the breakpoint intervals the learner
	// still converges.
	r := rng.New(8)
	n := 200
	d := dist.MustPiecewiseConstant(n, []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: 75}, Mass: 0.8},
		{Iv: intervals.Interval{Lo: 75, Hi: 200}, Mass: 0.2},
	})
	part := intervals.EquiWidth(n, 4) // breakpoint 75 is inside [50,100)
	bps := BreakpointIntervals(d, part)
	if len(bps) != 1 || bps[0] != 1 {
		t.Fatalf("breakpoint intervals = %v, want [1]", bps)
	}
	s := oracle.NewSampler(d, r)
	est, _ := Learn(s, r, part, 0.1, 4)
	except := map[int]bool{1: true}
	dTilde := dist.FlattenExcept(d, part, except)
	// χ² restricted to the non-breakpoint intervals must be small.
	g := intervals.FromPartitionSubset(part, []bool{true, false, true, true})
	if got := dist.ChiSqDomain(dTilde, est, g); got > 0.01 {
		t.Fatalf("off-breakpoint χ² = %v", got)
	}
}

func TestEmpiricalFlattening(t *testing.T) {
	p := intervals.EquiWidth(10, 2)
	counts := oracle.NewCounts(10, []int{0, 1, 2, 7})
	e := EmpiricalFlattening(counts, p)
	if math.Abs(e.IntervalMass(p.Interval(0))-0.75) > 1e-12 {
		t.Fatalf("interval 0 mass = %v", e.IntervalMass(p.Interval(0)))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty flattening did not panic")
			}
		}()
		EmpiricalFlattening(oracle.NewCounts(10, nil), p)
	}()
}

func TestBreakpointIntervals(t *testing.T) {
	n := 100
	d := dist.MustPiecewiseConstant(n, []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: 30}, Mass: 0.3},
		{Iv: intervals.Interval{Lo: 30, Hi: 60}, Mass: 0.6},
		{Iv: intervals.Interval{Lo: 60, Hi: 100}, Mass: 0.1},
	})
	// Partition boundaries at 30: breakpoint at 30 falls ON a boundary, so
	// only the breakpoint at 60 (inside [50,100)) counts.
	part := intervals.FromBoundaries(n, []int{30, 50})
	bps := BreakpointIntervals(d, part)
	if len(bps) != 1 || bps[0] != 2 {
		t.Fatalf("breakpoints = %v, want [2]", bps)
	}
	// Aligned partition: no breakpoint intervals.
	aligned := intervals.FromBoundaries(n, []int{30, 60})
	if got := BreakpointIntervals(d, aligned); len(got) != 0 {
		t.Fatalf("aligned partition has breakpoints %v", got)
	}
	// A k-histogram has at most k-1 breakpoint intervals.
	if got := BreakpointIntervals(d, intervals.Whole(n)); len(got) > 2 {
		t.Fatalf("too many breakpoint intervals: %v", got)
	}
}
