//go:build race

package core

// raceAllocSlack widens the steady-state allocation ceilings when the
// race detector is on: instrumentation shifts the compiler's inlining
// and escape-analysis decisions, so a handful of otherwise-stack
// allocations move to the heap without any change in the code under
// test. The plain-mode ceilings stay tight — this slack exists only so
// `make race` measures races, not escape-analysis drift.
const raceAllocSlack = 10
