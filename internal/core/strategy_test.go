package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/oracle"
	"repro/internal/rng"
)

// TestDefaultStrategyTraceUnchanged pins the zero-value contract of
// Config.CountStrategy: leaving it unset and setting CountExact
// explicitly consume identical randomness and produce bit-identical
// Traces. Every pre-existing seed pin in the suite depends on this.
func TestDefaultStrategyTraceUnchanged(t *testing.T) {
	run := func(cfg Config) Trace {
		s := oracle.NewSampler(threeHistogram(512), rng.New(101))
		res, err := Test(s, rng.New(102), 3, 0.5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	base := PracticalConfig()
	explicit := PracticalConfig()
	explicit.CountStrategy = oracle.CountExact
	if a, b := run(base), run(explicit); a != b {
		t.Fatalf("explicit CountExact changed the trace:\ndefault:  %+v\nexplicit: %+v", a, b)
	}
}

// TestClosedFormFallbackOnReplay: a replay oracle asked for closed form
// silently runs the exact path — bit-identical to an exact-config run on
// the same dataset, because EffectiveStrategy resolves to CountExact
// before any randomness is consumed.
func TestClosedFormFallbackOnReplay(t *testing.T) {
	const n, k = 64, 2
	const eps = 0.8
	// Size the dataset off a sampler-backed dry run: the tester's draw
	// count is decided by its own RNG stream, so a generous multiple
	// covers any data-dependent variation in sieve rounds.
	dry := oracle.NewSampler(threeHistogram(n), rng.New(103))
	if _, err := Test(dry, rng.New(104), k, eps, PracticalConfig()); err != nil {
		t.Fatal(err)
	}
	src := oracle.NewSampler(threeHistogram(n), rng.New(103))
	dataset := oracle.DrawN(src, int(2*dry.Samples()))
	run := func(cs oracle.CountStrategy) Trace {
		rep, err := oracle.NewReplay(n, dataset)
		if err != nil {
			t.Fatal(err)
		}
		cfg := PracticalConfig()
		cfg.CountStrategy = cs
		res, err := Test(rep, rng.New(104), k, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	if a, b := run(oracle.CountExact), run(oracle.CountClosedForm); a != b {
		t.Fatalf("closed-form on replay diverged from exact:\nexact:       %+v\nclosed-form: %+v", a, b)
	}
}

// TestBudgetConservationBothStrategies pins sample accounting end to
// end: the Trace's stage totals equal the oracle's Samples() counter
// under both strategies, serial and parallel — including the forked
// sieve clones, whose draws reach the parent only through Absorb.
func TestBudgetConservationBothStrategies(t *testing.T) {
	for _, cs := range []oracle.CountStrategy{oracle.CountExact, oracle.CountClosedForm} {
		for _, workers := range []int{1, 4} {
			cfg := PracticalConfig()
			cfg.CountStrategy = cs
			cfg.Workers = workers
			s := oracle.NewSampler(threeHistogram(512), rng.New(105))
			res, err := Test(s, rng.New(106), 3, 0.5, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Trace.TotalSamples(), s.Samples(); got != want {
				t.Errorf("%v workers=%d: trace accounts %d samples, oracle drew %d",
					cs, workers, got, want)
			}
		}
	}
}

// TestClosedFormWorkersDeterminism: the Workers knob stays a pure
// throughput knob under closed form — replicate randomness is pre-split
// before goroutine launch and each replicate's synthesis draws only from
// its own stream, so serial and parallel runs decide identically.
func TestClosedFormWorkersDeterminism(t *testing.T) {
	run := func(workers int) Trace {
		cfg := PracticalConfig()
		cfg.CountStrategy = oracle.CountClosedForm
		cfg.Workers = workers
		s := oracle.NewSampler(threeHistogram(512), rng.New(107))
		res, err := Test(s, rng.New(108), 3, 0.5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 0} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d diverged under closed form:\nserial: %+v\ngot:    %+v", workers, serial, got)
		}
	}
}

// TestClosedFormCompleteness: the tester still accepts in-class
// histograms under closed form. (Per-seed decisions legitimately differ
// from the exact stream; the operating characteristic is pinned by the
// exper metamorphic suite.)
func TestClosedFormCompleteness(t *testing.T) {
	cfg := PracticalConfig()
	cfg.CountStrategy = oracle.CountClosedForm
	accepts := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(threeHistogram(512), rng.New(uint64(200+2*i)))
		res, err := Test(s, rng.New(uint64(201+2*i)), 3, 0.5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			accepts++
		}
	}
	if accepts < 8 {
		t.Fatalf("closed form accepted %d/%d in-class runs", accepts, trials)
	}
}

// TestClosedFormSoundness: and still rejects the far comb.
func TestClosedFormSoundness(t *testing.T) {
	cfg := PracticalConfig()
	cfg.CountStrategy = oracle.CountClosedForm
	rejects := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(comb(512), rng.New(uint64(300+2*i)))
		res, err := Test(s, rng.New(uint64(301+2*i)), 3, 0.5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			rejects++
		}
	}
	if rejects < 8 {
		t.Fatalf("closed form rejected only %d/%d far runs", rejects, trials)
	}
}

// TestClosedFormCancellationBalancesPool extends the pooled-buffer leak
// test to the closed-form path: a run cancelled mid-sieve must release
// every pooled Counts its closed-form batches acquired, serial and
// parallel alike.
func TestClosedFormCancellationBalancesPool(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := PracticalConfig()
		cfg.CountStrategy = oracle.CountClosedForm
		cfg.Workers = workers
		cfg.Observer = &cancelOnSieve{cancel: cancel}
		r := rng.New(109)
		s := oracle.NewSampler(threeHistogram(512), r)
		before := oracle.PoolStatsSnapshot()
		_, err := TestContext(ctx, s, r, 3, 0.5, cfg)
		after := oracle.PoolStatsSnapshot()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		acq := after.Acquires - before.Acquires
		rel := after.Releases - before.Releases
		if acq == 0 {
			t.Fatalf("workers=%d: no pooled acquisitions before cancellation", workers)
		}
		if acq != rel {
			t.Fatalf("workers=%d: cancelled closed-form run leaked pooled Counts: %d acquired, %d released",
				workers, acq, rel)
		}
	}
}
