//go:build !race

package core

// raceAllocSlack is zero without the race detector: the steady-state
// allocation ceilings are enforced at full tightness (see
// race_on_test.go for why race builds get slack).
const raceAllocSlack = 0
