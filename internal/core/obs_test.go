package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// observedRun runs one Test with a TraceRecorder attached and returns the
// recorder, the oracle's realized draw count, and the result.
func observedRun(t *testing.T, d dist.Distribution, k int, eps float64, workers int, seed uint64) (*obs.TraceRecorder, int64, *Result) {
	t.Helper()
	rec := obs.NewTraceRecorder()
	cfg := PracticalConfig()
	cfg.Workers = workers
	cfg.Observer = rec
	r := rng.New(seed)
	s := oracle.NewSampler(d, r)
	res, err := Test(s, r, k, eps, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return rec, s.Samples(), res
}

// TestSampleConservation is the conservation property of the event
// stream: the per-stage SamplesDrawn reported by StageExit events must
// sum EXACTLY to the oracle's total draw counter — at every worker
// count, including the parallel sieve whose replicate clones fold their
// draws back into the parent. Any unfolded clone draw, double-counted
// batch, or stage boundary misplacement breaks the equality.
func TestSampleConservation(t *testing.T) {
	d := threeHistogram(512)
	for _, workers := range []int{1, 4, 0} {
		rec, drawn, res := observedRun(t, d, 3, 0.5, workers, 41)
		runs := rec.Runs()
		if len(runs) != 1 {
			t.Fatalf("workers=%d: %d runs recorded, want 1", workers, len(runs))
		}
		perStage := rec.StageSamples(runs[0])
		var sum int64
		for _, v := range perStage {
			sum += v
		}
		if sum != drawn {
			t.Fatalf("workers=%d: stage samples sum to %d, oracle drew %d (per stage: %v)",
				workers, sum, drawn, perStage)
		}
		if sum != res.Trace.TotalSamples() {
			t.Fatalf("workers=%d: stage samples sum to %d, Trace totals %d",
				workers, sum, res.Trace.TotalSamples())
		}
		// Stage attribution must match the Trace accounting field by field.
		tr := res.Trace
		for _, c := range []struct {
			stage obs.Stage
			want  int64
		}{
			{obs.StagePartition, tr.PartitionSamples},
			{obs.StageLearn, tr.LearnSamples},
			{obs.StageSieve, tr.SieveSamples},
			{obs.StageTest, tr.TestSamples},
		} {
			if perStage[c.stage] != c.want {
				t.Fatalf("workers=%d: stage %v reported %d samples, Trace says %d",
					workers, c.stage, perStage[c.stage], c.want)
			}
		}
		if perStage[obs.StageCheck] != 0 {
			t.Fatalf("workers=%d: check stage drew %d samples, want 0", workers, perStage[obs.StageCheck])
		}
	}
}

// TestSieveRoundEventsAccounted pins the SieveRound sub-accounting: round
// draw counts sum to the sieve stage total, every round reports the
// replicate fan-out, and the dense/sparse batch tallies cover all
// replicates.
func TestSieveRoundEventsAccounted(t *testing.T) {
	rec, _, res := observedRun(t, threeHistogram(512), 3, 0.5, 4, 43)
	run := rec.Runs()[0]
	var roundSum int64
	rounds := 0
	for _, e := range rec.RunEvents(run) {
		if e.Kind != obs.KindSieveRound {
			continue
		}
		rounds++
		roundSum += e.Samples
		if e.Replicates <= 0 || e.Workers <= 0 {
			t.Fatalf("round %d: replicates=%d workers=%d", e.Round, e.Replicates, e.Workers)
		}
		if e.Dense+e.Sparse != e.Replicates {
			t.Fatalf("round %d: dense %d + sparse %d != replicates %d",
				e.Round, e.Dense, e.Sparse, e.Replicates)
		}
	}
	if want := res.Trace.SieveRoundsRun + 1; rounds != want {
		t.Fatalf("recorded %d SieveRound events, Trace ran %d rounds (+1 heavy pass)", rounds, want)
	}
	if roundSum != res.Trace.SieveSamples {
		t.Fatalf("rounds sum to %d draws, sieve stage drew %d", roundSum, res.Trace.SieveSamples)
	}
}

// TestSieveRoundWorkersReportsLaunched pins the Workers field of
// SieveRound events against the goroutines the chunked scheduler really
// launches. With reps=5 and cfg.Workers=4 the chunk size is ⌈5/4⌉ = 2,
// which covers all replicates in 3 chunks — so only 3 workers run, and
// the round event must say 3, not the configured 4.
func TestSieveRoundWorkersReportsLaunched(t *testing.T) {
	rec := obs.NewTraceRecorder()
	cfg := PracticalConfig()
	cfg.Workers = 4
	cfg.SieveReps = 5
	cfg.Observer = rec
	r := rng.New(47)
	s := oracle.NewSampler(threeHistogram(512), r)
	if _, err := Test(s, r, 3, 0.5, cfg); err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for _, e := range rec.RunEvents(rec.Runs()[0]) {
		if e.Kind != obs.KindSieveRound {
			continue
		}
		rounds++
		if e.Replicates != 5 {
			t.Fatalf("round %d: replicates=%d, want the configured 5", e.Round, e.Replicates)
		}
		if e.Workers != 3 {
			t.Fatalf("round %d: workers=%d, want 3 (⌈5/2⌉ launched goroutines)", e.Round, e.Workers)
		}
	}
	if rounds == 0 {
		t.Fatal("no SieveRound events recorded")
	}
}

// cancelOnSieve cancels its context the first time a sieve round
// completes — a deterministic mid-run cancellation point that works on
// both the serial and parallel sieve paths (round events are emitted
// from the run goroutine).
type cancelOnSieve struct {
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnSieve) Observe(e obs.Event) {
	if e.Kind == obs.KindSieveRound {
		c.once.Do(c.cancel)
	}
}

// TestCancellationWithinOneSieveRound pins the cancellation granularity
// contract: a context cancelled during sieve round R must surface
// ctx.Err() before round R+2 begins — i.e. at most one more round event
// may appear — and the event stream must still close with a RunEnd
// carrying the error.
func TestCancellationWithinOneSieveRound(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		rec := obs.NewTraceRecorder()
		cfg := PracticalConfig()
		cfg.Workers = workers
		cfg.Observer = obs.Multi(rec, &cancelOnSieve{cancel: cancel})
		r := rng.New(47)
		s := oracle.NewSampler(threeHistogram(512), r)
		res, err := TestContext(ctx, s, r, 3, 0.5, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: cancelled run returned a result", workers)
		}
		roundEvents := 0
		for _, e := range rec.Events() {
			if e.Kind == obs.KindSieveRound {
				roundEvents++
			}
		}
		if roundEvents > 2 {
			t.Fatalf("workers=%d: %d sieve rounds ran after cancellation at the first", workers, roundEvents)
		}
		evs := rec.Events()
		last := evs[len(evs)-1]
		if last.Kind != obs.KindRunEnd || last.Err == "" {
			t.Fatalf("workers=%d: stream ends with %v (err %q), want RunEnd with error", workers, last.Kind, last.Err)
		}
	}
}

// TestPreCancelledContext: a context cancelled before the call draws
// nothing and returns immediately.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := rng.New(48)
	s := oracle.NewSampler(threeHistogram(512), r)
	_, err := TestContext(ctx, s, r, 3, 0.5, PracticalConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Samples() != 0 {
		t.Fatalf("pre-cancelled run drew %d samples", s.Samples())
	}
}

// TestCancellationReleasesPooledCounts is the leak test of the pooled
// buffer contract: across a cancelled run — serial and parallel — every
// pooled Counts acquired by a batch draw must have been released by the
// time TestContext returns. The pool counters are process-global, so the
// delta is taken tightly around the serialized run (package tests do not
// run in parallel).
func TestCancellationReleasesPooledCounts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := PracticalConfig()
		cfg.Workers = workers
		cfg.Observer = &cancelOnSieve{cancel: cancel}
		r := rng.New(53)
		s := oracle.NewSampler(threeHistogram(512), r)
		before := oracle.PoolStatsSnapshot()
		_, err := TestContext(ctx, s, r, 3, 0.5, cfg)
		after := oracle.PoolStatsSnapshot()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		acq := after.Acquires - before.Acquires
		rel := after.Releases - before.Releases
		if acq == 0 {
			t.Fatalf("workers=%d: no pooled acquisitions before cancellation", workers)
		}
		if acq != rel {
			t.Fatalf("workers=%d: cancelled run leaked pooled Counts: %d acquired, %d released", workers, acq, rel)
		}
	}
}

// TestCompletedRunBalancesPool: the same acquire/release balance must
// hold on ordinary completed runs (accept and reject alike).
func TestCompletedRunBalancesPool(t *testing.T) {
	for _, d := range []dist.Distribution{threeHistogram(512), comb(512)} {
		r := rng.New(59)
		s := oracle.NewSampler(d, r)
		before := oracle.PoolStatsSnapshot()
		if _, err := Test(s, r, 3, 0.5, PracticalConfig()); err != nil {
			t.Fatal(err)
		}
		after := oracle.PoolStatsSnapshot()
		acq := after.Acquires - before.Acquires
		rel := after.Releases - before.Releases
		if acq == 0 || acq != rel {
			t.Fatalf("completed run: %d acquired, %d released", acq, rel)
		}
	}
}

// TestEventStreamWellFormed checks the stream grammar on an ordinary
// run: exactly one RunStart first and one RunEnd last, every StageEnter
// matched by a StageExit of the same stage, stages in pipeline order.
func TestEventStreamWellFormed(t *testing.T) {
	rec, _, res := observedRun(t, threeHistogram(512), 3, 0.5, 0, 61)
	evs := rec.Events()
	if evs[0].Kind != obs.KindRunStart {
		t.Fatalf("first event is %v", evs[0].Kind)
	}
	if evs[0].N != 512 || evs[0].K != 3 || evs[0].Eps != 0.5 {
		t.Fatalf("RunStart parameters: n=%d k=%d eps=%v", evs[0].N, evs[0].K, evs[0].Eps)
	}
	last := evs[len(evs)-1]
	if last.Kind != obs.KindRunEnd {
		t.Fatalf("last event is %v", last.Kind)
	}
	if last.Accept != res.Accept {
		t.Fatalf("RunEnd accept %v, result accept %v", last.Accept, res.Accept)
	}
	var open []obs.Stage
	var order []obs.Stage
	for _, e := range evs {
		switch e.Kind {
		case obs.KindStageEnter:
			open = append(open, e.Stage)
			order = append(order, e.Stage)
		case obs.KindStageExit:
			if len(open) == 0 || open[len(open)-1] != e.Stage {
				t.Fatalf("StageExit(%v) without matching enter", e.Stage)
			}
			open = open[:len(open)-1]
		}
	}
	if len(open) != 0 {
		t.Fatalf("unclosed stages: %v", open)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("stages out of pipeline order: %v", order)
		}
	}
	// Timestamps are monotone (events are emitted in order from one
	// goroutine with a monotonic clock).
	for i := 1; i < len(evs); i++ {
		if evs[i].Elapsed < evs[i-1].Elapsed {
			t.Fatalf("event %d elapsed %v precedes event %d elapsed %v", i, evs[i].Elapsed, i-1, evs[i-1].Elapsed)
		}
	}
}
