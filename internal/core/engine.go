package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/oracle"
	"repro/internal/rng"
)

// Engine is one tester algorithm behind the shared driver
// (Arena.TestContext). The contract splits responsibilities so every
// engine inherits the service guarantees for free:
//
// The DRIVER owns input validation (k, ε ranges), the trivial k >= n
// accept, observer attachment and the RunStart/RunEnd bracketing of the
// trivial and error paths, and the nominal-budget guard against
// Config.MaxSamples (via the engine's ExpectedSamples). The ENGINE owns
// only the statistic and decision logic between those brackets.
//
// An engine implementation must:
//
//   - draw every sample through the provided oracle (and fold clone
//     draws back via oracle.Forker.Absorb), so Trace.TotalSamples()
//     always equals the oracle's draw count — budget conservation;
//   - resolve Config.CountStrategy once per run through
//     oracle.EffectiveStrategy and honor the resolved strategy on every
//     Poissonized batch;
//   - check ctx before every Poissonized batch draw and at every
//     round boundary, release all pooled oracle.Counts on every path
//     (cancellation included), and surface ctx.Err() through
//     Arena.fail so the RunEnd event is emitted;
//   - treat Config.Workers as a pure throughput knob: the decision and
//     the Trace must be bit-identical for every value, which in practice
//     means splitting all per-replicate randomness from r sequentially
//     before any goroutine launches;
//   - emit obs stage events in strictly increasing Stage order
//     (skipping stages is fine, reordering is not), with StageExit
//     sample counts that sum to the oracle's draws;
//   - never consume randomness from Arena scratch management or
//     observer emission.
//
// The cross-engine conformance suite (conformance_test.go) asserts all
// of this against every registered engine, so a new engine only has to
// register itself to inherit the battery.
//
// Engines are registered by the package itself (the run method is
// unexported), keeping the invariant that everything selectable by name
// has passed the conformance suite.
type Engine interface {
	// Name is the identifier used by Config.Engine, the histbench
	// -engine flag, and the histd request field.
	Name() string
	// ExpectedSamples is the engine's nominal total sample budget for
	// one run — the driver's guard against accidentally astronomical
	// configurations, and the sizing estimate the experiment harness
	// uses.
	ExpectedSamples(n, k int, eps float64, cfg Config) int64
	// run executes the pipeline. The driver has already validated the
	// inputs, handled k >= n, emitted RunStart, and applied the budget
	// guard; the engine emits its own stage events and the RunEnd of
	// every non-error outcome.
	run(ctx context.Context, a *Arena, o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error)
}

// DefaultEngine is the engine selected by an empty Config.Engine: the
// source paper's Algorithm 1 (partition → learn → sieve → check → test).
const DefaultEngine = "adk"

// engines is the registry of selectable testers. Registration is
// compile-time only: every name listed here is exercised by the
// conformance suite.
var engines = map[string]Engine{
	"adk":    adkEngine{},
	"cdkl22": cdklEngine{},
}

// Engines returns the registered engine names in sorted order.
func Engines() []string {
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EngineFor resolves an engine name ("" means DefaultEngine). Serving
// layers call this at admission time so an unknown name is a 4xx before
// it costs a queue slot, never a silent fallback to the default.
func EngineFor(name string) (Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	eng, ok := engines[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown engine %q (registered: %v)", name, Engines())
	}
	return eng, nil
}
