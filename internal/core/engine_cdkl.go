package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chisq"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// cdklEngine is a practical embodiment of the CDKL'22 near-optimal
// histogram tester (Canonne–Diakonikolas–Kontonis–Liu, "Near-Optimal
// Bounds for Testing Histogram Distributions", arXiv 2207.06596). Where
// the ADK engine spends the bulk of its budget sieving untrustworthy
// intervals before a final test on the surviving sub-domain, CDKL'22
// observes that the sieve is unnecessary: a legal k-histogram can
// disagree with its partition flattening on at most k−1 "breakpoint"
// intervals, so a per-interval statistic that simply DISCOUNTS its k−1
// largest positive entries is already complete — and a far distribution
// cannot hide its distance in k−1 intervals whose individual mass the
// partition caps at ~1/b.
//
// The pipeline:
//
//  1. Partition — learn.ApproxPart exactly as the ADK engine (Prop 3.4),
//     so the two engines are compared on identical partition machinery.
//  2. Learn — the add-one estimator yields D̂, flat within intervals.
//  3. Check — histdp.ProjectTV verifies D̂ is within ε/FlatCheckTolDivisor
//     of H_k on the FULL domain. No sieving happened, so the tolerance is
//     looser than the ADK engine's: a legal k-histogram's learned
//     flattening legitimately carries ~(k−1)/b of breakpoint distance.
//  4. Trimmed flatness test — ONE fresh Poissonized batch at mean
//     m = Chi.MFactor·√n/ε_f² (ε_f = FlatEpsFactor·ε) scores every
//     interval with the same truncated-χ² statistic the ADK sieve uses
//     (chisq.ZPerIntervalInto against D̂); the k−1 largest positive Z_j
//     are dropped and the trimmed sum is compared against the standard
//     Chi.AcceptFactor·m·ε_f² cutoff.
//
// Soundness composes as in the ADK analysis: accept means D̂'s flattening
// is ε/FlatCheckTolDivisor-close to H_k (stage 3) AND D is ε_f-close to
// D̂ off the trimmed intervals (stage 4), whose total D̂-mass is at most
// (k−1)/b plus any heavy singletons the partition isolated exactly.
// Completeness needs no median amplification because there is only one
// accept/reject comparison per run — the single batch is its own
// decision, which is also why Workers is trivially a no-op here and the
// Trace is bit-identical at every worker count.
type cdklEngine struct{}

// Name implements Engine.
func (cdklEngine) Name() string { return "cdkl22" }

// ExpectedSamples implements Engine: partition + learn + one flatness
// batch. No sieve term is the engine's entire advantage — compare
// adkEngine.ExpectedSamples, whose sieve term multiplies a same-order
// batch by reps×(rounds+1).
func (cdklEngine) ExpectedSamples(n, k int, eps float64, cfg Config) int64 {
	b := cfg.PartB(k, eps)
	partM := learn.ApproxPartSamples(b, cfg.PartSampleC)
	K := int(7*b/3) + 2
	learnM := learn.LearnSamples(K, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	flatM := cfg.Chi.SampleMean(n, cfg.flatEpsFactor()*eps)
	return int64(partM) + int64(learnM) + int64(flatM)
}

// run implements Engine.
func (cdklEngine) run(ctx context.Context, a *Arena, o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	n := o.N()
	tr := Trace{N: n}
	mark := o.Samples()
	took := func() int64 {
		d := o.Samples() - mark
		mark = o.Samples()
		return d
	}

	// Stage 1: partition (same machinery as the ADK engine).
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StagePartition})
	b := cfg.PartB(k, eps)
	tr.B = b
	part, err := learn.ApproxPartContext(ctx, o, r, b, cfg.PartSampleC)
	if err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	p := part.Partition
	K := p.Count()
	tr.K = K
	tr.PartitionSamples = took()
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StagePartition, Samples: tr.PartitionSamples})

	// Stage 2: learn.
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageLearn})
	dhat, _, err := learn.LearnContext(ctx, o, r, p, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	if err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	tr.LearnSamples = took()
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageLearn, Samples: tr.LearnSamples})

	g := intervals.FullDomain(n)
	reject := func(stage, reason string) (*Result, error) {
		tr.RejectStage = stage
		tr.RejectReason = reason
		if a.ob != nil {
			a.emit(obs.Event{Kind: obs.KindRunEnd, Samples: tr.TotalSamples(), RejectStage: stage})
		}
		return &Result{Accept: false, Trace: tr, Learned: dhat, Domain: g}, nil
	}

	// Stage 3: check that some k-histogram is close to D̂ on the full
	// domain. Runs BEFORE the flatness batch: rejecting a structurally
	// hopeless D̂ costs zero extra samples.
	if err := ctx.Err(); err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	if !cfg.SkipCheck {
		a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageCheck})
		proj, err := histdp.ProjectTV(dhat, k, g)
		if err != nil {
			return a.fail(tr.TotalSamples(), fmt.Errorf("core: check DP failed: %w", err))
		}
		tr.CheckRelaxed = proj.Relaxed
		a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageCheck})
		tol := eps / cfg.flatCheckTolDivisor()
		if proj.Relaxed > tol {
			return reject(StageCheck, fmt.Sprintf("distance of D̂ to H_k on the full domain is %.5f > tolerance %.5f", proj.Relaxed, tol))
		}
	}

	// Stage 4: the trimmed per-interval flatness test — one Poissonized
	// batch, no amplification, no fan-out.
	if err := ctx.Err(); err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageTest})
	epsF := cfg.flatEpsFactor() * eps
	m := cfg.Chi.SampleMean(n, epsF)
	tau := cfg.Chi.TruncFactor * epsF / float64(n)
	countStrat := oracle.EffectiveStrategy(o, cfg.CountStrategy)
	counts := oracle.DrawCountsWith(o, r, m, countStrat)
	if a.ob != nil {
		a.obDense, a.obSparse = 0, 0
		a.obExact, a.obClosedForm = 0, 0
		a.obWorkers = 1
		a.obBatch(counts, countStrat)
	}
	a.grow(K, 1)
	zs := chisq.ZPerIntervalInto(a.med[0][:0], counts, dhat, p, g, m, tau)
	counts.Release()
	tr.TestSamples = took()

	total := 0.0
	for _, z := range zs {
		total += z
	}
	// Trim the k−1 largest positive statistics: a legal k-histogram has
	// at most k−1 breakpoint intervals, and only a positive Z_j can be
	// breakpoint signal worth forgiving. (Trimming negative entries
	// would RAISE the sum — never correct.)
	pos := a.zs[:0]
	for _, z := range zs {
		if z > 0 {
			pos = append(pos, z)
		}
	}
	sort.Float64s(pos)
	trim := k - 1
	if trim > len(pos) {
		trim = len(pos)
	}
	for i := 0; i < trim; i++ {
		total -= pos[len(pos)-1-i]
	}
	thr := cfg.Chi.AcceptFactor * m * epsF * epsF
	tr.FinalZ = total
	tr.FinalThresh = thr
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageTest, Samples: tr.TestSamples})
	if total > thr {
		return reject(StageTest, fmt.Sprintf("trimmed flatness statistic %.1f above threshold %.1f (forgave %d of %d intervals)", total, thr, trim, K))
	}
	if a.ob != nil {
		a.emit(obs.Event{Kind: obs.KindRunEnd, Accept: true, Samples: tr.TotalSamples()})
	}
	return &Result{Accept: true, Trace: tr, Learned: dhat, Domain: g}, nil
}
