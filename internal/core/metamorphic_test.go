package core

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Metamorphic battery: transformations of the input with a known effect
// on the ground truth must leave the tester's decision distribution
// (and, for pure observation, its exact Trace) unchanged.

// permutedAcceptRate is acceptRate with the sample stream relabelled
// through sigma.
func permutedAcceptRate(t *testing.T, d dist.Distribution, sigma []int, k int, eps float64, trials int, seed uint64) float64 {
	t.Helper()
	r := rng.New(seed)
	accepts := 0
	for i := 0; i < trials; i++ {
		s, err := oracle.NewPermuted(oracle.NewSampler(d, r), sigma)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Test(s, r, k, eps, PracticalConfig())
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if res.Accept {
			accepts++
		}
	}
	return float64(accepts) / float64(trials)
}

// TestMetamorphicRelabelWithinFlatInterval: permuting elements WITHIN a
// flat piece of a histogram leaves the distribution itself unchanged
// (all relabelled elements carry equal mass), so the accept rate must
// stay within the seeded trial tolerance of the unpermuted run.
func TestMetamorphicRelabelWithinFlatInterval(t *testing.T) {
	n := 512
	d := threeHistogram(n)
	// Reverse the first flat piece [0, n/4); identity elsewhere.
	sigma := make([]int, n)
	for i := range sigma {
		sigma[i] = i
	}
	for i := 0; i < n/4; i++ {
		sigma[i] = n/4 - 1 - i
	}
	trials := 12
	base := acceptRate(t, d, 3, 0.5, PracticalConfig(), trials, 67)
	perm := permutedAcceptRate(t, d, sigma, 3, 0.5, trials, 67)
	if base < 0.75 {
		t.Fatalf("baseline accept rate %v too low for the comparison to mean anything", base)
	}
	if diff := base - perm; diff > 0.25 || diff < -0.25 {
		t.Fatalf("flat-interval relabelling moved the accept rate: base %v, permuted %v", base, perm)
	}
}

// TestMetamorphicRelabelAcrossPieces is the control: a relabelling that
// crosses level boundaries DOES change the distribution (it shatters
// the histogram structure), so a far instance must stay rejected —
// the invariance above is specific to flat intervals, not permutation
// blindness.
func TestMetamorphicRelabelAcrossPieces(t *testing.T) {
	n := 512
	// Interleave the heavy first quarter with the light second quarter:
	// the result has ~n/2 alternating heavy/light singletons — far from
	// any 3-histogram.
	sigma := make([]int, n)
	for i := range sigma {
		sigma[i] = i
	}
	for i := 0; i < n/4; i++ {
		sigma[i] = 2 * i
		sigma[n/4+i] = 2*i + 1
	}
	rate := permutedAcceptRate(t, threeHistogram(n), sigma, 3, 0.45, 12, 71)
	if rate > 0.35 {
		t.Fatalf("shattering relabelling still accepted at rate %v", rate)
	}
}

// scaleHistogram doubles the domain by stretching every piece 2x: the
// result is a histogram with identical piece count, masses, and relative
// geometry over [0, 2n] — the joint (n, k) scaling under which the
// testing problem is self-similar.
func scaleHistogram(d *dist.PiecewiseConstant) *dist.PiecewiseConstant {
	pieces := d.Pieces()
	out := make([]dist.Piece, len(pieces))
	for i, p := range pieces {
		out[i] = dist.Piece{
			Iv:   intervals.Interval{Lo: 2 * p.Iv.Lo, Hi: 2 * p.Iv.Hi},
			Mass: p.Mass,
		}
	}
	return dist.MustPiecewiseConstant(2*d.N(), out)
}

// TestMetamorphicJointScaling: stretching a yes-instance (and a
// no-instance) to double the domain keeps the ground truth — membership
// in H_k and distance to H_k are invariant under the stretch — so the
// decision distribution must not flip at either scale.
func TestMetamorphicJointScaling(t *testing.T) {
	yes := threeHistogram(256)
	yesBig := scaleHistogram(yes)
	if yesBig.N() != 512 {
		t.Fatalf("scaled domain %d", yesBig.N())
	}
	trials := 12
	if r := acceptRate(t, yes, 3, 0.5, PracticalConfig(), trials, 73); r < 0.7 {
		t.Fatalf("yes-instance accept rate %v at n=256", r)
	}
	if r := acceptRate(t, yesBig, 3, 0.5, PracticalConfig(), trials, 73); r < 0.7 {
		t.Fatalf("yes-instance accept rate %v after scaling to n=512", r)
	}

	no := comb(256)
	noBig := scaleHistogram(no) // pairs of equal elements: still far from H_4
	if r := acceptRate(t, no, 4, 0.45, PracticalConfig(), trials, 79); r > 0.3 {
		t.Fatalf("no-instance accept rate %v at n=256", r)
	}
	if r := acceptRate(t, noBig, 4, 0.45, PracticalConfig(), trials, 79); r > 0.3 {
		t.Fatalf("no-instance accept rate %v after scaling to n=512", r)
	}
}

// TestTraceBitIdenticalWithObserver pins the zero-interference contract:
// attaching an observer (and simultaneously changing the worker count)
// must yield the EXACT same Trace and decision, because observation
// never consumes randomness and the replicate RNGs are pre-split.
func TestTraceBitIdenticalWithObserver(t *testing.T) {
	d := threeHistogram(512)
	runOnce := func(workers int, ob obs.Observer) (*Result, int64) {
		cfg := PracticalConfig()
		cfg.Workers = workers
		cfg.Observer = ob
		r := rng.New(83)
		s := oracle.NewSampler(d, r)
		res, err := Test(s, r, 3, 0.5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, s.Samples()
	}
	plain, plainDrawn := runOnce(1, nil)
	for _, workers := range []int{1, 4} {
		rec := obs.NewTraceRecorder()
		got, drawn := runOnce(workers, rec)
		if got.Accept != plain.Accept {
			t.Fatalf("workers=%d observed: decision flipped", workers)
		}
		if !reflect.DeepEqual(got.Trace, plain.Trace) {
			t.Fatalf("workers=%d observed: Trace diverged\nplain: %+v\nobserved: %+v", workers, plain.Trace, got.Trace)
		}
		if drawn != plainDrawn {
			t.Fatalf("workers=%d observed: drew %d samples, plain drew %d", workers, drawn, plainDrawn)
		}
		if rec.Len() == 0 {
			t.Fatal("observer attached but saw no events")
		}
	}
}
