package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// runOnce executes one tester invocation on a fresh sampler with fully
// pinned randomness.
func runOnce(t *testing.T, d dist.Distribution, k int, eps float64, cfg Config, sampleSeed, testSeed uint64) (*Result, int64) {
	t.Helper()
	s := oracle.NewSampler(d, rng.New(sampleSeed))
	res, err := Test(s, rng.New(testSeed), k, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, s.Samples()
}

func TestWorkersDeterminism(t *testing.T) {
	// The decision, the full Trace, and the exact sample accounting must
	// not depend on the worker count: replicate randomness is pre-split
	// before any goroutine launches.
	d := threeHistogram(2048)
	cfg := PracticalConfig()
	cfg.SieveReps = 5 // >1 replicate so the parallel fan-out engages
	for _, seeds := range [][2]uint64{{100, 200}, {101, 201}, {102, 202}} {
		cfg.Workers = 1
		serial, serialDrawn := runOnce(t, d, 4, 0.8, cfg, seeds[0], seeds[1])
		cfg.Workers = 8
		parallel, parallelDrawn := runOnce(t, d, 4, 0.8, cfg, seeds[0], seeds[1])
		if serial.Accept != parallel.Accept {
			t.Fatalf("seeds %v: decision differs across workers: %v vs %v", seeds, serial.Accept, parallel.Accept)
		}
		if serial.Trace != parallel.Trace {
			t.Fatalf("seeds %v: trace differs across workers:\nserial:   %+v\nparallel: %+v", seeds, serial.Trace, parallel.Trace)
		}
		if serialDrawn != parallelDrawn {
			t.Fatalf("seeds %v: draw counts differ: %d vs %d", seeds, serialDrawn, parallelDrawn)
		}
		if serial.Domain.String() != parallel.Domain.String() {
			t.Fatalf("seeds %v: sieved domains differ", seeds)
		}
		if serialDrawn != serial.Trace.TotalSamples() {
			t.Fatalf("seeds %v: trace accounting %d != oracle count %d", seeds, serial.Trace.TotalSamples(), serialDrawn)
		}
	}
}

func TestWorkersCapDeterminism(t *testing.T) {
	// Intermediate caps (2, 3 workers) must agree with the serial run too.
	d := threeHistogram(1024)
	cfg := PracticalConfig()
	cfg.SieveReps = 5
	cfg.Workers = 1
	want, _ := runOnce(t, d, 3, 0.8, cfg, 300, 400)
	for _, w := range []int{0, 2, 3} {
		cfg.Workers = w
		got, _ := runOnce(t, d, 3, 0.8, cfg, 300, 400)
		if got.Trace != want.Trace {
			t.Fatalf("workers=%d: trace differs from serial", w)
		}
	}
}

// switchOracle draws from a until cut draws have been made, then from b —
// a distribution that shifts between the learning and sieving stages.
// It deliberately does NOT implement oracle.Forker, pinning the serial
// sieve path.
type switchOracle struct {
	n     int
	a, b  oracle.Oracle
	cut   int64
	count int64
}

func (s *switchOracle) N() int { return s.n }
func (s *switchOracle) Draw() int {
	s.count++
	if s.count <= s.cut {
		return s.a.Draw()
	}
	return s.b.Draw()
}
func (s *switchOracle) Samples() int64 { return s.count }

func TestHeavySingletonsTripSieveRejection(t *testing.T) {
	// Regression test for the stage-3a counting bug: when every heavy
	// offender is a singleton interval, the sieve can remove none of them,
	// but more than k of them must still trip StageSieveHeavy (previously
	// only removable intervals counted, so this rejection was unreachable
	// and the tester limped to a later stage).
	//
	// Construction: 8 spikes of mass 1/8 — ApproxPart isolates each as a
	// heavy singleton and the learner records mass 1/8 on each. Then the
	// distribution silently shifts all mass to element 0 before the sieve
	// draws, so every spike singleton carries an enormous χ² statistic.
	const n, k = 64, 2
	const eps = 0.4
	spikes := make([]float64, n)
	for j := 0; j < 8; j++ {
		spikes[j*8] = 1.0 / 8
	}
	distA := dist.MustDense(spikes)
	point := make([]float64, n)
	point[0] = 1
	distB := dist.MustDense(point)
	cfg := PracticalConfig()

	// Dry run on the stationary distribution to learn the exact
	// partition+learn draw budget; both runs share all seeds, so the
	// switching run consumes identically many draws in those stages.
	dry := oracle.NewSampler(distA, rng.New(500))
	dryRes, err := Test(dry, rng.New(501), k, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := dryRes.Trace.PartitionSamples + dryRes.Trace.LearnSamples

	sw := &switchOracle{
		n:   n,
		a:   oracle.NewSampler(distA, rng.New(500)),
		b:   oracle.NewSampler(distB, rng.New(502)),
		cut: cut,
	}
	res, err := Test(sw, rng.New(501), k, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept {
		t.Fatal("shifted distribution accepted")
	}
	if res.Trace.RejectStage != StageSieveHeavy {
		t.Fatalf("reject stage = %q (%s), want %q", res.Trace.RejectStage, res.Trace.RejectReason, StageSieveHeavy)
	}
	if res.Trace.HeavySingletons <= k {
		t.Fatalf("HeavySingletons = %d, want > k = %d (the offenders are all singletons)", res.Trace.HeavySingletons, k)
	}
}
