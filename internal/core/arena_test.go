package core

import (
	"testing"

	"repro/internal/oracle"
	"repro/internal/rng"
)

// TestArenaReuseMatchesFresh pins the arena contract: back-to-back Test
// calls on one shared Arena must produce bit-identical Traces to fresh-
// allocation runs, at every worker count. The sequence deliberately mixes
// domain sizes and k so each call inherits scratch sized (and dirtied) by
// a different predecessor.
func TestArenaReuseMatchesFresh(t *testing.T) {
	runs := []struct {
		n          int
		k          int
		eps        float64
		sampleSeed uint64
		testSeed   uint64
	}{
		{2048, 4, 0.8, 100, 200},
		{512, 3, 0.7, 101, 201},
		{2048, 4, 0.8, 100, 200}, // repeat of run 0: same inputs, dirtier scratch
		{1024, 2, 0.9, 102, 202},
	}
	for _, workers := range []int{1, 0} {
		cfg := PracticalConfig()
		cfg.SieveReps = 5
		cfg.Workers = workers
		arena := NewArena()
		for i, ru := range runs {
			d := threeHistogram(ru.n)
			fresh, freshDrawn := runOnce(t, d, ru.k, ru.eps, cfg, ru.sampleSeed, ru.testSeed)

			s := oracle.NewSampler(d, rng.New(ru.sampleSeed))
			reused, err := arena.Test(s, rng.New(ru.testSeed), ru.k, ru.eps, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if reused.Trace != fresh.Trace {
				t.Fatalf("workers=%d run %d: arena trace differs from fresh:\narena: %+v\nfresh: %+v",
					workers, i, reused.Trace, fresh.Trace)
			}
			if reused.Accept != fresh.Accept {
				t.Fatalf("workers=%d run %d: decision differs", workers, i)
			}
			if s.Samples() != freshDrawn {
				t.Fatalf("workers=%d run %d: draw counts differ: %d vs %d",
					workers, i, s.Samples(), freshDrawn)
			}
			if reused.Domain.String() != fresh.Domain.String() {
				t.Fatalf("workers=%d run %d: sieved domains differ", workers, i)
			}
		}
	}
}

// TestForkProbeDoesNotAllocate pins the CanFork satellite: asking "is
// this oracle forkable?" must be free. The old probe performed (and
// discarded) a trial Fork with a freshly allocated RNG on EVERY Test
// call; CanFork is a pure capability answer.
func TestForkProbeDoesNotAllocate(t *testing.T) {
	s := oracle.NewSampler(threeHistogram(512), rng.New(1))
	var f oracle.Forker = s
	if n := testing.AllocsPerRun(100, func() {
		if !f.CanFork() {
			t.Fatal("Sampler must report CanFork")
		}
	}); n != 0 {
		t.Fatalf("CanFork allocates %v objects per call, want 0", n)
	}
}

// TestSteadyStateAllocationsBounded guards the arena's allocation-free
// steady state end to end: warmed-up Test calls must stay under a fixed
// allocation ceiling, serial and parallel. The ceilings sit a few
// percent above the measured steady state (107 serial / 119 at four
// workers), tight enough to catch a reintroduced per-call probe fork or
// a scratch buffer that stopped being reused, loose enough to tolerate
// runtime version noise. Race builds get raceAllocSlack on top: the
// instrumentation moves a few stack allocations to the heap.
func TestSteadyStateAllocationsBounded(t *testing.T) {
	d := threeHistogram(2048)
	cfg := PracticalConfig()
	cfg.SieveReps = 5
	for _, tc := range []struct {
		workers int
		ceiling float64
	}{{1, 115}, {4, 130}} {
		cfg.Workers = tc.workers
		arena := NewArena()
		s := oracle.NewSampler(d, rng.New(300))
		for i := 0; i < 3; i++ {
			if _, err := arena.Test(s, rng.New(400), 4, 0.8, cfg); err != nil {
				t.Fatal(err)
			}
		}
		got := testing.AllocsPerRun(5, func() {
			if _, err := arena.Test(s, rng.New(400), 4, 0.8, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if ceiling := tc.ceiling + raceAllocSlack; got > ceiling {
			t.Fatalf("workers=%d: steady-state Test performs %v allocs/op, ceiling %v", tc.workers, got, ceiling)
		}
	}
}

// TestArenaRepeatedIdenticalCalls checks the steadiest state: the same
// inputs through the same arena many times in a row never drift.
func TestArenaRepeatedIdenticalCalls(t *testing.T) {
	d := threeHistogram(1024)
	cfg := PracticalConfig()
	cfg.SieveReps = 5
	cfg.Workers = 0
	arena := NewArena()
	want, _ := runOnce(t, d, 3, 0.8, cfg, 300, 400)
	for i := 0; i < 4; i++ {
		s := oracle.NewSampler(d, rng.New(300))
		got, err := arena.Test(s, rng.New(400), 3, 0.8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Trace != want.Trace {
			t.Fatalf("iteration %d: trace drifted:\ngot:  %+v\nwant: %+v", i, got.Trace, want.Trace)
		}
	}
}
