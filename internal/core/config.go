// Package core implements the paper's main contribution: the k-histogram
// tester of Theorem 3.1 (Algorithm 1). Given sample access to an unknown
// distribution D over [n], it distinguishes D ∈ H_k (accept w.p. >= 2/3)
// from dTV(D, H_k) >= ε (reject w.p. >= 2/3), using
// O(√n/ε²·log k + poly(k, 1/ε)) samples.
//
// The pipeline has four stages, each with fresh samples:
//
//  1. Partition — learn.ApproxPart with b = Θ(k log k / ε) isolates heavy
//     elements and caps every other interval's mass (Prop. 3.4).
//  2. Learn — the add-one estimator over the partition yields D̂, close to
//     D in χ² off D's breakpoint intervals (Lemma 3.5).
//  3. Sieve — per-interval χ² statistics Z_j (Prop. 3.3) identify and
//     remove the few intervals where the learned D̂ cannot be trusted:
//     first every non-singleton interval with Z_j above the heavy cutoff
//     (at most k may go), then O(log k) halving rounds (§3.2.1).
//  4. Check + Test — a DP (histdp.ProjectTV) verifies D̂ is close to H_k on
//     the sieved domain G, then the [ADK15] tester compares D against D̂
//     on G with fresh samples.
package core

import (
	"math"
	"runtime"

	"repro/internal/chisq"
	"repro/internal/obs"
	"repro/internal/oracle"
)

// Config carries every constant of Algorithm 1. The paper fixes these in
// the proofs; the corrigendum to the paper revised parts of that analysis,
// which is why this implementation keeps them tunable and validates the
// operating characteristics empirically (see EXPERIMENTS.md).
type Config struct {
	// Engine selects the tester implementation by registry name: "" or
	// "adk" runs the source paper's Algorithm 1 (the four-stage
	// partition → learn → sieve → check → test pipeline); "cdkl22" runs
	// the CDKL'22 near-optimal tester (see engine_cdkl.go). Unknown
	// names fail the run with an error — never a silent fallback — and
	// serving layers reject them with a 400 at admission time. See
	// Engines() for the registered names.
	Engine string

	// PartBFactor sets the ApproxPart parameter b = PartBFactor·k·log2(k+2)/ε
	// (paper: 20).
	PartBFactor float64
	// PartSampleC scales ApproxPart's O(b log b) sample budget.
	PartSampleC float64

	// LearnEpsDivisor runs the learner at accuracy ε/LearnEpsDivisor
	// (paper: 60).
	LearnEpsDivisor float64
	// LearnSampleC scales the learner's O(K/ε²) sample budget.
	LearnSampleC float64

	// AlphaDivisor sets the sieve scale α = ε/AlphaDivisor (the paper's
	// "α = ε/C for a big enough constant C").
	AlphaDivisor float64
	// SieveMFactor sets the per-round sieve sample mean m = SieveMFactor·√n/α².
	SieveMFactor float64
	// SieveHeavyFactor: stage 1 removes intervals with Z_j > SieveHeavyFactor·m·α²
	// (paper: 10).
	SieveHeavyFactor float64
	// SieveAcceptFactor: a sieve round accepts when Z < SieveAcceptFactor·m·α²
	// (paper: 10).
	SieveAcceptFactor float64
	// SieveResidualFactor: a removal round keeps the surviving Z_j sum below
	// SieveResidualFactor·m·α² (paper: 2).
	SieveResidualFactor float64
	// SieveReps computed statistics per decision (median amplification);
	// <= 0 means derive from k as Θ(log log k) like the paper.
	SieveReps int
	// DiscardMassCap rejects when the sieve discards more than
	// DiscardMassCap·ε of estimated probability mass (the paper bounds this
	// by ε/10 via counting; an explicit mass cap is tighter in practice).
	DiscardMassCap float64

	// CheckTolDivisor accepts the DP check at distance ε/CheckTolDivisor
	// (paper: 60).
	CheckTolDivisor float64

	// FlatEpsFactor (cdkl22 engine only) runs the trimmed flatness test
	// at ε_f = FlatEpsFactor·ε. Zero means the calibrated default 0.5.
	FlatEpsFactor float64
	// FlatCheckTolDivisor (cdkl22 engine only) accepts that engine's DP
	// structure check at distance ε/FlatCheckTolDivisor. It is looser
	// than CheckTolDivisor because the cdkl22 check runs on the FULL
	// domain: the ≤ k−1 breakpoint intervals are never sieved away, so a
	// legal k-histogram's learned flattening legitimately sits up to
	// ~(k−1)/b ≈ ε/(PartBFactor·log₂(k+2)) away from H_k. Zero means
	// the calibrated default 6.
	FlatCheckTolDivisor float64

	// TestEpsFactor runs the final [ADK15] test at ε' = TestEpsFactor·ε
	// (paper: 13/30).
	TestEpsFactor float64
	// Chi are the final test's statistic constants.
	Chi chisq.Params
	// MaxSamples guards against accidentally astronomical budgets (the
	// paper constants on even tiny domains imply >10¹¹ draws): Test
	// returns an error instead of attempting a run whose nominal budget
	// exceeds it. Zero means 2³¹.
	MaxSamples int64

	// Workers bounds the goroutines used for the sieve's independent
	// replicate draws: 0 means GOMAXPROCS, 1 forces serial execution, and
	// higher values cap the fan-out. The decision and the Trace are
	// identical for every value — each replicate's randomness is a
	// sequential Split of the tester RNG taken before any goroutine
	// launches — so Workers is purely a throughput knob. Parallelism
	// requires an oracle that supports cloning (oracle.Forker, e.g. the
	// alias-table Sampler); Replay and Source-backed oracles always run
	// the serial path.
	Workers int

	// CountStrategy selects how the tester's Poissonized count vectors
	// (the sieve replicates and the final test batch) are synthesized.
	// The zero value, oracle.CountExact, draws every sample individually
	// and keeps the randomness stream bit-identical to always — every
	// replay oracle, regression pin, and determinism test is untouched.
	// oracle.CountClosedForm asks a known sampler (oracle.CountDrawer)
	// for the count vector directly in O(k + occupied) RNG calls per
	// batch instead of O(m) draws — the fast path for spec/registered-
	// sampler workloads; counts are distributionally identical, and
	// per-seed decisions differ while operating characteristics agree
	// (see DESIGN.md "Count generation"). Oracles without the capability
	// (Replay, Source adapters, Permuted/Conditional wrappers) always
	// fall back to the exact per-draw path.
	CountStrategy oracle.CountStrategy

	// SkipCheck disables the Step-10 DP check (the "Checking" stage of
	// Algorithm 1). ABLATION ONLY: without it the tester loses soundness
	// against distributions that match their own partition flattening —
	// experiment E12 demonstrates the resulting false accepts.
	SkipCheck bool

	// Observer, when non-nil, receives the run's structured stage events
	// (stage enter/exit with per-stage draw counts, per-sieve-round
	// removals and fan-out, pool and counting-path statistics — see
	// internal/obs for the schema). nil is the zero-overhead fast path:
	// no events, no clock reads, no allocations. Attaching an observer
	// never consumes randomness, so the decision and the Trace are
	// bit-identical with and without one.
	Observer obs.Observer
}

// workers resolves the Workers knob: 0 means GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// maxSamples returns the effective budget guard.
func (c Config) maxSamples() int64 {
	if c.MaxSamples > 0 {
		return c.MaxSamples
	}
	return 1 << 31
}

// PaperConfig returns the literal constants of the paper's analysis.
// They are safe but astronomically sample-hungry (the leading constant on
// √n/ε² is in the tens of thousands); use PracticalConfig for experiments.
func PaperConfig() Config {
	return Config{
		PartBFactor:         20,
		PartSampleC:         20,
		LearnEpsDivisor:     60,
		LearnSampleC:        20,
		AlphaDivisor:        500,
		SieveMFactor:        20000,
		SieveHeavyFactor:    10,
		SieveAcceptFactor:   10,
		SieveResidualFactor: 2,
		SieveReps:           0, // derived from k
		DiscardMassCap:      0.1,
		CheckTolDivisor:     60,
		TestEpsFactor:       13.0 / 30,
		Chi:                 chisq.PaperParams(),
	}
}

// PracticalConfig returns constants calibrated so that the stages'
// guarantees compose at laptop-scale sample sizes. The derivation (see
// EXPERIMENTS.md for the empirical validation):
//
//   - final test at ε' = 0.28ε with accept cutoff 0.1·m·ε'²: tolerates a
//     residual χ² of ~0.008ε² on the sieved domain;
//   - learner (at ε/24, budget constant 2) and sieve at α = ε/24:
//     post-sieve residual <= 1.5α² ≈ 0.0026ε², a third of the cutoff;
//   - discard mass cap 0.3ε: a far distribution stays >= (ε−0.3ε)/2 = 0.35ε
//     far on the sieved domain, and 0.35ε − ε/20 (check tolerance) >= ε'.
func PracticalConfig() Config {
	return Config{
		PartBFactor:         6,
		PartSampleC:         8,
		LearnEpsDivisor:     24,
		LearnSampleC:        2,
		AlphaDivisor:        24,
		SieveMFactor:        8,
		SieveHeavyFactor:    10,
		SieveAcceptFactor:   1.5,
		SieveResidualFactor: 1.5,
		SieveReps:           1,
		DiscardMassCap:      0.3,
		CheckTolDivisor:     20,
		TestEpsFactor:       0.28,
		Chi: chisq.Params{
			MFactor:      80,
			TruncFactor:  1.0 / 50,
			AcceptFactor: 1.0 / 10,
		},
	}
}

// Scale returns a copy of c with every stage's sample budget multiplied by
// s (thresholds are relative to the realized budgets, so the decision
// structure is unchanged). The empirical sample-complexity searches sweep
// this single knob.
func (c Config) Scale(s float64) Config {
	out := c
	out.PartSampleC *= s
	out.LearnSampleC *= s
	out.SieveMFactor *= s
	out.Chi.MFactor *= s
	return out
}

// PartB returns the ApproxPart parameter b for given k and ε (at least 1).
func (c Config) PartB(k int, eps float64) float64 {
	b := c.PartBFactor * float64(k) * math.Log2(float64(k)+2) / eps
	if b < 1 {
		b = 1
	}
	return b
}

// Alpha returns the sieve scale α = ε/AlphaDivisor.
func (c Config) Alpha(eps float64) float64 { return eps / c.AlphaDivisor }

// SieveRounds returns the number of stage-2 halving rounds, ⌈log2(k+1)⌉+1.
func (c Config) SieveRounds(k int) int {
	return int(math.Ceil(math.Log2(float64(k)+1))) + 1
}

// flatEpsFactor resolves FlatEpsFactor: 0 means 0.5.
func (c Config) flatEpsFactor() float64 {
	if c.FlatEpsFactor > 0 {
		return c.FlatEpsFactor
	}
	return 0.5
}

// flatCheckTolDivisor resolves FlatCheckTolDivisor: 0 means 6.
func (c Config) flatCheckTolDivisor() float64 {
	if c.FlatCheckTolDivisor > 0 {
		return c.FlatCheckTolDivisor
	}
	return 6
}

// sieveReps returns the amplification repetitions per sieve statistic.
func (c Config) sieveReps(k int) int {
	if c.SieveReps > 0 {
		return c.SieveReps
	}
	// δ = 1/(10(k+1)) as in §3.2.1; majority of Θ(log 1/δ) suffices, and
	// log log k of the paper is absorbed into the constant here.
	reps := int(math.Ceil(math.Log2(10 * (float64(k) + 1))))
	if reps%2 == 0 {
		reps++
	}
	return reps
}
