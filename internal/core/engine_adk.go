package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/chisq"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stats"
)

// adkEngine is the source paper's Algorithm 1 — the default engine.
//
// Mapping to the paper's listing (line numbers from Algorithm 1):
//
//	Require (parameters k, ε; sample access)  →  the run arguments
//	1  b = 20k·log k/ε, ε0 = 13ε/30           →  cfg.PartB, cfg.TestEpsFactor·ε
//	2-3  Learning: ApproxPart(b) → I           →  learn.ApproxPart (Prop 3.4)
//	4  Learner(K, ε/60, I) → D̂                →  learn.Learn (Lemma 3.5)
//	6-7  Sieving: discard O(k log k) intervals →  stage 3a (heavy cutoff) +
//	     per §3.2.1                               stage 3b (halving rounds) on
//	                                              chisq.ZPerInterval medians
//	9-10 Checking: ∃D* ∈ H_k close to D̂ on G  →  histdp.ProjectTV (the
//	     by dynamic programming                   [CDGR16, Lemma 4.11] DP)
//	12-13 Testing: Tester(n, ε0, D̂) on G       →  chisq.Test (Theorem 3.2)
//	14 accept                                   →  the final return
//
// Each stage draws fresh samples; Trace records the per-stage accounting.
type adkEngine struct{}

// Name implements Engine.
func (adkEngine) Name() string { return "adk" }

// ExpectedSamples implements Engine: the Theorem 3.1 accounting —
// partition + learn + sieve reps×(rounds+1) batches + final test.
func (adkEngine) ExpectedSamples(n, k int, eps float64, cfg Config) int64 {
	b := cfg.PartB(k, eps)
	partM := learn.ApproxPartSamples(b, cfg.PartSampleC)
	// ApproxPart yields K <= ~7b/3 + #heavy + 2 intervals.
	K := int(7*b/3) + 2
	learnM := learn.LearnSamples(K, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	alpha := cfg.Alpha(eps)
	mSieve := cfg.SieveMFactor * math.Sqrt(float64(n)) / (alpha * alpha)
	sieveM := mSieve * float64(cfg.sieveReps(k)) * float64(cfg.SieveRounds(k)+1)
	testM := cfg.Chi.SampleMean(n, cfg.TestEpsFactor*eps)
	return int64(partM) + int64(learnM) + int64(sieveM) + int64(testM)
}

// run implements Engine.
func (adkEngine) run(ctx context.Context, a *Arena, o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	n := o.N()
	tr := Trace{N: n}
	mark := o.Samples()
	took := func() int64 {
		d := o.Samples() - mark
		mark = o.Samples()
		return d
	}

	// Stage 1: partition (Proposition 3.4).
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StagePartition})
	b := cfg.PartB(k, eps)
	tr.B = b
	part, err := learn.ApproxPartContext(ctx, o, r, b, cfg.PartSampleC)
	if err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	p := part.Partition
	K := p.Count()
	tr.K = K
	tr.PartitionSamples = took()
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StagePartition, Samples: tr.PartitionSamples})

	// Stage 2: learn (Lemma 3.5).
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageLearn})
	dhat, _, err := learn.LearnContext(ctx, o, r, p, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	if err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	tr.LearnSamples = took()
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageLearn, Samples: tr.LearnSamples})

	// Stage 3: sieve (§3.2.1).
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageSieve})
	alpha := cfg.Alpha(eps)
	mSieve := cfg.SieveMFactor * math.Sqrt(float64(n)) / (alpha * alpha)
	tau := cfg.Chi.TruncFactor * eps / float64(n)
	reps := cfg.sieveReps(k)

	a.grow(K, reps)
	keep := a.keep
	for j := range keep {
		keep[j] = true
	}
	// The sieved sub-domain is a pure function of the keep mask; rebuilding
	// it costs O(K) and an allocation, so it is cached until a removal
	// invalidates it (most sieve rounds remove nothing).
	domainStale := true
	var cachedDomain *intervals.Domain
	domain := func() *intervals.Domain {
		if domainStale {
			cachedDomain = intervals.FromPartitionSubset(p, keep)
			domainStale = false
		}
		return cachedDomain
	}

	// The reps replicates per sieve decision are independent Poissonized
	// batches (the median-amplification trick of §3.2.1), so they fan out
	// across workers when the oracle supports cloning. Replay and
	// Source-backed oracles cannot be cloned (their streams are inherently
	// serial) and keep the exact legacy draw order. Determinism contract:
	// each replicate's randomness is a sequential Split of r taken BEFORE
	// any goroutine launches, so the decision and Trace are bit-identical
	// for every Workers value.
	workers := cfg.workers()
	var forker oracle.Forker
	if f, ok := o.(oracle.Forker); ok && reps > 1 && f.CanFork() {
		forker = f
	}

	// Resolve the count-synthesis strategy once against the parent oracle:
	// forks preserve the CountDrawer capability (a Sampler forks to a
	// Sampler), so the resolution holds for every replicate clone, and the
	// per-batch observability tallies can attribute without re-asserting.
	countStrat := oracle.EffectiveStrategy(o, cfg.CountStrategy)

	// computeZs draws fresh Poissonized samples reps times and returns the
	// per-interval medians (in a.zs, overwritten per call). The replicate
	// statistic rows, the median column, and the Poissonized count buffers
	// (via the oracle pool) are all recycled round over round. The context
	// is checked before every batch draw; batches already in flight finish
	// and release their pooled buffers before the cancellation error
	// surfaces, and clone draws are always folded back into o's counter.
	computeZs := func() ([]float64, error) {
		g := domain()
		med := a.med
		if a.ob != nil {
			a.obDense, a.obSparse = 0, 0
			a.obExact, a.obClosedForm = 0, 0
		}
		a.obWorkers = 1
		if forker != nil {
			jobs := a.jobs
			for t := range jobs {
				// Re-split into the scratch RNG structs: stream-identical to
				// a fresh Split, without the per-round allocations.
				rt := &a.reprng[t]
				r.SplitInto(rt)
				jobs[t] = replicate{o: forker.Fork(rt), r: rt}
			}
			// tally is nil on the serial path (obBatch bumps the Arena
			// fields directly) and a worker-private padded slot on the
			// parallel path.
			run := func(t int, tally *obTally) {
				counts := oracle.DrawCountsWith(jobs[t].o, jobs[t].r, mSieve, countStrat)
				if tally != nil {
					tally.batch(counts, countStrat)
				} else if a.ob != nil {
					a.obBatch(counts, countStrat)
				}
				med[t] = chisq.ZPerIntervalInto(med[t][:0], counts, dhat, p, g, mSieve, tau)
				counts.Release()
			}
			var runErr error
			if w := min(workers, reps); w <= 1 {
				for t := range jobs {
					if runErr = ctx.Err(); runErr != nil {
						break
					}
					run(t, nil)
				}
			} else {
				// Deterministic chunked assignment: worker i owns the
				// contiguous replicate range [i·chunk, (i+1)·chunk). The old
				// shared atomic claim counter cost one contended CAS per
				// replicate and bounced its cache line across every worker;
				// chunking removes the shared word entirely. Claim order was
				// never what made the sieve deterministic — each replicate's
				// RNG stream is split from r sequentially before any
				// goroutine launches — so assignment shape is free to choose
				// for locality: adjacent replicates (adjacent med rows) stay
				// on the same worker.
				//
				// With reps not a multiple of w the trailing chunk(s) are
				// empty (e.g. reps=5, w=4 → chunk=2 covers everything in 3
				// chunks), so nw — the goroutines actually launched — can be
				// smaller than w; it is what the observer round event reports.
				chunk := (reps + w - 1) / w
				nw := (reps + chunk - 1) / chunk
				a.obWorkers = nw
				var tallies []obTally
				if a.ob != nil {
					if cap(a.obTallies) < nw {
						a.obTallies = make([]obTally, nw)
					}
					tallies = a.obTallies[:nw]
					for i := range tallies {
						tallies[i] = obTally{}
					}
				}
				var wg sync.WaitGroup
				for i := 0; i < nw; i++ {
					lo := i * chunk
					hi := min(lo+chunk, reps)
					var tally *obTally
					if tallies != nil {
						tally = &tallies[i]
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for t := lo; t < hi; t++ {
							if ctx.Err() != nil {
								return
							}
							run(t, tally)
						}
					}()
				}
				wg.Wait()
				runErr = ctx.Err()
				for i := range tallies {
					a.obDense += tallies[i].dense
					a.obSparse += tallies[i].sparse
					a.obExact += tallies[i].exact
					a.obClosedForm += tallies[i].closedForm
				}
			}
			// Fold the per-replicate draw counters back into the parent so
			// Trace accounting stays exact — on the cancellation path too.
			var drawn int64
			for t := range jobs {
				drawn += jobs[t].o.Samples()
			}
			forker.Absorb(drawn)
			if runErr != nil {
				return nil, runErr
			}
		} else {
			for t := 0; t < reps; t++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				counts := oracle.DrawCountsWith(o, r, mSieve, countStrat)
				if a.ob != nil {
					a.obBatch(counts, countStrat)
				}
				med[t] = chisq.ZPerIntervalInto(med[t][:0], counts, dhat, p, g, mSieve, tau)
				counts.Release()
			}
		}
		zs := a.zs
		col := a.col
		for j := 0; j < K; j++ {
			for t := 0; t < reps; t++ {
				col[t] = med[t][j]
			}
			zs[j] = stats.MedianInPlace(col)
		}
		return zs, nil
	}

	removable := func(j int) bool { return keep[j] && p.Interval(j).Len() > 1 }
	remove := func(j int) {
		keep[j] = false
		domainStale = true
		tr.RemovedMass += dhat.IntervalMass(p.Interval(j))
	}
	reject := func(stage, reason string) (*Result, error) {
		tr.RejectStage = stage
		tr.RejectReason = reason
		if a.ob != nil {
			a.emit(obs.Event{Kind: obs.KindRunEnd, Samples: tr.TotalSamples(), RejectStage: stage})
		}
		return &Result{Accept: false, Trace: tr, Learned: dhat, Domain: domain()}, nil
	}
	// sieveExit closes the sieve stage's sample accounting and event.
	sieveExit := func() {
		tr.SieveSamples = took()
		a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageSieve, Samples: tr.SieveSamples})
	}

	// Stage 3a: discard the heavy offenders. EVERY interval above the
	// cutoff counts toward the > k rejection budget — a far distribution
	// may concentrate its χ² excess on singleton intervals, which the
	// sieve has no right to remove but must still hold against the
	// k-interval allowance — while only removable (non-singleton)
	// intervals are actually discarded.
	var roundSamp int64
	var roundPool oracle.PoolStats
	if a.ob != nil {
		roundSamp, roundPool = o.Samples(), oracle.PoolStatsSnapshot()
	}
	zs, err := computeZs()
	if err != nil {
		sieveExit()
		return a.fail(tr.TotalSamples(), err)
	}
	heavyThr := cfg.SieveHeavyFactor * mSieve * alpha * alpha
	heavyTotal := 0
	heavyIdx := a.order[:0] // scratch; consumed before the 3b rounds reuse it
	for j := 0; j < K; j++ {
		if !keep[j] || zs[j] <= heavyThr {
			continue
		}
		heavyTotal++
		if removable(j) {
			heavyIdx = append(heavyIdx, j)
		}
	}
	tr.HeavySingletons = heavyTotal - len(heavyIdx)
	if heavyTotal > k {
		a.emitRound(o, 0, 0, reps, roundSamp, roundPool)
		sieveExit()
		return reject(StageSieveHeavy, fmt.Sprintf("%d intervals above the heavy cutoff (%d unremovable singletons), k = %d", heavyTotal, tr.HeavySingletons, k))
	}
	for _, j := range heavyIdx {
		remove(j)
	}
	tr.RemovedHeavy = len(heavyIdx)
	a.emitRound(o, 0, len(heavyIdx), reps, roundSamp, roundPool)
	if tr.RemovedMass > cfg.DiscardMassCap*eps {
		sieveExit()
		return reject(StageDiscardMass, fmt.Sprintf("discarded mass %.4f exceeds cap %.4f", tr.RemovedMass, cfg.DiscardMassCap*eps))
	}

	// Stage 3b: iterative halving rounds.
	acceptThr := cfg.SieveAcceptFactor * mSieve * alpha * alpha
	residualThr := cfg.SieveResidualFactor * mSieve * alpha * alpha
	rounds := cfg.SieveRounds(k)
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			sieveExit()
			return a.fail(tr.TotalSamples(), err)
		}
		tr.SieveRoundsRun = round + 1
		if a.ob != nil {
			roundSamp, roundPool = o.Samples(), oracle.PoolStatsSnapshot()
		}
		zs, err = computeZs()
		if err != nil {
			sieveExit()
			return a.fail(tr.TotalSamples(), err)
		}
		removedBefore := tr.RemovedRounds
		total := 0.0
		for j := 0; j < K; j++ {
			if keep[j] {
				total += zs[j]
			}
		}
		if total < acceptThr {
			a.emitRound(o, round+1, 0, reps, roundSamp, roundPool)
			break
		}
		// Remove the largest Z_j (non-singletons only) until the survivors
		// sum below the residual target.
		order := a.order[:0]
		for j := 0; j < K; j++ {
			if removable(j) {
				order = append(order, j)
			}
		}
		sort.Slice(order, func(a, b int) bool { return zs[order[a]] > zs[order[b]] })
		for _, j := range order {
			if total <= residualThr {
				break
			}
			total -= zs[j]
			remove(j)
			tr.RemovedRounds++
			if tr.RemovedMass > cfg.DiscardMassCap*eps {
				a.emitRound(o, round+1, tr.RemovedRounds-removedBefore, reps, roundSamp, roundPool)
				sieveExit()
				return reject(StageDiscardMass, fmt.Sprintf("discarded mass %.4f exceeds cap %.4f", tr.RemovedMass, cfg.DiscardMassCap*eps))
			}
		}
		a.emitRound(o, round+1, tr.RemovedRounds-removedBefore, reps, roundSamp, roundPool)
		if total > residualThr {
			sieveExit()
			return reject(StageSieveStuck, "residual statistic cannot be brought below target by removals")
		}
	}
	sieveExit()
	g := domain()

	// Stage 4: check that some k-histogram is close to D̂ on G (Step 10 of
	// Algorithm 1, via the DP of histdp).
	if err := ctx.Err(); err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	if !cfg.SkipCheck {
		a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageCheck})
		proj, err := histdp.ProjectTV(dhat, k, g)
		if err != nil {
			return a.fail(tr.TotalSamples(), fmt.Errorf("core: check DP failed: %w", err))
		}
		tr.CheckRelaxed = proj.Relaxed
		a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageCheck})
		tol := eps / cfg.CheckTolDivisor
		if proj.Relaxed > tol {
			return reject(StageCheck, fmt.Sprintf("distance of D̂ to H_k on G is %.5f > tolerance %.5f", proj.Relaxed, tol))
		}
	}

	// Stage 5: final χ²-vs-TV test of D against D̂ on G with fresh samples.
	if err := ctx.Err(); err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageTest})
	res := chisq.TestWith(o, r, dhat, g, cfg.TestEpsFactor*eps, cfg.Chi, countStrat)
	tr.TestSamples = took()
	tr.FinalZ = res.Z
	tr.FinalThresh = res.Threshold
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageTest, Samples: tr.TestSamples})
	if !res.Accept {
		return reject(StageTest, fmt.Sprintf("final statistic %.1f above threshold %.1f", res.Z, res.Threshold))
	}
	if a.ob != nil {
		a.emit(obs.Event{Kind: obs.KindRunEnd, Accept: true, Samples: tr.TotalSamples()})
	}
	return &Result{Accept: true, Trace: tr, Learned: dhat, Domain: g}, nil
}
