package core

import (
	"fmt"
	"math"

	"repro/internal/chisq"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// KnownPartitionParams tune TestKnownPartition.
type KnownPartitionParams struct {
	// LearnEpsDivisor runs the learner at ε/LearnEpsDivisor.
	LearnEpsDivisor float64
	// LearnSampleC scales the learner budget O(K/ε²).
	LearnSampleC float64
	// TestEpsFactor runs the identity test at ε' = TestEpsFactor·ε.
	TestEpsFactor float64
	// Chi are the identity-test constants.
	Chi chisq.Params
}

// PracticalKnownPartition returns calibrated constants: learner χ² error
// (ε/16)²/2 sits well under the identity test's acceptance budget
// 0.1·(0.5ε)².
func PracticalKnownPartition() KnownPartitionParams {
	return KnownPartitionParams{
		LearnEpsDivisor: 16,
		LearnSampleC:    2,
		TestEpsFactor:   0.5,
		Chi:             chisq.Params{MFactor: 60, TruncFactor: 1.0 / 50, AcceptFactor: 1.0 / 10},
	}
}

// KnownPartitionResult reports one TestKnownPartition invocation.
type KnownPartitionResult struct {
	Accept  bool
	Samples int64
	// Z and Threshold are the deciding identity-test statistics.
	Z, Threshold float64
}

// TestKnownPartition decides the EASIER variant the paper contrasts with
// in Section 1.2 (studied by [DK16]): given an EXPLICIT partition Π of
// [0, n), is D piecewise constant on Π's intervals, or ε-far from every
// distribution that is?
//
// Because the breakpoints are known, no sieve and no projection DP are
// needed: D ∈ Hist(Π) if and only if D equals its own Π-flattening, so
// learning the flattening and running the Theorem 3.2 identity test
// suffices — at O(√n/ε² + |Π|/ε²) samples, matching the [DK16] rate and
// strictly cheaper than the unknown-partition problem (experiment E13
// measures the gap).
func TestKnownPartition(o oracle.Oracle, r *rng.RNG, part *intervals.Partition, eps float64, p KnownPartitionParams) (*KnownPartitionResult, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps = %v must be in (0, 1]", eps)
	}
	n := o.N()
	if part.N() != n {
		return nil, fmt.Errorf("core: partition over [0,%d), oracle over [0,%d)", part.N(), n)
	}
	start := o.Samples()
	// Learn the flattening of D over Π. If D ∈ Hist(Π), the flattening IS
	// D and the add-one estimator is χ²-consistent for it (Lemma 3.5 with
	// no breakpoint intervals to excuse: every interval of Π is flat).
	dhat, _ := learn.Learn(o, r, part, eps/p.LearnEpsDivisor, p.LearnSampleC)
	// Identity test D against the learned flattening.
	res := chisq.Test(o, r, dhat, intervals.FullDomain(n), p.TestEpsFactor*eps, p.Chi)
	return &KnownPartitionResult{
		Accept:  res.Accept,
		Samples: o.Samples() - start,
		Z:       res.Z, Threshold: res.Threshold,
	}, nil
}

// KnownPartitionExpectedSamples returns the nominal budget of one
// TestKnownPartition call.
func KnownPartitionExpectedSamples(n, numIntervals int, eps float64, p KnownPartitionParams) int64 {
	learnM := learn.LearnSamples(numIntervals, eps/p.LearnEpsDivisor, p.LearnSampleC)
	testM := p.Chi.SampleMean(n, p.TestEpsFactor*eps)
	return int64(learnM) + int64(math.Ceil(testM))
}
