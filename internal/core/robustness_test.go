package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// TestRobustnessSweep runs the tester across randomized parameters and
// instance shapes, asserting structural invariants of every outcome
// regardless of the verdict: no errors or panics, trace/oracle sample
// agreement, stage accounting, domain sanity, and discard-cap compliance.
func TestRobustnessSweep(t *testing.T) {
	r := rng.New(99)
	cfg := PracticalConfig().Scale(0.25) // keep the sweep fast
	for trial := 0; trial < 30; trial++ {
		n := 64 << r.Intn(4) // 64..512
		k := 1 + r.Intn(6)
		eps := 0.3 + 0.4*r.Float64()

		var d dist.Distribution
		switch r.Intn(5) {
		case 0:
			d = gen.KHistogram(r, n, k)
		case 1:
			d = gen.Zipf(n, 0.5+r.Float64())
		case 2:
			d = gen.Staircase(n, 8+r.Intn(24))
		case 3:
			d = gen.GaussianMixture(n, []float64{float64(n) / 4, float64(n) / 2}, []float64{float64(n) / 16, float64(n) / 10}, []float64{1, 1})
		default:
			d = gen.KModal(r, n, 1+r.Intn(min(4, n/4)))
		}

		s := oracle.NewSampler(d, r.Split())
		res, err := Test(s, r, k, eps, cfg)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d eps=%.2f): %v", trial, n, k, eps, err)
		}
		tr := res.Trace
		if tr.TotalSamples() != s.Samples() {
			t.Fatalf("trial %d: trace says %d samples, oracle counted %d", trial, tr.TotalSamples(), s.Samples())
		}
		if res.Domain == nil || res.Domain.N() != n {
			t.Fatalf("trial %d: bad domain", trial)
		}
		if res.Learned == nil || res.Learned.N() != n {
			t.Fatalf("trial %d: missing hypothesis", trial)
		}
		if res.Accept && tr.RejectStage != "" {
			t.Fatalf("trial %d: accept with reject stage %q", trial, tr.RejectStage)
		}
		if !res.Accept && tr.RejectStage == "" {
			t.Fatalf("trial %d: reject without stage", trial)
		}
		// An ACCEPT may never ride on more discarded mass than the cap —
		// that is the soundness invariant the cap exists for.
		if res.Accept && tr.RemovedMass > cfg.DiscardMassCap*eps+1e-9 {
			t.Fatalf("trial %d (n=%d k=%d eps=%.3f): accepted after discarding %.4f above cap %.4f; trace %+v",
				trial, n, k, eps, tr.RemovedMass, cfg.DiscardMassCap*eps, tr)
		}
		// The sieved domain shrinks by exactly the removed intervals.
		if res.Domain.Size() > n {
			t.Fatalf("trial %d: domain larger than universe", trial)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
