package core

import (
	"context"
	"errors"
	"flag"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// The cross-engine conformance suite: every invariant PRs 1–7
// established piecemeal for the ADK pipeline, asserted table-driven
// against EVERY registered engine. A new engine registers itself in
// engine.go and inherits the whole battery; an engine that silently
// drops out of the registry fails TestConformanceRegistryPinned (and,
// in CI, the -conformance-engines list in the Makefile).

// conformanceEngines lets CI demand coverage by name: `make test` passes
// -conformance-engines=adk,cdkl22, so a deregistered engine is a loud
// failure instead of a silently shrunk table. Empty means all registered.
var conformanceEngines = flag.String("conformance-engines", "", "comma-separated engine names the conformance suite must cover (empty: all registered)")

// conformanceTargets resolves the engine set under test. When the flag
// is set, the named set must match the registry EXACTLY in both
// directions: a name the registry lacks and a registered engine the
// list omits are both fatal.
func conformanceTargets(t *testing.T) []string {
	t.Helper()
	if *conformanceEngines == "" {
		return Engines()
	}
	var names []string
	seen := map[string]bool{}
	for _, n := range strings.Split(*conformanceEngines, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := EngineFor(n); err != nil {
			t.Fatalf("-conformance-engines names %q: %v", n, err)
		}
		names = append(names, n)
		seen[n] = true
	}
	for _, n := range Engines() {
		if !seen[n] {
			t.Fatalf("registered engine %q missing from -conformance-engines=%s", n, *conformanceEngines)
		}
	}
	return names
}

// TestConformanceRegistryPinned pins the registry contents, so adding or
// removing an engine is an explicit test edit, and pins the resolution
// rules the serving layers rely on.
func TestConformanceRegistryPinned(t *testing.T) {
	want := []string{"adk", "cdkl22"}
	if got := Engines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
	eng, err := EngineFor("")
	if err != nil || eng.Name() != DefaultEngine {
		t.Fatalf("EngineFor(\"\") = %v, %v; want the default %q", eng, err, DefaultEngine)
	}
	for _, name := range Engines() {
		eng, err := EngineFor(name)
		if err != nil || eng.Name() != name {
			t.Fatalf("EngineFor(%q) = %v, %v", name, eng, err)
		}
	}
	if _, err := EngineFor("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("EngineFor(\"nope\") err = %v, want an error naming the input", err)
	}
}

// TestConformanceUnknownEngineDrawsNothing: an unknown Config.Engine is
// an error before any oracle draw — never a silent fallback.
func TestConformanceUnknownEngineDrawsNothing(t *testing.T) {
	cfg := PracticalConfig()
	cfg.Engine = "definitely-not-an-engine"
	r := rng.New(7)
	s := oracle.NewSampler(threeHistogram(512), r)
	res, err := Test(s, r, 3, 0.5, cfg)
	if err == nil || res != nil {
		t.Fatalf("unknown engine: res=%v err=%v, want nil result and an error", res, err)
	}
	if s.Samples() != 0 {
		t.Fatalf("unknown engine drew %d samples before failing", s.Samples())
	}
}

// engineRun runs one observed Test with the given engine and returns the
// recorder, the realized draw count, and the result.
func engineRun(t *testing.T, engine string, d dist.Distribution, k int, eps float64, workers int, cs oracle.CountStrategy, seed uint64) (*obs.TraceRecorder, int64, *Result) {
	t.Helper()
	rec := obs.NewTraceRecorder()
	cfg := PracticalConfig()
	cfg.Engine = engine
	cfg.Workers = workers
	cfg.CountStrategy = cs
	cfg.Observer = rec
	r := rng.New(seed)
	s := oracle.NewSampler(d, r)
	res, err := Test(s, r, k, eps, cfg)
	if err != nil {
		t.Fatalf("engine %s workers=%d: %v", engine, workers, err)
	}
	return rec, s.Samples(), res
}

// TestConformanceBudgetConservation: for every engine, under both count
// strategies and at several worker counts, the per-stage samples the
// StageExit events report must sum EXACTLY to the oracle's draw counter
// and to the Trace's total — no unfolded clone draw, no double-counted
// batch, no misplaced stage boundary.
func TestConformanceBudgetConservation(t *testing.T) {
	for _, engine := range conformanceTargets(t) {
		t.Run(engine, func(t *testing.T) {
			for _, cs := range []oracle.CountStrategy{oracle.CountExact, oracle.CountClosedForm} {
				for _, workers := range []int{1, 4} {
					rec, drawn, res := engineRun(t, engine, threeHistogram(512), 3, 0.5, workers, cs, 41)
					runs := rec.Runs()
					if len(runs) != 1 {
						t.Fatalf("cs=%v workers=%d: %d runs recorded", cs, workers, len(runs))
					}
					var sum int64
					for _, v := range rec.StageSamples(runs[0]) {
						sum += v
					}
					if sum != drawn || sum != res.Trace.TotalSamples() {
						t.Fatalf("cs=%v workers=%d: stage sum %d, oracle drew %d, Trace totals %d",
							cs, workers, sum, drawn, res.Trace.TotalSamples())
					}
				}
			}
		})
	}
}

// TestConformanceWorkerDeterminism: Workers is a pure throughput knob
// for every engine — the verdict and the full Trace must be bit-identical
// at every worker count.
func TestConformanceWorkerDeterminism(t *testing.T) {
	for _, engine := range conformanceTargets(t) {
		t.Run(engine, func(t *testing.T) {
			for _, d := range []struct {
				name string
				d    dist.Distribution
				k    int
			}{
				{"accept", threeHistogram(512), 3},
				{"reject", comb(512), 4},
			} {
				var base *Result
				for _, workers := range []int{1, 2, 4, 0} {
					_, _, res := engineRun(t, engine, d.d, d.k, 0.5, workers, oracle.CountExact, 67)
					if base == nil {
						base = res
						continue
					}
					if res.Accept != base.Accept || !reflect.DeepEqual(res.Trace, base.Trace) {
						t.Fatalf("%s: workers=%d diverged:\n  got  %+v\n  want %+v", d.name, workers, res.Trace, base.Trace)
					}
				}
			}
		})
	}
}

// TestConformanceEventGrammar: the event stream of every engine obeys
// the shared grammar — RunStart first (carrying the run parameters),
// RunEnd last (carrying the verdict), every StageEnter matched by a
// StageExit of the same stage, stages in strictly increasing pipeline
// order, timestamps monotone.
func TestConformanceEventGrammar(t *testing.T) {
	for _, engine := range conformanceTargets(t) {
		t.Run(engine, func(t *testing.T) {
			for _, d := range []struct {
				name string
				d    dist.Distribution
				k    int
			}{
				{"accept", threeHistogram(512), 3},
				{"reject", comb(512), 4},
			} {
				rec, _, res := engineRun(t, engine, d.d, d.k, 0.5, 0, oracle.CountExact, 61)
				evs := rec.Events()
				if evs[0].Kind != obs.KindRunStart || evs[0].N != 512 || evs[0].K != d.k || evs[0].Eps != 0.5 {
					t.Fatalf("%s: RunStart = %+v", d.name, evs[0])
				}
				last := evs[len(evs)-1]
				if last.Kind != obs.KindRunEnd || last.Accept != res.Accept {
					t.Fatalf("%s: last event %+v, result accept %v", d.name, last, res.Accept)
				}
				var open, order []obs.Stage
				for _, e := range evs {
					switch e.Kind {
					case obs.KindStageEnter:
						open = append(open, e.Stage)
						order = append(order, e.Stage)
					case obs.KindStageExit:
						if len(open) == 0 || open[len(open)-1] != e.Stage {
							t.Fatalf("%s: StageExit(%v) without matching enter", d.name, e.Stage)
						}
						open = open[:len(open)-1]
					}
				}
				if len(open) != 0 {
					t.Fatalf("%s: unclosed stages %v", d.name, open)
				}
				for i := 1; i < len(order); i++ {
					if order[i] <= order[i-1] {
						t.Fatalf("%s: stages out of pipeline order: %v", d.name, order)
					}
				}
				for i := 1; i < len(evs); i++ {
					if evs[i].Elapsed < evs[i-1].Elapsed {
						t.Fatalf("%s: event %d precedes event %d", d.name, i, i-1)
					}
				}
			}
		})
	}
}

// cancelAtEvent cancels its context when the i-th event (0-based) is
// observed. Events are emitted synchronously from the run goroutine, so
// the cancellation lands at a deterministic pipeline point.
type cancelAtEvent struct {
	cancel context.CancelFunc
	at     int64
	seen   atomic.Int64
}

func (c *cancelAtEvent) Observe(obs.Event) {
	if c.seen.Add(1)-1 == c.at {
		c.cancel()
	}
}

// TestConformanceCancellationAtEveryEvent sweeps the cancellation point
// across the ENTIRE event stream of every engine: first an uncancelled
// run records the stream, then one run per event index cancels exactly
// there. Whatever point the cancellation lands on, the pooled-Counts
// acquire/release balance must hold when TestContext returns, and a run
// that does surface the cancellation must return ctx.Err() with a
// RunEnd event carrying the error. (A cancellation that lands after the
// engine's last context check may legitimately complete instead —
// cancellation is best-effort at checkpoints, not preemption.)
func TestConformanceCancellationAtEveryEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps one run per event index")
	}
	for _, engine := range conformanceTargets(t) {
		t.Run(engine, func(t *testing.T) {
			rec, _, _ := engineRun(t, engine, threeHistogram(512), 3, 0.5, 4, oracle.CountExact, 53)
			events := len(rec.Events())
			surfaced := 0
			for at := 0; at < events; at++ {
				ctx, cancel := context.WithCancel(context.Background())
				cfg := PracticalConfig()
				cfg.Engine = engine
				cfg.Workers = 4
				cfg.Observer = &cancelAtEvent{cancel: cancel, at: int64(at)}
				rec := obs.NewTraceRecorder()
				cfg.Observer = obs.Multi(rec, cfg.Observer)
				r := rng.New(53)
				s := oracle.NewSampler(threeHistogram(512), r)
				before := oracle.PoolStatsSnapshot()
				res, err := TestContext(ctx, s, r, 3, 0.5, cfg)
				after := oracle.PoolStatsSnapshot()
				cancel()
				if acq, rel := after.Acquires-before.Acquires, after.Releases-before.Releases; acq != rel {
					t.Fatalf("cancel@%d: leaked pooled Counts: %d acquired, %d released", at, acq, rel)
				}
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("cancel@%d: err = %v, want context.Canceled", at, err)
					}
					if res != nil {
						t.Fatalf("cancel@%d: cancelled run returned a result", at)
					}
					evs := rec.Events()
					last := evs[len(evs)-1]
					if last.Kind != obs.KindRunEnd || last.Err == "" {
						t.Fatalf("cancel@%d: stream ends with %v (err %q), want RunEnd with error", at, last.Kind, last.Err)
					}
					surfaced++
				}
			}
			if surfaced == 0 {
				t.Fatalf("no cancellation point surfaced ctx.Err() in %d events", events)
			}
		})
	}
}

// TestConformanceOperatingCharacteristics: every engine must accept the
// seeded in-class fixtures and reject the far ones — the floor every
// future engine has to clear before it is selectable.
func TestConformanceOperatingCharacteristics(t *testing.T) {
	for _, engine := range conformanceTargets(t) {
		t.Run(engine, func(t *testing.T) {
			cfg := PracticalConfig()
			cfg.Engine = engine
			if rate := acceptRate(t, dist.Uniform(512), 1, 0.5, cfg, 12, 101); rate < 0.8 {
				t.Fatalf("uniform accept rate %.2f < 0.8", rate)
			}
			if rate := acceptRate(t, threeHistogram(512), 3, 0.5, cfg, 12, 102); rate < 0.8 {
				t.Fatalf("3-histogram accept rate %.2f < 0.8", rate)
			}
			if rate := acceptRate(t, comb(512), 4, 0.45, cfg, 12, 103); rate > 0.2 {
				t.Fatalf("comb accept rate %.2f > 0.2", rate)
			}
		})
	}
}

// TestConformanceBudgetGuard: every engine's nominal budget is enforced
// by the shared driver BEFORE the first draw.
func TestConformanceBudgetGuard(t *testing.T) {
	for _, engine := range conformanceTargets(t) {
		t.Run(engine, func(t *testing.T) {
			cfg := PracticalConfig()
			cfg.Engine = engine
			cfg.MaxSamples = 1
			r := rng.New(7)
			s := oracle.NewSampler(threeHistogram(512), r)
			if _, err := Test(s, r, 3, 0.5, cfg); err == nil || !strings.Contains(err.Error(), "guard") {
				t.Fatalf("err = %v, want the budget-guard error", err)
			}
			if s.Samples() != 0 {
				t.Fatalf("budget-guarded run drew %d samples", s.Samples())
			}
			if ExpectedSamples(512, 3, 0.5, cfg) <= 0 {
				t.Fatal("ExpectedSamples must be positive")
			}
		})
	}
}

// TestConformanceTrivialAccept: k >= n accepts with zero draws on every
// engine (the driver owns this path, but engine selection must not
// bypass it).
func TestConformanceTrivialAccept(t *testing.T) {
	for _, engine := range conformanceTargets(t) {
		t.Run(engine, func(t *testing.T) {
			cfg := PracticalConfig()
			cfg.Engine = engine
			r := rng.New(7)
			s := oracle.NewSampler(dist.Uniform(16), r)
			res, err := Test(s, r, 16, 0.5, cfg)
			if err != nil || !res.Accept {
				t.Fatalf("res=%+v err=%v, want trivial accept", res, err)
			}
			if s.Samples() != 0 {
				t.Fatalf("trivial accept drew %d samples", s.Samples())
			}
		})
	}
}

// TestConformanceCrossEngineAgreement: on clearly-in and clearly-out
// instances the engines must agree verdict-for-verdict at fixed seeds —
// the operational meaning of "two implementations of the same testing
// problem".
func TestConformanceCrossEngineAgreement(t *testing.T) {
	targets := conformanceTargets(t)
	for _, c := range []struct {
		name string
		d    dist.Distribution
		k    int
		eps  float64
		want bool
	}{
		{"uniform-in", dist.Uniform(512), 1, 0.5, true},
		{"three-in", threeHistogram(512), 3, 0.5, true},
		{"three-slack-k", threeHistogram(512), 8, 0.5, true},
		{"comb-out", comb(512), 4, 0.45, false},
	} {
		for _, seed := range []uint64{11, 12, 13} {
			for _, engine := range targets {
				cfg := PracticalConfig()
				cfg.Engine = engine
				r := rng.New(seed)
				s := oracle.NewSampler(c.d, r)
				res, err := Test(s, r, c.k, c.eps, cfg)
				if err != nil {
					t.Fatalf("%s seed=%d engine=%s: %v", c.name, seed, engine, err)
				}
				if res.Accept != c.want {
					t.Fatalf("%s seed=%d engine=%s: accept=%v, want %v", c.name, seed, engine, res.Accept, c.want)
				}
			}
		}
	}
}
