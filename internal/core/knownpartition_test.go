package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestKnownPartitionCompleteness(t *testing.T) {
	r := rng.New(1)
	n := 1024
	part := intervals.FromBoundaries(n, []int{200, 512, 700})
	d, err := dist.FromWeights(part, []float64{0.3, 0.25, 0.25, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	params := PracticalKnownPartition()
	accepts := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := TestKnownPartition(s, r, part, 0.4, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			accepts++
		}
		if res.Samples <= 0 {
			t.Fatal("sample accounting missing")
		}
	}
	if accepts < trials*3/4 {
		t.Fatalf("known-partition completeness: %d/%d", accepts, trials)
	}
}

func TestKnownPartitionMisalignedRejects(t *testing.T) {
	// D is a legal 4-histogram, but NOT with respect to the queried Π:
	// the known-partition problem is stricter than H_4 membership.
	r := rng.New(2)
	n := 1024
	dPart := intervals.FromBoundaries(n, []int{100, 400, 800})
	d, err := dist.FromWeights(dPart, []float64{0.45, 0.05, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	queried := intervals.FromBoundaries(n, []int{256, 512, 768})
	// Distance of D from Hist(queried) = TV(D, flattening over queried).
	if got := dist.TV(d, dist.Flatten(d, queried)); got < 0.2 {
		t.Fatalf("test instance too close to the queried class: %v", got)
	}
	params := PracticalKnownPartition()
	rejects := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := TestKnownPartition(s, r, queried, 0.2, params)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			rejects++
		}
	}
	if rejects < trials*3/4 {
		t.Fatalf("known-partition soundness: %d/%d", rejects, trials)
	}
}

func TestKnownPartitionFarRejects(t *testing.T) {
	r := rng.New(3)
	n := 1024
	part := intervals.EquiWidth(n, 4)
	d := gen.Comb(n) // far from any 4-interval flattening
	params := PracticalKnownPartition()
	rejects := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := TestKnownPartition(s, r, part, 0.4, params)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			rejects++
		}
	}
	if rejects < trials*3/4 {
		t.Fatalf("comb rejects: %d/%d", rejects, trials)
	}
}

func TestKnownPartitionValidation(t *testing.T) {
	r := rng.New(4)
	s := oracle.NewSampler(dist.Uniform(16), r)
	part := intervals.EquiWidth(16, 2)
	if _, err := TestKnownPartition(s, r, part, 0, PracticalKnownPartition()); err == nil {
		t.Fatal("eps = 0 accepted")
	}
	wrong := intervals.EquiWidth(17, 2)
	if _, err := TestKnownPartition(s, r, wrong, 0.3, PracticalKnownPartition()); err == nil {
		t.Fatal("mismatched partition accepted")
	}
}

func TestKnownPartitionCheaperThanUnknown(t *testing.T) {
	// The Section 1.2 remark: the known-partition problem is strictly
	// easier. Nominal budgets reflect it by an order of magnitude.
	n, k, eps := 4096, 4, 0.4
	known := KnownPartitionExpectedSamples(n, k, eps, PracticalKnownPartition())
	unknown := ExpectedSamples(n, k, eps, PracticalConfig())
	if known*5 > unknown {
		t.Fatalf("known-partition budget %d not far below unknown-partition %d", known, unknown)
	}
}
