package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// threeHistogram returns a well-separated 3-histogram over [0, n).
func threeHistogram(n int) *dist.PiecewiseConstant {
	return dist.MustPiecewiseConstant(n, []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: n / 4}, Mass: 0.55},
		{Iv: intervals.Interval{Lo: n / 4, Hi: n / 2}, Mass: 0.10},
		{Iv: intervals.Interval{Lo: n / 2, Hi: n}, Mass: 0.35},
	})
}

// comb returns the alternating comb over [0, n): mass 2/n on even
// elements, 0 on odd. Its distance to H_k is ~(1/2)(1 − k/n) — far from
// every small-k histogram.
func comb(n int) *dist.PiecewiseConstant {
	pieces := make([]dist.Piece, n)
	for i := 0; i < n; i++ {
		m := 0.0
		if i%2 == 0 {
			m = 2.0 / float64(n)
		}
		pieces[i] = dist.Piece{Iv: intervals.Interval{Lo: i, Hi: i + 1}, Mass: m}
	}
	return dist.MustPiecewiseConstant(n, pieces)
}

// acceptRate runs the tester trials times on fresh samplers of d.
func acceptRate(t *testing.T, d dist.Distribution, k int, eps float64, cfg Config, trials int, seed uint64) float64 {
	t.Helper()
	r := rng.New(seed)
	accepts := 0
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r)
		res, err := Test(s, r, k, eps, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if res.Accept {
			accepts++
		}
	}
	return float64(accepts) / float64(trials)
}

func TestCompletenessUniform(t *testing.T) {
	// The uniform distribution is a 1-histogram; test with k = 1.
	rate := acceptRate(t, dist.Uniform(512), 1, 0.5, PracticalConfig(), 15, 1)
	if rate < 0.75 {
		t.Fatalf("uniform accept rate = %v, want >= 0.75", rate)
	}
}

func TestCompletenessThreeHistogram(t *testing.T) {
	rate := acceptRate(t, threeHistogram(512), 3, 0.5, PracticalConfig(), 15, 2)
	if rate < 0.7 {
		t.Fatalf("3-histogram accept rate = %v, want >= 0.7", rate)
	}
}

func TestCompletenessSlackK(t *testing.T) {
	// Testing a 3-histogram with k = 8 must also accept (H_3 ⊆ H_8).
	rate := acceptRate(t, threeHistogram(512), 8, 0.5, PracticalConfig(), 10, 3)
	if rate < 0.7 {
		t.Fatalf("slack-k accept rate = %v, want >= 0.7", rate)
	}
}

func TestSoundnessComb(t *testing.T) {
	// The comb is ~0.5-far from H_4.
	rate := acceptRate(t, comb(512), 4, 0.45, PracticalConfig(), 15, 4)
	if rate > 0.25 {
		t.Fatalf("comb accept rate = %v, want <= 0.25", rate)
	}
}

func TestSoundnessUniformVsManyBins(t *testing.T) {
	// A 64-piece staircase tested against k = 2 with a large gap.
	n := 512
	pieces := make([]dist.Piece, 64)
	total := 0.0
	w := n / 64
	for j := range pieces {
		mass := float64((j % 4) + 1) // strongly non-monotone staircase
		pieces[j] = dist.Piece{Iv: intervals.Interval{Lo: j * w, Hi: (j + 1) * w}, Mass: mass}
		total += mass
	}
	for j := range pieces {
		pieces[j].Mass /= total
	}
	d := dist.MustPiecewiseConstant(n, pieces)
	// Distance to H_2: the best 2-histogram is ~the overall mean; TV ~0.3.
	rate := acceptRate(t, d, 2, 0.25, PracticalConfig(), 15, 5)
	if rate > 0.25 {
		t.Fatalf("staircase accept rate = %v, want <= 0.25", rate)
	}
}

func TestTrivialAcceptKGeqN(t *testing.T) {
	r := rng.New(6)
	s := oracle.NewSampler(comb(32), r)
	res, err := Test(s, r, 32, 0.1, PracticalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Fatal("k >= n must accept")
	}
	if s.Samples() != 0 {
		t.Fatalf("trivial accept drew %d samples", s.Samples())
	}
}

func TestInputValidation(t *testing.T) {
	r := rng.New(7)
	s := oracle.NewSampler(dist.Uniform(16), r)
	if _, err := Test(s, r, 0, 0.5, PracticalConfig()); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := Test(s, r, 1, 0, PracticalConfig()); err == nil {
		t.Fatal("eps = 0 accepted")
	}
	if _, err := Test(s, r, 1, 1.5, PracticalConfig()); err == nil {
		t.Fatal("eps > 1 accepted")
	}
}

func TestTraceAccounting(t *testing.T) {
	r := rng.New(8)
	s := oracle.NewSampler(threeHistogram(256), r)
	res, err := Test(s, r, 3, 0.5, PracticalConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr.TotalSamples() != s.Samples() {
		t.Fatalf("trace total %d != oracle count %d", tr.TotalSamples(), s.Samples())
	}
	if tr.PartitionSamples <= 0 || tr.LearnSamples <= 0 || tr.SieveSamples <= 0 {
		t.Fatalf("stage samples not recorded: %+v", tr)
	}
	if tr.K <= 0 || tr.N != 256 {
		t.Fatalf("trace metadata wrong: %+v", tr)
	}
	if res.Learned == nil || res.Domain == nil {
		t.Fatal("result missing hypothesis or domain")
	}
}

func TestSieveRemovesBreakpointIntervals(t *testing.T) {
	// A 2-histogram with a violent jump: the partition interval containing
	// the jump is a breakpoint interval the sieve should remove (or the
	// tester must still accept by some other path).
	n := 512
	d := dist.MustPiecewiseConstant(n, []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: 300}, Mass: 0.9},
		{Iv: intervals.Interval{Lo: 300, Hi: n}, Mass: 0.1},
	})
	rate := acceptRate(t, d, 2, 0.5, PracticalConfig(), 15, 9)
	if rate < 0.7 {
		t.Fatalf("jumpy 2-histogram accept rate = %v, want >= 0.7", rate)
	}
}

func TestRejectReasonsPopulated(t *testing.T) {
	r := rng.New(10)
	// Run the comb until a rejection appears, then check the trace.
	for i := 0; i < 10; i++ {
		s := oracle.NewSampler(comb(512), r)
		res, err := Test(s, r, 3, 0.45, PracticalConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			if res.Trace.RejectStage == "" || res.Trace.RejectReason == "" {
				t.Fatalf("rejection without stage/reason: %+v", res.Trace)
			}
			return
		}
	}
	t.Fatal("comb never rejected in 10 tries")
}

func TestSieveHeavyRejectionPath(t *testing.T) {
	// A fine comb against k=1: far more than k intervals carry heavy χ²,
	// so the stage-1 sieve should trip often.
	r := rng.New(40)
	n := 512
	d := comb(n)
	heavySeen := false
	for i := 0; i < 10 && !heavySeen; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := Test(s, r, 1, 0.4, PracticalConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			t.Fatal("comb accepted at k=1")
		}
		if res.Trace.RejectStage == StageSieveHeavy {
			heavySeen = true
		}
	}
	if !heavySeen {
		t.Fatal("stage-1 heavy rejection never triggered on the comb")
	}
}

func TestCheckRejectionPath(t *testing.T) {
	// Sprinkled heavy spikes (the E12 instance): ApproxPart isolates every
	// atom, the sieve sees nothing, and the Step-10 check must carry the
	// rejection.
	r := rng.New(41)
	n := 1024
	const ell = 30
	p := make([]float64, n)
	perm := r.Perm(n)
	for i := 0; i < ell; i++ {
		p[perm[i]] = 1.0 / ell
	}
	d := dist.MustDense(p)
	checkSeen := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := Test(s, r, 2, 0.45, PracticalConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			t.Fatal("spikes accepted at k=2")
		}
		if res.Trace.RejectStage == StageCheck {
			checkSeen++
			if res.Trace.CheckRelaxed <= 0.45/PracticalConfig().CheckTolDivisor {
				t.Fatal("check rejection with in-tolerance distance")
			}
		}
	}
	if checkSeen < trials/2 {
		t.Fatalf("check-stage rejection carried only %d/%d runs", checkSeen, trials)
	}
}

func TestScaleConfig(t *testing.T) {
	cfg := PracticalConfig()
	half := cfg.Scale(0.5)
	if math.Abs(half.SieveMFactor-cfg.SieveMFactor/2) > 1e-12 {
		t.Fatal("Scale did not halve the sieve budget")
	}
	if math.Abs(half.Chi.MFactor-cfg.Chi.MFactor/2) > 1e-12 {
		t.Fatal("Scale did not halve the test budget")
	}
	if half.SieveHeavyFactor != cfg.SieveHeavyFactor {
		t.Fatal("Scale must not change thresholds")
	}
	// Scaled-down tester draws fewer samples.
	if ExpectedSamples(1024, 4, 0.5, half) >= ExpectedSamples(1024, 4, 0.5, cfg) {
		t.Fatal("scaled config should predict fewer samples")
	}
}

func TestExpectedSamplesGrowsWithN(t *testing.T) {
	cfg := PracticalConfig()
	a := ExpectedSamples(1<<10, 4, 0.5, cfg)
	b := ExpectedSamples(1<<14, 4, 0.5, cfg)
	if b <= a {
		t.Fatalf("expected samples must grow with n: %d vs %d", a, b)
	}
	// The growth should be ~√16 = 4 on the sieve-dominated part, far less
	// than linear (16×).
	if b >= 12*a {
		t.Fatalf("expected-sample growth looks linear: %d vs %d", a, b)
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := PracticalConfig()
	if cfg.PartB(1, 1) < 1 {
		t.Fatal("PartB floor violated")
	}
	if got := cfg.Alpha(0.48); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("Alpha = %v", got)
	}
	if cfg.SieveRounds(1) < 1 || cfg.SieveRounds(64) < 6 {
		t.Fatal("SieveRounds too small")
	}
	if PaperConfig().sieveReps(8)%2 != 1 {
		t.Fatal("derived reps should be odd")
	}
}
