package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/chisq"
	"repro/internal/dist"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Stage names identify where a rejection (or the final acceptance)
// happened; they appear in Trace.RejectStage.
const (
	StageSieveHeavy  = "sieve-heavy"  // more than k intervals above the heavy cutoff
	StageSieveStuck  = "sieve-stuck"  // residual target unreachable by removals
	StageDiscardMass = "discard-mass" // sieve wanted to discard too much mass
	StageCheck       = "check"        // learned D̂ is far from H_k on G
	StageTest        = "test"         // final χ²-vs-TV test rejected
)

// Trace records what one tester invocation did — stage sample counts,
// sieve activity, and the deciding statistics. The experiment harness
// aggregates these.
type Trace struct {
	N, K           int     // domain size, partition size
	B              float64 // ApproxPart parameter
	SieveRoundsRun int

	PartitionSamples int64
	LearnSamples     int64
	SieveSamples     int64
	TestSamples      int64

	RemovedHeavy    int     // stage-1 removals
	HeavySingletons int     // heavy intervals the sieve could not remove (singletons)
	RemovedRounds   int     // stage-2 removals
	RemovedMass     float64 // D̂-mass of removed intervals

	CheckRelaxed float64 // DP distance of D̂ to H_k on G
	FinalZ       float64 // final test statistic (0 if not reached)
	FinalThresh  float64

	RejectStage  string // empty on accept
	RejectReason string
}

// TotalSamples returns the total sample count across all stages.
func (t *Trace) TotalSamples() int64 {
	return t.PartitionSamples + t.LearnSamples + t.SieveSamples + t.TestSamples
}

// Result is the outcome of one invocation of the tester.
type Result struct {
	Accept bool
	Trace  Trace
	// Learned is the hypothesis D̂ built by the learning stage (nil when
	// the trivial k >= n path accepted).
	Learned *dist.PiecewiseConstant
	// Domain is the sieved sub-domain G the final decision was made on.
	Domain *intervals.Domain
}

// Arena holds the reusable scratch buffers of Test: the per-replicate
// statistic matrix, the median column, the per-interval medians, and the
// sieve's keep mask and removal ordering. A fresh Arena is an empty set of
// buffers; buffers grow to the high-water mark of the invocations run
// through it and are reused across sieve rounds and across Test calls, so
// repeated invocations at a fixed configuration are allocation-free in
// steady state.
//
// An Arena is NOT safe for concurrent use — one goroutine per Arena (the
// parallel sieve inside a single Test call is fine: replicate rows are
// disjoint). Reuse cannot change behavior: every buffer is fully
// re-initialized per use, and no randomness is consumed by scratch
// management, so a shared-arena run yields bit-identical Traces to a
// fresh-allocation run (pinned by TestArenaReuseMatchesFresh).
type Arena struct {
	med    [][]float64 // reps × K replicate statistics (rows into medBuf)
	medBuf []float64
	zs     []float64   // per-interval medians
	col    []float64   // reps-length median scratch column
	keep   []bool      // sieve keep mask
	order  []int       // removal ordering / heavy-index scratch
	reprng []rng.RNG   // per-replicate RNG structs, re-split every round
	jobs   []replicate // per-replicate fork bindings

	// Observability state of the in-flight TestContext call. A nil ob is
	// the zero-overhead fast path: no events, no clock reads, no extra
	// allocations. The fields live on the Arena (not in closures) so
	// attaching an observer adds no captures — and therefore no heap
	// cells — to the hot-path closures. obDense/obSparse tally the
	// current sieve round's counting-path choices; they are written only
	// single-threaded (serial batches tally directly, parallel batches
	// tally into per-worker obTally slots merged after the join), so no
	// atomics sit on the batch path.
	ob                    obs.Observer
	obRun                 uint64
	obStart               time.Time
	obDense, obSparse     int64
	obExact, obClosedForm int64
	obWorkers             int
	obTallies             []obTally // per-worker round tallies (parallel sieve only)
}

// obTally is one worker's private counting-path tally for the current
// sieve round. The four counters occupy 32 bytes; the pad keeps each
// worker's slot on its own 64-byte cache line, so concurrent workers
// tallying every batch never false-share the way four adjacent atomics
// on the Arena did.
type obTally struct {
	dense, sparse, exact, closedForm int64
	_                                [32]byte
}

// batch tallies one replicate batch's counting-path (dense/sparse
// backing) and count-synthesis strategy. Plain increments: the slot is
// owned by exactly one worker until the round's join.
func (t *obTally) batch(counts *oracle.Counts, cs oracle.CountStrategy) {
	if counts.Dense() {
		t.dense++
	} else {
		t.sparse++
	}
	if cs == oracle.CountClosedForm {
		t.closedForm++
	} else {
		t.exact++
	}
}

// replicate pairs a forked oracle with its private RNG stream for one
// sieve batch.
type replicate struct {
	o oracle.Oracle
	r *rng.RNG
}

// NewArena returns an empty Arena ready to thread through Test calls.
func NewArena() *Arena { return &Arena{} }

// grow sizes the scratch for a K-interval partition with reps replicates.
func (a *Arena) grow(K, reps int) {
	if cap(a.zs) < K {
		a.zs = make([]float64, K)
	}
	a.zs = a.zs[:K]
	if cap(a.col) < reps {
		a.col = make([]float64, reps)
	}
	a.col = a.col[:reps]
	if cap(a.keep) < K {
		a.keep = make([]bool, K)
	}
	a.keep = a.keep[:K]
	if cap(a.order) < K {
		a.order = make([]int, 0, K)
	}
	// Rows are carved at a cache-line-multiple stride (64 bytes = 8
	// float64s), not packed back-to-back: packed rows put replicate t's
	// tail and replicate t+1's head on the same cache line, so two
	// workers appending statistics false-share at every row boundary.
	// The padding is pure layout — each row still exposes exactly K
	// elements of capacity, so nothing downstream changes.
	stride := (K + 7) &^ 7
	if cap(a.medBuf) < reps*stride {
		a.medBuf = make([]float64, reps*stride)
	}
	if cap(a.med) < reps {
		a.med = make([][]float64, reps)
	}
	a.med = a.med[:reps]
	if cap(a.reprng) < reps {
		a.reprng = make([]rng.RNG, reps)
	}
	a.reprng = a.reprng[:reps]
	if cap(a.jobs) < reps {
		a.jobs = make([]replicate, reps)
	}
	a.jobs = a.jobs[:reps]
	for t := 0; t < reps; t++ {
		// Zero-length rows with disjoint capacity windows: each replicate
		// appends its K statistics into its own region, so the parallel
		// sieve writes never alias.
		a.med[t] = a.medBuf[t*stride : t*stride : t*stride+K]
	}
}

// emit delivers e to the attached observer, stamping the run ID and the
// monotonic elapsed time. It is a no-op — no event construction survives,
// no clock is read, nothing allocates — when no observer is attached.
func (a *Arena) emit(e obs.Event) {
	if a.ob == nil {
		return
	}
	e.Run = a.obRun
	e.Elapsed = time.Since(a.obStart)
	a.ob.Observe(e)
}

// emitRound reports one sieve decision batch (round 0 is the stage-3a
// heavy pass): removals, realized draw count, worker fan-out, and the
// counting-path / pool deltas accumulated since the given marks.
func (a *Arena) emitRound(o oracle.Oracle, round, removed, reps int, sampMark int64, poolMark oracle.PoolStats) {
	if a.ob == nil {
		return
	}
	ps := oracle.PoolStatsSnapshot()
	a.emit(obs.Event{
		Kind:       obs.KindSieveRound,
		Stage:      obs.StageSieve,
		Round:      round,
		Removed:    removed,
		Samples:    o.Samples() - sampMark,
		Workers:    a.obWorkers,
		Replicates: reps,
		Dense:      int(a.obDense),
		Sparse:     int(a.obSparse),
		Exact:      int(a.obExact),
		ClosedForm: int(a.obClosedForm),
		PoolHits:   ps.Hits - poolMark.Hits,
		PoolMisses: ps.Misses - poolMark.Misses,
	})
}

// obBatch tallies one replicate batch's counting-path (dense/sparse
// backing) and count-synthesis strategy for the current sieve round.
// Only called with an observer attached, and only from single-threaded
// batch loops — parallel workers tally into their private obTally slot
// instead, merged after the round's join.
func (a *Arena) obBatch(counts *oracle.Counts, cs oracle.CountStrategy) {
	if counts.Dense() {
		a.obDense++
	} else {
		a.obSparse++
	}
	if cs == oracle.CountClosedForm {
		a.obClosedForm++
	} else {
		a.obExact++
	}
}

// fail emits the RunEnd failure event (cancellations included) and
// returns err.
func (a *Arena) fail(samples int64, err error) (*Result, error) {
	if a.ob != nil {
		a.emit(obs.Event{Kind: obs.KindRunEnd, Samples: samples, Err: err.Error()})
	}
	return nil, err
}

// Test runs Algorithm 1: decide whether the distribution behind o is a
// k-histogram (accept) or ε-far from every k-histogram (reject), each
// with probability at least 2/3 under the configured constants.
//
// Mapping to the paper's Algorithm 1 (line numbers from the listing):
//
//	Require (parameters k, ε; sample access)  →  the function arguments
//	1  b = 20k·log k/ε, ε0 = 13ε/30           →  cfg.PartB, cfg.TestEpsFactor·ε
//	2-3  Learning: ApproxPart(b) → I           →  learn.ApproxPart (Prop 3.4)
//	4  Learner(K, ε/60, I) → D̂                →  learn.Learn (Lemma 3.5)
//	6-7  Sieving: discard O(k log k) intervals →  stage 3a (heavy cutoff) +
//	     per §3.2.1                               stage 3b (halving rounds) on
//	                                              chisq.ZPerInterval medians
//	9-10 Checking: ∃D* ∈ H_k close to D̂ on G  →  histdp.ProjectTV (the
//	     by dynamic programming                   [CDGR16, Lemma 4.11] DP)
//	12-13 Testing: Tester(n, ε0, D̂) on G       →  chisq.Test (Theorem 3.2)
//	14 accept                                   →  the final return
//
// Each stage draws fresh samples; Trace records the per-stage accounting.
//
// Test allocates its scratch afresh; callers invoking the tester
// repeatedly should reuse an Arena via Arena.Test, which is equivalent
// (bit-identical Trace) but allocation-free in steady state.
func Test(o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	return NewArena().TestContext(context.Background(), o, r, k, eps, cfg)
}

// TestContext is Test honoring ctx: the run aborts with ctx.Err() at
// sieve-round and batch-draw granularity (see Arena.TestContext).
func TestContext(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	return NewArena().TestContext(ctx, o, r, k, eps, cfg)
}

// Test runs Algorithm 1 using a's scratch buffers (see Test for the
// algorithm contract).
func (a *Arena) Test(o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	return a.TestContext(context.Background(), o, r, k, eps, cfg)
}

// TestContext runs Algorithm 1 using a's scratch buffers, honoring ctx
// (see Test for the algorithm contract).
//
// Cancellation contract: the context is checked before every Poissonized
// batch draw (each sieve replicate, the learner's and final test's
// batches) and at every sieve-round boundary, so a cancelled run returns
// ctx.Err() within one sieve round of the cancellation. In-flight
// replicate batches complete and release their pooled count buffers
// before the error returns — a cancelled run retains no pooled Counts
// (asserted by TestCancellationReleasesPooledCounts) — and clone draws
// are folded back into o's counter, so sample accounting stays exact.
// A nil ctx means context.Background().
func (a *Arena) TestContext(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := o.N()
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be positive", k)
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps = %v must be in (0, 1]", eps)
	}
	a.ob = cfg.Observer
	if a.ob != nil {
		a.obRun = obs.NextRunID()
		a.obStart = time.Now()
		a.emit(obs.Event{Kind: obs.KindRunStart, N: n, K: k, Eps: eps})
	}
	if k >= n {
		// Every distribution over [n] is an n-histogram.
		a.emit(obs.Event{Kind: obs.KindRunEnd, Accept: true})
		return &Result{Accept: true, Domain: intervals.FullDomain(n)}, nil
	}
	if est := ExpectedSamples(n, k, eps, cfg); est > cfg.maxSamples() {
		return a.fail(0, fmt.Errorf("core: nominal budget %d samples exceeds the guard %d; lower the constants (Config.Scale) or raise Config.MaxSamples", est, cfg.maxSamples()))
	}
	if err := ctx.Err(); err != nil {
		return a.fail(0, err)
	}

	tr := Trace{N: n}
	mark := o.Samples()
	took := func() int64 {
		d := o.Samples() - mark
		mark = o.Samples()
		return d
	}

	// Stage 1: partition (Proposition 3.4).
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StagePartition})
	b := cfg.PartB(k, eps)
	tr.B = b
	part, err := learn.ApproxPartContext(ctx, o, r, b, cfg.PartSampleC)
	if err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	p := part.Partition
	K := p.Count()
	tr.K = K
	tr.PartitionSamples = took()
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StagePartition, Samples: tr.PartitionSamples})

	// Stage 2: learn (Lemma 3.5).
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageLearn})
	dhat, _, err := learn.LearnContext(ctx, o, r, p, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	if err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	tr.LearnSamples = took()
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageLearn, Samples: tr.LearnSamples})

	// Stage 3: sieve (§3.2.1).
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageSieve})
	alpha := cfg.Alpha(eps)
	mSieve := cfg.SieveMFactor * math.Sqrt(float64(n)) / (alpha * alpha)
	tau := cfg.Chi.TruncFactor * eps / float64(n)
	reps := cfg.sieveReps(k)

	a.grow(K, reps)
	keep := a.keep
	for j := range keep {
		keep[j] = true
	}
	// The sieved sub-domain is a pure function of the keep mask; rebuilding
	// it costs O(K) and an allocation, so it is cached until a removal
	// invalidates it (most sieve rounds remove nothing).
	domainStale := true
	var cachedDomain *intervals.Domain
	domain := func() *intervals.Domain {
		if domainStale {
			cachedDomain = intervals.FromPartitionSubset(p, keep)
			domainStale = false
		}
		return cachedDomain
	}

	// The reps replicates per sieve decision are independent Poissonized
	// batches (the median-amplification trick of §3.2.1), so they fan out
	// across workers when the oracle supports cloning. Replay and
	// Source-backed oracles cannot be cloned (their streams are inherently
	// serial) and keep the exact legacy draw order. Determinism contract:
	// each replicate's randomness is a sequential Split of r taken BEFORE
	// any goroutine launches, so the decision and Trace are bit-identical
	// for every Workers value.
	workers := cfg.workers()
	var forker oracle.Forker
	if f, ok := o.(oracle.Forker); ok && reps > 1 && f.CanFork() {
		forker = f
	}

	// Resolve the count-synthesis strategy once against the parent oracle:
	// forks preserve the CountDrawer capability (a Sampler forks to a
	// Sampler), so the resolution holds for every replicate clone, and the
	// per-batch observability tallies can attribute without re-asserting.
	countStrat := oracle.EffectiveStrategy(o, cfg.CountStrategy)

	// computeZs draws fresh Poissonized samples reps times and returns the
	// per-interval medians (in a.zs, overwritten per call). The replicate
	// statistic rows, the median column, and the Poissonized count buffers
	// (via the oracle pool) are all recycled round over round. The context
	// is checked before every batch draw; batches already in flight finish
	// and release their pooled buffers before the cancellation error
	// surfaces, and clone draws are always folded back into o's counter.
	computeZs := func() ([]float64, error) {
		g := domain()
		med := a.med
		if a.ob != nil {
			a.obDense, a.obSparse = 0, 0
			a.obExact, a.obClosedForm = 0, 0
		}
		a.obWorkers = 1
		if forker != nil {
			jobs := a.jobs
			for t := range jobs {
				// Re-split into the scratch RNG structs: stream-identical to
				// a fresh Split, without the per-round allocations.
				rt := &a.reprng[t]
				r.SplitInto(rt)
				jobs[t] = replicate{o: forker.Fork(rt), r: rt}
			}
			// tally is nil on the serial path (obBatch bumps the Arena
			// fields directly) and a worker-private padded slot on the
			// parallel path.
			run := func(t int, tally *obTally) {
				counts := oracle.DrawCountsWith(jobs[t].o, jobs[t].r, mSieve, countStrat)
				if tally != nil {
					tally.batch(counts, countStrat)
				} else if a.ob != nil {
					a.obBatch(counts, countStrat)
				}
				med[t] = chisq.ZPerIntervalInto(med[t][:0], counts, dhat, p, g, mSieve, tau)
				counts.Release()
			}
			var runErr error
			if w := min(workers, reps); w <= 1 {
				for t := range jobs {
					if runErr = ctx.Err(); runErr != nil {
						break
					}
					run(t, nil)
				}
			} else {
				// Deterministic chunked assignment: worker i owns the
				// contiguous replicate range [i·chunk, (i+1)·chunk). The old
				// shared atomic claim counter cost one contended CAS per
				// replicate and bounced its cache line across every worker;
				// chunking removes the shared word entirely. Claim order was
				// never what made the sieve deterministic — each replicate's
				// RNG stream is split from r sequentially before any
				// goroutine launches — so assignment shape is free to choose
				// for locality: adjacent replicates (adjacent med rows) stay
				// on the same worker.
				//
				// With reps not a multiple of w the trailing chunk(s) are
				// empty (e.g. reps=5, w=4 → chunk=2 covers everything in 3
				// chunks), so nw — the goroutines actually launched — can be
				// smaller than w; it is what the observer round event reports.
				chunk := (reps + w - 1) / w
				nw := (reps + chunk - 1) / chunk
				a.obWorkers = nw
				var tallies []obTally
				if a.ob != nil {
					if cap(a.obTallies) < nw {
						a.obTallies = make([]obTally, nw)
					}
					tallies = a.obTallies[:nw]
					for i := range tallies {
						tallies[i] = obTally{}
					}
				}
				var wg sync.WaitGroup
				for i := 0; i < nw; i++ {
					lo := i * chunk
					hi := min(lo+chunk, reps)
					var tally *obTally
					if tallies != nil {
						tally = &tallies[i]
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for t := lo; t < hi; t++ {
							if ctx.Err() != nil {
								return
							}
							run(t, tally)
						}
					}()
				}
				wg.Wait()
				runErr = ctx.Err()
				for i := range tallies {
					a.obDense += tallies[i].dense
					a.obSparse += tallies[i].sparse
					a.obExact += tallies[i].exact
					a.obClosedForm += tallies[i].closedForm
				}
			}
			// Fold the per-replicate draw counters back into the parent so
			// Trace accounting stays exact — on the cancellation path too.
			var drawn int64
			for t := range jobs {
				drawn += jobs[t].o.Samples()
			}
			forker.Absorb(drawn)
			if runErr != nil {
				return nil, runErr
			}
		} else {
			for t := 0; t < reps; t++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				counts := oracle.DrawCountsWith(o, r, mSieve, countStrat)
				if a.ob != nil {
					a.obBatch(counts, countStrat)
				}
				med[t] = chisq.ZPerIntervalInto(med[t][:0], counts, dhat, p, g, mSieve, tau)
				counts.Release()
			}
		}
		zs := a.zs
		col := a.col
		for j := 0; j < K; j++ {
			for t := 0; t < reps; t++ {
				col[t] = med[t][j]
			}
			zs[j] = stats.MedianInPlace(col)
		}
		return zs, nil
	}

	removable := func(j int) bool { return keep[j] && p.Interval(j).Len() > 1 }
	remove := func(j int) {
		keep[j] = false
		domainStale = true
		tr.RemovedMass += dhat.IntervalMass(p.Interval(j))
	}
	reject := func(stage, reason string) (*Result, error) {
		tr.RejectStage = stage
		tr.RejectReason = reason
		if a.ob != nil {
			a.emit(obs.Event{Kind: obs.KindRunEnd, Samples: tr.TotalSamples(), RejectStage: stage})
		}
		return &Result{Accept: false, Trace: tr, Learned: dhat, Domain: domain()}, nil
	}
	// sieveExit closes the sieve stage's sample accounting and event.
	sieveExit := func() {
		tr.SieveSamples = took()
		a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageSieve, Samples: tr.SieveSamples})
	}

	// Stage 3a: discard the heavy offenders. EVERY interval above the
	// cutoff counts toward the > k rejection budget — a far distribution
	// may concentrate its χ² excess on singleton intervals, which the
	// sieve has no right to remove but must still hold against the
	// k-interval allowance — while only removable (non-singleton)
	// intervals are actually discarded.
	var roundSamp int64
	var roundPool oracle.PoolStats
	if a.ob != nil {
		roundSamp, roundPool = o.Samples(), oracle.PoolStatsSnapshot()
	}
	zs, err := computeZs()
	if err != nil {
		sieveExit()
		return a.fail(tr.TotalSamples(), err)
	}
	heavyThr := cfg.SieveHeavyFactor * mSieve * alpha * alpha
	heavyTotal := 0
	heavyIdx := a.order[:0] // scratch; consumed before the 3b rounds reuse it
	for j := 0; j < K; j++ {
		if !keep[j] || zs[j] <= heavyThr {
			continue
		}
		heavyTotal++
		if removable(j) {
			heavyIdx = append(heavyIdx, j)
		}
	}
	tr.HeavySingletons = heavyTotal - len(heavyIdx)
	if heavyTotal > k {
		a.emitRound(o, 0, 0, reps, roundSamp, roundPool)
		sieveExit()
		return reject(StageSieveHeavy, fmt.Sprintf("%d intervals above the heavy cutoff (%d unremovable singletons), k = %d", heavyTotal, tr.HeavySingletons, k))
	}
	for _, j := range heavyIdx {
		remove(j)
	}
	tr.RemovedHeavy = len(heavyIdx)
	a.emitRound(o, 0, len(heavyIdx), reps, roundSamp, roundPool)
	if tr.RemovedMass > cfg.DiscardMassCap*eps {
		sieveExit()
		return reject(StageDiscardMass, fmt.Sprintf("discarded mass %.4f exceeds cap %.4f", tr.RemovedMass, cfg.DiscardMassCap*eps))
	}

	// Stage 3b: iterative halving rounds.
	acceptThr := cfg.SieveAcceptFactor * mSieve * alpha * alpha
	residualThr := cfg.SieveResidualFactor * mSieve * alpha * alpha
	rounds := cfg.SieveRounds(k)
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			sieveExit()
			return a.fail(tr.TotalSamples(), err)
		}
		tr.SieveRoundsRun = round + 1
		if a.ob != nil {
			roundSamp, roundPool = o.Samples(), oracle.PoolStatsSnapshot()
		}
		zs, err = computeZs()
		if err != nil {
			sieveExit()
			return a.fail(tr.TotalSamples(), err)
		}
		removedBefore := tr.RemovedRounds
		total := 0.0
		for j := 0; j < K; j++ {
			if keep[j] {
				total += zs[j]
			}
		}
		if total < acceptThr {
			a.emitRound(o, round+1, 0, reps, roundSamp, roundPool)
			break
		}
		// Remove the largest Z_j (non-singletons only) until the survivors
		// sum below the residual target.
		order := a.order[:0]
		for j := 0; j < K; j++ {
			if removable(j) {
				order = append(order, j)
			}
		}
		sort.Slice(order, func(a, b int) bool { return zs[order[a]] > zs[order[b]] })
		for _, j := range order {
			if total <= residualThr {
				break
			}
			total -= zs[j]
			remove(j)
			tr.RemovedRounds++
			if tr.RemovedMass > cfg.DiscardMassCap*eps {
				a.emitRound(o, round+1, tr.RemovedRounds-removedBefore, reps, roundSamp, roundPool)
				sieveExit()
				return reject(StageDiscardMass, fmt.Sprintf("discarded mass %.4f exceeds cap %.4f", tr.RemovedMass, cfg.DiscardMassCap*eps))
			}
		}
		a.emitRound(o, round+1, tr.RemovedRounds-removedBefore, reps, roundSamp, roundPool)
		if total > residualThr {
			sieveExit()
			return reject(StageSieveStuck, "residual statistic cannot be brought below target by removals")
		}
	}
	sieveExit()
	g := domain()

	// Stage 4: check that some k-histogram is close to D̂ on G (Step 10 of
	// Algorithm 1, via the DP of histdp).
	if err := ctx.Err(); err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	if !cfg.SkipCheck {
		a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageCheck})
		proj, err := histdp.ProjectTV(dhat, k, g)
		if err != nil {
			return a.fail(tr.TotalSamples(), fmt.Errorf("core: check DP failed: %w", err))
		}
		tr.CheckRelaxed = proj.Relaxed
		a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageCheck})
		tol := eps / cfg.CheckTolDivisor
		if proj.Relaxed > tol {
			return reject(StageCheck, fmt.Sprintf("distance of D̂ to H_k on G is %.5f > tolerance %.5f", proj.Relaxed, tol))
		}
	}

	// Stage 5: final χ²-vs-TV test of D against D̂ on G with fresh samples.
	if err := ctx.Err(); err != nil {
		return a.fail(tr.TotalSamples(), err)
	}
	a.emit(obs.Event{Kind: obs.KindStageEnter, Stage: obs.StageTest})
	res := chisq.TestWith(o, r, dhat, g, cfg.TestEpsFactor*eps, cfg.Chi, countStrat)
	tr.TestSamples = took()
	tr.FinalZ = res.Z
	tr.FinalThresh = res.Threshold
	a.emit(obs.Event{Kind: obs.KindStageExit, Stage: obs.StageTest, Samples: tr.TestSamples})
	if !res.Accept {
		return reject(StageTest, fmt.Sprintf("final statistic %.1f above threshold %.1f", res.Z, res.Threshold))
	}
	if a.ob != nil {
		a.emit(obs.Event{Kind: obs.KindRunEnd, Accept: true, Samples: tr.TotalSamples()})
	}
	return &Result{Accept: true, Trace: tr, Learned: dhat, Domain: g}, nil
}

// ExpectedSamples returns the nominal total sample budget of one Test
// invocation (partition + learn + sieve rounds + final test), matching the
// Theorem 3.1 accounting. Useful for sizing experiments without running
// the tester.
func ExpectedSamples(n, k int, eps float64, cfg Config) int64 {
	b := cfg.PartB(k, eps)
	partM := learn.ApproxPartSamples(b, cfg.PartSampleC)
	// ApproxPart yields K <= ~7b/3 + #heavy + 2 intervals.
	K := int(7*b/3) + 2
	learnM := learn.LearnSamples(K, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	alpha := cfg.Alpha(eps)
	mSieve := cfg.SieveMFactor * math.Sqrt(float64(n)) / (alpha * alpha)
	sieveM := mSieve * float64(cfg.sieveReps(k)) * float64(cfg.SieveRounds(k)+1)
	testM := cfg.Chi.SampleMean(n, cfg.TestEpsFactor*eps)
	return int64(partM) + int64(learnM) + int64(sieveM) + int64(testM)
}
