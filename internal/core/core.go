package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chisq"
	"repro/internal/dist"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Stage names identify where a rejection (or the final acceptance)
// happened; they appear in Trace.RejectStage.
const (
	StageSieveHeavy  = "sieve-heavy"  // more than k intervals above the heavy cutoff
	StageSieveStuck  = "sieve-stuck"  // residual target unreachable by removals
	StageDiscardMass = "discard-mass" // sieve wanted to discard too much mass
	StageCheck       = "check"        // learned D̂ is far from H_k on G
	StageTest        = "test"         // final χ²-vs-TV test rejected
)

// Trace records what one tester invocation did — stage sample counts,
// sieve activity, and the deciding statistics. The experiment harness
// aggregates these.
type Trace struct {
	N, K           int     // domain size, partition size
	B              float64 // ApproxPart parameter
	SieveRoundsRun int

	PartitionSamples int64
	LearnSamples     int64
	SieveSamples     int64
	TestSamples      int64

	RemovedHeavy    int     // stage-1 removals
	HeavySingletons int     // heavy intervals the sieve could not remove (singletons)
	RemovedRounds   int     // stage-2 removals
	RemovedMass     float64 // D̂-mass of removed intervals

	CheckRelaxed float64 // DP distance of D̂ to H_k on G
	FinalZ       float64 // final test statistic (0 if not reached)
	FinalThresh  float64

	RejectStage  string // empty on accept
	RejectReason string
}

// TotalSamples returns the total sample count across all stages.
func (t *Trace) TotalSamples() int64 {
	return t.PartitionSamples + t.LearnSamples + t.SieveSamples + t.TestSamples
}

// Result is the outcome of one invocation of the tester.
type Result struct {
	Accept bool
	Trace  Trace
	// Learned is the hypothesis D̂ built by the learning stage (nil when
	// the trivial k >= n path accepted).
	Learned *dist.PiecewiseConstant
	// Domain is the sieved sub-domain G the final decision was made on.
	Domain *intervals.Domain
}

// Arena holds the reusable scratch buffers of Test: the per-replicate
// statistic matrix, the median column, the per-interval medians, and the
// sieve's keep mask and removal ordering. A fresh Arena is an empty set of
// buffers; buffers grow to the high-water mark of the invocations run
// through it and are reused across sieve rounds and across Test calls, so
// repeated invocations at a fixed configuration are allocation-free in
// steady state.
//
// An Arena is NOT safe for concurrent use — one goroutine per Arena (the
// parallel sieve inside a single Test call is fine: replicate rows are
// disjoint). Reuse cannot change behavior: every buffer is fully
// re-initialized per use, and no randomness is consumed by scratch
// management, so a shared-arena run yields bit-identical Traces to a
// fresh-allocation run (pinned by TestArenaReuseMatchesFresh).
type Arena struct {
	med    [][]float64 // reps × K replicate statistics (rows into medBuf)
	medBuf []float64
	zs     []float64   // per-interval medians
	col    []float64   // reps-length median scratch column
	keep   []bool      // sieve keep mask
	order  []int       // removal ordering / heavy-index scratch
	reprng []rng.RNG   // per-replicate RNG structs, re-split every round
	jobs   []replicate // per-replicate fork bindings
}

// replicate pairs a forked oracle with its private RNG stream for one
// sieve batch.
type replicate struct {
	o oracle.Oracle
	r *rng.RNG
}

// NewArena returns an empty Arena ready to thread through Test calls.
func NewArena() *Arena { return &Arena{} }

// grow sizes the scratch for a K-interval partition with reps replicates.
func (a *Arena) grow(K, reps int) {
	if cap(a.zs) < K {
		a.zs = make([]float64, K)
	}
	a.zs = a.zs[:K]
	if cap(a.col) < reps {
		a.col = make([]float64, reps)
	}
	a.col = a.col[:reps]
	if cap(a.keep) < K {
		a.keep = make([]bool, K)
	}
	a.keep = a.keep[:K]
	if cap(a.order) < K {
		a.order = make([]int, 0, K)
	}
	if cap(a.medBuf) < reps*K {
		a.medBuf = make([]float64, reps*K)
	}
	if cap(a.med) < reps {
		a.med = make([][]float64, reps)
	}
	a.med = a.med[:reps]
	if cap(a.reprng) < reps {
		a.reprng = make([]rng.RNG, reps)
	}
	a.reprng = a.reprng[:reps]
	if cap(a.jobs) < reps {
		a.jobs = make([]replicate, reps)
	}
	a.jobs = a.jobs[:reps]
	for t := 0; t < reps; t++ {
		// Zero-length rows with disjoint capacity windows: each replicate
		// appends its K statistics into its own region, so the parallel
		// sieve writes never alias.
		a.med[t] = a.medBuf[t*K : t*K : (t+1)*K]
	}
}

// Test runs Algorithm 1: decide whether the distribution behind o is a
// k-histogram (accept) or ε-far from every k-histogram (reject), each
// with probability at least 2/3 under the configured constants.
//
// Mapping to the paper's Algorithm 1 (line numbers from the listing):
//
//	Require (parameters k, ε; sample access)  →  the function arguments
//	1  b = 20k·log k/ε, ε0 = 13ε/30           →  cfg.PartB, cfg.TestEpsFactor·ε
//	2-3  Learning: ApproxPart(b) → I           →  learn.ApproxPart (Prop 3.4)
//	4  Learner(K, ε/60, I) → D̂                →  learn.Learn (Lemma 3.5)
//	6-7  Sieving: discard O(k log k) intervals →  stage 3a (heavy cutoff) +
//	     per §3.2.1                               stage 3b (halving rounds) on
//	                                              chisq.ZPerInterval medians
//	9-10 Checking: ∃D* ∈ H_k close to D̂ on G  →  histdp.ProjectTV (the
//	     by dynamic programming                   [CDGR16, Lemma 4.11] DP)
//	12-13 Testing: Tester(n, ε0, D̂) on G       →  chisq.Test (Theorem 3.2)
//	14 accept                                   →  the final return
//
// Each stage draws fresh samples; Trace records the per-stage accounting.
//
// Test allocates its scratch afresh; callers invoking the tester
// repeatedly should reuse an Arena via Arena.Test, which is equivalent
// (bit-identical Trace) but allocation-free in steady state.
func Test(o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	return NewArena().Test(o, r, k, eps, cfg)
}

// Test runs Algorithm 1 using a's scratch buffers (see Test for the
// algorithm contract).
func (a *Arena) Test(o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	n := o.N()
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be positive", k)
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps = %v must be in (0, 1]", eps)
	}
	if k >= n {
		// Every distribution over [n] is an n-histogram.
		return &Result{Accept: true, Domain: intervals.FullDomain(n)}, nil
	}
	if est := ExpectedSamples(n, k, eps, cfg); est > cfg.maxSamples() {
		return nil, fmt.Errorf("core: nominal budget %d samples exceeds the guard %d; lower the constants (Config.Scale) or raise Config.MaxSamples", est, cfg.maxSamples())
	}

	tr := Trace{N: n}
	mark := o.Samples()
	took := func() int64 {
		d := o.Samples() - mark
		mark = o.Samples()
		return d
	}

	// Stage 1: partition (Proposition 3.4).
	b := cfg.PartB(k, eps)
	tr.B = b
	part, err := learn.ApproxPart(o, r, b, cfg.PartSampleC)
	if err != nil {
		return nil, err
	}
	p := part.Partition
	K := p.Count()
	tr.K = K
	tr.PartitionSamples = took()

	// Stage 2: learn (Lemma 3.5).
	dhat, _ := learn.Learn(o, r, p, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	tr.LearnSamples = took()

	// Stage 3: sieve (§3.2.1).
	alpha := cfg.Alpha(eps)
	mSieve := cfg.SieveMFactor * math.Sqrt(float64(n)) / (alpha * alpha)
	tau := cfg.Chi.TruncFactor * eps / float64(n)
	reps := cfg.sieveReps(k)

	a.grow(K, reps)
	keep := a.keep
	for j := range keep {
		keep[j] = true
	}
	// The sieved sub-domain is a pure function of the keep mask; rebuilding
	// it costs O(K) and an allocation, so it is cached until a removal
	// invalidates it (most sieve rounds remove nothing).
	domainStale := true
	var cachedDomain *intervals.Domain
	domain := func() *intervals.Domain {
		if domainStale {
			cachedDomain = intervals.FromPartitionSubset(p, keep)
			domainStale = false
		}
		return cachedDomain
	}

	// The reps replicates per sieve decision are independent Poissonized
	// batches (the median-amplification trick of §3.2.1), so they fan out
	// across workers when the oracle supports cloning. Replay and
	// Source-backed oracles cannot be cloned (their streams are inherently
	// serial) and keep the exact legacy draw order. Determinism contract:
	// each replicate's randomness is a sequential Split of r taken BEFORE
	// any goroutine launches, so the decision and Trace are bit-identical
	// for every Workers value.
	workers := cfg.workers()
	var forker oracle.Forker
	if f, ok := o.(oracle.Forker); ok && reps > 1 && f.Fork(rng.New(0)) != nil {
		forker = f
	}

	// computeZs draws fresh Poissonized samples reps times and returns the
	// per-interval medians (in a.zs, overwritten per call). The replicate
	// statistic rows, the median column, and the Poissonized count buffers
	// (via the oracle pool) are all recycled round over round.
	computeZs := func() []float64 {
		g := domain()
		med := a.med
		if forker != nil {
			jobs := a.jobs
			for t := range jobs {
				// Re-split into the scratch RNG structs: stream-identical to
				// a fresh Split, without the per-round allocations.
				rt := &a.reprng[t]
				r.SplitInto(rt)
				jobs[t] = replicate{o: forker.Fork(rt), r: rt}
			}
			run := func(t int) {
				counts := oracle.DrawCounts(jobs[t].o, jobs[t].r, mSieve)
				med[t] = chisq.ZPerIntervalInto(med[t][:0], counts, dhat, p, g, mSieve, tau)
				counts.Release()
			}
			if w := min(workers, reps); w <= 1 {
				for t := range jobs {
					run(t)
				}
			} else {
				var wg sync.WaitGroup
				next := int64(-1)
				for i := 0; i < w; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							t := int(atomic.AddInt64(&next, 1))
							if t >= reps {
								return
							}
							run(t)
						}
					}()
				}
				wg.Wait()
			}
			// Fold the per-replicate draw counters back into the parent so
			// Trace accounting stays exact.
			var drawn int64
			for t := range jobs {
				drawn += jobs[t].o.Samples()
			}
			forker.Absorb(drawn)
		} else {
			for t := 0; t < reps; t++ {
				counts := oracle.DrawCounts(o, r, mSieve)
				med[t] = chisq.ZPerIntervalInto(med[t][:0], counts, dhat, p, g, mSieve, tau)
				counts.Release()
			}
		}
		zs := a.zs
		col := a.col
		for j := 0; j < K; j++ {
			for t := 0; t < reps; t++ {
				col[t] = med[t][j]
			}
			zs[j] = stats.MedianInPlace(col)
		}
		return zs
	}

	removable := func(j int) bool { return keep[j] && p.Interval(j).Len() > 1 }
	remove := func(j int) {
		keep[j] = false
		domainStale = true
		tr.RemovedMass += dhat.IntervalMass(p.Interval(j))
	}
	reject := func(stage, reason string) (*Result, error) {
		tr.RejectStage = stage
		tr.RejectReason = reason
		return &Result{Accept: false, Trace: tr, Learned: dhat, Domain: domain()}, nil
	}

	// Stage 3a: discard the heavy offenders. EVERY interval above the
	// cutoff counts toward the > k rejection budget — a far distribution
	// may concentrate its χ² excess on singleton intervals, which the
	// sieve has no right to remove but must still hold against the
	// k-interval allowance — while only removable (non-singleton)
	// intervals are actually discarded.
	zs := computeZs()
	heavyThr := cfg.SieveHeavyFactor * mSieve * alpha * alpha
	heavyTotal := 0
	heavyIdx := a.order[:0] // scratch; consumed before the 3b rounds reuse it
	for j := 0; j < K; j++ {
		if !keep[j] || zs[j] <= heavyThr {
			continue
		}
		heavyTotal++
		if removable(j) {
			heavyIdx = append(heavyIdx, j)
		}
	}
	tr.HeavySingletons = heavyTotal - len(heavyIdx)
	if heavyTotal > k {
		tr.SieveSamples = took()
		return reject(StageSieveHeavy, fmt.Sprintf("%d intervals above the heavy cutoff (%d unremovable singletons), k = %d", heavyTotal, tr.HeavySingletons, k))
	}
	for _, j := range heavyIdx {
		remove(j)
	}
	tr.RemovedHeavy = len(heavyIdx)
	if tr.RemovedMass > cfg.DiscardMassCap*eps {
		tr.SieveSamples = took()
		return reject(StageDiscardMass, fmt.Sprintf("discarded mass %.4f exceeds cap %.4f", tr.RemovedMass, cfg.DiscardMassCap*eps))
	}

	// Stage 3b: iterative halving rounds.
	acceptThr := cfg.SieveAcceptFactor * mSieve * alpha * alpha
	residualThr := cfg.SieveResidualFactor * mSieve * alpha * alpha
	rounds := cfg.SieveRounds(k)
	for round := 0; round < rounds; round++ {
		tr.SieveRoundsRun = round + 1
		zs = computeZs()
		total := 0.0
		for j := 0; j < K; j++ {
			if keep[j] {
				total += zs[j]
			}
		}
		if total < acceptThr {
			break
		}
		// Remove the largest Z_j (non-singletons only) until the survivors
		// sum below the residual target.
		order := a.order[:0]
		for j := 0; j < K; j++ {
			if removable(j) {
				order = append(order, j)
			}
		}
		sort.Slice(order, func(a, b int) bool { return zs[order[a]] > zs[order[b]] })
		for _, j := range order {
			if total <= residualThr {
				break
			}
			total -= zs[j]
			remove(j)
			tr.RemovedRounds++
			if tr.RemovedMass > cfg.DiscardMassCap*eps {
				tr.SieveSamples = took()
				return reject(StageDiscardMass, fmt.Sprintf("discarded mass %.4f exceeds cap %.4f", tr.RemovedMass, cfg.DiscardMassCap*eps))
			}
		}
		if total > residualThr {
			tr.SieveSamples = took()
			return reject(StageSieveStuck, "residual statistic cannot be brought below target by removals")
		}
	}
	tr.SieveSamples = took()
	g := domain()

	// Stage 4: check that some k-histogram is close to D̂ on G (Step 10 of
	// Algorithm 1, via the DP of histdp).
	if !cfg.SkipCheck {
		proj, err := histdp.ProjectTV(dhat, k, g)
		if err != nil {
			return nil, fmt.Errorf("core: check DP failed: %w", err)
		}
		tr.CheckRelaxed = proj.Relaxed
		tol := eps / cfg.CheckTolDivisor
		if proj.Relaxed > tol {
			return reject(StageCheck, fmt.Sprintf("distance of D̂ to H_k on G is %.5f > tolerance %.5f", proj.Relaxed, tol))
		}
	}

	// Stage 5: final χ²-vs-TV test of D against D̂ on G with fresh samples.
	res := chisq.Test(o, r, dhat, g, cfg.TestEpsFactor*eps, cfg.Chi)
	tr.TestSamples = took()
	tr.FinalZ = res.Z
	tr.FinalThresh = res.Threshold
	if !res.Accept {
		return reject(StageTest, fmt.Sprintf("final statistic %.1f above threshold %.1f", res.Z, res.Threshold))
	}
	return &Result{Accept: true, Trace: tr, Learned: dhat, Domain: g}, nil
}

// ExpectedSamples returns the nominal total sample budget of one Test
// invocation (partition + learn + sieve rounds + final test), matching the
// Theorem 3.1 accounting. Useful for sizing experiments without running
// the tester.
func ExpectedSamples(n, k int, eps float64, cfg Config) int64 {
	b := cfg.PartB(k, eps)
	partM := learn.ApproxPartSamples(b, cfg.PartSampleC)
	// ApproxPart yields K <= ~7b/3 + #heavy + 2 intervals.
	K := int(7*b/3) + 2
	learnM := learn.LearnSamples(K, eps/cfg.LearnEpsDivisor, cfg.LearnSampleC)
	alpha := cfg.Alpha(eps)
	mSieve := cfg.SieveMFactor * math.Sqrt(float64(n)) / (alpha * alpha)
	sieveM := mSieve * float64(cfg.sieveReps(k)) * float64(cfg.SieveRounds(k)+1)
	testM := cfg.Chi.SampleMean(n, cfg.TestEpsFactor*eps)
	return int64(partM) + int64(learnM) + int64(sieveM) + int64(testM)
}
