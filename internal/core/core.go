package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Stage names identify where a rejection (or the final acceptance)
// happened; they appear in Trace.RejectStage.
const (
	StageSieveHeavy  = "sieve-heavy"  // more than k intervals above the heavy cutoff
	StageSieveStuck  = "sieve-stuck"  // residual target unreachable by removals
	StageDiscardMass = "discard-mass" // sieve wanted to discard too much mass
	StageCheck       = "check"        // learned D̂ is far from H_k on G
	StageTest        = "test"         // final χ²-vs-TV test rejected
)

// Trace records what one tester invocation did — stage sample counts,
// sieve activity, and the deciding statistics. The experiment harness
// aggregates these.
type Trace struct {
	N, K           int     // domain size, partition size
	B              float64 // ApproxPart parameter
	SieveRoundsRun int

	PartitionSamples int64
	LearnSamples     int64
	SieveSamples     int64
	TestSamples      int64

	RemovedHeavy    int     // stage-1 removals
	HeavySingletons int     // heavy intervals the sieve could not remove (singletons)
	RemovedRounds   int     // stage-2 removals
	RemovedMass     float64 // D̂-mass of removed intervals

	CheckRelaxed float64 // DP distance of D̂ to H_k on G
	FinalZ       float64 // final test statistic (0 if not reached)
	FinalThresh  float64

	RejectStage  string // empty on accept
	RejectReason string
}

// TotalSamples returns the total sample count across all stages.
func (t *Trace) TotalSamples() int64 {
	return t.PartitionSamples + t.LearnSamples + t.SieveSamples + t.TestSamples
}

// Result is the outcome of one invocation of the tester.
type Result struct {
	Accept bool
	Trace  Trace
	// Learned is the hypothesis D̂ built by the learning stage (nil when
	// the trivial k >= n path accepted).
	Learned *dist.PiecewiseConstant
	// Domain is the sieved sub-domain G the final decision was made on.
	Domain *intervals.Domain
}

// Arena holds the reusable scratch buffers of Test: the per-replicate
// statistic matrix, the median column, the per-interval medians, and the
// sieve's keep mask and removal ordering. A fresh Arena is an empty set of
// buffers; buffers grow to the high-water mark of the invocations run
// through it and are reused across sieve rounds and across Test calls, so
// repeated invocations at a fixed configuration are allocation-free in
// steady state.
//
// An Arena is NOT safe for concurrent use — one goroutine per Arena (the
// parallel sieve inside a single Test call is fine: replicate rows are
// disjoint). Reuse cannot change behavior: every buffer is fully
// re-initialized per use, and no randomness is consumed by scratch
// management, so a shared-arena run yields bit-identical Traces to a
// fresh-allocation run (pinned by TestArenaReuseMatchesFresh).
type Arena struct {
	med    [][]float64 // reps × K replicate statistics (rows into medBuf)
	medBuf []float64
	zs     []float64   // per-interval medians
	col    []float64   // reps-length median scratch column
	keep   []bool      // sieve keep mask
	order  []int       // removal ordering / heavy-index scratch
	reprng []rng.RNG   // per-replicate RNG structs, re-split every round
	jobs   []replicate // per-replicate fork bindings

	// Observability state of the in-flight TestContext call. A nil ob is
	// the zero-overhead fast path: no events, no clock reads, no extra
	// allocations. The fields live on the Arena (not in closures) so
	// attaching an observer adds no captures — and therefore no heap
	// cells — to the hot-path closures. obDense/obSparse tally the
	// current sieve round's counting-path choices; they are written only
	// single-threaded (serial batches tally directly, parallel batches
	// tally into per-worker obTally slots merged after the join), so no
	// atomics sit on the batch path.
	ob                    obs.Observer
	obRun                 uint64
	obStart               time.Time
	obDense, obSparse     int64
	obExact, obClosedForm int64
	obWorkers             int
	obTallies             []obTally // per-worker round tallies (parallel sieve only)
}

// obTally is one worker's private counting-path tally for the current
// sieve round. The four counters occupy 32 bytes; the pad keeps each
// worker's slot on its own 64-byte cache line, so concurrent workers
// tallying every batch never false-share the way four adjacent atomics
// on the Arena did.
type obTally struct {
	dense, sparse, exact, closedForm int64
	_                                [32]byte
}

// batch tallies one replicate batch's counting-path (dense/sparse
// backing) and count-synthesis strategy. Plain increments: the slot is
// owned by exactly one worker until the round's join.
func (t *obTally) batch(counts *oracle.Counts, cs oracle.CountStrategy) {
	if counts.Dense() {
		t.dense++
	} else {
		t.sparse++
	}
	if cs == oracle.CountClosedForm {
		t.closedForm++
	} else {
		t.exact++
	}
}

// replicate pairs a forked oracle with its private RNG stream for one
// sieve batch.
type replicate struct {
	o oracle.Oracle
	r *rng.RNG
}

// NewArena returns an empty Arena ready to thread through Test calls.
func NewArena() *Arena { return &Arena{} }

// grow sizes the scratch for a K-interval partition with reps replicates.
func (a *Arena) grow(K, reps int) {
	if cap(a.zs) < K {
		a.zs = make([]float64, K)
	}
	a.zs = a.zs[:K]
	if cap(a.col) < reps {
		a.col = make([]float64, reps)
	}
	a.col = a.col[:reps]
	if cap(a.keep) < K {
		a.keep = make([]bool, K)
	}
	a.keep = a.keep[:K]
	if cap(a.order) < K {
		a.order = make([]int, 0, K)
	}
	// Rows are carved at a cache-line-multiple stride (64 bytes = 8
	// float64s), not packed back-to-back: packed rows put replicate t's
	// tail and replicate t+1's head on the same cache line, so two
	// workers appending statistics false-share at every row boundary.
	// The padding is pure layout — each row still exposes exactly K
	// elements of capacity, so nothing downstream changes.
	stride := (K + 7) &^ 7
	if cap(a.medBuf) < reps*stride {
		a.medBuf = make([]float64, reps*stride)
	}
	if cap(a.med) < reps {
		a.med = make([][]float64, reps)
	}
	a.med = a.med[:reps]
	if cap(a.reprng) < reps {
		a.reprng = make([]rng.RNG, reps)
	}
	a.reprng = a.reprng[:reps]
	if cap(a.jobs) < reps {
		a.jobs = make([]replicate, reps)
	}
	a.jobs = a.jobs[:reps]
	for t := 0; t < reps; t++ {
		// Zero-length rows with disjoint capacity windows: each replicate
		// appends its K statistics into its own region, so the parallel
		// sieve writes never alias.
		a.med[t] = a.medBuf[t*stride : t*stride : t*stride+K]
	}
}

// emit delivers e to the attached observer, stamping the run ID and the
// monotonic elapsed time. It is a no-op — no event construction survives,
// no clock is read, nothing allocates — when no observer is attached.
func (a *Arena) emit(e obs.Event) {
	if a.ob == nil {
		return
	}
	e.Run = a.obRun
	e.Elapsed = time.Since(a.obStart)
	a.ob.Observe(e)
}

// emitRound reports one sieve decision batch (round 0 is the stage-3a
// heavy pass): removals, realized draw count, worker fan-out, and the
// counting-path / pool deltas accumulated since the given marks.
func (a *Arena) emitRound(o oracle.Oracle, round, removed, reps int, sampMark int64, poolMark oracle.PoolStats) {
	if a.ob == nil {
		return
	}
	ps := oracle.PoolStatsSnapshot()
	a.emit(obs.Event{
		Kind:       obs.KindSieveRound,
		Stage:      obs.StageSieve,
		Round:      round,
		Removed:    removed,
		Samples:    o.Samples() - sampMark,
		Workers:    a.obWorkers,
		Replicates: reps,
		Dense:      int(a.obDense),
		Sparse:     int(a.obSparse),
		Exact:      int(a.obExact),
		ClosedForm: int(a.obClosedForm),
		PoolHits:   ps.Hits - poolMark.Hits,
		PoolMisses: ps.Misses - poolMark.Misses,
	})
}

// obBatch tallies one replicate batch's counting-path (dense/sparse
// backing) and count-synthesis strategy for the current sieve round.
// Only called with an observer attached, and only from single-threaded
// batch loops — parallel workers tally into their private obTally slot
// instead, merged after the round's join.
func (a *Arena) obBatch(counts *oracle.Counts, cs oracle.CountStrategy) {
	if counts.Dense() {
		a.obDense++
	} else {
		a.obSparse++
	}
	if cs == oracle.CountClosedForm {
		a.obClosedForm++
	} else {
		a.obExact++
	}
}

// fail emits the RunEnd failure event (cancellations included) and
// returns err.
func (a *Arena) fail(samples int64, err error) (*Result, error) {
	if a.ob != nil {
		a.emit(obs.Event{Kind: obs.KindRunEnd, Samples: samples, Err: err.Error()})
	}
	return nil, err
}

// Test runs the engine selected by cfg.Engine (Algorithm 1 of the
// source paper by default): decide whether the distribution behind o is
// a k-histogram (accept) or ε-far from every k-histogram (reject), each
// with probability at least 2/3 under the configured constants.
//
// Each engine's stages draw fresh samples; Trace records the per-stage
// accounting. See engine_adk.go for the default pipeline's mapping to
// the paper's listing and engine_cdkl.go for the CDKL'22 tester.
//
// Test allocates its scratch afresh; callers invoking the tester
// repeatedly should reuse an Arena via Arena.Test, which is equivalent
// (bit-identical Trace) but allocation-free in steady state.
func Test(o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	return NewArena().TestContext(context.Background(), o, r, k, eps, cfg)
}

// TestContext is Test honoring ctx: the run aborts with ctx.Err() at
// sieve-round and batch-draw granularity (see Arena.TestContext).
func TestContext(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	return NewArena().TestContext(ctx, o, r, k, eps, cfg)
}

// Test runs the selected engine using a's scratch buffers (see Test for
// the algorithm contract).
func (a *Arena) Test(o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	return a.TestContext(context.Background(), o, r, k, eps, cfg)
}

// TestContext runs the selected engine using a's scratch buffers,
// honoring ctx (see Test for the algorithm contract).
//
// TestContext is the shared driver of the Engine contract: it resolves
// cfg.Engine, validates the inputs, attaches the observer and emits
// RunStart, resolves the trivial k >= n accept, guards the engine's
// nominal budget against cfg.MaxSamples, and then hands off to the
// engine's pipeline. Everything an engine does beyond its statistic —
// budget conservation, pooled-buffer release, worker-count determinism,
// event grammar — is specified by the Engine contract and asserted for
// every registered engine by the conformance suite.
//
// Cancellation contract: the context is checked before every Poissonized
// batch draw and at every round boundary, so a cancelled run returns
// ctx.Err() within one decision round of the cancellation. In-flight
// replicate batches complete and release their pooled count buffers
// before the error returns — a cancelled run retains no pooled Counts
// (asserted by TestCancellationReleasesPooledCounts) — and clone draws
// are folded back into o's counter, so sample accounting stays exact.
// A nil ctx means context.Background().
func (a *Arena) TestContext(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eng, err := EngineFor(cfg.Engine)
	if err != nil {
		return nil, err
	}
	n := o.N()
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be positive", k)
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps = %v must be in (0, 1]", eps)
	}
	a.ob = cfg.Observer
	if a.ob != nil {
		a.obRun = obs.NextRunID()
		a.obStart = time.Now()
		a.emit(obs.Event{Kind: obs.KindRunStart, N: n, K: k, Eps: eps})
	}
	if k >= n {
		// Every distribution over [n] is an n-histogram.
		a.emit(obs.Event{Kind: obs.KindRunEnd, Accept: true})
		return &Result{Accept: true, Domain: intervals.FullDomain(n)}, nil
	}
	if est := eng.ExpectedSamples(n, k, eps, cfg); est > cfg.maxSamples() {
		return a.fail(0, fmt.Errorf("core: nominal budget %d samples exceeds the guard %d; lower the constants (Config.Scale) or raise Config.MaxSamples", est, cfg.maxSamples()))
	}
	if err := ctx.Err(); err != nil {
		return a.fail(0, err)
	}
	return eng.run(ctx, a, o, r, k, eps, cfg)
}

// ExpectedSamples returns the nominal total sample budget of one Test
// invocation under cfg's selected engine (the default ADK engine:
// partition + learn + sieve rounds + final test, matching the Theorem
// 3.1 accounting). Useful for sizing experiments without running the
// tester. An unresolvable cfg.Engine falls back to the default engine's
// accounting — the run itself will surface the error.
func ExpectedSamples(n, k int, eps float64, cfg Config) int64 {
	eng, err := EngineFor(cfg.Engine)
	if err != nil {
		eng = engines[DefaultEngine]
	}
	return eng.ExpectedSamples(n, k, eps, cfg)
}
