package oracle

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// poolTestSampler returns a sampler over a mildly skewed dense
// distribution of the given domain size.
func poolTestSampler(n int, seed uint64) *Sampler {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i%7 + 1)
	}
	return NewSampler(dist.MustDense(w), rng.New(seed))
}

func TestCountsDoubleReleasePanics(t *testing.T) {
	// The ownership contract pins double-Release to a panic (not a silent
	// no-op): putting the same buffer in the pool twice would hand two
	// future acquirers aliased memory, so the second Release must fail
	// loudly at the bug site.
	cases := []struct {
		name string
		n, m int
	}{
		{"dense", 1 << 10, 1 << 10}, // m >= n/64 → dense backing
		{"sparse", 1 << 12, 16},     // m < n/64 → sparse backing
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DrawNCounts(poolTestSampler(tc.n, 1), tc.m)
			if (tc.name == "dense") != (c.dense != nil) {
				t.Fatalf("backing mismatch: dense=%v for case %s", c.dense != nil, tc.name)
			}
			c.Release()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("second Release did not panic")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "released twice") {
					t.Fatalf("unexpected panic value: %v", r)
				}
			}()
			c.Release()
		})
	}
}

func TestPooledCountsReuseIsClean(t *testing.T) {
	// A buffer recycled through the pool must behave exactly like a fresh
	// one: no counts may leak from the previous tenant. Cycle a dense and
	// a sparse buffer several times and compare every tally against an
	// unpooled NewCounts of the same draw stream.
	for _, tc := range []struct {
		name string
		n, m int
	}{
		{"dense", 512, 200},
		{"sparse", 1 << 14, 200}, // 200 < n/64 → sparse backing
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m
			for round := 0; round < 5; round++ {
				seed := uint64(10 + round)
				pooled := DrawNCounts(poolTestSampler(tc.n, seed), m)
				fresh := NewCounts(tc.n, DrawN(poolTestSampler(tc.n, seed), m))
				if pooled.Total() != fresh.Total() || pooled.Distinct() != fresh.Distinct() {
					t.Fatalf("round %d: totals (%d,%d) != fresh (%d,%d)",
						round, pooled.Total(), pooled.Distinct(), fresh.Total(), fresh.Distinct())
				}
				type kv struct{ i, n int }
				var a, b []kv
				pooled.ForEach(func(i, n int) { a = append(a, kv{i, n}) })
				fresh.ForEach(func(i, n int) { b = append(b, kv{i, n}) })
				if len(a) != len(b) {
					t.Fatalf("round %d: %d entries vs %d", round, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("round %d entry %d: %v != %v", round, j, a[j], b[j])
					}
				}
				pooled.Release()
			}
		})
	}
}

func TestDrawNCountsMatchesUnpooledDraws(t *testing.T) {
	// DrawNCounts must consume the oracle's draw stream exactly like the
	// slice-materializing path, so swapping one for the other anywhere in
	// the pipeline cannot shift downstream randomness.
	const n, m = 4096, 1000
	a := poolTestSampler(n, 42)
	b := poolTestSampler(n, 42)
	pooled := DrawNCounts(a, m)
	defer pooled.Release()
	_ = NewCounts(n, DrawN(b, m))
	if a.Samples() != b.Samples() {
		t.Fatalf("draw accounting differs: %d vs %d", a.Samples(), b.Samples())
	}
	// After both consumed m draws, the next draw must agree — the streams
	// are in lockstep.
	if x, y := a.Draw(), b.Draw(); x != y {
		t.Fatalf("streams diverged after tally: %d vs %d", x, y)
	}
}

func TestNeverReleasedCountsAreSafe(t *testing.T) {
	// Dropping a pooled Counts without Release must be legal (it is simply
	// collected); the pool never hands out a buffer that is still
	// reachable by a previous owner.
	c1 := DrawNCounts(poolTestSampler(512, 7), 512)
	c2 := DrawNCounts(poolTestSampler(512, 8), 512) // c1 not released
	if c1 == c2 {
		t.Fatal("pool handed out a live buffer twice")
	}
	c1.Release()
	c2.Release()
}
