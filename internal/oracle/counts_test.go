package oracle

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// testDist returns a 4-piece histogram over [0, n) for counting tests.
func testDist(n int) dist.Distribution {
	p := make([]float64, n)
	for i := range p {
		switch {
		case i < n/8:
			p[i] = 4
		case i < n/2:
			p[i] = 0.5
		case i < 3*n/4:
			p[i] = 2
		default:
			p[i] = 1
		}
	}
	total := 0.0
	for _, v := range p {
		total += v
	}
	for i := range p {
		p[i] /= total
	}
	return dist.MustDense(p)
}

// assertCountsEqual fails unless a and b agree on every accessor.
func assertCountsEqual(t *testing.T, a, b *Counts) {
	t.Helper()
	if a.N() != b.N() || a.Total() != b.Total() || a.Distinct() != b.Distinct() {
		t.Fatalf("summary mismatch: N %d/%d Total %d/%d Distinct %d/%d",
			a.N(), b.N(), a.Total(), b.Total(), a.Distinct(), b.Distinct())
	}
	for i := 0; i < a.N(); i++ {
		if a.Of(i) != b.Of(i) {
			t.Fatalf("Of(%d) = %d vs %d", i, a.Of(i), b.Of(i))
		}
	}
}

func TestDrawCountsMatchesDrawPoissonSampler(t *testing.T) {
	// The batched tally must consume exactly the same randomness as the
	// slice-materializing path and produce identical counts.
	const n, mean = 512, 3000.0
	d := testDist(n)
	s1 := NewSampler(d, rng.New(11))
	s2 := NewSampler(d, rng.New(11))
	r1, r2 := rng.New(12), rng.New(12)
	batched := DrawCounts(s1, r1, mean)
	legacy := NewCounts(n, DrawPoisson(s2, r2, mean))
	assertCountsEqual(t, batched, legacy)
	if s1.Samples() != s2.Samples() {
		t.Fatalf("draw accounting differs: %d vs %d", s1.Samples(), s2.Samples())
	}
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("RNG streams diverged")
	}
}

func TestDrawCountsMatchesDrawPoissonGenericOracle(t *testing.T) {
	// Same equivalence through the generic (non-Sampler) loop, exercised
	// via a Permuted wrapper.
	const n, mean = 256, 2000.0
	d := testDist(n)
	sigma := rng.New(3).Perm(n)
	wrap := func(seed uint64) Oracle {
		p, err := NewPermuted(NewSampler(d, rng.New(seed)), sigma)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	o1, o2 := wrap(21), wrap(21)
	r1, r2 := rng.New(22), rng.New(22)
	batched := DrawCounts(o1, r1, mean)
	legacy := NewCounts(n, DrawPoisson(o2, r2, mean))
	assertCountsEqual(t, batched, legacy)
}

func TestDrawCountsDistribution(t *testing.T) {
	// Sanity: the tallied frequencies track the distribution and the total
	// tracks the Poisson mean.
	const n, mean = 64, 50000.0
	d := testDist(n)
	s := NewSampler(d, rng.New(31))
	c := DrawCounts(s, rng.New(32), mean)
	if math.Abs(float64(c.Total())-mean) > 6*math.Sqrt(mean) {
		t.Fatalf("total %d implausible for Poisson(%v)", c.Total(), mean)
	}
	for i := 0; i < n; i++ {
		got := float64(c.Of(i)) / float64(c.Total())
		want := d.Prob(i)
		if math.Abs(got-want) > 6*math.Sqrt(want/mean)+1e-3 {
			t.Fatalf("element %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestDenseSparseEquivalence(t *testing.T) {
	const n = 300
	r := rng.New(41)
	samples := make([]int, 4000)
	for i := range samples {
		samples[i] = r.Intn(n)
	}
	dense := NewDenseCounts(n, samples)
	sparse := NewSparseCounts(n, samples)
	if !dense.Dense() || sparse.Dense() {
		t.Fatal("forced representations not honored")
	}
	assertCountsEqual(t, dense, sparse)
	for _, rg := range [][2]int{{0, n}, {10, 20}, {0, 1}, {n - 5, n}, {150, 150}} {
		if a, b := dense.InRange(rg[0], rg[1]), sparse.InRange(rg[0], rg[1]); a != b {
			t.Fatalf("InRange%v = %d vs %d", rg, a, b)
		}
	}
	fpA, fpB := dense.Fingerprint(), sparse.Fingerprint()
	if len(fpA) != len(fpB) {
		t.Fatalf("fingerprint sizes differ: %v vs %v", fpA, fpB)
	}
	for j, v := range fpA {
		if fpB[j] != v {
			t.Fatalf("fingerprint[%d] = %d vs %d", j, v, fpB[j])
		}
	}
	if dense.PairCollisions() != sparse.PairCollisions() {
		t.Fatal("pair collisions differ")
	}
	// ForEach must ascend identically for both.
	var elemsA, elemsB []int
	dense.ForEach(func(i, _ int) { elemsA = append(elemsA, i) })
	sparse.ForEach(func(i, _ int) { elemsB = append(elemsB, i) })
	if len(elemsA) != len(elemsB) {
		t.Fatal("ForEach visit counts differ")
	}
	for i := range elemsA {
		if elemsA[i] != elemsB[i] {
			t.Fatalf("ForEach order differs at %d: %d vs %d", i, elemsA[i], elemsB[i])
		}
		if i > 0 && elemsA[i] <= elemsA[i-1] {
			t.Fatal("ForEach not ascending")
		}
	}
	da, db := dense.Empirical(), sparse.Empirical()
	for i := 0; i < n; i++ {
		if da.Prob(i) != db.Prob(i) {
			t.Fatalf("empirical mass differs at %d", i)
		}
	}
}

func TestCountsRepresentationHeuristic(t *testing.T) {
	// Thin samples over a big domain stay sparse; bulk draws over a modest
	// domain go dense.
	if NewCounts(1<<23, []int{0, 1, 2}).Dense() {
		t.Fatal("huge domain should be sparse")
	}
	if NewCounts(16, make([]int, 1000)).Dense() == false {
		t.Fatal("bulk draw over tiny domain should be dense")
	}
}

func TestSamplerForkIndependentAndAccounted(t *testing.T) {
	d := testDist(128)
	parent := NewSampler(d, rng.New(51))
	clone := parent.Fork(rng.New(52))
	if clone == nil {
		t.Fatal("sampler must be forkable")
	}
	for i := 0; i < 100; i++ {
		clone.Draw()
	}
	if parent.Samples() != 0 {
		t.Fatalf("clone draws leaked into parent counter: %d", parent.Samples())
	}
	if clone.Samples() != 100 {
		t.Fatalf("clone counted %d draws", clone.Samples())
	}
	parent.Absorb(clone.Samples())
	if parent.Samples() != 100 {
		t.Fatalf("Absorb failed: %d", parent.Samples())
	}
	// Forking must not perturb the parent's own stream: two identically
	// seeded samplers, one forked in between, draw the same sequence.
	a := NewSampler(d, rng.New(53))
	b := NewSampler(d, rng.New(53))
	a.Fork(rng.New(54))
	for i := 0; i < 50; i++ {
		if a.Draw() != b.Draw() {
			t.Fatal("Fork perturbed the parent stream")
		}
	}
}

func TestForkDelegation(t *testing.T) {
	d := testDist(64)
	sigma := rng.New(61).Perm(64)
	perm, err := NewPermuted(NewSampler(d, rng.New(62)), sigma)
	if err != nil {
		t.Fatal(err)
	}
	if perm.Fork(rng.New(63)) == nil {
		t.Fatal("Permuted over Sampler must fork")
	}
	// A replay-backed oracle is inherently serial: forks must refuse.
	rep, err := NewReplay(64, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	perm2, err := NewPermuted(rep, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if perm2.Fork(rng.New(64)) != nil {
		t.Fatal("Permuted over Replay must not fork")
	}
}

func TestReplayPanicsWithSentinel(t *testing.T) {
	rep, err := NewReplay(8, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rep.Draw()
	rep.Draw()
	defer func() {
		if r := recover(); r != ErrReplayExhausted {
			t.Fatalf("panic value = %v, want ErrReplayExhausted", r)
		}
	}()
	rep.Draw()
}

func BenchmarkDrawCountsDense(b *testing.B) {
	d := testDist(1 << 16)
	s := NewSampler(d, rng.New(71))
	r := rng.New(72)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DrawCounts(s, r, 1<<18)
	}
}

func BenchmarkDrawPoissonLegacy(b *testing.B) {
	d := testDist(1 << 16)
	s := NewSampler(d, rng.New(71))
	r := rng.New(72)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSparseCounts(1<<16, DrawPoisson(s, r, 1<<18))
	}
}

// TestBumpNDenseOverflowBoundary pins the int32 ceiling of the dense
// backing: accumulating to exactly MaxInt32 is fine, one past it must
// panic rather than wrap (a wrapped count silently corrupts every
// downstream statistic). A heavy single-element run synthesized by the
// closed-form counter near the MaxSamples budget (~2³¹) is the
// realistic way to get here.
func TestBumpNDenseOverflowBoundary(t *testing.T) {
	c := NewDenseCounts(4, nil)
	c.bumpN(1, math.MaxInt32-7)
	c.bumpN(1, 7) // lands exactly on the ceiling
	if got := c.Of(1); got != math.MaxInt32 {
		t.Fatalf("Of(1) = %d, want MaxInt32", got)
	}
	if got := c.Total(); got != math.MaxInt32 {
		t.Fatalf("Total() = %d, want MaxInt32", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("bumpN past MaxInt32 did not panic; the dense count wrapped silently")
		}
	}()
	c.bumpN(1, 1)
}

// TestBumpNSparseHasNoInt32Ceiling: the sparse (map) backing accumulates
// in native ints and must keep counting where the dense backing stops.
func TestBumpNSparseHasNoInt32Ceiling(t *testing.T) {
	c := NewSparseCounts(1<<30, nil)
	c.bumpN(5, math.MaxInt32-1)
	c.bumpN(5, 10)
	if want := int(math.MaxInt32) + 9; c.Of(5) != want {
		t.Fatalf("Of(5) = %d, want %d", c.Of(5), want)
	}
}
