package oracle

import (
	"fmt"

	"repro/internal/rng"
)

// CountsReplay replays an ACCUMULATED count vector as a sample stream:
// each Draw removes one uniformly random remaining event from the
// multiset the Counts describes — an exact uniform shuffle of the
// recorded events, realized lazily, without ever materializing the
// sample slice. It is the bridge between the streaming-ingestion
// accumulators (internal/stream) and the tester: a firehose of raw
// events is tallied into per-element counts, and the tester draws from
// the tally exactly as it would from a shuffled recording of the same
// events.
//
// Statistically this is sampling WITHOUT replacement, the same access
// model as Replay over a recorded dataset (whose order the tester must
// not be sensitive to); when the recorded multiset is much larger than
// the tester's budget the stream is indistinguishable from i.i.d. draws
// from the empirical distribution. Like Replay, Draw panics with
// ErrReplayExhausted once every recorded event has been consumed, so
// callers surface "need more samples" identically on both paths.
//
// The draw order is a pure function of the count CONTENTS and the RNG
// stream: the index is built from Counts.ForEach (ascending elements on
// both backings), so two Counts holding the same tallies — one dense,
// one sparse; one accumulated shard-by-shard, one folded serially —
// yield bit-identical streams from equal seeds. This is what makes a
// stream-ingested verdict reproducible against a direct run over the
// same counts.
//
// A CountsReplay is not safe for concurrent use and cannot fork (the
// without-replacement state is inherently serial), mirroring Replay.
type CountsReplay struct {
	n     int
	elems []int32 // distinct elements, ascending
	tree  []int64 // Fenwick tree over remaining per-element counts
	rem   int64
	r     *rng.RNG
	count int64
}

var _ Oracle = (*CountsReplay)(nil)

// NewCountsReplay builds a replay oracle over the tallies of c, drawing
// its shuffle randomness from r. The Counts is read once during
// construction and not retained, so the caller remains free to Release
// it immediately afterwards.
func NewCountsReplay(c *Counts, r *rng.RNG) *CountsReplay {
	cr := &CountsReplay{
		n:     c.N(),
		elems: make([]int32, 0, c.Distinct()),
		tree:  make([]int64, c.Distinct()+1),
		r:     r,
	}
	c.ForEach(func(elem, count int) {
		cr.elems = append(cr.elems, int32(elem))
		// Linear-time Fenwick construction: place the count, then push the
		// partial sum to the parent node.
		i := len(cr.elems) // 1-based tree index
		cr.tree[i] += int64(count)
		if p := i + (i & -i); p < len(cr.tree) {
			cr.tree[p] += cr.tree[i]
		}
		cr.rem += int64(count)
	})
	return cr
}

// N returns the domain size.
func (cr *CountsReplay) N() int { return cr.n }

// Draw removes and returns one uniformly random remaining event. It
// panics with ErrReplayExhausted when the tally is spent.
func (cr *CountsReplay) Draw() int {
	if cr.rem <= 0 {
		panic(ErrReplayExhausted)
	}
	// Uniform rank in [0, rem), then the classic Fenwick descent to the
	// first element whose cumulative count exceeds it.
	target := int64(cr.r.Intn(int(cr.rem)))
	idx := 0
	mask := 1
	for mask<<1 <= len(cr.elems) {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := idx + mask
		if next < len(cr.tree) && cr.tree[next] <= target {
			target -= cr.tree[next]
			idx = next
		}
	}
	// idx is 0-based after the descent: the descent lands on the last
	// position whose prefix sum is <= target, so the hit is idx (1-based
	// idx+1).
	for i := idx + 1; i < len(cr.tree); i += i & -i {
		cr.tree[i]--
	}
	cr.rem--
	cr.count++
	return int(cr.elems[idx])
}

// Samples returns how many events have been drawn.
func (cr *CountsReplay) Samples() int64 { return cr.count }

// Remaining returns how many recorded events are left.
func (cr *CountsReplay) Remaining() int64 { return cr.rem }

// Total returns the number of events the replay started with.
func (cr *CountsReplay) Total() int64 { return cr.rem + cr.count }

// AcquireCounts returns an empty pooled Counts sized for m samples over
// [0, n), with the dense/sparse backing chosen by the same crossover
// heuristic every internal batch draw uses. It is the snapshot adapter
// for external accumulators (internal/stream): fill it with AddN, hand
// it to the tester (e.g. via NewCountsReplay), then Release it. The
// caller owns the Counts exactly as with DrawCounts.
func AcquireCounts(n, m int) *Counts {
	if n < 1 {
		panic(fmt.Sprintf("oracle: AcquireCounts over empty domain n=%d", n))
	}
	return acquireCountsSized(n, m)
}

// AddN tallies k occurrences of element v — the ingest adapter external
// accumulators use to fold their shards into a Counts. It panics on
// out-of-range elements and negative k; k = 0 is a no-op. Dense-backing
// overflow panics exactly as the internal tally paths do (see bumpN).
func (c *Counts) AddN(v, k int) {
	if v < 0 || v >= c.n {
		panic(fmt.Sprintf("oracle: element %d outside [0,%d)", v, c.n))
	}
	if k < 0 {
		panic(fmt.Sprintf("oracle: negative count %d for element %d", k, v))
	}
	if k == 0 {
		return
	}
	c.bumpN(v, k)
}

// UseDense reports the dense/sparse crossover decision for a tally of m
// samples over [0, n) — exported so external accumulators (the
// streaming-ingestion shards) make the same representation choice as
// the internal counting paths.
func UseDense(n, m int) bool { return useDense(n, m) }
