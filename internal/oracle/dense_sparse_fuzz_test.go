package oracle

import (
	"testing"

	"repro/internal/rng"
)

// FuzzDenseSparseEquivalence fuzzes the two Counts representations
// against each other around the m >= n/64 crossover that DrawCounts'
// heuristic switches on: for any sample multiset, the dense []int32
// tally, the sparse map tally, the heuristic-chosen tally, and the
// pooled batch-draw tally (via a Replay oracle) must agree on every
// accessor. A divergence here would silently skew the χ² statistics
// depending on which side of the crossover a batch lands.
func FuzzDenseSparseEquivalence(f *testing.F) {
	f.Add(uint16(64), uint16(1), uint64(1))    // m << n/64: sparse side
	f.Add(uint16(512), uint16(8), uint64(2))   // exactly n/64
	f.Add(uint16(512), uint16(7), uint64(3))   // one below the crossover
	f.Add(uint16(512), uint16(9), uint64(4))   // one above
	f.Add(uint16(1), uint16(100), uint64(5))   // single-element domain
	f.Add(uint16(300), uint16(300), uint64(6)) // m == n
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed uint64) {
		n := int(nRaw)%2048 + 1
		m := int(mRaw) % 4096
		r := rng.New(seed)
		samples := make([]int, m)
		for i := range samples {
			samples[i] = r.Intn(n)
		}

		dense := NewDenseCounts(n, samples)
		sparse := NewSparseCounts(n, samples)
		auto := NewCounts(n, samples)
		rep, err := NewReplay(n, samples)
		if err != nil {
			t.Fatal(err)
		}
		pooled := DrawNCounts(rep, m)
		defer pooled.Release()

		all := []*Counts{dense, sparse, auto, pooled}
		names := []string{"dense", "sparse", "auto", "pooled"}
		ref := dense
		for idx, c := range all[1:] {
			name := names[idx+1]
			if c.N() != ref.N() || c.Total() != ref.Total() || c.Distinct() != ref.Distinct() {
				t.Fatalf("%s: N/Total/Distinct = %d/%d/%d, dense = %d/%d/%d",
					name, c.N(), c.Total(), c.Distinct(), ref.N(), ref.Total(), ref.Distinct())
			}
			if got, want := c.PairCollisions(), ref.PairCollisions(); got != want {
				t.Fatalf("%s: PairCollisions %d, dense %d", name, got, want)
			}
		}

		// Point lookups: every sampled element plus unsampled probes.
		probe := map[int]bool{0: true, n - 1: true, n / 2: true}
		for _, s := range samples {
			probe[s] = true
		}
		for i := range probe {
			want := ref.Of(i)
			for idx, c := range all[1:] {
				if got := c.Of(i); got != want {
					t.Fatalf("%s: Of(%d) = %d, dense = %d", names[idx+1], i, got, want)
				}
			}
		}

		// ForEach must visit the same (elem, count) sequence ascending.
		type ec struct{ e, c int }
		collect := func(c *Counts) []ec {
			var out []ec
			c.ForEach(func(e, cnt int) { out = append(out, ec{e, cnt}) })
			return out
		}
		refSeq := collect(ref)
		for i := 1; i < len(refSeq); i++ {
			if refSeq[i].e <= refSeq[i-1].e {
				t.Fatalf("dense ForEach not ascending: %v", refSeq)
			}
		}
		for idx, c := range all[1:] {
			seq := collect(c)
			if len(seq) != len(refSeq) {
				t.Fatalf("%s: ForEach visited %d elements, dense %d", names[idx+1], len(seq), len(refSeq))
			}
			for i := range seq {
				if seq[i] != refSeq[i] {
					t.Fatalf("%s: ForEach[%d] = %v, dense %v", names[idx+1], i, seq[i], refSeq[i])
				}
			}
		}

		// Range sums over a deterministic sweep of windows.
		for lo := 0; lo < n; lo += n/7 + 1 {
			hi := lo + n/3 + 1
			if hi > n {
				hi = n
			}
			want := ref.InRange(lo, hi)
			for idx, c := range all[1:] {
				if got := c.InRange(lo, hi); got != want {
					t.Fatalf("%s: InRange(%d,%d) = %d, dense = %d", names[idx+1], lo, hi, got, want)
				}
			}
		}
	})
}
