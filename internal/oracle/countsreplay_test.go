package oracle

import (
	"testing"

	"repro/internal/rng"
)

// buildCounts assembles a Counts with the given tallies (index = element).
// The crossover is useDense(n, m) = n small && m >= n/64, so sizing for
// a domain-sized m forces dense and m = 0 forces sparse (for n > 64).
func buildCounts(t *testing.T, n int, tallies map[int]int, forceSparse bool) *Counts {
	t.Helper()
	size := n
	if forceSparse {
		size = 0
	}
	c := AcquireCounts(n, size)
	for v, k := range tallies {
		c.AddN(v, k)
	}
	return c
}

// TestCountsReplayConservation: drawing the replay dry returns exactly
// the recorded multiset — every element the exact number of times it
// was tallied, no more, no fewer.
func TestCountsReplayConservation(t *testing.T) {
	tallies := map[int]int{0: 3, 7: 1, 100: 42, 999: 5, 12345: 17}
	total := 0
	for _, k := range tallies {
		total += k
	}
	for _, sparse := range []bool{false, true} {
		c := buildCounts(t, 20_000, tallies, sparse)
		cr := NewCountsReplay(c, rng.New(99))
		c.Release()
		if cr.Total() != int64(total) {
			t.Fatalf("sparse=%v: Total = %d, want %d", sparse, cr.Total(), total)
		}
		got := map[int]int{}
		for i := 0; i < total; i++ {
			got[cr.Draw()]++
		}
		if cr.Remaining() != 0 || cr.Samples() != int64(total) {
			t.Fatalf("sparse=%v: remaining=%d samples=%d after full drain", sparse, cr.Remaining(), cr.Samples())
		}
		for v, k := range tallies {
			if got[v] != k {
				t.Fatalf("sparse=%v: element %d drawn %d times, tallied %d", sparse, v, got[v], k)
			}
		}
		if len(got) != len(tallies) {
			t.Fatalf("sparse=%v: drew %d distinct elements, tallied %d", sparse, len(got), len(tallies))
		}
	}
}

// TestCountsReplayExhaustionPanics: one draw past the recorded events
// panics with the same sentinel Replay uses, so the serving layer's
// need_more_samples mapping covers both replay flavors.
func TestCountsReplayExhaustionPanics(t *testing.T) {
	c := AcquireCounts(10, 2)
	c.AddN(3, 2)
	cr := NewCountsReplay(c, rng.New(1))
	c.Release()
	cr.Draw()
	cr.Draw()
	defer func() {
		if r := recover(); r != ErrReplayExhausted {
			t.Fatalf("recovered %v, want ErrReplayExhausted", r)
		}
	}()
	cr.Draw()
	t.Fatal("Draw past exhaustion did not panic")
}

// TestCountsReplayBackingIndependence: the draw stream is a pure
// function of the tallies and the seed — the dense and sparse backings
// of the SAME tallies yield bit-identical streams. This is the property
// that makes a stream-ingested verdict reproducible regardless of which
// representation the accumulator happened to choose.
func TestCountsReplayBackingIndependence(t *testing.T) {
	tallies := map[int]int{1: 4, 50: 9, 51: 1, 4000: 30, 19999: 2}
	total := 0
	for _, k := range tallies {
		total += k
	}
	dense := buildCounts(t, 20_000, tallies, false)
	sparse := buildCounts(t, 20_000, tallies, true)
	if dense.Dense() == sparse.Dense() {
		t.Fatalf("backings did not diverge (dense=%v for both); fixture broken", dense.Dense())
	}
	a := NewCountsReplay(dense, rng.New(42))
	b := NewCountsReplay(sparse, rng.New(42))
	dense.Release()
	sparse.Release()
	for i := 0; i < total; i++ {
		if va, vb := a.Draw(), b.Draw(); va != vb {
			t.Fatalf("draw %d: dense backing gave %d, sparse gave %d", i, va, vb)
		}
	}
}

// TestCountsReplaySingleElement pins the Fenwick descent's edge case:
// one distinct element, repeated.
func TestCountsReplaySingleElement(t *testing.T) {
	c := AcquireCounts(5, 3)
	c.AddN(4, 3)
	cr := NewCountsReplay(c, rng.New(7))
	c.Release()
	for i := 0; i < 3; i++ {
		if v := cr.Draw(); v != 4 {
			t.Fatalf("draw %d = %d, want 4", i, v)
		}
	}
}

// TestCountsReplayUniform sanity-checks that the shuffle is not
// systematically ordered: with two equally weighted elements, the first
// draw should pick each side a reasonable fraction of the time across
// seeds.
func TestCountsReplayUniform(t *testing.T) {
	firstLow := 0
	const trials = 400
	for seed := uint64(1); seed <= trials; seed++ {
		c := AcquireCounts(2, 2)
		c.AddN(0, 1)
		c.AddN(1, 1)
		cr := NewCountsReplay(c, rng.New(seed))
		c.Release()
		if cr.Draw() == 0 {
			firstLow++
		}
	}
	if firstLow < trials/4 || firstLow > trials*3/4 {
		t.Fatalf("first draw chose element 0 in %d/%d trials; shuffle looks biased", firstLow, trials)
	}
}

// TestAddNValidation: the ingest adapter rejects out-of-range elements
// and negative counts, and treats zero as a no-op.
func TestAddNValidation(t *testing.T) {
	c := AcquireCounts(10, 4)
	defer c.Release()
	c.AddN(3, 0) // no-op
	if c.Total() != 0 {
		t.Fatalf("AddN(3, 0) tallied something: total=%d", c.Total())
	}
	for _, bad := range []func(){
		func() { c.AddN(-1, 1) },
		func() { c.AddN(10, 1) },
		func() { c.AddN(3, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid AddN did not panic")
				}
			}()
			bad()
		}()
	}
}
