package oracle

import (
	randv2 "math/rand/v2"
	"sync"
	"sync/atomic"
)

// Counts buffer pooling.
//
// The χ² counting loop is the hot path of the whole system: every sieve
// replicate and every final test materializes a per-element count vector,
// and at production scale the dense backing is a []int32 of length n
// (400 KB at n = 10⁵). Re-allocating it per batch dominates wall-clock
// long before the Theorem 3.1 work bound does, so the batch drawing
// entry points (DrawCounts, DrawPoissonCounts, DrawNCounts) acquire
// their Counts from a sync.Pool and callers hand them back with Release.
//
// Ownership contract:
//
//   - The caller of a Draw*Counts function owns the returned Counts.
//   - Calling Release transfers ownership to the pool; the Counts must
//     not be used afterwards. Release-before-last-use is an aliasing bug
//     (a concurrent acquirer may be tallying into the same backing), so
//     double-Release PANICS rather than being ignored — it is always a
//     lifecycle error, and silently pooling the same buffer twice would
//     hand two future acquirers aliased memory.
//   - Never calling Release is always safe: the buffer is simply
//     garbage-collected and the pool never learns about it. Code that
//     retains a Counts indefinitely (or returns it to a caller with
//     unknown lifetime) should just not release it.
//
// Reuse cannot change observable behavior: dense backings are zeroed at
// acquire time, sparse maps are cleared (clear() keeps the allocated
// buckets), and the representation choice depends only on (n, m) —
// never on what the recycled buffer used to hold.

// densePool recycles Counts with a dense []int32 backing; sparsePool
// recycles map-backed Counts. Two pools so an acquire never has to
// discard a mismatched backing.
var (
	densePool  = sync.Pool{New: func() any { return new(Counts) }}
	sparsePool = sync.Pool{New: func() any { return new(Counts) }}
)

// poolStatShards stripes the process-global pool accounting counters
// behind PoolStatsSnapshot. A hit is an acquire served by a recycled
// backing of sufficient capacity; a miss had to allocate. Acquires and
// Releases balance exactly for code that releases every pooled buffer —
// the leak-detection tests assert that delta-acquires == delta-releases
// around a tester run (including a cancelled one).
//
// The counters are striped because they sit on the batch-draw hot path
// of EVERY concurrent tester run: each sieve replicate bumps acquire +
// hit/miss + release, so under a parallel sieve (or many concurrent
// histd requests) a single counter line ping-pongs between cores 2–3
// times per batch. Each stripe is padded to its own cache line;
// PoolStatsSnapshot sums the stripes, so totals stay exact while no two
// cores need to agree on one line per bump.
const poolStatShards = 32 // power of two, comfortably above typical core counts

// poolStatShard is one stripe of the pool counters. The four Int64s
// occupy 32 bytes; the trailing pad keeps every stripe on its own
// 64-byte cache line.
type poolStatShard struct {
	acquires, hits, misses, releases atomic.Int64
	_                                [32]byte
}

var poolStats [poolStatShards]poolStatShard

// poolStatStripe picks a stripe for the calling goroutine. math/rand/v2's
// global generator is backed by runtime-internal per-thread state, so the
// pick itself is contention-free; a uniformly random stripe keeps any
// number of concurrent workers spread across the lines. Stripe choice is
// pure diagnostics routing — it never touches the repro rng streams, so
// determinism of draws and Traces is unaffected.
func poolStatStripe() *poolStatShard {
	return &poolStats[randv2.Uint32N(poolStatShards)]
}

// PoolStats is a snapshot of the Counts pool counters.
type PoolStats struct {
	// Acquires counts pooled acquisitions (every Draw*Counts call).
	Acquires int64
	// Hits are acquires served by a recycled backing; Misses allocated.
	Hits, Misses int64
	// Releases counts buffers handed back to the pool. Note Release on a
	// Counts built by NewCounts/NewDenseCounts/NewSparseCounts also feeds
	// the pool and counts here, without a matching acquire.
	Releases int64
}

// PoolStatsSnapshot returns the current process-global pool counters,
// summed across the stripes. Deltas around a quiesced region attribute
// exactly; under concurrent runs the attribution is approximate (the
// totals remain exact).
func PoolStatsSnapshot() PoolStats {
	var s PoolStats
	for i := range poolStats {
		s.Acquires += poolStats[i].acquires.Load()
		s.Hits += poolStats[i].hits.Load()
		s.Misses += poolStats[i].misses.Load()
		s.Releases += poolStats[i].releases.Load()
	}
	return s
}

// acquireCountsSized returns an empty pooled Counts with the backing
// chosen for m samples over [0, n) — the pooled counterpart of
// newCountsSized, with identical representation choice.
func acquireCountsSized(n, m int) *Counts {
	stripe := poolStatStripe()
	stripe.acquires.Add(1)
	if useDense(n, m) {
		c := densePool.Get().(*Counts)
		if cap(c.dense) >= n {
			stripe.hits.Add(1)
			c.dense = c.dense[:n]
			clear(c.dense)
		} else {
			stripe.misses.Add(1)
			c.dense = make([]int32, n)
		}
		c.n, c.m, c.distinct, c.total, c.released = n, nil, 0, 0, false
		return c
	}
	c := sparsePool.Get().(*Counts)
	if c.m == nil {
		stripe.misses.Add(1)
		c.m = make(map[int]int, m)
	} else {
		stripe.hits.Add(1)
		clear(c.m)
	}
	c.n, c.dense, c.distinct, c.total, c.released = n, nil, 0, 0, false
	return c
}

// Release returns the Counts' backing to the buffer pool for reuse by a
// later batch draw. The Counts must not be used after Release; releasing
// twice panics (see the ownership contract above). Releasing a Counts
// built by NewCounts/NewDenseCounts/NewSparseCounts is allowed — their
// backings feed the same pool.
func (c *Counts) Release() {
	if c.released {
		panic("oracle: Counts released twice")
	}
	c.released = true
	if c.dense != nil {
		poolStatStripe().releases.Add(1)
		densePool.Put(c)
	} else if c.m != nil {
		poolStatStripe().releases.Add(1)
		sparsePool.Put(c)
	}
}

// releaseOnPanic is deferred by the batch tally loops: when the oracle's
// Draw panics mid-tally (a Replay running dry, a Source emitting an
// out-of-range value), the half-filled pooled buffer is handed back
// before the panic propagates, so recovering callers (histtest's replay
// path) leak nothing. On a normal return it is a no-op.
func releaseOnPanic(c *Counts) {
	if r := recover(); r != nil {
		c.Release()
		panic(r)
	}
}

// DrawNCounts draws exactly m samples from o and tallies them into a
// pooled Counts, never materializing the intermediate sample slice. It
// consumes exactly the same randomness as
//
//	NewCounts(o.N(), DrawN(o, m))
//
// (m sequential draws from o) and yields identical counts. The caller
// owns the result; Release it when the tally has been consumed.
func DrawNCounts(o Oracle, m int) *Counts {
	c := acquireCountsSized(o.N(), m)
	defer releaseOnPanic(c)
	for i := 0; i < m; i++ {
		c.add(o.Draw())
	}
	return c
}
