// Package oracle provides sample access to unknown distributions — the
// access model of distribution testing (Section 2 of the paper) — plus the
// bookkeeping the experiments need: exact accounting of how many samples a
// tester consumed, Poissonized batch draws, per-element count vectors, and
// fingerprints.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/rng"
)

// Oracle yields independent samples from an unknown distribution over
// {0, ..., n-1} and counts how many have been drawn. Implementations are
// not safe for concurrent use.
type Oracle interface {
	// N returns the domain size.
	N() int
	// Draw returns one sample.
	Draw() int
	// Samples returns the total number of samples drawn so far.
	Samples() int64
}

// DrawN draws m samples from o.
func DrawN(o Oracle, m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = o.Draw()
	}
	return out
}

// DrawPoisson draws Poisson(mean) samples from o — the Poissonization
// trick of Section 2. The returned slice length is the Poisson variate.
func DrawPoisson(o Oracle, r *rng.RNG, mean float64) []int {
	return DrawN(o, r.Poisson(mean))
}

// Sampler samples from a known dist.Distribution using Walker–Vose alias
// tables built over the distribution's constant runs: a k-histogram costs
// O(k) setup and O(1) per draw regardless of n.
type Sampler struct {
	n     int
	r     *rng.RNG
	lo    []int // run bounds
	hi    []int
	alias []int
	prob  []float64
	count int64
}

var _ Oracle = (*Sampler)(nil)

// NewSampler builds a sampler for d using randomness from r. It panics if
// d has non-positive total mass. The distribution is normalized implicitly:
// sampling probabilities are proportional to d's masses.
func NewSampler(d dist.Distribution, r *rng.RNG) *Sampler {
	n := d.N()
	var lo, hi []int
	var mass []float64
	total := 0.0
	for i := 0; i < n; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		m := d.Prob(i) * float64(end-i)
		lo = append(lo, i)
		hi = append(hi, end)
		mass = append(mass, m)
		total += m
		i = end
	}
	if total <= 0 {
		panic("oracle: sampler over zero-mass distribution")
	}
	s := &Sampler{n: n, r: r, lo: lo, hi: hi}
	s.alias, s.prob = buildAlias(mass, total)
	return s
}

// buildAlias constructs Walker–Vose alias tables for the normalized weights
// mass/total.
func buildAlias(mass []float64, total float64) (alias []int, prob []float64) {
	k := len(mass)
	alias = make([]int, k)
	prob = make([]float64, k)
	scaled := make([]float64, k)
	small := make([]int, 0, k)
	large := make([]int, 0, k)
	for i, m := range mass {
		scaled[i] = m / total * float64(k)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return alias, prob
}

// N returns the domain size.
func (s *Sampler) N() int { return s.n }

// Draw returns one sample.
func (s *Sampler) Draw() int {
	s.count++
	j := s.r.Intn(len(s.prob))
	if s.r.Float64() >= s.prob[j] {
		j = s.alias[j]
	}
	if s.hi[j]-s.lo[j] == 1 {
		return s.lo[j]
	}
	return s.lo[j] + s.r.Intn(s.hi[j]-s.lo[j])
}

// Samples returns how many samples have been drawn.
func (s *Sampler) Samples() int64 { return s.count }

// ResetCount zeroes the sample counter (e.g. between experiment trials).
func (s *Sampler) ResetCount() { s.count = 0 }

// Permuted wraps an oracle, relabelling samples through a fixed
// permutation sigma of the domain — the embedding step of the paper's
// support-size reduction (Section 4.2): the tester sees samples from
// D ∘ σ⁻¹.
type Permuted struct {
	inner Oracle
	sigma []int
}

var _ Oracle = (*Permuted)(nil)

// NewPermuted returns an oracle emitting sigma(x) for each sample x of
// inner. len(sigma) must equal inner.N().
func NewPermuted(inner Oracle, sigma []int) (*Permuted, error) {
	if len(sigma) != inner.N() {
		return nil, fmt.Errorf("oracle: permutation of size %d over domain %d", len(sigma), inner.N())
	}
	return &Permuted{inner: inner, sigma: sigma}, nil
}

// N returns the domain size.
func (p *Permuted) N() int { return p.inner.N() }

// Draw returns sigma(inner.Draw()).
func (p *Permuted) Draw() int { return p.sigma[p.inner.Draw()] }

// Samples returns the inner oracle's count.
func (p *Permuted) Samples() int64 { return p.inner.Samples() }

// Conditional restricts an oracle to a sub-domain by rejection sampling:
// Draw retries until the inner sample lands in the domain — the
// "conditional sampling" view used when testers reason about D restricted
// to an interval (e.g. the per-interval flatness tests of [ILR12]).
// Samples() counts INNER draws, so budget accounting reflects the true
// cost including rejections.
type Conditional struct {
	inner    Oracle
	domain   *intervals.Domain
	maxRetry int
}

var _ Oracle = (*Conditional)(nil)

// NewConditional wraps inner restricted to domain. maxRetry bounds the
// rejection loop (0 means 1e6); Draw panics if it is exhausted, which
// only happens when the domain carries (near-)zero mass.
func NewConditional(inner Oracle, domain *intervals.Domain, maxRetry int) (*Conditional, error) {
	if domain.N() != inner.N() {
		return nil, fmt.Errorf("oracle: domain universe %d != oracle domain %d", domain.N(), inner.N())
	}
	if domain.Size() == 0 {
		return nil, fmt.Errorf("oracle: conditioning on an empty domain")
	}
	if maxRetry <= 0 {
		maxRetry = 1_000_000
	}
	return &Conditional{inner: inner, domain: domain, maxRetry: maxRetry}, nil
}

// N returns the domain size of the underlying universe.
func (c *Conditional) N() int { return c.inner.N() }

// Draw returns the next inner sample that lands in the domain.
func (c *Conditional) Draw() int {
	for i := 0; i < c.maxRetry; i++ {
		if v := c.inner.Draw(); c.domain.Contains(v) {
			return v
		}
	}
	panic("oracle: conditional rejection budget exhausted (domain mass ~0)")
}

// Samples returns the inner oracle's draw count (including rejections).
func (c *Conditional) Samples() int64 { return c.inner.Samples() }

// Replay replays a recorded sequence of samples (e.g. a dataset read from
// disk by the CLI). Draw panics when the recording is exhausted; callers
// should check Remaining first.
type Replay struct {
	n     int
	data  []int
	next  int
	count int64
}

var _ Oracle = (*Replay)(nil)

// NewReplay validates that every sample lies in [0, n) and returns a
// replay oracle.
func NewReplay(n int, data []int) (*Replay, error) {
	for i, v := range data {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("oracle: sample %d = %d outside [0,%d)", i, v, n)
		}
	}
	return &Replay{n: n, data: data}, nil
}

// N returns the domain size.
func (rp *Replay) N() int { return rp.n }

// Draw returns the next recorded sample.
func (rp *Replay) Draw() int {
	if rp.next >= len(rp.data) {
		panic("oracle: replay exhausted")
	}
	v := rp.data[rp.next]
	rp.next++
	rp.count++
	return v
}

// Samples returns how many samples have been replayed.
func (rp *Replay) Samples() int64 { return rp.count }

// Remaining returns how many recorded samples are left.
func (rp *Replay) Remaining() int { return len(rp.data) - rp.next }

// Counts is a sparse per-element occurrence vector over [0, n).
type Counts struct {
	n     int
	m     map[int]int
	total int
}

// NewCounts tallies the occurrence of each element in samples.
func NewCounts(n int, samples []int) *Counts {
	c := &Counts{n: n, m: make(map[int]int, len(samples))}
	for _, s := range samples {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("oracle: sample %d outside [0,%d)", s, n))
		}
		c.m[s]++
		c.total++
	}
	return c
}

// N returns the domain size.
func (c *Counts) N() int { return c.n }

// Total returns the number of samples tallied.
func (c *Counts) Total() int { return c.total }

// Of returns the occurrence count of element i.
func (c *Counts) Of(i int) int { return c.m[i] }

// Distinct returns the number of distinct elements observed.
func (c *Counts) Distinct() int { return len(c.m) }

// ForEach calls f for every observed element (ascending order) with its
// count.
func (c *Counts) ForEach(f func(elem, count int)) {
	keys := make([]int, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		f(k, c.m[k])
	}
}

// InRange returns the number of samples that fell in [lo, hi).
func (c *Counts) InRange(lo, hi int) int {
	// Iterate the map: cheaper than sorting when called rarely; callers
	// needing many range queries should use Empirical instead.
	total := 0
	for k, v := range c.m {
		if k >= lo && k < hi {
			total += v
		}
	}
	return total
}

// Empirical returns the empirical distribution of the counts as a Dense
// distribution (mass count/total per element). It panics if no samples
// were tallied.
func (c *Counts) Empirical() *dist.Dense {
	if c.total == 0 {
		panic("oracle: empirical distribution of zero samples")
	}
	p := make([]float64, c.n)
	for k, v := range c.m {
		p[k] = float64(v) / float64(c.total)
	}
	return dist.MustDense(p)
}

// Fingerprint returns the collision fingerprint of the counts: fp[j] is
// the number of distinct elements that appeared exactly j times (j >= 1).
// Symmetric-property testers (uniqueness/collision statistics) consume
// exactly this.
func (c *Counts) Fingerprint() map[int]int {
	fp := make(map[int]int)
	for _, v := range c.m {
		fp[v]++
	}
	return fp
}

// PairCollisions returns the number of unordered sample pairs that
// collided: Σ_i C(count_i, 2).
func (c *Counts) PairCollisions() int64 {
	var total int64
	for _, v := range c.m {
		total += int64(v) * int64(v-1) / 2
	}
	return total
}
