// Package oracle provides sample access to unknown distributions — the
// access model of distribution testing (Section 2 of the paper) — plus the
// bookkeeping the experiments need: exact accounting of how many samples a
// tester consumed, Poissonized batch draws, per-element count vectors, and
// fingerprints.
package oracle

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/rng"
)

// Oracle yields independent samples from an unknown distribution over
// {0, ..., n-1} and counts how many have been drawn. Implementations are
// not safe for concurrent use.
type Oracle interface {
	// N returns the domain size.
	N() int
	// Draw returns one sample.
	Draw() int
	// Samples returns the total number of samples drawn so far.
	Samples() int64
}

// Forker is an Oracle that can spawn independent clones for concurrent
// batch drawing (the parallel sieve replicates of core.Test). Fork returns
// a clone with private randomness and a zeroed sample counter; the clone
// may be drawn from concurrently with other clones (but every individual
// oracle remains non-concurrency-safe on its own). Fork returns nil when
// the oracle — or an oracle it wraps — is inherently serial (Replay and
// arbitrary Source adapters are); callers must fall back to drawing from
// the parent serially in that case.
type Forker interface {
	Oracle
	// CanFork reports whether Fork will yield clones — false when the
	// oracle, or an oracle it wraps, is inherently serial. It is the
	// cheap capability probe: callers deciding whether to fan out should
	// ask CanFork rather than performing (and discarding) a trial Fork,
	// which may allocate a clone chain or consume factory work.
	CanFork() bool
	// Fork returns an independent clone drawing its randomness from r, or
	// nil if the oracle cannot be cloned (CanFork() == false).
	Fork(r *rng.RNG) Oracle
	// Absorb folds draws performed on clones back into the parent's
	// Samples() counter, preserving exact budget accounting. It must not
	// be called while clones are still drawing.
	Absorb(drawn int64)
}

// DrawN draws m samples from o.
func DrawN(o Oracle, m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = o.Draw()
	}
	return out
}

// DrawPoisson draws Poisson(mean) samples from o — the Poissonization
// trick of Section 2. The returned slice length is the Poisson variate.
func DrawPoisson(o Oracle, r *rng.RNG, mean float64) []int {
	return DrawN(o, r.Poisson(mean))
}

// DrawCounts draws Poisson(mean) samples from o and tallies them directly
// into a Counts, never materializing the intermediate sample slice. It
// consumes exactly the same randomness as
//
//	NewCounts(o.N(), DrawPoisson(o, r, mean))
//
// (one Poisson variate from r, then that many draws from o) and yields
// identical counts, so replay-backed oracles see an unchanged stream. The
// mean is used to pick the counts representation up front: dense for
// sample sizes comparable to the domain, sparse otherwise.
//
// The Counts comes from the buffer pool; the caller owns it and should
// Release it once the tally has been consumed (see Release).
func DrawCounts(o Oracle, r *rng.RNG, mean float64) *Counts {
	if s, ok := o.(*Sampler); ok {
		return s.DrawPoissonCounts(r, mean)
	}
	m := r.Poisson(mean)
	c := acquireCountsSized(o.N(), m)
	defer releaseOnPanic(c)
	for i := 0; i < m; i++ {
		c.add(o.Draw())
	}
	return c
}

// CountStrategy selects how Poissonized count vectors are synthesized for
// oracles backed by a KNOWN sampler.
type CountStrategy uint8

const (
	// CountExact draws every sample individually (one alias-table draw
	// per sample), so the randomness stream — and therefore every replay
	// oracle, regression pin, and bit-identical-Trace guarantee — is
	// unchanged. This is the default and the only strategy valid for
	// replay/Source-backed oracles, whose samples are data, not
	// randomness.
	CountExact CountStrategy = iota
	// CountClosedForm synthesizes the count vector directly from the
	// Poissonization guarantee: per-element counts of a Poisson(mean)
	// batch are independent Poisson(mean·p_i), so a known k-histogram
	// sampler can materialize a batch in O(k + Σ_j min(t_j, width_j))
	// RNG calls instead of O(m) per-sample draws (see
	// Sampler.DrawPoissonCountsClosedForm). The counts are
	// distributionally identical to CountExact but come from a different
	// randomness stream, so per-seed decisions differ (while operating
	// characteristics agree; pinned by the equivalence suite). Oracles
	// without the CountDrawer capability fall back to CountExact.
	CountClosedForm
)

// String returns the flag/wire spelling of the strategy.
func (cs CountStrategy) String() string {
	switch cs {
	case CountExact:
		return "exact"
	case CountClosedForm:
		return "closed-form"
	}
	return fmt.Sprintf("CountStrategy(%d)", uint8(cs))
}

// ParseCountStrategy parses the flag/wire spelling of a strategy. The
// empty string means CountExact (the default everywhere).
func ParseCountStrategy(s string) (CountStrategy, error) {
	switch s {
	case "", "exact":
		return CountExact, nil
	case "closed-form", "closed_form", "closedform":
		return CountClosedForm, nil
	}
	return CountExact, fmt.Errorf("oracle: unknown count strategy %q (want \"exact\" or \"closed-form\")", s)
}

// CountDrawer is an Oracle that can synthesize a Poissonized count vector
// in closed form, without drawing the underlying samples one at a time.
// Only oracles that KNOW their distribution (the alias-table Sampler) can
// implement it; wrappers that reshape the sample stream (Permuted,
// Conditional) and data-backed oracles (Replay, Source adapters) cannot,
// and take the per-draw fallback in DrawCountsWith.
type CountDrawer interface {
	Oracle
	// DrawPoissonCountsClosedForm returns a pooled count vector whose
	// joint distribution is identical to DrawCounts(o, r, mean)'s, while
	// consuming O(k + occupied) randomness instead of one draw per
	// sample. The realized total is folded into Samples() exactly, so
	// budget accounting matches the per-draw path. The caller owns the
	// Counts; Release it once consumed.
	DrawPoissonCountsClosedForm(r *rng.RNG, mean float64) *Counts
}

// EffectiveStrategy resolves the strategy DrawCountsWith will actually
// use for o: CountClosedForm requires the CountDrawer capability, and
// every other oracle falls back to CountExact. Forks preserve the
// capability (a Sampler forks to a Sampler), so a decision made on a
// parent oracle holds for its clones.
func EffectiveStrategy(o Oracle, cs CountStrategy) CountStrategy {
	if cs == CountClosedForm {
		if _, ok := o.(CountDrawer); ok {
			return CountClosedForm
		}
	}
	return CountExact
}

// DrawCountsWith is DrawCounts with an explicit synthesis strategy:
// CountExact is DrawCounts verbatim; CountClosedForm uses the oracle's
// CountDrawer capability when present and falls back to the exact
// per-draw path otherwise (Replay and wrapped oracles). The caller owns
// the returned Counts; Release it once consumed.
func DrawCountsWith(o Oracle, r *rng.RNG, mean float64, cs CountStrategy) *Counts {
	if cs == CountClosedForm {
		if cd, ok := o.(CountDrawer); ok {
			return cd.DrawPoissonCountsClosedForm(r, mean)
		}
	}
	return DrawCounts(o, r, mean)
}

// Sampler samples from a known dist.Distribution using Walker–Vose alias
// tables built over the distribution's constant runs: a k-histogram costs
// O(k) setup and O(1) per draw regardless of n.
type Sampler struct {
	n     int
	r     *rng.RNG
	lo    []int // run bounds
	hi    []int
	alias []int
	prob  []float64
	w     []float64 // normalized run weights (mass_j / total), immutable
	count int64

	// cfTotals is DrawPoissonCountsClosedForm's per-run total scratch:
	// lazily grown, private per sampler instance (forks never share it),
	// so repeated closed-form batches are allocation-free in steady
	// state.
	cfTotals []int
}

var _ Oracle = (*Sampler)(nil)

// NewSampler builds a sampler for d using randomness from r. It panics if
// d has non-positive total mass. The distribution is normalized implicitly:
// sampling probabilities are proportional to d's masses.
func NewSampler(d dist.Distribution, r *rng.RNG) *Sampler {
	n := d.N()
	var lo, hi []int
	var mass []float64
	total := 0.0
	for i := 0; i < n; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		m := d.Prob(i) * float64(end-i)
		lo = append(lo, i)
		hi = append(hi, end)
		mass = append(mass, m)
		total += m
		i = end
	}
	if total <= 0 {
		panic("oracle: sampler over zero-mass distribution")
	}
	s := &Sampler{n: n, r: r, lo: lo, hi: hi}
	s.alias, s.prob = buildAlias(mass, total)
	s.w = make([]float64, len(mass))
	for j, m := range mass {
		s.w[j] = m / total
	}
	return s
}

// buildAlias constructs Walker–Vose alias tables for the normalized weights
// mass/total.
func buildAlias(mass []float64, total float64) (alias []int, prob []float64) {
	k := len(mass)
	alias = make([]int, k)
	prob = make([]float64, k)
	scaled := make([]float64, k)
	small := make([]int, 0, k)
	large := make([]int, 0, k)
	for i, m := range mass {
		scaled[i] = m / total * float64(k)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return alias, prob
}

// N returns the domain size.
func (s *Sampler) N() int { return s.n }

// Draw returns one sample.
func (s *Sampler) Draw() int {
	s.count++
	return s.draw()
}

// draw is the uncounted alias-table draw shared by Draw and the batched
// counting paths.
func (s *Sampler) draw() int {
	j := s.r.Intn(len(s.prob))
	if s.r.Float64() >= s.prob[j] {
		j = s.alias[j]
	}
	if s.hi[j]-s.lo[j] == 1 {
		return s.lo[j]
	}
	return s.lo[j] + s.r.Intn(s.hi[j]-s.lo[j])
}

// DrawPoissonCounts is DrawCounts specialized to the alias-table sampler:
// the Poisson variate comes from r, the draws from the sampler's own
// stream, and the tally loop runs devirtualized. The randomness consumed
// is identical to the generic DrawCounts path. The Counts comes from the
// buffer pool; Release it once consumed.
func (s *Sampler) DrawPoissonCounts(r *rng.RNG, mean float64) *Counts {
	m := r.Poisson(mean)
	c := acquireCountsSized(s.n, m)
	s.count += int64(m)
	for i := 0; i < m; i++ {
		c.bump(s.draw())
	}
	return c
}

// DrawPoissonCountsClosedForm implements CountDrawer: it synthesizes the
// Poissonized count vector directly from the sampler's known run
// structure instead of drawing m alias samples. Poissonization factorizes
// a Poisson(mean) batch into independent per-element counts
// N_i ~ Poisson(mean·p_i) (Section 2 of the paper), so per constant run j
// with weight w_j and width_j elements:
//
//   - sparse runs (expected count t_j = mean·w_j below the width): draw
//     the run total Poisson(mean·w_j) from r — one RNG call — and place
//     each of the t_j samples uniformly, O(t_j) work;
//   - dense runs (t_j >= width_j): draw each element's count
//     Poisson(mean·w_j/width_j) directly, O(width_j) work. This is the
//     exact factorized form of conditionally splitting the run total with
//     sequential Binomials — identical joint law — at O(1) per element
//     (PTRS) instead of the O(log) Beta recursion an exact Binomial
//     costs per split.
//
// Total cost is O(k + Σ_j min(t_j, width_j)) RNG calls versus the exact
// path's O(mean) alias draws. Within-run randomness comes from the
// sampler's own stream (mirroring the exact path's split between r and
// the sampler stream). The realized total — distributed Poisson(mean)
// exactly, as a sum of independent Poissons — is folded into Samples(),
// so budget accounting stays exact. The Counts comes from the buffer
// pool; Release it once consumed.
func (s *Sampler) DrawPoissonCountsClosedForm(r *rng.RNG, mean float64) *Counts {
	// First pass: realize the sparse-run totals (one Poisson call from r
	// per run — the closed form's "k RNG calls") so the Counts backing
	// can be sized on the realized sample size, matching the per-draw
	// path's dense/sparse crossover. Dense runs synthesize per-element
	// counts in the second pass; their expectation stands in for sizing.
	k := len(s.w)
	if cap(s.cfTotals) < k {
		s.cfTotals = make([]int, k)
	}
	totals := s.cfTotals[:k]
	size := 0
	for j := range s.w {
		width := s.hi[j] - s.lo[j]
		t := mean * s.w[j]
		if width > 1 && t >= float64(width) {
			totals[j] = -1 // dense run: materialized per element below
			size += int(t)
			continue
		}
		totals[j] = r.Poisson(t)
		size += totals[j]
	}
	c := acquireCountsSized(s.n, size)
	drawn := 0
	for j, tj := range totals {
		lo, width := s.lo[j], s.hi[j]-s.lo[j]
		if tj < 0 {
			// Dense run: independent per-element Poisson thinning.
			lam := mean * s.w[j] / float64(width)
			for i := 0; i < width; i++ {
				if ci := s.r.Poisson(lam); ci > 0 {
					c.bumpN(lo+i, ci)
					drawn += ci
				}
			}
			continue
		}
		drawn += tj
		if tj == 0 {
			continue
		}
		if width == 1 {
			c.bumpN(lo, tj)
			continue
		}
		// Sparse run: uniform placement of the realized total.
		for i := 0; i < tj; i++ {
			c.bump(lo + s.r.Intn(width))
		}
	}
	s.count += int64(drawn)
	return c
}

// Samples returns how many samples have been drawn.
func (s *Sampler) Samples() int64 { return s.count }

// ResetCount zeroes the sample counter (e.g. between experiment trials).
func (s *Sampler) ResetCount() { s.count = 0 }

// CanFork reports that samplers always clone (the alias tables are
// immutable and shared).
func (s *Sampler) CanFork() bool { return true }

// Fork returns an independent sampler over the same distribution, sharing
// the immutable alias tables (and run weights) but drawing from r with a
// zeroed counter.
func (s *Sampler) Fork(r *rng.RNG) Oracle {
	return &Sampler{n: s.n, r: r, lo: s.lo, hi: s.hi, alias: s.alias, prob: s.prob, w: s.w}
}

// Absorb folds clone draws back into the sampler's counter.
func (s *Sampler) Absorb(drawn int64) { s.count += drawn }

var (
	_ Forker      = (*Sampler)(nil)
	_ CountDrawer = (*Sampler)(nil)
)

// Permuted wraps an oracle, relabelling samples through a fixed
// permutation sigma of the domain — the embedding step of the paper's
// support-size reduction (Section 4.2): the tester sees samples from
// D ∘ σ⁻¹.
type Permuted struct {
	inner Oracle
	sigma []int
}

var _ Oracle = (*Permuted)(nil)

// NewPermuted returns an oracle emitting sigma(x) for each sample x of
// inner. len(sigma) must equal inner.N().
func NewPermuted(inner Oracle, sigma []int) (*Permuted, error) {
	if len(sigma) != inner.N() {
		return nil, fmt.Errorf("oracle: permutation of size %d over domain %d", len(sigma), inner.N())
	}
	return &Permuted{inner: inner, sigma: sigma}, nil
}

// N returns the domain size.
func (p *Permuted) N() int { return p.inner.N() }

// Draw returns sigma(inner.Draw()).
func (p *Permuted) Draw() int { return p.sigma[p.inner.Draw()] }

// Samples returns the inner oracle's count.
func (p *Permuted) Samples() int64 { return p.inner.Samples() }

// CanFork reports whether the inner oracle can clone.
func (p *Permuted) CanFork() bool {
	f, ok := p.inner.(Forker)
	return ok && f.CanFork()
}

// Fork clones the permuted oracle when the inner oracle supports it; the
// clone shares the immutable permutation table.
func (p *Permuted) Fork(r *rng.RNG) Oracle {
	f, ok := p.inner.(Forker)
	if !ok {
		return nil
	}
	c := f.Fork(r)
	if c == nil {
		return nil
	}
	return &Permuted{inner: c, sigma: p.sigma}
}

// Absorb folds clone draws into the inner oracle's counter.
func (p *Permuted) Absorb(drawn int64) {
	if f, ok := p.inner.(Forker); ok {
		f.Absorb(drawn)
	}
}

var _ Forker = (*Permuted)(nil)

// Conditional restricts an oracle to a sub-domain by rejection sampling:
// Draw retries until the inner sample lands in the domain — the
// "conditional sampling" view used when testers reason about D restricted
// to an interval (e.g. the per-interval flatness tests of [ILR12]).
// Samples() counts INNER draws, so budget accounting reflects the true
// cost including rejections.
type Conditional struct {
	inner    Oracle
	domain   *intervals.Domain
	maxRetry int
}

var _ Oracle = (*Conditional)(nil)

// NewConditional wraps inner restricted to domain. maxRetry bounds the
// rejection loop (0 means 1e6); Draw panics if it is exhausted, which
// only happens when the domain carries (near-)zero mass.
func NewConditional(inner Oracle, domain *intervals.Domain, maxRetry int) (*Conditional, error) {
	if domain.N() != inner.N() {
		return nil, fmt.Errorf("oracle: domain universe %d != oracle domain %d", domain.N(), inner.N())
	}
	if domain.Size() == 0 {
		return nil, fmt.Errorf("oracle: conditioning on an empty domain")
	}
	if maxRetry <= 0 {
		maxRetry = 1_000_000
	}
	return &Conditional{inner: inner, domain: domain, maxRetry: maxRetry}, nil
}

// N returns the domain size of the underlying universe.
func (c *Conditional) N() int { return c.inner.N() }

// Draw returns the next inner sample that lands in the domain.
func (c *Conditional) Draw() int {
	for i := 0; i < c.maxRetry; i++ {
		if v := c.inner.Draw(); c.domain.Contains(v) {
			return v
		}
	}
	panic("oracle: conditional rejection budget exhausted (domain mass ~0)")
}

// Samples returns the inner oracle's draw count (including rejections).
func (c *Conditional) Samples() int64 { return c.inner.Samples() }

// CanFork reports whether the inner oracle can clone.
func (c *Conditional) CanFork() bool {
	f, ok := c.inner.(Forker)
	return ok && f.CanFork()
}

// Fork clones the conditional oracle when the inner oracle supports it;
// the clone shares the immutable domain.
func (c *Conditional) Fork(r *rng.RNG) Oracle {
	f, ok := c.inner.(Forker)
	if !ok {
		return nil
	}
	clone := f.Fork(r)
	if clone == nil {
		return nil
	}
	return &Conditional{inner: clone, domain: c.domain, maxRetry: c.maxRetry}
}

// Absorb folds clone draws into the inner oracle's counter.
func (c *Conditional) Absorb(drawn int64) {
	if f, ok := c.inner.(Forker); ok {
		f.Absorb(drawn)
	}
}

var _ Forker = (*Conditional)(nil)

// ErrReplayExhausted is the value Replay.Draw panics with when the
// recording runs out. Callers that run a tester over recorded data (e.g.
// histtest.TestSamples) discriminate on this exact value when recovering,
// so unrelated panics propagate instead of being misreported as a
// too-small dataset.
var ErrReplayExhausted = errors.New("oracle: replay exhausted")

// Replay replays a recorded sequence of samples (e.g. a dataset read from
// disk by the CLI). Draw panics with ErrReplayExhausted when the recording
// is exhausted; callers should check Remaining first.
type Replay struct {
	n     int
	data  []int
	next  int
	count int64
}

var _ Oracle = (*Replay)(nil)

// NewReplay validates that every sample lies in [0, n) and returns a
// replay oracle.
func NewReplay(n int, data []int) (*Replay, error) {
	for i, v := range data {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("oracle: sample %d = %d outside [0,%d)", i, v, n)
		}
	}
	return &Replay{n: n, data: data}, nil
}

// N returns the domain size.
func (rp *Replay) N() int { return rp.n }

// Draw returns the next recorded sample.
func (rp *Replay) Draw() int {
	if rp.next >= len(rp.data) {
		panic(ErrReplayExhausted)
	}
	v := rp.data[rp.next]
	rp.next++
	rp.count++
	return v
}

// Samples returns how many samples have been replayed.
func (rp *Replay) Samples() int64 { return rp.count }

// Remaining returns how many recorded samples are left.
func (rp *Replay) Remaining() int { return len(rp.data) - rp.next }

// denseLimit caps the domain size for which Counts uses the dense
// representation: a []int32 of this length is 16 MiB.
const denseLimit = 1 << 22

// Counts is a per-element occurrence vector over [0, n). Exactly one of
// two backings is live: a dense []int32 (chosen when the sample size is
// comparable to a moderately sized domain — the sieve and final-test hot
// path) or a sparse map (large domains or thin samples). Both expose the
// same API and identical iteration order; NewCounts and DrawCounts choose
// automatically, NewDenseCounts/NewSparseCounts force a backing.
type Counts struct {
	n        int
	dense    []int32
	m        map[int]int
	distinct int // dense-mode distinct tally (sparse mode uses len(m))
	total    int
	released bool // set by Release; guards the double-release panic
}

// useDense reports whether a tally of m samples over [0, n) should use the
// dense backing: the domain must be modest, and the O(n) allocate/clear/walk
// cost of the dense path must not swamp the O(m) tally work.
//
// The m >= n/64 crossover is empirical — see BenchmarkDenseSparseCrossover
// (densebench_test.go). At n ∈ {2¹⁶, 2²⁰} the dense path wins at every
// ratio down to m = n/64 (1.5× there, 8–12× at m = n), because the sparse
// map pays ~80 ns per insert plus a sort in ForEach, while the dense side
// pays ~0.7 ns per domain element to clear and walk; extrapolating those
// slopes puts the true break-even near m ≈ n/100. n/64 is the thinnest
// measured point, kept with margin for cache-hostile domains.
func useDense(n, m int) bool {
	return n <= denseLimit && m >= n/64
}

// newCountsSized returns an empty Counts with the backing chosen for m
// samples over [0, n).
func newCountsSized(n, m int) *Counts {
	if useDense(n, m) {
		return &Counts{n: n, dense: make([]int32, n)}
	}
	return &Counts{n: n, m: make(map[int]int, m)}
}

// bump tallies one in-range sample. It is the single maintenance point
// for the dense/sparse backing, the distinct tally, and the running
// total — every counting path (the generic per-draw loop, the sampler's
// devirtualized loop, and the closed-form synthesizer) funnels through
// bump/bumpN, so the two backings cannot drift apart. Callers must
// guarantee v ∈ [0, n); add wraps bump with the bounds check for
// arbitrary-oracle inputs.
func (c *Counts) bump(v int) {
	if c.dense != nil {
		if c.dense[v] == 0 {
			c.distinct++
		}
		c.dense[v]++
	} else {
		c.m[v]++
	}
	c.total++
}

// bumpN tallies k occurrences of the in-range element v at once (the
// closed-form synthesizer's run totals and dense per-element counts).
//
// The dense backing accumulates into an int32, and bumpN is the one
// path that can plausibly reach its ceiling: a closed-form synthesis of
// a heavy single-element run near the MaxSamples budget (~2³¹) lands
// the whole batch on one element in a single call. Overflow must panic
// rather than wrap — a wrapped count silently corrupts every statistic
// downstream. (The per-draw bump path cannot realistically get there:
// it would need 2³¹ individual draws onto one element, which the budget
// guard makes a multi-hour run, and guarding it would tax every sample.)
func (c *Counts) bumpN(v, k int) {
	if c.dense != nil {
		if c.dense[v] == 0 {
			c.distinct++
		}
		nv := int64(c.dense[v]) + int64(k)
		if nv > math.MaxInt32 {
			panic(fmt.Sprintf("oracle: count of element %d overflows the dense int32 backing (%d + %d > %d)",
				v, c.dense[v], k, math.MaxInt32))
		}
		c.dense[v] = int32(nv)
	} else {
		c.m[v] += k
	}
	c.total += k
}

// add tallies one sample, panicking on out-of-range values (arbitrary
// Source-backed oracles can emit anything).
func (c *Counts) add(v int) {
	if v < 0 || v >= c.n {
		panic(fmt.Sprintf("oracle: sample %d outside [0,%d)", v, c.n))
	}
	c.bump(v)
}

// NewCounts tallies the occurrence of each element in samples, choosing
// the dense or sparse backing by domain and sample size.
func NewCounts(n int, samples []int) *Counts {
	c := newCountsSized(n, len(samples))
	for _, s := range samples {
		c.add(s)
	}
	return c
}

// NewDenseCounts tallies samples into a dense []int32 backing regardless
// of the size heuristic (tests and benchmarks; n must be modest).
func NewDenseCounts(n int, samples []int) *Counts {
	c := &Counts{n: n, dense: make([]int32, n)}
	for _, s := range samples {
		c.add(s)
	}
	return c
}

// NewSparseCounts tallies samples into a map backing regardless of the
// size heuristic.
func NewSparseCounts(n int, samples []int) *Counts {
	c := &Counts{n: n, m: make(map[int]int, len(samples))}
	for _, s := range samples {
		c.add(s)
	}
	return c
}

// N returns the domain size.
func (c *Counts) N() int { return c.n }

// Total returns the number of samples tallied.
func (c *Counts) Total() int { return c.total }

// Dense reports whether the counts use the dense backing.
func (c *Counts) Dense() bool { return c.dense != nil }

// Of returns the occurrence count of element i.
func (c *Counts) Of(i int) int {
	if c.dense != nil {
		if i < 0 || i >= c.n {
			return 0
		}
		return int(c.dense[i])
	}
	return c.m[i]
}

// Distinct returns the number of distinct elements observed.
func (c *Counts) Distinct() int {
	if c.dense != nil {
		return c.distinct
	}
	return len(c.m)
}

// ForEach calls f for every observed element (ascending order) with its
// count.
func (c *Counts) ForEach(f func(elem, count int)) {
	if c.dense != nil {
		for i, v := range c.dense {
			if v != 0 {
				f(i, int(v))
			}
		}
		return
	}
	keys := make([]int, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		f(k, c.m[k])
	}
}

// InRange returns the number of samples that fell in [lo, hi).
func (c *Counts) InRange(lo, hi int) int {
	total := 0
	if c.dense != nil {
		if lo < 0 {
			lo = 0
		}
		if hi > c.n {
			hi = c.n
		}
		for i := lo; i < hi; i++ {
			total += int(c.dense[i])
		}
		return total
	}
	// Iterate the map: cheaper than sorting when called rarely; callers
	// needing many range queries should use Empirical instead.
	for k, v := range c.m {
		if k >= lo && k < hi {
			total += v
		}
	}
	return total
}

// Empirical returns the empirical distribution of the counts as a Dense
// distribution (mass count/total per element). It panics if no samples
// were tallied.
func (c *Counts) Empirical() *dist.Dense {
	if c.total == 0 {
		panic("oracle: empirical distribution of zero samples")
	}
	p := make([]float64, c.n)
	c.ForEach(func(i, v int) {
		p[i] = float64(v) / float64(c.total)
	})
	return dist.MustDense(p)
}

// Fingerprint returns the collision fingerprint of the counts: fp[j] is
// the number of distinct elements that appeared exactly j times (j >= 1).
// Symmetric-property testers (uniqueness/collision statistics) consume
// exactly this.
func (c *Counts) Fingerprint() map[int]int {
	fp := make(map[int]int)
	c.ForEach(func(_, v int) {
		fp[v]++
	})
	return fp
}

// PairCollisions returns the number of unordered sample pairs that
// collided: Σ_i C(count_i, 2).
func (c *Counts) PairCollisions() int64 {
	var total int64
	c.ForEach(func(_, v int) {
		total += int64(v) * int64(v-1) / 2
	})
	return total
}
