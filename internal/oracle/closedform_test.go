package oracle

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/rng"
)

// mixedHistogram is the closed-form test workload: a 4-histogram over
// [0, 64) mixing a singleton run, a narrow run, and two wide runs, so a
// single mean exercises the singleton, sparse, and dense synthesis paths
// at once (at mean=100: t = 30 on width 1, 20 on width 7 — dense,
// 25 on width 24 — sparse, 25 on width 32 — sparse).
func mixedHistogram() *dist.PiecewiseConstant {
	iv := func(lo, hi int) intervals.Interval { return intervals.Interval{Lo: lo, Hi: hi} }
	return dist.MustPiecewiseConstant(64, []dist.Piece{
		{Iv: iv(0, 1), Mass: 0.30},
		{Iv: iv(1, 8), Mass: 0.20},
		{Iv: iv(8, 32), Mass: 0.25},
		{Iv: iv(32, 64), Mass: 0.25},
	})
}

func TestParseCountStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CountStrategy
	}{
		{"", CountExact},
		{"exact", CountExact},
		{"closed-form", CountClosedForm},
		{"closed_form", CountClosedForm},
		{"closedform", CountClosedForm},
	} {
		got, err := ParseCountStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCountStrategy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseCountStrategy("fast"); err == nil {
		t.Error("ParseCountStrategy(\"fast\") should fail")
	}
	if CountExact.String() != "exact" || CountClosedForm.String() != "closed-form" {
		t.Errorf("String round-trip: %q, %q", CountExact, CountClosedForm)
	}
}

func TestEffectiveStrategy(t *testing.T) {
	s := NewSampler(mixedHistogram(), rng.New(1))
	if got := EffectiveStrategy(s, CountClosedForm); got != CountClosedForm {
		t.Errorf("Sampler closed-form: %v", got)
	}
	if got := EffectiveStrategy(s, CountExact); got != CountExact {
		t.Errorf("Sampler exact: %v", got)
	}
	// A fork keeps the capability: the resolution core.Test makes once on
	// the parent must hold for every replicate clone.
	if got := EffectiveStrategy(s.Fork(rng.New(2)), CountClosedForm); got != CountClosedForm {
		t.Errorf("forked Sampler closed-form: %v", got)
	}
	rep, err := NewReplay(4, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := EffectiveStrategy(rep, CountClosedForm); got != CountExact {
		t.Errorf("Replay must fall back to exact, got %v", got)
	}
	sigma := make([]int, 64)
	for i := range sigma {
		sigma[i] = 63 - i
	}
	perm, err := NewPermuted(s, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if got := EffectiveStrategy(perm, CountClosedForm); got != CountExact {
		t.Errorf("Permuted must fall back to exact, got %v", got)
	}
}

// TestDrawCountsWithExactIsBitIdentical pins the zero-value contract:
// DrawCountsWith at CountExact consumes exactly DrawCounts' randomness
// and yields identical counts, on known samplers and replay oracles
// alike — the guarantee that keeps every historical stream untouched.
func TestDrawCountsWithExactIsBitIdentical(t *testing.T) {
	run := func(o Oracle, r *rng.RNG) []int {
		c := DrawCountsWith(o, r, 200, CountExact)
		defer c.Release()
		out := make([]int, o.N())
		for i := range out {
			out[i] = c.Of(i)
		}
		return out
	}
	a := run(NewSampler(mixedHistogram(), rng.New(7)), rng.New(8))
	bs := NewSampler(mixedHistogram(), rng.New(7))
	br := rng.New(8)
	b := func() []int {
		c := DrawCounts(bs, br, 200)
		defer c.Release()
		out := make([]int, 64)
		for i := range out {
			out[i] = c.Of(i)
		}
		return out
	}()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bin %d: exact strategy %d, DrawCounts %d", i, a[i], b[i])
		}
	}
}

// TestDrawCountsWithReplayFallback: asking a replay oracle for closed
// form silently takes the per-draw path and consumes the dataset in
// order — samples are data, not randomness.
func TestDrawCountsWithReplayFallback(t *testing.T) {
	data := make([]int, 4000)
	for i := range data {
		data[i] = i % 5
	}
	rep, err := NewReplay(5, data)
	if err != nil {
		t.Fatal(err)
	}
	c := DrawCountsWith(rep, rng.New(9), 100, CountClosedForm)
	defer c.Release()
	if c.Total() == 0 || int64(c.Total()) != rep.Samples() {
		t.Fatalf("replay fallback: %d tallied, %d drawn", c.Total(), rep.Samples())
	}
}

// TestClosedFormBudgetAccounting pins the Samples() contract: every
// closed-form batch folds its realized total into the counter exactly,
// matching the tally, across a mean sweep covering singleton-only,
// sparse, mixed, and fully dense regimes.
func TestClosedFormBudgetAccounting(t *testing.T) {
	s := NewSampler(mixedHistogram(), rng.New(11))
	r := rng.New(12)
	var want int64
	for _, mean := range []float64{0.5, 3, 20, 100, 1000, 20000} {
		for i := 0; i < 10; i++ {
			c := s.DrawPoissonCountsClosedForm(r, mean)
			want += int64(c.Total())
			if s.Samples() != want {
				t.Fatalf("mean %v: Samples() = %d, want %d", mean, s.Samples(), want)
			}
			c.Release()
		}
	}
}

// TestClosedFormTotalIsPoisson: the realized batch total is Poisson(mean)
// exactly (a sum of independent Poissons over the runs), checked by
// moments at fixed seed.
func TestClosedFormTotalIsPoisson(t *testing.T) {
	s := NewSampler(mixedHistogram(), rng.New(13))
	r := rng.New(14)
	const mean = 100.0
	const reps = 4000
	var sum, sumsq float64
	for i := 0; i < reps; i++ {
		c := s.DrawPoissonCountsClosedForm(r, mean)
		x := float64(c.Total())
		sum += x
		sumsq += x * x
		c.Release()
	}
	m := sum / reps
	v := sumsq/reps - m*m
	if math.Abs(m-mean) > 5*math.Sqrt(mean/reps) {
		t.Errorf("total mean %v, want %v", m, mean)
	}
	if math.Abs(v-mean) > 0.15*mean {
		t.Errorf("total variance %v, want %v", v, mean)
	}
}

// TestClosedFormMarginalsChiSquare is the fixed-seed χ² goodness-of-fit
// pin of the per-bin marginals: counts aggregated over R closed-form
// batches are Poisson(R·mean·p_i) per bin, so the standardized squared
// deviations summed over the domain follow χ²₆₄. The threshold is the
// 5σ tail of χ²₆₄ — at a fixed seed this either passes forever or marks
// a real distributional break.
func TestClosedFormMarginalsChiSquare(t *testing.T) {
	d := mixedHistogram()
	s := NewSampler(d, rng.New(17))
	r := rng.New(18)
	const mean = 100.0
	const reps = 500
	agg := make([]float64, 64)
	for i := 0; i < reps; i++ {
		c := s.DrawPoissonCountsClosedForm(r, mean)
		for b := 0; b < 64; b++ {
			agg[b] += float64(c.Of(b))
		}
		c.Release()
	}
	x2 := 0.0
	for b := 0; b < 64; b++ {
		e := reps * mean * d.Prob(b)
		x2 += (agg[b] - e) * (agg[b] - e) / e
	}
	// χ²₆₄: mean 64, variance 128; 64 + 5√128 ≈ 121.
	if limit := 64 + 5*math.Sqrt(128); x2 > limit {
		t.Fatalf("marginal χ² = %.1f over 64 bins, limit %.1f", x2, limit)
	}
}

// TestClosedFormMatchesExactHomogeneity is the two-sample equivalence
// pin: per-bin aggregates from R exact batches and R closed-form batches
// (independent streams, same Poisson(R·mean·p_i) law) must pass a χ²
// homogeneity test. A bias in either synthesis path — a run placed off
// by one, a weight normalized wrong, a dense/sparse boundary dropping
// mass — shows up as a hard failure here.
func TestClosedFormMatchesExactHomogeneity(t *testing.T) {
	const mean = 100.0
	const reps = 500
	aggregate := func(seedS, seedR uint64, cs CountStrategy) []float64 {
		s := NewSampler(mixedHistogram(), rng.New(seedS))
		r := rng.New(seedR)
		agg := make([]float64, 64)
		for i := 0; i < reps; i++ {
			c := DrawCountsWith(s, r, mean, cs)
			for b := 0; b < 64; b++ {
				agg[b] += float64(c.Of(b))
			}
			c.Release()
		}
		return agg
	}
	ex := aggregate(19, 20, CountExact)
	cf := aggregate(21, 22, CountClosedForm)
	x2 := 0.0
	for b := 0; b < 64; b++ {
		if ex[b]+cf[b] == 0 {
			continue
		}
		diff := ex[b] - cf[b]
		x2 += diff * diff / (ex[b] + cf[b])
	}
	if limit := 64 + 5*math.Sqrt(128); x2 > limit {
		t.Fatalf("homogeneity χ² = %.1f over 64 bins, limit %.1f", x2, limit)
	}
}

// TestClosedFormRunTotalMoments checks each run's aggregated total
// against its Poisson(mean·w_j) law — mean and variance — covering the
// dense per-element thinning (whose run total is the sum of the
// per-element Poissons) and the sparse single-Poisson path.
func TestClosedFormRunTotalMoments(t *testing.T) {
	d := mixedHistogram()
	s := NewSampler(d, rng.New(23))
	r := rng.New(24)
	const mean = 100.0
	const reps = 3000
	bounds := [][2]int{{0, 1}, {1, 8}, {8, 32}, {32, 64}}
	weights := []float64{0.30, 0.20, 0.25, 0.25}
	sums := make([]float64, 4)
	sumsqs := make([]float64, 4)
	for i := 0; i < reps; i++ {
		c := s.DrawPoissonCountsClosedForm(r, mean)
		for j, b := range bounds {
			total := 0.0
			for x := b[0]; x < b[1]; x++ {
				total += float64(c.Of(x))
			}
			sums[j] += total
			sumsqs[j] += total * total
		}
		c.Release()
	}
	for j, w := range weights {
		tj := mean * w
		m := sums[j] / reps
		v := sumsqs[j]/reps - m*m
		if math.Abs(m-tj) > 5*math.Sqrt(tj/reps) {
			t.Errorf("run %d: total mean %v, want %v", j, m, tj)
		}
		if math.Abs(v-tj) > 0.2*tj {
			t.Errorf("run %d: total variance %v, want %v", j, v, tj)
		}
	}
}

// TestClosedFormBackingPaths: the pooled Counts backing picks the same
// dense/sparse crossover as the per-draw path — dense at sample sizes
// comparable to the domain, sparse far below it — and distinct/total
// bookkeeping stays consistent on both.
func TestClosedFormBackingPaths(t *testing.T) {
	s := NewSampler(mixedHistogram(), rng.New(29))
	r := rng.New(30)
	dense := s.DrawPoissonCountsClosedForm(r, 5000)
	if !dense.Dense() {
		t.Error("mean 50×n should use the dense backing")
	}
	sparse := s.DrawPoissonCountsClosedForm(r, 0.25)
	if sparse.Dense() {
		t.Error("mean ≪ n/64 should use the sparse backing")
	}
	for _, c := range []*Counts{dense, sparse} {
		total, distinct := 0, 0
		for b := 0; b < 64; b++ {
			if v := c.Of(b); v > 0 {
				total += v
				distinct++
			}
		}
		if total != c.Total() || distinct != c.Distinct() {
			t.Errorf("bookkeeping: summed %d/%d, reported %d/%d",
				total, distinct, c.Total(), c.Distinct())
		}
		c.Release()
	}
}

// TestClosedFormForkIsolation: forks share the immutable tables but not
// the synthesis scratch — interleaved closed-form batches on a parent
// and its clone stay well-formed and account independently.
func TestClosedFormForkIsolation(t *testing.T) {
	parent := NewSampler(mixedHistogram(), rng.New(31))
	clone := parent.Fork(rng.New(32)).(*Sampler)
	r1, r2 := rng.New(33), rng.New(34)
	for i := 0; i < 50; i++ {
		a := parent.DrawPoissonCountsClosedForm(r1, 100)
		b := clone.DrawPoissonCountsClosedForm(r2, 3)
		if a.Total() < 0 || b.Total() < 0 {
			t.Fatal("impossible")
		}
		a.Release()
		b.Release()
	}
	if parent.Samples() == 0 || clone.Samples() == 0 {
		t.Fatal("both lineages should have drawn")
	}
	parentDrawn := parent.Samples()
	parent.Absorb(clone.Samples())
	if parent.Samples() != parentDrawn+clone.Samples() {
		t.Fatal("Absorb lost clone draws")
	}
}

// TestClosedFormSingletonDomain: a domain of isolated singleton runs
// (every width 1) takes the run-total path exclusively and must still
// reproduce the marginals.
func TestClosedFormSingletonDomain(t *testing.T) {
	d := dist.MustDense([]float64{0.1, 0.4, 0.2, 0.3})
	s := NewSampler(d, rng.New(37))
	r := rng.New(38)
	const mean = 50.0
	const reps = 2000
	agg := make([]float64, 4)
	for i := 0; i < reps; i++ {
		c := s.DrawPoissonCountsClosedForm(r, mean)
		for b := 0; b < 4; b++ {
			agg[b] += float64(c.Of(b))
		}
		c.Release()
	}
	for b := 0; b < 4; b++ {
		e := reps * mean * d.Prob(b)
		if math.Abs(agg[b]-e) > 5*math.Sqrt(e) {
			t.Errorf("singleton bin %d: %v, want %v", b, agg[b], e)
		}
	}
}
