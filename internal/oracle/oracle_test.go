package oracle

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/rng"
)

func TestSamplerMatchesDistribution(t *testing.T) {
	r := rng.New(1)
	d := dist.MustDense([]float64{0.1, 0.2, 0.3, 0.4})
	s := NewSampler(d, r)
	const m = 200000
	counts := NewCounts(4, DrawN(s, m))
	for i := 0; i < 4; i++ {
		got := float64(counts.Of(i)) / m
		want := d.Prob(i)
		if math.Abs(got-want) > 5*math.Sqrt(want/m) {
			t.Fatalf("element %d frequency %v, want %v", i, got, want)
		}
	}
	if s.Samples() != m {
		t.Fatalf("Samples = %d", s.Samples())
	}
}

func TestSamplerPiecewiseConstant(t *testing.T) {
	r := rng.New(2)
	// 3-histogram over a large domain: alias table has 3 entries.
	iv := func(lo, hi int) intervals.Interval { return intervals.Interval{Lo: lo, Hi: hi} }
	d := dist.MustPiecewiseConstant(1<<16, []dist.Piece{
		{Iv: iv(0, 1<<14), Mass: 0.5},
		{Iv: iv(1<<14, 1<<15), Mass: 0.25},
		{Iv: iv(1<<15, 1<<16), Mass: 0.25},
	})
	s := NewSampler(d, r)
	const m = 100000
	samples := DrawN(s, m)
	var inFirst int
	for _, x := range samples {
		if x < 0 || x >= 1<<16 {
			t.Fatalf("sample %d out of domain", x)
		}
		if x < 1<<14 {
			inFirst++
		}
	}
	got := float64(inFirst) / m
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("first-piece frequency %v, want 0.5", got)
	}
}

func TestSamplerZeroMassElementsNeverDrawn(t *testing.T) {
	r := rng.New(3)
	d := dist.MustDense([]float64{0, 1, 0})
	s := NewSampler(d, r)
	for i := 0; i < 10000; i++ {
		if got := s.Draw(); got != 1 {
			t.Fatalf("drew zero-mass element %d", got)
		}
	}
}

func TestSamplerUniformWithinPiece(t *testing.T) {
	r := rng.New(4)
	d := dist.Uniform(10)
	s := NewSampler(d, r)
	const m = 100000
	counts := NewCounts(10, DrawN(s, m))
	for i := 0; i < 10; i++ {
		got := float64(counts.Of(i)) / m
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("element %d frequency %v", i, got)
		}
	}
}

func TestSamplerPanicsOnZeroMass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-mass sampler did not panic")
		}
	}()
	NewSampler(dist.MustDense([]float64{0, 0}), rng.New(1))
}

func TestResetCount(t *testing.T) {
	s := NewSampler(dist.Uniform(4), rng.New(5))
	DrawN(s, 10)
	s.ResetCount()
	if s.Samples() != 0 {
		t.Fatal("ResetCount did not zero")
	}
}

func TestDrawPoisson(t *testing.T) {
	r := rng.New(6)
	s := NewSampler(dist.Uniform(8), r)
	const mean = 500.0
	var total float64
	const reps = 200
	for i := 0; i < reps; i++ {
		total += float64(len(DrawPoisson(s, r, mean)))
	}
	avg := total / reps
	if math.Abs(avg-mean) > 4*math.Sqrt(mean/reps) {
		t.Fatalf("Poissonized batch size mean %v, want %v", avg, mean)
	}
}

func TestPermutedOracle(t *testing.T) {
	r := rng.New(7)
	d := dist.PointMass(5, 2)
	s := NewSampler(d, r)
	sigma := []int{4, 3, 0, 1, 2} // sends 2 -> 0
	p, err := NewPermuted(s, sigma)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := p.Draw(); got != 0 {
			t.Fatalf("permuted draw = %d, want 0", got)
		}
	}
	if p.Samples() != 100 {
		t.Fatalf("Samples = %d", p.Samples())
	}
	if _, err := NewPermuted(s, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
}

func TestReplay(t *testing.T) {
	rp, err := NewReplay(5, []int{0, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Remaining() != 3 {
		t.Fatalf("Remaining = %d", rp.Remaining())
	}
	want := []int{0, 4, 2}
	for i, w := range want {
		if got := rp.Draw(); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
	if rp.Remaining() != 0 || rp.Samples() != 3 {
		t.Fatal("replay accounting wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("exhausted replay did not panic")
			}
		}()
		rp.Draw()
	}()
	if _, err := NewReplay(3, []int{0, 3}); err == nil {
		t.Fatal("out-of-range sample accepted")
	}
}

func TestCounts(t *testing.T) {
	c := NewCounts(10, []int{1, 1, 3, 7, 7, 7})
	if c.Total() != 6 || c.Distinct() != 3 {
		t.Fatalf("total=%d distinct=%d", c.Total(), c.Distinct())
	}
	if c.Of(1) != 2 || c.Of(7) != 3 || c.Of(0) != 0 {
		t.Fatal("Of wrong")
	}
	if c.InRange(0, 5) != 3 {
		t.Fatalf("InRange = %d", c.InRange(0, 5))
	}
	var visited []int
	c.ForEach(func(e, n int) { visited = append(visited, e) })
	if len(visited) != 3 || visited[0] != 1 || visited[2] != 7 {
		t.Fatalf("ForEach order: %v", visited)
	}
}

func TestFingerprint(t *testing.T) {
	c := NewCounts(10, []int{1, 1, 3, 7, 7, 7})
	fp := c.Fingerprint()
	if fp[1] != 1 || fp[2] != 1 || fp[3] != 1 {
		t.Fatalf("fingerprint = %v", fp)
	}
	if c.PairCollisions() != 1+3 {
		t.Fatalf("collisions = %d", c.PairCollisions())
	}
}

func TestEmpirical(t *testing.T) {
	c := NewCounts(4, []int{0, 0, 1, 2})
	e := c.Empirical()
	if math.Abs(e.Prob(0)-0.5) > 1e-12 || math.Abs(e.Prob(3)) > 1e-12 {
		t.Fatal("empirical wrong")
	}
	if math.Abs(dist.TotalMass(e)-1) > 1e-12 {
		t.Fatal("empirical mass != 1")
	}
}

func TestCountsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range count did not panic")
		}
	}()
	NewCounts(3, []int{3})
}

func BenchmarkSamplerDrawDense(b *testing.B) {
	r := rng.New(1)
	p := make([]float64, 1<<16)
	for i := range p {
		p[i] = 1
	}
	s := NewSampler(dist.MustDense(p), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Draw()
	}
}

func BenchmarkSamplerDrawHistogram(b *testing.B) {
	r := rng.New(1)
	s := NewSampler(dist.Uniform(1<<20), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Draw()
	}
}

func TestConditionalOracle(t *testing.T) {
	r := rng.New(30)
	d := dist.Uniform(100)
	inner := NewSampler(d, r)
	g := intervals.NewDomain(100, []intervals.Interval{{Lo: 10, Hi: 20}, {Lo: 50, Hi: 60}})
	c, err := NewConditional(inner, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		v := c.Draw()
		if !g.Contains(v) {
			t.Fatalf("conditional draw %d outside domain", v)
		}
	}
	// Samples counts inner draws: with domain mass 0.2, about 5× the
	// accepted count.
	ratio := float64(c.Samples()) / 2000
	if ratio < 3 || ratio > 8 {
		t.Fatalf("rejection accounting ratio = %v, want ~5", ratio)
	}
	if _, err := NewConditional(inner, intervals.EmptyDomain(100), 0); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := NewConditional(inner, intervals.FullDomain(99), 0); err == nil {
		t.Fatal("mismatched universe accepted")
	}
}

func TestConditionalExhaustsRetries(t *testing.T) {
	r := rng.New(31)
	d := dist.PointMass(100, 5) // all mass outside the domain below
	inner := NewSampler(d, r)
	g := intervals.NewDomain(100, []intervals.Interval{{Lo: 50, Hi: 60}})
	c, err := NewConditional(inner, g, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-mass domain")
		}
	}()
	c.Draw()
}
