package oracle

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// BenchmarkDenseSparseCrossover pins the empirical crossover behind
// useDense: at a fixed domain size n it tallies m samples and walks the
// result with ForEach — the exact access pattern of the sieve and the
// Laplace learner — once forced dense and once forced sparse, across
// sample/domain ratios m = n/64 .. n. Run with
//
//	go test -run=NONE -bench=DenseSparseCrossover -benchmem ./internal/oracle/
//
// to re-derive the threshold documented at useDense.
func BenchmarkDenseSparseCrossover(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		// Uniform draws give the sparse map its best case (maximal
		// distinct-element churn happens near m ≈ n, its worst case is
		// covered by the ratio sweep).
		r := rng.New(7)
		all := make([]int, n)
		for i := range all {
			all[i] = r.Intn(n)
		}
		for _, div := range []int{64, 32, 16, 8, 4, 1} {
			m := n / div
			samples := all[:m]
			for _, mode := range []struct {
				name string
				mk   func(n int, samples []int) *Counts
			}{
				{"dense", NewDenseCounts},
				{"sparse", NewSparseCounts},
			} {
				b.Run(fmt.Sprintf("n=%d/m=n÷%d/%s", n, div, mode.name), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						c := mode.mk(n, samples)
						sum := 0
						c.ForEach(func(_, ni int) { sum += ni })
						if sum != m {
							b.Fatalf("tally mismatch: %d != %d", sum, m)
						}
					}
				})
			}
		}
	}
}
