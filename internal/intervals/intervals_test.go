package intervals

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 3 {
		t.Fatalf("Len = %d", iv.Len())
	}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	for i := 2; i < 5; i++ {
		if !iv.Contains(i) {
			t.Fatalf("should contain %d", i)
		}
	}
	if iv.Contains(1) || iv.Contains(5) {
		t.Fatal("contains out-of-range element")
	}
	if (Interval{3, 3}).Empty() != true {
		t.Fatal("empty interval not empty")
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct{ a, b, want Interval }{
		{Interval{0, 5}, Interval{3, 8}, Interval{3, 5}},
		{Interval{0, 5}, Interval{5, 8}, Interval{5, 5}},
		{Interval{0, 2}, Interval{4, 8}, Interval{4, 4}},
		{Interval{0, 10}, Interval{2, 4}, Interval{2, 4}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Empty() != c.want.Empty() || (!got.Empty() && got != c.want) {
			t.Fatalf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition(10, []Interval{{0, 5}, {5, 10}}); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	bad := [][]Interval{
		{{0, 5}, {6, 10}},         // gap
		{{0, 5}, {4, 10}},         // overlap
		{{1, 10}},                 // does not start at 0
		{{0, 5}, {5, 9}},          // does not end at n
		{{0, 5}, {5, 5}, {5, 10}}, // empty interval
		{},                        // empty list
	}
	for i, ivs := range bad {
		if _, err := NewPartition(10, ivs); err == nil {
			t.Fatalf("bad partition %d accepted: %v", i, ivs)
		}
	}
	if _, err := NewPartition(0, []Interval{{0, 0}}); err == nil {
		t.Fatal("zero-size domain accepted")
	}
}

func TestFromBoundaries(t *testing.T) {
	p := FromBoundaries(10, []int{3, 7, 3, 0, 10, -1, 12})
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3", p.Count())
	}
	want := []Interval{{0, 3}, {3, 7}, {7, 10}}
	for j, iv := range p.Intervals() {
		if iv != want[j] {
			t.Fatalf("interval %d = %v, want %v", j, iv, want[j])
		}
	}
	whole := FromBoundaries(5, nil)
	if whole.Count() != 1 || whole.Interval(0) != (Interval{0, 5}) {
		t.Fatalf("FromBoundaries with no cuts: %v", whole)
	}
}

func TestSingletonsAndWhole(t *testing.T) {
	s := Singletons(4)
	if s.Count() != 4 {
		t.Fatalf("Singletons count = %d", s.Count())
	}
	for i := 0; i < 4; i++ {
		if s.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, s.Find(i))
		}
	}
	w := Whole(4)
	if w.Count() != 1 {
		t.Fatal("Whole should have one interval")
	}
}

func TestEquiWidth(t *testing.T) {
	p := EquiWidth(10, 3)
	total := 0
	for _, iv := range p.Intervals() {
		total += iv.Len()
		if iv.Len() < 3 || iv.Len() > 4 {
			t.Fatalf("uneven interval %v", iv)
		}
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	if EquiWidth(7, 7).Count() != 7 {
		t.Fatal("EquiWidth(n,n) should be singletons")
	}
}

func TestFindProperty(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(200)
		cuts := make([]int, r.Intn(10))
		for i := range cuts {
			cuts[i] = 1 + r.Intn(n)
		}
		p := FromBoundaries(n, cuts)
		for i := 0; i < n; i++ {
			j := p.Find(i)
			if !p.Interval(j).Contains(i) {
				t.Fatalf("Find(%d) = %d, interval %v", i, j, p.Interval(j))
			}
		}
	}
}

func TestFindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Find out of range did not panic")
		}
	}()
	Whole(5).Find(5)
}

func TestRefine(t *testing.T) {
	p := FromBoundaries(12, []int{4, 8})
	q := FromBoundaries(12, []int{6})
	ref, err := p.Refine(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []Interval{{0, 4}, {4, 6}, {6, 8}, {8, 12}}
	got := ref.Intervals()
	if len(got) != len(want) {
		t.Fatalf("refine gave %v", got)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("refine interval %d = %v, want %v", j, got[j], want[j])
		}
	}
	if _, err := p.Refine(FromBoundaries(10, nil)); err == nil {
		t.Fatal("mismatched-domain refine accepted")
	}
}

func TestBoundariesRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		cuts := make([]int, r.Intn(8))
		for i := range cuts {
			cuts[i] = 1 + r.Intn(n-1)
		}
		p := FromBoundaries(n, cuts)
		q := FromBoundaries(n, p.Boundaries())
		if p.Count() != q.Count() {
			return false
		}
		for j := 0; j < p.Count(); j++ {
			if p.Interval(j) != q.Interval(j) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDomainNormalization(t *testing.T) {
	d := NewDomain(20, []Interval{{5, 8}, {0, 3}, {7, 10}, {15, 15}, {12, 13}, {-2, 1}, {18, 25}})
	want := []Interval{{0, 3}, {5, 10}, {12, 13}, {18, 20}}
	got := d.Intervals()
	if len(got) != len(want) {
		t.Fatalf("domain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("piece %d = %v, want %v", i, got[i], want[i])
		}
	}
	if d.Size() != 3+5+1+2 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestDomainAdjacentMerge(t *testing.T) {
	d := NewDomain(10, []Interval{{0, 3}, {3, 6}})
	if len(d.Intervals()) != 1 {
		t.Fatalf("adjacent intervals not merged: %v", d.Intervals())
	}
}

func TestDomainContains(t *testing.T) {
	d := NewDomain(20, []Interval{{2, 5}, {10, 12}})
	for i := 0; i < 20; i++ {
		want := (i >= 2 && i < 5) || (i >= 10 && i < 12)
		if d.Contains(i) != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, d.Contains(i), want)
		}
	}
}

func TestDomainComplement(t *testing.T) {
	d := NewDomain(10, []Interval{{2, 4}, {7, 9}})
	c := d.Complement()
	for i := 0; i < 10; i++ {
		if d.Contains(i) == c.Contains(i) {
			t.Fatalf("element %d in both or neither", i)
		}
	}
	if got := FullDomain(5).Complement().Size(); got != 0 {
		t.Fatalf("complement of full has size %d", got)
	}
	if got := EmptyDomain(5).Complement().Size(); got != 5 {
		t.Fatalf("complement of empty has size %d", got)
	}
}

func TestDomainIntersectMinus(t *testing.T) {
	a := NewDomain(20, []Interval{{0, 10}})
	b := NewDomain(20, []Interval{{5, 15}})
	inter := a.Intersect(b)
	if inter.Size() != 5 || !inter.Contains(5) || inter.Contains(10) {
		t.Fatalf("intersect wrong: %v", inter.Intervals())
	}
	minus := a.Minus(b)
	if minus.Size() != 5 || !minus.Contains(0) || minus.Contains(5) {
		t.Fatalf("minus wrong: %v", minus.Intervals())
	}
}

func TestDomainSetLaws(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(50)
		mk := func() *Domain {
			ivs := make([]Interval, r.Intn(5))
			for i := range ivs {
				lo := r.Intn(n)
				ivs[i] = Interval{lo, lo + 1 + r.Intn(n-lo)}
			}
			return NewDomain(n, ivs)
		}
		a, b := mk(), mk()
		inter := a.Intersect(b)
		minus := a.Minus(b)
		for i := 0; i < n; i++ {
			if inter.Contains(i) != (a.Contains(i) && b.Contains(i)) {
				return false
			}
			if minus.Contains(i) != (a.Contains(i) && !b.Contains(i)) {
				return false
			}
			if a.Complement().Contains(i) == a.Contains(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFromPartitionSubset(t *testing.T) {
	p := FromBoundaries(12, []int{3, 6, 9})
	d := FromPartitionSubset(p, []bool{true, false, true, true})
	// Intervals 2 and 3 are adjacent so they merge.
	want := []Interval{{0, 3}, {6, 12}}
	got := d.Intervals()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("subset domain = %v, want %v", got, want)
	}
}

func TestIsFull(t *testing.T) {
	if !FullDomain(9).IsFull() {
		t.Fatal("full not full")
	}
	if NewDomain(9, []Interval{{0, 8}}).IsFull() {
		t.Fatal("partial reported full")
	}
	if !NewDomain(9, []Interval{{0, 5}, {5, 9}}).IsFull() {
		t.Fatal("merged-full not recognized")
	}
}
