// Package intervals provides the interval, partition, and sub-domain
// algebra underlying histogram distributions and the sieving stage of the
// tester.
//
// The domain is {0, 1, ..., n-1} (the paper's [n] shifted to 0-based), and
// an Interval is half-open: [Lo, Hi). A Partition is an ordered list of
// contiguous intervals covering the whole domain; a Domain is an arbitrary
// union of disjoint intervals (the "sieved" sub-domain G of Algorithm 1).
package intervals

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is the half-open integer range [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Len returns the number of integers in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether i lies in the interval.
func (iv Interval) Contains(i int) bool { return i >= iv.Lo && i < iv.Hi }

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Interval{lo, hi}
}

// String formats the interval as [lo,hi).
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// Partition is an ordered list of contiguous, non-empty intervals covering
// [0, n). The zero value is invalid; construct with NewPartition,
// FromBoundaries, or Singletons.
type Partition struct {
	n      int
	ivs    []Interval
	starts []int // starts[j] == ivs[j].Lo, for binary search
}

// NewPartition validates ivs as a partition of [0, n) and returns it.
func NewPartition(n int, ivs []Interval) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("intervals: domain size %d must be positive", n)
	}
	if len(ivs) == 0 {
		return nil, fmt.Errorf("intervals: empty partition of [0,%d)", n)
	}
	prev := 0
	for j, iv := range ivs {
		if iv.Lo != prev {
			return nil, fmt.Errorf("intervals: interval %d is %v, expected to start at %d", j, iv, prev)
		}
		if iv.Empty() {
			return nil, fmt.Errorf("intervals: interval %d is empty: %v", j, iv)
		}
		prev = iv.Hi
	}
	if prev != n {
		return nil, fmt.Errorf("intervals: partition covers [0,%d), domain is [0,%d)", prev, n)
	}
	p := &Partition{n: n, ivs: append([]Interval(nil), ivs...)}
	p.starts = make([]int, len(p.ivs))
	for j, iv := range p.ivs {
		p.starts[j] = iv.Lo
	}
	return p, nil
}

// MustPartition is NewPartition but panics on error; for tests and
// literals known to be valid.
func MustPartition(n int, ivs []Interval) *Partition {
	p, err := NewPartition(n, ivs)
	if err != nil {
		panic(err)
	}
	return p
}

// FromBoundaries builds the partition of [0, n) whose interval boundaries
// are the given interior cut points (each in (0, n), duplicates and
// out-of-range values ignored). An empty cuts slice yields the single
// interval [0, n).
func FromBoundaries(n int, cuts []int) *Partition {
	uniq := make([]int, 0, len(cuts)+2)
	uniq = append(uniq, 0)
	sorted := append([]int(nil), cuts...)
	sort.Ints(sorted)
	for _, c := range sorted {
		if c > 0 && c < n && c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	uniq = append(uniq, n)
	ivs := make([]Interval, 0, len(uniq)-1)
	for j := 0; j+1 < len(uniq); j++ {
		ivs = append(ivs, Interval{uniq[j], uniq[j+1]})
	}
	return MustPartition(n, ivs)
}

// Singletons returns the finest partition of [0, n): n singleton intervals.
func Singletons(n int) *Partition {
	ivs := make([]Interval, n)
	for i := range ivs {
		ivs[i] = Interval{i, i + 1}
	}
	return MustPartition(n, ivs)
}

// Whole returns the coarsest partition: one interval [0, n).
func Whole(n int) *Partition {
	return MustPartition(n, []Interval{{0, n}})
}

// EquiWidth returns a partition of [0, n) into k intervals of (nearly)
// equal width. It panics if k is not in [1, n].
func EquiWidth(n, k int) *Partition {
	if k < 1 || k > n {
		panic(fmt.Sprintf("intervals: EquiWidth k=%d out of [1,%d]", k, n))
	}
	ivs := make([]Interval, 0, k)
	for j := 0; j < k; j++ {
		lo := j * n / k
		hi := (j + 1) * n / k
		ivs = append(ivs, Interval{lo, hi})
	}
	return MustPartition(n, ivs)
}

// N returns the size of the underlying domain.
func (p *Partition) N() int { return p.n }

// Count returns the number of intervals.
func (p *Partition) Count() int { return len(p.ivs) }

// Interval returns the j-th interval.
func (p *Partition) Interval(j int) Interval { return p.ivs[j] }

// Intervals returns a copy of the interval list.
func (p *Partition) Intervals() []Interval {
	return append([]Interval(nil), p.ivs...)
}

// Find returns the index of the interval containing domain element i.
// It panics if i is outside [0, n).
func (p *Partition) Find(i int) int {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("intervals: element %d outside [0,%d)", i, p.n))
	}
	// Largest j with starts[j] <= i.
	j := sort.SearchInts(p.starts, i+1) - 1
	return j
}

// Boundaries returns the interior cut points of the partition, i.e. the
// Lo of every interval except the first.
func (p *Partition) Boundaries() []int {
	cuts := make([]int, 0, len(p.ivs)-1)
	for _, iv := range p.ivs[1:] {
		cuts = append(cuts, iv.Lo)
	}
	return cuts
}

// Refine returns the common refinement of p and q (both over the same
// domain): the partition whose cut points are the union of both.
func (p *Partition) Refine(q *Partition) (*Partition, error) {
	if p.n != q.n {
		return nil, fmt.Errorf("intervals: refine over mismatched domains %d vs %d", p.n, q.n)
	}
	cuts := append(p.Boundaries(), q.Boundaries()...)
	return FromBoundaries(p.n, cuts), nil
}

// String renders the partition compactly; long partitions are abbreviated.
func (p *Partition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partition(n=%d, K=%d)", p.n, len(p.ivs))
	if len(p.ivs) <= 8 {
		b.WriteString("{")
		for j, iv := range p.ivs {
			if j > 0 {
				b.WriteString(" ")
			}
			b.WriteString(iv.String())
		}
		b.WriteString("}")
	}
	return b.String()
}

// Domain is a union of disjoint, sorted, non-adjacent-merged intervals
// within [0, n): the sub-domain G that the sieve restricts statistics to.
// The zero Domain is empty over an unspecified universe; construct with
// NewDomain or FullDomain.
type Domain struct {
	n   int
	ivs []Interval
}

// FullDomain returns the domain equal to all of [0, n).
func FullDomain(n int) *Domain {
	return &Domain{n: n, ivs: []Interval{{0, n}}}
}

// EmptyDomain returns the empty sub-domain of [0, n).
func EmptyDomain(n int) *Domain {
	return &Domain{n: n, ivs: nil}
}

// NewDomain normalizes ivs (sorts, drops empties, merges overlapping or
// adjacent intervals) into a Domain over [0, n). Intervals are clipped to
// [0, n).
func NewDomain(n int, ivs []Interval) *Domain {
	clipped := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Lo < 0 {
			iv.Lo = 0
		}
		if iv.Hi > n {
			iv.Hi = n
		}
		if !iv.Empty() {
			clipped = append(clipped, iv)
		}
	}
	sort.Slice(clipped, func(a, b int) bool { return clipped[a].Lo < clipped[b].Lo })
	merged := make([]Interval, 0, len(clipped))
	for _, iv := range clipped {
		if len(merged) > 0 && iv.Lo <= merged[len(merged)-1].Hi {
			if iv.Hi > merged[len(merged)-1].Hi {
				merged[len(merged)-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return &Domain{n: n, ivs: merged}
}

// FromPartitionSubset returns the domain formed by the union of the
// partition intervals p.Interval(j) for which keep[j] is true.
func FromPartitionSubset(p *Partition, keep []bool) *Domain {
	if len(keep) != p.Count() {
		panic("intervals: keep mask length mismatch")
	}
	ivs := make([]Interval, 0, p.Count())
	for j, k := range keep {
		if k {
			ivs = append(ivs, p.Interval(j))
		}
	}
	return NewDomain(p.N(), ivs)
}

// N returns the size of the universe the domain lives in.
func (d *Domain) N() int { return d.n }

// Size returns the number of domain elements in d.
func (d *Domain) Size() int {
	total := 0
	for _, iv := range d.ivs {
		total += iv.Len()
	}
	return total
}

// Intervals returns a copy of the (sorted, disjoint) interval list.
func (d *Domain) Intervals() []Interval {
	return append([]Interval(nil), d.ivs...)
}

// Contains reports whether element i lies in the domain.
func (d *Domain) Contains(i int) bool {
	// Binary search for the last interval with Lo <= i.
	lo, hi := 0, len(d.ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.ivs[mid].Lo <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && d.ivs[lo-1].Contains(i)
}

// Complement returns [0, n) minus d.
func (d *Domain) Complement() *Domain {
	out := make([]Interval, 0, len(d.ivs)+1)
	prev := 0
	for _, iv := range d.ivs {
		if iv.Lo > prev {
			out = append(out, Interval{prev, iv.Lo})
		}
		prev = iv.Hi
	}
	if prev < d.n {
		out = append(out, Interval{prev, d.n})
	}
	return &Domain{n: d.n, ivs: out}
}

// Intersect returns the elements in both domains.
func (d *Domain) Intersect(other *Domain) *Domain {
	if d.n != other.n {
		panic("intervals: intersect over mismatched universes")
	}
	out := make([]Interval, 0)
	i, j := 0, 0
	for i < len(d.ivs) && j < len(other.ivs) {
		iv := d.ivs[i].Intersect(other.ivs[j])
		if !iv.Empty() {
			out = append(out, iv)
		}
		if d.ivs[i].Hi < other.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return &Domain{n: d.n, ivs: out}
}

// Minus returns d with the elements of other removed.
func (d *Domain) Minus(other *Domain) *Domain {
	return d.Intersect(other.Complement())
}

// IsFull reports whether the domain is all of [0, n).
func (d *Domain) IsFull() bool {
	return len(d.ivs) == 1 && d.ivs[0] == (Interval{0, d.n})
}

// String renders the domain compactly.
func (d *Domain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain(n=%d, |G|=%d, pieces=%d)", d.n, d.Size(), len(d.ivs))
	return b.String()
}
