package intervals

import "testing"

// FuzzFromBoundaries checks the partition invariants against arbitrary
// cut-point inputs: full coverage, contiguity, Find consistency, and
// boundary round-tripping.
func FuzzFromBoundaries(f *testing.F) {
	f.Add(10, 3, 7, 3)
	f.Add(1, 0, 0, 0)
	f.Add(100, -5, 200, 50)
	f.Add(2, 1, 1, 1)
	f.Fuzz(func(t *testing.T, n, a, b, c int) {
		if n < 1 || n > 1<<16 {
			t.Skip()
		}
		p := FromBoundaries(n, []int{a, b, c})
		if p.N() != n {
			t.Fatalf("domain %d != %d", p.N(), n)
		}
		prev := 0
		for j := 0; j < p.Count(); j++ {
			iv := p.Interval(j)
			if iv.Lo != prev || iv.Empty() {
				t.Fatalf("interval %d = %v breaks contiguity at %d", j, iv, prev)
			}
			prev = iv.Hi
		}
		if prev != n {
			t.Fatalf("coverage ends at %d, want %d", prev, n)
		}
		for _, probe := range []int{0, n / 2, n - 1} {
			if !p.Interval(p.Find(probe)).Contains(probe) {
				t.Fatalf("Find(%d) inconsistent", probe)
			}
		}
		q := FromBoundaries(n, p.Boundaries())
		if q.Count() != p.Count() {
			t.Fatalf("boundary round trip changed count: %d -> %d", p.Count(), q.Count())
		}
	})
}

// FuzzDomainAlgebra checks De Morgan-ish invariants of Domain operations
// on arbitrary interval soup.
func FuzzDomainAlgebra(f *testing.F) {
	f.Add(20, 2, 5, 4, 9)
	f.Add(5, -3, 10, 0, 0)
	f.Add(64, 63, 64, 1, 2)
	f.Fuzz(func(t *testing.T, n, aLo, aHi, bLo, bHi int) {
		if n < 1 || n > 1<<14 {
			t.Skip()
		}
		a := NewDomain(n, []Interval{{Lo: aLo, Hi: aHi}})
		b := NewDomain(n, []Interval{{Lo: bLo, Hi: bHi}})
		inter := a.Intersect(b)
		minus := a.Minus(b)
		if inter.Size()+minus.Size() != a.Size() {
			t.Fatalf("|A∩B| + |A\\B| = %d + %d != |A| = %d", inter.Size(), minus.Size(), a.Size())
		}
		if a.Complement().Size()+a.Size() != n {
			t.Fatal("complement size broken")
		}
		for _, probe := range []int{0, n / 3, n - 1} {
			if inter.Contains(probe) != (a.Contains(probe) && b.Contains(probe)) {
				t.Fatalf("intersect membership wrong at %d", probe)
			}
		}
	})
}
