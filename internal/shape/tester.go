package shape

import (
	"fmt"
	"math"

	"repro/internal/chisq"
	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// BirgeDecomposition returns the oblivious partition of [0, n) into
// intervals of geometrically growing lengths ⌈(1+gamma)^j⌉ (Birgé's
// decomposition): every monotone non-increasing distribution is
// O(gamma)-close in total variation to its flattening over it, and the
// number of intervals is O(log(gamma·n)/gamma). For non-decreasing
// distributions use the mirrored partition (see mirror).
func BirgeDecomposition(n int, gamma float64) *intervals.Partition {
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("shape: Birgé gamma %v must be in (0, 1]", gamma))
	}
	// Boundaries at the distinct values of ⌊(1+γ)^j⌋: singleton intervals
	// over the head (where a monotone density may change fastest), lengths
	// growing geometrically toward the tail.
	var cuts []int
	x := 1.0
	prev := 0
	for {
		b := int(math.Floor(x))
		if b >= n {
			break
		}
		if b > prev {
			cuts = append(cuts, b)
			prev = b
		}
		x *= 1 + gamma
	}
	return intervals.FromBoundaries(n, cuts)
}

// mirror reflects a partition of [0, n) (interval [a, b) becomes
// [n−b, n−a)).
func mirror(p *intervals.Partition) *intervals.Partition {
	n := p.N()
	cuts := make([]int, 0, p.Count()-1)
	for _, c := range p.Boundaries() {
		cuts = append(cuts, n-c)
	}
	return intervals.FromBoundaries(n, cuts)
}

// MonotoneParams are the constants of TestMonotone; see PracticalMonotone
// for the calibrated preset.
type MonotoneParams struct {
	// GammaDivisor sets the Birgé parameter γ = ε/GammaDivisor.
	GammaDivisor float64
	// LearnDivisor runs the Laplace learner at ε/LearnDivisor.
	LearnDivisor float64
	// LearnC scales the learner's O(K/ε²) budget.
	LearnC float64
	// CheckTolDivisor accepts the PAV check at distance ε/CheckTolDivisor.
	CheckTolDivisor float64
	// TestEpsFactor runs the final identity test at ε' = TestEpsFactor·ε.
	TestEpsFactor float64
	// Chi are the identity-test constants.
	Chi chisq.Params
}

// PracticalMonotone returns calibrated constants: the learner and Birgé
// errors together stay a comfortable factor under the identity test's χ²
// acceptance budget (AcceptFactor·ε'²), and the triangle inequality
// ε' + ε/CheckTol + learner-TV < ε gives soundness.
func PracticalMonotone() MonotoneParams {
	return MonotoneParams{
		// The identity test at ε' = ε/2 accepts while χ²(D‖D̂) stays under
		// ~0.1·ε'²/2 = ε²/80. Birgé flattening contributes ≈ s²γ² for a
		// power-law-like density (γ = ε/20 → ≤ ε²/123 at s ≤ 1.8) and the
		// learner (ε/16)²/2 = ε²/512; together well under budget.
		GammaDivisor:    20,
		LearnDivisor:    16,
		LearnC:          2,
		CheckTolDivisor: 8,
		TestEpsFactor:   0.5,
		Chi:             chisq.Params{MFactor: 60, TruncFactor: 1.0 / 50, AcceptFactor: 1.0 / 10},
	}
}

// MonotoneResult reports one TestMonotone invocation.
type MonotoneResult struct {
	Accept bool
	// CheckDistance is the PAV distance of the learned hypothesis to the
	// monotone class.
	CheckDistance float64
	// Samples is the total sample consumption.
	Samples int64
	// Stage reports what decided ("check", "identity", or "" on accept).
	Stage string
}

// TestMonotone decides whether the distribution behind o is monotone
// (non-increasing when decreasing is true, non-decreasing otherwise) or
// ε-far from every such distribution — the [ADK15]-style testing-by-
// learning specialization whose generalization to H_k is the paper's
// Algorithm 1. Because the Birgé decomposition is oblivious (no unknown
// breakpoints exist for monotone distributions), NO sieve is needed:
//
//  1. flatten over the Birgé partition (γ = ε/12): monotone D is
//     O(γ)-close in TV and O(γ²)-close in χ² to its flattening;
//  2. learn the flattening with the add-one estimator;
//  3. check the hypothesis is close to monotone (PAV projection);
//  4. identity-test D against the hypothesis (Theorem 3.2).
func TestMonotone(o oracle.Oracle, r *rng.RNG, decreasing bool, eps float64, params MonotoneParams) (*MonotoneResult, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("shape: eps = %v must be in (0, 1]", eps)
	}
	n := o.N()
	start := o.Samples()

	part := BirgeDecomposition(n, eps/params.GammaDivisor)
	if !decreasing {
		part = mirror(part)
	}
	dhat, _ := learn.Learn(o, r, part, eps/params.LearnDivisor, params.LearnC)

	checkDist, _ := Monotone(dhat, decreasing)
	res := &MonotoneResult{CheckDistance: checkDist}
	if checkDist > eps/params.CheckTolDivisor {
		res.Stage = "check"
		res.Samples = o.Samples() - start
		return res, nil
	}

	id := chisq.Test(o, r, dhat, intervals.FullDomain(n), params.TestEpsFactor*eps, params.Chi)
	res.Samples = o.Samples() - start
	if !id.Accept {
		res.Stage = "identity"
		return res, nil
	}
	res.Accept = true
	return res, nil
}

// FlatteningGamma bounds the χ² distance between a monotone distribution
// and its flattening over the Birgé decomposition with parameter gamma:
// within each interval the density varies by at most a (1+gamma) factor,
// so the per-interval χ² is at most gamma²·(interval mass). Exposed for
// tests and the documentation of TestMonotone's calibration.
func FlatteningGamma(d dist.Distribution, p *intervals.Partition) float64 {
	flat := dist.Flatten(d, p)
	return dist.ChiSq(d, flat)
}
