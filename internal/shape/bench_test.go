package shape

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/rng"
)

func benchPC(b *testing.B, pieces int) *dist.PiecewiseConstant {
	b.Helper()
	r := rng.New(1)
	n := pieces * 8
	cuts := make([]int, pieces-1)
	for i := range cuts {
		cuts[i] = (i + 1) * 8
	}
	part := intervals.FromBoundaries(n, cuts)
	masses := make([]float64, part.Count())
	total := 0.0
	for j := range masses {
		masses[j] = r.Float64() + 0.01
		total += masses[j]
	}
	for j := range masses {
		masses[j] /= total
	}
	d, err := dist.FromWeights(part, masses)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkMonotonePAV(b *testing.B) {
	d := benchPC(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Monotone(d, false)
	}
}

func BenchmarkUnimodalProjection(b *testing.B) {
	d := benchPC(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unimodal(d)
	}
}

func BenchmarkKModalProjection(b *testing.B) {
	d := benchPC(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := KModal(d, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBirgeDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BirgeDecomposition(1<<20, 0.02)
	}
}

func BenchmarkFlatteningGamma(b *testing.B) {
	d := gen.Zipf(1<<14, 1.2)
	p := BirgeDecomposition(1<<14, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlatteningGamma(d, p)
	}
}
