package shape

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/rng"
)

func pcFromVals(t *testing.T, vals []float64) *dist.PiecewiseConstant {
	t.Helper()
	total := 0.0
	for _, v := range vals {
		total += v
	}
	pieces := make([]dist.Piece, len(vals))
	for i, v := range vals {
		pieces[i] = dist.Piece{Iv: intervals.Interval{Lo: i, Hi: i + 1}, Mass: v / total}
	}
	return dist.MustPiecewiseConstant(len(vals), pieces)
}

// bruteMonotone computes the optimal isotonic ℓ1 cost by brute force over
// a small value grid (sufficient because an optimal fit uses input values).
func bruteMonotone(vals, weights []float64, decreasing bool) float64 {
	n := len(vals)
	candidates := append([]float64(nil), vals...)
	// DP over positions × candidate levels.
	sortFloats(candidates)
	m := len(candidates)
	const inf = math.MaxFloat64
	prev := make([]float64, m)
	for j := 0; j < m; j++ {
		prev[j] = weights[0] * math.Abs(vals[0]-candidates[j])
	}
	for i := 1; i < n; i++ {
		cur := make([]float64, m)
		if !decreasing {
			best := inf
			for j := 0; j < m; j++ {
				if prev[j] < best {
					best = prev[j]
				}
				cur[j] = best + weights[i]*math.Abs(vals[i]-candidates[j])
			}
		} else {
			best := inf
			for j := m - 1; j >= 0; j-- {
				if prev[j] < best {
					best = prev[j]
				}
				cur[j] = best + weights[i]*math.Abs(vals[i]-candidates[j])
			}
		}
		prev = cur
	}
	best := inf
	for _, c := range prev {
		if c < best {
			best = c
		}
	}
	return best
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestMonotoneExactOnMonotoneInput(t *testing.T) {
	d := pcFromVals(t, []float64{1, 2, 3, 4, 5})
	cost, proj := Monotone(d, false)
	if cost > 1e-12 {
		t.Fatalf("increasing input has increasing cost %v", cost)
	}
	if dist.TV(d, proj) > 1e-9 {
		t.Fatal("projection moved a feasible input")
	}
	costDec, _ := Monotone(d, true)
	if costDec <= 0.1 {
		t.Fatalf("decreasing fit of increasing input should cost a lot, got %v", costDec)
	}
}

func TestMonotoneMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 80; trial++ {
		n := 2 + r.Intn(9)
		vals := make([]float64, n)
		weights := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(r.Float64()*8) / 8
			weights[i] = float64(1 + r.Intn(4))
		}
		for _, dec := range []bool{false, true} {
			p := &pav{}
			for i := range vals {
				v := vals[i]
				if dec {
					v = -v
				}
				p.push(v, weights[i])
			}
			want := bruteMonotone(vals, weights, dec)
			if math.Abs(p.total-want) > 1e-9 {
				t.Fatalf("trial %d dec=%v: PAV cost %v, brute force %v (vals %v, w %v)",
					trial, dec, p.total, want, vals, weights)
			}
		}
	}
}

func TestMonotoneFitIsMonotone(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() + 0.01
		}
		d := pcFromVals(t, vals)
		_, proj := Monotone(d, false)
		prev := -1.0
		for i := 0; i < proj.N(); i++ {
			if proj.Prob(i) < prev-1e-12 {
				t.Fatalf("projection not non-decreasing at %d", i)
			}
			prev = proj.Prob(i)
		}
	}
}

func TestUnimodalExactOnBump(t *testing.T) {
	d := pcFromVals(t, []float64{1, 3, 7, 4, 2})
	cost, proj, peak := Unimodal(d)
	if cost > 1e-12 {
		t.Fatalf("unimodal input has cost %v", cost)
	}
	if peak != 2 {
		t.Fatalf("peak = %d, want 2", peak)
	}
	if dist.Modality(proj) > 2 {
		t.Fatalf("projection modality = %d", dist.Modality(proj))
	}
}

func TestUnimodalOnComb(t *testing.T) {
	// The alternating comb is far from unimodal: best unimodal fit costs
	// a constant fraction.
	d := gen.Comb(32)
	cost, proj, _ := Unimodal(d)
	if cost < 0.2 {
		t.Fatalf("comb unimodal distance = %v, want substantial", cost)
	}
	if dist.Modality(proj) > 2 {
		t.Fatalf("projection modality = %d", dist.Modality(proj))
	}
}

func TestKModal1IsBestOfPeakAndValley(t *testing.T) {
	// The paper's 1-modal class allows ONE direction change either way, so
	// its optimum is the better of the peak and valley fits.
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() + 0.01
		}
		d := pcFromVals(t, vals)
		uCost, _, _ := Unimodal(d)
		vCost, _, _ := Valley(d)
		want := math.Min(uCost, vCost)
		kCost, _, err := KModal(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(want-kCost) > 1e-9 {
			t.Fatalf("trial %d: min(peak %v, valley %v) != 1-modal %v", trial, uCost, vCost, kCost)
		}
	}
}

func TestValleyExactOnValleyInput(t *testing.T) {
	d := pcFromVals(t, []float64{5, 2, 1, 3, 6})
	cost, proj, trough := Valley(d)
	if cost > 1e-12 {
		t.Fatalf("valley input has cost %v", cost)
	}
	if trough != 2 {
		t.Fatalf("trough = %d, want 2", trough)
	}
	if dist.Modality(proj) > 2 {
		t.Fatalf("projection modality = %d", dist.Modality(proj))
	}
	// A peak fit of a valley must cost something.
	pCost, _, _ := Unimodal(d)
	if pCost < 0.05 {
		t.Fatalf("peak fit of a valley suspiciously cheap: %v", pCost)
	}
}

func TestKModalMonotoneInCost(t *testing.T) {
	// More modes allowed → cost can only decrease; enough modes → zero.
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		n := 6 + r.Intn(15)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() + 0.01
		}
		d := pcFromVals(t, vals)
		prev := math.Inf(1)
		for k := 1; k <= n; k++ {
			cost, proj, err := KModal(d, k)
			if err != nil {
				t.Fatal(err)
			}
			if cost > prev+1e-9 {
				t.Fatalf("trial %d: cost increased at k=%d: %v > %v", trial, k, cost, prev)
			}
			if dist.Modality(proj) > k+1 {
				t.Fatalf("trial %d k=%d: projection has %d runs", trial, k, dist.Modality(proj))
			}
			prev = cost
		}
		if prev > 1e-9 {
			t.Fatalf("trial %d: k=n cost = %v, want 0", trial, prev)
		}
	}
}

func TestKModalRecoversGeneratedKModal(t *testing.T) {
	r := rng.New(5)
	for _, k := range []int{1, 2, 4} {
		d := gen.KModal(r, 512, k)
		pc := d.ToPiecewiseConstant()
		// k peaks = up/down k times interleaved: 2k monotone runs at most,
		// i.e. (2k−1)-modal in the paper's counting.
		cost, _, err := KModal(pc, 2*k-1)
		if err != nil {
			t.Fatal(err)
		}
		if cost > 1e-9 {
			t.Fatalf("k=%d: generated k-modal measures %v from its class", k, cost)
		}
		if k > 1 {
			// With only 1 direction change allowed it must be far.
			cost1, _, err := KModal(pc, 1)
			if err != nil {
				t.Fatal(err)
			}
			if cost1 < 0.01 {
				t.Fatalf("k=%d: unimodal fit suspiciously good: %v", k, cost1)
			}
		}
	}
}

func TestKModalErrors(t *testing.T) {
	d := pcFromVals(t, []float64{1, 2})
	if _, _, err := KModal(d, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestProjectionsAreDistributions(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 20; trial++ {
		n := 8 + r.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		vals[r.Intn(n)] = 0 // include zero pieces
		d := pcFromVals(t, addEps(vals))
		for _, proj := range projections(t, d) {
			if math.Abs(dist.TotalMass(proj)-1) > 1e-9 {
				t.Fatalf("projection mass = %v", dist.TotalMass(proj))
			}
		}
	}
}

func addEps(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v + 1e-6
	}
	return out
}

func projections(t *testing.T, d *dist.PiecewiseConstant) []*dist.PiecewiseConstant {
	t.Helper()
	_, inc := Monotone(d, false)
	_, dec := Monotone(d, true)
	_, uni, _ := Unimodal(d)
	_, km, err := KModal(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []*dist.PiecewiseConstant{inc, dec, uni, km}
}

func TestProjectionIdempotence(t *testing.T) {
	// Projecting a projection costs zero: the output is in the class.
	r := rng.New(8)
	for trial := 0; trial < 25; trial++ {
		n := 6 + r.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() + 0.01
		}
		d := pcFromVals(t, vals)
		_, mono := Monotone(d, trial%2 == 0)
		if c, _ := Monotone(mono, trial%2 == 0); c > 1e-9 {
			t.Fatalf("monotone projection not idempotent: %v", c)
		}
		_, uni, _ := Unimodal(d)
		if c, _, _ := Unimodal(uni); c > 1e-9 {
			t.Fatalf("unimodal projection not idempotent: %v", c)
		}
		k := 1 + r.Intn(3)
		_, km, err := KModal(d, k)
		if err != nil {
			t.Fatal(err)
		}
		if c, _, err := KModal(km, k); err != nil || c > 1e-9 {
			t.Fatalf("k-modal projection not idempotent: %v (%v)", c, err)
		}
	}
}

func TestCostsAreTVAgainstProjection(t *testing.T) {
	// The reported cost is the ℓ1/2 of the UNCONSTRAINED-mass optimum; the
	// normalized projection's TV distance can only be (slightly) larger.
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() + 0.01
		}
		d := pcFromVals(t, vals)
		cost, proj, _ := Unimodal(d)
		if tv := dist.TV(d, proj); cost > tv+1e-9 {
			t.Fatalf("cost %v exceeds TV to projection %v", cost, tv)
		}
	}
}
