// Package shape provides ℓ1 projections onto shape-restricted classes —
// monotone, unimodal, and k-modal probability mass functions — over
// piecewise-constant inputs.
//
// These are the shape classes surrounding the paper: [ADK15], whose
// testing machinery the paper adapts, treats monotonicity and
// unimodality; the paper's Theorem 1.2 remark extends its lower bound to
// k-modal distributions; and the agnostic learners the paper invokes
// ([ADLS15]) are built from exactly these projections. The algorithms:
//
//   - isotonic ℓ1 regression by the pool-adjacent-violators (PAV) method
//     with weighted-median blocks, O(B log B) amortized over B pieces and
//     online in the input — appending a piece only merges blocks, so one
//     left-to-right sweep yields the optimal cost of EVERY prefix;
//   - unimodal projection as best peak over prefix-increasing +
//     suffix-decreasing costs, one PAV sweep each way;
//   - k-modal projection by dynamic programming over at most 2k−1
//     maximal monotone runs, with per-run costs from per-start online PAV
//     sweeps (O(B² log B) total).
//
// Distances are total-variation style: half the weighted ℓ1 difference,
// where weights are piece lengths (so they agree with dist.TV against the
// projected distribution).
package shape

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
)

// item is one piece of the input: a value with a positive weight.
type item struct {
	v, w float64
}

// block is a PAV block: a set of items fitted by one constant, the
// weighted median. Items are kept sorted by value for mergeable medians.
type block struct {
	items  []item  // sorted by v
	weight float64 // Σ w
	med    float64 // current weighted (lower) median
	cost   float64 // Σ w·|v − med|
}

func newBlock(v, w float64) *block {
	return &block{items: []item{{v, w}}, weight: w, med: v}
}

// merge absorbs other into b (other's items are consumed).
func (b *block) merge(other *block) {
	merged := make([]item, 0, len(b.items)+len(other.items))
	i, j := 0, 0
	for i < len(b.items) && j < len(other.items) {
		if b.items[i].v <= other.items[j].v {
			merged = append(merged, b.items[i])
			i++
		} else {
			merged = append(merged, other.items[j])
			j++
		}
	}
	merged = append(merged, b.items[i:]...)
	merged = append(merged, other.items[j:]...)
	b.items = merged
	b.weight += other.weight
	b.recompute()
}

// recompute refreshes the weighted median and the block cost.
func (b *block) recompute() {
	half := b.weight / 2
	cum := 0.0
	med := b.items[len(b.items)-1].v
	for _, it := range b.items {
		cum += it.w
		if cum >= half {
			med = it.v
			break
		}
	}
	cost := 0.0
	for _, it := range b.items {
		cost += it.w * math.Abs(it.v-med)
	}
	b.med = med
	b.cost = cost
}

// pav maintains the PAV stack for an isotonic (non-decreasing) fit and
// reports the optimal total cost after each appended item. For a
// non-increasing fit, feed the values negated (or reversed).
type pav struct {
	stack []*block
	total float64
}

// push appends an item and restores the monotone-median invariant.
func (p *pav) push(v, w float64) {
	nb := newBlock(v, w)
	for len(p.stack) > 0 && p.stack[len(p.stack)-1].med >= nb.med {
		top := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		p.total -= top.cost
		nb.merge(top)
	}
	p.stack = append(p.stack, nb)
	p.total += nb.cost
}

// fit returns the fitted value for each original position, given the
// order items were pushed.
func (p *pav) fit(n int) []float64 {
	out := make([]float64, 0, n)
	for _, b := range p.stack {
		for range b.items {
			out = append(out, b.med)
		}
	}
	return out
}

// pieces extracts (value, weight) pairs from a piecewise-constant
// distribution: value = per-element probability, weight = piece length.
func pieces(d *dist.PiecewiseConstant) (vals, weights []float64) {
	for _, pc := range d.Pieces() {
		vals = append(vals, pc.Mass/float64(pc.Iv.Len()))
		weights = append(weights, float64(pc.Iv.Len()))
	}
	return
}

// prefixCosts returns, for each b, the optimal isotonic ℓ1 cost of fitting
// vals[0..b] with a non-decreasing (dir=+1) or non-increasing (dir=−1)
// function. One online PAV sweep.
func prefixCosts(vals, weights []float64, dir int) []float64 {
	p := &pav{}
	out := make([]float64, len(vals))
	for i := range vals {
		v := vals[i]
		if dir < 0 {
			v = -v
		}
		p.push(v, weights[i])
		out[i] = p.total
	}
	return out
}

// Monotone reports the minimal TV distance from d to the class of
// monotone non-increasing (decreasing=true) or non-decreasing pmfs with
// breakpoints on d's piece structure, together with the projected
// distribution (normalized).
func Monotone(d *dist.PiecewiseConstant, decreasing bool) (float64, *dist.PiecewiseConstant) {
	vals, weights := pieces(d)
	p := &pav{}
	for i := range vals {
		v := vals[i]
		if decreasing {
			v = -v
		}
		p.push(v, weights[i])
	}
	fit := p.fit(len(vals))
	if decreasing {
		for i := range fit {
			fit[i] = -fit[i]
		}
	}
	return p.total / 2, rebuild(d, fit)
}

// Unimodal reports the minimal TV distance from d to the class of
// single-peak pmfs (non-decreasing up to some peak piece, non-increasing
// after), with the projected distribution and the chosen peak piece index.
// Note the paper's "1-modal" class also admits the mirror-image valley
// shape; see Valley and KModal.
func Unimodal(d *dist.PiecewiseConstant) (float64, *dist.PiecewiseConstant, int) {
	return vShape(d, false)
}

// Valley reports the minimal TV distance from d to the class of
// single-valley pmfs (non-increasing down to some trough piece,
// non-decreasing after), with the projection and the trough piece index.
func Valley(d *dist.PiecewiseConstant) (float64, *dist.PiecewiseConstant, int) {
	return vShape(d, true)
}

// vShape computes the best "one direction change" fit: rising-then-falling
// (valley=false, a peak) or falling-then-rising (valley=true).
func vShape(d *dist.PiecewiseConstant, valley bool) (float64, *dist.PiecewiseConstant, int) {
	vals, weights := pieces(d)
	B := len(vals)
	firstDir, secondDir := +1, -1
	if valley {
		firstDir, secondDir = -1, +1
	}
	// first[b]: cost of fitting vals[0..b] monotone in the first direction.
	first := prefixCosts(vals, weights, firstDir)
	// second[a]: cost of fitting vals[a..B-1] monotone in the second
	// direction — a first-direction fit of the reversal.
	// Reversal flips the apparent direction: a secondDir-monotone fit of
	// the suffix [a..B-1] is a (−secondDir)-monotone fit of the reversal.
	rvals := make([]float64, B)
	rweights := make([]float64, B)
	for i := range vals {
		rvals[B-1-i] = vals[i]
		rweights[B-1-i] = weights[i]
	}
	secondRev := prefixCosts(rvals, rweights, -secondDir)
	second := make([]float64, B)
	for a := 0; a < B; a++ {
		second[a] = secondRev[B-1-a]
	}

	best := math.Inf(1)
	turn := 0
	for p := 0; p < B; p++ {
		c := second[p]
		if p > 0 {
			c += first[p-1]
		}
		if c < best {
			best = c
			turn = p
		}
	}
	// Rebuild the actual fit for the best turning point.
	firstSign := 1.0
	if firstDir < 0 {
		firstSign = -1
	}
	up := &pav{}
	for i := 0; i < turn; i++ {
		up.push(firstSign*vals[i], weights[i])
	}
	// The reversed suffix is fitted in direction −secondDir = firstDir, so
	// the push sign matches the prefix's.
	down := &pav{}
	for i := B - 1; i >= turn; i-- {
		down.push(firstSign*vals[i], weights[i])
	}
	fitRaw := up.fit(turn)
	fit := make([]float64, 0, B)
	for _, v := range fitRaw {
		fit = append(fit, firstSign*v)
	}
	downFit := down.fit(B - turn)
	for i := len(downFit) - 1; i >= 0; i-- {
		fit = append(fit, firstSign*downFit[i])
	}
	return best / 2, rebuild(d, fit), turn
}

// KModal reports the minimal TV distance from d to the class of k-modal
// pmfs in the paper's counting (Section 1.2): the pmf may go "up and
// down" or "down and up" at most k times, i.e. it has at most k+1 maximal
// monotone runs. Unimodal (single peak) corresponds to k = 1. It also
// returns the projected distribution. Cost: O(B²·log B + B²·k).
func KModal(d *dist.PiecewiseConstant, k int) (float64, *dist.PiecewiseConstant, error) {
	if k < 1 {
		return 0, nil, fmt.Errorf("shape: k = %d must be positive", k)
	}
	vals, weights := pieces(d)
	B := len(vals)
	maxRuns := k + 1
	if maxRuns > B {
		maxRuns = B
	}

	// cost[dir][a][b]: isotonic cost of fitting vals[a..b] monotonically.
	// dir 0 = non-decreasing, 1 = non-increasing. Built by per-start
	// online PAV sweeps.
	cost := [2][][]float64{}
	for dir := 0; dir < 2; dir++ {
		sign := 1.0
		if dir == 1 {
			sign = -1
		}
		table := make([][]float64, B)
		for a := 0; a < B; a++ {
			p := &pav{}
			row := make([]float64, B)
			for b := a; b < B; b++ {
				p.push(sign*vals[b], weights[b])
				row[b] = p.total
			}
			table[a] = row
		}
		cost[dir] = table
	}

	// dp[r][b][dir]: minimal cost of fitting vals[0..b] with r+1 monotone
	// runs, the last of which has direction dir. Runs must alternate.
	const inf = math.MaxFloat64
	dp := make([][][2]float64, maxRuns)
	choice := make([][][2]int32, maxRuns)
	for r := range dp {
		dp[r] = make([][2]float64, B)
		choice[r] = make([][2]int32, B)
		for b := range dp[r] {
			dp[r][b][0], dp[r][b][1] = inf, inf
		}
	}
	for b := 0; b < B; b++ {
		dp[0][b][0] = cost[0][0][b]
		dp[0][b][1] = cost[1][0][b]
	}
	for r := 1; r < maxRuns; r++ {
		for b := r; b < B; b++ {
			for dir := 0; dir < 2; dir++ {
				prevDir := 1 - dir
				best, bestA := dp[r-1][b][dir], int32(-1) // carry over fewer runs
				if bc := choice[r-1][b][dir]; best < inf {
					bestA = bc
				}
				for a := r; a <= b; a++ {
					prev := dp[r-1][a-1][prevDir]
					if prev == inf {
						continue
					}
					if c := prev + cost[dir][a][b]; c < best {
						best, bestA = c, int32(a)
					}
				}
				dp[r][b][dir] = best
				choice[r][b][dir] = bestA
			}
		}
	}
	bestCost := math.Min(dp[maxRuns-1][B-1][0], dp[maxRuns-1][B-1][1])

	// Reconstruct the run boundaries, then refit each run.
	dir := 0
	if dp[maxRuns-1][B-1][1] < dp[maxRuns-1][B-1][0] {
		dir = 1
	}
	type run struct {
		a, b, dir int
	}
	var runs []run
	b := B - 1
	r := maxRuns - 1
	for b >= 0 && r >= 0 {
		a := int(choice[r][b][dir])
		if r == 0 || a < 0 {
			// Either the first run, or a carry-over marker: walk down to
			// the row that actually starts a run here.
			if r > 0 && a < 0 {
				r--
				continue
			}
			runs = append(runs, run{0, b, dir})
			break
		}
		runs = append(runs, run{a, b, dir})
		b = a - 1
		r--
		dir = 1 - dir
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].a < runs[j].a })

	fit := make([]float64, 0, B)
	for _, rn := range runs {
		p := &pav{}
		sign := 1.0
		if rn.dir == 1 {
			sign = -1
		}
		for i := rn.a; i <= rn.b; i++ {
			p.push(sign*vals[i], weights[i])
		}
		seg := p.fit(rn.b - rn.a + 1)
		for i := range seg {
			fit = append(fit, sign*seg[i])
		}
	}
	return bestCost / 2, rebuild(d, fit), nil
}

// rebuild assembles a distribution from per-piece fitted values (clamped
// at zero, normalized; uniform fallback when everything fits to zero).
func rebuild(d *dist.PiecewiseConstant, fit []float64) *dist.PiecewiseConstant {
	in := d.Pieces()
	out := make([]dist.Piece, len(in))
	mass := 0.0
	for j := range in {
		v := fit[j]
		if v < 0 {
			v = 0
		}
		out[j] = dist.Piece{Iv: in[j].Iv, Mass: v * float64(in[j].Iv.Len())}
		mass += out[j].Mass
	}
	if mass <= 0 {
		return dist.Uniform(d.N())
	}
	for j := range out {
		out[j].Mass /= mass
	}
	return dist.MustPiecewiseConstant(d.N(), out).Compact()
}
