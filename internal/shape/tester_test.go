package shape

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestBirgeDecomposition(t *testing.T) {
	p := BirgeDecomposition(1000, 0.1)
	// Lengths grow geometrically; the interval count is O(log(n)/γ).
	if p.Count() > 200 {
		t.Fatalf("too many intervals: %d", p.Count())
	}
	prevLen := 0
	for j := 0; j+1 < p.Count(); j++ { // last interval may be truncated at n
		l := p.Interval(j).Len()
		if l+1 < prevLen { // allow rounding wiggle
			t.Fatalf("interval %d length %d shrank from %d", j, l, prevLen)
		}
		prevLen = l
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("gamma out of range did not panic")
			}
		}()
		BirgeDecomposition(10, 0)
	}()
}

func TestBirgeFlatteningErrorOnMonotone(t *testing.T) {
	// For monotone non-increasing distributions the χ² distance to the
	// Birgé flattening is O(γ²).
	gamma := 0.05
	p := BirgeDecomposition(2048, gamma)
	for _, d := range []dist.Distribution{
		gen.Zipf(2048, 1.0),
		gen.Zipf(2048, 1.8),
	} {
		if got := FlatteningGamma(d, p); got > 4*gamma*gamma {
			t.Fatalf("flattening χ² = %v, want O(γ²) = %v", got, gamma*gamma)
		}
	}
}

func TestMirror(t *testing.T) {
	p := BirgeDecomposition(100, 0.3)
	m := mirror(p)
	if m.Count() != p.Count() {
		t.Fatalf("mirror changed count: %d vs %d", m.Count(), p.Count())
	}
	// First interval of p (length 1) becomes the last of m.
	if m.Interval(m.Count()-1).Len() != p.Interval(0).Len() {
		t.Fatal("mirror did not reflect lengths")
	}
}

func TestMonotoneTesterCompleteness(t *testing.T) {
	r := rng.New(1)
	params := PracticalMonotone()
	accepts := 0
	const trials = 12
	d := gen.Zipf(1024, 1.2) // monotone non-increasing
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := TestMonotone(s, r, true, 0.4, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			accepts++
		}
		if res.Samples <= 0 {
			t.Fatal("sample accounting missing")
		}
	}
	if accepts < trials*3/4 {
		t.Fatalf("monotone completeness: %d/%d", accepts, trials)
	}
}

func TestMonotoneTesterIncreasingDirection(t *testing.T) {
	// A non-decreasing staircase must pass with decreasing=false and fail
	// with decreasing=true.
	r := rng.New(2)
	n := 1024
	p := make([]float64, n)
	total := 0.0
	for i := range p {
		p[i] = 1 + 3*float64(i)/float64(n)
		total += p[i]
	}
	for i := range p {
		p[i] /= total
	}
	d := dist.MustDense(p)
	params := PracticalMonotone()

	acceptInc, acceptDec := 0, 0
	const trials = 10
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := TestMonotone(s, r, false, 0.3, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			acceptInc++
		}
		s2 := oracle.NewSampler(d, r.Split())
		res2, err := TestMonotone(s2, r, true, 0.3, params)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Accept {
			acceptDec++
		}
	}
	if acceptInc < trials*3/4 {
		t.Fatalf("increasing direction rejected its own shape: %d/%d", acceptInc, trials)
	}
	if acceptDec > trials/4 {
		t.Fatalf("decreasing direction accepted an increasing shape: %d/%d", acceptDec, trials)
	}
}

func TestMonotoneTesterSoundness(t *testing.T) {
	r := rng.New(3)
	params := PracticalMonotone()
	d := gen.Comb(1024) // ~0.5-far from monotone
	rejects := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r.Split())
		res, err := TestMonotone(s, r, true, 0.4, params)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			rejects++
			if res.Stage == "" {
				t.Fatal("rejection without stage")
			}
		}
	}
	if rejects < trials*3/4 {
		t.Fatalf("monotone soundness: %d/%d", rejects, trials)
	}
}

func TestMonotoneTesterValidation(t *testing.T) {
	r := rng.New(4)
	s := oracle.NewSampler(dist.Uniform(16), r)
	if _, err := TestMonotone(s, r, true, 0, PracticalMonotone()); err == nil {
		t.Fatal("eps = 0 accepted")
	}
	if _, err := TestMonotone(s, r, true, 1.5, PracticalMonotone()); err == nil {
		t.Fatal("eps > 1 accepted")
	}
}

func TestMonotoneTesterUniformBothWays(t *testing.T) {
	// The uniform distribution is monotone in both directions.
	r := rng.New(5)
	params := PracticalMonotone()
	for _, dec := range []bool{true, false} {
		s := oracle.NewSampler(dist.Uniform(512), r.Split())
		res, err := TestMonotone(s, r, dec, 0.5, params)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			t.Fatalf("uniform rejected (decreasing=%v): stage %s, check %v", dec, res.Stage, res.CheckDistance)
		}
	}
}
