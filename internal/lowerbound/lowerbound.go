// Package lowerbound constructs the hard instances behind Theorem 1.2 and
// the reduction machinery of Section 4, so the information-theoretic
// claims can be probed empirically:
//
//   - the Paninski family Q_ε of Proposition 4.1: pairwise ±cε/n
//     perturbations of uniform, each ε-far from H_k for k < n/3 yet
//     requiring Ω(√n/ε²) samples to tell from uniform;
//   - the support-size promise instances of [VV10] and the random-
//     permutation embedding (Proposition 4.2) that turns any k-histogram
//     tester into a support-size estimator;
//   - the cover statistic of Lemma 4.4 (number of maximal runs a support
//     set splits into under a random permutation).
package lowerbound

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Paninski draws a uniformly random member of the family Q_ε over [0, n):
// for each pair (2i, 2i+1), one side gets (1+c·ε)/n and the other
// (1−c·ε)/n according to an unbiased coin. n must be even; c is the
// paper's constant (c = 6 makes every member ε-far from H_k for k < n/3,
// by the Proposition 4.1 argument — it also requires c·ε <= 1).
func Paninski(r *rng.RNG, n int, eps, c float64) (*dist.Dense, error) {
	if n%2 != 0 {
		return nil, fmt.Errorf("lowerbound: Paninski needs even n, got %d", n)
	}
	if c*eps > 1 {
		return nil, fmt.Errorf("lowerbound: c·ε = %v > 1 makes masses negative", c*eps)
	}
	p := make([]float64, n)
	hi := (1 + c*eps) / float64(n)
	lo := (1 - c*eps) / float64(n)
	for i := 0; i < n; i += 2 {
		if r.Bernoulli(0.5) {
			p[i], p[i+1] = hi, lo
		} else {
			p[i], p[i+1] = lo, hi
		}
	}
	return dist.MustDense(p), nil
}

// PaninskiDistanceLB returns the Proposition 4.1 lower bound c·ε/6 on the
// TV distance of any Q_ε member to H_k, valid for k < n/3.
func PaninskiDistanceLB(eps, c float64) float64 { return c * eps / 6 }

// SupportInstance builds a [VV10]-style support-size promise instance over
// [0, m): the uniform distribution over a support of the given size (every
// supported element has mass 1/size >= 1/m). The small side of the promise
// uses size = m/3, the large side size = 7m/8.
func SupportInstance(m, size int) (*dist.Dense, error) {
	if size < 1 || size > m {
		return nil, fmt.Errorf("lowerbound: support size %d out of [1, %d]", size, m)
	}
	p := make([]float64, m)
	for i := 0; i < size; i++ {
		p[i] = 1 / float64(size)
	}
	return dist.MustDense(p), nil
}

// SmallSupport and LargeSupport return the two promise sides' sizes.
func SmallSupport(m int) int { return m / 3 }

// LargeSupport returns the large side of the support-size promise.
func LargeSupport(m int) int { return 7 * m / 8 }

// Cover returns cover(S): the minimal number of disjoint intervals needed
// to cover the set S ⊆ [0, n) (the number of maximal runs of consecutive
// elements). S need not be sorted.
func Cover(s []int) int {
	if len(s) == 0 {
		return 0
	}
	sorted := append([]int(nil), s...)
	sort.Ints(sorted)
	runs := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1]+1 {
			runs++
		}
	}
	return runs
}

// PermutedSupportCover draws a uniform permutation σ of [0, n) and returns
// cover(σ(S)) for S = {0, ..., ell−1} — the quantity Lemma 4.4 bounds:
// Pr[cover <= 6ℓ/7] <= 7ℓ/n.
func PermutedSupportCover(r *rng.RNG, n, ell int) int {
	sigma := r.Perm(n)
	img := make([]int, ell)
	for i := 0; i < ell; i++ {
		img[i] = sigma[i]
	}
	return Cover(img)
}

// Reduction is the Section 4.2 embedding: given sample access to a
// distribution over [0, m) satisfying the support-size promise, embed the
// domain into [0, n), apply a fresh uniform permutation, and hand the
// permuted oracle to a k-histogram tester with k = 2·(m/3)+1 and ε₁ = 1/24.
// A correct tester then accepts on the small-support side (the permuted
// distribution is a k-histogram with probability one) and rejects on the
// large-support side (with high probability over σ, the support is
// sprinkled into >= 3m/4 isolated chunks, forcing ε₁-farness from H_k).
type Reduction struct {
	// N is the enlarged domain size (the paper needs m <= n/70, i.e.
	// m = ⌈3(k−1)/2⌉ with k <= n/120).
	N int
	// M is the original domain size.
	M int
}

// NewReduction validates the m <= n/70 requirement of Lemma 4.4.
func NewReduction(n, m int) (*Reduction, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("lowerbound: bad sizes n=%d m=%d", n, m)
	}
	if m > n/70 {
		return nil, fmt.Errorf("lowerbound: reduction needs m <= n/70 (m=%d, n=%d)", m, n)
	}
	return &Reduction{N: n, M: m}, nil
}

// K returns the histogram parameter k = 2·(m/3)+1 the tester is invoked
// with.
func (rd *Reduction) K() int { return 2*SmallSupport(rd.M) + 1 }

// Eps returns the distance parameter ε₁ = 1/24 of Proposition 4.2.
func (rd *Reduction) Eps() float64 { return 1.0 / 24 }

// Embed wraps an oracle over [0, m) as a freshly permuted oracle over
// [0, n). Each call draws a new permutation (the reduction repeats with
// fresh σ and fresh samples, taking a majority).
func (rd *Reduction) Embed(inner oracle.Oracle, r *rng.RNG) (oracle.Oracle, error) {
	if inner.N() != rd.M {
		return nil, fmt.Errorf("lowerbound: inner oracle over %d, want %d", inner.N(), rd.M)
	}
	sigma := r.Perm(rd.N)
	return oracle.NewPermuted(&enlarged{inner: inner, n: rd.N}, sigma)
}

// enlarged views an oracle over [0, m) as one over [0, n) (elements
// m..n−1 simply never occur — their mass is zero).
type enlarged struct {
	inner oracle.Oracle
	n     int
}

func (e *enlarged) N() int         { return e.n }
func (e *enlarged) Draw() int      { return e.inner.Draw() }
func (e *enlarged) Samples() int64 { return e.inner.Samples() }

// PermutedDistribution materializes the distribution the tester actually
// sees: d over [0, m) embedded in [0, n) and pushed through sigma. For
// ground-truth verification in experiments.
func PermutedDistribution(d *dist.Dense, n int, sigma []int) (*dist.Dense, error) {
	if len(sigma) != n {
		return nil, fmt.Errorf("lowerbound: permutation of size %d, want %d", len(sigma), n)
	}
	if d.N() > n {
		return nil, fmt.Errorf("lowerbound: cannot embed %d into %d", d.N(), n)
	}
	p := make([]float64, n)
	for i := 0; i < d.N(); i++ {
		p[sigma[i]] = d.Prob(i)
	}
	return dist.MustDense(p), nil
}

// PadWithHeavy applies the ε-rescaling trick closing Section 4.2: extend
// the domain by one element carrying mass 1−ε/ε₁·... Specifically, given a
// hard instance at distance scale ε₁ and a target ε <= ε₁, the instance is
// scaled by w = ε/ε₁ and an extra heavy element absorbs 1−w. Testing the
// padded instance at distance ε is as hard as testing the original at ε₁.
func PadWithHeavy(d *dist.Dense, eps, eps1 float64) (*dist.Dense, error) {
	if eps <= 0 || eps > eps1 {
		return nil, fmt.Errorf("lowerbound: need 0 < ε <= ε₁, got %v vs %v", eps, eps1)
	}
	w := eps / eps1
	p := make([]float64, d.N()+1)
	for i := 0; i < d.N(); i++ {
		p[i] = w * d.Prob(i)
	}
	p[d.N()] = 1 - w
	return dist.MustDense(p), nil
}
