package lowerbound

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestPaninskiValidDistribution(t *testing.T) {
	r := rng.New(1)
	d, err := Paninski(r, 64, 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
		t.Fatal("not normalized")
	}
	// Every pair sums to 2/n and has one high, one low side.
	hi := (1 + 0.6) / 64.0
	lo := (1 - 0.6) / 64.0
	for i := 0; i < 64; i += 2 {
		a, b := d.Prob(i), d.Prob(i+1)
		if math.Abs(a+b-2.0/64) > 1e-12 {
			t.Fatalf("pair %d sums to %v", i/2, a+b)
		}
		if !((approxEq(a, hi) && approxEq(b, lo)) || (approxEq(a, lo) && approxEq(b, hi))) {
			t.Fatalf("pair %d values %v, %v", i/2, a, b)
		}
	}
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPaninskiErrors(t *testing.T) {
	r := rng.New(2)
	if _, err := Paninski(r, 7, 0.1, 6); err == nil {
		t.Fatal("odd n accepted")
	}
	if _, err := Paninski(r, 8, 0.5, 6); err == nil {
		t.Fatal("cε > 1 accepted")
	}
}

func TestPaninskiFarFromHk(t *testing.T) {
	// Verify the Proposition 4.1 distance claim against the exact DP.
	r := rng.New(3)
	n, eps, c := 128, 0.15, 6.0
	for trial := 0; trial < 5; trial++ {
		d, err := Paninski(r, n, eps, c)
		if err != nil {
			t.Fatal(err)
		}
		lb := PaninskiDistanceLB(eps, c) // = ε for c = 6
		for _, k := range []int{1, 4, 16} {
			lower, _, err := histdp.TrueDistanceDense(d, k, intervals.FullDomain(n))
			if err != nil {
				t.Fatal(err)
			}
			if lower < lb-1e-9 {
				t.Fatalf("Q_ε member only %v from H_%d, claim %v", lower, k, lb)
			}
		}
	}
}

func TestPaninskiRandomDraws(t *testing.T) {
	// Two draws should (almost surely) differ.
	r := rng.New(4)
	a, _ := Paninski(r, 256, 0.1, 6)
	b, _ := Paninski(r, 256, 0.1, 6)
	if dist.TV(a, b) == 0 {
		t.Fatal("two random members identical")
	}
}

func TestSupportInstance(t *testing.T) {
	d, err := SupportInstance(120, SmallSupport(120))
	if err != nil {
		t.Fatal(err)
	}
	if dist.Support(d) != 40 {
		t.Fatalf("support = %d", dist.Support(d))
	}
	// Promise: every supported element has mass >= 1/m.
	for i := 0; i < d.N(); i++ {
		if p := d.Prob(i); p != 0 && p < 1.0/120 {
			t.Fatalf("element %d mass %v below promise", i, p)
		}
	}
	if _, err := SupportInstance(10, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if LargeSupport(120) != 105 {
		t.Fatalf("LargeSupport = %d", LargeSupport(120))
	}
}

func TestCover(t *testing.T) {
	cases := []struct {
		s    []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{1, 2, 3}, 1},
		{[]int{3, 1, 2}, 1},
		{[]int{1, 3, 5}, 3},
		{[]int{10, 11, 13, 14, 20}, 3},
	}
	for _, c := range cases {
		if got := Cover(c.s); got != c.want {
			t.Fatalf("Cover(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestLemma44CoverBound(t *testing.T) {
	// Monte-Carlo check of Lemma 4.4: for ℓ <= n/70,
	// Pr[cover(σ(S)) <= 6ℓ/7] <= 7ℓ/n.
	r := rng.New(5)
	n, ell := 7000, 100 // 7ℓ/n = 0.1
	const trials = 300
	low := 0
	for i := 0; i < trials; i++ {
		if PermutedSupportCover(r, n, ell) <= 6*ell/7 {
			low++
		}
	}
	rate := float64(low) / trials
	if rate > 0.12 {
		t.Fatalf("cover below 6ℓ/7 in %v of trials, Lemma 4.4 allows 0.1", rate)
	}
}

func TestReductionValidation(t *testing.T) {
	if _, err := NewReduction(100, 10); err == nil {
		t.Fatal("m > n/70 accepted")
	}
	rd, err := NewReduction(7000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rd.K() != 2*33+1 {
		t.Fatalf("K = %d", rd.K())
	}
	if rd.Eps() != 1.0/24 {
		t.Fatalf("Eps = %v", rd.Eps())
	}
}

func TestReductionSmallSideIsHistogram(t *testing.T) {
	// After permutation, a support of size ℓ covers at most ℓ runs; the
	// permuted distribution is a (2ℓ+1)-histogram with probability one.
	r := rng.New(6)
	m := 99
	n := 7000
	rd, err := NewReduction(n, m)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := SupportInstance(m, SmallSupport(m))
	sigma := r.Perm(n)
	perm, err := PermutedDistribution(small, n, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Complexity: each supported element is its own run at worst → at most
	// 2ℓ+1 pieces.
	pieces := densePieceCount(perm)
	if pieces > rd.K() {
		t.Fatalf("small-side permuted complexity %d > k = %d", pieces, rd.K())
	}
}

// densePieceCount counts maximal constant runs of a dense distribution.
func densePieceCount(d *dist.Dense) int {
	runs := 1
	for i := 1; i < d.N(); i++ {
		if d.Prob(i) != d.Prob(i-1) {
			runs++
		}
	}
	return runs
}

func TestReductionLargeSideFar(t *testing.T) {
	// The large-support side, permuted, should be far from H_k whp.
	r := rng.New(7)
	m := 99
	n := 7000
	rd, _ := NewReduction(n, m)
	large, _ := SupportInstance(m, LargeSupport(m))
	farCount := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		sigma := r.Perm(n)
		perm, err := PermutedDistribution(large, n, sigma)
		if err != nil {
			t.Fatal(err)
		}
		lower, _, err := histdp.TrueDistanceDense(perm, rd.K(), intervals.FullDomain(n))
		if err != nil {
			t.Fatal(err)
		}
		if lower >= rd.Eps() {
			farCount++
		}
	}
	if farCount < 4 {
		t.Fatalf("large side far from H_k in only %d/%d permutations", farCount, trials)
	}
}

func TestEmbedOracle(t *testing.T) {
	r := rng.New(8)
	m, n := 99, 7000
	rd, _ := NewReduction(n, m)
	small, _ := SupportInstance(m, SmallSupport(m))
	inner := oracle.NewSampler(small, r)
	emb, err := rd.Embed(inner, r)
	if err != nil {
		t.Fatal(err)
	}
	if emb.N() != n {
		t.Fatalf("embedded domain = %d", emb.N())
	}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := emb.Draw()
		if v < 0 || v >= n {
			t.Fatalf("sample %d out of range", v)
		}
		seen[v] = true
	}
	// Support size ≈ 33 distinct values at most.
	if len(seen) > SmallSupport(m) {
		t.Fatalf("saw %d distinct values from support %d", len(seen), SmallSupport(m))
	}
	if emb.Samples() != 1000 {
		t.Fatalf("sample accounting = %d", emb.Samples())
	}
	// Wrong inner size is rejected.
	if _, err := rd.Embed(oracle.NewSampler(dist.Uniform(5), r), r); err == nil {
		t.Fatal("wrong-size inner oracle accepted")
	}
}

func TestPadWithHeavy(t *testing.T) {
	d := dist.MustDense([]float64{0.5, 0.5})
	padded, err := PadWithHeavy(d, 0.01, 1.0/24)
	if err != nil {
		t.Fatal(err)
	}
	if padded.N() != 3 {
		t.Fatal("domain not extended")
	}
	if math.Abs(dist.TotalMass(padded)-1) > 1e-12 {
		t.Fatal("not normalized")
	}
	w := 0.01 * 24
	if math.Abs(padded.Prob(2)-(1-w)) > 1e-12 {
		t.Fatalf("heavy element mass = %v", padded.Prob(2))
	}
	if _, err := PadWithHeavy(d, 0.5, 1.0/24); err == nil {
		t.Fatal("ε > ε₁ accepted")
	}
}
