package cli

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// The cross-engine conformance battery only covers what its engine list
// names, and that list is declared in three places that can silently
// drift apart: the registry (what the code actually has), the Makefile
// default (what `make conformance` runs locally), and the CI workflows
// (what the gate runs on every push). A fourth copy — the serving
// layer's workload list — names the request shapes the e2e suites must
// exercise. DeclaredLists extracts the declarations; ListDrift diffs
// each against the registry truth.

// DeclaredList is one place a name list is declared: a `NAME ?= a,b`
// Makefile assignment or a `NAME=a,b` occurrence in a workflow file.
type DeclaredList struct {
	// Source names where the declaration was found (file plus variable).
	Source string
	// Names is the comma-split declaration, order preserved.
	Names []string
}

// DeclaredLists scans text (a Makefile or workflow YAML) for assignments
// of varName — `VAR ?= a,b` or `VAR=a,b`, including inside `run:` lines —
// and returns one DeclaredList per occurrence, labeled source:occurrence.
func DeclaredLists(source, text, varName string) []DeclaredList {
	re := regexp.MustCompile(fmt.Sprintf(`(?m)%s\s*\??=\s*([A-Za-z0-9_,-]+)`, regexp.QuoteMeta(varName)))
	var out []DeclaredList
	for i, m := range re.FindAllStringSubmatch(text, -1) {
		label := source
		if i > 0 {
			label = fmt.Sprintf("%s (occurrence %d)", source, i+1)
		}
		var names []string
		for _, n := range strings.Split(m[1], ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		out = append(out, DeclaredList{Source: label + " " + varName, Names: names})
	}
	return out
}

// ListDrift diffs every declared list against the registry truth. Any
// difference — a registered name a declaration omits (the battery would
// silently shrink) or a declared name the registry lacks (the battery
// would fail on a ghost) — is a violation. Declarations are compared as
// sets; duplicate names within one declaration are also violations.
func ListDrift(registry []string, declared []DeclaredList) (violations []string) {
	want := append([]string(nil), registry...)
	sort.Strings(want)
	wantSet := map[string]bool{}
	for _, n := range want {
		wantSet[n] = true
	}
	for _, d := range declared {
		seen := map[string]bool{}
		for _, n := range d.Names {
			if seen[n] {
				violations = append(violations, fmt.Sprintf("%s: duplicate name %q", d.Source, n))
			}
			seen[n] = true
			if !wantSet[n] {
				violations = append(violations,
					fmt.Sprintf("%s: names %q, which the registry does not have (registry: %s)",
						d.Source, n, strings.Join(want, ",")))
			}
		}
		for _, n := range want {
			if !seen[n] {
				violations = append(violations,
					fmt.Sprintf("%s: missing registered name %q — the battery would silently shrink (declared: %s)",
						d.Source, n, strings.Join(d.Names, ",")))
			}
		}
	}
	return violations
}
