package cli

import (
	"strings"
	"testing"
)

const sampleProfile = `mode: set
repro/internal/core/engine.go:10.13,12.2 3 1
repro/internal/core/engine.go:14.2,16.2 2 0
repro/internal/core/sieve.go:5.1,9.2 5 1
repro/internal/cli/cli.go:8.1,9.2 4 1
repro/internal/cli/cli.go:11.1,12.2 6 0
`

func TestParseCoverProfile(t *testing.T) {
	rep, err := ParseCoverProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	// core: 8 of 10 statements covered; cli: 4 of 10; total: 12 of 20.
	if got := rep.Packages["repro/internal/core"]; got != 80 {
		t.Fatalf("core coverage %v, want 80", got)
	}
	if got := rep.Packages["repro/internal/cli"]; got != 40 {
		t.Fatalf("cli coverage %v, want 40", got)
	}
	if rep.Total != 60 {
		t.Fatalf("total coverage %v, want 60", rep.Total)
	}
	if rep.Schema != CoverageSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
}

func TestParseCoverProfileRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"mode: set\n",
		"mode: set\nnonsense without separator\n",
		"mode: set\nfile.go:1.1,2.2 x 1\n",
		"mode: set\nfile.go:1.1,2.2 1\n",
	} {
		if _, err := ParseCoverProfile(strings.NewReader(bad)); err == nil {
			t.Fatalf("profile %q parsed without error", bad)
		}
	}
}

func coverageFixture() (*CoverageReport, *CoverageReport) {
	base := &CoverageReport{
		Schema: CoverageSchema,
		Total:  70,
		Packages: map[string]float64{
			"repro/internal/core": 80,
			"repro/internal/cli":  60,
		},
	}
	cur := &CoverageReport{
		Schema: CoverageSchema,
		Total:  70.5,
		Packages: map[string]float64{
			"repro/internal/core": 80.5,
			"repro/internal/cli":  60,
		},
	}
	return base, cur
}

func TestCompareCoveragePasses(t *testing.T) {
	base, cur := coverageFixture()
	violations, deltas, notes := CompareCoverage(base, cur, 1.0)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	// Every baseline package plus the total shows a delta line.
	if len(deltas) != 3 {
		t.Fatalf("want 3 delta lines, got %v", deltas)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
}

// The ratchet must actually bite: a >1pt per-package drop, a >1pt total
// drop, and a vanished package each fail the gate.
func TestCompareCoverageFailsOnDrop(t *testing.T) {
	base, cur := coverageFixture()
	cur.Packages["repro/internal/core"] = 78.5 // -1.5pt
	violations, _, _ := CompareCoverage(base, cur, 1.0)
	if len(violations) != 1 || !strings.Contains(violations[0], "repro/internal/core") {
		t.Fatalf("per-package drop not caught: %v", violations)
	}

	base, cur = coverageFixture()
	cur.Total = 68.5
	violations, _, _ = CompareCoverage(base, cur, 1.0)
	if len(violations) != 1 || !strings.Contains(violations[0], "total") {
		t.Fatalf("total drop not caught: %v", violations)
	}

	base, cur = coverageFixture()
	delete(cur.Packages, "repro/internal/cli")
	violations, _, _ = CompareCoverage(base, cur, 1.0)
	if len(violations) != 1 || !strings.Contains(violations[0], "missing from the current profile") {
		t.Fatalf("vanished package not caught: %v", violations)
	}
}

func TestCompareCoverageToleratesSmallDipAndNotesNewPackages(t *testing.T) {
	base, cur := coverageFixture()
	cur.Packages["repro/internal/core"] = 79.2 // -0.8pt: within tolerance
	cur.Packages["repro/internal/fresh"] = 12
	violations, _, notes := CompareCoverage(base, cur, 1.0)
	if len(violations) != 0 {
		t.Fatalf("dip within tolerance flagged: %v", violations)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "repro/internal/fresh") {
		t.Fatalf("new package not noted: %v", notes)
	}
}
