package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareIngestThroughputGatesDownward(t *testing.T) {
	base := map[string]IngestResult{"Soak": {EventsPerSec: 1e7, GOMAXPROCS: 1}}
	// Exactly -30% is within a 30% tolerance.
	ok := map[string]IngestResult{"Soak": {EventsPerSec: 7e6, GOMAXPROCS: 1}}
	if v, _ := CompareIngest(base, ok, 0.30, 0); len(v) != 0 {
		t.Fatalf("-30%% should be within a 30%% tolerance, got %v", v)
	}
	bad := map[string]IngestResult{"Soak": {EventsPerSec: 6.9e6, GOMAXPROCS: 1}}
	v, _ := CompareIngest(base, bad, 0.30, 0)
	if len(v) != 1 || !strings.Contains(v[0], "events/s regressed") {
		t.Fatalf("-31%% should violate a 30%% tolerance, got %v", v)
	}
	// Faster than baseline never violates.
	fast := map[string]IngestResult{"Soak": {EventsPerSec: 1e9, GOMAXPROCS: 1}}
	if v, _ := CompareIngest(base, fast, 0.30, 0); len(v) != 0 {
		t.Fatalf("an improvement must not violate, got %v", v)
	}
}

func TestCompareIngestAbsoluteFloor(t *testing.T) {
	// The floor binds entries at gomaxprocs >= 4 even when the relative
	// gate passes (a slow baseline must not erode the acceptance bar).
	base := map[string]IngestResult{
		"Soak4": {EventsPerSec: 9e5, GOMAXPROCS: 4},
		"Soak1": {EventsPerSec: 9e5, GOMAXPROCS: 1},
	}
	cur := map[string]IngestResult{
		"Soak4": {EventsPerSec: 9e5, GOMAXPROCS: 4},
		"Soak1": {EventsPerSec: 9e5, GOMAXPROCS: 1},
	}
	v, _ := CompareIngest(base, cur, 0.30, IngestFloorEventsPerSec)
	if len(v) != 1 || !strings.Contains(v[0], "Soak4") || !strings.Contains(v[0], "floor") {
		t.Fatalf("a 4-way entry under 1M events/s must trip the floor (and only it), got %v", v)
	}
	cur["Soak4"] = IngestResult{EventsPerSec: 1.1e6, GOMAXPROCS: 4}
	if v, _ := CompareIngest(base, cur, 0.30, IngestFloorEventsPerSec); len(v) != 0 {
		t.Fatalf("above the floor should pass, got %v", v)
	}
	// floor <= 0 disables the absolute check.
	cur["Soak4"] = IngestResult{EventsPerSec: 9e5, GOMAXPROCS: 4}
	if v, _ := CompareIngest(base, cur, 0.30, 0); len(v) != 0 {
		t.Fatalf("floor 0 should disable the absolute check, got %v", v)
	}
}

func TestCompareIngestMissingAndMismatched(t *testing.T) {
	base := map[string]IngestResult{
		"Gone": {EventsPerSec: 1e6, GOMAXPROCS: 1},
		"Par":  {EventsPerSec: 4e6, GOMAXPROCS: 4},
	}
	cur := map[string]IngestResult{
		"Par": {EventsPerSec: 1e5, GOMAXPROCS: 1}, // machine too small: skip, don't violate
	}
	v, skipped := CompareIngest(base, cur, 0.30, IngestFloorEventsPerSec)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("a dropped benchmark must violate, got %v", v)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "gomaxprocs 4") {
		t.Fatalf("mismatched parallelism must be reported as skipped, got %v", skipped)
	}
}

func TestLoadIngestReport(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.json")
	rep := IngestReport{
		Schema:  IngestSchema,
		Results: map[string]IngestResult{"B": {EventsPerSec: 2.5e6, GOMAXPROCS: 4}},
	}
	payload, _ := json.Marshal(rep)
	os.WriteFile(good, payload, 0o644)
	got, err := LoadIngestReport(good)
	if err != nil {
		t.Fatalf("loading a valid report: %v", err)
	}
	if got.Results["B"].EventsPerSec != 2.5e6 || got.Results["B"].GOMAXPROCS != 4 {
		t.Fatalf("round-trip lost data: %+v", got)
	}

	for name, body := range map[string]string{
		"badschema.json": `{"schema":"histbench-hotpath/v2","results":{"B":{}}}`,
		"empty.json":     `{"schema":"` + IngestSchema + `","results":{}}`,
		"garbage.json":   `not json`,
	} {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(body), 0o644)
		if _, err := LoadIngestReport(p); err == nil {
			t.Fatalf("%s should fail to load", name)
		}
	}
}
