package cli

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// CoverageSchema identifies the COVERAGE.json wire format.
const CoverageSchema = "histbench-coverage/v1"

// CoverageReport is the schema of COVERAGE.json: the committed statement
// coverage floor the ratchet gates against. Percentages are statement
// coverage (covered statements / total statements), rounded to two
// decimals so regeneration diffs stay readable.
type CoverageReport struct {
	Schema string `json:"schema"`
	// Total is the module-wide statement coverage percentage.
	Total float64 `json:"total_pct"`
	// Packages maps import path to that package's statement coverage
	// percentage. Packages with no statements in the profile (no Go
	// files compiled, or test-only) do not appear.
	Packages map[string]float64 `json:"packages_pct"`
}

// ParseCoverProfile aggregates a `go test -coverprofile` file into
// per-package and total statement coverage. All three cover modes (set,
// count, atomic) reduce the same way: a statement block is covered when
// its count is positive, and each block weighs its statement count.
func ParseCoverProfile(rd io.Reader) (*CoverageReport, error) {
	type tally struct{ covered, total int64 }
	perPkg := map[string]*tally{}
	var all tally

	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:sl.sc,el.ec numstmt count
		colon := strings.LastIndex(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("coverprofile line %d: no file separator in %q", lineNo, line)
		}
		fields := strings.Fields(line[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("coverprofile line %d: want `range numstmt count`, got %q", lineNo, line)
		}
		numStmt, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("coverprofile line %d: bad statement count: %w", lineNo, err)
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("coverprofile line %d: bad hit count: %w", lineNo, err)
		}
		pkg := path.Dir(line[:colon])
		t := perPkg[pkg]
		if t == nil {
			t = &tally{}
			perPkg[pkg] = t
		}
		t.total += numStmt
		all.total += numStmt
		if count > 0 {
			t.covered += numStmt
			all.covered += numStmt
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if all.total == 0 {
		return nil, fmt.Errorf("coverprofile: no statement blocks (empty or truncated profile)")
	}

	pct := func(t *tally) float64 {
		return math.Round(float64(t.covered)/float64(t.total)*100*100) / 100
	}
	rep := &CoverageReport{Schema: CoverageSchema, Total: pct(&all), Packages: map[string]float64{}}
	for pkg, t := range perPkg {
		rep.Packages[pkg] = pct(t)
	}
	return rep, nil
}

// LoadCoverageReport reads and validates a committed coverage report.
func LoadCoverageReport(pathName string) (*CoverageReport, error) {
	payload, err := os.ReadFile(pathName)
	if err != nil {
		return nil, err
	}
	var rep CoverageReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", pathName, err)
	}
	if rep.Schema != CoverageSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", pathName, rep.Schema, CoverageSchema)
	}
	if len(rep.Packages) == 0 {
		return nil, fmt.Errorf("%s: no package entries", pathName)
	}
	return &rep, nil
}

// CompareCoverage ratchets current coverage against the committed
// baseline. A drop of more than tolerancePts percentage points — total
// or per-package — is a violation, as is a baseline package missing from
// the current profile entirely (deleting tests must not pass the gate by
// deleting the package's profile lines). Packages only in current are
// new since the baseline; they are reported as notes and start gating
// once the report is regenerated. Every per-package delta is returned in
// deltas (sorted, worst first) so CI logs show the full movement, not
// just the violations.
func CompareCoverage(baseline, current *CoverageReport, tolerancePts float64) (violations, deltas, notes []string) {
	type move struct {
		pkg       string
		base, cur float64
		delta     float64
	}
	moves := make([]move, 0, len(baseline.Packages))
	names := make([]string, 0, len(baseline.Packages))
	for pkg := range baseline.Packages {
		names = append(names, pkg)
	}
	sort.Strings(names)

	for _, pkg := range names {
		base := baseline.Packages[pkg]
		cur, ok := current.Packages[pkg]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline (%.2f%%) but missing from the current profile", pkg, base))
			continue
		}
		moves = append(moves, move{pkg: pkg, base: base, cur: cur, delta: cur - base})
		if base-cur > tolerancePts {
			violations = append(violations,
				fmt.Sprintf("%s: coverage dropped %.2f%% -> %.2f%% (floor %.2f%% at %.1fpt tolerance)",
					pkg, base, cur, base-tolerancePts, tolerancePts))
		}
	}
	if baseline.Total-current.Total > tolerancePts {
		violations = append(violations,
			fmt.Sprintf("total: coverage dropped %.2f%% -> %.2f%% (floor %.2f%% at %.1fpt tolerance)",
				baseline.Total, current.Total, baseline.Total-tolerancePts, tolerancePts))
	}

	sort.Slice(moves, func(i, j int) bool { return moves[i].delta < moves[j].delta })
	for _, m := range moves {
		deltas = append(deltas, fmt.Sprintf("%s: %.2f%% -> %.2f%% (%+.2fpt)", m.pkg, m.base, m.cur, m.delta))
	}
	deltas = append(deltas, fmt.Sprintf("total: %.2f%% -> %.2f%% (%+.2fpt)",
		baseline.Total, current.Total, current.Total-baseline.Total))

	curNames := make([]string, 0, len(current.Packages))
	for pkg := range current.Packages {
		if _, ok := baseline.Packages[pkg]; !ok {
			curNames = append(curNames, pkg)
		}
	}
	sort.Strings(curNames)
	for _, pkg := range curNames {
		notes = append(notes,
			fmt.Sprintf("%s: new since the baseline (%.2f%%); regenerate COVERAGE.json to arm its ratchet", pkg, current.Packages[pkg]))
	}
	return violations, deltas, notes
}
