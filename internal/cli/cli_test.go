package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseValues(t *testing.T) {
	got, err := ParseValues(strings.NewReader(" 1 2\n3\t4  \n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := ParseValues(strings.NewReader("1 x 3")); err == nil {
		t.Fatal("garbage accepted")
	}
	empty, err := ParseValues(strings.NewReader(""))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty input: %v %v", empty, err)
	}
}

func TestReadValuesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vals.txt")
	if err := os.WriteFile(path, []byte("7 8 9"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadValues(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 9 {
		t.Fatalf("got %v", got)
	}
	if _, err := ReadValues(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCyclingSource(t *testing.T) {
	src, err := CyclingSource([]int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 5, 4, 5, 4}
	for i, w := range want {
		if got := src(); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
	if _, err := CyclingSource(nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
