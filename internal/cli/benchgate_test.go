package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareHotpathWithinTolerance(t *testing.T) {
	base := map[string]HotpathResult{"B": {AllocsPerOp: 100}}
	cur := map[string]HotpathResult{"B": {AllocsPerOp: 110}} // exactly +10%
	if v, _, _ := CompareHotpath(base, cur, 0.10, 0); len(v) != 0 {
		t.Fatalf("+10%% should be within a 10%% tolerance, got %v", v)
	}
}

func TestCompareHotpathRegression(t *testing.T) {
	base := map[string]HotpathResult{"B": {AllocsPerOp: 100}}
	cur := map[string]HotpathResult{"B": {AllocsPerOp: 111}}
	v, _, _ := CompareHotpath(base, cur, 0.10, 0)
	if len(v) != 1 || !strings.Contains(v[0], "100 -> 111") {
		t.Fatalf("+11%% should violate a 10%% tolerance, got %v", v)
	}
}

func TestCompareHotpathZeroAllocBaseline(t *testing.T) {
	// A zero-alloc benchmark must stay zero-alloc: tolerance scales the
	// baseline, so any allocation at all is a regression.
	base := map[string]HotpathResult{"B": {AllocsPerOp: 0}}
	if v, _, _ := CompareHotpath(base, map[string]HotpathResult{"B": {AllocsPerOp: 1}}, 0.10, 0); len(v) != 1 {
		t.Fatalf("1 alloc against a zero-alloc baseline should violate, got %v", v)
	}
	if v, _, _ := CompareHotpath(base, map[string]HotpathResult{"B": {AllocsPerOp: 0}}, 0.10, 0); len(v) != 0 {
		t.Fatalf("zero allocs against a zero-alloc baseline should pass, got %v", v)
	}
}

func TestCompareHotpathMissingBenchmark(t *testing.T) {
	base := map[string]HotpathResult{"Gone": {AllocsPerOp: 5}}
	v, _, _ := CompareHotpath(base, map[string]HotpathResult{}, 0.10, 0.15)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("a dropped benchmark must not pass silently, got %v", v)
	}
}

func TestCompareHotpathIgnoresNewBenchmarks(t *testing.T) {
	base := map[string]HotpathResult{"B": {AllocsPerOp: 10}}
	cur := map[string]HotpathResult{
		"B":   {AllocsPerOp: 10},
		"New": {AllocsPerOp: 1 << 20}, // no reference yet; not gated
	}
	if v, _, _ := CompareHotpath(base, cur, 0.10, 0.15); len(v) != 0 {
		t.Fatalf("benchmarks without a baseline should not gate, got %v", v)
	}
}

func TestCompareHotpathNsPerOp(t *testing.T) {
	base := map[string]HotpathResult{"B": {NsPerOp: 1000, GOMAXPROCS: 1}}
	within := map[string]HotpathResult{"B": {NsPerOp: 1150, GOMAXPROCS: 1}} // exactly +15%
	if v, _, _ := CompareHotpath(base, within, 0.10, 0.15); len(v) != 0 {
		t.Fatalf("+15%% ns/op should be within a 15%% tolerance, got %v", v)
	}
	regressed := map[string]HotpathResult{"B": {NsPerOp: 1160, GOMAXPROCS: 1}}
	v, _, _ := CompareHotpath(base, regressed, 0.10, 0.15)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op regressed") {
		t.Fatalf("+16%% ns/op should violate a 15%% tolerance, got %v", v)
	}
	// Disabled when the tolerance is non-positive.
	if v, _, _ := CompareHotpath(base, regressed, 0.10, 0); len(v) != 0 {
		t.Fatalf("ns/op gate should be off at tolerance 0, got %v", v)
	}
}

func TestCompareHotpathSkipsMismatchedGOMAXPROCS(t *testing.T) {
	// A baseline measured at one parallelism must not gate a re-run at
	// another: neither metric is comparable across the fan-out change.
	base := map[string]HotpathResult{"B": {NsPerOp: 1000, AllocsPerOp: 10, GOMAXPROCS: 8}}
	cur := map[string]HotpathResult{"B": {NsPerOp: 8000, AllocsPerOp: 99, GOMAXPROCS: 1}}
	if v, _, _ := CompareHotpath(base, cur, 0.10, 0.15); len(v) != 0 {
		t.Fatalf("mismatched gomaxprocs entries must be skipped, got %v", v)
	}
	// Matching entries still gate.
	cur["B"] = HotpathResult{NsPerOp: 8000, AllocsPerOp: 99, GOMAXPROCS: 8}
	if v, _, _ := CompareHotpath(base, cur, 0.10, 0.15); len(v) != 2 {
		t.Fatalf("matching gomaxprocs should gate both metrics, got %v", v)
	}
}

func TestCompareHotpathReportsSkippedPairs(t *testing.T) {
	// Every skipped comparison must be reported — a silent skip is how a
	// regenerated report quietly stops gating a benchmark.
	base := map[string]HotpathResult{
		"Par": {NsPerOp: 1000, AllocsPerOp: 10, GOMAXPROCS: 4},
		"Ser": {NsPerOp: 2000, AllocsPerOp: 20, GOMAXPROCS: 1},
	}
	cur := map[string]HotpathResult{
		"Par": {NsPerOp: 1000, AllocsPerOp: 10, GOMAXPROCS: 1}, // machine too small
		"Ser": {NsPerOp: 2000, AllocsPerOp: 20, GOMAXPROCS: 1},
	}
	v, skipped, _ := CompareHotpath(base, cur, 0.10, 0.15)
	if len(v) != 0 {
		t.Fatalf("expected no violations, got %v", v)
	}
	if len(skipped) != 1 {
		t.Fatalf("expected exactly the mismatched pair to be reported, got %v", skipped)
	}
	if !strings.Contains(skipped[0], "Par") ||
		!strings.Contains(skipped[0], "gomaxprocs 4") ||
		!strings.Contains(skipped[0], "current at 1") {
		t.Fatalf("skip message must name the pair and both parallelism values, got %q", skipped[0])
	}

	// Fully like-for-like runs report nothing skipped.
	cur["Par"] = HotpathResult{NsPerOp: 1000, AllocsPerOp: 10, GOMAXPROCS: 4}
	if _, skipped, _ := CompareHotpath(base, cur, 0.10, 0.15); len(skipped) != 0 {
		t.Fatalf("nothing should be skipped on a like-for-like run, got %v", skipped)
	}
}

func TestCompareHotpathProjectedBaselineNeverGates(t *testing.T) {
	// A projected baseline is a placeholder, not a reference: even a
	// grossly regressed current run must not violate against it — and it
	// must not pass silently either, so it is reported as unverified.
	base := map[string]HotpathResult{
		"Par":  {NsPerOp: 1000, AllocsPerOp: 10, GOMAXPROCS: 4, Projected: true},
		"Real": {NsPerOp: 1000, AllocsPerOp: 10, GOMAXPROCS: 1},
	}
	cur := map[string]HotpathResult{
		"Par":  {NsPerOp: 99000, AllocsPerOp: 9999, GOMAXPROCS: 4},
		"Real": {NsPerOp: 1000, AllocsPerOp: 10, GOMAXPROCS: 1},
	}
	v, skipped, unverified := CompareHotpath(base, cur, 0.10, 0.15)
	if len(v) != 0 || len(skipped) != 0 {
		t.Fatalf("projected baseline must not gate or skip: violations %v, skipped %v", v, skipped)
	}
	if len(unverified) != 1 || !strings.Contains(unverified[0], "Par") ||
		!strings.Contains(unverified[0], "projection") {
		t.Fatalf("projected baseline must be reported as unverified, got %v", unverified)
	}

	// A projected baseline is even exempt from the missing-benchmark
	// violation — there is nothing trustworthy to hold the current run to.
	delete(cur, "Par")
	if v, _, unv := CompareHotpath(base, cur, 0.10, 0.15); len(v) != 0 || len(unv) != 1 {
		t.Fatalf("missing benchmark under a projected baseline: violations %v, unverified %v", v, unv)
	}

	// Measured baselines still gate as before.
	cur["Real"] = HotpathResult{NsPerOp: 5000, AllocsPerOp: 10, GOMAXPROCS: 1}
	if v, _, _ := CompareHotpath(base, cur, 0.10, 0.15); len(v) != 1 {
		t.Fatalf("measured baseline should still gate, got %v", v)
	}
}

func TestLoadHotpathReport(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.json")
	rep := HotpathReport{
		Schema:  HotpathSchema,
		Results: map[string]HotpathResult{"B": {AllocsPerOp: 7, GOMAXPROCS: 1}},
	}
	payload, _ := json.Marshal(rep)
	os.WriteFile(good, payload, 0o644)
	got, err := LoadHotpathReport(good)
	if err != nil {
		t.Fatalf("loading a valid report: %v", err)
	}
	if got.Results["B"].AllocsPerOp != 7 || got.Results["B"].GOMAXPROCS != 1 {
		t.Fatalf("round-trip lost data: %+v", got)
	}

	for name, body := range map[string]string{
		"badschema.json": `{"schema":"other/v9","results":{"B":{}}}`,
		"v1.json":        `{"schema":"histbench-hotpath/v1","results":{"B":{}}}`,
		"empty.json":     `{"schema":"` + HotpathSchema + `","results":{}}`,
		"garbage.json":   `not json`,
	} {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(body), 0o644)
		if _, err := LoadHotpathReport(p); err == nil {
			t.Fatalf("%s should fail to load", name)
		}
	}
	if _, err := LoadHotpathReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("a missing file should fail to load")
	}
}
