package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// IngestSchema identifies the BENCH_ingest.json wire format: the
// streaming-ingestion throughput trajectory, tracked per entry at the
// parallelism it was measured at (same discipline as the hot-path
// report — mismatched gomaxprocs entries are skipped, not compared).
const IngestSchema = "histbench-ingest/v1"

// IngestFloorEventsPerSec is the absolute acceptance floor: the soak
// benchmark must sustain at least this aggregate ingest rate at 4-way
// parallelism. Unlike the relative regression tolerance, the floor does
// not drift with the committed report.
const IngestFloorEventsPerSec = 1_000_000

// IngestResult is one benchmark line of an ingest-throughput report.
type IngestResult struct {
	Iterations   int     `json:"iterations"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	// GOMAXPROCS is the parallelism the entry was measured at; the gate
	// only compares entries measured at equal parallelism.
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note,omitempty"`
}

// IngestReport is the schema of BENCH_ingest.json.
type IngestReport struct {
	Schema   string                  `json:"schema"`
	Go       string                  `json:"go"`
	Workload string                  `json:"workload"`
	Results  map[string]IngestResult `json:"results"`
}

// LoadIngestReport reads and validates an ingest-throughput report file.
func LoadIngestReport(path string) (*IngestReport, error) {
	payload, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep IngestReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != IngestSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, IngestSchema)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

// CompareIngest gates current ingest throughput against a committed
// baseline. Throughput gates DOWNWARD: a violation is events/s falling
// more than tolerance below the baseline (allocations are informational
// here — the soak's allocs/op is already pinned by the accumulator's
// own tests). A baseline benchmark missing from current is a violation;
// entries measured at different GOMAXPROCS are skipped and reported,
// like the hot-path gate.
//
// floor additionally holds every current entry measured at gomaxprocs
// >= 4 to an absolute minimum events/s regardless of the baseline —
// the "millions of events/sec" acceptance bar cannot be eroded by
// regenerating the report on a slow machine. Disabled when floor <= 0.
func CompareIngest(baseline, current map[string]IngestResult, tolerance, floor float64) (violations, skipped []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but missing from current results", name))
			continue
		}
		if base.GOMAXPROCS != cur.GOMAXPROCS {
			skipped = append(skipped,
				fmt.Sprintf("%s: skipped — baseline measured at gomaxprocs %d, current at %d; regenerate the report on a machine with matching parallelism to re-arm this gate",
					name, base.GOMAXPROCS, cur.GOMAXPROCS))
			continue
		}
		if limit := base.EventsPerSec * (1 - tolerance); cur.EventsPerSec < limit {
			violations = append(violations,
				fmt.Sprintf("%s: events/s regressed %.0f -> %.0f (limit %.0f at -%.0f%% tolerance, gomaxprocs %d)",
					name, base.EventsPerSec, cur.EventsPerSec, limit, tolerance*100, base.GOMAXPROCS))
		}
		if floor > 0 && cur.GOMAXPROCS >= 4 && cur.EventsPerSec < floor {
			violations = append(violations,
				fmt.Sprintf("%s: events/s %.0f below the absolute floor %.0f at gomaxprocs %d",
					name, cur.EventsPerSec, floor, cur.GOMAXPROCS))
		}
	}
	return violations, skipped
}
