// Package cli holds the small helpers shared by the command-line tools:
// dataset parsing and source adaptation.
package cli

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadValues parses whitespace-separated integers from the named file, or
// from stdin when path is empty.
func ReadValues(path string) ([]int, error) {
	var rd io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	return ParseValues(rd)
}

// ParseValues parses whitespace-separated integers from rd.
func ParseValues(rd io.Reader) ([]int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	var out []int
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", sc.Text(), err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

// CyclingSource adapts a finite dataset to a func() int sample source by
// cycling through it (adequate when the dataset is much larger than the
// consumer's budget). It returns an error for an empty dataset.
func CyclingSource(data []int) (func() int, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("cli: empty dataset")
	}
	idx := 0
	return func() int {
		v := data[idx%len(data)]
		idx++
		return v
	}, nil
}
