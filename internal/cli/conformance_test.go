package cli

import (
	"strings"
	"testing"
)

const sampleMakefile = `
GO ?= go
CONFORMANCE_ENGINES ?= adk,cdkl22
conformance:
	$(GO) test ./internal/core/ -conformance-engines=$(CONFORMANCE_ENGINES)
`

const sampleWorkflow = `
jobs:
  conformance-list:
    steps:
      - name: explicit-list conformance battery
        run: make conformance CONFORMANCE_ENGINES=adk,cdkl22
`

func TestDeclaredLists(t *testing.T) {
	got := DeclaredLists("Makefile", sampleMakefile, "CONFORMANCE_ENGINES")
	// The ?= default matches; the $(CONFORMANCE_ENGINES) expansion must not.
	if len(got) != 1 {
		t.Fatalf("want 1 declaration, got %+v", got)
	}
	if strings.Join(got[0].Names, ",") != "adk,cdkl22" {
		t.Fatalf("names %v", got[0].Names)
	}

	got = DeclaredLists("ci.yml", sampleWorkflow, "CONFORMANCE_ENGINES")
	if len(got) != 1 || strings.Join(got[0].Names, ",") != "adk,cdkl22" {
		t.Fatalf("workflow declaration: %+v", got)
	}

	if got := DeclaredLists("ci.yml", "jobs: {}", "CONFORMANCE_ENGINES"); len(got) != 0 {
		t.Fatalf("ghost declaration: %+v", got)
	}
}

func TestListDriftAgrees(t *testing.T) {
	declared := append(
		DeclaredLists("Makefile", sampleMakefile, "CONFORMANCE_ENGINES"),
		DeclaredLists("ci.yml", sampleWorkflow, "CONFORMANCE_ENGINES")...,
	)
	if v := ListDrift([]string{"adk", "cdkl22"}, declared); len(v) != 0 {
		t.Fatalf("agreeing lists flagged: %v", v)
	}
}

// The drift gate must actually bite, in both directions and on dupes.
func TestListDriftCatchesPerturbations(t *testing.T) {
	// Registry grew an engine the declarations don't name: the battery
	// would silently shrink.
	declared := DeclaredLists("Makefile", sampleMakefile, "CONFORMANCE_ENGINES")
	v := ListDrift([]string{"adk", "cdkl22", "dkn17"}, declared)
	if len(v) != 1 || !strings.Contains(v[0], `missing registered name "dkn17"`) {
		t.Fatalf("shrunken battery not caught: %v", v)
	}

	// Declaration names an engine the registry lost: ghost entry.
	v = ListDrift([]string{"adk"}, declared)
	if len(v) != 1 || !strings.Contains(v[0], `"cdkl22"`) {
		t.Fatalf("ghost engine not caught: %v", v)
	}

	// Duplicate name within one declaration.
	dupes := []DeclaredList{{Source: "Makefile CONFORMANCE_ENGINES", Names: []string{"adk", "adk", "cdkl22"}}}
	v = ListDrift([]string{"adk", "cdkl22"}, dupes)
	if len(v) != 1 || !strings.Contains(v[0], "duplicate") {
		t.Fatalf("duplicate not caught: %v", v)
	}
}
