package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// HotpathSchema identifies the BENCH_hotpath.json wire format.
const HotpathSchema = "histbench-hotpath/v1"

// HotpathResult is one benchmark line of a hot-path report.
type HotpathResult struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

// HotpathReport is the schema of BENCH_hotpath.json. Baseline holds the
// pre-pooling numbers recorded once (PR 2, before the arena/pool work
// landed) so regeneration preserves the reference point the current
// numbers are compared against.
type HotpathReport struct {
	Schema     string                   `json:"schema"`
	Go         string                   `json:"go"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Workload   string                   `json:"workload"`
	Baseline   map[string]HotpathResult `json:"baseline_pre_pooling"`
	Results    map[string]HotpathResult `json:"results"`
}

// LoadHotpathReport reads and validates a hot-path report file.
func LoadHotpathReport(path string) (*HotpathReport, error) {
	payload, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep HotpathReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != HotpathSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, HotpathSchema)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

// CompareHotpath gates current benchmark results against a committed
// baseline: any benchmark whose allocs/op exceeds the baseline by more
// than tolerance (a fraction, e.g. 0.10 for 10%) is a violation, as is
// a baseline benchmark missing from current (a silently dropped
// benchmark must not pass the gate). Benchmarks only in current are
// ignored — they have no reference yet and start gating once the
// baseline is regenerated.
//
// Allocs/op is the gated metric because it is deterministic per
// workload: ns/op noise on shared CI runners would make a wall-clock
// gate flap, but an allocation regression reproduces everywhere.
func CompareHotpath(baseline, current map[string]HotpathResult, tolerance float64) []string {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var violations []string
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but missing from current results", name))
			continue
		}
		limit := float64(base.AllocsPerOp) * (1 + tolerance)
		if float64(cur.AllocsPerOp) > limit {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op regressed %d -> %d (limit %.1f at %+.0f%% tolerance)",
					name, base.AllocsPerOp, cur.AllocsPerOp, limit, tolerance*100))
		}
	}
	return violations
}
