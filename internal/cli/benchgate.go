package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// HotpathSchema identifies the BENCH_hotpath.json wire format.
//
// v2 moves gomaxprocs from the report header to each result entry: the
// v1 report recorded one process-wide value, which made the parallel
// benchmark's numbers unreadable (a file regenerated under GOMAXPROCS=1
// showed the "parallel" hot path at serial speed with nothing marking it
// as degenerate). With per-entry values the gate can refuse to compare
// measurements taken at different parallelism instead of flagging a
// phantom regression — or worse, blessing a real one.
const HotpathSchema = "histbench-hotpath/v2"

// HotpathResult is one benchmark line of a hot-path report.
type HotpathResult struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// GOMAXPROCS is the parallelism the entry was measured at (the
	// effective worker fan-out of the benchmark body, 1 for serial
	// benchmarks regardless of the process setting). The gate only
	// compares entries measured at equal parallelism.
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note,omitempty"`
	// Projected marks an entry whose ns/op was derived from a model
	// (e.g. a serial stage split) instead of measured. Projected baseline
	// entries never gate: the gate reports them as unverified until the
	// report is regenerated with measured numbers.
	Projected bool `json:"projected,omitempty"`
}

// HotpathReport is the schema of BENCH_hotpath.json. Baseline holds the
// pre-pooling numbers recorded once (PR 2, before the arena/pool work
// landed) so regeneration preserves the reference point the current
// numbers are compared against.
type HotpathReport struct {
	Schema   string                   `json:"schema"`
	Go       string                   `json:"go"`
	Workload string                   `json:"workload"`
	Baseline map[string]HotpathResult `json:"baseline_pre_pooling"`
	Results  map[string]HotpathResult `json:"results"`
}

// LoadHotpathReport reads and validates a hot-path report file.
func LoadHotpathReport(path string) (*HotpathReport, error) {
	payload, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep HotpathReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != HotpathSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, HotpathSchema)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

// CompareHotpath gates current benchmark results against a committed
// baseline. A baseline benchmark missing from current is always a
// violation (a silently dropped benchmark must not pass the gate).
// Benchmarks only in current are ignored — they have no reference yet
// and start gating once the baseline is regenerated.
//
// Two metrics gate, both as fractional tolerances (0.10 = +10%):
//
//   - allocs/op against allocTolerance. Allocation counts are
//     deterministic per workload, so this reproduces everywhere.
//   - ns/op against nsTolerance (disabled when nsTolerance <= 0).
//     Wall clock is noisier, so its tolerance should be wider (the CI
//     gate uses 15%).
//
// Both comparisons require the entries' GOMAXPROCS to match: numbers
// measured at different parallelism are not comparable (a serial re-run
// of a parallel baseline would always "regress", and a parallel re-run
// of a serial baseline would mask real regressions). Mismatched entries
// are skipped, not violated — regenerate the committed report to adopt
// the new parallelism as the reference. Every skip is REPORTED in the
// second return value: a silent skip let a regenerated report quietly
// stop gating a benchmark, so CI logs must show exactly which
// comparisons did not run and why.
//
// Baseline entries marked Projected never gate either metric: a number
// derived from a model is not a reference, only a placeholder. They are
// returned in unverified so the gate prints exactly which baselines are
// still awaiting a measured regeneration.
func CompareHotpath(baseline, current map[string]HotpathResult, allocTolerance, nsTolerance float64) (violations, skipped, unverified []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		base := baseline[name]
		if base.Projected {
			unverified = append(unverified,
				fmt.Sprintf("%s: unverified — baseline ns/op is a projection, not a measurement; regenerate the report on real hardware to arm this gate", name))
			continue
		}
		cur, ok := current[name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but missing from current results", name))
			continue
		}
		if base.GOMAXPROCS != cur.GOMAXPROCS {
			// Not like-for-like; no comparison is meaningful (typically the
			// current machine cannot provide the baseline's parallelism).
			skipped = append(skipped,
				fmt.Sprintf("%s: skipped — baseline measured at gomaxprocs %d, current at %d; regenerate the report on a machine with matching parallelism to re-arm this gate",
					name, base.GOMAXPROCS, cur.GOMAXPROCS))
			continue
		}
		allocLimit := float64(base.AllocsPerOp) * (1 + allocTolerance)
		if float64(cur.AllocsPerOp) > allocLimit {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op regressed %d -> %d (limit %.1f at %+.0f%% tolerance)",
					name, base.AllocsPerOp, cur.AllocsPerOp, allocLimit, allocTolerance*100))
		}
		if nsTolerance > 0 {
			nsLimit := base.NsPerOp * (1 + nsTolerance)
			if cur.NsPerOp > nsLimit {
				violations = append(violations,
					fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (limit %.0f at %+.0f%% tolerance, gomaxprocs %d)",
						name, base.NsPerOp, cur.NsPerOp, nsLimit, nsTolerance*100, base.GOMAXPROCS))
			}
		}
	}
	return violations, skipped, unverified
}
