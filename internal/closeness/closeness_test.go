package closeness

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestStatisticZeroMeanUnderNull(t *testing.T) {
	r := rng.New(1)
	d := dist.Uniform(256)
	const m = 2000.0
	sum := 0.0
	const reps = 300
	for i := 0; i < reps; i++ {
		px := oracle.NewSampler(d, r)
		py := oracle.NewSampler(d, r)
		x := oracle.NewCounts(256, oracle.DrawPoisson(px, r, m))
		y := oracle.NewCounts(256, oracle.DrawPoisson(py, r, m))
		sum += Statistic(x, y)
	}
	avg := sum / reps
	if math.Abs(avg) > 2 {
		t.Fatalf("null mean Z = %v, want ~0", avg)
	}
}

func TestStatisticPositiveWhenFar(t *testing.T) {
	r := rng.New(2)
	n := 256
	p := dist.Uniform(n)
	qv := make([]float64, n)
	for i := range qv {
		if i < n/2 {
			qv[i] = 1.5 / float64(n)
		} else {
			qv[i] = 0.5 / float64(n)
		}
	}
	q := dist.MustDense(qv)
	const m = 5000.0
	sum := 0.0
	const reps = 100
	for i := 0; i < reps; i++ {
		x := oracle.NewCounts(n, oracle.DrawPoisson(oracle.NewSampler(p, r), r, m))
		y := oracle.NewCounts(n, oracle.DrawPoisson(oracle.NewSampler(q, r), r, m))
		sum += Statistic(x, y)
	}
	avg := sum / reps
	if avg < 100 {
		t.Fatalf("far-mean Z = %v, want large positive", avg)
	}
}

func TestStatisticSymmetry(t *testing.T) {
	x := oracle.NewCounts(8, []int{0, 0, 1, 3, 3})
	y := oracle.NewCounts(8, []int{1, 1, 2, 3})
	if a, b := Statistic(x, y), Statistic(y, x); math.Abs(a-b) > 1e-12 {
		t.Fatalf("statistic not symmetric: %v vs %v", a, b)
	}
}

func TestStatisticHandlesDisjointSupports(t *testing.T) {
	x := oracle.NewCounts(8, []int{0, 0, 0})
	y := oracle.NewCounts(8, []int{5, 5, 5})
	// Each side: ((3−0)²−3)/3 = 2 for x's element, same for y's.
	if got := Statistic(x, y); math.Abs(got-4) > 1e-12 {
		t.Fatalf("disjoint-support Z = %v, want 4", got)
	}
}

func TestCloseAccepts(t *testing.T) {
	r := rng.New(3)
	d := gen.Zipf(512, 1.1)
	accepts := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		px := oracle.NewSampler(d, r)
		py := oracle.NewSampler(d, r)
		if Test(px, py, r, 0.3, DefaultParams()).Accept {
			accepts++
		}
	}
	if accepts < trials*3/4 {
		t.Fatalf("null accepted only %d/%d", accepts, trials)
	}
}

func TestFarRejects(t *testing.T) {
	r := rng.New(4)
	n := 512
	p := dist.Uniform(n)
	q, _ := gen.BlockComb(dist.Uniform(n), 64, 0.35)
	rejects := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		px := oracle.NewSampler(p, r)
		py := oracle.NewSampler(q, r)
		if !Test(px, py, r, 0.3, DefaultParams()).Accept {
			rejects++
		}
	}
	if rejects < trials*3/4 {
		t.Fatalf("far pair rejected only %d/%d", rejects, trials)
	}
}

func TestSampleMeanScaling(t *testing.T) {
	p := DefaultParams()
	// Small ε: the √n/ε² branch dominates; large ε: the n^{2/3} branch.
	small := p.SampleMean(1<<12, 0.05)
	wantSmall := p.MFactor * math.Sqrt(1<<12) / (0.05 * 0.05)
	if math.Abs(small-wantSmall) > 1e-6 {
		t.Fatalf("small-ε mean = %v, want %v", small, wantSmall)
	}
	big := p.SampleMean(1<<12, 0.9)
	wantBig := p.MFactor * math.Pow(1<<12, 2.0/3.0) / math.Pow(0.9, 4.0/3.0)
	if math.Abs(big-wantBig) > 1e-6 {
		t.Fatalf("large-ε mean = %v, want %v", big, wantBig)
	}
}

func TestAmplifiedMajority(t *testing.T) {
	r := rng.New(5)
	d := dist.Uniform(256)
	wrong := 0
	for i := 0; i < 20; i++ {
		px := oracle.NewSampler(d, r)
		py := oracle.NewSampler(d, r)
		if !TestAmplified(px, py, r, 0.3, DefaultParams(), 5) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Fatalf("amplified null failed %d/20", wrong)
	}
}

func TestMismatchedDomainsPanic(t *testing.T) {
	r := rng.New(6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Test(oracle.NewSampler(dist.Uniform(4), r), oracle.NewSampler(dist.Uniform(5), r), r, 0.3, DefaultParams())
}
