// Package closeness implements the two-sample (closeness) tester of
// Chan, Diakonikolas, Valiant, and Valiant [CDVV14] — the work the paper's
// footnote 2 credits for the χ²-style statistic behind its testing stage.
// Given samples from two unknown distributions p and q over [n], it
// distinguishes p = q from dTV(p, q) >= ε with
// O(max(n^{2/3}/ε^{4/3}, √n/ε²)) samples.
//
// The statistic, over Poissonized count vectors X, Y (X_i ~ Poisson(m·p_i),
// Y_i ~ Poisson(m·q_i)):
//
//	Z = Σ_i ((X_i − Y_i)² − X_i − Y_i) / (X_i + Y_i)    (terms with
//	    X_i + Y_i = 0 contribute 0)
//
// E[Z] = 0 when p = q, and E[Z] grows with m·‖p−q‖₂²-ish when they are
// far; [CDVV14] run it on samples split into a light part (after removing
// heavy elements) — this implementation follows their simpler variant that
// thresholds Z directly, which preserves the sample-complexity scaling.
//
// The tester rounds out the repository's distribution-testing toolkit and
// gives the experiments an independent χ²-flavored primitive to sanity-
// check the ADK machinery against.
package closeness

import (
	"math"

	"repro/internal/oracle"
	"repro/internal/rng"
)

// Params are the tester's tunable constants.
type Params struct {
	// MFactor sets the per-distribution Poisson mean
	// m = MFactor·max(n^{2/3}/ε^{4/3}, √n/ε²).
	MFactor float64
	// ThresholdFactor sets the accept cutoff Z <= ThresholdFactor·√(total
	// counts): under the null Z has zero mean and variance O(min(m, n)),
	// so a multiple of the standard-deviation scale separates the cases.
	ThresholdFactor float64
}

// DefaultParams returns calibrated constants (validated in the tests:
// null acceptance and ε-far rejection both >= 3/4 at laptop scales).
func DefaultParams() Params {
	return Params{MFactor: 2, ThresholdFactor: 3}
}

// SampleMean returns the Poisson mean used per distribution.
func (p Params) SampleMean(n int, eps float64) float64 {
	a := math.Pow(float64(n), 2.0/3.0) / math.Pow(eps, 4.0/3.0)
	b := math.Sqrt(float64(n)) / (eps * eps)
	return p.MFactor * math.Max(a, b)
}

// Statistic computes Z from two count vectors over the same domain.
func Statistic(x, y *oracle.Counts) float64 {
	if x.N() != y.N() {
		panic("closeness: mismatched domains")
	}
	z := 0.0
	// Iterate the union of supports: first x's elements, then y's elements
	// that x has not seen.
	x.ForEach(func(i, xi int) {
		yi := y.Of(i)
		d := float64(xi - yi)
		z += (d*d - float64(xi) - float64(yi)) / float64(xi+yi)
	})
	y.ForEach(func(i, yi int) {
		if x.Of(i) != 0 {
			return // already counted
		}
		// xi = 0: ((0−yi)² − yi)/yi = yi − 1.
		z += float64(yi) - 1
	})
	return z
}

// Result reports one closeness test.
type Result struct {
	Accept       bool
	Z, Threshold float64
	M            float64
	DrawnX       int
	DrawnY       int
}

// Test decides whether the distributions behind the two oracles are equal
// (accept w.p. >= 2/3) or ε-far in total variation (reject w.p. >= 2/3),
// drawing Poisson(m) samples from each.
func Test(px, py oracle.Oracle, r *rng.RNG, eps float64, params Params) Result {
	n := px.N()
	if py.N() != n {
		panic("closeness: oracles over different domains")
	}
	m := params.SampleMean(n, eps)
	sx := oracle.DrawPoisson(px, r, m)
	sy := oracle.DrawPoisson(py, r, m)
	x := oracle.NewCounts(n, sx)
	y := oracle.NewCounts(n, sy)
	z := Statistic(x, y)
	// Null variance scale: each element with both counts zero contributes
	// nothing; occupied elements contribute O(1) variance each, so the
	// scale is √(#occupied) <= √(total counts).
	occupied := float64(x.Distinct() + y.Distinct())
	thr := params.ThresholdFactor * math.Sqrt(math.Max(occupied, 1))
	return Result{Accept: z <= thr, Z: z, Threshold: thr, M: m, DrawnX: len(sx), DrawnY: len(sy)}
}

// TestAmplified repeats Test and takes the majority verdict.
func TestAmplified(px, py oracle.Oracle, r *rng.RNG, eps float64, params Params, reps int) bool {
	if reps < 1 {
		reps = 1
	}
	accepts := 0
	for i := 0; i < reps; i++ {
		if Test(px, py, r, eps, params).Accept {
			accepts++
		}
	}
	return 2*accepts > reps
}
