// Two-sample closeness testing of HISTOGRAM distributions, following
// Diakonikolas, Kane, and Nikishkin [DKN17] ("Near-Optimal Closeness
// Testing of Discrete Histogram Distributions", arXiv 1703.01913): when
// both unknown distributions are promised (close to) k-histograms, the
// closeness question over [n] reduces to a closeness question over a
// domain of size O(b) = O(k·log k/ε) that is independent of n.
//
// The reduction implemented here:
//
//  1. Partition — run learn.ApproxPart on EACH sample source with the
//     same parameter b (heavy elements isolated as singletons, every
//     other interval of empirical mass <= 2/b), then take the common
//     refinement of the two partitions (intervals.Partition.Refine).
//     Flattening a pair of k-histograms on such a refinement moves their
//     TV distance by at most the mass of the <= 2(k−1) breakpoint
//     intervals, i.e. O(k/b) = O(ε/log k) — far pairs stay Ω(ε)-far,
//     equal pairs stay equal.
//  2. Reduce + test — draw one Poissonized batch per side with mean
//     m = MFactor·max(K^{2/3}/ε^{4/3}, √K/ε²) (the [CDVV14] complexity
//     over the REDUCED domain of K intervals), fold each count vector
//     onto the refinement (interval j of the partition becomes element j
//     of a K-element domain), and threshold the [CDVV14] χ² statistic Z
//     on the reduced vectors — exactly the statistic in this package's
//     one-shot Test, over K elements instead of n.
//  3. Amplify — repeat stage 2 on fresh batches and take the majority
//     verdict. Replicates fan out across Config.Workers when both
//     oracles can fork; every replicate's randomness is split from r
//     sequentially BEFORE any goroutine launches, so the verdict and all
//     reported statistics are bit-identical at every worker count.
//
// Per the corrigendum's "don't trust the constants" discipline, the
// constants here are calibrated empirically (the seed-pinned operating-
// characteristic regression in this package, E15 in the experiment
// suite) rather than copied from the analysis.
package closeness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Config tunes the two-sample tester. The zero value is NOT usable; start
// from DefaultConfig.
type Config struct {
	// Chi holds the [CDVV14] statistic constants, applied on the reduced
	// domain (Test applies the same constants on the full domain).
	Chi Params
	// PartBFactor sets the reduction parameter
	// b = PartBFactor·k·log2(k+2)/ε — the same shape as the one-sample
	// tester's partition parameter, so the two pipelines are comparable.
	PartBFactor float64
	// PartSampleC scales the per-side ApproxPart sample budget.
	PartSampleC float64
	// Reps is the majority-amplification replicate count (>= 1; odd
	// values avoid ties — a tie rejects).
	Reps int
	// Workers bounds the replicate fan-out. It is a pure throughput
	// knob: the verdict and statistics are bit-identical for every
	// value. <= 1 means serial.
	Workers int
	// CountStrategy selects how the Poissonized per-replicate batches
	// are synthesized (see oracle.CountStrategy); it is resolved against
	// each oracle's capability once per run, so replay-backed sides fall
	// back to the exact path independently.
	CountStrategy oracle.CountStrategy
	// MaxSamples guards against accidentally astronomical budgets: a run
	// whose nominal ExpectedSamples exceeds it fails before drawing. 0
	// means 2³¹.
	MaxSamples int64
}

// DefaultConfig returns the calibrated practical constants (validated by
// the operating-characteristic tests and E15). The χ² MFactor is one
// notch above the one-shot Test default: on the reduced domain the
// refinement packs whole intervals into single elements, so the far
// pairs' signal concentrates on fewer, heavier cells and a marginal
// batch size flips individual replicates near the boundary.
func DefaultConfig() Config {
	return Config{
		Chi:         Params{MFactor: 3, ThresholdFactor: 3},
		PartBFactor: 6,
		PartSampleC: 8,
		Reps:        5,
	}
}

// Scale returns a copy of c with every stage's sample budget multiplied
// by s. Thresholds are relative to the realized budgets, so the decision
// structure is unchanged — the E15 sample-complexity searches sweep this
// single knob, mirroring core.Config.Scale.
func (c Config) Scale(s float64) Config {
	out := c
	out.PartSampleC *= s
	out.Chi.MFactor *= s
	return out
}

// PartB returns the reduction parameter b for given k and ε (at least 1).
func (c Config) PartB(k int, eps float64) float64 {
	b := c.PartBFactor * float64(k) * math.Log2(float64(k)+2) / eps
	if b < 1 {
		b = 1
	}
	return b
}

// maxSamples resolves the budget guard.
func (c Config) maxSamples() int64 {
	if c.MaxSamples > 0 {
		return c.MaxSamples
	}
	return 1 << 31
}

// reps resolves the replicate count.
func (c Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

// reduced reports whether the reduction applies at all: when b (the
// reduced domain's scale) is no smaller than the raw domain, flattening
// cannot shrink anything and the tester runs the plain full-domain
// [CDVV14] test with zero partition samples — which is also the exact
// behavior for k >= n, where every distribution is a k-histogram.
func (c Config) reduced(n, k int, eps float64) bool {
	return k < n && 2*c.PartB(k, eps) < float64(n)
}

// ExpectedSamples is the run's nominal total budget across both sides:
// two partition batches plus Reps Poissonized pairs on the reduced
// domain. The reduced-domain size is estimated as the ApproxPart
// worst-case interval count for each side, refined (the estimate the
// budget guard and the serving layer's admission sizing use).
func (c Config) ExpectedSamples(n, k int, eps float64) int64 {
	if !c.reduced(n, k, eps) {
		m := c.Chi.SampleMean(n, eps)
		return int64(c.reps()) * 2 * int64(math.Ceil(m))
	}
	b := c.PartB(k, eps)
	partM := learn.ApproxPartSamples(b, c.PartSampleC)
	K := 2 * (int(7*b/3) + 4) // two refined worst-case ApproxPart outputs
	if K > n {
		K = n
	}
	m := c.Chi.SampleMean(K, eps)
	return 2*int64(partM) + int64(c.reps())*2*int64(math.Ceil(m))
}

// TwoSampleResult reports one two-sample closeness run.
type TwoSampleResult struct {
	// Accept is the majority verdict: true means the samples are
	// consistent with p = q.
	Accept bool
	// N is the raw domain size; Intervals the reduced domain size K (== N
	// when the reduction did not apply).
	N, Intervals int
	// B is the reduction parameter (0 when the reduction did not apply).
	B float64
	// M is the per-side Poisson mean of each replicate batch.
	M float64
	// Reps and Accepts give the majority tally.
	Reps, Accepts int
	// Z and Threshold are the MEDIAN replicate's statistic and cutoff —
	// the representative decision the verdict summarizes.
	Z, Threshold float64
	// PartitionSamples and TestSamples account both sides' draws by
	// stage; SamplesX/SamplesY split the same total by side.
	PartitionSamples, TestSamples int64
	SamplesX, SamplesY            int64
}

// Tester holds the reusable scratch of Run: per-replicate statistic and
// threshold slots and the per-replicate RNG structs. Like core.Arena it
// is not safe for concurrent use (the parallel replicates inside one Run
// are fine: slots are disjoint), and reuse cannot change behavior — every
// buffer is fully re-initialized per run and scratch management consumes
// no randomness.
type Tester struct {
	zs     []float64
	thrs   []float64
	col    []float64
	reprng []rng.RNG
	forks  []twoSampleJob
}

// twoSampleJob binds one replicate's forked oracles to its private RNG
// streams.
type twoSampleJob struct {
	ox, oy oracle.Oracle
	rx, ry *rng.RNG
}

// NewTester returns an empty Tester ready to thread through Run calls.
func NewTester() *Tester { return &Tester{} }

// grow sizes the scratch for reps replicates.
func (t *Tester) grow(reps int) {
	if cap(t.zs) < reps {
		t.zs = make([]float64, reps)
		t.thrs = make([]float64, reps)
		t.col = make([]float64, reps)
	}
	t.zs, t.thrs, t.col = t.zs[:reps], t.thrs[:reps], t.col[:reps]
	if cap(t.reprng) < 2*reps {
		t.reprng = make([]rng.RNG, 2*reps)
	}
	t.reprng = t.reprng[:2*reps]
	if cap(t.forks) < reps {
		t.forks = make([]twoSampleJob, reps)
	}
	t.forks = t.forks[:reps]
}

// TestTwoSample runs the DKN'17 two-sample tester on a fresh Tester. See
// Tester.Run for the contract.
func TestTwoSample(ctx context.Context, px, py oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*TwoSampleResult, error) {
	return NewTester().Run(ctx, px, py, r, k, eps, cfg)
}

// Run decides whether the two sample sources serve the same distribution
// (accept) or distributions ε-far in total variation (reject), under the
// promise that both are (close to) k-histograms. The verdict is a pure
// function of (the oracles' streams, r's seed, k, eps, cfg) with
// cfg.Workers excluded: parallel replicates split their randomness from
// r sequentially before fan-out, so every worker count yields the
// bit-identical result. Cancellation is honored between batches; every
// pooled Counts is released on every path.
func (t *Tester) Run(ctx context.Context, px, py oracle.Oracle, r *rng.RNG, k int, eps float64, cfg Config) (*TwoSampleResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := px.N()
	if py.N() != n {
		return nil, fmt.Errorf("closeness: oracles over different domains (%d vs %d)", n, py.N())
	}
	if n < 1 {
		return nil, errors.New("closeness: empty domain")
	}
	if k < 1 {
		return nil, fmt.Errorf("closeness: k = %d must be positive", k)
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("closeness: eps = %v must be in (0, 1]", eps)
	}
	if want := cfg.ExpectedSamples(n, k, eps); want > cfg.maxSamples() {
		return nil, fmt.Errorf("closeness: nominal budget %d exceeds MaxSamples %d", want, cfg.maxSamples())
	}

	res := &TwoSampleResult{N: n, Reps: cfg.reps()}
	markX, markY := px.Samples(), py.Samples()

	// Stage 1: per-side partitions and their common refinement. Skipped
	// when the reduction cannot shrink the domain (small n or k >= n);
	// the tester then degenerates to the full-domain [CDVV14] test.
	var p *intervals.Partition
	if cfg.reduced(n, k, eps) {
		b := cfg.PartB(k, eps)
		res.B = b
		partX, err := learn.ApproxPartContext(ctx, px, r, b, cfg.PartSampleC)
		if err != nil {
			return nil, err
		}
		partY, err := learn.ApproxPartContext(ctx, py, r, b, cfg.PartSampleC)
		if err != nil {
			return nil, err
		}
		p, err = partX.Partition.Refine(partY.Partition)
		if err != nil {
			return nil, fmt.Errorf("closeness: refining partitions: %w", err)
		}
	} else {
		p = intervals.Singletons(n)
	}
	K := p.Count()
	res.Intervals = K
	res.PartitionSamples = (px.Samples() - markX) + (py.Samples() - markY)

	// Stage 2+3: Reps replicate [CDVV14] tests on the reduced domain,
	// majority vote. The per-replicate Poisson mean uses the REDUCED
	// domain size — the entire point of the reduction.
	m := cfg.Chi.SampleMean(K, eps)
	res.M = m
	reps := cfg.reps()
	t.grow(reps)

	csX := oracle.EffectiveStrategy(px, cfg.CountStrategy)
	csY := oracle.EffectiveStrategy(py, cfg.CountStrategy)

	// replicate computes one [CDVV14] decision: a Poissonized batch per
	// side, folded onto the refinement, scored with the χ² statistic.
	// The z/thr slots are written once per replicate — two stores next
	// to kilosample batch draws, so (unlike the sieve's statistic rows)
	// the slices need no cache-line padding.
	replicate := func(i int, ox, oy oracle.Oracle, rx, ry *rng.RNG) {
		cx := oracle.DrawCountsWith(ox, rx, m, csX)
		cy := oracle.DrawCountsWith(oy, ry, m, csY)
		z, thr := reducedDecision(cx, cy, p, cfg.Chi)
		cy.Release()
		cx.Release()
		t.zs[i] = z
		t.thrs[i] = thr
	}

	// Fan out only when BOTH oracles can fork; otherwise the replicates
	// run serially on the shared oracles in replicate order (replay and
	// counts-replay streams are inherently serial), which is trivially
	// worker-count independent.
	fx, okx := forkable(px)
	fy, oky := forkable(py)
	if okx && oky {
		// Determinism contract: every replicate's randomness — two
		// streams, side X then side Y — is split from r sequentially
		// BEFORE any goroutine launches.
		for i := 0; i < reps; i++ {
			rx, ry := &t.reprng[2*i], &t.reprng[2*i+1]
			r.SplitInto(rx)
			r.SplitInto(ry)
			t.forks[i] = twoSampleJob{ox: fx.Fork(rx), oy: fy.Fork(ry), rx: rx, ry: ry}
		}
		workers := cfg.Workers
		if workers > reps {
			workers = reps
		}
		if workers <= 1 {
			for i := 0; i < reps; i++ {
				if ctx.Err() != nil {
					break
				}
				j := t.forks[i]
				replicate(i, j.ox, j.oy, j.rx, j.ry)
			}
		} else {
			// Deterministic chunked assignment, as in the core sieve:
			// worker w owns the contiguous replicate range — the schedule
			// is a pure function of (reps, workers) and claim order never
			// mattered for determinism anyway.
			chunk := (reps + workers - 1) / workers
			var wg sync.WaitGroup
			for lo := 0; lo < reps; lo += chunk {
				hi := lo + chunk
				if hi > reps {
					hi = reps
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						if ctx.Err() != nil {
							return
						}
						j := t.forks[i]
						replicate(i, j.ox, j.oy, j.rx, j.ry)
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		// Fold clone draws back so budget accounting stays exact — on
		// the cancellation path too.
		var drawnX, drawnY int64
		for i := 0; i < reps; i++ {
			drawnX += t.forks[i].ox.Samples()
			drawnY += t.forks[i].oy.Samples()
			t.forks[i] = twoSampleJob{} // release fork references
		}
		fx.Absorb(drawnX)
		fy.Absorb(drawnY)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < reps; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			replicate(i, px, py, r, r)
		}
	}

	accepts := 0
	for i := 0; i < reps; i++ {
		if t.zs[i] <= t.thrs[i] {
			accepts++
		}
	}
	res.Accepts = accepts
	res.Accept = 2*accepts > reps
	// Report the median replicate's statistic and cutoff as the
	// representative decision (medians over replicate order, so the
	// report is as worker-count independent as the verdict).
	copy(t.col, t.zs)
	res.Z = stats.MedianInPlace(t.col)
	copy(t.col, t.thrs)
	res.Threshold = stats.MedianInPlace(t.col)

	res.SamplesX = px.Samples() - markX
	res.SamplesY = py.Samples() - markY
	res.TestSamples = res.SamplesX + res.SamplesY - res.PartitionSamples
	return res, nil
}

// forkable reports whether o supports cloning for parallel replicates.
func forkable(o oracle.Oracle) (oracle.Forker, bool) {
	f, ok := o.(oracle.Forker)
	if !ok || !f.CanFork() {
		return nil, false
	}
	return f, true
}

// reducedDecision folds the two full-domain count vectors onto the
// partition (interval j becomes element j of a K-element domain) and
// scores them with the [CDVV14] statistic. The fold is skipped when the
// partition is the singleton partition — the reduced vectors would be
// the inputs themselves. Pooled reduced vectors are released before
// returning.
func reducedDecision(cx, cy *oracle.Counts, p *intervals.Partition, chi Params) (z, thr float64) {
	K := p.Count()
	if K == p.N() {
		return decide(cx, cy, chi)
	}
	rx := oracle.AcquireCounts(K, cx.Total())
	ry := oracle.AcquireCounts(K, cy.Total())
	fold(cx, p, rx)
	fold(cy, p, ry)
	z, thr = decide(rx, ry, chi)
	ry.Release()
	rx.Release()
	return z, thr
}

// fold tallies the counts of c per interval of p into out (a Counts over
// the domain [p.Count())).
func fold(c *oracle.Counts, p *intervals.Partition, out *oracle.Counts) {
	c.ForEach(func(elem, count int) {
		out.AddN(p.Find(elem), count)
	})
}

// decide scores one count-vector pair: the [CDVV14] statistic against
// its occupied-scale threshold (see Test for the variance rationale).
func decide(x, y *oracle.Counts, chi Params) (z, thr float64) {
	z = Statistic(x, y)
	occupied := float64(x.Distinct() + y.Distinct())
	thr = chi.ThresholdFactor * math.Sqrt(math.Max(occupied, 1))
	return z, thr
}
