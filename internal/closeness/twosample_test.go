package closeness

import (
	"context"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// yesPair returns two independent sampler handles over the SAME k-histogram.
func yesPair(r *rng.RNG, n, k int) (*oracle.Sampler, *oracle.Sampler) {
	d := gen.KHistogram(r, n, k)
	return oracle.NewSampler(d, r.Split()), oracle.NewSampler(d, r.Split())
}

// noPair returns sampler handles over a k-histogram and a block-comb
// perturbation of it at TV distance >= target.
func noPair(r *rng.RNG, n, k int, target float64) (*oracle.Sampler, *oracle.Sampler, float64) {
	d := gen.KHistogram(r, n, k)
	var far *dist.PiecewiseConstant
	var got float64
	for delta := target; delta <= 1; delta += target / 4 {
		far, got = gen.BlockComb(d, 64, delta)
		if got >= target {
			break
		}
	}
	if got < target {
		panic("noPair: could not reach target distance")
	}
	return oracle.NewSampler(d, r.Split()), oracle.NewSampler(far, r.Split()), got
}

func TestTwoSampleValidation(t *testing.T) {
	r := rng.New(1)
	cfg := DefaultConfig()
	px := oracle.NewSampler(dist.Uniform(64), r.Split())
	py := oracle.NewSampler(dist.Uniform(32), r.Split())
	if _, err := TestTwoSample(nil, px, py, r, 2, 0.5, cfg); err == nil {
		t.Fatal("mismatched domains accepted")
	}
	py = oracle.NewSampler(dist.Uniform(64), r.Split())
	if _, err := TestTwoSample(nil, px, py, r, 0, 0.5, cfg); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TestTwoSample(nil, px, py, r, 2, 0, cfg); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := TestTwoSample(nil, px, py, r, 2, 1.5, cfg); err == nil {
		t.Fatal("eps>1 accepted")
	}
	small := cfg
	small.MaxSamples = 10
	if _, err := TestTwoSample(nil, px, py, r, 2, 0.5, small); err == nil {
		t.Fatal("budget guard did not fire")
	}
}

// TestTwoSampleWorkerBitIdentity is the determinism contract: the full
// result — verdict, statistics, and budget accounting — is bit-identical
// at every worker count, for both count strategies.
func TestTwoSampleWorkerBitIdentity(t *testing.T) {
	const n, k = 4096, 4
	const eps = 0.4
	for _, cs := range []oracle.CountStrategy{oracle.CountExact, oracle.CountClosedForm} {
		var want *TwoSampleResult
		for _, workers := range []int{0, 1, 2, 3, 4, 8} {
			cfg := DefaultConfig()
			cfg.Workers = workers
			cfg.CountStrategy = cs
			r := rng.New(7)
			px, py := yesPair(r, n, k)
			got, err := TestTwoSample(context.Background(), px, py, rng.New(42), k, eps, cfg)
			if err != nil {
				t.Fatalf("cs=%v workers=%d: %v", cs, workers, err)
			}
			if want == nil {
				want = got
				continue
			}
			if *got != *want {
				t.Fatalf("cs=%v workers=%d: result diverged:\n got %+v\nwant %+v", cs, workers, got, want)
			}
		}
	}
}

// TestTwoSampleStrategyInvariance: on a known sampler the closed-form
// count synthesis must not change the verdict structure (it changes the
// randomness consumption, so Z differs — but the reduction geometry and
// budget bookkeeping must match the exact path).
func TestTwoSampleStrategyInvariance(t *testing.T) {
	const n, k = 4096, 4
	const eps = 0.4
	run := func(cs oracle.CountStrategy) *TwoSampleResult {
		cfg := DefaultConfig()
		cfg.CountStrategy = cs
		r := rng.New(9)
		px, py := yesPair(r, n, k)
		res, err := TestTwoSample(context.Background(), px, py, rng.New(5), k, eps, cfg)
		if err != nil {
			t.Fatalf("cs=%v: %v", cs, err)
		}
		return res
	}
	exact := run(oracle.CountExact)
	closed := run(oracle.CountClosedForm)
	if exact.Intervals != closed.Intervals || exact.B != closed.B || exact.M != closed.M {
		t.Fatalf("reduction geometry diverged across strategies:\nexact  %+v\nclosed %+v", exact, closed)
	}
	if exact.PartitionSamples != closed.PartitionSamples {
		t.Fatalf("partition draws diverged: %d vs %d", exact.PartitionSamples, closed.PartitionSamples)
	}
}

func TestTwoSampleBudgetConservation(t *testing.T) {
	const n, k = 2048, 4
	const eps = 0.4
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		r := rng.New(11)
		px, py := yesPair(r, n, k)
		res, err := TestTwoSample(context.Background(), px, py, rng.New(3), k, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.SamplesX+res.SamplesY != res.PartitionSamples+res.TestSamples {
			t.Fatalf("workers=%d: stage split %d+%d != side split %d+%d",
				workers, res.PartitionSamples, res.TestSamples, res.SamplesX, res.SamplesY)
		}
		if px.Samples() != res.SamplesX || py.Samples() != res.SamplesY {
			t.Fatalf("workers=%d: Absorb accounting off: oracles report %d/%d, result %d/%d",
				workers, px.Samples(), py.Samples(), res.SamplesX, res.SamplesY)
		}
		if res.SamplesX <= 0 || res.SamplesY <= 0 {
			t.Fatalf("workers=%d: empty side budget: %+v", workers, res)
		}
	}
}

// TestTwoSampleReduction: for k << n the reduced domain must actually be
// small (the whole point), and the ExpectedSamples estimate must not be
// wildly below the realized draw count.
func TestTwoSampleReduction(t *testing.T) {
	const n, k = 1 << 14, 4
	const eps = 0.4
	cfg := DefaultConfig()
	r := rng.New(13)
	px, py := yesPair(r, n, k)
	res, err := TestTwoSample(context.Background(), px, py, rng.New(2), k, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals >= n/4 {
		t.Fatalf("reduced domain K=%d not small vs n=%d", res.Intervals, n)
	}
	if res.B <= 0 {
		t.Fatalf("reduction reported disabled: %+v", res)
	}
	want := cfg.ExpectedSamples(n, k, eps)
	got := res.SamplesX + res.SamplesY
	if float64(got) > 4*float64(want) {
		t.Fatalf("realized budget %d far above nominal %d", got, want)
	}
}

// TestTwoSampleDegenerate: when k >= n (or the reduction can't shrink),
// the tester runs the plain full-domain test with zero partition draws.
func TestTwoSampleDegenerate(t *testing.T) {
	const n = 32
	cfg := DefaultConfig()
	r := rng.New(17)
	px := oracle.NewSampler(dist.Uniform(n), r.Split())
	py := oracle.NewSampler(dist.Uniform(n), r.Split())
	res, err := TestTwoSample(context.Background(), px, py, rng.New(4), n, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals != n || res.B != 0 || res.PartitionSamples != 0 {
		t.Fatalf("degenerate path not taken: %+v", res)
	}
	if !res.Accept {
		t.Fatalf("uniform vs uniform rejected: %+v", res)
	}
}

// TestTwoSampleSerialOracles: replay-backed (non-forkable) sources take
// the serial path regardless of Workers, and still yield a verdict.
func TestTwoSampleSerialOracles(t *testing.T) {
	const n, k = 512, 4
	const eps = 0.4
	cfg := DefaultConfig()
	cfg.Workers = 4
	r := rng.New(19)
	d := gen.KHistogram(r, n, k)
	// Materialize generous historical windows, then replay them.
	budget := cfg.ExpectedSamples(n, k, eps) * 4
	mk := func(seed uint64) *oracle.CountsReplay {
		src := oracle.NewSampler(d, rng.New(seed))
		c := oracle.AcquireCounts(n, int(budget))
		for i := int64(0); i < budget; i++ {
			c.AddN(src.Draw(), 1)
		}
		cr := oracle.NewCountsReplay(c, rng.New(seed^0x9e3779b9))
		c.Release()
		return cr
	}
	px, py := mk(100), mk(200)
	res, err := TestTwoSample(context.Background(), px, py, rng.New(6), k, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Fatalf("same-distribution replay windows rejected: %+v", res)
	}
	// Serial path must match itself exactly on a fresh identical replay.
	px2, py2 := mk(100), mk(200)
	res2, err := TestTwoSample(context.Background(), px2, py2, rng.New(6), k, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *res != *res2 {
		t.Fatalf("serial replay run not reproducible:\n got %+v\nwant %+v", res2, res)
	}
}

func TestTwoSampleCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := rng.New(23)
	px, py := yesPair(r, 2048, 4)
	if _, err := TestTwoSample(ctx, px, py, rng.New(8), 4, 0.4, DefaultConfig()); err == nil {
		t.Fatal("canceled context produced a verdict")
	}
}

// TestTwoSampleOCPin is the seed-pinned operating-characteristic
// regression mirroring the E6/cdkl22 pins: at seed 3 and the standard
// E6-style workload, the calibrated constants must accept every
// same-distribution pair and reject every ε-far pair. A constants or
// pipeline change that degrades the OC trips this before CI's experiment
// tier runs.
func TestTwoSampleOCPin(t *testing.T) {
	if testing.Short() {
		t.Skip("OC pin draws megasample batches")
	}
	const n, k = 2048, 4
	const eps = 0.4
	const trials = 12
	cfg := DefaultConfig()
	cfg.Workers = 4
	r := rng.New(3)
	yes, no := 0, 0
	for i := 0; i < trials; i++ {
		px, py := yesPair(r, n, k)
		res, err := TestTwoSample(context.Background(), px, py, r.Split(), k, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			yes++
		}
		px, py, _ = noPair(r, n, k, eps)
		res, err = TestTwoSample(context.Background(), px, py, r.Split(), k, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept {
			no++
		}
	}
	if yes != trials || no != 0 {
		t.Fatalf("OC pin moved: yes=%d/%d (want %d), far accepts=%d (want 0)", yes, trials, trials, no)
	}
}

// TestTwoSampleSavesOverFullDomain pins the headline claim at a scale the
// unit tier can afford: the reduction's per-decision budget undercuts the
// naive full-domain [CDVV14] budget once n is large relative to k.
func TestTwoSampleSavesOverFullDomain(t *testing.T) {
	const k = 4
	const eps = 0.4
	cfg := DefaultConfig()
	naive := DefaultParams()
	nReduced := cfg.ExpectedSamples(1<<16, k, eps)
	nNaive := int64(cfg.reps()) * 2 * int64(math.Ceil(naive.SampleMean(1<<16, eps)))
	if nReduced >= nNaive {
		t.Fatalf("no asymptotic win: reduced budget %d >= naive %d at n=2^16", nReduced, nNaive)
	}
}
