package histbuild

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestBuildValidation(t *testing.T) {
	d := dist.Uniform(16)
	if _, err := Build(d, 0, EquiWidth); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Build(d, 17, EquiWidth); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Build(d, 4, Method("nope")); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestAllMethodsAreDistributions(t *testing.T) {
	r := rng.New(1)
	d := gen.Zipf(512, 1.1)
	for _, m := range Methods() {
		h, err := Build(d, 8, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if math.Abs(dist.TotalMass(h)-1) > 1e-9 {
			t.Fatalf("%s: mass = %v", m, dist.TotalMass(h))
		}
		if h.PieceCount() > 8 {
			t.Fatalf("%s: %d pieces", m, h.PieceCount())
		}
	}
	_ = r
}

func TestEquiWidthShape(t *testing.T) {
	d := dist.Uniform(100)
	h, err := Build(d, 4, EquiWidth)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range h.Pieces() {
		if pc.Iv.Len() != 25 {
			t.Fatalf("bucket %v not width 25", pc.Iv)
		}
	}
}

func TestEquiDepthBalancesMass(t *testing.T) {
	d := gen.Zipf(1000, 1.3)
	h, err := Build(d, 8, EquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range h.Pieces() {
		if pc.Mass > 0.45 {
			t.Fatalf("bucket %v mass %v too heavy", pc.Iv, pc.Mass)
		}
	}
	// The Zipf head should get narrow buckets.
	first := h.Pieces()[0]
	last := h.Pieces()[h.PieceCount()-1]
	if first.Iv.Len() >= last.Iv.Len() {
		t.Fatalf("equi-depth did not narrow the head: %v vs %v", first.Iv, last.Iv)
	}
}

func TestMaxDiffFindsJumps(t *testing.T) {
	// A 3-histogram: MaxDiff with k = 3 should recover its exact cuts.
	d := dist.MustPiecewiseConstant(100, []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: 30}, Mass: 0.6},
		{Iv: intervals.Interval{Lo: 30, Hi: 70}, Mass: 0.1},
		{Iv: intervals.Interval{Lo: 70, Hi: 100}, Mass: 0.3},
	})
	h, err := Build(d, 3, MaxDiff)
	if err != nil {
		t.Fatal(err)
	}
	if dist.TV(d, h) > 1e-12 {
		t.Fatalf("MaxDiff failed to recover exact histogram: TV = %v", dist.TV(d, h))
	}
}

func TestVOptimalBeatsEquiWidthOnSkew(t *testing.T) {
	d := gen.Zipf(512, 1.5)
	vo, err := Build(d, 8, VOptimal)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := Build(d, 8, EquiWidth)
	if err != nil {
		t.Fatal(err)
	}
	if SSE(d, vo) > SSE(d, ew)+1e-15 {
		t.Fatalf("V-optimal SSE %v worse than equi-width %v", SSE(d, vo), SSE(d, ew))
	}
}

func TestVOptimalDominatesAllMethods(t *testing.T) {
	// V-optimal minimizes SSE by definition; every other construction is
	// at best equal on every workload.
	r := rng.New(5)
	workloads := []dist.Distribution{
		gen.Zipf(512, 1.4),
		gen.GaussianMixture(512, []float64{100, 350}, []float64{30, 50}, []float64{1, 1}),
		gen.KHistogram(r, 512, 12),
	}
	for wi, d := range workloads {
		vo, err := Build(d, 8, VOptimal)
		if err != nil {
			t.Fatal(err)
		}
		voSSE := SSE(d, vo)
		for _, m := range []Method{EquiWidth, EquiDepth, MaxDiff} {
			h, err := Build(d, 8, m)
			if err != nil {
				t.Fatal(err)
			}
			// Allowance: V-optimal is computed on the unnormalized fit and
			// then renormalized, which can cost a hair on non-histograms.
			if voSSE > SSE(d, h)*1.02+1e-15 {
				t.Fatalf("workload %d: V-optimal SSE %v worse than %s's %v", wi, voSSE, m, SSE(d, h))
			}
		}
	}
}

func TestVOptimalExactOnHistogram(t *testing.T) {
	r := rng.New(2)
	d := gen.KHistogram(r, 256, 5)
	h, err := Build(d, 5, VOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if dist.TV(d, h) > 1e-9 {
		t.Fatalf("V-optimal did not recover a 5-histogram: %v", dist.TV(d, h))
	}
}

func TestBuildFromSamples(t *testing.T) {
	r := rng.New(3)
	d := gen.KHistogram(r, 256, 4)
	s := oracle.NewSampler(d, r)
	counts := oracle.NewCounts(256, oracle.DrawN(s, 200000))
	h, err := BuildFromSamples(counts, 4, VOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if got := dist.TV(d, h); got > 0.1 {
		t.Fatalf("sampled V-optimal TV = %v", got)
	}
}

func TestSelectivity(t *testing.T) {
	d := dist.Uniform(100)
	h, _ := Build(d, 4, EquiWidth)
	if got := Selectivity(h, 0, 50); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("selectivity = %v", got)
	}
	if got := Selectivity(h, 10, 10); got != 0 {
		t.Fatalf("empty query selectivity = %v", got)
	}
}

func TestEvaluateQueries(t *testing.T) {
	r := rng.New(4)
	d := gen.Zipf(512, 1.2)
	vo, _ := Build(d, 16, VOptimal)
	ew, _ := Build(d, 16, EquiWidth)
	queries := make([]intervals.Interval, 200)
	for i := range queries {
		lo := r.Intn(511)
		queries[i] = intervals.Interval{Lo: lo, Hi: lo + 1 + r.Intn(512-lo-1)}
	}
	evVO := EvaluateQueries(d, vo, queries)
	evEW := EvaluateQueries(d, ew, queries)
	if evVO.MeanAbs > evEW.MeanAbs*1.5 {
		t.Fatalf("V-optimal query error %v much worse than equi-width %v", evVO.MeanAbs, evEW.MeanAbs)
	}
	if evVO.MaxAbs < evVO.MeanAbs {
		t.Fatal("max < mean")
	}
	if got := EvaluateQueries(d, vo, nil); got.MeanAbs != 0 || got.MaxAbs != 0 {
		t.Fatal("empty query set should give zero error")
	}
}
