package histbuild

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/intervals"
)

// Maintainer keeps an approximate equi-depth histogram under a stream of
// inserts, in the split-and-merge style of Gibbons–Matias–Poosala
// ([GMP97], cited in the paper's introduction for incremental histogram
// maintenance): a bucket that accumulates more than a threshold share of
// the total count splits at its midpoint, and when the bucket budget is
// exceeded the lightest adjacent pair merges. Splitting at the midpoint
// rather than the within-bucket median is the standard simplification
// (the true median would need per-bucket sketches); repeated splits
// converge on the same boundaries.
type Maintainer struct {
	n          int
	maxBuckets int
	splitFrac  float64
	total      int64
	bounds     []int   // len buckets+1, ascending, [0 ... n]
	counts     []int64 // len buckets
}

// NewMaintainer returns a maintainer over [0, n) targeting maxBuckets
// buckets. splitFrac (default 2 when <= 1) controls eagerness: a bucket
// splits once it exceeds splitFrac·total/maxBuckets counts.
func NewMaintainer(n, maxBuckets int, splitFrac float64) (*Maintainer, error) {
	if n < 1 {
		return nil, fmt.Errorf("histbuild: domain size %d must be positive", n)
	}
	if maxBuckets < 1 || maxBuckets > n {
		return nil, fmt.Errorf("histbuild: bucket budget %d out of [1, %d]", maxBuckets, n)
	}
	if splitFrac <= 1 {
		splitFrac = 2
	}
	return &Maintainer{
		n:          n,
		maxBuckets: maxBuckets,
		splitFrac:  splitFrac,
		bounds:     []int{0, n},
		counts:     []int64{0},
	}, nil
}

// Insert records one value.
func (m *Maintainer) Insert(v int) {
	if v < 0 || v >= m.n {
		panic(fmt.Sprintf("histbuild: value %d outside [0,%d)", v, m.n))
	}
	b := m.find(v)
	m.counts[b]++
	m.total++
	thr := int64(m.splitFrac * float64(m.total) / float64(m.maxBuckets))
	if m.counts[b] > thr && thr > 0 {
		m.split(b)
		for len(m.counts) > m.maxBuckets {
			m.mergeLightest()
		}
	}
}

// find returns the bucket index containing v (binary search).
func (m *Maintainer) find(v int) int {
	lo, hi := 0, len(m.counts)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.bounds[mid+1] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// split halves bucket b at its midpoint (no-op for singleton buckets).
func (m *Maintainer) split(b int) {
	lo, hi := m.bounds[b], m.bounds[b+1]
	if hi-lo < 2 {
		return
	}
	mid := (lo + hi) / 2
	left := m.counts[b] / 2
	right := m.counts[b] - left
	m.bounds = append(m.bounds, 0)
	copy(m.bounds[b+2:], m.bounds[b+1:])
	m.bounds[b+1] = mid
	m.counts = append(m.counts, 0)
	copy(m.counts[b+1:], m.counts[b:])
	m.counts[b] = left
	m.counts[b+1] = right
}

// mergeLightest merges the adjacent pair with the smallest combined count.
func (m *Maintainer) mergeLightest() {
	if len(m.counts) < 2 {
		return
	}
	best, bestSum := 0, m.counts[0]+m.counts[1]
	for i := 1; i+1 < len(m.counts); i++ {
		if s := m.counts[i] + m.counts[i+1]; s < bestSum {
			best, bestSum = i, s
		}
	}
	m.counts[best] += m.counts[best+1]
	m.counts = append(m.counts[:best+1], m.counts[best+2:]...)
	m.bounds = append(m.bounds[:best+1], m.bounds[best+2:]...)
}

// Buckets returns the current number of buckets.
func (m *Maintainer) Buckets() int { return len(m.counts) }

// Total returns the number of inserted values.
func (m *Maintainer) Total() int64 { return m.total }

// Histogram returns the current sketch as a normalized distribution.
// It returns an error before any inserts.
func (m *Maintainer) Histogram() (*dist.PiecewiseConstant, error) {
	if m.total == 0 {
		return nil, fmt.Errorf("histbuild: empty maintainer")
	}
	pieces := make([]dist.Piece, len(m.counts))
	for i := range m.counts {
		pieces[i] = dist.Piece{
			Iv:   intervals.Interval{Lo: m.bounds[i], Hi: m.bounds[i+1]},
			Mass: float64(m.counts[i]) / float64(m.total),
		}
	}
	return dist.NewPiecewiseConstant(m.n, pieces)
}
