package histbuild

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestMaintainerValidation(t *testing.T) {
	if _, err := NewMaintainer(0, 4, 2); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewMaintainer(10, 0, 2); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := NewMaintainer(10, 11, 2); err == nil {
		t.Fatal("budget > n accepted")
	}
	m, err := NewMaintainer(10, 4, 0) // splitFrac defaulted
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Histogram(); err == nil {
		t.Fatal("empty maintainer produced a histogram")
	}
}

func TestMaintainerPanicsOutOfRange(t *testing.T) {
	m, _ := NewMaintainer(10, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Insert(10)
}

func TestMaintainerConservesCounts(t *testing.T) {
	r := rng.New(1)
	m, _ := NewMaintainer(1000, 16, 2)
	const inserts = 50000
	for i := 0; i < inserts; i++ {
		m.Insert(r.Intn(1000))
	}
	if m.Total() != inserts {
		t.Fatalf("total = %d", m.Total())
	}
	h, err := m.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist.TotalMass(h)-1) > 1e-9 {
		t.Fatalf("mass = %v", dist.TotalMass(h))
	}
	if m.Buckets() > 16 {
		t.Fatalf("buckets = %d above budget", m.Buckets())
	}
}

func TestMaintainerTracksDistribution(t *testing.T) {
	r := rng.New(2)
	d := gen.Zipf(1024, 1.2)
	s := oracle.NewSampler(d, r)
	m, _ := NewMaintainer(1024, 32, 2)
	for i := 0; i < 400000; i++ {
		m.Insert(s.Draw())
	}
	h, err := m.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	// The maintained sketch should be close to the best offline 32-bucket
	// flattening (compare against the source: bounded TV).
	if tv := dist.TV(d, h); tv > 0.12 {
		t.Fatalf("maintained sketch TV = %v", tv)
	}
}

func TestMaintainerEquiDepthShape(t *testing.T) {
	// Heavy skew: the head must end up in narrow buckets.
	r := rng.New(3)
	d := gen.Zipf(4096, 1.5)
	s := oracle.NewSampler(d, r)
	m, _ := NewMaintainer(4096, 24, 2)
	for i := 0; i < 300000; i++ {
		m.Insert(s.Draw())
	}
	h, _ := m.Histogram()
	pieces := h.Pieces()
	if pieces[0].Iv.Len() >= pieces[len(pieces)-1].Iv.Len() {
		t.Fatalf("head bucket %v not narrower than tail bucket %v",
			pieces[0].Iv, pieces[len(pieces)-1].Iv)
	}
	// No bucket should carry a dominant share (approximate equi-depth).
	for _, pc := range pieces {
		if pc.Mass > 0.4 {
			t.Fatalf("bucket %v holds %v of the mass", pc.Iv, pc.Mass)
		}
	}
}

func TestMaintainerAdaptsToShift(t *testing.T) {
	// Start with mass on the left half, then shift to the right: the
	// sketch keeps tracking (counts are cumulative, so the check is that
	// right-half boundaries appear at all).
	m, _ := NewMaintainer(1000, 8, 2)
	r := rng.New(4)
	for i := 0; i < 20000; i++ {
		m.Insert(r.Intn(500))
	}
	for i := 0; i < 40000; i++ {
		m.Insert(500 + r.Intn(500))
	}
	h, _ := m.Histogram()
	right := 0
	for _, pc := range h.Pieces() {
		if pc.Iv.Lo >= 500 {
			right++
		}
	}
	if right < 2 {
		t.Fatalf("only %d buckets cover the shifted region", right)
	}
}

func TestMaintainerSingletonBucketsStopSplitting(t *testing.T) {
	// All inserts on one element: bucket narrows to a singleton and stays.
	m, _ := NewMaintainer(16, 4, 2)
	for i := 0; i < 10000; i++ {
		m.Insert(7)
	}
	h, _ := m.Histogram()
	// Midpoint splits halve counts approximately, so a small fraction can
	// leak into neighbouring (empty) cells before the bucket narrows.
	if h.Prob(7) < 0.99 {
		t.Fatalf("Prob(7) = %v", h.Prob(7))
	}
	if m.Buckets() > 4 {
		t.Fatalf("buckets = %d", m.Buckets())
	}
}
