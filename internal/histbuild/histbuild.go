// Package histbuild implements the classical database histogram
// constructions the paper's introduction motivates (selectivity
// estimation: [Koo80], [PIHS96], [JKM+98]) — equi-width, equi-depth,
// MaxDiff, and V-optimal — plus range-query selectivity estimation on the
// built sketch. Together with the tester-driven model selection in the
// public package, this realizes the end-to-end pipeline of Section 1.1:
// find the smallest adequate bin count, then build the histogram.
package histbuild

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/oracle"
)

// Method selects a histogram construction algorithm.
type Method string

// The supported construction methods.
const (
	EquiWidth Method = "equiwidth" // equal-length buckets
	EquiDepth Method = "equidepth" // equal-mass buckets
	MaxDiff   Method = "maxdiff"   // boundaries at the largest value jumps
	VOptimal  Method = "voptimal"  // least-squares optimal buckets [JKM+98]
)

// Methods lists all supported construction methods.
func Methods() []Method { return []Method{EquiWidth, EquiDepth, MaxDiff, VOptimal} }

// Build constructs a k-bucket histogram of d using the given method.
// The result is a distribution (total mass 1) that is piecewise constant
// on at most k intervals.
func Build(d dist.Distribution, k int, method Method) (*dist.PiecewiseConstant, error) {
	n := d.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("histbuild: k = %d out of [1, %d]", k, n)
	}
	switch method {
	case EquiWidth:
		return dist.Flatten(d, intervals.EquiWidth(n, k)), nil
	case EquiDepth:
		return dist.Flatten(d, equiDepthPartition(d, k)), nil
	case MaxDiff:
		return dist.Flatten(d, maxDiffPartition(d, k)), nil
	case VOptimal:
		pc := asPC(d)
		if pc.PieceCount() > histdp.MaxPieces {
			// Coarsen to the DP limit first.
			pc = dist.Flatten(pc, intervals.EquiWidth(n, histdp.MaxPieces))
		}
		proj, _, err := histdp.ProjectL2(pc, k)
		return proj, err
	default:
		return nil, fmt.Errorf("histbuild: unknown method %q", method)
	}
}

// BuildFromSamples constructs a k-bucket histogram from empirical counts.
func BuildFromSamples(counts *oracle.Counts, k int, method Method) (*dist.PiecewiseConstant, error) {
	return Build(counts.Empirical(), k, method)
}

// asPC converts any distribution to piecewise-constant representation.
func asPC(d dist.Distribution) *dist.PiecewiseConstant {
	if pc, ok := d.(*dist.PiecewiseConstant); ok {
		return pc
	}
	if dn, ok := d.(*dist.Dense); ok {
		return dn.ToPiecewiseConstant()
	}
	return dist.ToDense(d).ToPiecewiseConstant()
}

// equiDepthPartition places boundaries at the k-quantiles of d.
func equiDepthPartition(d dist.Distribution, k int) *intervals.Partition {
	n := d.N()
	total := dist.TotalMass(d)
	cuts := make([]int, 0, k-1)
	cum := 0.0
	next := 1
	for i := 0; i < n && next < k; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		p := d.Prob(i)
		// Within a constant run the crossing point is computable directly.
		for next < k {
			target := float64(next) * total / float64(k)
			if cum+p*float64(end-i) < target {
				break
			}
			var cross int
			if p <= 0 {
				cross = end
			} else {
				cross = i + int(math.Ceil((target-cum)/p))
			}
			if cross <= 0 {
				cross = 1
			}
			if cross >= n {
				cross = n - 1
			}
			if len(cuts) == 0 || cross > cuts[len(cuts)-1] {
				cuts = append(cuts, cross)
			}
			next++
		}
		cum += p * float64(end-i)
		i = end
	}
	return intervals.FromBoundaries(n, cuts)
}

// maxDiffPartition places the k−1 boundaries at the largest adjacent
// value differences of d.
func maxDiffPartition(d dist.Distribution, k int) *intervals.Partition {
	n := d.N()
	type jump struct {
		pos  int
		diff float64
	}
	var jumps []jump
	prev := d.Prob(0)
	for i := 0; i < n; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		v := d.Prob(i)
		if i > 0 && v != prev {
			jumps = append(jumps, jump{pos: i, diff: math.Abs(v - prev)})
		}
		prev = v
		// For Dense inputs RunEnd is i+1, so this walks all elements; for
		// piecewise inputs it only visits piece boundaries.
		i = end
	}
	sort.Slice(jumps, func(a, b int) bool { return jumps[a].diff > jumps[b].diff })
	if len(jumps) > k-1 {
		jumps = jumps[:k-1]
	}
	cuts := make([]int, len(jumps))
	for i, j := range jumps {
		cuts[i] = j.pos
	}
	return intervals.FromBoundaries(n, cuts)
}

// Selectivity answers range-query selectivity estimates from a histogram
// sketch: the estimated fraction of records with value in [lo, hi).
func Selectivity(h *dist.PiecewiseConstant, lo, hi int) float64 {
	return h.IntervalMass(intervals.Interval{Lo: lo, Hi: hi})
}

// QueryError compares estimated and true selectivities over a query set.
type QueryError struct {
	MeanAbs float64 // mean absolute selectivity error
	MaxAbs  float64 // worst-case absolute selectivity error
}

// EvaluateQueries measures the selectivity error of sketch h against the
// true distribution d over the given [lo, hi) queries.
func EvaluateQueries(d dist.Distribution, h *dist.PiecewiseConstant, queries []intervals.Interval) QueryError {
	if len(queries) == 0 {
		return QueryError{}
	}
	var sum, worst float64
	for _, q := range queries {
		got := Selectivity(h, q.Lo, q.Hi)
		want := d.IntervalMass(q)
		e := math.Abs(got - want)
		sum += e
		if e > worst {
			worst = e
		}
	}
	return QueryError{MeanAbs: sum / float64(len(queries)), MaxAbs: worst}
}

// SSE returns the squared ℓ2 error between d and the histogram h — the
// objective V-optimal minimizes.
func SSE(d dist.Distribution, h *dist.PiecewiseConstant) float64 {
	return dist.L2Squared(d, h)
}
