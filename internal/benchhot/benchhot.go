// Package benchhot holds the hot-path micro-benchmark bodies shared by
// the repo-root testing.B benchmarks (go test -bench) and the
// cmd/histbench -hotpath-json mode, which runs the same bodies via
// testing.Benchmark and records the results in BENCH_hotpath.json — the
// perf trajectory file tracking allocs/op and ns/op of the steady-state
// tester across PRs.
package benchhot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// EightHistogram returns a well-separated 8-histogram over [0, n) — the
// production-scale workload of the hot-path benchmarks.
func EightHistogram(n int) *dist.PiecewiseConstant {
	masses := []float64{0.25, 0.05, 0.15, 0.02, 0.2, 0.08, 0.15, 0.1}
	pieces := make([]dist.Piece, len(masses))
	w := n / len(masses)
	for j, m := range masses {
		hi := (j + 1) * w
		if j == len(masses)-1 {
			hi = n
		}
		pieces[j] = dist.Piece{Iv: intervals.Interval{Lo: j * w, Hi: hi}, Mass: m}
	}
	return dist.MustPiecewiseConstant(n, pieces)
}

// CoreTestHotPath measures the steady-state cost of repeated tester
// invocations at production scale (n = 10⁵, k = 8): one shared
// core.Arena, one shared alias-table prototype, fresh RNG streams per
// iteration. With -benchmem the allocs/op figure is the headline number
// BENCH_hotpath.json tracks.
func CoreTestHotPath(b *testing.B, workers int) {
	coreTestHotPath(b, workers, oracle.CountExact)
}

// CoreTestHotPathClosedForm is the same workload with the count vectors
// synthesized from the sampler's run structure (oracle.CountClosedForm)
// instead of drawn sample by sample — the BENCH_hotpath.json entry that
// pins the closed-form speedup.
func CoreTestHotPathClosedForm(b *testing.B, workers int) {
	coreTestHotPath(b, workers, oracle.CountClosedForm)
}

// CoreTestHotPathEngine is the same workload under an explicitly named
// engine — the per-engine BENCH_hotpath.json entries `make bench-gate`
// uses to gate every registered engine like-for-like. The adk entry
// duplicates CoreTestHotPath by construction (empty engine = adk), which
// is deliberate: the named entry keeps gating even if the default ever
// changes.
func CoreTestHotPathEngine(b *testing.B, engine string, workers int) {
	coreTestHotPathEngine(b, engine, workers, oracle.CountExact)
}

func coreTestHotPath(b *testing.B, workers int, cs oracle.CountStrategy) {
	coreTestHotPathEngine(b, "", workers, cs)
}

func coreTestHotPathEngine(b *testing.B, engine string, workers int, cs oracle.CountStrategy) {
	const n, k = 100_000, 8
	const eps = 0.8
	cfg := core.PracticalConfig()
	cfg.Engine = engine
	cfg.SieveReps = 0 // derive Θ(log k) replicates as the paper does
	cfg.Workers = workers
	cfg.MaxSamples = 1 << 33
	cfg.CountStrategy = cs
	proto := oracle.NewSampler(EightHistogram(n), rng.New(0))
	arena := core.NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := proto.Fork(rng.New(uint64(i)*2 + 1))
		res, err := arena.Test(s, rng.New(uint64(i)*2+2), k, eps, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Accept {
			b.Fatalf("iteration %d: 8-histogram rejected at stage %s", i, res.Trace.RejectStage)
		}
	}
}

// DrawCountsPooled measures one pooled Poissonized dense batch draw at
// n = m = 10⁵ — the unit of work the sieve repeats Θ(log k · log k)
// times per tester invocation. Steady state is zero-allocation: the
// count buffer cycles through the oracle pool.
func DrawCountsPooled(b *testing.B) {
	const n = 100_000
	s := oracle.NewSampler(EightHistogram(n), rng.New(1))
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := oracle.DrawCounts(s, r, n)
		if c.Total() < 0 {
			b.Fatal("impossible")
		}
		c.Release()
	}
}

// DrawCountsClosedForm measures one closed-form Poissonized batch at the
// sieve's production scale: mean m = 20n = 2·10⁶, the regime where the
// CoreTestHotPath workload actually spends its time (PracticalConfig
// puts the per-round sieve mean at ≈23n). Closed-form cost is
// O(k + Σ min(t_j, width_j)) <= O(k + n) — independent of m — while the
// per-draw path scales linearly in m, so compare this against 20×
// DrawCountsPooled's ns/op. (At m = n the two paths cost about the same
// and the synthesis has nothing to save; the win is m >> n.)
func DrawCountsClosedForm(b *testing.B) {
	const n = 100_000
	const mean = 20 * n
	s := oracle.NewSampler(EightHistogram(n), rng.New(1))
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := oracle.DrawCountsWith(s, r, mean, oracle.CountClosedForm)
		if c.Total() < 0 {
			b.Fatal("impossible")
		}
		c.Release()
	}
}
