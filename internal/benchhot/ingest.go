package benchhot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/stream"
)

// Ingest benchmark bodies: the soak workload BENCH_ingest.json tracks.
// One op is one 4096-event batch poured into a shared sharded
// accumulator; the headline metric is the aggregate events/s rate
// (reported via b.ReportMetric, so it lands in BenchmarkResult.Extra and
// the recorded JSON), which `make bench-gate` holds to the 1M events/s
// floor at 4-way parallelism.

const (
	// ingestDomain is the event domain of the soak workload — large
	// enough for a realistic shard fan-out, small enough to stay on the
	// dense backing (the production fast path).
	ingestDomain = 1 << 16
	// ingestBatchLen is the events-per-batch of one benchmark op,
	// matching the decoder's internal flush granularity's order of
	// magnitude so per-batch overhead is realistic, not amortized away.
	ingestBatchLen = 4096
)

// ingestBatches returns one pre-generated event batch per worker, so the
// timed region measures ingestion only.
func ingestBatches(workers int) [][]int32 {
	batches := make([][]int32, workers)
	for w := range batches {
		r := rng.New(uint64(w)*2 + 1)
		batch := make([]int32, ingestBatchLen)
		for i := range batch {
			batch[i] = int32(r.Intn(ingestDomain))
		}
		batches[w] = batch
	}
	return batches
}

// IngestSoak measures aggregate accumulator ingest throughput: workers
// goroutines pour pre-generated batches into ONE shared accumulator —
// the contention profile of a live firehose fanned across HTTP handler
// goroutines, with the decode layer factored out. Reports events/s.
func IngestSoak(b *testing.B, workers int) {
	acc, err := stream.NewAccumulator(stream.AccumConfig{N: ingestDomain})
	if err != nil {
		b.Fatal(err)
	}
	batches := ingestBatches(workers)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := b.N / workers
		if w < b.N%workers {
			share++
		}
		wg.Add(1)
		go func(batch []int32, share int) {
			defer wg.Done()
			for i := 0; i < share; i++ {
				acc.Ingest(batch)
			}
		}(batches[w], share)
	}
	wg.Wait()
	b.StopTimer()
	events := int64(b.N) * ingestBatchLen
	if got := acc.TotalEvents(); got != events {
		b.Fatalf("conservation violated: ingested %d events, accumulator accounts %d", events, got)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// IngestDecodeBinary measures the full wire→tally path for the binary
// format: one op decodes a 4096-event length-prefixed frame straight
// into the accumulator. Reports events/s.
func IngestDecodeBinary(b *testing.B) {
	batch := ingestBatches(1)[0]
	var payload bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	payload.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(batch)))])
	for _, v := range batch {
		payload.Write(tmp[:binary.PutUvarint(tmp[:], uint64(v))])
	}
	ingestDecode(b, payload.Bytes(), func(r *bytes.Reader, sink func([]int32)) (int64, error) {
		return stream.DecodeBinary(r, ingestDomain, 0, sink)
	})
}

// IngestDecodeNDJSON is the same wire→tally path for ndjson: one op
// decodes a 4096-line payload of bare integers. Reports events/s.
func IngestDecodeNDJSON(b *testing.B) {
	batch := ingestBatches(1)[0]
	var sb strings.Builder
	for _, v := range batch {
		fmt.Fprintf(&sb, "%d\n", v)
	}
	ingestDecode(b, []byte(sb.String()), func(r *bytes.Reader, sink func([]int32)) (int64, error) {
		return stream.DecodeNDJSON(r, ingestDomain, sink)
	})
}

func ingestDecode(b *testing.B, payload []byte, decode func(*bytes.Reader, func([]int32)) (int64, error)) {
	acc, err := stream.NewAccumulator(stream.AccumConfig{N: ingestDomain})
	if err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(payload)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(payload)
		applied, err := decode(r, acc.Ingest)
		if err != nil {
			b.Fatal(err)
		}
		if applied != ingestBatchLen {
			b.Fatalf("applied %d events, want %d", applied, ingestBatchLen)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*ingestBatchLen/b.Elapsed().Seconds(), "events/s")
}
