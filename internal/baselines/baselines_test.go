package baselines

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// rate runs tester trials times on fresh samplers of d and returns the
// accept fraction.
func rate(t *testing.T, tester Tester, d dist.Distribution, k int, eps float64, trials int, seed uint64) float64 {
	t.Helper()
	r := rng.New(seed)
	accepts := 0
	for i := 0; i < trials; i++ {
		s := oracle.NewSampler(d, r)
		dec, err := tester.Run(nil, s, r, k, eps)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if dec.Accept {
			accepts++
		}
	}
	return float64(accepts) / float64(trials)
}

func TestNaiveCompleteness(t *testing.T) {
	r := rng.New(1)
	d := gen.KHistogram(r, 256, 4)
	if got := rate(t, NewNaive(), d, 4, 0.4, 10, 2); got < 0.9 {
		t.Fatalf("naive accept rate on 4-histogram = %v", got)
	}
}

func TestNaiveSoundness(t *testing.T) {
	d := gen.Comb(256)
	if got := rate(t, NewNaive(), d, 4, 0.4, 10, 3); got > 0.1 {
		t.Fatalf("naive accept rate on comb = %v", got)
	}
}

func TestNaiveLargeDomainCoarsens(t *testing.T) {
	// n above the DP limit exercises the flattening fallback.
	r := rng.New(4)
	d := gen.KHistogram(r, 2*4096, 3)
	s := oracle.NewSampler(d, r)
	dec, err := NewNaive().Run(nil, s, r, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Accept {
		t.Fatal("naive rejected a histogram on a large domain")
	}
	if dec.Samples <= 0 {
		t.Fatal("sample accounting missing")
	}
}

func TestCDGRCompleteness(t *testing.T) {
	// A histogram whose breakpoints the ApproxPart boundaries will usually
	// straddle lightly: CDGR accepts most of the time on mild instances.
	d := dist.Uniform(512)
	if got := rate(t, NewCDGR16(), d, 1, 0.5, 10, 5); got < 0.7 {
		t.Fatalf("cdgr accept rate on uniform = %v", got)
	}
}

func TestCDGRSoundness(t *testing.T) {
	d := gen.Comb(512)
	if got := rate(t, NewCDGR16(), d, 4, 0.45, 10, 6); got > 0.3 {
		t.Fatalf("cdgr accept rate on comb = %v", got)
	}
}

func TestILRCompleteness(t *testing.T) {
	d := dist.Uniform(512)
	if got := rate(t, NewILR12(), d, 1, 0.5, 10, 7); got < 0.7 {
		t.Fatalf("ilr accept rate on uniform = %v", got)
	}
}

func TestILRSoundness(t *testing.T) {
	d := gen.Comb(512)
	if got := rate(t, NewILR12(), d, 4, 0.45, 10, 8); got > 0.3 {
		t.Fatalf("ilr accept rate on comb = %v", got)
	}
}

func TestCollisionUniform(t *testing.T) {
	if got := rate(t, NewCollision(), dist.Uniform(1024), 1, 0.3, 20, 9); got < 0.8 {
		t.Fatalf("collision accept rate on uniform = %v", got)
	}
}

func TestCollisionFar(t *testing.T) {
	// Half the elements carry double mass: ℓ2 well above uniform.
	n := 1024
	p := make([]float64, n)
	for i := range p {
		if i%2 == 0 {
			p[i] = 2.0 / float64(n)
		}
	}
	d := dist.MustDense(p)
	if got := rate(t, NewCollision(), d, 1, 0.3, 20, 10); got > 0.2 {
		t.Fatalf("collision accept rate on far = %v", got)
	}
}

func TestCollisionRejectsKNotOne(t *testing.T) {
	r := rng.New(11)
	s := oracle.NewSampler(dist.Uniform(64), r)
	if _, err := NewCollision().Run(nil, s, r, 2, 0.3); err == nil {
		t.Fatal("k=2 accepted by uniformity tester")
	}
}

func TestCanonneAdapter(t *testing.T) {
	d := dist.Uniform(512)
	if got := rate(t, NewCanonne(), d, 1, 0.5, 8, 12); got < 0.7 {
		t.Fatalf("canonne adapter accept rate = %v", got)
	}
}

func TestWithScaleChangesBudget(t *testing.T) {
	r := rng.New(13)
	d := dist.Uniform(256)
	for _, tester := range []Tester{NewNaive(), NewCDGR16(), NewILR12(), NewCollision(), NewCanonne()} {
		k := 1
		s1 := oracle.NewSampler(d, r)
		full, err := tester.Run(nil, s1, r, k, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", tester.Name(), err)
		}
		s2 := oracle.NewSampler(d, r)
		half, err := tester.WithScale(0.25).Run(nil, s2, r, k, 0.5)
		if err != nil {
			t.Fatalf("%s scaled: %v", tester.Name(), err)
		}
		if half.Samples >= full.Samples {
			t.Fatalf("%s: scale 0.25 used %d >= %d samples", tester.Name(), half.Samples, full.Samples)
		}
	}
}

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, tester := range []Tester{NewNaive(), NewCDGR16(), NewILR12(), NewCollision(), NewCanonne()} {
		if seen[tester.Name()] {
			t.Fatalf("duplicate tester name %q", tester.Name())
		}
		seen[tester.Name()] = true
	}
}
