// Package baselines implements the prior algorithms the paper compares
// against analytically (Section 1.2), so the comparison can be run
// empirically:
//
//   - Naive: learn D outright with O(n/ε²) samples and compute the distance
//     to H_k offline — the approach testing is meant to beat.
//   - CDGR16: the learn-then-identity-test of Canonne–Diakonikolas–
//     Gouleakis–Rubinfeld (Θ(√(kn)/ε³·polylog) samples): learn the
//     flattening agnostically on a Θ(k/ε)-interval partition, check it
//     against H_k by DP, then identity-test D against it — i.e. the
//     paper's algorithm *without the sieve*. It doubles as the sieving
//     ablation (experiment E8).
//   - ILR12: the Indyk–Levi–Rubinfeld style per-interval flatness tester
//     (Θ(√(kn)/ε⁵·log n) samples): equal-mass partition, collision-based
//     conditional-uniformity test inside every interval, plus a DP check
//     of the flattening.
//   - Collision: Paninski-flavored collision uniformity tester for the
//     special case k = 1.
//   - Canonne: the paper's tester (internal/core) adapted to the common
//     interface.
//
// The reimplementations are faithful in structure and in how their sample
// complexity scales; constants are calibrated, and each tester exposes a
// Scale knob so the experiment harness can search its empirical sample
// complexity by shrinking/growing every stage budget together.
package baselines

import (
	"context"
	"math"

	"repro/internal/chisq"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Decision is a tester verdict plus its sample usage.
type Decision struct {
	Accept  bool
	Samples int64
}

// Tester is the common interface the comparison harness drives.
type Tester interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Run decides H_k membership vs ε-farness from samples of o. A
	// cancelled ctx aborts the run with ctx.Err() at batch-draw
	// granularity (testers never retain pooled buffers past an abort);
	// nil means context.Background().
	Run(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64) (Decision, error)
	// WithScale returns a copy whose sample budgets are multiplied by s.
	WithScale(s float64) Tester
}

// run wraps a body with sample accounting.
func run(o oracle.Oracle, body func() (bool, error)) (Decision, error) {
	start := o.Samples()
	accept, err := body()
	return Decision{Accept: accept, Samples: o.Samples() - start}, err
}

// ctxErr is ctx.Err() tolerating the nil context the Tester contract
// allows.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Canonne adapts the paper's tester (internal/core) to the Tester
// interface.
type Canonne struct {
	Config core.Config
}

// NewCanonne returns the paper's tester under the practical constants.
func NewCanonne() *Canonne { return &Canonne{Config: core.PracticalConfig()} }

// Name implements Tester.
func (c *Canonne) Name() string { return "canonne16" }

// Run implements Tester.
func (c *Canonne) Run(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64) (Decision, error) {
	return run(o, func() (bool, error) {
		res, err := core.TestContext(ctx, o, r, k, eps, c.Config)
		if err != nil {
			return false, err
		}
		return res.Accept, nil
	})
}

// WithScale implements Tester.
func (c *Canonne) WithScale(s float64) Tester {
	return &Canonne{Config: c.Config.Scale(s)}
}

// Naive learns the whole distribution empirically with O(n/ε²) samples and
// projects it onto H_k offline. Its sample complexity is linear in n —
// the yardstick every sublinear tester is measured against.
type Naive struct {
	// C scales the sample budget m = C·n/ε².
	C float64
	// MaxDP caps the projection DP size: for n above it, the empirical
	// distribution is flattened onto MaxDP equi-width buckets first
	// (negligible distortion while MaxDP >> k). Zero means 2048.
	MaxDP int
}

// NewNaive returns the naive tester with its calibrated constant.
func NewNaive() *Naive { return &Naive{C: 4, MaxDP: 2048} }

// Name implements Tester.
func (t *Naive) Name() string { return "naive-learn" }

// Run implements Tester.
func (t *Naive) Run(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64) (Decision, error) {
	return run(o, func() (bool, error) {
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		n := o.N()
		m := int(math.Ceil(t.C * float64(n) / (eps * eps)))
		counts := oracle.NewCounts(n, oracle.DrawN(o, m))
		emp := counts.Empirical()
		// Exact-on-empirical projection, coarsened to the DP budget when
		// the domain is large (negligible distortion while the bucket
		// count far exceeds k).
		maxDP := t.MaxDP
		if maxDP <= 0 {
			maxDP = 2048
		}
		if maxDP > histdp.MaxPieces {
			maxDP = histdp.MaxPieces
		}
		var pc *dist.PiecewiseConstant
		if n <= maxDP {
			pc = emp.ToPiecewiseConstant()
		} else {
			pc = dist.Flatten(emp, intervals.EquiWidth(n, maxDP))
		}
		lower, _, err := histdp.DistanceToHk(pc, k, intervals.FullDomain(n))
		if err != nil {
			return false, err
		}
		return lower <= eps/2, nil
	})
}

// WithScale implements Tester.
func (t *Naive) WithScale(s float64) Tester { return &Naive{C: t.C * s, MaxDP: t.MaxDP} }

// CDGR16 is the learn-then-identity-test baseline: agnostically learn the
// flattening of D over a Θ(k/ε)-interval partition, verify it is close to
// H_k (DP), then run the [ADK15] identity test of D against it over the
// full domain — no sieving. When D's breakpoint intervals carry
// significant mass, the unsieved identity test wrongly rejects; that gap
// is exactly what experiment E8 measures.
type CDGR16 struct {
	// PartBFactor sets b = PartBFactor·k/ε for the partition.
	PartBFactor float64
	// PartSampleC scales ApproxPart's budget.
	PartSampleC float64
	// LearnEpsDivisor runs the learner at ε/LearnEpsDivisor.
	LearnEpsDivisor float64
	// LearnSampleC scales the learner budget.
	LearnSampleC float64
	// CheckTolDivisor accepts the DP check at ε/CheckTolDivisor.
	CheckTolDivisor float64
	// TestEpsFactor runs the identity test at ε' = TestEpsFactor·ε.
	TestEpsFactor float64
	// Chi are the identity-test constants.
	Chi chisq.Params
}

// NewCDGR16 returns the baseline with calibrated constants (aligned with
// core.PracticalConfig so the E8 ablation isolates the sieve).
func NewCDGR16() *CDGR16 {
	return &CDGR16{
		PartBFactor:     6,
		PartSampleC:     8,
		LearnEpsDivisor: 24,
		LearnSampleC:    1,
		CheckTolDivisor: 20,
		TestEpsFactor:   0.28,
		Chi:             chisq.Params{MFactor: 60, TruncFactor: 1.0 / 50, AcceptFactor: 1.0 / 10},
	}
}

// Name implements Tester.
func (t *CDGR16) Name() string { return "cdgr16-nosieve" }

// Run implements Tester.
func (t *CDGR16) Run(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64) (Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return run(o, func() (bool, error) {
		n := o.N()
		if k >= n {
			return true, nil
		}
		b := t.PartBFactor * float64(k) * math.Log2(float64(k)+2) / eps
		if b < 1 {
			b = 1
		}
		part, err := learn.ApproxPartContext(ctx, o, r, b, t.PartSampleC)
		if err != nil {
			return false, err
		}
		dhat, _, err := learn.LearnContext(ctx, o, r, part.Partition, eps/t.LearnEpsDivisor, t.LearnSampleC)
		if err != nil {
			return false, err
		}
		full := intervals.FullDomain(n)
		proj, err := histdp.ProjectTV(dhat, k, full)
		if err != nil {
			return false, err
		}
		if proj.Relaxed > eps/t.CheckTolDivisor {
			return false, nil
		}
		if err := ctx.Err(); err != nil {
			return false, err
		}
		res := chisq.Test(o, r, dhat, full, t.TestEpsFactor*eps, t.Chi)
		return res.Accept, nil
	})
}

// WithScale implements Tester.
func (t *CDGR16) WithScale(s float64) Tester {
	out := *t
	out.PartSampleC *= s
	out.LearnSampleC *= s
	out.Chi.MFactor *= s
	return &out
}
