package baselines

import (
	"context"
	"math"

	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// ILR12 is the Indyk–Levi–Rubinfeld style tester: split the domain into
// L = Θ(k/ε) intervals of (empirically) equal mass, then
//
//	(a) check by DP that the flattening of D over that partition is close
//	    to H_k, and
//	(b) test, inside every interval, that D is flat (conditionally
//	    uniform) via the collision statistic.
//
// A k-histogram makes (a) pass and leaves at most k−1 intervals non-flat
// (total mass O(k/L) = O(ε)); an ε-far distribution must push ≥ ε/2 of
// distance into (a) or into the within-interval non-flatness that (b)
// detects. The within-interval collision tests are what drive the
// Θ(√(kn)/poly(ε)) sample complexity with its worse ε-dependence — the
// behaviour experiment E3 compares against.
//
// Deviations from [ILR12]: their multi-level bucketing over log n weight
// scales is replaced by the single ApproxPart partition, and intervals
// receiving too few conditional samples are presumed flat (costing
// soundness slack covered by the constants). The scaling in n, k, ε is
// preserved.
type ILR12 struct {
	// LFactor sets the interval count L = LFactor·k/ε.
	LFactor float64
	// PartSampleC scales the partitioning budget.
	PartSampleC float64
	// MassSampleC scales the interval-mass estimation budget C·L/ε².
	MassSampleC float64
	// FlatC scales the collision-test budget C·√(kn)/ε⁴.
	FlatC float64
	// LocalEps is the per-interval flatness threshold, as a fraction of ε.
	LocalEps float64
	// BadMassFrac rejects when intervals flagged non-flat exceed this
	// fraction of ε in estimated mass.
	BadMassFrac float64
	// CheckTolDivisor accepts the flattening DP check at ε/CheckTolDivisor.
	CheckTolDivisor float64
}

// NewILR12 returns the baseline with calibrated constants.
func NewILR12() *ILR12 {
	return &ILR12{
		LFactor:         16,
		PartSampleC:     8,
		MassSampleC:     2,
		FlatC:           6,
		LocalEps:        0.5,
		BadMassFrac:     0.25,
		CheckTolDivisor: 4,
	}
}

// Name implements Tester.
func (t *ILR12) Name() string { return "ilr12-flatness" }

// Run implements Tester.
func (t *ILR12) Run(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64) (Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return run(o, func() (bool, error) {
		n := o.N()
		if k >= n {
			return true, nil
		}
		// Partition into ~L equal-mass intervals via ApproxPart with b = L.
		L := t.LFactor * float64(k) / eps
		if L < 1 {
			L = 1
		}
		part, err := learn.ApproxPartContext(ctx, o, r, L, t.PartSampleC)
		if err != nil {
			return false, err
		}
		p := part.Partition

		// Estimate interval masses and check the flattening against H_k.
		if err := ctx.Err(); err != nil {
			return false, err
		}
		mMass := int(math.Ceil(t.MassSampleC * float64(p.Count()) / (eps * eps)))
		massCounts := oracle.NewCounts(n, oracle.DrawN(o, mMass))
		flat := learn.LaplaceEstimate(massCounts, p)
		proj, err := histdp.ProjectTV(flat, k, intervals.FullDomain(n))
		if err != nil {
			return false, err
		}
		if proj.Relaxed > eps/t.CheckTolDivisor {
			return false, nil
		}

		// Within-interval flatness by collisions.
		if err := ctx.Err(); err != nil {
			return false, err
		}
		mFlat := int(math.Ceil(t.FlatC * math.Sqrt(float64(k)*float64(n)) / math.Pow(eps, 4)))
		flatCounts := oracle.NewCounts(n, oracle.DrawN(o, mFlat))
		epsLoc := t.LocalEps * eps
		badMass := 0.0
		for j := 0; j < p.Count(); j++ {
			iv := p.Interval(j)
			if iv.Len() == 1 {
				continue // singletons are trivially flat
			}
			// Conditional samples and collisions inside iv.
			cI := 0
			var coll int64
			flatCounts.ForEach(func(i, ni int) {
				if i >= iv.Lo && i < iv.Hi {
					cI += ni
					coll += int64(ni) * int64(ni-1) / 2
				}
			})
			// Need enough conditional samples to resolve ℓ2 within iv.
			need := math.Sqrt(float64(iv.Len())) / (epsLoc * epsLoc)
			if float64(cI) < need || cI < 2 {
				continue // presumed flat (see doc comment)
			}
			l2est := 2 * float64(coll) / (float64(cI) * float64(cI-1))
			if l2est > (1+2*epsLoc*epsLoc)/float64(iv.Len()) {
				badMass += flat.IntervalMass(iv)
			}
		}
		return badMass <= t.BadMassFrac*eps, nil
	})
}

// WithScale implements Tester.
func (t *ILR12) WithScale(s float64) Tester {
	out := *t
	out.PartSampleC *= s
	out.MassSampleC *= s
	out.FlatC *= s
	return &out
}

// Collision is the Paninski-style uniformity tester specialized to k = 1:
// m = C·√n/ε² samples, accept iff the pair-collision rate is below
// (1 + 2ε²)/n. Testing uniformity IS testing H_1 against the uniform
// distribution for center-symmetric instances like the paper's Q_ε family
// (Proposition 4.1); for general k = 1 instances it is only a one-sided
// baseline, which is how experiment E4 uses it.
type Collision struct {
	// C scales the sample budget m = C·√n/ε².
	C float64
}

// NewCollision returns the uniformity baseline with its calibrated
// constant.
func NewCollision() *Collision { return &Collision{C: 4} }

// Name implements Tester.
func (t *Collision) Name() string { return "paninski-collision" }

// Run implements Tester. k must be 1.
func (t *Collision) Run(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64) (Decision, error) {
	return run(o, func() (bool, error) {
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		if k != 1 {
			return false, errNotUniformity
		}
		n := o.N()
		m := int(math.Ceil(t.C * math.Sqrt(float64(n)) / (eps * eps)))
		if m < 2 {
			m = 2
		}
		counts := oracle.NewCounts(n, oracle.DrawN(o, m))
		pairs := float64(m) * float64(m-1) / 2
		rate := float64(counts.PairCollisions()) / pairs
		return rate <= (1+2*eps*eps)/float64(n), nil
	})
}

// WithScale implements Tester.
func (t *Collision) WithScale(s float64) Tester { return &Collision{C: t.C * s} }

type uniformityErr struct{}

func (uniformityErr) Error() string { return "baselines: collision tester only supports k = 1" }

var errNotUniformity = uniformityErr{}
