package chisq

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func fullDomain(n int) *intervals.Domain { return intervals.FullDomain(n) }

// drawCounts draws Poisson(m) samples from d and tallies them.
func drawCounts(r *rng.RNG, d dist.Distribution, m float64) *oracle.Counts {
	s := oracle.NewSampler(d, r)
	return oracle.NewCounts(d.N(), oracle.DrawPoisson(s, r, m))
}

func TestZUnbiasedUnderNull(t *testing.T) {
	// When D == D*, E[Z] = 0; average over repetitions should be small.
	r := rng.New(1)
	d := dist.Uniform(64)
	const m = 2000.0
	sum := 0.0
	const reps = 300
	for i := 0; i < reps; i++ {
		counts := drawCounts(r, d, m)
		sum += ZDomain(counts, d, fullDomain(64), m, 0)
	}
	avg := sum / reps
	// Var Z under the null is about 2·Σ 1 = 2n per draw; sd of the mean
	// is sqrt(2·64/300) ≈ 0.65.
	if math.Abs(avg) > 3 {
		t.Fatalf("null E[Z] estimate = %v, want ~0", avg)
	}
}

func TestZMatchesExpectationUnderAlternative(t *testing.T) {
	r := rng.New(2)
	n := 32
	dstar := dist.Uniform(n)
	// D puts extra mass on the first half.
	p := make([]float64, n)
	for i := range p {
		if i < n/2 {
			p[i] = 1.5 / float64(n)
		} else {
			p[i] = 0.5 / float64(n)
		}
	}
	d := dist.MustDense(p)
	const m = 5000.0
	want := ExpectedZ(d, dstar, fullDomain(n), m, 0)
	sum := 0.0
	const reps = 200
	for i := 0; i < reps; i++ {
		counts := drawCounts(r, d, m)
		sum += ZDomain(counts, dstar, fullDomain(n), m, 0)
	}
	avg := sum / reps
	if math.Abs(avg-want) > 0.1*want {
		t.Fatalf("E[Z] estimate = %v, analytical = %v", avg, want)
	}
}

func TestExpectedZFormula(t *testing.T) {
	// Hand-computed: n=2, D = (0.75, 0.25), D* = (0.5, 0.5), m = 100.
	d := dist.MustDense([]float64{0.75, 0.25})
	dstar := dist.Uniform(2)
	want := 100 * (0.25*0.25/0.5 + 0.25*0.25/0.5)
	if got := ExpectedZ(d, dstar, fullDomain(2), 100, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedZ = %v, want %v", got, want)
	}
}

func TestTruncationDropsLightElements(t *testing.T) {
	// D* has a heavy and a light element; with tau above the light mass,
	// only the heavy element contributes.
	dstar := dist.MustDense([]float64{0.9, 0.1})
	d := dist.MustDense([]float64{0.1, 0.9})
	full := ExpectedZ(d, dstar, fullDomain(2), 100, 0)
	trunc := ExpectedZ(d, dstar, fullDomain(2), 100, 0.5)
	wantFull := 100 * (0.8*0.8/0.9 + 0.8*0.8/0.1)
	wantTrunc := 100 * (0.8 * 0.8 / 0.9)
	if math.Abs(full-wantFull) > 1e-9 || math.Abs(trunc-wantTrunc) > 1e-9 {
		t.Fatalf("truncation wrong: full=%v want=%v trunc=%v want=%v", full, wantFull, trunc, wantTrunc)
	}
}

func TestZDomainRestriction(t *testing.T) {
	// Restricting to half the domain should only count that half.
	r := rng.New(3)
	n := 16
	dstar := dist.Uniform(n)
	// D is distorted only on the second half.
	p := make([]float64, n)
	for i := range p {
		if i < n/2 {
			p[i] = 1.0 / float64(n)
		} else if i%2 == 0 {
			p[i] = 1.8 / float64(n)
		} else {
			p[i] = 0.2 / float64(n)
		}
	}
	d := dist.MustDense(p)
	const m = 20000.0
	left := intervals.NewDomain(n, []intervals.Interval{{Lo: 0, Hi: n / 2}})
	sum := 0.0
	const reps = 100
	for i := 0; i < reps; i++ {
		counts := drawCounts(r, d, m)
		sum += ZDomain(counts, dstar, left, m, 0)
	}
	avg := sum / reps
	if math.Abs(avg) > 30 {
		t.Fatalf("Z over clean half = %v, want ~0 (distortion leaked in)", avg)
	}
}

func TestZPerIntervalSumsToZDomain(t *testing.T) {
	r := rng.New(4)
	n := 60
	dstar := dist.Uniform(n)
	d := dist.MustDense(func() []float64 {
		p := make([]float64, n)
		for i := range p {
			p[i] = float64(i+1) * 2 / float64(n*(n+1))
		}
		return p
	}())
	part := intervals.FromBoundaries(n, []int{10, 25, 40})
	g := intervals.NewDomain(n, []intervals.Interval{{Lo: 0, Hi: 25}, {Lo: 40, Hi: 60}})
	const m = 500.0
	counts := drawCounts(r, d, m)
	tau := 0.5 / float64(n)
	zs := ZPerInterval(counts, dstar, part, g, m, tau)
	if len(zs) != part.Count() {
		t.Fatalf("got %d statistics", len(zs))
	}
	total := 0.0
	for _, z := range zs {
		total += z
	}
	want := ZDomain(counts, dstar, g, m, tau)
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("ΣZ_j = %v, ZDomain = %v", total, want)
	}
	// Interval [25,40) is outside g entirely: its statistic must be 0.
	if zs[2] != 0 {
		t.Fatalf("Z for out-of-domain interval = %v", zs[2])
	}
}

func TestZEquivalentAcrossRepresentations(t *testing.T) {
	// Z must not depend on whether D* is Dense or PiecewiseConstant.
	r := rng.New(5)
	n := 40
	pcStar := dist.MustPiecewiseConstant(n, []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: 10}, Mass: 0.5},
		{Iv: intervals.Interval{Lo: 10, Hi: 40}, Mass: 0.5},
	})
	denseStar := dist.ToDense(pcStar)
	d := dist.Uniform(n)
	const m = 800.0
	counts := drawCounts(r, d, m)
	tau := 0.2 / float64(n)
	g := intervals.NewDomain(n, []intervals.Interval{{Lo: 3, Hi: 33}})
	a := ZDomain(counts, pcStar, g, m, tau)
	b := ZDomain(counts, denseStar, g, m, tau)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("Z differs across representations: %v vs %v", a, b)
	}
}

func TestParamsDerivedQuantities(t *testing.T) {
	p := PaperParams()
	n, eps := 10000, 0.1
	if got, want := p.SampleMean(n, eps), 20000*100/0.01; math.Abs(got-want) > 1e-6 {
		t.Fatalf("SampleMean = %v, want %v", got, want)
	}
	if got, want := p.Threshold(n, eps), 0.1/50/10000; math.Abs(got-want) > 1e-18 {
		t.Fatalf("Threshold = %v, want %v", got, want)
	}
}

func TestTesterCompleteness(t *testing.T) {
	// D == D* exactly: must accept with high probability.
	r := rng.New(6)
	n := 256
	d := dist.Uniform(n)
	s := oracle.NewSampler(d, r)
	params := PracticalParams()
	accepts := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		if Test(s, r, d, fullDomain(n), 0.25, params).Accept {
			accepts++
		}
	}
	if accepts < trials*3/4 {
		t.Fatalf("completeness: accepted %d/%d", accepts, trials)
	}
}

func TestTesterSoundness(t *testing.T) {
	// dTV(D, D*) = 0.5: must reject with high probability.
	r := rng.New(7)
	n := 256
	dstar := dist.Uniform(n)
	p := make([]float64, n)
	for i := range p {
		if i < n/2 {
			p[i] = 2.0 / float64(n)
		}
	}
	d := dist.MustDense(p)
	s := oracle.NewSampler(d, r)
	params := PracticalParams()
	rejects := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		if !Test(s, r, dstar, fullDomain(n), 0.25, params).Accept {
			rejects++
		}
	}
	if rejects < trials*3/4 {
		t.Fatalf("soundness: rejected %d/%d", rejects, trials)
	}
}

func TestTesterRestrictedIgnoresSievedRegion(t *testing.T) {
	// D and D* agree on g = [n/4, n) but differ wildly on [0, n/4): the
	// restricted test must accept while the full-domain test rejects.
	r := rng.New(8)
	n := 256
	p := make([]float64, n)
	for i := range p {
		if i < n/4 {
			p[i] = 3.0 / float64(n) // heavy first quarter
		}
	}
	rem := 1.0 - 3.0/float64(n)*float64(n/4)
	for i := n / 4; i < n; i++ {
		p[i] = rem / float64(n-n/4)
	}
	d := dist.MustDense(p)
	s := oracle.NewSampler(d, r)
	g := intervals.NewDomain(n, []intervals.Interval{{Lo: n / 4, Hi: n}})
	params := PracticalParams()
	const trials = 40
	// D* agrees with D on g but is wrong on the sieved quarter.
	q := make([]float64, n)
	for i := 0; i < n/4; i++ {
		q[i] = p[n-1]
	}
	for i := n / 4; i < n; i++ {
		q[i] = p[i]
	}
	dstar := dist.MustDense(q)
	accepts := 0
	for i := 0; i < trials; i++ {
		if Test(s, r, dstar, g, 0.25, params).Accept {
			accepts++
		}
	}
	if accepts < trials*3/4 {
		t.Fatalf("restricted test accepted only %d/%d", accepts, trials)
	}
	// Sanity: the same pair over the full domain rejects.
	rejects := 0
	for i := 0; i < trials; i++ {
		if !Test(s, r, dstar, fullDomain(n), 0.25, params).Accept {
			rejects++
		}
	}
	if rejects < trials*3/4 {
		t.Fatalf("full-domain test should reject, rejected %d/%d", rejects, trials)
	}
}

func TestFixedSamplingAgreesWithPoissonized(t *testing.T) {
	// The fixed-m (multinomial) variant must reach the same verdicts as
	// the Poissonized tester on clearly-separated cases.
	r := rng.New(20)
	n := 256
	params := PracticalParams()
	d := dist.Uniform(n)
	s := oracle.NewSampler(d, r)
	accepts := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		res := TestFixed(s, r, d, fullDomain(n), 0.25, params)
		if res.Accept {
			accepts++
		}
		if res.Drawn != int(res.M+0.5) {
			t.Fatalf("fixed draw count %d != m %v", res.Drawn, res.M)
		}
	}
	if accepts < trials*3/4 {
		t.Fatalf("fixed-m null accepted %d/%d", accepts, trials)
	}
	// Far case rejects.
	p := make([]float64, n)
	for i := range p {
		if i < n/2 {
			p[i] = 2.0 / float64(n)
		}
	}
	far := dist.MustDense(p)
	sf := oracle.NewSampler(far, r)
	rejects := 0
	for i := 0; i < trials; i++ {
		if !TestFixed(sf, r, d, fullDomain(n), 0.25, params).Accept {
			rejects++
		}
	}
	if rejects < trials*3/4 {
		t.Fatalf("fixed-m far rejected %d/%d", rejects, trials)
	}
}

func TestTestAmplified(t *testing.T) {
	r := rng.New(9)
	n := 128
	d := dist.Uniform(n)
	s := oracle.NewSampler(d, r)
	wrong := 0
	for i := 0; i < 30; i++ {
		if !TestAmplified(s, r, d, fullDomain(n), 0.3, PracticalParams(), 9) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Fatalf("amplified tester failed %d/30 under the null", wrong)
	}
}

func TestSampleAccounting(t *testing.T) {
	r := rng.New(10)
	n := 64
	d := dist.Uniform(n)
	s := oracle.NewSampler(d, r)
	res := Test(s, r, d, fullDomain(n), 0.5, PracticalParams())
	if int64(res.Drawn) != s.Samples() {
		t.Fatalf("oracle counted %d, tester reports %d", s.Samples(), res.Drawn)
	}
}

func BenchmarkZDomainHistogramStar(b *testing.B) {
	r := rng.New(1)
	n := 1 << 18
	dstar := dist.Uniform(n)
	counts := drawCounts(r, dstar, 50000)
	g := fullDomain(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ZDomain(counts, dstar, g, 50000, 1e-9)
	}
}

func TestZPerIntervalIntoAppendSemantics(t *testing.T) {
	// ZPerIntervalInto is the destination-passing form: it must append
	// exactly ZPerInterval's values after any existing prefix, reuse the
	// destination's capacity, and leave the prefix untouched.
	r := rng.New(9)
	n := 60
	dstar := dist.Uniform(n)
	d := dist.MustDense(func() []float64 {
		p := make([]float64, n)
		for i := range p {
			p[i] = float64(i+1) * 2 / float64(n*(n+1))
		}
		return p
	}())
	part := intervals.FromBoundaries(n, []int{10, 25, 40})
	g := intervals.NewDomain(n, []intervals.Interval{{Lo: 0, Hi: 25}, {Lo: 40, Hi: 60}})
	const m = 500.0
	counts := drawCounts(r, d, m)
	tau := 0.5 / float64(n)
	want := ZPerInterval(counts, dstar, part, g, m, tau)

	// nil destination behaves like the plain call.
	got := ZPerIntervalInto(nil, counts, dstar, part, g, m, tau)
	if len(got) != len(want) {
		t.Fatalf("nil dst: %d values, want %d", len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("nil dst: zs[%d] = %v, want %v", j, got[j], want[j])
		}
	}

	// A non-empty prefix survives and the statistics land after it.
	dst := []float64{-1, -2}
	out := ZPerIntervalInto(dst, counts, dstar, part, g, m, tau)
	if len(out) != 2+len(want) {
		t.Fatalf("prefixed dst: len = %d, want %d", len(out), 2+len(want))
	}
	if out[0] != -1 || out[1] != -2 {
		t.Fatalf("prefix clobbered: %v", out[:2])
	}
	for j := range want {
		if out[2+j] != want[j] {
			t.Fatalf("prefixed dst: zs[%d] = %v, want %v", j, out[2+j], want[j])
		}
	}

	// A big-enough capacity is reused in place — the hot-path contract the
	// sieve relies on (med[t] = ZPerIntervalInto(med[t][:0], ...)).
	buf := make([]float64, 0, len(want)+8)
	out = ZPerIntervalInto(buf, counts, dstar, part, g, m, tau)
	if &out[0] != &buf[:1][0] {
		t.Fatal("destination with sufficient capacity was reallocated")
	}
	for j := range want {
		if out[j] != want[j] {
			t.Fatalf("reused dst: zs[%d] = %v, want %v", j, out[j], want[j])
		}
	}
}
