package chisq

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// zPerIntervalNaive is the pre-merge-walk reference implementation of
// ZPerInterval: O(K·|G|) nested intersection plus binary searches per
// sampled element. The optimized version must match it exactly.
func zPerIntervalNaive(counts *oracle.Counts, dstar dist.Distribution, p *intervals.Partition, g *intervals.Domain, m, tau float64) []float64 {
	zs := make([]float64, p.Count())
	for j := range zs {
		pIv := p.Interval(j)
		for _, gIv := range g.Intervals() {
			iv := pIv.Intersect(gIv)
			if !iv.Empty() {
				zs[j] += m * truncatedMass(dstar, iv.Lo, iv.Hi, tau)
			}
		}
	}
	counts.ForEach(func(i, ni int) {
		if !g.Contains(i) {
			return
		}
		pi := dstar.Prob(i)
		if pi < tau {
			return
		}
		zs[p.Find(i)] += sampledCorrection(ni, m*pi)
	})
	return zs
}

// randomSetup builds a random partition, sub-domain, hypothesis, and
// Poissonized counts over [0, n).
func randomSetup(r *rng.RNG, n int) (*intervals.Partition, *intervals.Domain, dist.Distribution, *oracle.Counts, float64, float64) {
	cuts := make([]int, r.Intn(12))
	for i := range cuts {
		cuts[i] = 1 + r.Intn(n-1)
	}
	p := intervals.FromBoundaries(n, cuts)
	keep := make([]bool, p.Count())
	any := false
	for j := range keep {
		keep[j] = r.Bernoulli(0.7)
		any = any || keep[j]
	}
	if !any {
		keep[0] = true
	}
	g := intervals.FromPartitionSubset(p, keep)
	masses := make([]float64, n)
	total := 0.0
	for i := range masses {
		masses[i] = r.Float64Open()
		total += masses[i]
	}
	for i := range masses {
		masses[i] /= total
	}
	dstar := dist.MustDense(masses)
	m := 200 + 2000*r.Float64()
	s := oracle.NewSampler(dstar, r.Split())
	counts := oracle.DrawCounts(s, r, m)
	tau := 0.3 / float64(n) * r.Float64()
	return p, g, dstar, counts, m, tau
}

func TestZPerIntervalMatchesNaiveReference(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 50; trial++ {
		n := 16 + r.Intn(200)
		p, g, dstar, counts, m, tau := randomSetup(r, n)
		got := ZPerInterval(counts, dstar, p, g, m, tau)
		want := zPerIntervalNaive(counts, dstar, p, g, m, tau)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
				t.Fatalf("trial %d (n=%d): Z[%d] = %v, reference %v", trial, n, j, got[j], want[j])
			}
		}
		// ZDomain's cursor walk must match the per-interval sum.
		zd := ZDomain(counts, dstar, g, m, tau)
		sum := 0.0
		for _, z := range got {
			sum += z
		}
		if math.Abs(zd-sum) > 1e-6*(1+math.Abs(sum)) {
			t.Fatalf("trial %d: ZDomain %v != ΣZPerInterval %v", trial, zd, sum)
		}
	}
}

func TestZPerIntervalDenseSparseIdentical(t *testing.T) {
	r := rng.New(102)
	for trial := 0; trial < 20; trial++ {
		n := 16 + r.Intn(200)
		p, g, dstar, counts, m, tau := randomSetup(r, n)
		samples := make([]int, 0, counts.Total())
		counts.ForEach(func(i, ni int) {
			for c := 0; c < ni; c++ {
				samples = append(samples, i)
			}
		})
		dense := oracle.NewDenseCounts(n, samples)
		sparse := oracle.NewSparseCounts(n, samples)
		zDense := ZPerInterval(dense, dstar, p, g, m, tau)
		zSparse := ZPerInterval(sparse, dstar, p, g, m, tau)
		for j := range zDense {
			if zDense[j] != zSparse[j] {
				t.Fatalf("trial %d: dense Z[%d] = %v, sparse %v", trial, j, zDense[j], zSparse[j])
			}
		}
		if a, b := ZDomain(dense, dstar, g, m, tau), ZDomain(sparse, dstar, g, m, tau); a != b {
			t.Fatalf("trial %d: ZDomain dense %v != sparse %v", trial, a, b)
		}
	}
}
