// Package chisq implements the χ²-vs-TV identity-testing machinery of
// Acharya, Daskalakis, and Kamath [ADK15] that the paper builds on
// (Theorem 3.2 and Proposition 3.3): the truncated, Poissonized χ²
// statistic
//
//	Z = Σ_{i ∈ A ∩ G} ((N_i − m·D*(i))² − N_i) / (m·D*(i)),
//
// where A = {i : D*(i) ≥ τ} is the truncation set (the paper's A_ε with
// τ = ε/(50n)), G is a sub-domain, and N_i ~ Poisson(m·D(i)) are the
// sample counts. Under Poissonization the Z_j computed on disjoint
// intervals are independent — exactly what the sieve of Section 3.2.1
// exploits.
//
// The computation runs in O(#samples + #pieces of D*) time: unsampled
// elements of A contribute (m·D*(i))²/(m·D*(i)) = m·D*(i) each, so their
// total contribution is m times the unsampled truncated mass, which is
// available in closed form from the piece structure.
package chisq

import (
	"math"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Params are the tunable constants of the ADK tester. The paper's values
// are astronomically conservative; see core.Config for the calibrated
// preset used by the experiments.
type Params struct {
	// MFactor sets the Poisson sample mean m = MFactor·√n/ε².
	// Proposition 3.3 requires MFactor >= 20000 for its stated constants.
	MFactor float64
	// TruncFactor sets the truncation threshold τ = TruncFactor·ε/n.
	// The paper uses 1/50.
	TruncFactor float64
	// AcceptFactor sets the accept threshold Z <= AcceptFactor·m·ε².
	// The analysis places completeness at EZ <= m·ε²/500 and soundness at
	// EZ >= m·ε²/5; 1/10 sits between them with slack on both sides.
	AcceptFactor float64
}

// PaperParams returns the literal constants from [ADK15] / the paper.
func PaperParams() Params {
	return Params{MFactor: 20000, TruncFactor: 1.0 / 50, AcceptFactor: 1.0 / 10}
}

// PracticalParams returns constants calibrated for laptop-scale
// experiments (see EXPERIMENTS.md): the same statistic and threshold
// structure, with the sample-mean constant reduced from 20000 to the
// smallest value that still separates the null from the alternative.
// Under the null Z has mean 0 and standard deviation ≈ √(2n), so the
// accept cutoff AcceptFactor·m·ε² = (MFactor/10)·√n must exceed a few
// √(2n): MFactor = 40 puts the cutoff at ~2.8 standard deviations.
func PracticalParams() Params {
	return Params{MFactor: 40, TruncFactor: 1.0 / 50, AcceptFactor: 1.0 / 10}
}

// SampleMean returns the Poisson mean m = MFactor·√n/ε² the tester uses.
func (p Params) SampleMean(n int, eps float64) float64 {
	return p.MFactor * math.Sqrt(float64(n)) / (eps * eps)
}

// Threshold returns the truncation threshold τ = TruncFactor·ε/n.
func (p Params) Threshold(n int, eps float64) float64 {
	return p.TruncFactor * eps / float64(n)
}

// truncatedMass returns Σ_{i ∈ [lo,hi) : dstar(i) >= tau} dstar(i),
// walking dstar's constant runs.
func truncatedMass(dstar dist.Distribution, lo, hi int, tau float64) float64 {
	total := 0.0
	for i := lo; i < hi; {
		end := dstar.RunEnd(i)
		if end > hi {
			end = hi
		}
		if p := dstar.Prob(i); p >= tau {
			total += p * float64(end-i)
		}
		i = end
	}
	return total
}

// Z computes the truncated χ² statistic over the single interval
// [iv.Lo, iv.Hi) from Poissonized counts. m is the nominal Poisson mean
// of the total sample size.
func Z(counts *oracle.Counts, dstar dist.Distribution, iv intervals.Interval, m, tau float64) float64 {
	iv = iv.Intersect(intervals.Interval{Lo: 0, Hi: dstar.N()})
	if iv.Empty() {
		return 0
	}
	// Credit every truncated element with its unsampled closed form, then
	// correct the sampled ones.
	z := m * truncatedMass(dstar, iv.Lo, iv.Hi, tau)
	counts.ForEach(func(i, ni int) {
		if i < iv.Lo || i >= iv.Hi {
			return
		}
		pi := dstar.Prob(i)
		if pi < tau {
			return
		}
		z += sampledCorrection(ni, m*pi)
	})
	return z
}

// sampledCorrection returns the adjustment a sampled element contributes
// relative to the unsampled closed form: the element was pre-credited with
// m·D*(i), its true term is ((N_i−m·D*(i))²−N_i)/(m·D*(i)).
func sampledCorrection(ni int, mpi float64) float64 {
	d := float64(ni) - mpi
	return (d*d-float64(ni))/mpi - mpi
}

// ZDomain computes the statistic over a sub-domain G in a single pass over
// the samples: O(#samples + #pieces of D* + #pieces of G). Domain
// membership is resolved by a rolling cursor, since ForEach ascends.
func ZDomain(counts *oracle.Counts, dstar dist.Distribution, g *intervals.Domain, m, tau float64) float64 {
	gIvs := g.Intervals()
	z := 0.0
	for _, iv := range gIvs {
		z += m * truncatedMass(dstar, iv.Lo, iv.Hi, tau)
	}
	gi := 0
	counts.ForEach(func(i, ni int) {
		for gi < len(gIvs) && gIvs[gi].Hi <= i {
			gi++
		}
		if gi >= len(gIvs) || i < gIvs[gi].Lo {
			return
		}
		pi := dstar.Prob(i)
		if pi < tau {
			return
		}
		z += sampledCorrection(ni, m*pi)
	})
	return z
}

// ZPerInterval computes the per-interval statistics Z_j for every interval
// of the partition p, each restricted to the sub-domain g. Intervals
// disjoint from g get Z_j = 0. This is the refinement of [ADK15] that
// the sieve consumes (independent Z_j under Poissonization). The cost is a
// single pass over the samples plus an O(K + #pieces of G) merge walk:
// both the partition intervals and the domain pieces are sorted, so their
// intersections — and, since ForEach ascends, the per-sample domain and
// partition lookups — come from linear cursors rather than nested loops or
// binary searches.
func ZPerInterval(counts *oracle.Counts, dstar dist.Distribution, p *intervals.Partition, g *intervals.Domain, m, tau float64) []float64 {
	return ZPerIntervalInto(nil, counts, dstar, p, g, m, tau)
}

// ZPerIntervalInto is ZPerInterval with an append-style destination: the
// K = p.Count() statistics are appended to dst (which may be nil) and the
// extended slice is returned. Callers on the sieve hot path pass a
// recycled dst[:0] so the per-round result slice is allocation-free in
// steady state.
func ZPerIntervalInto(dst []float64, counts *oracle.Counts, dstar dist.Distribution, p *intervals.Partition, g *intervals.Domain, m, tau float64) []float64 {
	base := len(dst)
	for i, K := 0, p.Count(); i < K; i++ {
		dst = append(dst, 0)
	}
	zs := dst[base:]
	gIvs := g.Intervals()
	for j, gi := 0, 0; j < len(zs) && gi < len(gIvs); {
		pIv := p.Interval(j)
		iv := pIv.Intersect(gIvs[gi])
		if !iv.Empty() {
			zs[j] += m * truncatedMass(dstar, iv.Lo, iv.Hi, tau)
		}
		if pIv.Hi <= gIvs[gi].Hi {
			j++
		} else {
			gi++
		}
	}
	gi, pj := 0, 0
	counts.ForEach(func(i, ni int) {
		for gi < len(gIvs) && gIvs[gi].Hi <= i {
			gi++
		}
		if gi >= len(gIvs) || i < gIvs[gi].Lo {
			return
		}
		pi := dstar.Prob(i)
		if pi < tau {
			return
		}
		for p.Interval(pj).Hi <= i {
			pj++
		}
		zs[pj] += sampledCorrection(ni, m*pi)
	})
	return dst
}

// ExpectedZ returns E[Z] = m·Σ_{i ∈ A ∩ G} (D(i)−D*(i))²/D*(i) for known
// D — the quantity Proposition 3.3 reasons about. Used by tests and the
// experiment harness to verify the statistic's calibration.
func ExpectedZ(d, dstar dist.Distribution, g *intervals.Domain, m, tau float64) float64 {
	total := 0.0
	for _, iv := range g.Intervals() {
		for i := iv.Lo; i < iv.Hi; {
			endA := d.RunEnd(i)
			endB := dstar.RunEnd(i)
			end := endA
			if endB < end {
				end = endB
			}
			if end > iv.Hi {
				end = iv.Hi
			}
			ps := dstar.Prob(i)
			if ps >= tau {
				delta := d.Prob(i) - ps
				total += float64(end-i) * delta * delta / ps
			}
			i = end
		}
	}
	return m * total
}

// Result reports one identity-test invocation.
type Result struct {
	Accept bool
	// Z is the observed statistic; Threshold the accept cutoff.
	Z, Threshold float64
	// M is the nominal Poisson mean, Drawn the realized sample count.
	M     float64
	Drawn int
}

// Test runs the [ADK15] identity tester restricted to the sub-domain g:
// draw Poisson(m) samples from o, accept iff Z <= AcceptFactor·m·ε².
//
// Guarantees (Theorem 3.2, for the paper's constants): if
// dχ²(D‖D*) <= ε²/500 restricted to g it accepts w.p. >= 2/3; if
// dTV(D,D*) >= ε restricted to g it rejects w.p. >= 2/3.
func Test(o oracle.Oracle, r *rng.RNG, dstar dist.Distribution, g *intervals.Domain, eps float64, params Params) Result {
	return TestWith(o, r, dstar, g, eps, params, oracle.CountExact)
}

// TestWith is Test with an explicit count-synthesis strategy for the
// Poissonized batch: oracle.CountExact draws per sample (Test verbatim);
// oracle.CountClosedForm synthesizes the count vector from a known
// sampler's run structure (falling back to exact for oracles without the
// capability). The statistic, threshold, and guarantees are unchanged —
// only how the counts are materialized.
func TestWith(o oracle.Oracle, r *rng.RNG, dstar dist.Distribution, g *intervals.Domain, eps float64, params Params, cs oracle.CountStrategy) Result {
	n := dstar.N()
	m := params.SampleMean(n, eps)
	tau := params.Threshold(n, eps)
	counts := oracle.DrawCountsWith(o, r, m, cs)
	defer counts.Release()
	z := ZDomain(counts, dstar, g, m, tau)
	drawn := counts.Total()
	thr := params.AcceptFactor * m * eps * eps
	return Result{Accept: z <= thr, Z: z, Threshold: thr, M: m, Drawn: drawn}
}

// TestFixed is Test without the Poissonization trick: it draws exactly m
// samples instead of Poisson(m). The per-element counts are then
// multinomial — negatively correlated rather than independent — which the
// paper's analysis avoids by Poissonizing (Section 2). Provided for the
// ablation experiment E11; the statistic and threshold are identical.
func TestFixed(o oracle.Oracle, r *rng.RNG, dstar dist.Distribution, g *intervals.Domain, eps float64, params Params) Result {
	n := dstar.N()
	m := params.SampleMean(n, eps)
	tau := params.Threshold(n, eps)
	drawn := int(math.Round(m))
	counts := oracle.DrawNCounts(o, drawn)
	defer counts.Release()
	z := ZDomain(counts, dstar, g, m, tau)
	thr := params.AcceptFactor * m * eps * eps
	return Result{Accept: z <= thr, Z: z, Threshold: thr, M: m, Drawn: drawn}
}

// TestAmplified repeats Test reps times and accepts on the majority vote,
// boosting the 2/3 success probability to 1-δ with Θ(log 1/δ) reps
// (the standard amplification invoked in Section 3.2.1).
func TestAmplified(o oracle.Oracle, r *rng.RNG, dstar dist.Distribution, g *intervals.Domain, eps float64, params Params, reps int) bool {
	if reps < 1 {
		reps = 1
	}
	accepts := 0
	for i := 0; i < reps; i++ {
		if Test(o, r, dstar, g, eps, params).Accept {
			accepts++
		}
	}
	return 2*accepts > reps
}
