package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-5, 10}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Fatalf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMedianPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Median(nil)
}

func TestMedianBoundsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 1+r.Intn(20))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = r.Float64()*10 - 5
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := Median(xs)
		return m >= lo && m <= hi
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedianOfAmplifies(t *testing.T) {
	// A trial that is right (returns 1) with prob 0.7 and wrong (returns
	// 100) otherwise: the median of 25 reps should essentially always be 1.
	r := rng.New(1)
	wrong := 0
	for round := 0; round < 200; round++ {
		m := MedianOf(25, func() float64 {
			if r.Bernoulli(0.7) {
				return 1
			}
			return 100
		})
		if m != 1 {
			wrong++
		}
	}
	if wrong > 6 {
		t.Fatalf("median amplification failed %d/200 rounds", wrong)
	}
}

func TestMajorityOfAmplifies(t *testing.T) {
	r := rng.New(2)
	wrong := 0
	for round := 0; round < 200; round++ {
		if !MajorityOf(25, func() bool { return r.Bernoulli(0.7) }) {
			wrong++
		}
	}
	if wrong > 6 {
		t.Fatalf("majority amplification failed %d/200 rounds", wrong)
	}
}

func TestRepsForConfidence(t *testing.T) {
	if RepsForConfidence(0.4) != 1 {
		t.Fatal("weak delta should need one rep")
	}
	r := RepsForConfidence(0.01)
	if r%2 == 0 {
		t.Fatal("reps should be odd")
	}
	if r < 18*4 || r > 18*5+2 {
		t.Fatalf("RepsForConfidence(0.01) = %d, expected ~83", r)
	}
	// Monotone: smaller delta needs more reps.
	if RepsForConfidence(0.001) <= r {
		t.Fatal("reps not monotone in confidence")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", got)
	}
	if Variance([]float64{42}) != 0 {
		t.Fatal("single-point variance should be 0")
	}
}

func TestHoeffdingSamples(t *testing.T) {
	m := HoeffdingSamples(0.1, 0.05)
	// ln(40)/(2*0.01) ≈ 184.4 → 185.
	if m != 185 {
		t.Fatalf("HoeffdingSamples = %d, want 185", m)
	}
	if HoeffdingSamples(0.01, 0.05) <= m {
		t.Fatal("not monotone in eps")
	}
}

func TestChernoffTails(t *testing.T) {
	// Bounds must be valid probabilities and decrease in mu and t.
	if p := ChernoffUpperTail(100, 0.5); p <= 0 || p >= 1 {
		t.Fatalf("upper tail = %v", p)
	}
	if ChernoffUpperTail(100, 0.5) <= ChernoffUpperTail(200, 0.5) {
		t.Fatal("upper tail not decreasing in mu")
	}
	if ChernoffLowerTail(100, 0.5) <= ChernoffLowerTail(100, 0.9) {
		t.Fatal("lower tail not decreasing in t")
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatal("zero trials should give [0,1]")
	}
	lo, hi = Wilson(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson(50/100) = [%v,%v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("Wilson interval too wide: %v", hi-lo)
	}
	// Extreme proportions stay in [0,1].
	lo, hi = Wilson(100, 100, 1.96)
	if lo < 0.9 || hi < 1-1e-9 {
		t.Fatalf("Wilson(100/100) = [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(0, 100, 1.96)
	if lo != 0 || hi > 0.1 {
		t.Fatalf("Wilson(0/100) = [%v,%v]", lo, hi)
	}
}

func TestWilsonCoverage(t *testing.T) {
	// Monte-Carlo: the 95% interval should cover the true p most of the time.
	r := rng.New(3)
	const p, trials, rounds = 0.3, 200, 300
	miss := 0
	for round := 0; round < rounds; round++ {
		succ := r.Binomial(trials, p)
		lo, hi := Wilson(succ, trials, 1.96)
		if p < lo || p > hi {
			miss++
		}
	}
	if miss > rounds/10 {
		t.Fatalf("Wilson interval missed %d/%d", miss, rounds)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median quantile = %v", Quantile(xs, 0.5))
	}
}
