// Package stats provides the small statistical toolkit shared by the
// testers and the experiment harness: success-probability amplification by
// median/majority of repetitions (the standard trick invoked in §3.2.1 of
// the paper), concentration-bound helpers, and binomial confidence
// intervals for the Monte-Carlo experiments.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs (the mean of the two central elements
// for even lengths). It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	return MedianInPlace(sorted)
}

// MedianInPlace returns the median of xs, sorting xs as a side effect. It
// is the allocation-free variant of Median for callers whose input is a
// scratch buffer (the sieve computes K medians per round — copying each
// replicate column was the single largest allocation site of core.Test).
func MedianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// MedianOf runs trial() reps times and returns the median result.
// If a subroutine is correct with probability >= 2/3, the median of
// Θ(log(1/δ)) repetitions is correct with probability >= 1-δ (Chernoff).
func MedianOf(reps int, trial func() float64) float64 {
	if reps < 1 {
		panic("stats: MedianOf needs at least one repetition")
	}
	vals := make([]float64, reps)
	for i := range vals {
		vals[i] = trial()
	}
	return Median(vals)
}

// MajorityOf runs trial() reps times and returns the majority boolean
// (ties resolve to false).
func MajorityOf(reps int, trial func() bool) bool {
	if reps < 1 {
		panic("stats: MajorityOf needs at least one repetition")
	}
	yes := 0
	for i := 0; i < reps; i++ {
		if trial() {
			yes++
		}
	}
	return 2*yes > reps
}

// RepsForConfidence returns the (odd) number of independent repetitions of
// a 2/3-correct subroutine whose majority vote errs with probability at
// most delta. Derived from the Chernoff bound
// Pr[majority wrong] <= exp(-reps/18) for p = 2/3.
func RepsForConfidence(delta float64) int {
	if delta >= 1.0/3.0 {
		return 1
	}
	reps := int(math.Ceil(18 * math.Log(1/delta)))
	if reps%2 == 0 {
		reps++
	}
	return reps
}

// Mean returns the arithmetic mean of xs. It panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (zero for a single
// observation).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: variance of empty slice")
	}
	if len(xs) == 1 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// HoeffdingSamples returns the number of i.i.d. [0,1]-bounded observations
// needed so that the empirical mean deviates from the truth by more than
// eps with probability at most delta: m >= ln(2/delta) / (2 eps²).
func HoeffdingSamples(eps, delta float64) int {
	if eps <= 0 || delta <= 0 {
		panic("stats: Hoeffding needs positive eps and delta")
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// ChernoffUpperTail bounds Pr[X >= (1+t)·mu] for a sum X of independent
// [0,1] variables with mean mu, t >= 0: exp(-t²·mu / (2+t)).
func ChernoffUpperTail(mu, t float64) float64 {
	if t < 0 {
		panic("stats: ChernoffUpperTail needs t >= 0")
	}
	return math.Exp(-t * t * mu / (2 + t))
}

// ChernoffLowerTail bounds Pr[X <= (1-t)·mu], 0 <= t <= 1: exp(-t²·mu/2).
func ChernoffLowerTail(mu, t float64) float64 {
	if t < 0 || t > 1 {
		panic("stats: ChernoffLowerTail needs t in [0,1]")
	}
	return math.Exp(-t * t * mu / 2)
}

// Wilson returns the Wilson score interval [lo, hi] for a binomial
// proportion with successes out of trials at confidence z (z = 1.96 for
// 95%). It is well-behaved at proportions near 0 and 1, which is where
// tester accept-rates live.
func Wilson(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Quantile returns the q-th empirical quantile of xs (nearest-rank,
// q in [0, 1]). It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile fraction outside [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}
