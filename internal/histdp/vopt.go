package histdp

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/intervals"
)

// ProjectL2 computes the V-optimal k-histogram of d: the k-piecewise-
// constant function minimizing the squared ℓ2 error Σ_i (d(i) − h(i))²,
// with each segment taking the mean of d's values on it (the classic
// [JKM+98] dynamic program, O(k·B²) over d's B pieces with O(1) segment
// costs from prefix sums). The result is normalized to a distribution;
// sse is the squared error of the unnormalized optimum.
func ProjectL2(d *dist.PiecewiseConstant, k int) (proj *dist.PiecewiseConstant, sse float64, err error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("histdp: k = %d must be positive", k)
	}
	pieces := d.Pieces()
	B := len(pieces)
	if B > MaxPieces {
		return nil, 0, fmt.Errorf("histdp: %d pieces exceeds limit %d; coarsen the input", B, MaxPieces)
	}
	if k >= B {
		return d, 0, nil
	}

	// Prefix sums over elements: w (count), wv (Σ value), wv2 (Σ value²),
	// aggregated piece by piece.
	w := make([]float64, B+1)
	wv := make([]float64, B+1)
	wv2 := make([]float64, B+1)
	vals := make([]float64, B)
	for j, pc := range pieces {
		ln := float64(pc.Iv.Len())
		v := pc.Mass / ln
		vals[j] = v
		w[j+1] = w[j] + ln
		wv[j+1] = wv[j] + ln*v
		wv2[j+1] = wv2[j] + ln*v*v
	}
	// cost(a,b) over pieces a..b inclusive.
	cost := func(a, b int) float64 {
		cw := w[b+1] - w[a]
		cv := wv[b+1] - wv[a]
		cv2 := wv2[b+1] - wv2[a]
		c := cv2 - cv*cv/cw
		if c < 0 {
			return 0 // numeric guard
		}
		return c
	}

	prev := make([]float64, B)
	cur := make([]float64, B)
	choice := make([][]int32, k)
	for j := range choice {
		choice[j] = make([]int32, B)
	}
	for b := 0; b < B; b++ {
		prev[b] = cost(0, b)
	}
	segs := 1
	for j := 1; j < k; j++ {
		for b := 0; b < B; b++ {
			best, bestA := prev[b], choice[j-1][b]
			for a := j; a <= b; a++ {
				if c := prev[a-1] + cost(a, b); c < best {
					best, bestA = c, int32(a)
				}
			}
			cur[b] = best
			choice[j][b] = bestA
		}
		prev, cur = cur, prev
		segs = j + 1
		if prev[B-1] <= 0 {
			break
		}
	}
	sse = prev[B-1]

	starts := reconstruct(choice, segs, B)
	out := make([]dist.Piece, 0, len(starts))
	mass := 0.0
	for si, a := range starts {
		end := B
		if si+1 < len(starts) {
			end = starts[si+1]
		}
		iv := intervals.Interval{Lo: pieces[a].Iv.Lo, Hi: pieces[end-1].Iv.Hi}
		segMass := d.IntervalMass(iv) // mean value × length == interval mass
		out = append(out, dist.Piece{Iv: iv, Mass: segMass})
		mass += segMass
	}
	if mass <= 0 {
		return dist.Uniform(d.N()), sse, nil
	}
	for j := range out {
		out[j].Mass /= mass
	}
	return dist.MustPiecewiseConstant(d.N(), out), sse, nil
}

// reconstruct walks the choice table back to the list of segment start
// piece indices (ascending, first element 0).
func reconstruct(choice [][]int32, segs, B int) []int {
	starts := make([]int, 0, segs)
	b := B - 1
	for j := segs - 1; j >= 0; j-- {
		a := int(choice[j][b])
		starts = append(starts, a)
		b = a - 1
		if b < 0 {
			break
		}
	}
	// starts were appended back to front.
	for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
		starts[i], starts[j] = starts[j], starts[i]
	}
	if starts[0] != 0 {
		starts = append([]int{0}, starts...)
	}
	return starts
}

// HistogramComplexity returns the number of pieces of the canonical
// (compacted) representation of d — the smallest k for which d ∈ H_k.
func HistogramComplexity(d *dist.PiecewiseConstant) int {
	return d.Compact().PieceCount()
}

// IsKHistogram reports whether d is a k-histogram (within the compaction
// tolerance).
func IsKHistogram(d *dist.PiecewiseConstant, k int) bool {
	return HistogramComplexity(d) <= k
}

// TrueDistanceDense computes, exactly, the relaxed distance from an
// arbitrary Dense distribution to non-negative k-piecewise-constant
// functions. The dense vector is first compacted to its minimal
// piecewise-constant representation; the DP requires that representation
// to have at most MaxPieces pieces (always true for n <= MaxPieces, and
// true for much larger n when the vector is blocky or sparse). Used as a
// ground-truth oracle in tests and experiments.
func TrueDistanceDense(d *dist.Dense, k int, g *intervals.Domain) (lower, upper float64, err error) {
	pc := d.ToPiecewiseConstant()
	if pc.PieceCount() > MaxPieces {
		return 0, 0, fmt.Errorf("histdp: dense input compacts to %d pieces, limit %d", pc.PieceCount(), MaxPieces)
	}
	return DistanceToHk(pc, k, g)
}
