// Package histdp implements the dynamic programs over histogram structure
// that the tester and the evaluation harness rely on:
//
//   - ProjectTV: given a piecewise-constant distribution D̂ and a sub-domain
//     G, find the k-histogram minimizing the restricted total-variation
//     distance to D̂ on G. This is the "checking" step of Algorithm 1
//     (Step 10), which the paper discharges to a poly(k, 1/ε) dynamic
//     program (citing [CDGR16, Lemma 4.11]).
//   - ProjectL2: the classic V-optimal histogram DP [JKM+98], minimizing the
//     squared ℓ2 error; used by the histogram-construction substrate.
//
// For the TV program, breakpoints of the optimum may be assumed to lie on
// the piece boundaries of D̂: within a stretch where D̂ is constant,
// moving a candidate breakpoint to the boundary of the stretch (keeping the
// closer of the two values) never increases the restricted ℓ1 distance
// when the mass constraint is relaxed. The DP therefore optimizes over
// segmentations of D̂'s pieces into at most k runs, scoring each run by the
// weighted-median absolute deviation of D̂'s values inside G. The relaxed
// optimum (over non-negative piecewise-constant functions) lower-bounds the
// true distance to the class of k-histogram distributions; normalizing the
// relaxed optimizer gives a feasible k-histogram whose distance
// upper-bounds it. Both values are reported.
package histdp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/intervals"
)

// MaxPieces bounds the DP size: the segment-cost table is quadratic in the
// number of pieces (4096² float64 ≈ 134 MB).
const MaxPieces = 4096

// Projection is the result of projecting a distribution onto H_k.
type Projection struct {
	// Relaxed is the DP optimum: the minimal restricted TV distance to a
	// non-negative k-piecewise-constant function. It lower-bounds Distance.
	Relaxed float64
	// Projected is the normalized optimizer — a genuine k-histogram
	// distribution.
	Projected *dist.PiecewiseConstant
	// Distance is the restricted TV distance between the input and
	// Projected; an upper bound on the true distance to H_k.
	Distance float64
	// Cuts are the chosen segment boundaries (interior, ascending).
	Cuts []int
}

// ProjectTV projects d onto the class of k-histograms, measuring distance
// by total variation restricted to g. See the package comment for the
// relaxation semantics.
func ProjectTV(d *dist.PiecewiseConstant, k int, g *intervals.Domain) (*Projection, error) {
	if k < 1 {
		return nil, fmt.Errorf("histdp: k = %d must be positive", k)
	}
	if d.N() != g.N() {
		return nil, fmt.Errorf("histdp: domain mismatch %d vs %d", d.N(), g.N())
	}
	pieces := d.Pieces()
	B := len(pieces)
	if B > MaxPieces {
		return nil, fmt.Errorf("histdp: %d pieces exceeds limit %d; coarsen the input", B, MaxPieces)
	}
	vals := make([]float64, B)    // per-element probability of each piece
	weights := make([]float64, B) // number of piece elements inside g
	gIvs := g.Intervals()         // hoisted: Intervals() copies per call
	for j, pc := range pieces {
		vals[j] = pc.Mass / float64(pc.Iv.Len())
		w := 0
		for _, giv := range gIvs {
			w += pc.Iv.Intersect(giv).Len()
		}
		weights[j] = float64(w)
	}

	if k >= B {
		// d itself is feasible (it is a distribution with <= k pieces).
		return &Projection{Relaxed: 0, Projected: d, Distance: 0, Cuts: d.Partition().Boundaries()}, nil
	}

	cost := segmentCosts(vals, weights)

	// dp[j][b]: minimal ℓ1 cost splitting pieces 0..b into j segments.
	const inf = math.MaxFloat64
	prev := make([]float64, B)
	cur := make([]float64, B)
	// choice[j][b]: start piece of the last segment in the optimum. Rows
	// share one flat k·B backing (same rationale as segmentCosts).
	choice := make([][]int32, k)
	choiceFlat := make([]int32, k*B)
	for j := range choice {
		choice[j] = choiceFlat[j*B : (j+1)*B : (j+1)*B]
	}
	for b := 0; b < B; b++ {
		prev[b] = cost[0][b]
		choice[0][b] = 0
	}
	segs := 1
	for j := 1; j < k; j++ {
		for b := 0; b < B; b++ {
			best, bestA := prev[b], int32(choice[j-1][b])
			if j <= b { // need at least j+1 pieces for j+1 segments? segments may cover >=1 piece each
				for a := j; a <= b; a++ {
					if prev[a-1] == inf {
						continue
					}
					if c := prev[a-1] + cost[a][b]; c < best {
						best, bestA = c, int32(a)
					}
				}
			}
			cur[b] = best
			choice[j][b] = bestA
		}
		prev, cur = cur, prev
		segs = j + 1
		if prev[B-1] == 0 {
			break // exact fit found early
		}
	}
	l1 := prev[B-1]

	starts := reconstruct(choice, segs, B)

	// Build the relaxed optimizer: per segment, value = weighted median of
	// vals over in-g weight; zero-weight segments take d's average value so
	// the projection stays faithful off g.
	segIvs := make([]intervals.Interval, 0, len(starts))
	segVals := make([]float64, 0, len(starts))
	cuts := make([]int, 0, len(starts)-1)
	for si, a := range starts {
		end := B
		if si+1 < len(starts) {
			end = starts[si+1]
		}
		iv := intervals.Interval{Lo: pieces[a].Iv.Lo, Hi: pieces[end-1].Iv.Hi}
		v, ok := weightedMedian(vals[a:end], weights[a:end])
		if !ok {
			v = d.IntervalMass(iv) / float64(iv.Len())
		}
		segIvs = append(segIvs, iv)
		segVals = append(segVals, v)
		if si > 0 {
			cuts = append(cuts, iv.Lo)
		}
	}
	relaxedPieces := make([]dist.Piece, len(segIvs))
	mass := 0.0
	for j := range segIvs {
		relaxedPieces[j] = dist.Piece{Iv: segIvs[j], Mass: segVals[j] * float64(segIvs[j].Len())}
		mass += relaxedPieces[j].Mass
	}
	var projected *dist.PiecewiseConstant
	if mass <= 0 {
		projected = dist.Uniform(d.N())
	} else {
		for j := range relaxedPieces {
			relaxedPieces[j].Mass /= mass
		}
		projected = dist.MustPiecewiseConstant(d.N(), relaxedPieces)
	}
	return &Projection{
		Relaxed:   l1 / 2,
		Projected: projected,
		Distance:  dist.TVDomain(d, projected, g),
		Cuts:      cuts,
	}, nil
}

// DistanceToHk returns lower and upper bounds on the true restricted TV
// distance from d to the class of k-histogram distributions (see the
// package comment: the DP relaxation brackets the constrained optimum).
func DistanceToHk(d *dist.PiecewiseConstant, k int, g *intervals.Domain) (lower, upper float64, err error) {
	proj, err := ProjectTV(d, k, g)
	if err != nil {
		return 0, 0, err
	}
	return proj.Relaxed, proj.Distance, nil
}

// DistanceCurve returns the relaxed distance of d to H_k for every
// k = 1..kMax in a single DP pass (curve[k-1] is the distance at k) —
// the scree curve driving "how many bins does this column need" analyses.
// It shares the O(B²·log B) segment-cost table across all k, so the whole
// curve costs barely more than one projection.
func DistanceCurve(d *dist.PiecewiseConstant, kMax int, g *intervals.Domain) ([]float64, error) {
	if kMax < 1 {
		return nil, fmt.Errorf("histdp: kMax = %d must be positive", kMax)
	}
	if d.N() != g.N() {
		return nil, fmt.Errorf("histdp: domain mismatch %d vs %d", d.N(), g.N())
	}
	pieces := d.Pieces()
	B := len(pieces)
	if B > MaxPieces {
		return nil, fmt.Errorf("histdp: %d pieces exceeds limit %d; coarsen the input", B, MaxPieces)
	}
	vals := make([]float64, B)
	weights := make([]float64, B)
	gIvs := g.Intervals() // hoisted: Intervals() copies per call
	for j, pc := range pieces {
		vals[j] = pc.Mass / float64(pc.Iv.Len())
		w := 0
		for _, giv := range gIvs {
			w += pc.Iv.Intersect(giv).Len()
		}
		weights[j] = float64(w)
	}
	curve := make([]float64, kMax)
	if B == 0 {
		return curve, nil
	}
	cost := segmentCosts(vals, weights)
	prev := make([]float64, B)
	cur := make([]float64, B)
	for b := 0; b < B; b++ {
		prev[b] = cost[0][b]
	}
	curve[0] = prev[B-1] / 2
	for k := 2; k <= kMax; k++ {
		if k > B {
			curve[k-1] = 0
			continue
		}
		j := k - 1
		for b := 0; b < B; b++ {
			best := prev[b]
			for a := j; a <= b; a++ {
				if c := prev[a-1] + cost[a][b]; c < best {
					best = c
				}
			}
			cur[b] = best
		}
		prev, cur = cur, prev
		curve[k-1] = prev[B-1] / 2
	}
	return curve, nil
}

// segmentCosts returns cost[a][b] = min over v of Σ_{j=a..b} w_j·|vals_j−v|
// for all 0 <= a <= b < B, in O(B² log B) time via Fenwick trees over the
// global value ranks. The rows share one flat B² backing array: the table
// is rebuilt from scratch on every call, and a single allocation keeps the
// DP off the tester's per-invocation allocation budget (B is a few hundred
// on the hot path, so row-wise allocation used to dominate ProjectTV).
func segmentCosts(vals, weights []float64) [][]float64 {
	B := len(vals)
	ranks := rankOf(vals)
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)

	cost := make([][]float64, B)
	flat := make([]float64, B*B)
	fw := newFenwick(B)  // total weight per rank
	fwv := newFenwick(B) // weight·value per rank
	for a := 0; a < B; a++ {
		fw.reset()
		fwv.reset()
		cost[a] = flat[a*B : (a+1)*B : (a+1)*B]
		totalW, totalWV := 0.0, 0.0
		for b := a; b < B; b++ {
			if weights[b] > 0 {
				fw.add(ranks[b], weights[b])
				fwv.add(ranks[b], weights[b]*vals[b])
				totalW += weights[b]
				totalWV += weights[b] * vals[b]
			}
			if totalW == 0 {
				cost[a][b] = 0
				continue
			}
			// Smallest rank with cumulative weight >= totalW/2.
			r := fw.findPrefix(totalW / 2)
			med := sorted[r]
			wLo := fw.prefix(r)
			wvLo := fwv.prefix(r)
			// Σ w|v − med| = med·wLo − wvLo + (totalWV − wvLo) − med·(totalW − wLo)
			c := med*wLo - wvLo + (totalWV - wvLo) - med*(totalW-wLo)
			if c < 0 {
				c = 0 // float cancellation guard
			}
			cost[a][b] = c
		}
	}
	return cost
}

// weightedMedian returns the weighted median of vals (ok=false when all
// weights are zero).
func weightedMedian(vals, weights []float64) (float64, bool) {
	type vw struct{ v, w float64 }
	items := make([]vw, 0, len(vals))
	total := 0.0
	for i := range vals {
		if weights[i] > 0 {
			items = append(items, vw{vals[i], weights[i]})
			total += weights[i]
		}
	}
	if total == 0 {
		return 0, false
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	cum := 0.0
	for _, it := range items {
		cum += it.w
		if cum >= total/2 {
			return it.v, true
		}
	}
	return items[len(items)-1].v, true
}

// rankOf maps each value to its rank in the sorted order (ties broken by
// index so that ranks are unique).
func rankOf(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	ranks := make([]int, len(vals))
	for r, i := range idx {
		ranks[i] = r
	}
	return ranks
}

// fenwick is a Fenwick (binary indexed) tree over float64 sums, with a
// findPrefix operation by binary lifting.
type fenwick struct {
	tree []float64
	size int
	logn int
}

func newFenwick(n int) *fenwick {
	logn := 0
	for 1<<(logn+1) <= n {
		logn++
	}
	return &fenwick{tree: make([]float64, n+1), size: n, logn: logn}
}

func (f *fenwick) reset() {
	for i := range f.tree {
		f.tree[i] = 0
	}
}

// add adds w at 0-based position i.
func (f *fenwick) add(i int, w float64) {
	for j := i + 1; j <= f.size; j += j & (-j) {
		f.tree[j] += w
	}
}

// prefix returns the sum over 0-based positions [0, i].
func (f *fenwick) prefix(i int) float64 {
	s := 0.0
	for j := i + 1; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// findPrefix returns the smallest 0-based position r such that
// prefix(r) >= target. If the total is below target it returns size-1.
func (f *fenwick) findPrefix(target float64) int {
	pos := 0
	rem := target
	for step := 1 << f.logn; step > 0; step >>= 1 {
		if pos+step <= f.size && f.tree[pos+step] < rem {
			pos += step
			rem -= f.tree[pos]
		}
	}
	if pos >= f.size {
		pos = f.size - 1
	}
	return pos // pos is the count of positions strictly before the answer
}
