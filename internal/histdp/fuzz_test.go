package histdp

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
)

// FuzzProjectTV checks the projection invariants on arbitrary four-piece
// inputs: no panic, bracket ordering, feasible output.
func FuzzProjectTV(f *testing.F) {
	f.Add(uint16(20), uint16(5), uint16(10), uint16(15), 1.0, 2.0, 3.0, 4.0, uint8(2))
	f.Add(uint16(4), uint16(1), uint16(2), uint16(3), 0.0, 1.0, 0.0, 1.0, uint8(1))
	f.Add(uint16(100), uint16(99), uint16(98), uint16(97), 5.0, 5.0, 5.0, 5.0, uint8(7))
	f.Fuzz(func(t *testing.T, nRaw, c1, c2, c3 uint16, m1, m2, m3, m4 float64, kRaw uint8) {
		n := int(nRaw%2000) + 4
		k := int(kRaw%8) + 1
		for _, m := range []float64{m1, m2, m3, m4} {
			if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 || m > 1e12 {
				t.Skip()
			}
		}
		if m1+m2+m3+m4 <= 0 {
			t.Skip()
		}
		part := intervals.FromBoundaries(n, []int{int(c1) % n, int(c2) % n, int(c3) % n})
		masses := []float64{m1, m2, m3, m4}[:part.Count()]
		total := 0.0
		for _, m := range masses {
			total += m
		}
		if total <= 0 {
			t.Skip()
		}
		for i := range masses {
			masses[i] /= total
		}
		d, err := dist.FromWeights(part, masses)
		if err != nil {
			t.Skip()
		}
		proj, err := ProjectTV(d, k, intervals.FullDomain(n))
		if err != nil {
			t.Fatalf("ProjectTV: %v", err)
		}
		if proj.Relaxed < 0 || proj.Relaxed > proj.Distance+1e-9 {
			t.Fatalf("bracket broken: relaxed %v, distance %v", proj.Relaxed, proj.Distance)
		}
		if proj.Projected.PieceCount() > k {
			t.Fatalf("projection has %d > k = %d pieces", proj.Projected.PieceCount(), k)
		}
		if math.Abs(dist.TotalMass(proj.Projected)-1) > 1e-9 {
			t.Fatalf("projection mass %v", dist.TotalMass(proj.Projected))
		}
		if k >= d.PieceCount() && proj.Relaxed > 1e-12 {
			t.Fatalf("k >= pieces should fit exactly, relaxed = %v", proj.Relaxed)
		}
	})
}
