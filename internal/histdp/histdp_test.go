package histdp

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/rng"
)

// bruteForceRelaxed enumerates all segmentations of d's pieces into at most
// k segments and returns the minimal restricted ℓ1/2 distance achievable by
// per-segment weighted medians. Exponential; for tiny inputs only.
func bruteForceRelaxed(d *dist.PiecewiseConstant, k int, g *intervals.Domain) float64 {
	pieces := d.Pieces()
	B := len(pieces)
	vals := make([]float64, B)
	weights := make([]float64, B)
	for j, pc := range pieces {
		vals[j] = pc.Mass / float64(pc.Iv.Len())
		w := 0
		for _, giv := range g.Intervals() {
			w += pc.Iv.Intersect(giv).Len()
		}
		weights[j] = float64(w)
	}
	segCost := func(a, b int) float64 { // inclusive piece range
		med, ok := weightedMedian(vals[a:b+1], weights[a:b+1])
		if !ok {
			return 0
		}
		c := 0.0
		for j := a; j <= b; j++ {
			c += weights[j] * math.Abs(vals[j]-med)
		}
		return c
	}
	best := math.Inf(1)
	// Iterate all subsets of cut positions 1..B-1 with < k cuts.
	var rec func(pos, cuts int, acc float64, lastStart int)
	rec = func(pos, cuts int, acc float64, lastStart int) {
		if pos == B {
			total := acc + segCost(lastStart, B-1)
			if total < best {
				best = total
			}
			return
		}
		// No cut at pos.
		rec(pos+1, cuts, acc, lastStart)
		// Cut at pos (segment lastStart..pos-1 closes).
		if cuts+1 < k {
			rec(pos+1, cuts+1, acc+segCost(lastStart, pos-1), pos)
		}
	}
	rec(1, 0, 0, 0)
	return best / 2
}

func mkPC(t *testing.T, n int, cuts []int, masses []float64) *dist.PiecewiseConstant {
	t.Helper()
	p := intervals.FromBoundaries(n, cuts)
	d, err := dist.FromWeights(p, masses)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProjectTVExactFitWhenKLarge(t *testing.T) {
	d := mkPC(t, 12, []int{4, 8}, []float64{0.5, 0.25, 0.25})
	for _, k := range []int{3, 4, 10} {
		proj, err := ProjectTV(d, k, intervals.FullDomain(12))
		if err != nil {
			t.Fatal(err)
		}
		if proj.Relaxed != 0 || proj.Distance > 1e-12 {
			t.Fatalf("k=%d: relaxed=%v distance=%v, want 0", k, proj.Relaxed, proj.Distance)
		}
	}
}

func TestProjectTVKnownValue(t *testing.T) {
	// Uniform halves with masses 0.75/0.25 over n=4: the best 1-histogram
	// is the weighted median value; ℓ1 = |0.375-v|+|0.375-v|+|0.125-v|+|0.125-v|
	// minimized at v in [0.125, 0.375] (any median) → ℓ1 = 2·0.25 = 0.5, TV = 0.25.
	d := mkPC(t, 4, []int{2}, []float64{0.75, 0.25})
	proj, err := ProjectTV(d, 1, intervals.FullDomain(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proj.Relaxed-0.25) > 1e-12 {
		t.Fatalf("relaxed = %v, want 0.25", proj.Relaxed)
	}
	if proj.Projected.PieceCount() > 1 {
		t.Fatalf("projection has %d pieces, want 1", proj.Projected.PieceCount())
	}
}

func TestProjectTVMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 60; trial++ {
		n := 8 + r.Intn(12)
		numCuts := r.Intn(6)
		cuts := make([]int, numCuts)
		for i := range cuts {
			cuts[i] = 1 + r.Intn(n-1)
		}
		part := intervals.FromBoundaries(n, cuts)
		masses := make([]float64, part.Count())
		total := 0.0
		for j := range masses {
			masses[j] = r.Float64() + 0.05
			total += masses[j]
		}
		for j := range masses {
			masses[j] /= total
		}
		d, err := dist.FromWeights(part, masses)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + r.Intn(4)
		var g *intervals.Domain
		if r.Bernoulli(0.5) {
			g = intervals.FullDomain(n)
		} else {
			lo := r.Intn(n - 1)
			g = intervals.NewDomain(n, []intervals.Interval{{Lo: lo, Hi: lo + 1 + r.Intn(n-lo-1)}})
		}
		proj, err := ProjectTV(d, k, g)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceRelaxed(d, k, g)
		if math.Abs(proj.Relaxed-want) > 1e-9 {
			t.Fatalf("trial %d: DP relaxed = %v, brute force = %v (n=%d k=%d pieces=%d)",
				trial, proj.Relaxed, want, n, k, d.PieceCount())
		}
	}
}

func TestProjectTVBounds(t *testing.T) {
	// Relaxed <= Distance always; Projected is a valid k-histogram.
	r := rng.New(2)
	for trial := 0; trial < 40; trial++ {
		n := 10 + r.Intn(40)
		cuts := make([]int, r.Intn(8))
		for i := range cuts {
			cuts[i] = 1 + r.Intn(n-1)
		}
		part := intervals.FromBoundaries(n, cuts)
		masses := make([]float64, part.Count())
		total := 0.0
		for j := range masses {
			masses[j] = r.Float64() + 0.01
			total += masses[j]
		}
		for j := range masses {
			masses[j] /= total
		}
		d, _ := dist.FromWeights(part, masses)
		k := 1 + r.Intn(5)
		proj, err := ProjectTV(d, k, intervals.FullDomain(n))
		if err != nil {
			t.Fatal(err)
		}
		if proj.Relaxed > proj.Distance+1e-9 {
			t.Fatalf("relaxed %v > distance %v", proj.Relaxed, proj.Distance)
		}
		if proj.Projected.PieceCount() > k {
			t.Fatalf("projection has %d pieces > k=%d", proj.Projected.PieceCount(), k)
		}
		if math.Abs(dist.TotalMass(proj.Projected)-1) > 1e-9 {
			t.Fatal("projection is not a distribution")
		}
	}
}

func TestProjectTVRestrictedIgnoresOffDomain(t *testing.T) {
	// d is a 1-histogram on [0,8) but wild on [8,16); restricted to the
	// first half, distance to H_1 should be ~0 even for k=1.
	pieces := []dist.Piece{
		{Iv: intervals.Interval{Lo: 0, Hi: 8}, Mass: 0.4},
		{Iv: intervals.Interval{Lo: 8, Hi: 10}, Mass: 0.3},
		{Iv: intervals.Interval{Lo: 10, Hi: 16}, Mass: 0.3},
	}
	d := dist.MustPiecewiseConstant(16, pieces)
	g := intervals.NewDomain(16, []intervals.Interval{{Lo: 0, Hi: 8}})
	proj, err := ProjectTV(d, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Relaxed > 1e-12 {
		t.Fatalf("restricted relaxed distance = %v, want 0", proj.Relaxed)
	}
}

func TestProjectTVErrors(t *testing.T) {
	d := dist.Uniform(8)
	if _, err := ProjectTV(d, 0, intervals.FullDomain(8)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ProjectTV(d, 1, intervals.FullDomain(9)); err == nil {
		t.Fatal("mismatched domain accepted")
	}
}

func TestDistanceToHkOnFarDistribution(t *testing.T) {
	// Alternating comb: far from H_1 (uniform-ish), distance known.
	n := 16
	p := make([]float64, n)
	for i := range p {
		if i%2 == 0 {
			p[i] = 2.0 / float64(n)
		}
	}
	pieces := make([]dist.Piece, n)
	for i := range pieces {
		pieces[i] = dist.Piece{Iv: intervals.Interval{Lo: i, Hi: i + 1}, Mass: p[i]}
	}
	d := dist.MustPiecewiseConstant(n, pieces)
	lower, upper, err := DistanceToHk(d, 1, intervals.FullDomain(n))
	if err != nil {
		t.Fatal(err)
	}
	// Best single value is the median 0 or 2/n; either way ℓ1 = 1, TV = 0.5.
	if math.Abs(lower-0.5) > 1e-9 {
		t.Fatalf("lower = %v, want 0.5", lower)
	}
	if upper < lower {
		t.Fatal("upper < lower")
	}
	// With k = n it is exactly representable.
	lower, _, err = DistanceToHk(d, n, intervals.FullDomain(n))
	if err != nil {
		t.Fatal(err)
	}
	if lower != 0 {
		t.Fatalf("k=n lower = %v", lower)
	}
}

func TestDistanceCurve(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		n := 12 + r.Intn(40)
		cuts := make([]int, r.Intn(8))
		for i := range cuts {
			cuts[i] = 1 + r.Intn(n-1)
		}
		part := intervals.FromBoundaries(n, cuts)
		masses := make([]float64, part.Count())
		total := 0.0
		for j := range masses {
			masses[j] = r.Float64() + 0.01
			total += masses[j]
		}
		for j := range masses {
			masses[j] /= total
		}
		d, _ := dist.FromWeights(part, masses)
		g := intervals.FullDomain(n)
		kMax := d.PieceCount() + 2
		curve, err := DistanceCurve(d, kMax, g)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for k := 1; k <= kMax; k++ {
			// Matches the per-k projection exactly.
			proj, err := ProjectTV(d, k, g)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(curve[k-1]-proj.Relaxed) > 1e-9 {
				t.Fatalf("trial %d k=%d: curve %v != projection %v", trial, k, curve[k-1], proj.Relaxed)
			}
			if curve[k-1] > prev+1e-12 {
				t.Fatalf("curve not non-increasing at k=%d", k)
			}
			prev = curve[k-1]
		}
		if curve[d.PieceCount()-1] > 1e-12 {
			t.Fatal("curve not zero at the true complexity")
		}
	}
	if _, err := DistanceCurve(dist.Uniform(4), 0, intervals.FullDomain(4)); err == nil {
		t.Fatal("kMax=0 accepted")
	}
}

func TestProjectL2ExactFit(t *testing.T) {
	d := mkPC(t, 12, []int{4, 8}, []float64{0.5, 0.25, 0.25})
	proj, sse, err := ProjectL2(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sse > 1e-15 {
		t.Fatalf("sse = %v", sse)
	}
	if dist.TV(d, proj) > 1e-12 {
		t.Fatal("exact-fit projection differs")
	}
}

func TestProjectL2MergesClosestPair(t *testing.T) {
	// Three pieces with values 1, 1.01, 5 (unnormalized): merging the two
	// close ones is optimal for k=2.
	d := mkPC(t, 6, []int{2, 4}, []float64{0.2, 0.21, 0.59})
	proj, _, err := ProjectL2(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if proj.PieceCount() != 2 {
		t.Fatalf("pieces = %d", proj.PieceCount())
	}
	cut := proj.Partition().Boundaries()
	if len(cut) != 1 || cut[0] != 4 {
		t.Fatalf("cut at %v, want [4]", cut)
	}
}

func TestProjectL2SSEDecreasesInK(t *testing.T) {
	r := rng.New(3)
	n := 64
	cuts := []int{5, 11, 20, 33, 40, 52, 60}
	part := intervals.FromBoundaries(n, cuts)
	masses := make([]float64, part.Count())
	total := 0.0
	for j := range masses {
		masses[j] = r.Float64() + 0.01
		total += masses[j]
	}
	for j := range masses {
		masses[j] /= total
	}
	d, _ := dist.FromWeights(part, masses)
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		_, sse, err := ProjectL2(d, k)
		if err != nil {
			t.Fatal(err)
		}
		if sse > prev+1e-12 {
			t.Fatalf("sse increased at k=%d: %v > %v", k, sse, prev)
		}
		prev = sse
	}
	if prev > 1e-15 {
		t.Fatalf("sse at k=#pieces should be 0, got %v", prev)
	}
}

func TestHistogramComplexity(t *testing.T) {
	d := mkPC(t, 12, []int{4, 8}, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	// Pieces have widths 4,4,4 and equal masses: all same height → H_1.
	if got := HistogramComplexity(d); got != 1 {
		t.Fatalf("complexity = %d, want 1", got)
	}
	if !IsKHistogram(d, 1) || !IsKHistogram(d, 5) {
		t.Fatal("IsKHistogram wrong")
	}
	d2 := mkPC(t, 12, []int{4, 8}, []float64{0.5, 0.25, 0.25})
	if got := HistogramComplexity(d2); got != 2 {
		// Pieces 2,3 have heights 0.0625 each → merge; piece 1 is 0.125.
		t.Fatalf("complexity = %d, want 2", got)
	}
	if IsKHistogram(d2, 1) {
		t.Fatal("d2 is not a 1-histogram")
	}
}

func TestTrueDistanceDense(t *testing.T) {
	d := dist.MustDense([]float64{0.5, 0, 0.5, 0})
	lower, upper, err := TrueDistanceDense(d, 4, intervals.FullDomain(4))
	if err != nil {
		t.Fatal(err)
	}
	if lower != 0 || upper > 1e-12 {
		t.Fatalf("k=4 should fit exactly: %v %v", lower, upper)
	}
	lower, _, err = TrueDistanceDense(d, 1, intervals.FullDomain(4))
	if err != nil {
		t.Fatal(err)
	}
	// Best constant is 0 or 0.5... median of {0.5,0,0.5,0} → ℓ1 = 1, TV = 0.5.
	if math.Abs(lower-0.5) > 1e-9 {
		t.Fatalf("k=1 lower = %v, want 0.5", lower)
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(8)
	weights := []float64{1, 2, 0, 3, 1, 0, 2, 1}
	for i, w := range weights {
		if w > 0 {
			f.add(i, w)
		}
	}
	cum := 0.0
	for i, w := range weights {
		cum += w
		if got := f.prefix(i); math.Abs(got-cum) > 1e-12 {
			t.Fatalf("prefix(%d) = %v, want %v", i, got, cum)
		}
	}
	// findPrefix: total = 10, target 5 → positions 0..3 cumulate 1,3,3,6 →
	// smallest index with cum >= 5 is 3.
	if got := f.findPrefix(5); got != 3 {
		t.Fatalf("findPrefix(5) = %d, want 3", got)
	}
	if got := f.findPrefix(0.5); got != 0 {
		t.Fatalf("findPrefix(0.5) = %d, want 0", got)
	}
	if got := f.findPrefix(100); got != 7 {
		t.Fatalf("findPrefix(overflow) = %d, want 7", got)
	}
}

func BenchmarkProjectTV(b *testing.B) {
	r := rng.New(1)
	n := 1 << 14
	cuts := make([]int, 255)
	for i := range cuts {
		cuts[i] = 1 + r.Intn(n-1)
	}
	part := intervals.FromBoundaries(n, cuts)
	masses := make([]float64, part.Count())
	total := 0.0
	for j := range masses {
		masses[j] = r.Float64() + 0.01
		total += masses[j]
	}
	for j := range masses {
		masses[j] /= total
	}
	d, _ := dist.FromWeights(part, masses)
	g := intervals.FullDomain(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProjectTV(d, 8, g); err != nil {
			b.Fatal(err)
		}
	}
}
