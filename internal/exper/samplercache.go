package exper

import (
	"reflect"
	"sync"

	"repro/internal/dist"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Cross-trial sampler cache.
//
// AcceptRate and MinimalScale run hundreds of trials per estimate, and a
// Fixed workload hands every trial the SAME distribution instance. Alias
// tables are immutable once built — a Fork shares them and only rebinds
// the RNG — so rebuilding them per trial is pure waste: O(n) for dense
// distributions, and MinimalScale multiplies it by every (scale, side)
// evaluation. The cache keys prototypes by distribution identity (the
// interface value itself), builds the tables once, and serves each trial
// a Fork over the caller's RNG. Since table construction is deterministic
// in the distribution and a Fork draws exactly like a freshly built
// sampler over the same RNG, cached trials are bit-identical to uncached
// ones.

// samplerCacheLimit bounds the prototype map. Random-instance workloads
// (a fresh distribution per trial) would otherwise grow it without bound;
// when the limit is hit the map is dropped wholesale — Fixed workloads
// re-insert their one entry on the next trial, so the steady state is
// preserved exactly where the cache pays off.
const samplerCacheLimit = 128

var samplerProtos = struct {
	mu sync.Mutex
	m  map[dist.Distribution]*oracle.Sampler
}{m: make(map[dist.Distribution]*oracle.Sampler)}

// samplerFor returns a sampler for d drawing its randomness from r,
// sharing cached alias tables when d has been seen before. It is the
// harness's replacement for oracle.NewSampler(d, r) and is safe for
// concurrent use by the trial workers.
func samplerFor(d dist.Distribution, r *rng.RNG) *oracle.Sampler {
	if !reflect.TypeOf(d).Comparable() {
		// Cannot key on it (would panic on map insert); build directly.
		return oracle.NewSampler(d, r)
	}
	samplerProtos.mu.Lock()
	proto, ok := samplerProtos.m[d]
	if !ok {
		if len(samplerProtos.m) >= samplerCacheLimit {
			clear(samplerProtos.m)
		}
		// The prototype's own RNG is never drawn from; forks rebind r.
		proto = oracle.NewSampler(d, rng.New(0))
		samplerProtos.m[d] = proto
	}
	samplerProtos.mu.Unlock()
	return proto.Fork(r).(*oracle.Sampler)
}
