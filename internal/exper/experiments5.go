package exper

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
)

// --- E14: head-to-head — ADK Algorithm 1 vs the CDKL'22 engine ---

// engineTester returns the core tester pinned to a named engine, with
// the RunConfig's observer/count-strategy plumbing attached as usual.
func (rc RunConfig) engineTester(engine string) *baselines.Canonne {
	t := rc.canonne()
	t.Config.Engine = engine
	return t
}

// fmtScaled renders a MinimalScale result as "m* (scale*)", marking a
// search that bottomed out on the grid floor — there the true minimal
// budget is below what the grid can resolve, so m* is an upper bound.
func fmtScaled(s *ScaleSearch, minScale float64) string {
	if s.Scale <= minScale {
		return fmt.Sprintf("≤%s (≤%.4f)", fmtCount(s.Samples), s.Scale)
	}
	return fmt.Sprintf("%s (%.4f)", fmtCount(s.Samples), s.Scale)
}

func e14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Head-to-head: ADK Algorithm 1 vs the CDKL'22 near-optimal engine",
		Claim: "CDKL'22 (arXiv 2207.06596): replacing the sieve with a trimmed per-interval flatness test preserves the operating characteristic while cutting samples-to-decision by an order of magnitude; the gap widens with k and never crosses back",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			engines := []string{"adk", "cdkl22"}

			// Table 1: operating characteristics at nominal budget. The
			// same seed-3-style workload as the E6 pin: a flattened random
			// 4-histogram, perturbed by block combs of growing distance δ.
			// Both engines must hug accept on δ=0 and fall to reject as δ
			// passes ε — the curve BETWEEN is each engine's sharpness.
			n, k, eps := 2048, 4, 0.4
			trials := rc.pick(8, 16)
			base := gen.KHistogram(r, n, k)
			flat := dist.Flatten(base, intervals.EquiWidth(n, 128))
			oc := &Table{
				Title:  fmt.Sprintf("E14a: accept rate vs perturbation δ (n=%d, k=%d, ε=%.1f, nominal budget)", n, k, eps),
				Header: []string{"δ", "adk accept", "cdkl22 accept", "adk samples", "cdkl22 samples"},
			}
			for _, delta := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
				inst, _ := gen.BlockComb(flat, 64, delta)
				row := []string{fmt.Sprintf("%.1f", delta)}
				var samples []string
				for _, engine := range engines {
					rate, err := AcceptRate(rc.ctx(), rc.engineTester(engine), Fixed(inst), k, eps, trials, r)
					if err != nil {
						return nil, fmt.Errorf("E14a engine %s δ=%.1f: %w", engine, delta, err)
					}
					row = append(row, rate.String())
					samples = append(samples, fmtCount(rate.AvgSamples))
				}
				oc.AddRow(append(row, samples...)...)
				rc.progress("E14a: δ=%.1f done", delta)
			}
			oc.Note("completeness head-to-head at δ=0; soundness once δ clears ε=%.1f; the slope between is decision sharpness", eps)
			oc.Note("samples columns are per-decision draws at nominal budget — the headline gap, identical workload and verdict")

			// Table 2: samples-to-decision vs n. MinimalScale finds each
			// engine's smallest passing budget on the standard yes/no
			// workload; m* is the realized draw count at that budget.
			ns := []int{1 << 10, 1 << 12}
			if !rc.Quick {
				ns = append(ns, 1<<14)
			}
			vsN := &Table{
				Title:  fmt.Sprintf("E14b: minimal samples-to-decision m* vs n (k=%d, ε=%.1f)", k, eps),
				Header: []string{"n", "adk m* (scale*)", "adk m*/√n", "cdkl22 m* (scale*)", "cdkl22 m*/√n", "adk/cdkl22"},
			}
			const minScale = 1.0 / 256
			for _, nn := range ns {
				w := histWorkload(nn, k, eps)
				var ms []float64
				row := []string{fmt.Sprintf("%d", nn)}
				for _, engine := range engines {
					search, err := MinimalScale(rc.ctx(), rc.engineTester(engine), w, trials, minScale, r)
					if err != nil {
						return nil, fmt.Errorf("E14b engine %s n=%d: %w", engine, nn, err)
					}
					ms = append(ms, search.Samples)
					row = append(row, fmtScaled(search, minScale), fmt.Sprintf("%.0f", search.Samples/math.Sqrt(float64(nn))))
				}
				vsN.AddRow(append(row, fmt.Sprintf("%.1f×", ms[0]/ms[1]))...)
				rc.progress("E14b: n=%d done (ratio %.1f×)", nn, ms[0]/ms[1])
			}
			vsN.Note("both engines scale as √n (flat m*/√n columns): the ratio is a constant-factor win, not an exponent change")
			vsN.Note("a scale* of ≤%.4f hit the search grid's floor: that m* is an upper bound and the ratio a lower bound", minScale)

			// Table 3: samples-to-decision vs k at fixed n. The adk sieve
			// pays reps×(⌈log₂(k+1)⌉+2) extra batches, so its constant
			// grows with k while cdkl22 keeps one batch — the gap should
			// widen, never cross.
			nFixed := 1 << 12
			ks := []int{2, 4}
			if !rc.Quick {
				ks = append(ks, 8)
			}
			vsK := &Table{
				Title:  fmt.Sprintf("E14c: minimal samples-to-decision m* vs k (n=%d, ε=%.1f)", nFixed, eps),
				Header: []string{"k", "adk m* (scale*)", "cdkl22 m* (scale*)", "adk/cdkl22"},
			}
			for _, kk := range ks {
				w := histWorkload(nFixed, kk, eps)
				var ms []float64
				row := []string{fmt.Sprintf("%d", kk)}
				for _, engine := range engines {
					search, err := MinimalScale(rc.ctx(), rc.engineTester(engine), w, trials, minScale, r)
					if err != nil {
						return nil, fmt.Errorf("E14c engine %s k=%d: %w", engine, kk, err)
					}
					ms = append(ms, search.Samples)
					row = append(row, fmtScaled(search, minScale))
				}
				vsK.AddRow(append(row, fmt.Sprintf("%.1f×", ms[0]/ms[1]))...)
				rc.progress("E14c: k=%d done (ratio %.1f×)", kk, ms[0]/ms[1])
			}
			vsK.Note("crossover check: a k or n where the ratio drops below 1 would mean adk wins somewhere — none appears; cdkl22 dominates samples-to-decision, and adk's remaining edge is the per-interval sieve diagnostic (which intervals were untrustworthy), not the budget")
			return []*Table{oc, vsN, vsK}, nil
		},
	}
}
