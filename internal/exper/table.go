// Package exper is the experiment harness: it runs the testers on
// controlled workloads, estimates accept rates with confidence intervals,
// searches for empirical sample complexities, and renders the result
// tables that EXPERIMENTS.md records. Each registered experiment (E1–E13)
// regenerates one theorem-level claim of the paper; see DESIGN.md for the
// index.
package exper

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rendered experiment result: a titled grid with a caption of
// notes (assumptions, parameters, the paper claim being checked).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// BarCol, when > 0, renders an ASCII bar next to each row,
	// proportional to the numeric value in that column — the text-mode
	// "figure" for series tables (sweeps, operating characteristics).
	// Column 0 (the x-value) cannot be barred; zero disables bars.
	BarCol int
}

// NewSeries returns a table whose barCol-th column (barCol >= 1) is
// rendered as bars.
func NewSeries(title string, barCol int, header ...string) *Table {
	return &Table{Title: title, Header: header, BarCol: barCol}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a caption line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	// Scale for the optional bar column.
	const barWidth = 24
	barMax := 0.0
	if t.BarCol > 0 {
		for _, row := range t.Rows {
			if v, ok := cellValue(row, t.BarCol); ok && v > barMax {
				barMax = v
			}
		}
	}

	var b strings.Builder
	b.WriteString(t.Title + "\n")
	line := func(cells []string, bar string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		if bar != "" {
			b.WriteString("  |" + bar)
		}
		b.WriteString("\n")
	}
	line(t.Header, "")
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		bar := ""
		if barMax > 0 && t.BarCol > 0 {
			if v, ok := cellValue(row, t.BarCol); ok && v >= 0 {
				bar = strings.Repeat("#", int(v/barMax*barWidth+0.5))
			}
		}
		line(row, bar)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header + rows; notes as # comments).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# " + t.Title + "\n")
	for _, n := range t.Notes {
		b.WriteString("# " + n + "\n")
	}
	b.WriteString(strings.Join(t.Header, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// cellValue parses the leading numeric token of row[col].
func cellValue(row []string, col int) (float64, bool) {
	if col >= len(row) {
		return 0, false
	}
	fields := strings.Fields(row[col])
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	return v, err == nil
}
