package exper

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "bbb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Note("n = %d", 7)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a    bbb", "333", "note: n = 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, "a,bbb\n1,2\n") || !strings.Contains(csv, "# demo") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestAcceptRate(t *testing.T) {
	r := rng.New(1)
	res, err := AcceptRate(nil, baselines.NewCollision(), Fixed(dist.Uniform(512)), 1, 0.3, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate < 0.8 {
		t.Fatalf("uniform collision accept rate = %v", res.Rate)
	}
	if res.AvgSamples <= 0 || res.Trials != 20 {
		t.Fatalf("accounting wrong: %+v", res)
	}
	if res.Lo > res.Rate || res.Hi < res.Rate {
		t.Fatalf("CI does not contain rate: %+v", res)
	}
}

func TestMinimalScaleFindsThreshold(t *testing.T) {
	r := rng.New(2)
	n := 1024
	w := Workload{
		K:   1,
		Eps: 0.3,
		Yes: Fixed(dist.Uniform(n)),
		No: func(rr *rng.RNG) dist.Distribution {
			d, _ := gen.BlockComb(dist.Uniform(n), 64, 0.35)
			return d
		},
	}
	search, err := MinimalScale(nil, baselines.NewCollision(), w, 16, 1.0/64, r)
	if err != nil {
		t.Fatal(err)
	}
	if search.Scale <= 0 || search.Samples <= 0 {
		t.Fatalf("degenerate search result: %+v", search)
	}
	if search.YesRate < 0.65 || search.NoRate > 0.35 {
		t.Fatalf("final scale does not pass: %+v", search)
	}
	// A collision tester needs more than a handful of samples here.
	if search.Samples < 20 {
		t.Fatalf("implausibly few samples: %v", search.Samples)
	}
}

func TestMinimalScaleErrorsWhenImpossible(t *testing.T) {
	r := rng.New(3)
	// Yes and No identical: no budget can distinguish.
	n := 256
	w := Workload{K: 1, Eps: 0.3, Yes: Fixed(dist.Uniform(n)), No: Fixed(dist.Uniform(n))}
	if _, err := MinimalScale(nil, baselines.NewCollision(), w, 8, 0.5, r); err == nil {
		t.Fatal("impossible workload should error out")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for i, e := range reg {
		want := fmt.Sprintf("E%d", i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E7"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID matched a ghost")
	}
}

func TestHistWorkloadInstancesAreCorrect(t *testing.T) {
	r := rng.New(4)
	w := histWorkload(1024, 4, 0.4)
	for i := 0; i < 3; i++ {
		yes := w.Yes(r)
		if pc, ok := yes.(*dist.PiecewiseConstant); !ok || pc.Compact().PieceCount() > 4 {
			t.Fatal("yes instance not a 4-histogram")
		}
		_ = w.No(r) // construction verifies distance internally
	}
}

// Smoke-run the cheap experiments end to end in Quick mode. The heavy
// sample-complexity sweeps (E1–E3) are exercised by the benchmark harness
// instead.
func TestQuickExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	for _, id := range []string{"E5", "E9", "E11"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tables, err := e.Run(RunConfig{Seed: 7, Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced an empty table %q", id, tb.Title)
			}
		}
	}
}

func TestTableBars(t *testing.T) {
	tb := NewSeries("series", 1, "x", "y")
	tb.AddRow("a", "1.0")
	tb.AddRow("b", "0.5")
	tb.AddRow("c", "")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "|########################") {
		t.Fatalf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "|############\n") {
		t.Fatalf("half bar missing:\n%s", out)
	}
	// Plain tables have no bars.
	plain := &Table{Title: "p", Header: []string{"x", "y"}}
	plain.AddRow("a", "1.0")
	buf.Reset()
	if err := plain.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "|#") {
		t.Fatal("plain table grew bars")
	}
}
