package exper

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/baselines"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ErrNoPassingScale reports that no budget up to the search limit lets a
// tester distinguish a workload — either the workload is impossible for
// it, or (as for the no-sieve baseline on histograms with heavy
// breakpoints) the tester fails completeness structurally, independent of
// budget.
var ErrNoPassingScale = errors.New("exper: no scale distinguishes the workload")

// Instance draws a fresh workload distribution (possibly random per
// trial).
type Instance func(r *rng.RNG) dist.Distribution

// Fixed wraps a single distribution as an Instance.
func Fixed(d dist.Distribution) Instance {
	return func(*rng.RNG) dist.Distribution { return d }
}

// RateResult is an accept-rate estimate with a Wilson 95% interval and the
// average per-trial sample consumption.
type RateResult struct {
	Rate, Lo, Hi float64
	Trials       int
	AvgSamples   float64
}

// String formats the estimate compactly for table cells.
func (rr RateResult) String() string {
	return fmt.Sprintf("%.2f [%.2f,%.2f]", rr.Rate, rr.Lo, rr.Hi)
}

// AcceptRate runs tester on fresh samplers of inst trials times. Trials
// run in parallel across GOMAXPROCS workers; determinism is preserved by
// deriving every trial's randomness (instance, sampler, and tester
// streams) from sequential Splits of r BEFORE the parallel phase. Tester
// values must be stateless across Run calls (all implementations in
// baselines are). A cancelled ctx stops claiming new trials, aborts
// in-flight ones at their testers' next context check, and returns
// ctx.Err(); nil means context.Background().
func AcceptRate(ctx context.Context, tester baselines.Tester, inst Instance, k int, eps float64, trials int, r *rng.RNG) (RateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type trial struct {
		d         dist.Distribution
		sampleRNG *rng.RNG
		testerRNG *rng.RNG
	}
	jobs := make([]trial, trials)
	for i := range jobs {
		jobs[i] = trial{d: inst(r), sampleRNG: r.Split(), testerRNG: r.Split()}
	}

	accepts := make([]bool, trials)
	samples := make([]int64, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= trials || ctx.Err() != nil {
					return
				}
				s := samplerFor(jobs[i].d, jobs[i].sampleRNG)
				dec, err := tester.Run(ctx, s, jobs[i].testerRNG, k, eps)
				if err != nil {
					errs[i] = err
					continue
				}
				accepts[i] = dec.Accept
				samples[i] = dec.Samples
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return RateResult{}, err
	}

	acceptCount := 0
	var totalSamples int64
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			return RateResult{}, errs[i]
		}
		if accepts[i] {
			acceptCount++
		}
		totalSamples += samples[i]
	}
	lo, hi := stats.Wilson(acceptCount, trials, 1.96)
	return RateResult{
		Rate:       float64(acceptCount) / float64(trials),
		Lo:         lo,
		Hi:         hi,
		Trials:     trials,
		AvgSamples: float64(totalSamples) / float64(trials),
	}, nil
}

// Workload is a yes/no instance pair for sample-complexity searches: Yes
// draws k-histograms, No draws distributions ε-far from H_k.
type Workload struct {
	Yes, No Instance
	K       int
	Eps     float64
}

// ScaleSearch is the result of a MinimalScale search.
type ScaleSearch struct {
	// Scale is the smallest passing budget multiplier.
	Scale float64
	// Samples is the average per-trial sample consumption at that scale
	// (averaged over the yes and no sides).
	Samples float64
	// YesRate and NoRate are the rates observed at the final scale.
	YesRate, NoRate float64
	// Evaluations counts how many (scale, side) rate estimates were run.
	Evaluations int
}

// MinimalScale finds the smallest budget multiplier s (on a geometric
// grid from minScale upward, refined by one half-step) at which the
// tester distinguishes the workload: accept rate >= 0.65 on Yes and
// <= 0.35 on No. The tester's empirical sample complexity on the workload
// is the Samples field of the result.
func MinimalScale(ctx context.Context, tester baselines.Tester, w Workload, trials int, minScale float64, r *rng.RNG) (*ScaleSearch, error) {
	if minScale <= 0 {
		minScale = 1.0 / 256
	}
	const maxScale = 64.0
	eval := func(s float64) (yes, no RateResult, pass bool, err error) {
		scaled := tester.WithScale(s)
		yes, err = AcceptRate(ctx, scaled, w.Yes, w.K, w.Eps, trials, r)
		if err != nil || yes.Rate < 0.65 {
			return // completeness already failed; skip the no side
		}
		no, err = AcceptRate(ctx, scaled, w.No, w.K, w.Eps, trials, r)
		if err != nil {
			return
		}
		pass = no.Rate <= 0.35
		return
	}
	evals := 0
	lowYesStreak := 0
	for s := minScale; s <= maxScale; s *= 2 {
		yes, no, pass, err := eval(s)
		evals += 2
		if err != nil {
			return nil, err
		}
		if !pass {
			// A tester whose accept rate on legal instances stays LOW as
			// the budget grows past nominal is failing completeness
			// structurally — more samples only sharpen the wrong verdict.
			if s >= 1 && yes.Rate <= 0.25 {
				lowYesStreak++
				if lowYesStreak >= 2 {
					return nil, fmt.Errorf("%w (completeness fails at scale >= 1, tester %s)", ErrNoPassingScale, tester.Name())
				}
			}
			continue
		}
		best := &ScaleSearch{
			Scale:   s,
			Samples: (yes.AvgSamples + no.AvgSamples) / 2,
			YesRate: yes.Rate, NoRate: no.Rate,
		}
		// One geometric refinement step: try s/√2.
		if s > minScale {
			mid := s / math.Sqrt2
			my, mn, mpass, err := eval(mid)
			evals += 2
			if err != nil {
				return nil, err
			}
			if mpass {
				best = &ScaleSearch{
					Scale:   mid,
					Samples: (my.AvgSamples + mn.AvgSamples) / 2,
					YesRate: my.Rate, NoRate: mn.Rate,
				}
			}
		}
		best.Evaluations = evals
		return best, nil
	}
	return nil, fmt.Errorf("%w (limit %v, tester %s)", ErrNoPassingScale, maxScale, tester.Name())
}

// fmtCount renders a sample count human-readably.
func fmtCount(v float64) string {
	switch {
	case v >= 1e15:
		return fmt.Sprintf("%.2fP", v/1e15)
	case v >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
