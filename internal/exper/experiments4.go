package exper

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// knownPartTester adapts TestKnownPartition to the Tester interface: the
// k parameter selects the equi-width partition Π = EquiWidth(n, k) that
// both the workload and the tester agree on.
type knownPartTester struct {
	params core.KnownPartitionParams
}

func (t *knownPartTester) Name() string { return "known-partition" }

func (t *knownPartTester) Run(ctx context.Context, o oracle.Oracle, r *rng.RNG, k int, eps float64) (baselines.Decision, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return baselines.Decision{}, err
		}
	}
	part := intervals.EquiWidth(o.N(), k)
	res, err := core.TestKnownPartition(o, r, part, eps, t.params)
	if err != nil {
		return baselines.Decision{}, err
	}
	return baselines.Decision{Accept: res.Accept, Samples: res.Samples}, nil
}

func (t *knownPartTester) WithScale(s float64) baselines.Tester {
	p := t.params
	p.LearnSampleC *= s
	p.Chi.MFactor *= s
	return &knownPartTester{params: p}
}

// --- E13: known vs unknown partition (the Section 1.2 [DK16] contrast) ---

func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Known-partition testing vs the full (unknown-partition) problem",
		Claim: "Section 1.2: given the partition Π explicitly, the problem is strictly easier — no sieve, no projection DP, and a smaller sample budget",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			k, eps := 4, 0.4
			ns := []int{1 << 10, 1 << 12}
			if !rc.Quick {
				ns = append(ns, 1<<14)
			}
			trials := rc.pick(8, 16)
			known := &knownPartTester{params: core.PracticalKnownPartition()}
			full := rc.canonne()

			tb := &Table{
				Title:  fmt.Sprintf("E13: minimal sample budget, known vs unknown partition (k=%d, ε=%.2f)", k, eps),
				Header: []string{"n", "known-partition m*", "unknown (full) m*", "ratio"},
			}
			for _, n := range ns {
				// Workload aligned with Π = EquiWidth(n, k): yes instances
				// are flat on Π; no instances are far from Hist(Π) AND from
				// H_k, so both testers face the same decision.
				part := intervals.EquiWidth(n, k)
				w := Workload{
					K:   k,
					Eps: eps,
					Yes: func(rr *rng.RNG) dist.Distribution {
						masses := make([]float64, k)
						total := 0.0
						for j := range masses {
							masses[j] = rr.Exponential() + 0.1
							total += masses[j]
						}
						for j := range masses {
							masses[j] /= total
						}
						d, err := dist.FromWeights(part, masses)
						if err != nil {
							panic(err)
						}
						return d
					},
					No: func(rr *rng.RNG) dist.Distribution {
						for {
							d := gen.FarFromHk(rr, n, k, 0.5, 64)
							if dist.TV(d, dist.Flatten(d, part)) >= eps {
								return d
							}
						}
					},
				}
				kSearch, err := MinimalScale(rc.ctx(), known, w, trials, 1.0/256, r)
				if err != nil {
					return nil, err
				}
				fSearch, err := MinimalScale(rc.ctx(), full, w, trials, 1.0/256, r)
				if err != nil {
					return nil, err
				}
				tb.AddRow(
					fmt.Sprintf("%d", n),
					fmtCount(kSearch.Samples),
					fmtCount(fSearch.Samples),
					fmt.Sprintf("%.1fx", fSearch.Samples/kSearch.Samples),
				)
				rc.progress("E13: n=%d done (known %s vs full %s)", n, fmtCount(kSearch.Samples), fmtCount(fSearch.Samples))
			}
			tb.Note("paper claim ([DK16] contrast): knowing Π removes the sieve and the DP — the budget gap is the price of not knowing the breakpoints")
			return []*Table{tb}, nil
		},
	}
}
