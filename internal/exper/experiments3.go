package exper

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/chisq"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/rng"
	"repro/internal/stats"
)

// --- E11: Poissonization ablation (Section 2 "Poissonization") ---

func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Ablation: Poissonized vs fixed-m sampling for the χ² statistic",
		Claim: "Section 2: Poissonization costs only a negligible constant — fixed-m counts give the same statistic behaviour with slightly smaller variance (negative multinomial correlations)",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			n := 1 << 10
			eps := 0.3
			params := chisq.PracticalParams()
			reps := rc.pick(100, 400)
			full := intervals.FullDomain(n)
			uniform := dist.Uniform(n)
			far, _ := gen.BlockComb(uniform, 64, 0.35)

			collect := func(d dist.Distribution, fixed bool) (mean, sd, acceptRate float64) {
				zs := make([]float64, reps)
				accepts := 0
				for i := 0; i < reps; i++ {
					s := samplerFor(d, r.Split())
					var res chisq.Result
					if fixed {
						res = chisq.TestFixed(s, r, uniform, full, eps, params)
					} else {
						res = chisq.Test(s, r, uniform, full, eps, params)
					}
					zs[i] = res.Z
					if res.Accept {
						accepts++
					}
				}
				return stats.Mean(zs), math.Sqrt(stats.Variance(zs)), float64(accepts) / float64(reps)
			}

			tb := &Table{
				Title:  fmt.Sprintf("E11: χ² statistic with and without Poissonization (n=%d, ε=%.2f, D*=uniform)", n, eps),
				Header: []string{"instance", "sampling", "mean Z", "sd Z", "accept rate"},
			}
			for _, inst := range []struct {
				name string
				d    dist.Distribution
			}{{"D = D* (null)", uniform}, {"D 0.35-far", far}} {
				for _, mode := range []struct {
					name  string
					fixed bool
				}{{"poisson(m)", false}, {"fixed m", true}} {
					mean, sd, rate := collect(inst.d, mode.fixed)
					tb.AddRow(inst.name, mode.name, fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.1f", sd), fmt.Sprintf("%.2f", rate))
				}
				rc.progress("E11: %s done", inst.name)
			}
			tb.Note("paper claim: verdicts agree in both modes; Poissonization is an analysis device, not a statistical necessity")
			tb.Note("fixed-m null variance is slightly smaller (multinomial counts are negatively correlated)")
			return []*Table{tb}, nil
		},
	}
}

// --- E12: the Step-10 check is load-bearing (Algorithm 1) ---

func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Ablation: removing the DP check (Step 10) breaks soundness",
		Claim: "Algorithm 1: the final χ² test only compares D to the LEARNED D̂; when D is far from H_k but equals its own flattening, only the check stage can reject",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			n := 2048
			k := 2
			eps := 0.45
			trials := rc.pick(8, 16)
			// Sprinkled heavy spikes: 30 isolated atoms of mass 1/30. Every
			// atom clears ApproxPart's heavy threshold and becomes a
			// singleton, so the learned D̂ is essentially exact, the sieve
			// finds nothing to remove, and the final χ² test of D against
			// D̂ ≈ D passes — yet D is ~0.9-far from H_2. Only the Step-10
			// check (D̂ itself far from H_2) can reject.
			spikes := func(rr *rng.RNG) dist.Distribution {
				const ell = 30
				p := make([]float64, n)
				perm := rr.Perm(n)
				for i := 0; i < ell; i++ {
					p[perm[i]] = 1.0 / ell
				}
				return dist.MustDense(p)
			}
			hist := gen.KHistogram(r, n, k)

			withCheck := rc.canonne()
			noCheckCfg := core.PracticalConfig()
			noCheckCfg.SkipCheck = true
			noCheck := &baselines.Canonne{Config: noCheckCfg}

			tb := &Table{
				Title:  fmt.Sprintf("E12: accept rates with and without the Step-10 check (n=%d, k=%d, ε=%.2f)", n, k, eps),
				Header: []string{"instance", "want", "full algorithm", "check removed"},
			}
			for _, row := range []struct {
				name string
				inst Instance
				want string
			}{
				{"random 2-histogram", Fixed(hist), "accept"},
				{"30 sprinkled spikes (far)", spikes, "reject"},
			} {
				cells := []string{row.name, row.want}
				for _, tester := range []baselines.Tester{withCheck, noCheck} {
					rate, err := AcceptRate(rc.ctx(), tester, row.inst, k, eps, trials, r)
					if err != nil {
						return nil, err
					}
					cells = append(cells, fmt.Sprintf("%.2f", rate.Rate))
				}
				tb.AddRow(cells...)
				rc.progress("E12: %s done", row.name)
			}
			tb.Note("paper claim: the checkless variant falsely accepts the spikes — the learned D̂ ≈ D passes the identity test even though D is ~0.9-far from H_2")
			return []*Table{tb}, nil
		},
	}
}
