package exper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/baselines"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/lowerbound"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// RunConfig selects the experiment fidelity.
type RunConfig struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Quick shrinks sweeps and trial counts to CI scale.
	Quick bool
	// Progress, if non-nil, receives one line per completed sweep point.
	Progress io.Writer
	// Ctx, when non-nil, bounds the whole run: trial batches stop claiming
	// work and in-flight testers abort at their next context check,
	// surfacing ctx.Err(). nil means context.Background().
	Ctx context.Context
	// Observer, when non-nil, receives the structured stage events of
	// every core-tester run the experiments launch (see internal/obs).
	// Experiments run trials concurrently, so the observer must be
	// concurrency-safe; the event Run field disambiguates interleavings.
	Observer obs.Observer
	// CountStrategy selects the tester's Poissonized count synthesis
	// (core.Config.CountStrategy): the zero value keeps the exact
	// per-draw stream, oracle.CountClosedForm is the fast path for the
	// harness's cached alias samplers. Per-seed decisions differ between
	// strategies, but operating characteristics (accept rates, minimal
	// scales) agree — pinned by the metamorphic regression test.
	CountStrategy oracle.CountStrategy
	// Engine selects the tester implementation (core.Config.Engine):
	// "" or "adk" is the paper's Algorithm 1, "cdkl22" the CDKL'22
	// near-optimal tester. Unknown names fail the run at the first
	// tester launch. E14 compares the engines head-to-head regardless
	// of this setting.
	Engine string
}

func (rc RunConfig) rng() *rng.RNG {
	if rc.Seed == 0 {
		rc.Seed = 1
	}
	return rng.New(rc.Seed)
}

func (rc RunConfig) ctx() context.Context {
	if rc.Ctx != nil {
		return rc.Ctx
	}
	return context.Background()
}

// canonne returns the paper's tester with the run's observer and count
// strategy attached.
func (rc RunConfig) canonne() *baselines.Canonne {
	t := baselines.NewCanonne()
	t.Config.Observer = rc.Observer
	t.Config.CountStrategy = rc.CountStrategy
	t.Config.Engine = rc.Engine
	return t
}

func (rc RunConfig) progress(format string, args ...any) {
	if rc.Progress != nil {
		fmt.Fprintf(rc.Progress, format+"\n", args...)
	}
}

func (rc RunConfig) pick(quick, full int) int {
	if rc.Quick {
		return quick
	}
	return full
}

// Experiment regenerates one theorem-level claim of the paper as tables.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(rc RunConfig) ([]*Table, error)
}

// Registry lists all experiments in index order (E1–E13).
func Registry() []Experiment {
	return []Experiment{e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10(), e11(), e12(), e13(), e14(), e15()}
}

// ByID finds an experiment by its identifier ("E1" ... "E10").
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// histWorkload builds the standard yes/no workload: random k-histograms
// vs block-comb perturbations whose distance to H_k is verified by the DP
// to be at least eps before use.
func histWorkload(n, k int, eps float64) Workload {
	pairs := 64
	if 16*k > pairs {
		pairs = 16 * k
	}
	if 2*pairs > n {
		pairs = n / 2
	}
	return Workload{
		K:   k,
		Eps: eps,
		Yes: func(r *rng.RNG) dist.Distribution { return gen.KHistogram(r, n, k) },
		No: func(r *rng.RNG) dist.Distribution {
			for {
				d := gen.FarFromHk(r, n, k, 0.5, pairs)
				lower, _, err := histdp.DistanceToHk(d, k, intervals.FullDomain(n))
				if err == nil && lower >= eps {
					return d
				}
			}
		},
	}
}

// --- E1: sample complexity scaling with n (Theorem 1.1, first term) ---

func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Empirical sample complexity of the tester vs domain size n",
		Claim: "Theorem 1.1: the n-dependent term grows as Θ(√n/ε²·log k) — m*/√n is flat as n grows 64-fold",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			ns := []int{1 << 10, 1 << 12, 1 << 14}
			if !rc.Quick {
				ns = append(ns, 1<<16)
			}
			k, eps := 4, 0.4
			trials := rc.pick(8, 16)
			tb := &Table{
				Title:  "E1: minimal sample budget m* vs n (k=4, ε=0.4)",
				Header: []string{"n", "scale*", "m*", "m*/sqrt(n)", "yes-rate", "no-rate"},
			}
			for _, n := range ns {
				search, err := MinimalScale(rc.ctx(), rc.canonne(), histWorkload(n, k, eps), trials, 1.0/256, r)
				if err != nil {
					return nil, err
				}
				tb.AddRow(
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%.4f", search.Scale),
					fmtCount(search.Samples),
					fmt.Sprintf("%.0f", search.Samples/math.Sqrt(float64(n))),
					fmt.Sprintf("%.2f", search.YesRate),
					fmt.Sprintf("%.2f", search.NoRate),
				)
				rc.progress("E1: n=%d done (m*=%s)", n, fmtCount(search.Samples))
			}
			tb.Note("paper claim: m*/√n stays within a small constant factor across the sweep")
			tb.Note("trials per rate estimate: %d; pass = yes-rate >= 0.65 and no-rate <= 0.35", trials)
			return []*Table{tb}, nil
		},
	}
}

// --- E2: sample complexity scaling with k (Theorem 1.1, second term) ---

func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Empirical sample complexity of the tester vs histogram class size k",
		Claim: "Theorem 1.1: the k-dependent term grows near-linearly in k (k/ε³·polylog k), decoupled from n",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			ks := []int{1, 2, 4}
			if !rc.Quick {
				ks = append(ks, 8, 16)
			}
			n, eps := 4096, 0.4
			trials := rc.pick(8, 16)
			tb := &Table{
				Title:  "E2: minimal sample budget m* vs k (n=4096, ε=0.4)",
				Header: []string{"k", "scale*", "m*", "m*/k", "yes-rate", "no-rate"},
			}
			for _, k := range ks {
				search, err := MinimalScale(rc.ctx(), rc.canonne(), histWorkload(n, k, eps), trials, 1.0/256, r)
				if err != nil {
					return nil, err
				}
				tb.AddRow(
					fmt.Sprintf("%d", k),
					fmt.Sprintf("%.4f", search.Scale),
					fmtCount(search.Samples),
					fmtCount(search.Samples/float64(k)),
					fmt.Sprintf("%.2f", search.YesRate),
					fmt.Sprintf("%.2f", search.NoRate),
				)
				rc.progress("E2: k=%d done (m*=%s)", k, fmtCount(search.Samples))
			}
			tb.Note("paper claim: growth in k is near-linear (up to polylog), NOT multiplicative with √n")
			return []*Table{tb}, nil
		},
	}
}

// --- E3: head-to-head against the prior algorithms (Section 1.2) ---

func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Sample complexity comparison against ILR12, CDGR16, and the naive learner",
		Claim: "Section 1.2: the tester beats the O(√(kn)/ε⁵ log n) [ILR12] and O(√(kn)/ε³ log n) [CDGR16] bounds; the naive learner pays Θ(n/ε²) and is only competitive at small n",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			ns := []int{1 << 10, 1 << 12}
			if !rc.Quick {
				ns = append(ns, 1<<14)
			}
			k, eps := 4, 0.4
			trials := rc.pick(8, 12)
			testers := []baselines.Tester{
				rc.canonne(),
				baselines.NewCDGR16(),
				baselines.NewILR12(),
				baselines.NewNaive(),
			}
			tb := &Table{
				Title:  "E3: minimal sample budget m* per tester (k=4, ε=0.4)",
				Header: append([]string{"n"}, testerNames(testers)...),
			}
			for _, n := range ns {
				w := histWorkload(n, k, eps)
				row := []string{fmt.Sprintf("%d", n)}
				for _, tester := range testers {
					search, err := MinimalScale(rc.ctx(), tester, w, trials, 1.0/256, r)
					switch {
					case errors.Is(err, ErrNoPassingScale):
						// The no-sieve baseline fails completeness on
						// histograms with heavy breakpoints at EVERY
						// budget — the phenomenon E8 isolates.
						row = append(row, "fails*")
						rc.progress("E3: n=%d %s fails at all budgets", n, tester.Name())
					case err != nil:
						return nil, err
					default:
						row = append(row, fmtCount(search.Samples))
						rc.progress("E3: n=%d %s done (m*=%s)", n, tester.Name(), fmtCount(search.Samples))
					}
				}
				tb.AddRow(row...)
			}
			tb.Note("paper claim: canonne16 grows ~√n; naive-learn grows ~n and crosses over; the flatness-testing ILR12 pays extra ε factors")
			tb.Note("'fails*' = no budget distinguishes: without the sieve, breakpoint intervals poison the χ² identity test on legal histograms (see E8)")
			return []*Table{tb}, nil
		},
	}
}

func testerNames(ts []baselines.Tester) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name()
	}
	return out
}

// --- E4: the Paninski family needs Ω(√n/ε²) samples (Proposition 4.1) ---

func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Hardness of the Paninski family Q_ε",
		Claim: "Proposition 4.1: members of Q_ε are ε-far from H_k yet indistinguishable from uniform below ~√n/ε² samples",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			const c = 6.0
			eps := 1.0 / 6 // the largest ε with c·ε <= 1
			paninski := func(n int) Instance {
				return func(rr *rng.RNG) dist.Distribution {
					d, err := lowerbound.Paninski(rr, n, eps, c)
					if err != nil {
						panic(err)
					}
					return d
				}
			}

			// Table A: collision tester sweep at two domain sizes.
			scales := []float64{1.0 / 32, 1.0 / 8, 1.0 / 2, 2}
			if !rc.Quick {
				scales = []float64{1.0 / 64, 1.0 / 16, 1.0 / 4, 1, 4}
			}
			trials := rc.pick(20, 40)
			ta := &Table{
				Title:  "E4a: collision tester on uniform vs Q_ε (accept rates; ε=1/6, c=6)",
				Header: []string{"n", "samples", "accept(uniform)", "accept(Q_eps)", "distinguishes"},
			}
			for _, n := range []int{1 << 10, 1 << 14} {
				for _, s := range scales {
					tester := baselines.NewCollision().WithScale(s)
					yes, err := AcceptRate(rc.ctx(), tester, Fixed(dist.Uniform(n)), 1, eps, trials, r)
					if err != nil {
						return nil, err
					}
					no, err := AcceptRate(rc.ctx(), tester, paninski(n), 1, eps, trials, r)
					if err != nil {
						return nil, err
					}
					ta.AddRow(
						fmt.Sprintf("%d", n),
						fmtCount(yes.AvgSamples),
						fmt.Sprintf("%.2f", yes.Rate),
						fmt.Sprintf("%.2f", no.Rate),
						yesNo(yes.Rate >= 0.65 && no.Rate <= 0.35),
					)
				}
				rc.progress("E4: collision sweep n=%d done", n)
			}
			ta.Note("paper claim: the distinguishing threshold in samples grows ~√n — compare where 'distinguishes' flips between the two n blocks")

			// Table B: the full histogram tester on the same family.
			tbScales := []float64{1.0 / 4, 1}
			if !rc.Quick {
				tbScales = []float64{1.0 / 16, 1.0 / 4, 1}
			}
			tbTrials := rc.pick(6, 12)
			tb := &Table{
				Title:  "E4b: histogram tester (k=1) on uniform vs Q_ε, n=1024",
				Header: []string{"scale", "samples", "accept(uniform)", "accept(Q_eps)"},
			}
			n := 1 << 10
			for _, s := range tbScales {
				tester := rc.canonne().WithScale(s)
				yes, err := AcceptRate(rc.ctx(), tester, Fixed(dist.Uniform(n)), 1, eps, tbTrials, r)
				if err != nil {
					return nil, err
				}
				no, err := AcceptRate(rc.ctx(), tester, paninski(n), 1, eps, tbTrials, r)
				if err != nil {
					return nil, err
				}
				tb.AddRow(
					fmt.Sprintf("%.4f", s),
					fmtCount(yes.AvgSamples),
					fmt.Sprintf("%.2f", yes.Rate),
					fmt.Sprintf("%.2f", no.Rate),
				)
				rc.progress("E4: canonne scale=%.3f done", s)
			}
			tb.Note("every Q_ε member is ε-far from H_k for all k < n/3 (verified exactly in the test suite)")
			return []*Table{ta, tb}, nil
		},
	}
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// --- E5: support-size reduction (Proposition 4.2 + Lemma 4.4) ---

func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Support-size reduction and the cover lemma",
		Claim: "Prop 4.2/Lemma 4.4: permuting embeds support size into histogram complexity; a correct H_k tester solves SUPPSIZE, an under-budgeted one cannot",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()

			// Table A: Monte-Carlo check of Lemma 4.4.
			n := 7000
			coverTrials := rc.pick(200, 1000)
			ta := &Table{
				Title:  "E5a: Lemma 4.4 — Pr[cover(σ(S)) <= 6ℓ/7] for |S| = ℓ, n = 7000",
				Header: []string{"ell", "bound 7ell/n", "empirical Pr", "mean cover/ell"},
			}
			for _, ell := range []int{25, 50, 100} {
				low := 0
				sum := 0.0
				for i := 0; i < coverTrials; i++ {
					cv := lowerbound.PermutedSupportCover(r, n, ell)
					if cv <= 6*ell/7 {
						low++
					}
					sum += float64(cv) / float64(ell)
				}
				ta.AddRow(
					fmt.Sprintf("%d", ell),
					fmt.Sprintf("%.3f", 7*float64(ell)/float64(n)),
					fmt.Sprintf("%.3f", float64(low)/float64(coverTrials)),
					fmt.Sprintf("%.3f", sum/float64(coverTrials)),
				)
			}
			ta.Note("paper claim: the empirical probability sits below the 7ℓ/n bound")
			rc.progress("E5: cover table done")

			// Table B: the reduction run end-to-end with an affordable tester.
			m := 30
			nBig := 2100
			rd, err := lowerbound.NewReduction(nBig, m)
			if err != nil {
				return nil, err
			}
			small, err := lowerbound.SupportInstance(m, lowerbound.SmallSupport(m))
			if err != nil {
				return nil, err
			}
			large, err := lowerbound.SupportInstance(m, lowerbound.LargeSupport(m))
			if err != nil {
				return nil, err
			}
			redTrials := rc.pick(6, 12)
			tb := &Table{
				Title:  fmt.Sprintf("E5b: SUPPSIZE via the reduction (m=%d, n=%d, k=%d, ε₁=1/24), naive-learn tester", m, nBig, rd.K()),
				Header: []string{"budget", "side", "accept rate", "avg samples"},
			}
			for _, scale := range []float64{1, 1.0 / 50} {
				tester := baselines.NewNaive().WithScale(scale)
				for _, side := range []struct {
					name string
					d    *dist.Dense
				}{{"small (ss=10)", small}, {"large (ss=26)", large}} {
					accepts := 0
					var samples int64
					for i := 0; i < redTrials; i++ {
						inner := samplerFor(side.d, r.Split())
						emb, err := rd.Embed(inner, r)
						if err != nil {
							return nil, err
						}
						dec, err := tester.Run(rc.ctx(), emb, r, rd.K(), rd.Eps())
						if err != nil {
							return nil, err
						}
						if dec.Accept {
							accepts++
						}
						samples += dec.Samples
					}
					tb.AddRow(
						fmt.Sprintf("%.3f", scale),
						side.name,
						fmt.Sprintf("%.2f", float64(accepts)/float64(redTrials)),
						fmtCount(float64(samples)/float64(redTrials)),
					)
				}
				rc.progress("E5: reduction at scale %.3f done", scale)
			}
			tb.Note("paper claim: at full budget the tester separates the promise sides; at 1/50 budget it cannot — SUPPSIZE hardness transfers to H_k testing")
			tb.Note("the paper-constant tester at these parameters would need ~%s samples (ExpectedSamples), which is why the affordable naive tester drives the reduction here", fmtCount(float64(paperCostNote(nBig, rd.K(), rd.Eps()))))
			return []*Table{ta, tb}, nil
		},
	}
}
