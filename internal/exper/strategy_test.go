package exper

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// TestCountStrategyOperatingCharacteristic is the metamorphic
// equivalence pin for the closed-form counting path: per-seed decisions
// legitimately differ between strategies (different randomness streams),
// but the operating characteristic must agree — both strategies' accept
// rates on the E6 workload (n=2048, k=4, ε=0.4, seed 3) must clear the
// same pinned floors/ceilings as TestE6OperatingCharacteristicRegression
// (yes >= 0.83, no <= 0.17). A closed-form synthesis that biased the
// counts — misplaced a run, dropped mass at the dense/sparse boundary,
// mis-scaled a weight — would shift these rates and fail here, without
// disturbing the exact-path pin.
func TestCountStrategyOperatingCharacteristic(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical regression is not a -short test")
	}
	const (
		n, k   = 2048, 4
		eps    = 0.4
		trials = 12
		seed   = 3
	)
	measure := func(cs oracle.CountStrategy) (float64, float64) {
		r := rng.New(seed)
		base := gen.KHistogram(r, n, k)
		flat := dist.Flatten(base, intervals.EquiWidth(n, 128))
		tester := RunConfig{CountStrategy: cs}.canonne()
		rate := func(delta float64) float64 {
			inst, _ := gen.BlockComb(flat, 64, delta)
			res, err := AcceptRate(nil, tester, Fixed(inst), k, eps, trials, r)
			if err != nil {
				t.Fatal(err)
			}
			return res.Rate
		}
		return rate(0), rate(0.6)
	}

	exYes, exNo := measure(oracle.CountExact)
	cfYes, cfNo := measure(oracle.CountClosedForm)
	t.Logf("operating characteristic at seed %d: exact yes=%.3f no=%.3f, closed-form yes=%.3f no=%.3f",
		seed, exYes, exNo, cfYes, cfNo)

	for _, side := range []struct {
		name     string
		yes, no  float64
		strategy oracle.CountStrategy
	}{
		{"exact", exYes, exNo, oracle.CountExact},
		{"closed-form", cfYes, cfNo, oracle.CountClosedForm},
	} {
		if side.yes < 0.83 {
			t.Errorf("%s completeness: accept rate %.3f at δ=0, pinned floor 0.83", side.name, side.yes)
		}
		if side.no > 0.17 {
			t.Errorf("%s soundness: accept rate %.3f at δ=0.6, pinned ceiling 0.17", side.name, side.no)
		}
	}

	// Metamorphic agreement: within the pins the two strategies' rates
	// may differ by at most the two-trial slack the E6 pin itself allows.
	const slack = 2.0 / trials
	if d := exYes - cfYes; d > slack || d < -slack {
		t.Errorf("completeness rates diverge beyond pin slack: exact %.3f vs closed-form %.3f", exYes, cfYes)
	}
	if d := exNo - cfNo; d > slack || d < -slack {
		t.Errorf("soundness rates diverge beyond pin slack: exact %.3f vs closed-form %.3f", exNo, cfNo)
	}

	// Closed form must reproduce deterministically at the same seed too.
	if y2, n2 := measure(oracle.CountClosedForm); y2 != cfYes || n2 != cfNo {
		t.Errorf("closed-form measurement not deterministic: (%.3f, %.3f) then (%.3f, %.3f)", cfYes, cfNo, y2, n2)
	}
}
