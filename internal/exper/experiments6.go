package exper

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/closeness"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stats"
)

// --- E15: two-sample closeness — DKN'17 reduction vs naive full-domain CDVV14 ---

// pairInstance draws one two-sample workload: a pair of distributions
// over the same domain (equal for Yes pairs, ε-far for No pairs).
type pairInstance func(r *rng.RNG) (dist.Distribution, dist.Distribution)

// equalPair yields twin k-histograms: both sides sample the SAME random
// k-histogram (through independent sampler streams).
func equalPair(n, k int) pairInstance {
	return func(r *rng.RNG) (dist.Distribution, dist.Distribution) {
		d := gen.KHistogram(r, n, k)
		return d, d
	}
}

// farPair yields a random k-histogram against a block-comb perturbation
// of it at verified TV distance >= eps (gen.BlockComb reports the
// achieved distance; the perturbation is grown until it clears eps). The
// occasional draw so skewed that no comb reaches eps — BlockComb shifts
// are capped by per-block mass — is redrawn.
func farPair(n, k int, eps float64) pairInstance {
	return func(r *rng.RNG) (dist.Distribution, dist.Distribution) {
		for attempt := 0; attempt < 64; attempt++ {
			d := gen.KHistogram(r, n, k)
			for delta := eps; ; delta *= 1.25 {
				if delta > 1 {
					delta = 1
				}
				far, got := gen.BlockComb(d, 64, delta)
				if got >= eps {
					return d, far
				}
				if delta == 1 {
					break // this base can't support the distance; redraw
				}
			}
		}
		panic(fmt.Sprintf("farPair: no block comb reaches distance %v at n=%d k=%d", eps, n, k))
	}
}

// twoSampleMethod is one closeness-decision procedure under a budget
// multiplier: fresh oracles in, verdict and realized draw count out.
type twoSampleMethod struct {
	name string
	run  func(ctx context.Context, px, py oracle.Oracle, r *rng.RNG, k int, eps, scale float64) (accept bool, samples int64, err error)
}

// dknMethod wraps the DKN'17 reduction tester (internal/closeness
// TwoSample) with the RunConfig's count strategy attached.
func (rc RunConfig) dknMethod() twoSampleMethod {
	cs := rc.CountStrategy
	return twoSampleMethod{
		name: "dkn17",
		run: func(ctx context.Context, px, py oracle.Oracle, r *rng.RNG, k int, eps, scale float64) (bool, int64, error) {
			cfg := closeness.DefaultConfig()
			cfg.CountStrategy = cs
			if scale != 1 {
				cfg = cfg.Scale(scale)
			}
			res, err := closeness.TestTwoSample(ctx, px, py, r, k, eps, cfg)
			if err != nil {
				return false, 0, err
			}
			return res.Accept, res.SamplesX + res.SamplesY, nil
		},
	}
}

// naiveMethod is the full-domain CDVV14 tester: no reduction, the χ²
// statistic straight on [n], majority-amplified with the same replicate
// count as the DKN default so the comparison isolates the reduction.
func naiveMethod() twoSampleMethod {
	return twoSampleMethod{
		name: "naive-cdvv14",
		run: func(ctx context.Context, px, py oracle.Oracle, r *rng.RNG, _ int, eps, scale float64) (bool, int64, error) {
			params := closeness.DefaultParams()
			params.MFactor *= scale
			reps := closeness.DefaultConfig().Reps
			accepts := 0
			var samples int64
			for i := 0; i < reps; i++ {
				if err := ctx.Err(); err != nil {
					return false, samples, err
				}
				res := closeness.Test(px, py, r, eps, params)
				if res.Accept {
					accepts++
				}
				samples += int64(res.DrawnX + res.DrawnY)
			}
			return 2*accepts > reps, samples, nil
		},
	}
}

// pairRate estimates a method's accept rate on a two-sample workload:
// trials fan out across GOMAXPROCS workers with every trial's randomness
// (instance, two sampler streams, tester stream) pre-split from r, so the
// estimate is deterministic per seed at any core count — the same
// discipline as AcceptRate.
func pairRate(ctx context.Context, m twoSampleMethod, inst pairInstance, k int, eps float64, trials int, scale float64, r *rng.RNG) (RateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type trial struct {
		dx, dy dist.Distribution
		rx, ry *rng.RNG
		tester *rng.RNG
	}
	jobs := make([]trial, trials)
	for i := range jobs {
		dx, dy := inst(r)
		jobs[i] = trial{dx: dx, dy: dy, rx: r.Split(), ry: r.Split(), tester: r.Split()}
	}

	accepts := make([]bool, trials)
	samples := make([]int64, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= trials || ctx.Err() != nil {
					return
				}
				px := samplerFor(jobs[i].dx, jobs[i].rx)
				py := samplerFor(jobs[i].dy, jobs[i].ry)
				accepts[i], samples[i], errs[i] = m.run(ctx, px, py, jobs[i].tester, k, eps, scale)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return RateResult{}, err
	}
	acceptCount := 0
	var total int64
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			return RateResult{}, errs[i]
		}
		if accepts[i] {
			acceptCount++
		}
		total += samples[i]
	}
	lo, hi := stats.Wilson(acceptCount, trials, 1.96)
	return RateResult{
		Rate:       float64(acceptCount) / float64(trials),
		Lo:         lo,
		Hi:         hi,
		Trials:     trials,
		AvgSamples: float64(total) / float64(trials),
	}, nil
}

// minimalPairScale is MinimalScale for two-sample methods: the smallest
// budget multiplier on the geometric grid (one √2 refinement) at which
// the method distinguishes equal pairs from ε-far pairs.
func minimalPairScale(ctx context.Context, m twoSampleMethod, yes, no pairInstance, k int, eps float64, trials int, minScale float64, r *rng.RNG) (*ScaleSearch, error) {
	const maxScale = 64.0
	eval := func(s float64) (y, n RateResult, pass bool, err error) {
		y, err = pairRate(ctx, m, yes, k, eps, trials, s, r)
		if err != nil || y.Rate < 0.65 {
			return
		}
		n, err = pairRate(ctx, m, no, k, eps, trials, s, r)
		if err != nil {
			return
		}
		pass = n.Rate <= 0.35
		return
	}
	evals := 0
	for s := minScale; s <= maxScale; s *= 2 {
		y, n, pass, err := eval(s)
		evals += 2
		if err != nil {
			return nil, err
		}
		if !pass {
			continue
		}
		best := &ScaleSearch{Scale: s, Samples: (y.AvgSamples + n.AvgSamples) / 2, YesRate: y.Rate, NoRate: n.Rate}
		if s > minScale {
			mid := s / math.Sqrt2
			my, mn, mpass, err := eval(mid)
			evals += 2
			if err != nil {
				return nil, err
			}
			if mpass {
				best = &ScaleSearch{Scale: mid, Samples: (my.AvgSamples + mn.AvgSamples) / 2, YesRate: my.Rate, NoRate: mn.Rate}
			}
		}
		best.Evaluations = evals
		return best, nil
	}
	return nil, fmt.Errorf("%w (limit %v, method %s)", ErrNoPassingScale, maxScale, m.name)
}

func e15() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Two-sample closeness: the DKN'17 histogram reduction vs naive full-domain CDVV14",
		Claim: "DKN'17 (arXiv 1703.01913): reducing both samples to the common refinement of their learned flattenings makes two-sample closeness Θ(poly(k/ε))-sample — independent of n — while the naive CDVV14 tester pays Ω(n^{2/3}); the reduction's fixed partition overhead means naive wins at small n, with the crossover in n growing with k",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			ctx := rc.ctx()
			methods := []twoSampleMethod{rc.dknMethod(), naiveMethod()}
			trials := rc.pick(8, 16)

			// Table 1: operating characteristics at nominal budget — equal
			// pairs at δ=0, block-comb pairs of growing distance δ. Both
			// methods must hug accept at δ=0 and reject once δ clears ε.
			n, k, eps := 2048, 4, 0.4
			oc := &Table{
				Title:  fmt.Sprintf("E15a: accept rate vs pair distance δ (n=%d, k=%d, ε=%.1f, nominal budget)", n, k, eps),
				Header: []string{"δ", "dkn17 accept", "naive accept", "dkn17 samples", "naive samples"},
			}
			for _, delta := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
				inst := equalPair(n, k)
				if delta > 0 {
					d := delta
					inst = func(r *rng.RNG) (dist.Distribution, dist.Distribution) {
						p := gen.KHistogram(r, n, k)
						q, _ := gen.BlockComb(p, 64, d)
						return p, q
					}
				}
				row := []string{fmt.Sprintf("%.1f", delta)}
				var samples []string
				for _, m := range methods {
					rate, err := pairRate(ctx, m, inst, k, eps, trials, 1, r)
					if err != nil {
						return nil, fmt.Errorf("E15a %s δ=%.1f: %w", m.name, delta, err)
					}
					row = append(row, rate.String())
					samples = append(samples, fmtCount(rate.AvgSamples))
				}
				oc.AddRow(append(row, samples...)...)
				rc.progress("E15a: δ=%.1f done", delta)
			}
			oc.Note("completeness head-to-head at δ=0; soundness once δ clears ε=%.1f — same workload shape as the one-sample E6/E14 pins", eps)
			oc.Note("δ is the block-comb construction parameter; the achieved TV distance is within a few percent of it on these instances")

			// Table 2: samples-to-decision vs n at fixed k — the crossover
			// table. The DKN column is flat in n (the reduced domain depends
			// only on k and ε) while naive grows as n^{2/3}; the ratio
			// crosses 1 where naive's full-domain budget overtakes the
			// reduction's fixed partition overhead.
			ns := []int{1 << 10, 1 << 12, 1 << 14}
			if !rc.Quick {
				ns = append(ns, 1<<16)
			}
			const minScale = 1.0 / 256
			vsN := &Table{
				Title:  fmt.Sprintf("E15b: minimal samples-to-decision m* vs n (k=%d, ε=%.1f)", k, eps),
				Header: []string{"n", "dkn17 m* (scale*)", "naive m* (scale*)", "naive/dkn17"},
			}
			var prevRatio float64
			crossover := "none observed"
			for _, nn := range ns {
				yes, no := equalPair(nn, k), farPair(nn, k, eps)
				var ms []float64
				row := []string{fmt.Sprintf("%d", nn)}
				for _, m := range methods {
					search, err := minimalPairScale(ctx, m, yes, no, k, eps, trials, minScale, r)
					if err != nil {
						return nil, fmt.Errorf("E15b %s n=%d: %w", m.name, nn, err)
					}
					ms = append(ms, search.Samples)
					row = append(row, fmtScaled(search, minScale))
				}
				ratio := ms[1] / ms[0]
				vsN.AddRow(append(row, fmt.Sprintf("%.2f×", ratio))...)
				if prevRatio != 0 && prevRatio < 1 && ratio >= 1 {
					crossover = fmt.Sprintf("between n=%d and n=%d", nn/4, nn)
				}
				prevRatio = ratio
				rc.progress("E15b: n=%d done (naive/dkn %.2f×)", nn, ratio)
			}
			vsN.Note("ratio > 1 means the DKN'17 reduction needs fewer samples; crossover %s", crossover)
			vsN.Note("a scale* of ≤%.4f hit the search grid's floor: that m* is an upper bound", minScale)

			// Table 3: samples-to-decision vs k at fixed n. The reduction's
			// partition overhead and reduced-domain budget both grow with k
			// (b ∝ k·log k/ε) while naive ignores k entirely, so the ratio
			// shrinks as k grows — the crossover moves to larger n.
			nFixed := 1 << 14
			ks := []int{2, 4}
			if !rc.Quick {
				ks = append(ks, 8)
			}
			vsK := &Table{
				Title:  fmt.Sprintf("E15c: minimal samples-to-decision m* vs k (n=%d, ε=%.1f)", nFixed, eps),
				Header: []string{"k", "dkn17 m* (scale*)", "naive m* (scale*)", "naive/dkn17"},
			}
			for _, kk := range ks {
				yes, no := equalPair(nFixed, kk), farPair(nFixed, kk, eps)
				var ms []float64
				row := []string{fmt.Sprintf("%d", kk)}
				for _, m := range methods {
					search, err := minimalPairScale(ctx, m, yes, no, kk, eps, trials, minScale, r)
					if err != nil {
						return nil, fmt.Errorf("E15c %s k=%d: %w", m.name, kk, err)
					}
					ms = append(ms, search.Samples)
					row = append(row, fmtScaled(search, minScale))
				}
				vsK.AddRow(append(row, fmt.Sprintf("%.2f×", ms[1]/ms[0]))...)
				rc.progress("E15c: k=%d done (naive/dkn %.2f×)", kk, ms[1]/ms[0])
			}
			vsK.Note("the naive column is flat in k (full-domain CDVV14 never looks at the promise); the dkn17 column grows with k through the reduction parameter b ∝ k·log k/ε")
			return []*Table{oc, vsN, vsK}, nil
		},
	}
}
