package exper

import (
	"fmt"
	"math"
	"time"

	"repro/histtest"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/histbuild"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// paperCostNote returns the nominal sample cost of the tester under the
// literal paper constants — quoted in experiment notes to explain why
// calibrated constants drive the measurements.
func paperCostNote(n, k int, eps float64) int64 {
	return core.ExpectedSamples(n, k, eps, core.PaperConfig())
}

// --- E6: operating characteristic (the Section 2 tester definition) ---

func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Operating characteristic: accept rate vs true distance to H_k",
		Claim: "Section 2 definition: accept w.p. >= 2/3 at distance 0, reject w.p. >= 2/3 at distance >= ε, monotone transition between",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			n, k, eps := 2048, 4, 0.4
			deltas := []float64{0, 0.2, 0.4, 0.6}
			if !rc.Quick {
				deltas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
			}
			trials := rc.pick(8, 16)
			tester := rc.canonne()
			tb := NewSeries(
				fmt.Sprintf("E6: accept rate vs distance (n=%d, k=%d, ε=%.2f)", n, k, eps),
				2, "target dist", "measured dist", "accept rate", "95% CI")
			base := gen.KHistogram(r, n, k)
			flat := dist.Flatten(base, intervals.EquiWidth(n, 128))
			for _, delta := range deltas {
				inst, achieved := gen.BlockComb(flat, 64, delta)
				lower, _, err := histdp.DistanceToHk(inst, k, intervals.FullDomain(n))
				if err != nil {
					return nil, err
				}
				rate, err := AcceptRate(rc.ctx(), tester, Fixed(inst), k, eps, trials, r)
				if err != nil {
					return nil, err
				}
				tb.AddRow(
					fmt.Sprintf("%.2f", delta),
					fmt.Sprintf("%.3f", lower),
					fmt.Sprintf("%.2f", rate.Rate),
					fmt.Sprintf("[%.2f,%.2f]", rate.Lo, rate.Hi),
				)
				rc.progress("E6: delta=%.2f done (achieved %.3f)", delta, achieved)
			}
			tb.Note("measured dist is the exact DP lower bound on dTV(D, H_k) of each instance")
			tb.Note("paper claim: rate >= 2/3 in the first row, <= 1/3 wherever measured dist >= ε")
			return []*Table{tb}, nil
		},
	}
}

// --- E7: running time (Theorem 3.1, time complexity) ---

func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Running time of the tester vs n",
		Claim: "Theorem 3.1: time √n·poly(log k, 1/ε) + poly(k, 1/ε) — wall-clock grows sublinearly in n",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			ns := []int{1 << 12, 1 << 14}
			if !rc.Quick {
				ns = append(ns, 1<<16, 1<<18)
			}
			k, eps := 4, 0.4
			trials := rc.pick(2, 4)
			cfg := core.PracticalConfig()
			tb := &Table{
				Title:  fmt.Sprintf("E7: tester wall-clock vs n (k=%d, ε=%.2f)", k, eps),
				Header: []string{"n", "ms/run", "ms/sqrt(n)", "samples/run"},
			}
			for _, n := range ns {
				d := gen.KHistogram(r, n, k)
				var elapsed time.Duration
				var samples int64
				for i := 0; i < trials; i++ {
					s := samplerFor(d, r.Split())
					start := time.Now()
					res, err := core.Test(s, r, k, eps, cfg)
					if err != nil {
						return nil, err
					}
					elapsed += time.Since(start)
					samples += res.Trace.TotalSamples()
				}
				ms := float64(elapsed.Milliseconds()) / float64(trials)
				tb.AddRow(
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%.1f", ms),
					fmt.Sprintf("%.4f", ms/math.Sqrt(float64(n))),
					fmtCount(float64(samples)/float64(trials)),
				)
				rc.progress("E7: n=%d done (%.1f ms)", n, ms)
			}
			tb.Note("paper claim: ms/√n stays roughly flat — the runtime is sample-bound and samples grow as √n")
			return []*Table{tb}, nil
		},
	}
}

// --- E8: sieving ablation (Section 3.2.1 design choice) ---

func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Ablation: the sieve vs plain learn-then-test",
		Claim: "Section 3.2.1: without sieving, breakpoint intervals poison the χ² test and testing-by-learning fails on legal k-histograms",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			n := 2048
			trials := rc.pick(8, 16)
			eps := 0.5
			// A 2-histogram with a violent 12:1 level jump: whichever
			// partition interval straddles the jump carries a large χ²
			// against its flattening.
			jumpy := dist.MustPiecewiseConstant(n, []dist.Piece{
				{Iv: intervals.Interval{Lo: 0, Hi: 777}, Mass: 0.9},
				{Iv: intervals.Interval{Lo: 777, Hi: n}, Mass: 0.1},
			})
			mild := dist.Uniform(n)
			far := func(r *rng.RNG) dist.Distribution { return gen.FarFromHk(r, n, 2, 0.5, 64) }
			testers := []baselines.Tester{rc.canonne(), baselines.NewCDGR16()}
			tb := &Table{
				Title:  fmt.Sprintf("E8: accept rates with and without the sieve (n=%d, k=2, ε=%.2f)", n, eps),
				Header: []string{"instance", "want", "canonne16 (sieve)", "cdgr16-nosieve"},
			}
			rows := []struct {
				name string
				inst Instance
				want string
			}{
				{"uniform (H_1)", Fixed(mild), "accept"},
				{"jumpy 2-histogram", Fixed(jumpy), "accept"},
				{"0.5-far block comb", far, "reject"},
			}
			for _, row := range rows {
				cells := []string{row.name, row.want}
				for _, tester := range testers {
					rate, err := AcceptRate(rc.ctx(), tester, row.inst, 2, eps, trials, r)
					if err != nil {
						return nil, err
					}
					cells = append(cells, fmt.Sprintf("%.2f", rate.Rate))
				}
				tb.AddRow(cells...)
				rc.progress("E8: %s done", row.name)
			}
			tb.Note("paper claim: both reject the far instance, but only the sieved tester keeps accepting the jumpy legal histogram")
			return []*Table{tb}, nil
		},
	}
}

// --- E9: the χ² learner guarantee (Lemma 3.5) ---

func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Laplace learner χ² error vs sample budget",
		Claim: "Lemma 3.5: E[dχ²(D̃^J ‖ D̂)] <= ℓ/m — the error decays as 1/m with the predicted constant",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			n, k := 1024, 4
			trialsPer := rc.pick(10, 30)
			d := gen.KHistogram(r, n, k)
			// Fixed partition from one ApproxPart run.
			s := samplerFor(d, r.Split())
			part, err := learn.ApproxPart(s, r, 40, 8)
			if err != nil {
				return nil, err
			}
			p := part.Partition
			ell := p.Count()
			flat := dist.Flatten(d, p) // D̃^J for D ∈ H_k (flattening off breakpoints is the identity)
			tb := &Table{
				Title:  fmt.Sprintf("E9: learner χ² error (n=%d, k=%d, partition ℓ=%d)", n, k, ell),
				Header: []string{"m", "mean chi2", "bound ell/m", "ratio"},
			}
			for _, mult := range []int{1, 4, 16, 64} {
				m := mult * ell
				sum := 0.0
				for i := 0; i < trialsPer; i++ {
					samp := samplerFor(d, r.Split())
					counts := oracle.NewCounts(n, oracle.DrawN(samp, m))
					est := learn.LaplaceEstimate(counts, p)
					sum += dist.ChiSq(flat, est)
				}
				mean := sum / float64(trialsPer)
				bound := float64(ell) / float64(m)
				tb.AddRow(
					fmt.Sprintf("%d", m),
					fmt.Sprintf("%.5f", mean),
					fmt.Sprintf("%.5f", bound),
					fmt.Sprintf("%.2f", mean/bound),
				)
				rc.progress("E9: m=%d done", m)
			}
			tb.Note("paper claim: E[χ²] <= ℓ/m — the ratio hovers at or below ~1 and the decay is ~1/m across the rows")
			return []*Table{tb}, nil
		},
	}
}

// --- E10: end-to-end model selection (Section 1.1 motivation) ---

func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Tester-driven model selection + V-optimal sketching",
		Claim: "Section 1.1: doubling search over the tester finds the smallest adequate k; the resulting sketch answers range queries accurately",
		Run: func(rc RunConfig) ([]*Table, error) {
			r := rc.rng()
			n, eps := 1024, 0.4
			ks := []int{2, 4}
			if !rc.Quick {
				ks = append(ks, 8)
			}
			tb := &Table{
				Title:  fmt.Sprintf("E10: smallest-k search and sketch quality (n=%d, ε=%.2f)", n, eps),
				Header: []string{"true k", "selected k", "probed", "search samples", "sketch mean |sel err|"},
			}
			for _, trueK := range ks {
				d := gen.KHistogram(r, n, trueK)
				sampler := samplerFor(d, r.Split())
				res, err := histtest.SmallestK(sampler.Draw, n, eps, histtest.SelectOptions{
					Options: histtest.Options{Seed: r.Uint64()},
					Reps:    3,
					KMax:    64,
				})
				if err != nil {
					return nil, err
				}
				// Build a V-optimal sketch at the selected k from fresh data.
				fresh := samplerFor(d, r.Split())
				counts := oracle.NewCounts(n, oracle.DrawN(fresh, 200000))
				kSel := res.K
				if kSel > 64 {
					kSel = 64
				}
				sketch, err := histbuild.BuildFromSamples(counts, kSel, histbuild.VOptimal)
				if err != nil {
					return nil, err
				}
				queries := make([]intervals.Interval, 200)
				for i := range queries {
					lo := r.Intn(n - 1)
					queries[i] = intervals.Interval{Lo: lo, Hi: lo + 1 + r.Intn(n-lo-1)}
				}
				qe := histbuild.EvaluateQueries(d, sketch, queries)
				tb.AddRow(
					fmt.Sprintf("%d", trueK),
					fmt.Sprintf("%d", res.K),
					fmt.Sprintf("%v", res.Probed),
					fmtCount(float64(res.SamplesUsed)),
					fmt.Sprintf("%.4f", qe.MeanAbs),
				)
				rc.progress("E10: true k=%d done (selected %d)", trueK, res.K)
			}
			tb.Note("paper claim: selected k lands within ~2× of the true complexity (distance slack ε can admit slightly smaller k)")
			return []*Table{tb}, nil
		},
	}
}
