package exper

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/rng"
)

// TestE6OperatingCharacteristicRegression pins the tester's operating
// characteristic on the E6 workload (n=2048, k=4, ε=0.4, seed 3): the
// accept rate on the in-class instance (δ=0) and on the far instance
// (δ=0.6) are fully deterministic given the seed, so any change to the
// statistic, the constants, the RNG splitting discipline, or the stage
// pipeline that moves completeness or soundness shows up here as a hard
// failure rather than a silent drift of the E6 table.
//
// The thresholds are looser than the recorded rates (12/12 and 0/12 at
// the time of pinning) by two trials each, so only a real shift in the
// operating characteristic — not a single borderline trial — can trip
// them. The repeat-measurement assert below pins determinism separately.
func TestE6OperatingCharacteristicRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical regression is not a -short test")
	}
	const (
		n, k   = 2048, 4
		eps    = 0.4
		trials = 12
		seed   = 3
	)
	measureAll := func() (float64, float64) {
		r := rng.New(seed)
		base := gen.KHistogram(r, n, k)
		flat := dist.Flatten(base, intervals.EquiWidth(n, 128))
		tester := RunConfig{}.canonne()
		measure := func(delta float64) float64 {
			inst, _ := gen.BlockComb(flat, 64, delta)
			rate, err := AcceptRate(nil, tester, Fixed(inst), k, eps, trials, r)
			if err != nil {
				t.Fatal(err)
			}
			return rate.Rate
		}
		yes := measure(0)  // in H_k: completeness side
		no := measure(0.6) // DP-verified far: soundness side
		return yes, no
	}
	yes, no := measureAll()
	t.Logf("E6 regression rates at seed %d: yes=%.3f no=%.3f", seed, yes, no)

	// Determinism pin: the whole measurement — instance generation,
	// trial splitting, the tester's parallel sieve — reproduces the same
	// rates bit-for-bit on a second run at the same seed.
	if yes2, no2 := measureAll(); yes2 != yes || no2 != no {
		t.Errorf("measurement not deterministic: (%.3f, %.3f) then (%.3f, %.3f)", yes, no, yes2, no2)
	}

	if yes < 0.83 { // recorded 1.00; allow two flipped trials
		t.Errorf("completeness regressed: accept rate %.3f at δ=0, pinned floor 0.83", yes)
	}
	if no > 0.17 { // recorded 0.00; allow two flipped trials
		t.Errorf("soundness regressed: accept rate %.3f at δ=0.6, pinned ceiling 0.17", no)
	}
}
