package exper

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/rng"
)

// TestCDKLOperatingCharacteristicRegression mirrors the E6 pin (seed 3,
// n=2048, k=4, ε=0.4) for the cdkl22 engine: the accept rates on the
// in-class (δ=0) and DP-verified-far (δ=0.6) instances are fully
// deterministic given the seed, so drift in the trimmed-flatness
// statistic, the FlatEpsFactor/FlatCheckTolDivisor calibration, or the
// engine dispatch itself fails `go test ./...` loudly instead of
// silently shifting the head-to-head tables of E14.
//
// As with the adk pin, the floors sit two trials looser than the rates
// recorded at pin time (12/12 and 0/12), so only a real shift in the
// operating characteristic trips them.
func TestCDKLOperatingCharacteristicRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical regression is not a -short test")
	}
	const (
		n, k   = 2048, 4
		eps    = 0.4
		trials = 12
		seed   = 3
	)
	measureAll := func() (float64, float64) {
		r := rng.New(seed)
		base := gen.KHistogram(r, n, k)
		flat := dist.Flatten(base, intervals.EquiWidth(n, 128))
		tester := RunConfig{Engine: "cdkl22"}.canonne()
		measure := func(delta float64) float64 {
			inst, _ := gen.BlockComb(flat, 64, delta)
			rate, err := AcceptRate(nil, tester, Fixed(inst), k, eps, trials, r)
			if err != nil {
				t.Fatal(err)
			}
			return rate.Rate
		}
		yes := measure(0)
		no := measure(0.6)
		return yes, no
	}
	yes, no := measureAll()
	t.Logf("cdkl22 regression rates at seed %d: yes=%.3f no=%.3f", seed, yes, no)

	if yes2, no2 := measureAll(); yes2 != yes || no2 != no {
		t.Errorf("measurement not deterministic: (%.3f, %.3f) then (%.3f, %.3f)", yes, no, yes2, no2)
	}

	if yes < 0.83 { // recorded 1.00; allow two flipped trials
		t.Errorf("completeness regressed: accept rate %.3f at δ=0, pinned floor 0.83", yes)
	}
	if no > 0.17 { // recorded 0.00; allow two flipped trials
		t.Errorf("soundness regressed: accept rate %.3f at δ=0.6, pinned ceiling 0.17", no)
	}
}
