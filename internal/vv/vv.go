// Package vv provides support-size estimation primitives — the symmetric-
// property side of the paper's Section 4.2 reduction, where [VV10]'s
// Ω(m/log m) lower bound for SUPPSIZE is transferred to histogram
// testing. The estimators here are the classical plug-in and
// fingerprint-based corrections:
//
//   - Distinct: the naive plug-in (observed distinct elements) — a lower
//     bound that converges only after coupon-collector time;
//   - Chao1: the abundance-based correction D + f1²/(2·f2);
//   - GoodTuringUnseen: the Good–Turing estimate f1/m of the UNSEEN mass.
//
// Under the SUPPSIZE promise (every supported element has mass >= 1/m),
// these resolve the paper's promise instances at O(m) samples; the [VV10]
// bound says no estimator can do it with o(m/log m) samples, which is the
// hardness the reduction inherits. The package also provides the promise-
// instance decision rule used by experiment E5.
package vv

import (
	"fmt"

	"repro/internal/oracle"
)

// Distinct returns the number of distinct elements observed — the plug-in
// support-size estimate (always an underestimate in expectation).
func Distinct(c *oracle.Counts) int { return c.Distinct() }

// Chao1 returns the Chao1 abundance estimator: D + f1²/(2·f2), where f1
// and f2 are the singleton and doubleton fingerprint counts. When f2 = 0
// the bias-corrected form D + f1(f1−1)/2 is used.
func Chao1(c *oracle.Counts) float64 {
	fp := c.Fingerprint()
	d := float64(c.Distinct())
	f1 := float64(fp[1])
	f2 := float64(fp[2])
	if f2 > 0 {
		return d + f1*f1/(2*f2)
	}
	return d + f1*(f1-1)/2
}

// GoodTuringUnseen returns the Good–Turing estimate of the total
// probability mass of unseen elements: f1/m.
func GoodTuringUnseen(c *oracle.Counts) float64 {
	if c.Total() == 0 {
		return 1
	}
	return float64(c.Fingerprint()[1]) / float64(c.Total())
}

// PromiseDecision solves the SUPPSIZE promise problem of Section 4.2
// (support <= m/3 versus >= 7m/8, masses >= 1/m when positive) by
// sampling: draw sampleC·m samples and threshold the distinct count at
// the midpoint. With sampleC >= 5 every supported element is seen with
// probability >= 1−e⁻⁵, so the decision is correct with overwhelming
// probability — at Θ(m) samples, consistent with (and not contradicting)
// the Ω(m/log m) lower bound.
func PromiseDecision(o oracle.Oracle, m int, sampleC float64) (largeSide bool, distinct int, err error) {
	if m < 1 {
		return false, 0, fmt.Errorf("vv: m = %d must be positive", m)
	}
	if sampleC <= 0 {
		sampleC = 5
	}
	draws := int(sampleC * float64(m))
	c := oracle.NewCounts(o.N(), oracle.DrawN(o, draws))
	mid := (m/3 + 7*m/8) / 2
	return c.Distinct() > mid, c.Distinct(), nil
}
