package vv

import (
	"math"
	"testing"

	"repro/internal/lowerbound"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestDistinct(t *testing.T) {
	c := oracle.NewCounts(10, []int{1, 1, 2, 5})
	if Distinct(c) != 3 {
		t.Fatalf("distinct = %d", Distinct(c))
	}
}

func TestChao1KnownFingerprints(t *testing.T) {
	// 3 singletons, 1 doubleton, 1 tripleton: D=5, f1=3, f2=1 →
	// 5 + 9/2 = 9.5.
	c := oracle.NewCounts(100, []int{0, 1, 2, 3, 3, 4, 4, 4})
	if got := Chao1(c); math.Abs(got-9.5) > 1e-12 {
		t.Fatalf("Chao1 = %v, want 9.5", got)
	}
	// No doubletons: bias-corrected branch. D=2, f1=2 → 2 + 2·1/2 = 3.
	c2 := oracle.NewCounts(100, []int{7, 9})
	if got := Chao1(c2); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Chao1 (f2=0) = %v, want 3", got)
	}
}

func TestChao1ImprovesOnPlugIn(t *testing.T) {
	// Uniform over 200 elements, sampled 150 times: the plug-in badly
	// undercounts; Chao1 recovers much of the gap.
	r := rng.New(1)
	d, err := lowerbound.SupportInstance(200, 200)
	if err != nil {
		t.Fatal(err)
	}
	s := oracle.NewSampler(d, r)
	var plugSum, chaoSum float64
	const reps = 50
	for i := 0; i < reps; i++ {
		c := oracle.NewCounts(200, oracle.DrawN(s, 150))
		plugSum += float64(Distinct(c))
		chaoSum += Chao1(c)
	}
	plug, chao := plugSum/reps, chaoSum/reps
	if plug >= 150 {
		t.Fatalf("plug-in suspiciously high: %v", plug)
	}
	if math.Abs(chao-200) >= math.Abs(plug-200) {
		t.Fatalf("Chao1 (%v) did not improve on plug-in (%v) toward 200", chao, plug)
	}
}

func TestGoodTuringUnseen(t *testing.T) {
	// Every sample distinct: unseen mass estimate 1.
	c := oracle.NewCounts(100, []int{1, 2, 3, 4})
	if got := GoodTuringUnseen(c); got != 1 {
		t.Fatalf("all-singletons unseen = %v", got)
	}
	// All samples equal: no singletons, unseen estimate 0.
	c2 := oracle.NewCounts(100, []int{5, 5, 5, 5})
	if got := GoodTuringUnseen(c2); got != 0 {
		t.Fatalf("no-singleton unseen = %v", got)
	}
	if got := GoodTuringUnseen(oracle.NewCounts(10, nil)); got != 1 {
		t.Fatalf("empty-sample unseen = %v", got)
	}
}

func TestGoodTuringTracksTruth(t *testing.T) {
	// Uniform over 1000, 500 samples: true unseen mass ≈ e^{-0.5}·... the
	// expected unseen mass is (1-1/1000)^500 ≈ 0.606; Good–Turing should
	// land near it.
	r := rng.New(2)
	d, _ := lowerbound.SupportInstance(1000, 1000)
	s := oracle.NewSampler(d, r)
	sum := 0.0
	const reps = 60
	for i := 0; i < reps; i++ {
		c := oracle.NewCounts(1000, oracle.DrawN(s, 500))
		sum += GoodTuringUnseen(c)
	}
	got := sum / reps
	want := math.Pow(1-1.0/1000, 500)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("Good–Turing unseen = %v, want ~%v", got, want)
	}
}

func TestPromiseDecision(t *testing.T) {
	r := rng.New(3)
	m := 120
	small, _ := lowerbound.SupportInstance(m, lowerbound.SmallSupport(m))
	large, _ := lowerbound.SupportInstance(m, lowerbound.LargeSupport(m))
	for trial := 0; trial < 10; trial++ {
		sSmall := oracle.NewSampler(small, r.Split())
		isLarge, _, err := PromiseDecision(sSmall, m, 5)
		if err != nil {
			t.Fatal(err)
		}
		if isLarge {
			t.Fatal("small side classified large")
		}
		sLarge := oracle.NewSampler(large, r.Split())
		isLarge, distinct, err := PromiseDecision(sLarge, m, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !isLarge {
			t.Fatalf("large side classified small (distinct=%d)", distinct)
		}
	}
	if _, _, err := PromiseDecision(oracle.NewSampler(small, r), 0, 5); err == nil {
		t.Fatal("m=0 accepted")
	}
}
