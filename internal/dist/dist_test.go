package dist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/intervals"
	"repro/internal/rng"
)

const eps = 1e-12

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomPC builds a random piecewise-constant distribution (normalized).
func randomPC(r *rng.RNG, n, maxPieces int) *PiecewiseConstant {
	cuts := make([]int, r.Intn(maxPieces))
	for i := range cuts {
		cuts[i] = 1 + r.Intn(n-1)
	}
	p := intervals.FromBoundaries(n, cuts)
	masses := make([]float64, p.Count())
	total := 0.0
	for j := range masses {
		masses[j] = r.Float64() + 0.01
		total += masses[j]
	}
	for j := range masses {
		masses[j] /= total
	}
	d, err := FromWeights(p, masses)
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewDenseValidation(t *testing.T) {
	if _, err := NewDense(nil); err == nil {
		t.Fatal("empty vector accepted")
	}
	if _, err := NewDense([]float64{0.5, -0.1}); err == nil {
		t.Fatal("negative mass accepted")
	}
	if _, err := NewDense([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := NewDense([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
	d, err := NewDense([]float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.Prob(1) != 0.75 {
		t.Fatal("dense accessors wrong")
	}
}

func TestNewPiecewiseConstantValidation(t *testing.T) {
	iv := func(lo, hi int) intervals.Interval { return intervals.Interval{Lo: lo, Hi: hi} }
	if _, err := NewPiecewiseConstant(10, []Piece{{iv(0, 5), 0.5}, {iv(5, 10), 0.5}}); err != nil {
		t.Fatalf("valid PC rejected: %v", err)
	}
	bad := [][]Piece{
		{{iv(0, 5), 0.5}, {iv(6, 10), 0.5}},
		{{iv(0, 5), 0.5}},
		{{iv(0, 10), -1}},
		{},
	}
	for i, pieces := range bad {
		if _, err := NewPiecewiseConstant(10, pieces); err == nil {
			t.Fatalf("bad PC %d accepted", i)
		}
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(8)
	for i := 0; i < 8; i++ {
		if !approx(u.Prob(i), 0.125, eps) {
			t.Fatalf("Prob(%d) = %v", i, u.Prob(i))
		}
	}
	if !approx(TotalMass(u), 1, eps) {
		t.Fatal("uniform mass != 1")
	}
}

func TestPointMass(t *testing.T) {
	for _, i := range []int{0, 3, 9} {
		d := PointMass(10, i)
		if !approx(d.Prob(i), 1, eps) {
			t.Fatalf("PointMass(10,%d).Prob(%d) = %v", i, i, d.Prob(i))
		}
		if !approx(TotalMass(d), 1, eps) {
			t.Fatal("point mass total != 1")
		}
		if Support(d) != 1 {
			t.Fatalf("support = %d", Support(d))
		}
	}
}

func TestPCIntervalMassMatchesDense(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 10 + r.Intn(100)
		pc := randomPC(r, n, 8)
		dense := ToDense(pc)
		for q := 0; q < 30; q++ {
			lo := r.Intn(n)
			hi := lo + r.Intn(n-lo+1)
			iv := intervals.Interval{Lo: lo, Hi: hi}
			if !approx(pc.IntervalMass(iv), dense.IntervalMass(iv), 1e-9) {
				t.Fatalf("interval mass mismatch on %v: %v vs %v", iv, pc.IntervalMass(iv), dense.IntervalMass(iv))
			}
		}
		for i := 0; i < n; i++ {
			if !approx(pc.Prob(i), dense.Prob(i), 1e-12) {
				t.Fatalf("prob mismatch at %d", i)
			}
		}
	}
}

func TestCompact(t *testing.T) {
	iv := func(lo, hi int) intervals.Interval { return intervals.Interval{Lo: lo, Hi: hi} }
	// Pieces 0 and 1 have equal element probability 0.05; they must merge.
	d := MustPiecewiseConstant(10, []Piece{
		{iv(0, 2), 0.1}, {iv(2, 6), 0.2}, {iv(6, 10), 0.7},
	})
	c := d.Compact()
	if c.PieceCount() != 2 {
		t.Fatalf("compact pieces = %d, want 2", c.PieceCount())
	}
	if TV(d, c) > eps {
		t.Fatal("compact changed the distribution")
	}
}

func TestToPiecewiseConstant(t *testing.T) {
	d := MustDense([]float64{0, 0, 0.5, 0.5, 0, 0.25, 0.25, 0.25})
	// Masses differ across positions but VALUES matter: runs are
	// {0,0}, {0.5,0.5}, {0}, {0.25,0.25,0.25} → wait, 0.25*... values:
	// 0,0,0.5,0.5,0,0.25,0.25,0.25 → 4 runs (two zero runs are separated).
	pc := d.ToPiecewiseConstant()
	if pc.PieceCount() != 4 {
		t.Fatalf("pieces = %d, want 4", pc.PieceCount())
	}
	if TV(d, pc) > eps {
		t.Fatal("round trip changed the distribution")
	}
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(60)
		orig := randomPC(r, n, 8)
		back := ToDense(orig).ToPiecewiseConstant()
		if TV(orig, back) > 1e-12 {
			t.Fatal("PC -> Dense -> PC round trip drifted")
		}
	}
}

func TestTVBasics(t *testing.T) {
	u := Uniform(4)
	if !approx(TV(u, u), 0, eps) {
		t.Fatal("TV(u,u) != 0")
	}
	p := MustDense([]float64{1, 0, 0, 0})
	q := MustDense([]float64{0, 0, 0, 1})
	if !approx(TV(p, q), 1, eps) {
		t.Fatalf("TV of disjoint points = %v", TV(p, q))
	}
	if !approx(TV(u, p), 0.75, eps) {
		t.Fatalf("TV(uniform, point) = %v, want 0.75", TV(u, p))
	}
}

func TestTVProperties(t *testing.T) {
	r := rng.New(12)
	err := quick.Check(func(seed uint64) bool {
		rr := rng.New(seed)
		n := 5 + rr.Intn(60)
		a, b, c := randomPC(rr, n, 6), randomPC(rr, n, 6), randomPC(rr, n, 6)
		tvAB, tvBA := TV(a, b), TV(b, a)
		if !approx(tvAB, tvBA, 1e-12) {
			return false // symmetry
		}
		if tvAB < 0 || tvAB > 1+1e-12 {
			return false // range
		}
		if TV(a, c) > tvAB+TV(b, c)+1e-9 {
			return false // triangle inequality
		}
		return true
	}, &quick.Config{MaxCount: 150, Rand: nil})
	_ = r
	if err != nil {
		t.Fatal(err)
	}
}

func TestTVMixedRepresentations(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 40; trial++ {
		n := 10 + r.Intn(80)
		a := randomPC(r, n, 7)
		b := randomPC(r, n, 7)
		want := TV(ToDense(a), ToDense(b))
		if got := TV(a, b); !approx(got, want, 1e-9) {
			t.Fatalf("PC-PC TV = %v, dense reference = %v", got, want)
		}
		if got := TV(a, ToDense(b)); !approx(got, want, 1e-9) {
			t.Fatalf("PC-dense TV = %v, want %v", got, want)
		}
	}
}

func TestTVDomainSplitsAdditively(t *testing.T) {
	r := rng.New(14)
	for trial := 0; trial < 40; trial++ {
		n := 20 + r.Intn(50)
		a, b := randomPC(r, n, 6), randomPC(r, n, 6)
		cut := 1 + r.Intn(n-1)
		left := intervals.NewDomain(n, []intervals.Interval{{Lo: 0, Hi: cut}})
		right := intervals.NewDomain(n, []intervals.Interval{{Lo: cut, Hi: n}})
		total := TVDomain(a, b, left) + TVDomain(a, b, right)
		if !approx(total, TV(a, b), 1e-9) {
			t.Fatalf("TV not additive over split: %v vs %v", total, TV(a, b))
		}
	}
}

func TestTVDomainEmpty(t *testing.T) {
	a, b := Uniform(10), PointMass(10, 3)
	if got := TVDomain(a, b, intervals.EmptyDomain(10)); got != 0 {
		t.Fatalf("TV over empty domain = %v", got)
	}
}

func TestChiSqKnownValue(t *testing.T) {
	// dχ²(p ‖ u) for u uniform over 2: Σ (p_i - 0.5)²/0.5.
	p := MustDense([]float64{0.75, 0.25})
	u := Uniform(2)
	want := (0.25*0.25)/0.5 + (0.25*0.25)/0.5
	if got := ChiSq(p, u); !approx(got, want, eps) {
		t.Fatalf("ChiSq = %v, want %v", got, want)
	}
}

func TestChiSqAsymmetric(t *testing.T) {
	p := MustDense([]float64{0.9, 0.1})
	q := MustDense([]float64{0.5, 0.5})
	if approx(ChiSq(p, q), ChiSq(q, p), 1e-9) {
		t.Fatal("χ² should be asymmetric here")
	}
}

func TestChiSqZeroDenominator(t *testing.T) {
	p := MustDense([]float64{0.5, 0.5})
	q := MustDense([]float64{1, 0})
	if !math.IsInf(ChiSq(p, q), 1) {
		t.Fatal("χ² against zero-mass support should be +Inf")
	}
	// Both zero on the second element: finite.
	p2 := MustDense([]float64{1, 0})
	if math.IsInf(ChiSq(p2, q), 1) {
		t.Fatal("χ² should ignore jointly-zero elements")
	}
}

func TestChiSqDominatesTVSquared(t *testing.T) {
	// Cauchy-Schwarz: dTV(p,q)² <= dχ²(p‖q)/4 for distributions.
	r := rng.New(15)
	for trial := 0; trial < 60; trial++ {
		n := 5 + r.Intn(40)
		p, q := randomPC(r, n, 6), randomPC(r, n, 6)
		tv := TV(p, q)
		cs := ChiSq(p, q)
		if tv*tv > cs/4+1e-9 {
			t.Fatalf("χ² bound violated: tv=%v cs=%v", tv, cs)
		}
	}
}

func TestHellingerKnownValues(t *testing.T) {
	u := Uniform(2)
	if !approx(HellingerSquared(u, u), 0, eps) {
		t.Fatal("self Hellinger != 0")
	}
	p := MustDense([]float64{1, 0})
	q := MustDense([]float64{0, 1})
	// Disjoint supports: H² = ½(1 + 1) = 1.
	if !approx(HellingerSquared(p, q), 1, eps) {
		t.Fatalf("disjoint H² = %v", HellingerSquared(p, q))
	}
}

func TestHellingerTVSandwich(t *testing.T) {
	// H² <= TV <= √2·H for all distribution pairs.
	r := rng.New(25)
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(40)
		a, b := randomPC(r, n, 6), randomPC(r, n, 6)
		h2 := HellingerSquared(a, b)
		tv := TV(a, b)
		if h2 > tv+1e-9 {
			t.Fatalf("H² %v > TV %v", h2, tv)
		}
		if tv > math.Sqrt2*math.Sqrt(h2)+1e-9 {
			t.Fatalf("TV %v > √2·H %v", tv, math.Sqrt2*math.Sqrt(h2))
		}
	}
}

func TestKLKnownValuesAndPinsker(t *testing.T) {
	p := MustDense([]float64{0.75, 0.25})
	u := Uniform(2)
	want := 0.75*math.Log(1.5) + 0.25*math.Log(0.5)
	if !approx(KL(p, u), want, 1e-12) {
		t.Fatalf("KL = %v, want %v", KL(p, u), want)
	}
	if !approx(KL(u, u), 0, eps) {
		t.Fatal("self KL != 0")
	}
	// Zero in the second argument where the first has mass: +Inf.
	q := MustDense([]float64{1, 0})
	if !math.IsInf(KL(p, q), 1) {
		t.Fatal("KL against missing support should be +Inf")
	}
	// Zero in the first argument is fine.
	if math.IsInf(KL(q, p), 1) {
		t.Fatal("KL with zero numerator mass should be finite")
	}
	// Pinsker: TV <= √(KL/2) on random pairs with full support.
	r := rng.New(26)
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(30)
		a, b := randomPC(r, n, 5), randomPC(r, n, 5)
		if tv, kl := TV(a, b), KL(a, b); tv > math.Sqrt(kl/2)+1e-9 {
			t.Fatalf("Pinsker violated: TV %v, KL %v", tv, kl)
		}
	}
}

func TestL2AndLInf(t *testing.T) {
	p := MustDense([]float64{0.5, 0.5, 0, 0})
	q := MustDense([]float64{0.25, 0.25, 0.25, 0.25})
	if !approx(L2Squared(p, q), 4*0.0625, eps) {
		t.Fatalf("L2² = %v", L2Squared(p, q))
	}
	if !approx(LInf(p, q), 0.25, eps) {
		t.Fatalf("L∞ = %v", LInf(p, q))
	}
	if !approx(L1(p, q), 1.0, eps) {
		t.Fatalf("L1 = %v", L1(p, q))
	}
}

func TestMix(t *testing.T) {
	p := MustDense([]float64{1, 0})
	q := MustDense([]float64{0, 1})
	m := Mix(0.3, p, q)
	if !approx(m.Prob(0), 0.3, eps) || !approx(m.Prob(1), 0.7, eps) {
		t.Fatalf("mix = %v, %v", m.Prob(0), m.Prob(1))
	}
}

func TestMixPCMatchesDense(t *testing.T) {
	r := rng.New(16)
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(50)
		a, b := randomPC(r, n, 5), randomPC(r, n, 5)
		alpha := r.Float64()
		got := MixPC(alpha, a, b)
		want := Mix(alpha, a, b)
		if TV(got, want) > 1e-9 {
			t.Fatalf("MixPC disagrees with Mix")
		}
	}
}

func TestNormalize(t *testing.T) {
	d := MustDense([]float64{2, 2, 4})
	nd := Normalize(d)
	if !approx(TotalMass(nd), 1, eps) {
		t.Fatal("normalize mass != 1")
	}
	if !approx(nd.Prob(2), 0.5, eps) {
		t.Fatalf("normalized prob = %v", nd.Prob(2))
	}
	pc := MustPiecewiseConstant(4, []Piece{{intervals.Interval{Lo: 0, Hi: 4}, 5}})
	npc := Normalize(pc)
	if !approx(TotalMass(npc), 1, eps) {
		t.Fatal("PC normalize mass != 1")
	}
	if _, ok := npc.(*PiecewiseConstant); !ok {
		t.Fatal("PC normalize should stay piecewise-constant")
	}
}

func TestFlattenPreservesIntervalMasses(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 40; trial++ {
		n := 10 + r.Intn(60)
		d := randomPC(r, n, 10)
		cuts := make([]int, r.Intn(6))
		for i := range cuts {
			cuts[i] = 1 + r.Intn(n-1)
		}
		part := intervals.FromBoundaries(n, cuts)
		flat := Flatten(d, part)
		for j := 0; j < part.Count(); j++ {
			iv := part.Interval(j)
			if !approx(flat.IntervalMass(iv), d.IntervalMass(iv), 1e-9) {
				t.Fatalf("flatten changed mass of %v", iv)
			}
		}
		if !approx(TotalMass(flat), TotalMass(d), 1e-9) {
			t.Fatal("flatten changed total mass")
		}
	}
}

func TestFlattenIdempotentOnHistogram(t *testing.T) {
	// Flattening a distribution over its own partition is the identity.
	r := rng.New(18)
	d := randomPC(r, 50, 6)
	flat := Flatten(d, d.Partition())
	if TV(d, flat) > eps {
		t.Fatal("flatten over own partition changed distribution")
	}
}

func TestFlattenExcept(t *testing.T) {
	// d non-constant on [0,4); flatten except interval 0 keeps it intact.
	d := MustDense([]float64{0.4, 0.1, 0.3, 0.2})
	part := intervals.FromBoundaries(4, []int{2})
	got := FlattenExcept(d, part, map[int]bool{0: true})
	if !approx(got.Prob(0), 0.4, eps) || !approx(got.Prob(1), 0.1, eps) {
		t.Fatal("excepted interval was flattened")
	}
	if !approx(got.Prob(2), 0.25, eps) || !approx(got.Prob(3), 0.25, eps) {
		t.Fatal("non-excepted interval not flattened")
	}
}

func TestSupport(t *testing.T) {
	d := MustDense([]float64{0, 0.5, 0, 0.5, 0})
	if Support(d) != 2 {
		t.Fatalf("support = %d", Support(d))
	}
	if Support(Uniform(7)) != 7 {
		t.Fatal("uniform support != n")
	}
}

func TestDomainMass(t *testing.T) {
	d := Uniform(10)
	g := intervals.NewDomain(10, []intervals.Interval{{Lo: 0, Hi: 3}, {Lo: 7, Hi: 9}})
	if !approx(DomainMass(d, g), 0.5, eps) {
		t.Fatalf("DomainMass = %v", DomainMass(d, g))
	}
}

func TestMismatchedDomainsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TV over mismatched domains did not panic")
		}
	}()
	TV(Uniform(3), Uniform(4))
}

func TestPCProbPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Prob out of range did not panic")
		}
	}()
	Uniform(3).Prob(3)
}

func TestConditional(t *testing.T) {
	d := MustDense([]float64{0.1, 0.2, 0.3, 0.4})
	g := intervals.NewDomain(4, []intervals.Interval{{Lo: 1, Hi: 3}})
	c := Conditional(d, g)
	if !approx(c.Prob(0), 0, eps) || !approx(c.Prob(3), 0, eps) {
		t.Fatal("mass outside the domain")
	}
	if !approx(c.Prob(1), 0.4, eps) || !approx(c.Prob(2), 0.6, eps) {
		t.Fatalf("conditional masses: %v %v", c.Prob(1), c.Prob(2))
	}
	if !approx(TotalMass(c), 1, eps) {
		t.Fatal("conditional not normalized")
	}
	// Conditioning on the full domain is the identity (for a distribution).
	full := Conditional(d, intervals.FullDomain(4))
	if TV(d, full) > eps {
		t.Fatal("full-domain conditioning changed the distribution")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero-mass conditioning did not panic")
			}
		}()
		Conditional(MustDense([]float64{1, 0}), intervals.NewDomain(2, []intervals.Interval{{Lo: 1, Hi: 2}}))
	}()
}

func TestConditionalMatchesOracleView(t *testing.T) {
	// The conditional distribution is what oracle.Conditional samples:
	// spot-check per-element proportions on a random instance.
	r := rng.New(27)
	d := randomPC(r, 60, 6)
	g := intervals.NewDomain(60, []intervals.Interval{{Lo: 10, Hi: 25}, {Lo: 40, Hi: 55}})
	c := Conditional(d, g)
	mass := DomainMass(d, g)
	for i := 0; i < 60; i++ {
		want := 0.0
		if g.Contains(i) {
			want = d.Prob(i) / mass
		}
		if !approx(c.Prob(i), want, 1e-12) {
			t.Fatalf("element %d: %v vs %v", i, c.Prob(i), want)
		}
	}
}
