// Package dist provides discrete probability distributions over the domain
// {0, ..., n-1} together with the distance machinery the paper uses: total
// variation (ℓ1/2) and the asymmetric χ² distance, both over the full
// domain and restricted to a sub-domain (Section 2 and footnote 6 of the
// paper).
//
// Two representations are provided. Dense stores one probability per
// element and is exact for small n. PiecewiseConstant stores one mass per
// constant piece; a k-histogram over n = 2^20 elements costs O(k) memory,
// which is what makes the large-n experiments feasible. All distance
// computations are representation-generic through the Distribution
// interface and cost O(#constant runs) rather than O(n) where possible.
package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/intervals"
)

// Distribution is a non-negative measure on {0, ..., n-1}. A probability
// distribution has TotalMass 1, but sub-distributions (restrictions to a
// sub-domain, as used by the sieve) are also representable.
type Distribution interface {
	// N returns the domain size.
	N() int
	// Prob returns the mass of element i. It panics outside [0, n).
	Prob(i int) float64
	// RunEnd returns some j > i such that Prob is constant on [i, j).
	// Walk-based algorithms use it to skip constant stretches.
	RunEnd(i int) int
	// IntervalMass returns the total mass of the half-open interval.
	IntervalMass(iv intervals.Interval) float64
}

// Dense is a distribution stored as one float64 per domain element.
type Dense struct {
	p      []float64
	prefix []float64 // prefix[i] = sum of p[0..i-1]; len n+1
}

// NewDense validates p (non-negative, finite) and returns the Dense
// distribution with exactly those masses. It does not normalize; use
// Normalize for that.
func NewDense(p []float64) (*Dense, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("dist: empty probability vector")
	}
	for i, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dist: invalid mass %v at element %d", v, i)
		}
	}
	d := &Dense{p: append([]float64(nil), p...)}
	d.rebuildPrefix()
	return d, nil
}

// MustDense is NewDense but panics on error.
func MustDense(p []float64) *Dense {
	d, err := NewDense(p)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *Dense) rebuildPrefix() {
	d.prefix = make([]float64, len(d.p)+1)
	for i, v := range d.p {
		d.prefix[i+1] = d.prefix[i] + v
	}
}

// N returns the domain size.
func (d *Dense) N() int { return len(d.p) }

// Prob returns the mass of element i.
func (d *Dense) Prob(i int) float64 { return d.p[i] }

// RunEnd returns i+1: Dense makes no constant-run promises.
func (d *Dense) RunEnd(i int) int { return i + 1 }

// IntervalMass returns the mass of iv via the prefix sums.
func (d *Dense) IntervalMass(iv intervals.Interval) float64 {
	iv = iv.Intersect(intervals.Interval{Lo: 0, Hi: len(d.p)})
	if iv.Empty() {
		return 0
	}
	return d.prefix[iv.Hi] - d.prefix[iv.Lo]
}

// Probs returns a copy of the underlying probability vector.
func (d *Dense) Probs() []float64 { return append([]float64(nil), d.p...) }

// Piece is one constant stretch of a PiecewiseConstant distribution: the
// elements of Iv share the total mass Mass uniformly.
type Piece struct {
	Iv   intervals.Interval
	Mass float64
}

// PiecewiseConstant is a distribution that is constant on each interval of
// an underlying partition. A k-histogram is exactly a PiecewiseConstant
// with k pieces and total mass 1.
type PiecewiseConstant struct {
	n      int
	pieces []Piece
	prefix []float64 // prefix[j] = mass of pieces[0..j-1]; len pieces+1
	starts []int     // starts[j] = pieces[j].Iv.Lo
}

// NewPiecewiseConstant validates that the pieces' intervals form a
// partition of [0, n) and that masses are non-negative and finite.
func NewPiecewiseConstant(n int, pieces []Piece) (*PiecewiseConstant, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: domain size %d must be positive", n)
	}
	if len(pieces) == 0 {
		return nil, fmt.Errorf("dist: no pieces")
	}
	prev := 0
	for j, pc := range pieces {
		if pc.Iv.Lo != prev || pc.Iv.Empty() {
			return nil, fmt.Errorf("dist: piece %d interval %v does not continue partition at %d", j, pc.Iv, prev)
		}
		if pc.Mass < 0 || math.IsNaN(pc.Mass) || math.IsInf(pc.Mass, 0) {
			return nil, fmt.Errorf("dist: piece %d has invalid mass %v", j, pc.Mass)
		}
		prev = pc.Iv.Hi
	}
	if prev != n {
		return nil, fmt.Errorf("dist: pieces cover [0,%d), domain is [0,%d)", prev, n)
	}
	pc := &PiecewiseConstant{n: n, pieces: append([]Piece(nil), pieces...)}
	pc.rebuild()
	return pc, nil
}

// MustPiecewiseConstant is NewPiecewiseConstant but panics on error.
func MustPiecewiseConstant(n int, pieces []Piece) *PiecewiseConstant {
	d, err := NewPiecewiseConstant(n, pieces)
	if err != nil {
		panic(err)
	}
	return d
}

// FromWeights builds the piecewise-constant distribution that is flat on
// each interval of p with the given per-interval masses.
func FromWeights(p *intervals.Partition, masses []float64) (*PiecewiseConstant, error) {
	if len(masses) != p.Count() {
		return nil, fmt.Errorf("dist: %d masses for %d intervals", len(masses), p.Count())
	}
	pieces := make([]Piece, p.Count())
	for j := range pieces {
		pieces[j] = Piece{Iv: p.Interval(j), Mass: masses[j]}
	}
	return NewPiecewiseConstant(p.N(), pieces)
}

// Uniform returns the uniform distribution over [0, n).
func Uniform(n int) *PiecewiseConstant {
	return MustPiecewiseConstant(n, []Piece{{Iv: intervals.Interval{Lo: 0, Hi: n}, Mass: 1}})
}

// PointMass returns the distribution concentrated on element i of [0, n).
func PointMass(n, i int) *PiecewiseConstant {
	pieces := make([]Piece, 0, 3)
	if i > 0 {
		pieces = append(pieces, Piece{Iv: intervals.Interval{Lo: 0, Hi: i}})
	}
	pieces = append(pieces, Piece{Iv: intervals.Interval{Lo: i, Hi: i + 1}, Mass: 1})
	if i+1 < n {
		pieces = append(pieces, Piece{Iv: intervals.Interval{Lo: i + 1, Hi: n}})
	}
	return MustPiecewiseConstant(n, pieces)
}

func (d *PiecewiseConstant) rebuild() {
	d.prefix = make([]float64, len(d.pieces)+1)
	d.starts = make([]int, len(d.pieces))
	for j, pc := range d.pieces {
		d.prefix[j+1] = d.prefix[j] + pc.Mass
		d.starts[j] = pc.Iv.Lo
	}
}

// N returns the domain size.
func (d *PiecewiseConstant) N() int { return d.n }

// PieceCount returns the number of constant pieces (the histogram's k).
func (d *PiecewiseConstant) PieceCount() int { return len(d.pieces) }

// Pieces returns a copy of the piece list.
func (d *PiecewiseConstant) Pieces() []Piece { return append([]Piece(nil), d.pieces...) }

// pieceIndex returns the index of the piece containing element i.
func (d *PiecewiseConstant) pieceIndex(i int) int {
	return sort.SearchInts(d.starts, i+1) - 1
}

// Prob returns the mass of element i.
func (d *PiecewiseConstant) Prob(i int) float64 {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("dist: element %d outside [0,%d)", i, d.n))
	}
	pc := d.pieces[d.pieceIndex(i)]
	return pc.Mass / float64(pc.Iv.Len())
}

// RunEnd returns the end of the constant piece containing i.
func (d *PiecewiseConstant) RunEnd(i int) int {
	return d.pieces[d.pieceIndex(i)].Iv.Hi
}

// IntervalMass returns the mass of iv, splitting boundary pieces
// proportionally (pieces are flat, so the split is exact).
func (d *PiecewiseConstant) IntervalMass(iv intervals.Interval) float64 {
	iv = iv.Intersect(intervals.Interval{Lo: 0, Hi: d.n})
	if iv.Empty() {
		return 0
	}
	jLo := d.pieceIndex(iv.Lo)
	jHi := d.pieceIndex(iv.Hi - 1)
	if jLo == jHi {
		pc := d.pieces[jLo]
		return pc.Mass * float64(iv.Len()) / float64(pc.Iv.Len())
	}
	// Full pieces strictly between jLo and jHi, plus partial ends.
	total := d.prefix[jHi] - d.prefix[jLo+1]
	lo := d.pieces[jLo]
	total += lo.Mass * float64(lo.Iv.Hi-iv.Lo) / float64(lo.Iv.Len())
	hi := d.pieces[jHi]
	total += hi.Mass * float64(iv.Hi-hi.Iv.Lo) / float64(hi.Iv.Len())
	return total
}

// Partition returns the partition induced by the pieces.
func (d *PiecewiseConstant) Partition() *intervals.Partition {
	ivs := make([]intervals.Interval, len(d.pieces))
	for j, pc := range d.pieces {
		ivs[j] = pc.Iv
	}
	return intervals.MustPartition(d.n, ivs)
}

// Compact merges adjacent pieces whose element-probabilities are equal (to
// within 1e-15 relative tolerance), returning the canonical minimal-piece
// representation. The number of pieces of the result is the true
// "histogram complexity" of the distribution.
func (d *PiecewiseConstant) Compact() *PiecewiseConstant {
	out := make([]Piece, 0, len(d.pieces))
	for _, pc := range d.pieces {
		if len(out) > 0 {
			last := &out[len(out)-1]
			pLast := last.Mass / float64(last.Iv.Len())
			pCur := pc.Mass / float64(pc.Iv.Len())
			if nearlyEqual(pLast, pCur) {
				last.Iv.Hi = pc.Iv.Hi
				last.Mass += pc.Mass
				continue
			}
		}
		out = append(out, pc)
	}
	return MustPiecewiseConstant(d.n, out)
}

func nearlyEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*scale || diff <= 1e-300
}

// ToPiecewiseConstant converts a Dense distribution to its minimal
// piecewise-constant representation by merging maximal runs of exactly
// equal values. Sparse or blocky dense vectors (e.g. permuted
// small-support instances) compress to few pieces.
func (d *Dense) ToPiecewiseConstant() *PiecewiseConstant {
	var pieces []Piece
	for i := 0; i < len(d.p); {
		j := i + 1
		for j < len(d.p) && d.p[j] == d.p[i] {
			j++
		}
		pieces = append(pieces, Piece{
			Iv:   intervals.Interval{Lo: i, Hi: j},
			Mass: d.p[i] * float64(j-i),
		})
		i = j
	}
	return MustPiecewiseConstant(len(d.p), pieces)
}

// ToDense materializes the distribution as a Dense vector (O(n) memory).
func ToDense(d Distribution) *Dense {
	p := make([]float64, d.N())
	for i := 0; i < len(p); {
		end := minInt(d.RunEnd(i), len(p))
		v := d.Prob(i)
		for ; i < end; i++ {
			p[i] = v
		}
	}
	return MustDense(p)
}

// TotalMass returns the mass of the whole domain.
func TotalMass(d Distribution) float64 {
	return d.IntervalMass(intervals.Interval{Lo: 0, Hi: d.N()})
}

// DomainMass returns the mass d assigns to the sub-domain g.
func DomainMass(d Distribution, g *intervals.Domain) float64 {
	total := 0.0
	for _, iv := range g.Intervals() {
		total += d.IntervalMass(iv)
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
