package dist

import (
	"fmt"
	"math"

	"repro/internal/intervals"
)

// CDF returns the cumulative probability P[X <= i] (so CDF(n-1) equals
// the total mass). It panics outside [0, n).
func CDF(d Distribution, i int) float64 {
	if i < 0 || i >= d.N() {
		panic(fmt.Sprintf("dist: CDF index %d outside [0,%d)", i, d.N()))
	}
	return d.IntervalMass(intervals.Interval{Lo: 0, Hi: i + 1})
}

// Quantile returns the smallest i with CDF(i) >= q·TotalMass, for
// q in [0, 1]. Binary search over the CDF: O(log n · cost(IntervalMass)).
func Quantile(d Distribution, q float64) int {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("dist: quantile fraction outside [0,1]")
	}
	target := q * TotalMass(d)
	lo, hi := 0, d.N()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if CDF(d, mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Mean returns the expected value Σ i·d(i) (for a normalized d).
func Mean(d Distribution) float64 {
	sum := 0.0
	n := d.N()
	for i := 0; i < n; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		p := d.Prob(i)
		if p != 0 {
			// Σ_{j=i}^{end-1} j = (i+end-1)(end-i)/2.
			sum += p * float64(i+end-1) * float64(end-i) / 2
		}
		i = end
	}
	return sum
}

// Variance returns the variance of the element index under d.
func Variance(d Distribution) float64 {
	mu := Mean(d)
	sum := 0.0
	n := d.N()
	for i := 0; i < n; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		p := d.Prob(i)
		if p != 0 {
			for j := i; j < end; j++ {
				dlt := float64(j) - mu
				sum += p * dlt * dlt
			}
		}
		i = end
	}
	return sum
}

// Entropy returns the Shannon entropy Σ −d(i)·log2 d(i) in bits.
func Entropy(d Distribution) float64 {
	sum := 0.0
	n := d.N()
	for i := 0; i < n; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		p := d.Prob(i)
		if p > 0 {
			sum -= float64(end-i) * p * math.Log2(p)
		}
		i = end
	}
	return sum
}

// Modality returns the number of "modes" of the probability mass function
// in the k-modal sense of the paper (Section 1.2 remark on Theorem 1.2):
// the number of maximal monotone runs of the pmf minus... concretely, the
// number of direction changes (up→down or down→up) plus one, over the
// value sequence with plateaus ignored. The uniform distribution has
// modality 1; an alternating comb over n elements has modality ~n−1.
// A distribution is "k-modal" when Modality <= k+1 in this counting.
func Modality(d Distribution) int {
	n := d.N()
	prev := math.NaN()
	lastDir := 0 // -1 falling, +1 rising, 0 unknown
	changes := 0
	for i := 0; i < n; {
		end := d.RunEnd(i)
		if end > n {
			end = n
		}
		v := d.Prob(i)
		if !math.IsNaN(prev) && v != prev {
			dir := 1
			if v < prev {
				dir = -1
			}
			if lastDir != 0 && dir != lastDir {
				changes++
			}
			lastDir = dir
		}
		prev = v
		i = end
	}
	return changes + 1
}
