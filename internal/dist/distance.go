package dist

import (
	"math"

	"repro/internal/intervals"
)

// walk visits the maximal stretches of [lo, hi) on which both a and b are
// constant, calling f(lo, hi, pa, pb) with the per-element probabilities.
// The cost is O(#runs of a + #runs of b) within the range.
func walk(a, b Distribution, lo, hi int, f func(lo, hi int, pa, pb float64)) {
	for i := lo; i < hi; {
		end := minInt(minInt(a.RunEnd(i), b.RunEnd(i)), hi)
		f(i, end, a.Prob(i), b.Prob(i))
		i = end
	}
}

// walkDomain is walk over every interval of a sub-domain.
func walkDomain(a, b Distribution, g *intervals.Domain, f func(lo, hi int, pa, pb float64)) {
	for _, iv := range g.Intervals() {
		walk(a, b, iv.Lo, iv.Hi, f)
	}
}

// TV returns the total variation distance (half the ℓ1 distance) between a
// and b. For genuine probability distributions it lies in [0, 1].
func TV(a, b Distribution) float64 {
	return TVDomain(a, b, intervals.FullDomain(checkSameN(a, b)))
}

// TVDomain returns the total variation distance restricted to the
// sub-domain g: half the ℓ1 distance over g's elements (footnote 6 of the
// paper).
func TVDomain(a, b Distribution, g *intervals.Domain) float64 {
	checkSameN(a, b)
	sum := 0.0
	walkDomain(a, b, g, func(lo, hi int, pa, pb float64) {
		sum += float64(hi-lo) * math.Abs(pa-pb)
	})
	return sum / 2
}

// L1 returns the ℓ1 distance (twice TV).
func L1(a, b Distribution) float64 { return 2 * TV(a, b) }

// L2Squared returns the squared ℓ2 distance between a and b.
func L2Squared(a, b Distribution) float64 {
	sum := 0.0
	walk(a, b, 0, checkSameN(a, b), func(lo, hi int, pa, pb float64) {
		d := pa - pb
		sum += float64(hi-lo) * d * d
	})
	return sum
}

// LInf returns the ℓ∞ distance between a and b.
func LInf(a, b Distribution) float64 {
	worst := 0.0
	walk(a, b, 0, checkSameN(a, b), func(lo, hi int, pa, pb float64) {
		if d := math.Abs(pa - pb); d > worst {
			worst = d
		}
	})
	return worst
}

// ChiSq returns the asymmetric χ² distance dχ²(a ‖ b) = Σ (a(i)-b(i))²/b(i)
// (Section 2). Elements where b(i) = 0: a zero a(i) contributes 0, a
// positive a(i) makes the distance +Inf.
func ChiSq(a, b Distribution) float64 {
	return ChiSqDomain(a, b, intervals.FullDomain(checkSameN(a, b)))
}

// ChiSqDomain returns dχ²(a ‖ b) restricted to the sub-domain g
// (footnote 6 of the paper).
func ChiSqDomain(a, b Distribution, g *intervals.Domain) float64 {
	checkSameN(a, b)
	sum := 0.0
	walkDomain(a, b, g, func(lo, hi int, pa, pb float64) {
		if pb == 0 {
			if pa != 0 {
				sum = math.Inf(1)
			}
			return
		}
		d := pa - pb
		sum += float64(hi-lo) * d * d / pb
	})
	return sum
}

// HellingerSquared returns the squared Hellinger distance
// H²(a, b) = ½·Σ (√a(i) − √b(i))², which satisfies H² <= dTV <= √2·H —
// the standard companion metric in the distribution-testing literature.
func HellingerSquared(a, b Distribution) float64 {
	sum := 0.0
	walk(a, b, 0, checkSameN(a, b), func(lo, hi int, pa, pb float64) {
		d := math.Sqrt(pa) - math.Sqrt(pb)
		sum += float64(hi-lo) * d * d
	})
	return sum / 2
}

// KL returns the Kullback–Leibler divergence KL(a ‖ b) = Σ a(i)·ln(a(i)/b(i))
// in nats. Elements with a(i) = 0 contribute 0; a(i) > 0 with b(i) = 0
// makes the divergence +Inf. Pinsker's inequality dTV <= √(KL/2) relates
// it to the tester's metric.
func KL(a, b Distribution) float64 {
	sum := 0.0
	walk(a, b, 0, checkSameN(a, b), func(lo, hi int, pa, pb float64) {
		if pa == 0 {
			return
		}
		if pb == 0 {
			sum = math.Inf(1)
			return
		}
		sum += float64(hi-lo) * pa * math.Log(pa/pb)
	})
	return sum
}

// Mix returns alpha*a + (1-alpha)*b as a Dense distribution.
func Mix(alpha float64, a, b Distribution) *Dense {
	n := checkSameN(a, b)
	p := make([]float64, n)
	walk(a, b, 0, n, func(lo, hi int, pa, pb float64) {
		v := alpha*pa + (1-alpha)*pb
		for i := lo; i < hi; i++ {
			p[i] = v
		}
	})
	return MustDense(p)
}

// MixPC returns alpha*a + (1-alpha)*b as a PiecewiseConstant over the common
// refinement of the two piece structures; O(pieces), not O(n).
func MixPC(alpha float64, a, b *PiecewiseConstant) *PiecewiseConstant {
	n := checkSameN(a, b)
	pieces := make([]Piece, 0, a.PieceCount()+b.PieceCount())
	walk(a, b, 0, n, func(lo, hi int, pa, pb float64) {
		v := alpha*pa + (1-alpha)*pb
		pieces = append(pieces, Piece{Iv: intervals.Interval{Lo: lo, Hi: hi}, Mass: v * float64(hi-lo)})
	})
	return MustPiecewiseConstant(n, pieces)
}

// Conditional returns the distribution of d conditioned on the sub-domain
// g: d's mass inside g renormalized, zero outside — the distributional
// counterpart of oracle.Conditional. It panics if g carries no mass
// under d.
func Conditional(d Distribution, g *intervals.Domain) *Dense {
	mass := DomainMass(d, g)
	if mass <= 0 {
		panic("dist: conditioning on a zero-mass domain")
	}
	p := make([]float64, d.N())
	for _, iv := range g.Intervals() {
		for i := iv.Lo; i < iv.Hi; {
			end := d.RunEnd(i)
			if end > iv.Hi {
				end = iv.Hi
			}
			v := d.Prob(i) / mass
			for ; i < end; i++ {
				p[i] = v
			}
		}
	}
	return MustDense(p)
}

// Normalize returns d scaled to total mass 1. It panics if d has zero
// total mass.
func Normalize(d Distribution) Distribution {
	total := TotalMass(d)
	if total <= 0 {
		panic("dist: cannot normalize zero-mass distribution")
	}
	switch t := d.(type) {
	case *PiecewiseConstant:
		pieces := t.Pieces()
		for j := range pieces {
			pieces[j].Mass /= total
		}
		return MustPiecewiseConstant(t.n, pieces)
	default:
		p := make([]float64, d.N())
		for i := 0; i < len(p); {
			end := minInt(d.RunEnd(i), len(p))
			v := d.Prob(i) / total
			for ; i < end; i++ {
				p[i] = v
			}
		}
		return MustDense(p)
	}
}

// Flatten returns the flattening of d over partition p: the
// piecewise-constant distribution assigning each interval I of p the mass
// d(I) spread uniformly (the paper's D(I)/|I| operation).
func Flatten(d Distribution, p *intervals.Partition) *PiecewiseConstant {
	if d.N() != p.N() {
		panic("dist: flatten over mismatched domain")
	}
	pieces := make([]Piece, p.Count())
	for j := range pieces {
		iv := p.Interval(j)
		pieces[j] = Piece{Iv: iv, Mass: d.IntervalMass(iv)}
	}
	return MustPiecewiseConstant(d.N(), pieces)
}

// FlattenExcept returns the paper's D̃^J (Section 3.2): equal to d on the
// intervals of p whose indices appear in except, and equal to the flattening
// of d elsewhere. The result is Dense since the exempted intervals keep
// their original (arbitrary) values.
func FlattenExcept(d Distribution, p *intervals.Partition, except map[int]bool) *Dense {
	if d.N() != p.N() {
		panic("dist: flatten over mismatched domain")
	}
	probs := make([]float64, d.N())
	for j := 0; j < p.Count(); j++ {
		iv := p.Interval(j)
		if except[j] {
			for i := iv.Lo; i < iv.Hi; i++ {
				probs[i] = d.Prob(i)
			}
			continue
		}
		v := d.IntervalMass(iv) / float64(iv.Len())
		for i := iv.Lo; i < iv.Hi; i++ {
			probs[i] = v
		}
	}
	return MustDense(probs)
}

// Support returns the number of elements with positive mass.
func Support(d Distribution) int {
	count := 0
	for i := 0; i < d.N(); {
		end := minInt(d.RunEnd(i), d.N())
		if d.Prob(i) > 0 {
			count += end - i
		}
		i = end
	}
	return count
}

// checkSameN panics unless a and b share a domain size, which it returns.
func checkSameN(a, b Distribution) int {
	if a.N() != b.N() {
		panic("dist: distributions over different domain sizes")
	}
	return a.N()
}
