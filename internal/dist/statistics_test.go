package dist

import (
	"testing"

	"repro/internal/rng"
)

func TestCDF(t *testing.T) {
	d := MustDense([]float64{0.1, 0.2, 0.3, 0.4})
	wants := []float64{0.1, 0.3, 0.6, 1.0}
	for i, w := range wants {
		if got := CDF(d, i); !approx(got, w, eps) {
			t.Fatalf("CDF(%d) = %v, want %v", i, got, w)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("CDF out of range did not panic")
			}
		}()
		CDF(d, 4)
	}()
}

func TestCDFMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		d := randomPC(r, 5+r.Intn(60), 8)
		prev := 0.0
		for i := 0; i < d.N(); i++ {
			c := CDF(d, i)
			if c < prev-1e-12 {
				t.Fatalf("CDF decreased at %d", i)
			}
			prev = c
		}
		if !approx(prev, 1, 1e-9) {
			t.Fatalf("CDF(n-1) = %v", prev)
		}
	}
}

func TestQuantile(t *testing.T) {
	d := MustDense([]float64{0.25, 0.25, 0.25, 0.25})
	if Quantile(d, 0) != 0 || Quantile(d, 1) != 3 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(d, 0.5); got != 1 {
		t.Fatalf("median = %d", got)
	}
	// Point mass: every quantile is the atom.
	pm := PointMass(10, 7)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := Quantile(pm, q); got != 7 {
			t.Fatalf("point-mass quantile(%v) = %d", q, got)
		}
	}
}

func TestQuantileInverseProperty(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		d := randomPC(r, 10+r.Intn(50), 6)
		for _, q := range []float64{0.1, 0.3, 0.5, 0.9} {
			i := Quantile(d, q)
			if CDF(d, i) < q-1e-9 {
				t.Fatalf("CDF(Quantile(%v)) = %v < q", q, CDF(d, i))
			}
			if i > 0 && CDF(d, i-1) >= q+1e-9 {
				t.Fatalf("Quantile(%v) = %d not minimal", q, i)
			}
		}
	}
}

func TestMeanVarianceUniform(t *testing.T) {
	u := Uniform(10)
	if got := Mean(u); !approx(got, 4.5, 1e-9) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(u); !approx(got, 33.0/4.0, 1e-9) {
		// Var of uniform over 0..9: (n²−1)/12 = 99/12 = 8.25.
		t.Fatalf("Variance = %v", got)
	}
}

func TestMeanMatchesDense(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		pc := randomPC(r, 10+r.Intn(80), 7)
		dn := ToDense(pc)
		want := 0.0
		for i := 0; i < dn.N(); i++ {
			want += float64(i) * dn.Prob(i)
		}
		if got := Mean(pc); !approx(got, want, 1e-9) {
			t.Fatalf("Mean mismatch: %v vs %v", got, want)
		}
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(Uniform(8)); !approx(got, 3, 1e-9) {
		t.Fatalf("Entropy(uniform 8) = %v, want 3 bits", got)
	}
	if got := Entropy(PointMass(8, 3)); !approx(got, 0, 1e-9) {
		t.Fatalf("Entropy(point mass) = %v", got)
	}
	// Entropy is maximized by uniform.
	d := MustDense([]float64{0.5, 0.2, 0.2, 0.05, 0.05, 0, 0, 0})
	if Entropy(d) >= 3 {
		t.Fatal("skewed entropy should be below uniform")
	}
}

func TestModality(t *testing.T) {
	if got := Modality(Uniform(16)); got != 1 {
		t.Fatalf("uniform modality = %d", got)
	}
	// Monotone decreasing: one mode.
	if got := Modality(MustDense([]float64{0.4, 0.3, 0.2, 0.1})); got != 1 {
		t.Fatalf("monotone modality = %d", got)
	}
	// Single bump: up then down = one direction change + 1 = 2 in run
	// counting; the pmf 1,3,1 changes direction once.
	if got := Modality(MustDense([]float64{0.2, 0.6, 0.2})); got != 2 {
		t.Fatalf("bump modality = %d", got)
	}
	// Alternating comb over 8: directions flip at every step.
	comb := MustDense([]float64{0.25, 0, 0.25, 0, 0.25, 0, 0.25, 0})
	if got := Modality(comb); got != 7 {
		t.Fatalf("comb modality = %d", got)
	}
	// Plateaus are ignored: a staircase up is still unimodal.
	if got := Modality(MustDense([]float64{0.1, 0.1, 0.2, 0.2, 0.4})); got != 1 {
		t.Fatalf("staircase modality = %d", got)
	}
}

func TestModalityBoundsHistogramComplexity(t *testing.T) {
	// Modality <= piece count for piecewise-constant distributions: each
	// direction change needs a piece boundary.
	r := rng.New(4)
	for trial := 0; trial < 40; trial++ {
		d := randomPC(r, 10+r.Intn(100), 10)
		if Modality(d) > d.Compact().PieceCount() {
			t.Fatalf("modality %d > pieces %d", Modality(d), d.Compact().PieceCount())
		}
	}
}

func TestModalityOfPermutedSupport(t *testing.T) {
	// The Section 4.2 remark: a sprinkled support of ℓ isolated points has
	// modality ~2ℓ — far beyond any small k — which is how the Theorem 1.2
	// lower bound transfers to k-modal testing.
	r := rng.New(5)
	n, ell := 512, 20
	p := make([]float64, n)
	perm := r.Perm(n)
	for i := 0; i < ell; i++ {
		p[perm[i]] = 1.0 / float64(ell)
	}
	d := MustDense(p)
	if got := Modality(d); got < ell {
		t.Fatalf("sprinkled support modality = %d, want >= %d", got, ell)
	}
}

func TestStatisticsOnSubDistributions(t *testing.T) {
	// CDF/Quantile tolerate non-normalized inputs (mass 0.5).
	d := MustDense([]float64{0.25, 0.25})
	if got := CDF(d, 1); !approx(got, 0.5, eps) {
		t.Fatalf("CDF = %v", got)
	}
	if got := Quantile(d, 0.5); got != 0 {
		t.Fatalf("sub-distribution quantile = %d", got)
	}

}
