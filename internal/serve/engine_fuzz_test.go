package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/histtest/client"
	"repro/internal/serve"
)

// FuzzEngineSelection fuzzes the engine-selection path of the request
// validator: an arbitrary engine string must either be one of the
// registered names (run admitted and, on this trivial k >= n workload,
// accepted with zero draws) or be rejected with a 400 bad_request at
// admission time. Never a panic, never a 5xx, and never a silent
// fallback to the default engine — the registry is the whole contract.
//
// The workload keeps iterations cheap: k equals the domain size, so an
// admitted request takes the driver's trivial-accept path and runs no
// engine stages at all; the fuzz target therefore measures exactly the
// validation surface.
func FuzzEngineSelection(f *testing.F) {
	s := serve.New(serve.Config{Workers: 1})
	hs := httptest.NewServer(s.Handler())
	f.Cleanup(func() {
		hs.Close()
		s.Close()
	})

	for _, seed := range []string{"", "adk", "cdkl22", "ADK", "Cdkl22", "adk2", "cdkl22 ", " adk", "adk\x00", "default", "canonne16", "../adk", strings.Repeat("e", 4096)} {
		f.Add(seed)
	}
	registered := map[string]bool{"": true, "adk": true, "cdkl22": true}

	f.Fuzz(func(t *testing.T, engine string) {
		req := client.TestRequest{
			Spec:   &client.HistogramSpec{N: 16, Masses: []float64{1}},
			K:      16,
			Eps:    0.5,
			Engine: engine,
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Skip() // engine strings JSON cannot carry are not wire-reachable
		}
		resp, err := http.Post(hs.URL+"/v1/test", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()

		// JSON round-trips can rewrite invalid UTF-8, so judge by what the
		// server actually decoded.
		var decoded client.TestRequest
		if err := json.Unmarshal(body, &decoded); err != nil {
			t.Skip()
		}
		if registered[decoded.Engine] {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("engine %q: status %d, want 200", decoded.Engine, resp.StatusCode)
			}
			var res client.TestResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatalf("engine %q: decoding result: %v", decoded.Engine, err)
			}
			if !res.Accept || res.SamplesUsed != 0 {
				t.Fatalf("engine %q: trivial accept expected, got %+v", decoded.Engine, res)
			}
			return
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("engine %q: status %d, want 400 (no silent fallback)", decoded.Engine, resp.StatusCode)
		}
		var wire client.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			t.Fatalf("engine %q: decoding error body: %v", decoded.Engine, err)
		}
		if wire.Code != client.ErrCodeBadRequest {
			t.Fatalf("engine %q: code %q, want %q", decoded.Engine, wire.Code, client.ErrCodeBadRequest)
		}
	})
}
