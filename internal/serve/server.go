// Package serve implements the histd serving layer: an HTTP/JSON front
// end over the core tester (repro/internal/core) with a bounded worker
// pool, admission control, per-request deadlines, and graceful drain.
//
// Request lifecycle:
//
//	admission (queue slot or 429) → queue → worker (per-worker Arena,
//	core.TestContext under the request's context) → response
//
// Each worker owns one core.Arena for its whole lifetime, so the
// steady-state serving path inherits the allocation-free hot path of the
// arena/pool work (PR 2): after the first few requests per worker, a
// served run performs the same ~10² allocations a direct Arena.Test call
// does. Cancellation (client disconnect, per-request deadline, drain
// hard-stop) flows through core.TestContext's cancellation points, so a
// cancelled run returns within one sieve round and releases every pooled
// Counts buffer it acquired.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/histtest/client"
	"repro/internal/closeness"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default, applied by New.
type Config struct {
	// Workers is the worker-pool size — the number of tester runs
	// executing concurrently. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// beyond the ones running. A full queue is the admission-control
	// signal: further requests get 429 + Retry-After. 0 means 2×Workers.
	QueueDepth int
	// DefaultTimeout is the per-request deadline applied when the request
	// does not set one. 0 means 30s; negative means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines. 0 means 5m.
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 responses. 0 means 1s.
	RetryAfter time.Duration
	// SieveWorkers caps the WITHIN-request sieve fan-out a request may ask
	// for (TestRequest.Workers). Requests opt in per call (Workers > 1 in
	// the request); this only bounds what they may ask for. Now that the
	// sieve fan-out is de-contended (padded replicate rows, chunked
	// assignment, per-worker tallies) the cap is purely a
	// latency/throughput trade — results are bit-identical at every
	// worker count. The default (0) divides the machine among the pool:
	// max(1, GOMAXPROCS/Workers), so a saturated pool whose every
	// request opts in runs at most ~GOMAXPROCS sieve goroutines instead
	// of Workers×GOMAXPROCS. Set an explicit positive value to allow
	// more (favoring single-request latency over aggregate throughput),
	// 1 or a negative value to force every served sieve serial.
	SieveWorkers int
	// MaxBatch bounds the sub-requests of one /v1/test/stream call.
	// 0 means 256.
	MaxBatch int
	// MaxBodyBytes bounds request bodies. 0 means 1<<26 (64 MiB, roomy
	// enough for large replay datasets).
	MaxBodyBytes int64
	// MaxSamplers bounds the registered-sampler table. 0 means 1024.
	MaxSamplers int
	// Observer, when non-nil, receives every served run's stage events
	// (e.g. an obs.JSONLines sink behind histd's -trace-json flag). The
	// process-wide obs.Expvar sink is always attached alongside it, so
	// /debug/vars carries live per-stage counters either way.
	Observer obs.Observer
	// MaxSamplesPerRun overrides core.Config.MaxSamples, guarding the
	// service against requests whose nominal budget is astronomical.
	// 0 keeps the core default (2³¹).
	MaxSamplesPerRun int64
	// ClosenessReps is the default majority-amplification replicate
	// count of /v1/closeness runs (requests may override per call).
	// 0 means 5; negative forces single-shot (reps = 1).
	ClosenessReps int

	// MaxStreams bounds the live ingestion-stream count across all
	// tenants. 0 means stream.DefaultMaxStreams (256).
	MaxStreams int
	// StreamTenantQuota bounds one tenant's streams. 0 means
	// stream.DefaultTenantQuota (32).
	StreamTenantQuota int
	// StreamTTL evicts streams idle (no ingest, test, or lookup) for
	// this long. 0 means stream.DefaultStreamTTL (15m).
	StreamTTL time.Duration
	// IngestQueue bounds concurrently decoding ingest bodies; beyond it
	// batches are pushed back with 429 + Retry-After before any body
	// byte is read. 0 means 2×Workers.
	IngestQueue int
	// JanitorInterval is the tick of the maintenance goroutine (TTL
	// sweep, window rotation, periodic re-tests). 0 means 100ms;
	// negative disables the janitor (tests drive the registry clock
	// directly).
	JanitorInterval time.Duration
}

// withDefaults resolves the zero-value fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SieveWorkers == 0 {
		// Default cap: effective Workers × SieveWorkers stays at
		// GOMAXPROCS. Workers is already resolved above, so the division
		// is against the real pool size.
		c.SieveWorkers = runtime.GOMAXPROCS(0) / c.Workers
	}
	if c.SieveWorkers < 1 {
		c.SieveWorkers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 26
	}
	if c.MaxSamplers <= 0 {
		c.MaxSamplers = 1024
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 2 * c.Workers
	}
	if c.ClosenessReps == 0 {
		c.ClosenessReps = 5
	}
	if c.ClosenessReps < 1 {
		c.ClosenessReps = 1
	}
	if c.JanitorInterval == 0 {
		c.JanitorInterval = 100 * time.Millisecond
	}
	return c
}

// errOverloaded is the admission-control rejection; the HTTP layer maps
// it to 429 + Retry-After.
var errOverloaded = errors.New("serve: queue full")

// errDraining is the drain rejection; the HTTP layer maps it to 503.
var errDraining = errors.New("serve: draining")

// job is one admitted tester run traveling from the HTTP handler to a
// worker and back. Its context carries the per-request deadline, started
// at ADMISSION (see enqueue) so queue wait burns the request's own
// budget rather than extending it.
type job struct {
	ctx     context.Context
	cancel  context.CancelFunc // releases the deadline timer; called by the worker
	spec    *runSpec
	index   int
	started chan struct{}          // closed when a worker dequeues the job
	result  chan client.TestResult // buffered(1); the worker always delivers
}

// await returns the job's result, or answers early with a cancellation
// result if the job's context dies while the job is still QUEUED.
// Without the early arm, a request whose deadline expired in the queue
// would not be answered until a worker got around to dequeuing it — the
// end-to-end latency the deadline was supposed to bound. Once a worker
// owns the job, await always returns the worker's settled result: the
// cancellation reaches the run's context checks and the worker delivers
// within one sieve round, and waiting for it keeps the long-standing
// invariant that responses are written only after the run has fully
// unwound (its pooled buffers released, its counters settled). The
// result channel is buffered, so a delivery to an early-answered job is
// never stranded.
func await(j *job) client.TestResult {
	select {
	case res := <-j.result:
		return res
	case <-j.ctx.Done():
		// A result may already be sitting in the buffer with the context
		// done at the same time — enqueue's drain rejection delivers its
		// ErrCodeDraining result right after cancelling the admission
		// deadline, so both arms of the outer select are ready and Go
		// picks one at random. Prefer the delivered result: it is the
		// job's real answer, and synthesizing a cancellation here would
		// turn a retryable 503 into a terminal 504.
		select {
		case res := <-j.result:
			return res
		default:
		}
		select {
		case <-j.started:
			return <-j.result
		default:
			return errorResult(j.index, client.ErrCodeCanceled, j.ctx.Err())
		}
	}
}

// Server runs tester requests on a bounded worker pool. Create with New,
// serve via Handler, stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg  Config
	jobs chan *job

	// slots is the admission semaphore: one token per queueable request.
	// Tokens are acquired non-blockingly at admission (failure → 429) and
	// released when a worker dequeues the job, so at most QueueDepth
	// requests ever wait beyond the Workers running ones. A semaphore —
	// rather than relying on the jobs channel's capacity — lets the
	// streaming endpoint reserve a whole batch atomically.
	slots chan struct{}

	mu       sync.Mutex // guards closed / the jobs channel close
	closed   bool
	draining chan struct{} // closed by StartDraining
	drainOne sync.Once

	hardStop   context.Context // cancelled to abort in-flight runs at drain deadline
	hardCancel context.CancelFunc

	workerWG sync.WaitGroup

	samplers samplerTable

	// streams is the ingestion-stream registry; ingestSlots its
	// admission semaphore (one token per concurrently decoding batch);
	// janitorStop ends the maintenance goroutine at drain.
	streams     *stream.Registry
	ingestSlots chan struct{}
	janitorStop chan struct{}
}

// New starts a Server's worker pool and returns it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// obs.Expvar feeds /debug/vars; attaching observers never changes a
	// run's decision or Trace, so served results stay bit-identical to
	// direct core.Test calls.
	cfg.Observer = obs.Multi(cfg.Observer, obs.Expvar())
	hardStop, hardCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		jobs:       make(chan *job, cfg.QueueDepth),
		slots:      make(chan struct{}, cfg.QueueDepth),
		draining:   make(chan struct{}),
		hardStop:   hardStop,
		hardCancel: hardCancel,
	}
	s.samplers.init(cfg.MaxSamplers)
	s.streams = stream.NewRegistry(stream.RegistryConfig{
		MaxStreams:  cfg.MaxStreams,
		TenantQuota: cfg.StreamTenantQuota,
		TTL:         cfg.StreamTTL,
	})
	s.ingestSlots = make(chan struct{}, cfg.IngestQueue)
	s.janitorStop = make(chan struct{})
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if cfg.JanitorInterval > 0 {
		s.workerWG.Add(1)
		go s.janitor()
	}
	return s
}

// Draining reports whether the server has stopped admitting requests.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// StartDraining flips the server into drain mode: /healthz turns 503 and
// every subsequent admission is rejected with ErrCodeDraining. Queued and
// in-flight runs are unaffected; call Drain to wait for them.
func (s *Server) StartDraining() {
	s.drainOne.Do(func() { close(s.draining) })
}

// Drain gracefully shuts the pool down: stop admitting, let queued and
// in-flight runs finish, and return when the pool is idle. If ctx expires
// first, every outstanding run is hard-cancelled (the cancellation
// reaches core.TestContext's per-round checks, so workers return within
// one sieve round) and Drain waits for them before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDraining()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.janitorStop)
		close(s.jobs)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.hardCancel()
		<-idle
		return ctx.Err()
	}
}

// Close shuts the pool down immediately: in-flight runs are cancelled at
// their next cancellation point and the pool is waited for.
func (s *Server) Close() {
	s.hardCancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}

// submit admits one resolved request: a queue slot is acquired
// non-blockingly (errOverloaded when the queue is full) and the job is
// enqueued. The caller receives the worker's verdict on job.result.
func (s *Server) submit(ctx context.Context, spec *runSpec, index int) (*job, error) {
	if s.Draining() {
		return nil, errDraining
	}
	select {
	case s.slots <- struct{}{}:
	default:
		vars().overloaded.Add(1)
		return nil, errOverloaded
	}
	return s.enqueue(ctx, spec, index), nil
}

// reserve atomically acquires n queue slots, or none.
func (s *Server) reserve(n int) bool {
	for i := 0; i < n; i++ {
		select {
		case s.slots <- struct{}{}:
		default:
			for ; i > 0; i-- {
				<-s.slots
			}
			vars().overloaded.Add(1)
			return false
		}
	}
	return true
}

// enqueue places a job whose slot is already reserved. The jobs channel
// has the same capacity as the semaphore, so the send cannot block; the
// mutex serializes it against the close in Drain.
//
// The per-request deadline is applied HERE, at admission — not when a
// worker dequeues the job. Starting the clock at dequeue time meant a
// request could wait in the queue indefinitely and then still receive
// its full budget, so the end-to-end latency a client asked to bound
// could far exceed the deadline (TestSaturatedQueueHonorsDeadline pins
// the fixed behavior).
func (s *Server) enqueue(ctx context.Context, spec *runSpec, index int) *job {
	cancel := context.CancelFunc(func() {})
	if spec.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, spec.timeout)
	}
	j := &job{ctx: ctx, cancel: cancel, spec: spec, index: index, started: make(chan struct{}), result: make(chan client.TestResult, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.slots
		cancel()
		j.result <- errorResult(index, client.ErrCodeDraining, errDraining)
		return j
	}
	vars().queueDepth.Add(1)
	s.jobs <- j
	s.mu.Unlock()
	return j
}

// worker executes queued jobs until the channel closes. Each worker owns
// one Arena for its lifetime — the arena/pool reuse that keeps the
// steady-state serving path allocation-free.
func (s *Server) worker() {
	defer s.workerWG.Done()
	arena := core.NewArena()
	ct := closeness.NewTester() // two-sample scratch, same per-worker reuse
	for j := range s.jobs {
		vars().queueDepth.Add(-1)
		<-s.slots
		close(j.started)
		j.result <- s.execute(arena, ct, j)
	}
}

// execute runs one job on the given arena, mapping every outcome —
// verdict, validation failure, replay exhaustion, cancellation — to a
// wire TestResult.
func (s *Server) execute(arena *core.Arena, ct *closeness.Tester, j *job) (res client.TestResult) {
	start := time.Now()
	defer func() {
		res.ElapsedMS = time.Since(start).Milliseconds()
		switch {
		case res.Err != "":
			if res.Code == client.ErrCodeCanceled {
				vars().runsCanceled.Add(1)
			} else {
				vars().runsFailed.Add(1)
			}
		case res.Accept:
			vars().runsAccept.Add(1)
		default:
			vars().runsReject.Add(1)
		}
	}()

	// The run's context merges the job's (client disconnect, per-request
	// deadline — started at admission, see enqueue) with the server's
	// hard-stop (drain deadline): whichever fires first aborts the run at
	// core.TestContext's next cancellation point.
	defer j.cancel()
	mctx, mcancel := mergeContexts(j.ctx, s.hardStop)
	defer mcancel()

	if j.spec.close != nil {
		return runCloseness(mctx, ct, j.spec, j.index)
	}
	return runOne(mctx, arena, j.spec, j.index, s.cfg.Observer)
}

// mergeContexts returns a context cancelled when either parent is.
func mergeContexts(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// runOne executes the resolved request on the arena. A replay oracle
// running out of recorded samples panics with oracle.ErrReplayExhausted;
// that — and only that — panic is translated to ErrCodeNeedMoreSamples,
// mirroring histtest.TestSamples. Any other panic is a server bug and is
// contained as ErrCodeInternal rather than killing the pool (the pooled
// count buffers of a panicking batch are already released by the oracle
// layer's releaseOnPanic).
func runOne(ctx context.Context, arena *core.Arena, sp *runSpec, index int, ob obs.Observer) (res client.TestResult) {
	defer func() {
		if r := recover(); r != nil {
			if r == oracle.ErrReplayExhausted {
				res = errorResult(index, client.ErrCodeNeedMoreSamples,
					fmt.Errorf("dataset of %d samples exhausted after %d draws; provide more data or lower scale", sp.datasetLen, sp.o.Samples()))
				return
			}
			res = errorResult(index, client.ErrCodeInternal, fmt.Errorf("panic: %v", r))
		}
	}()

	cfg := sp.cfg
	cfg.Observer = ob
	result, err := arena.TestContext(ctx, sp.o, rng.New(sp.seed), sp.k, sp.eps, cfg)
	if err != nil {
		code := client.ErrCodeInternal
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = client.ErrCodeCanceled
		}
		return errorResult(index, code, err)
	}
	tr := result.Trace
	return client.TestResult{
		Index:       index,
		Accept:      result.Accept,
		SamplesUsed: sp.o.Samples(),
		Stage:       tr.RejectStage,
		Detail:      tr.RejectReason,
		Trace: &client.Trace{
			N:                tr.N,
			K:                tr.K,
			B:                tr.B,
			SieveRoundsRun:   tr.SieveRoundsRun,
			PartitionSamples: tr.PartitionSamples,
			LearnSamples:     tr.LearnSamples,
			SieveSamples:     tr.SieveSamples,
			TestSamples:      tr.TestSamples,
			RemovedHeavy:     tr.RemovedHeavy,
			HeavySingletons:  tr.HeavySingletons,
			RemovedRounds:    tr.RemovedRounds,
			RemovedMass:      tr.RemovedMass,
			CheckRelaxed:     tr.CheckRelaxed,
			FinalZ:           tr.FinalZ,
			FinalThresh:      tr.FinalThresh,
			RejectStage:      tr.RejectStage,
			RejectReason:     tr.RejectReason,
		},
	}
}

// errorResult wraps a failure as a wire result.
func errorResult(index int, code string, err error) client.TestResult {
	return client.TestResult{Index: index, Err: err.Error(), Code: code}
}
