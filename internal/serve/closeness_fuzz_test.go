package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/histtest/client"
	"repro/internal/serve"
)

// FuzzClosenessDecoder fuzzes the /v1/closeness request surface with raw
// JSON bodies: whatever arrives — malformed JSON, unknown fields,
// contradictory source pairs, one-registered-one-unknown samplers,
// references to an empty stream window — the server must answer with a
// well-formed response and never panic or 5xx. Runs that are admitted
// use k >= n so the tester's degenerate full-domain path decides on a
// handful of draws, keeping iterations cheap.
func FuzzClosenessDecoder(f *testing.F) {
	s := serve.New(serve.Config{Workers: 1, ClosenessReps: 1})
	hs := httptest.NewServer(s.Handler())
	f.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	// One registered sampler and one empty stream, so fuzzed bodies can
	// reach the unknown-vs-registered and empty-window branches.
	c := client.New(hs.URL)
	regd, err := c.RegisterSampler(f.Context(), client.HistogramSpec{N: 16, Masses: []float64{1}})
	if err != nil {
		f.Fatalf("registering sampler: %v", err)
	}
	stInfo, err := c.CreateStream(f.Context(), client.StreamSpec{N: 16, K: 16, Eps: 0.5})
	if err != nil {
		f.Fatalf("creating stream: %v", err)
	}

	spec := `{"n":16,"masses":[1]}`
	seeds := []string{
		``,
		`{}`,
		`not json`,
		`{"a":{},"b":{},"k":16,"eps":0.5}`,
		`{"a":{"spec":` + spec + `},"b":{"spec":` + spec + `},"k":16,"eps":0.5}`,
		`{"a":{"spec":` + spec + `},"b":{"spec":` + spec + `},"k":0,"eps":9}`,
		`{"a":{"spec":` + spec + `,"sampler":"s1"},"b":{"spec":` + spec + `},"k":16,"eps":0.5}`,
		`{"a":{"sampler":"` + regd.ID + `"},"b":{"sampler":"ghost"},"k":16,"eps":0.5}`,
		`{"a":{"sampler":"` + regd.ID + `"},"b":{"stream":"` + stInfo.ID + `"},"k":16,"eps":0.5}`,
		`{"a":{"stream":"` + stInfo.ID + `"},"b":{"stream":"` + stInfo.ID + `"},"k":16,"eps":0.5}`,
		`{"a":{"samples":[1,2,3]},"b":{"spec":` + spec + `},"n":16,"k":16,"eps":0.5}`,
		`{"a":{"samples":[99]},"b":{"spec":` + spec + `},"n":16,"k":16,"eps":0.5}`,
		`{"a":{"spec":` + spec + `},"b":{"spec":{"n":8,"masses":[1]}},"k":16,"eps":0.5}`,
		`{"a":{"spec":` + spec + `},"b":{"spec":` + spec + `},"k":16,"eps":0.5,"bogus":true}`,
		`{"a":{"spec":` + spec + `},"b":{"spec":` + spec + `},"k":16,"eps":0.5,"reps":-3,"scale":-1}`,
		`{"a":{"spec":` + spec + `},"b":{"spec":` + spec + `},"k":16,"eps":0.5,"count_strategy":"psychic"}`,
		`{"a":{"spec":{"n":16,"cuts":[99],"masses":[1,1]}},"b":{"spec":` + spec + `},"k":16,"eps":0.5}`,
		strings.Repeat("[", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		resp, err := http.Post(hs.URL+"/v1/closeness", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		switch resp.StatusCode {
		case http.StatusOK,
			http.StatusBadRequest,          // malformed body / invalid pair
			http.StatusNotFound,            // unknown sampler or stream
			http.StatusUnprocessableEntity, // empty window / dataset too small
			http.StatusTooManyRequests:     // single-worker queue momentarily full
		default:
			t.Fatalf("status %d for body %q — decoder must map every input to a typed 4xx or a verdict", resp.StatusCode, body)
		}
	})
}
