package serve

import (
	"expvar"
	"sync"
)

// serverVars are the process-wide serving counters published under the
// "histd." expvar namespace, alongside the per-stage "histtest."
// counters of obs.Expvar. expvar names are global, so — like
// obs.ExpvarSink — the set is a singleton shared by every Server in the
// process (httptest servers included).
//
//	histd.requests          HTTP requests received (all endpoints)
//	histd.requests_overloaded  admissions pushed back with 429
//	histd.queue_depth       jobs admitted and waiting for a worker (gauge)
//	histd.runs_accept / runs_reject  completed verdicts
//	histd.runs_canceled     runs cut off by cancellation or deadline
//	histd.runs_failed       runs that errored
type serverVars struct {
	requests     *expvar.Int
	overloaded   *expvar.Int
	queueDepth   *expvar.Int
	runsAccept   *expvar.Int
	runsReject   *expvar.Int
	runsCanceled *expvar.Int
	runsFailed   *expvar.Int
}

var (
	varsOnce sync.Once
	varsInst *serverVars
)

// vars returns the singleton, registering the expvar names on first use.
func vars() *serverVars {
	varsOnce.Do(func() {
		varsInst = &serverVars{
			requests:     expvar.NewInt("histd.requests"),
			overloaded:   expvar.NewInt("histd.requests_overloaded"),
			queueDepth:   expvar.NewInt("histd.queue_depth"),
			runsAccept:   expvar.NewInt("histd.runs_accept"),
			runsReject:   expvar.NewInt("histd.runs_reject"),
			runsCanceled: expvar.NewInt("histd.runs_canceled"),
			runsFailed:   expvar.NewInt("histd.runs_failed"),
		}
	})
	return varsInst
}
