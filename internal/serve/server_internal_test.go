package serve

import (
	"context"
	"testing"
	"time"

	"repro/histtest/client"
)

// TestDrainRejectionBeatsDeadline pins the await ordering when a job is
// rejected at enqueue because the server closed between admission and
// enqueue. The closed branch cancels the freshly started admission
// deadline and then delivers the ErrCodeDraining result, so by the time
// await runs BOTH of its select arms are ready; before the fix Go's
// random select choice answered roughly half of these requests with
// ErrCodeCanceled (a terminal 504) instead of the retryable 503 the
// drain contract promises. The loop makes a regression a near-certain
// failure rather than a coin flip.
func TestDrainRejectionBeatsDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, DefaultTimeout: time.Second})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	for i := 0; i < 200; i++ {
		if !s.reserve(1) {
			t.Fatal("reserve failed on an idle drained server")
		}
		j := s.enqueue(context.Background(), &runSpec{timeout: time.Minute}, i)
		res := await(j)
		if res.Code != client.ErrCodeDraining {
			t.Fatalf("iteration %d: drain-rejected job answered with code %q (err %q), want %q",
				i, res.Code, res.Err, client.ErrCodeDraining)
		}
	}
}
