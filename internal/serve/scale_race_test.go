//go:build race

package serve_test

// raceScale relaxes the wall-clock bounds in the timing-sensitive
// tests: under the race detector the tester runs several times slower,
// and every "reacts within one sieve round" bound scales with the
// sieve-batch duration.
const raceScale = 8
