package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"

	"repro/histtest/client"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/test         one TestRequest → one TestResult (JSON)
//	POST /v1/test/stream  BatchRequest → ndjson TestResults, completion order
//	POST /v1/closeness    ClosenessRequest → ClosenessResponse (two-sample)
//	POST /v1/samplers     HistogramSpec → RegisterResponse
//	POST /v1/streams      StreamSpec → StreamInfo (register an ingestion stream)
//	GET/DELETE /v1/streams/{id}      stream info / removal
//	POST /v1/streams/{id}/events     ingest a batch (ndjson or binary frames)
//	POST /v1/streams/{id}/test       test the stream's live window
//	GET  /healthz         200 ok / 503 draining
//	GET  /debug/vars      expvar counters (histd.* and histtest.*)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/test", s.handleTest)
	mux.HandleFunc("POST /v1/test/stream", s.handleStream)
	mux.HandleFunc("POST /v1/closeness", s.handleCloseness)
	mux.HandleFunc("POST /v1/samplers", s.handleRegister)
	mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamInfo)
	mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	mux.HandleFunc("POST /v1/streams/{id}/events", s.handleStreamIngest)
	mux.HandleFunc("POST /v1/streams/{id}/test", s.handleStreamTest)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// writeError emits the uniform JSON error body with the status (and
// Retry-After, for pushback statuses) the code maps to.
func (s *Server) writeError(w http.ResponseWriter, code string, err error) {
	status := http.StatusInternalServerError
	switch code {
	case client.ErrCodeBadRequest:
		status = http.StatusBadRequest
	case client.ErrCodeUnknownSampler, client.ErrCodeNotFound:
		status = http.StatusNotFound
	case client.ErrCodeNeedMoreSamples:
		status = http.StatusUnprocessableEntity
	case client.ErrCodeOverloaded:
		status = http.StatusTooManyRequests
	case client.ErrCodeDraining:
		status = http.StatusServiceUnavailable
	case client.ErrCodeCanceled:
		status = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg)))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(client.ErrorResponse{Code: code, Error: err.Error()})
}

// retryAfterSeconds renders the Retry-After hint (at least 1, the header
// has whole-second granularity).
func retryAfterSeconds(cfg Config) int {
	secs := int(cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return secs
}

// decodeBody decodes a JSON body under the configured size limit.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badReqf("decoding request: %v", err)
	}
	return nil
}

// admitErr maps an admission failure to its wire code.
func admitErr(err error) string {
	if errors.Is(err, errDraining) {
		return client.ErrCodeDraining
	}
	return client.ErrCodeOverloaded
}

// handleTest serves POST /v1/test: resolve, admit, wait for the worker,
// reply. The request context rides into the run, so a disconnecting
// client cancels its own run mid-sieve.
func (s *Server) handleTest(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	var req client.TestRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failRequest(w, err)
		return
	}
	spec, err := s.resolve(&req)
	if err != nil {
		s.failRequest(w, err)
		return
	}
	j, err := s.submit(r.Context(), spec, 0)
	if err != nil {
		s.writeError(w, admitErr(err), err)
		return
	}
	// The deadline starts at admission, and await answers at the deadline
	// even while the job is still queued, so this wait is bounded by the
	// run's own deadline end to end.
	res := await(j)
	if res.Err != "" {
		s.writeError(w, res.Code, errors.New(res.Err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// failRequest writes a resolution failure (always a *badRequest or a
// body-read error).
func (s *Server) failRequest(w http.ResponseWriter, err error) {
	var br *badRequest
	if errors.As(err, &br) {
		s.writeError(w, br.code, err)
		return
	}
	s.writeError(w, client.ErrCodeBadRequest, err)
}

// handleStream serves POST /v1/test/stream: the batch is admitted
// atomically (all sub-requests get queue slots, or the whole batch is
// pushed back with 429), runs fan out across the worker pool, and
// results stream back as JSON lines in completion order, each tagged
// with the sub-request's index.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	var batch client.BatchRequest
	if err := s.decodeBody(w, r, &batch); err != nil {
		s.failRequest(w, err)
		return
	}
	if len(batch.Requests) == 0 {
		s.failRequest(w, badReqf("empty batch"))
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		s.failRequest(w, badReqf("batch of %d exceeds the limit %d", len(batch.Requests), s.cfg.MaxBatch))
		return
	}
	specs := make([]*runSpec, len(batch.Requests))
	for i := range batch.Requests {
		sp, err := s.resolve(&batch.Requests[i])
		if err != nil {
			s.failRequest(w, fmt.Errorf("request %d: %w", i, err))
			return
		}
		specs[i] = sp
	}
	if s.Draining() {
		s.writeError(w, client.ErrCodeDraining, errDraining)
		return
	}
	if !s.reserve(len(specs)) {
		s.writeError(w, client.ErrCodeOverloaded, fmt.Errorf("queue cannot admit a batch of %d", len(specs)))
		return
	}

	jobs := make([]*job, len(specs))
	for i, sp := range specs {
		jobs[i] = s.enqueue(r.Context(), sp, i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Stream in completion order: fan the per-job waits into one channel.
	done := make(chan client.TestResult, len(jobs))
	for _, j := range jobs {
		go func(j *job) { done <- await(j) }(j)
	}
	for range jobs {
		res := <-done
		if err := enc.Encode(res); err != nil {
			// The client went away; its request context cancels the
			// remaining runs, and the fan-in channel is buffered for every
			// job, so returning leaks nothing.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleRegister serves POST /v1/samplers: validate the spec, build the
// shared alias-table prototype once, and hand back its ID.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	if s.Draining() {
		s.writeError(w, client.ErrCodeDraining, errDraining)
		return
	}
	var spec client.HistogramSpec
	if err := s.decodeBody(w, r, &spec); err != nil {
		s.failRequest(w, err)
		return
	}
	proto, err := buildSampler(&spec)
	if err != nil {
		s.failRequest(w, err)
		return
	}
	id, err := s.samplers.register(proto)
	if err != nil {
		s.failRequest(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(client.RegisterResponse{ID: id, Buckets: len(spec.Masses), N: spec.N})
}

// handleHealth serves GET /healthz: 200 while admitting, 503 once
// draining (so load balancers stop routing before the listener closes).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg)))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}
