package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/histtest/client"
	"repro/internal/closeness"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Two-sample closeness serving: POST /v1/closeness resolves a pair of
// sample sources — any mix of recorded datasets, inline specs,
// registered samplers, and live stream windows — into two oracles and
// runs the DKN'17 tester (internal/closeness) on the ordinary worker
// pool. Resolution happens at admission like resolve: malformed pairs
// are 4xx before they cost a queue slot, and everything derived here is
// deterministic, so a served verdict is bit-identical to a direct
// closeness.TestTwoSample call with the same inputs (pinned by the e2e
// suite).

// Side-B salts. The two sides of one request derive their randomness
// from the SAME request seeds; without a salt, two sides naming the same
// spec (or the request's tester seed feeding both stream shuffles) would
// draw in lockstep — twin streams that correlate the very counts the χ²
// statistic compares. Side A keeps the one-sample derivations (sampler
// seed as-is, streamShuffleSalt for stream windows) so a one-sided
// request matches /v1/test conventions; side B XORs these constants in.
// Both are part of the wire contract, as streamShuffleSalt is: a direct
// run must reproduce them to match a served verdict bit-for-bit.
const (
	closenessSamplerSaltB = 0x6c07965ad6f54d21
	closenessShuffleSaltB = 0x3c79ac492ba7b653
)

// closenessRun is the two-sample extension of a runSpec: side B's oracle
// plus the tester config. runSpec.o is side A.
type closenessRun struct {
	oy  oracle.Oracle
	cfg closeness.Config
	// eventsA/eventsB are snapshotted stream-window sizes (0 for
	// non-stream sides); datasetLenA/B the replay dataset sizes —
	// error-reporting context, mirroring runSpec.datasetLen.
	eventsA, eventsB         int64
	datasetLenA, datasetLenB int
}

// Workloads names the request shapes the serving layer can run — the
// serve-side analogue of core.Engines(). The conformance-list gate
// (make conformance-list) diffs this registry against the Makefile and
// CI defaults, so wiring a new workload here without extending the
// conformance tier fails the PR loudly.
func Workloads() []string { return []string{"histogram", "closeness"} }

// resolveCloseness turns a wire closeness request into a runSpec whose
// close field carries side B, validating everything the tester would
// reject plus the serving-layer limits.
func (s *Server) resolveCloseness(req *client.ClosenessRequest) (*runSpec, error) {
	if req.K < 1 {
		return nil, badReqf("k = %d must be positive", req.K)
	}
	if req.Eps <= 0 || req.Eps > 1 {
		return nil, badReqf("eps = %v must be in (0, 1]", req.Eps)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1 // histtest.Options.Seed semantics
	}
	samplerSeed := req.SamplerSeed
	if samplerSeed == 0 {
		samplerSeed = 1
	}

	cr := &closenessRun{}
	sp := &runSpec{k: req.K, eps: req.Eps, seed: seed, close: cr}

	oa, statsA, err := s.resolveSide("a", &req.A, req.N, samplerSeed, seed^streamShuffleSalt)
	if err != nil {
		return nil, err
	}
	ob, statsB, err := s.resolveSide("b", &req.B, req.N, samplerSeed^closenessSamplerSaltB, seed^closenessShuffleSaltB)
	if err != nil {
		return nil, err
	}
	if oa.N() != ob.N() {
		return nil, badReqf("sides over different domains (%d vs %d)", oa.N(), ob.N())
	}
	sp.o = oa
	sp.datasetLen = statsA.datasetLen
	cr.oy = ob
	cr.eventsA, cr.eventsB = statsA.events, statsB.events
	cr.datasetLenA, cr.datasetLenB = statsA.datasetLen, statsB.datasetLen

	cfg := closeness.DefaultConfig()
	cfg.Reps = s.cfg.ClosenessReps
	if req.Reps != 0 {
		if req.Reps < 1 {
			return nil, badReqf("reps = %d must be positive", req.Reps)
		}
		cfg.Reps = req.Reps
	}
	if req.Scale < 0 {
		return nil, badReqf("scale = %v must not be negative", req.Scale)
	}
	if req.Scale > 0 && req.Scale != 1 {
		cfg = cfg.Scale(req.Scale)
	}
	// Within-request fan-out: same clamp discipline as resolve — never
	// verdict-changing, so clamped requests still match direct runs.
	cfg.Workers = 1
	if req.Workers > 1 {
		cfg.Workers = min(req.Workers, s.cfg.SieveWorkers)
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if s.cfg.MaxSamplesPerRun > 0 {
		cfg.MaxSamples = s.cfg.MaxSamplesPerRun
	}
	cs, err := oracle.ParseCountStrategy(req.CountStrategy)
	if err != nil {
		return nil, badReqf("%v", err)
	}
	cfg.CountStrategy = cs
	cr.cfg = cfg

	switch {
	case req.TimeoutMS < 0:
		return nil, badReqf("timeout_ms = %d must not be negative", req.TimeoutMS)
	case req.TimeoutMS == 0:
		if s.cfg.DefaultTimeout > 0 {
			sp.timeout = s.cfg.DefaultTimeout
		}
	default:
		sp.timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	return sp, nil
}

// sideStats carries the per-side bookkeeping resolveSide extracts.
type sideStats struct {
	events     int64 // stream sides: snapshotted window size
	datasetLen int   // dataset sides: recorded sample count
}

// resolveSide builds one side's oracle. samplerSeed seeds Spec/Sampler
// forks; shuffleSeed seeds a stream side's snapshot replay shuffle (both
// already carry the side's salt).
func (s *Server) resolveSide(label string, side *client.ClosenessSide, n int, samplerSeed, shuffleSeed uint64) (oracle.Oracle, sideStats, error) {
	var stats sideStats
	sources := 0
	if len(side.Samples) > 0 {
		sources++
	}
	if side.Spec != nil {
		sources++
	}
	if side.Sampler != "" {
		sources++
	}
	if side.Stream != "" {
		sources++
	}
	if sources != 1 {
		return nil, stats, badReqf("side %s: exactly one of samples, spec, sampler, stream must be set (got %d)", label, sources)
	}
	switch {
	case len(side.Samples) > 0:
		if n < 1 {
			return nil, stats, badReqf("side %s: n = %d must be positive with a samples dataset", label, n)
		}
		rep, err := oracle.NewReplay(n, side.Samples)
		if err != nil {
			return nil, stats, badReqf("side %s: invalid dataset: %v", label, err)
		}
		stats.datasetLen = len(side.Samples)
		return rep, stats, nil
	case side.Spec != nil:
		proto, err := buildSampler(side.Spec)
		if err != nil {
			return nil, stats, fmt.Errorf("side %s: %w", label, err)
		}
		if n != 0 && n != proto.N() {
			return nil, stats, badReqf("side %s: n = %d does not match the spec's domain %d", label, n, proto.N())
		}
		return proto.Fork(rng.New(samplerSeed)), stats, nil
	case side.Sampler != "":
		proto, ok := s.samplers.get(side.Sampler)
		if !ok {
			return nil, stats, &badRequest{code: client.ErrCodeUnknownSampler, msg: fmt.Sprintf("side %s: sampler %q is not registered", label, side.Sampler)}
		}
		if n != 0 && n != proto.N() {
			return nil, stats, badReqf("side %s: n = %d does not match sampler %q's domain %d", label, n, side.Sampler, proto.N())
		}
		return proto.Fork(rng.New(samplerSeed)), stats, nil
	default:
		st, ok := s.streams.Get(side.Stream)
		if !ok {
			return nil, stats, &badRequest{code: client.ErrCodeNotFound, msg: fmt.Sprintf("side %s: stream %q is not registered", label, side.Stream)}
		}
		if n != 0 && n != st.Acc.N() {
			return nil, stats, badReqf("side %s: n = %d does not match stream %q's domain %d", label, n, side.Stream, st.Acc.N())
		}
		counts, snap := st.Acc.Snapshot()
		if snap.Events == 0 {
			counts.Release()
			return nil, stats, &badRequest{code: client.ErrCodeNeedMoreSamples, msg: fmt.Sprintf("side %s: stream %q's window is empty — ingest events before comparing", label, side.Stream)}
		}
		o := oracle.NewCountsReplay(counts, rng.New(shuffleSeed))
		counts.Release()
		st.Touch(time.Now(), 0)
		stats.events = snap.Events
		stats.datasetLen = int(snap.Events)
		return o, stats, nil
	}
}

// runCloseness executes a resolved two-sample run on the worker's pooled
// Tester, mapping every outcome to a wire TestResult the job channel can
// carry. A replay side running dry panics with oracle.ErrReplayExhausted,
// translated to ErrCodeNeedMoreSamples exactly as runOne does for
// one-sample replays.
func runCloseness(ctx context.Context, ct *closeness.Tester, sp *runSpec, index int) (res client.TestResult) {
	cr := sp.close
	defer func() {
		if r := recover(); r != nil {
			if r == oracle.ErrReplayExhausted {
				res = errorResult(index, client.ErrCodeNeedMoreSamples,
					fmt.Errorf("a side's recorded window (%d/%d samples) exhausted after %d+%d draws; ingest more data or lower scale",
						cr.datasetLenA, cr.datasetLenB, sp.o.Samples(), cr.oy.Samples()))
				return
			}
			res = errorResult(index, client.ErrCodeInternal, fmt.Errorf("panic: %v", r))
		}
	}()

	out, err := ct.Run(ctx, sp.o, cr.oy, rng.New(sp.seed), sp.k, sp.eps, cr.cfg)
	if err != nil {
		code := client.ErrCodeInternal
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = client.ErrCodeCanceled
		}
		return errorResult(index, code, err)
	}
	return client.TestResult{
		Index:       index,
		Accept:      out.Accept,
		SamplesUsed: out.SamplesX + out.SamplesY,
		Closeness: &client.ClosenessVerdict{
			Accept:           out.Accept,
			N:                out.N,
			Intervals:        out.Intervals,
			B:                out.B,
			M:                out.M,
			Reps:             out.Reps,
			Accepts:          out.Accepts,
			Z:                out.Z,
			Threshold:        out.Threshold,
			PartitionSamples: out.PartitionSamples,
			TestSamples:      out.TestSamples,
			SamplesA:         out.SamplesX,
			SamplesB:         out.SamplesY,
		},
	}
}

// handleCloseness serves POST /v1/closeness: resolve the pair, admit,
// wait for the worker, reply.
func (s *Server) handleCloseness(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	var req client.ClosenessRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failRequest(w, err)
		return
	}
	spec, err := s.resolveCloseness(&req)
	if err != nil {
		s.failRequest(w, err)
		return
	}
	j, err := s.submit(r.Context(), spec, 0)
	if err != nil {
		s.writeError(w, admitErr(err), err)
		return
	}
	res := await(j)
	// Stream sides recorded in the request keep their freshness: touch
	// already happened at snapshot; the verdict is not folded into the
	// streams' last-test records (those describe one-sample self-tests).
	if res.Err != "" {
		s.writeError(w, res.Code, errors.New(res.Err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(client.ClosenessResponse{
		ClosenessVerdict: *res.Closeness,
		EventsA:          spec.close.eventsA,
		EventsB:          spec.close.eventsB,
		ElapsedMS:        res.ElapsedMS,
	})
}
