package serve_test

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/histtest/client"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/serve"
)

// noJanitor disables the background maintenance goroutine so tests
// control rotation and eviction deterministically.
func noJanitor(cfg serve.Config) serve.Config {
	cfg.JanitorInterval = -1
	return cfg
}

// streamEvents synthesizes a deterministic event stream over a
// 2-histogram (uniform over the first quarter of [0, n)), sized at 1.5×
// the tester's expected budget so replay never exhausts.
func streamEvents(n, k int, eps float64) []int {
	need := core.ExpectedSamples(n, k, eps, core.PracticalConfig()) * 3 / 2
	src := rng.New(42)
	data := make([]int, need)
	for i := range data {
		data[i] = src.Intn(n / 4)
	}
	return data
}

// TestStreamVerdictBitIdenticalToDirect is the tentpole acceptance
// test: register a stream, ingest a firehose of raw events in batches
// (binary and ndjson mixed), test it — and the verdict must be
// bit-identical (full Trace, sample accounting included) to running the
// tester directly over the same oracle.Counts with the server's
// snapshot-replay recipe.
func TestStreamVerdictBitIdenticalToDirect(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 2}))
	ctx := context.Background()

	n, k, eps := 4096, 4, 0.5
	const seed = 11
	info, err := c.CreateStream(ctx, client.StreamSpec{N: n, K: k, Eps: eps, Seed: seed})
	if err != nil {
		t.Fatalf("creating stream: %v", err)
	}
	if info.ID == "" || info.N != n || info.Seed != seed {
		t.Fatalf("bad stream info: %+v", info)
	}

	data := streamEvents(n, k, eps)
	// Mixed-format ingest: most batches binary, every eighth as ndjson.
	var total int64
	const batch = 10_000
	for i, b := 0, 0; i < len(data); i, b = i+batch, b+1 {
		chunk := data[i:min(i+batch, len(data))]
		var ack *client.IngestResponse
		var err error
		if b%8 == 7 {
			var sb strings.Builder
			for _, v := range chunk {
				sb.WriteString(strconv.Itoa(v))
				sb.WriteByte('\n')
			}
			ack, err = c.IngestNDJSON(ctx, info.ID, []byte(sb.String()))
		} else {
			ack, err = c.IngestEvents(ctx, info.ID, chunk)
		}
		if err != nil {
			t.Fatalf("ingesting batch %d: %v", b, err)
		}
		if ack.Events != int64(len(chunk)) {
			t.Fatalf("batch %d: %d events acknowledged, sent %d", b, ack.Events, len(chunk))
		}
		total += ack.Events
	}
	if total != int64(len(data)) {
		t.Fatalf("ingested %d events, sent %d", total, len(data))
	}

	res, err := c.StreamTest(ctx, info.ID, client.StreamTestRequest{})
	if err != nil {
		t.Fatalf("stream test failed: %v", err)
	}
	if res.Events != int64(len(data)) {
		t.Fatalf("snapshot covered %d events, want %d", res.Events, len(data))
	}
	if res.Seed != seed {
		t.Fatalf("snapshot seed = %d, want %d", res.Seed, seed)
	}

	// Direct run over the SAME counts: fold the events into a pooled
	// Counts and replay with the server's snapshot recipe — the shuffle
	// RNG derives from seed ^ StreamShuffleSalt, the tester RNG from the
	// seed itself.
	counts := oracle.AcquireCounts(n, len(data))
	for _, v := range data {
		counts.AddN(v, 1)
	}
	o := oracle.NewCountsReplay(counts, rng.New(seed^serve.StreamShuffleSalt))
	counts.Release()
	cfg := core.PracticalConfig()
	cfg.Workers = 1
	direct, err := core.Test(o, rng.New(seed), k, eps, cfg)
	if err != nil {
		t.Fatalf("direct run failed: %v", err)
	}
	assertBitIdentical(t, &res.TestResult, direct, o.Samples())

	// The stream records its last verdict; a second test over the same
	// window with the same seed is deterministic.
	got, err := c.GetStream(ctx, info.ID)
	if err != nil {
		t.Fatalf("get stream: %v", err)
	}
	if got.LastTest == nil || got.LastTest.Accept != res.Accept || got.LastTest.Events != res.Events {
		t.Fatalf("last-test record missing or wrong: %+v", got.LastTest)
	}
	again, err := c.StreamTest(ctx, info.ID, client.StreamTestRequest{})
	if err != nil {
		t.Fatalf("second stream test failed: %v", err)
	}
	if *again.Trace != *res.Trace || again.SamplesUsed != res.SamplesUsed {
		t.Fatalf("repeat test over an unchanged window diverged:\n  first:  %+v\n  second: %+v", res.TestResult, again.TestResult)
	}
}

// TestStreamIngestValidation: malformed frames 400 with a FormatError
// detail, unknown streams 404, and the stream survives bad input.
func TestStreamIngestValidation(t *testing.T) {
	_, hs, c := newTestServer(t, noJanitor(serve.Config{Workers: 1}))
	ctx := context.Background()

	info, err := c.CreateStream(ctx, client.StreamSpec{N: 100, K: 2, Eps: 0.5})
	if err != nil {
		t.Fatalf("creating stream: %v", err)
	}

	post := func(path, ct, body string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, hs.URL+path, strings.NewReader(body))
		req.Header.Set("Content-Type", ct)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}

	cases := []struct {
		name, ct, body string
	}{
		{"ndjson garbage", "application/x-ndjson", "not-a-number\n"},
		{"ndjson out of range", "application/x-ndjson", "100\n"},
		{"ndjson negative", "application/x-ndjson", "-3\n"},
		{"binary truncated", "application/octet-stream", "\x80"},
		{"binary out of range", "application/octet-stream", "\x01\x7f"}, // frame of 1 event: 127 >= 100
	}
	for _, tc := range cases {
		resp := post("/v1/streams/"+info.ID+"/events", tc.ct, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	if _, err := c.IngestEvents(ctx, "nope", []int{1}); !isAPIStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown stream ingest: err = %v, want 404", err)
	}
	if _, err := c.StreamTest(ctx, "nope", client.StreamTestRequest{}); !isAPIStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown stream test: err = %v, want 404", err)
	}
	if _, err := c.GetStream(ctx, "nope"); !isAPIStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown stream get: err = %v, want 404", err)
	}

	// The stream still works after the malformed barrage (events from
	// valid prefixes of mixed batches may have been applied; the stream
	// itself must stay consistent).
	ack, err := c.IngestEvents(ctx, info.ID, []int{1, 2, 3})
	if err != nil {
		t.Fatalf("ingest after malformed input: %v", err)
	}
	if ack.Events != 3 {
		t.Fatalf("ingest applied %d events, want 3", ack.Events)
	}
}

func isAPIStatus(err error, status int) bool {
	apiErr, ok := err.(*client.APIError)
	return ok && apiErr.Status == status
}

// TestStreamCreateValidation: bad registration parameters 400; the
// per-tenant quota pushes back with 429.
func TestStreamCreateValidation(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 1, MaxStreams: 3, StreamTenantQuota: 2}))
	ctx := context.Background()

	bad := []client.StreamSpec{
		{N: 0, K: 2, Eps: 0.5},
		{N: 100, K: 0, Eps: 0.5},
		{N: 100, K: 2, Eps: 0},
		{N: 100, K: 2, Eps: 1.5},
		{N: 100, K: 2, Eps: 0.5, Generations: 4}, // generations without a window
		{N: 100, K: 2, Eps: 0.5, WindowMS: -5},
		{N: 1 << 31, K: 2, Eps: 0.5},                               // domain over the limit
		{N: 100, K: 2, Eps: 0.5, WindowMS: 1},                      // window below the minimum
		{N: 100, K: 2, Eps: 0.5, WindowMS: 1000, Generations: 100}, // too many generations
	}
	for i, spec := range bad {
		if _, err := c.CreateStream(ctx, spec); !isAPIStatus(err, http.StatusBadRequest) {
			t.Fatalf("bad spec %d: err = %v, want 400", i, err)
		}
	}

	ok := client.StreamSpec{N: 100, K: 2, Eps: 0.5, Tenant: "quota-tenant"}
	for i := 0; i < 2; i++ {
		if _, err := c.CreateStream(ctx, ok); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	// Quota pushback is a retryable 429; surface the first refusal
	// instead of waiting it out.
	c.MaxRetries = -1
	if _, err := c.CreateStream(ctx, ok); !isAPIStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("over-quota create: err = %v, want 429", err)
	}
}

// TestStreamDeleteFreesCapacity: DELETE removes the stream and its
// registry slot.
func TestStreamDeleteFreesCapacity(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 1, MaxStreams: 1}))
	ctx := context.Background()

	info, err := c.CreateStream(ctx, client.StreamSpec{N: 100, K: 2, Eps: 0.5})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.DeleteStream(ctx, info.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.GetStream(ctx, info.ID); !isAPIStatus(err, http.StatusNotFound) {
		t.Fatalf("get after delete: err = %v, want 404", err)
	}
	if _, err := c.CreateStream(ctx, client.StreamSpec{N: 100, K: 2, Eps: 0.5}); err != nil {
		t.Fatalf("create after delete (capacity 1): %v", err)
	}
}

// TestStreamEmptyWindowNeedsSamples: testing a stream before any ingest
// is the need_more_samples failure, same contract as an undersized
// replay dataset.
func TestStreamEmptyWindowNeedsSamples(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 1}))
	ctx := context.Background()

	info, err := c.CreateStream(ctx, client.StreamSpec{N: 4096, K: 4, Eps: 0.5})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	_, err = c.StreamTest(ctx, info.ID, client.StreamTestRequest{})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Code != client.ErrCodeNeedMoreSamples {
		t.Fatalf("empty-window test: err = %v, want %s", err, client.ErrCodeNeedMoreSamples)
	}
}

// TestStreamPeriodicRetest: a stream registered with retest_every_ms
// gets tested by the janitor without any client asking.
func TestStreamPeriodicRetest(t *testing.T) {
	cfg := serve.Config{Workers: 1, JanitorInterval: 20 * time.Millisecond}
	_, _, c := newTestServer(t, cfg)
	ctx := context.Background()

	info, err := c.CreateStream(ctx, client.StreamSpec{N: 256, K: 2, Eps: 0.5, RetestEveryMS: 100})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Enough events that the snapshot test completes, ingested in chunks
	// under the binary frame limit.
	need := core.ExpectedSamples(256, 2, 0.5, core.PracticalConfig()) * 3 / 2
	events := make([]int, need)
	src := rng.New(9)
	for i := range events {
		events[i] = src.Intn(64)
	}
	const chunk = 1 << 19
	for i := 0; i < len(events); i += chunk {
		if _, err := c.IngestEvents(ctx, info.ID, events[i:min(i+chunk, len(events))]); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}

	deadline := time.Now().Add(raceScale * 10 * time.Second)
	for time.Now().Before(deadline) {
		got, err := c.GetStream(ctx, info.ID)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if got.LastTest != nil && got.LastTest.Err == "" {
			return // the scheduler ran a verdict for us
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("periodic re-test never produced a verdict")
}

// TestSieveWorkerDefaultClamped pins the oversubscription fix: when
// SieveWorkers defaults, the aggregate fan-out Workers × SieveWorkers
// stays at GOMAXPROCS instead of Workers × GOMAXPROCS; explicit
// settings are respected.
func TestSieveWorkerDefaultClamped(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, sieve, want int
	}{
		{4, 0, max(1, procs/4)}, // default divides the machine among the pool
		{1, 0, max(1, procs)},   // one worker gets the whole machine
		{2, 16, 16},             // explicit values are not clamped
		{2, -1, 1},              // negative forces serial sieves
	}
	for _, tc := range cases {
		cfg := serve.Config{Workers: tc.workers, SieveWorkers: tc.sieve}.WithDefaults()
		if cfg.SieveWorkers != tc.want {
			t.Fatalf("Workers=%d SieveWorkers=%d: resolved to %d, want %d",
				tc.workers, tc.sieve, cfg.SieveWorkers, tc.want)
		}
		if tc.sieve == 0 && cfg.Workers*cfg.SieveWorkers > max(procs, cfg.Workers) {
			t.Fatalf("Workers=%d: default fan-out %d×%d oversubscribes GOMAXPROCS=%d",
				tc.workers, cfg.Workers, cfg.SieveWorkers, procs)
		}
	}
}
