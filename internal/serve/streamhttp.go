package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/histtest/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Streaming-ingestion endpoints: the serving layer of internal/stream.
//
//	POST   /v1/streams              StreamSpec → StreamInfo (register)
//	GET    /v1/streams/{id}         StreamInfo
//	DELETE /v1/streams/{id}         remove the stream
//	POST   /v1/streams/{id}/events  ingest a batch (ndjson or binary)
//	POST   /v1/streams/{id}/test    test the live window's counts
//
// Ingest admission mirrors the tester queue's discipline with its own
// semaphore: a batch acquires an ingest slot non-blockingly BEFORE the
// body is read — a 429 therefore guarantees no event of the batch was
// applied, which is what makes client retries safe. Tests of a stream
// go through the ordinary worker-pool admission (submit), so a test
// burst cannot starve ingest and vice versa.
//
// A janitor goroutine drives the time-based behavior: TTL eviction of
// idle streams, sliding-window rotation, and the periodic re-test
// scheduler (which submits through the same admission path and simply
// skips a beat when the queue is full).

// maxStreamDomain bounds a stream's domain size: large enough for any
// realistic histogram domain, small enough that a dense accumulator
// request cannot ask for an absurd allocation (sparse backings are lazy,
// but the limit is uniform to keep refusal predictable).
const maxStreamDomain = 1 << 30

// streamShuffleSalt decorrelates the snapshot shuffle's RNG stream from
// the tester's own randomness: both derive from the stream's test seed,
// and seeding two generators identically would make the tester's draws
// track the shuffle. The salt is part of the wire contract — a direct
// run must use rng.New(seed ^ streamShuffleSalt) for the replay shuffle
// to reproduce a served verdict bit-for-bit (pinned by the e2e test).
const streamShuffleSalt = 0xa5a5f00d9e3779b9

// handleStreamCreate serves POST /v1/streams.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	if s.Draining() {
		s.writeError(w, client.ErrCodeDraining, errDraining)
		return
	}
	var spec client.StreamSpec
	if err := s.decodeBody(w, r, &spec); err != nil {
		s.failRequest(w, err)
		return
	}
	cfg, err := streamConfigFromSpec(&spec)
	if err != nil {
		s.failRequest(w, err)
		return
	}
	st, err := s.streams.Create(cfg)
	if err != nil {
		if errors.Is(err, stream.ErrRegistryFull) || errors.Is(err, stream.ErrTenantQuota) {
			s.writeError(w, client.ErrCodeOverloaded, err)
		} else {
			s.failRequest(w, badReqf("%v", err))
		}
		return
	}
	obs.Ingest().ActiveStreams.Set(int64(s.streams.Len()))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(streamInfo(st))
}

// streamConfigFromSpec validates a wire spec into a registry config.
func streamConfigFromSpec(spec *client.StreamSpec) (stream.StreamConfig, error) {
	var zero stream.StreamConfig
	if spec.N < 1 {
		return zero, badReqf("n = %d must be positive", spec.N)
	}
	if spec.N > maxStreamDomain {
		return zero, badReqf("n = %d exceeds the stream domain limit %d", spec.N, maxStreamDomain)
	}
	if spec.K < 1 {
		return zero, badReqf("k = %d must be positive", spec.K)
	}
	if spec.Eps <= 0 || spec.Eps > 1 {
		return zero, badReqf("eps = %v must be in (0, 1]", spec.Eps)
	}
	if spec.Shards < 0 {
		return zero, badReqf("shards = %d must not be negative", spec.Shards)
	}
	if spec.Generations < 0 {
		return zero, badReqf("generations = %d must not be negative", spec.Generations)
	}
	if spec.WindowMS < 0 || spec.RetestEveryMS < 0 {
		return zero, badReqf("window_ms and retest_every_ms must not be negative")
	}
	gens := spec.Generations
	if spec.WindowMS > 0 && gens == 0 {
		gens = 8 // default sliding-window resolution
	}
	if spec.WindowMS == 0 && gens > 1 {
		return zero, badReqf("generations = %d requires window_ms (no rotation clock without a window)", gens)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1 // histtest.Options.Seed semantics
	}
	preset := ""
	if spec.Paper {
		preset = "paper"
	}
	return stream.StreamConfig{
		Tenant: spec.Tenant,
		Accum: stream.AccumConfig{
			N:           spec.N,
			Shards:      spec.Shards,
			Generations: gens,
			ForceSparse: spec.ForceSparse,
		},
		Params: stream.TestParams{
			K:    spec.K,
			Eps:  spec.Eps,
			Cfg:  preset,
			Seed: seed,
		},
		Window:      time.Duration(spec.WindowMS) * time.Millisecond,
		RetestEvery: time.Duration(spec.RetestEveryMS) * time.Millisecond,
	}, nil
}

// handleStreamInfo serves GET /v1/streams/{id}.
func (s *Server) handleStreamInfo(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	st, ok := s.streams.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, client.ErrCodeNotFound, fmt.Errorf("stream %q is not registered", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(streamInfo(st))
}

// handleStreamDelete serves DELETE /v1/streams/{id}.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	if !s.streams.Delete(r.PathValue("id")) {
		s.writeError(w, client.ErrCodeNotFound, fmt.Errorf("stream %q is not registered", r.PathValue("id")))
		return
	}
	obs.Ingest().ActiveStreams.Set(int64(s.streams.Len()))
	w.WriteHeader(http.StatusNoContent)
}

// countingReader tracks how many body bytes the decoder consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// handleStreamIngest serves POST /v1/streams/{id}/events. The ingest
// slot is acquired before the body is touched, so pushback (429/503)
// always means "nothing applied" and clients can retry the same batch.
func (s *Server) handleStreamIngest(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	iv := obs.Ingest()
	if s.Draining() {
		s.writeError(w, client.ErrCodeDraining, errDraining)
		return
	}
	st, ok := s.streams.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, client.ErrCodeNotFound, fmt.Errorf("stream %q is not registered", r.PathValue("id")))
		return
	}
	select {
	case s.ingestSlots <- struct{}{}:
	default:
		iv.Rejected.Add(1)
		s.writeError(w, client.ErrCodeOverloaded, errOverloaded)
		return
	}
	defer func() { <-s.ingestSlots }()

	cr := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	var applied int64
	var err error
	if strings.TrimSpace(ct) == "application/octet-stream" {
		applied, err = stream.DecodeBinary(cr, st.Acc.N(), 0, st.Acc.Ingest)
	} else {
		applied, err = stream.DecodeNDJSON(cr, st.Acc.N(), st.Acc.Ingest)
	}
	iv.Events.Add(applied)
	iv.Bytes.Add(cr.n)
	st.Touch(time.Now(), cr.n)
	if err != nil {
		iv.FormatErrors.Add(1)
		s.failRequest(w, badReqf("%v (%d events applied before the error)", err, applied))
		return
	}
	iv.Batches.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(client.IngestResponse{
		Events:       applied,
		WindowEvents: st.Acc.WindowEvents(),
		TotalEvents:  st.Acc.TotalEvents(),
	})
}

// handleStreamTest serves POST /v1/streams/{id}/test: snapshot the live
// window into a pooled Counts, run the tester over its replay, reply
// with the verdict. The run rides the ordinary worker-pool admission.
// An empty body is a plain "test now with the stream's own parameters".
func (s *Server) handleStreamTest(w http.ResponseWriter, r *http.Request) {
	vars().requests.Add(1)
	st, ok := s.streams.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, client.ErrCodeNotFound, fmt.Errorf("stream %q is not registered", r.PathValue("id")))
		return
	}
	var req client.StreamTestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		s.failRequest(w, badReqf("decoding request: %v", err))
		return
	}
	if req.TimeoutMS < 0 {
		s.failRequest(w, badReqf("timeout_ms = %d must not be negative", req.TimeoutMS))
		return
	}
	sp, snap, seed := s.buildStreamRunSpec(st, req.Seed, req.Workers, req.TimeoutMS)
	j, err := s.submit(r.Context(), sp, 0)
	if err != nil {
		s.writeError(w, admitErr(err), err)
		return
	}
	res := await(j)
	obs.Ingest().Tests.Add(1)
	st.RecordTest(testRecord(res, snap, seed))
	if res.Err != "" {
		s.writeError(w, res.Code, errors.New(res.Err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(client.StreamTestResponse{
		TestResult: res,
		StreamID:   st.ID,
		Events:     snap.Events,
		Distinct:   snap.Distinct,
		Seed:       seed,
	})
}

// buildStreamRunSpec snapshots the stream's window and resolves the run
// exactly as resolve does for wire requests: same preset, clamp, and
// timeout rules, so a stream test is an ordinary run whose oracle
// happens to replay accumulated counts. The pooled snapshot Counts is
// released before returning — NewCountsReplay copies what it needs.
func (s *Server) buildStreamRunSpec(st *stream.Stream, seedOverride uint64, workers int, timeoutMS int64) (*runSpec, stream.SnapshotStats, uint64) {
	params := st.Cfg.Params
	seed := seedOverride
	if seed == 0 {
		seed = params.Seed
	}
	counts, snap := st.Acc.Snapshot()
	o := oracle.NewCountsReplay(counts, rng.New(seed^streamShuffleSalt))
	counts.Release()

	cfg := core.PracticalConfig()
	if params.Cfg == "paper" {
		cfg = core.PaperConfig()
	}
	cfg.Workers = 1
	if workers > 1 {
		cfg.Workers = min(workers, s.cfg.SieveWorkers)
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if s.cfg.MaxSamplesPerRun > 0 {
		cfg.MaxSamples = s.cfg.MaxSamplesPerRun
	}
	sp := &runSpec{
		o:          o,
		k:          params.K,
		eps:        params.Eps,
		seed:       seed,
		cfg:        cfg,
		datasetLen: int(snap.Events),
	}
	switch {
	case timeoutMS == 0:
		if s.cfg.DefaultTimeout > 0 {
			sp.timeout = s.cfg.DefaultTimeout
		}
	default:
		sp.timeout = min(time.Duration(timeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	return sp, snap, seed
}

// testRecord condenses a run result into the stream's last-test record.
func testRecord(res client.TestResult, snap stream.SnapshotStats, seed uint64) stream.TestRecord {
	return stream.TestRecord{
		At:       time.Now(),
		Seed:     seed,
		Events:   snap.Events,
		Distinct: snap.Distinct,
		Accept:   res.Accept,
		Stage:    res.Stage,
		Err:      res.Err,
	}
}

// streamInfo renders a stream's live state as its wire form.
func streamInfo(st *stream.Stream) client.StreamInfo {
	batches, _ := st.Batches()
	info := client.StreamInfo{
		ID:           st.ID,
		Tenant:       st.Tenant,
		N:            st.Acc.N(),
		K:            st.Cfg.Params.K,
		Eps:          st.Cfg.Params.Eps,
		Seed:         st.Cfg.Params.Seed,
		Dense:        st.Acc.Dense(),
		Shards:       st.Acc.Shards(),
		Generations:  st.Acc.Generations(),
		WindowMS:     st.Cfg.Window.Milliseconds(),
		Created:      st.Created,
		WindowEvents: st.Acc.WindowEvents(),
		TotalEvents:  st.Acc.TotalEvents(),
		Batches:      batches,
		Rotations:    st.Acc.Rotations(),
	}
	if rec, ok := st.LastTest(); ok {
		info.LastTest = &client.StreamTestRecord{
			At:       rec.At,
			Seed:     rec.Seed,
			Events:   rec.Events,
			Distinct: rec.Distinct,
			Accept:   rec.Accept,
			Stage:    rec.Stage,
			Err:      rec.Err,
		}
	}
	return info
}

// janitor drives the registry's time-based behavior on a fixed tick.
func (s *Server) janitor() {
	defer s.workerWG.Done()
	t := time.NewTicker(s.cfg.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			s.janitorTick(now)
		}
	}
}

// janitorTick runs one maintenance pass: TTL sweep, window rotations,
// and due periodic re-tests (submitted through the ordinary admission
// path — a full queue skips the beat rather than queue-jumping).
func (s *Server) janitorTick(now time.Time) {
	iv := obs.Ingest()
	if n := s.streams.Sweep(); n > 0 {
		iv.Evictions.Add(int64(n))
	}
	iv.ActiveStreams.Set(int64(s.streams.Len()))
	for _, st := range s.streams.Snapshot() {
		if rot, dropped := st.MaybeRotate(now); rot > 0 {
			iv.Rotations.Add(int64(rot))
			iv.DroppedEvents.Add(dropped)
		}
		if st.DueRetest(now) && !s.Draining() {
			s.scheduleRetest(st)
		}
	}
}

// scheduleRetest submits one automatic re-test for the stream. The
// verdict lands in the stream's last-test record; nobody blocks on it.
func (s *Server) scheduleRetest(st *stream.Stream) {
	sp, snap, seed := s.buildStreamRunSpec(st, 0, 0, 0)
	j, err := s.submit(context.Background(), sp, 0)
	if err != nil {
		return // queue full or draining: skip this beat, the clock fires again
	}
	go func() {
		res := await(j)
		obs.Ingest().Tests.Add(1)
		st.RecordTest(testRecord(res, snap, seed))
	}()
}
