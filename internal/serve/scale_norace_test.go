//go:build !race

package serve_test

// raceScale relaxes the wall-clock bounds in the timing-sensitive
// tests. Without the race detector the calibrated budgets apply as-is.
const raceScale = 1
