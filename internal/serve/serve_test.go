package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/histtest/client"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/serve"
)

// fastSpec is a sub-second workload (≈170 ms serial); slowSpec takes
// several seconds serial, long enough to observe queue saturation and to
// prove that cancellation cuts a run short. Both are genuine
// k-histograms so runs accept deterministically.
func fastSpec() client.HistogramSpec {
	return client.HistogramSpec{N: 100_000, Cuts: []int{25_000, 50_000}, Masses: []float64{0.5, 0.2, 0.3}}
}

func slowSpec() client.HistogramSpec {
	return client.HistogramSpec{N: 400_000, Cuts: []int{100_000, 200_000}, Masses: []float64{0.5, 0.2, 0.3}}
}

// fastReq is the request the fast tests use: eps large enough that the
// budgets stay small.
func fastReq() client.TestRequest {
	return client.TestRequest{Spec: ptr(fastSpec()), K: 8, Eps: 0.8, Seed: 11, SamplerSeed: 7}
}

func ptr[T any](v T) *T { return &v }

// newTestServer starts a Server (draining it at cleanup) behind an
// httptest front end and returns the typed client pointed at it.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server, *client.Client) {
	t.Helper()
	s := serve.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	c := client.New(hs.URL)
	c.BaseBackoff = 50 * time.Millisecond
	c.MaxBackoff = 250 * time.Millisecond
	return s, hs, c
}

// directSpecRun reproduces server-side execution for a spec request:
// same prototype construction, same fork seed, same tester seed and
// config resolution.
func directSpecRun(t *testing.T, req client.TestRequest) (*core.Result, int64) {
	t.Helper()
	spec := req.Spec
	p := intervals.FromBoundaries(spec.N, spec.Cuts)
	total := 0.0
	for _, m := range spec.Masses {
		total += m
	}
	norm := make([]float64, len(spec.Masses))
	for i, m := range spec.Masses {
		norm[i] = m / total
	}
	pc, err := dist.FromWeights(p, norm)
	if err != nil {
		t.Fatalf("building distribution: %v", err)
	}
	samplerSeed := req.SamplerSeed
	if samplerSeed == 0 {
		samplerSeed = 1
	}
	o := oracle.NewSampler(pc, rng.New(0)).Fork(rng.New(samplerSeed))
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	cfg := core.PracticalConfig()
	if req.Scale > 0 && req.Scale != 1 {
		cfg = cfg.Scale(req.Scale)
	}
	cfg.Workers = 1
	cs, err := oracle.ParseCountStrategy(req.CountStrategy)
	if err != nil {
		t.Fatalf("parsing count strategy: %v", err)
	}
	cfg.CountStrategy = cs
	cfg.Engine = req.Engine
	res, err := core.Test(o, rng.New(seed), req.K, req.Eps, cfg)
	if err != nil {
		t.Fatalf("direct run failed: %v", err)
	}
	return res, o.Samples()
}

// wireTrace converts a core.Trace the way the server does.
func wireTrace(tr core.Trace) *client.Trace {
	return &client.Trace{
		N: tr.N, K: tr.K, B: tr.B, SieveRoundsRun: tr.SieveRoundsRun,
		PartitionSamples: tr.PartitionSamples, LearnSamples: tr.LearnSamples,
		SieveSamples: tr.SieveSamples, TestSamples: tr.TestSamples,
		RemovedHeavy: tr.RemovedHeavy, HeavySingletons: tr.HeavySingletons,
		RemovedRounds: tr.RemovedRounds, RemovedMass: tr.RemovedMass,
		CheckRelaxed: tr.CheckRelaxed, FinalZ: tr.FinalZ, FinalThresh: tr.FinalThresh,
		RejectStage: tr.RejectStage, RejectReason: tr.RejectReason,
	}
}

func assertBitIdentical(t *testing.T, got *client.TestResult, want *core.Result, wantSamples int64) {
	t.Helper()
	if got.Err != "" {
		t.Fatalf("served run failed: %s (%s)", got.Err, got.Code)
	}
	if got.Accept != want.Accept {
		t.Fatalf("served accept = %v, direct = %v", got.Accept, want.Accept)
	}
	if got.SamplesUsed != wantSamples {
		t.Fatalf("served samples = %d, direct = %d", got.SamplesUsed, wantSamples)
	}
	wantTr := wireTrace(want.Trace)
	if got.Trace == nil {
		t.Fatalf("served result carries no trace")
	}
	if *got.Trace != *wantTr {
		t.Fatalf("served trace differs from direct run:\n  served: %+v\n  direct: %+v", *got.Trace, *wantTr)
	}
}

// TestServedBitIdenticalToDirectSpec is acceptance criterion (a) for the
// sampler-spec path: the full wire Trace — final statistics included —
// must match a direct core.Test call bit for bit, across seeds and
// within-request worker counts.
func TestServedBitIdenticalToDirectSpec(t *testing.T) {
	_, _, c := newTestServer(t, serve.Config{Workers: 2, SieveWorkers: 4})
	for _, mut := range []func(*client.TestRequest){
		func(r *client.TestRequest) {},
		func(r *client.TestRequest) { r.Seed = 99 },
		func(r *client.TestRequest) { r.SamplerSeed = 3; r.Eps = 0.7 },
		func(r *client.TestRequest) { r.Workers = 4 }, // fan-out must not change the verdict
		func(r *client.TestRequest) { r.CountStrategy = "exact" },
		func(r *client.TestRequest) { r.CountStrategy = "closed-form" },
		func(r *client.TestRequest) { r.CountStrategy = "closed-form"; r.Workers = 4 },
		func(r *client.TestRequest) { r.Engine = "adk" }, // explicit default engine
		func(r *client.TestRequest) { r.Engine = "cdkl22" },
		func(r *client.TestRequest) { r.Engine = "cdkl22"; r.Seed = 99 },
		func(r *client.TestRequest) { r.Engine = "cdkl22"; r.Workers = 4 }, // trivially worker-independent
		func(r *client.TestRequest) { r.Engine = "cdkl22"; r.CountStrategy = "closed-form" },
	} {
		req := fastReq()
		mut(&req)
		res, err := c.Test(context.Background(), req)
		if err != nil {
			t.Fatalf("served request failed: %v", err)
		}
		direct, directSamples := directSpecRun(t, req)
		assertBitIdentical(t, res, direct, directSamples)
	}
}

// TestServedBitIdenticalToDirectReplay is criterion (a) for the
// recorded-dataset path.
func TestServedBitIdenticalToDirectReplay(t *testing.T) {
	_, _, c := newTestServer(t, serve.Config{Workers: 1})

	// A dataset big enough for the budgets at n=4096, k=4, eps=0.5.
	n, k, eps := 4096, 4, 0.5
	cfg := core.PracticalConfig()
	need := core.ExpectedSamples(n, k, eps, cfg) * 3 / 2
	src := rng.New(42)
	data := make([]int, need)
	for i := range data {
		data[i] = src.Intn(n / 4) // uniform over the first quarter: a 2-histogram
	}

	req := client.TestRequest{Samples: data, N: n, K: k, Eps: eps, Seed: 5}
	res, err := c.Test(context.Background(), req)
	if err != nil {
		t.Fatalf("served request failed: %v", err)
	}

	rep, err := oracle.NewReplay(n, data)
	if err != nil {
		t.Fatalf("building replay: %v", err)
	}
	dcfg := cfg
	dcfg.Workers = 1
	direct, err := core.Test(rep, rng.New(5), k, eps, dcfg)
	if err != nil {
		t.Fatalf("direct run failed: %v", err)
	}
	assertBitIdentical(t, res, direct, rep.Samples())
}

// TestRegisteredSamplerMatchesInline: a run referencing a registered
// spec is bit-identical to the same run with the spec inline (the
// registry only changes where the alias tables live).
func TestRegisteredSamplerMatchesInline(t *testing.T) {
	_, _, c := newTestServer(t, serve.Config{Workers: 2})
	ctx := context.Background()

	reg, err := c.RegisterSampler(ctx, fastSpec())
	if err != nil {
		t.Fatalf("registering sampler: %v", err)
	}
	if reg.ID == "" || reg.N != fastSpec().N {
		t.Fatalf("bad register response: %+v", reg)
	}

	inline := fastReq()
	byID := inline
	byID.Spec = nil
	byID.Sampler = reg.ID

	resInline, err := c.Test(ctx, inline)
	if err != nil {
		t.Fatalf("inline request failed: %v", err)
	}
	resByID, err := c.Test(ctx, byID)
	if err != nil {
		t.Fatalf("registered request failed: %v", err)
	}
	if *resInline.Trace != *resByID.Trace || resInline.SamplesUsed != resByID.SamplesUsed {
		t.Fatalf("registered-sampler run differs from inline:\n  inline: %+v\n  by-id:  %+v", resInline, resByID)
	}
}

// TestCancellationReleasesPooledCounts is acceptance criterion (b): a
// run cut off by its deadline returns within one sieve round (far below
// the full runtime) and the pool counters balance — every pooled Counts
// the cancelled run acquired was released.
func TestCancellationReleasesPooledCounts(t *testing.T) {
	_, _, c := newTestServer(t, serve.Config{Workers: 1})

	before := oracle.PoolStatsSnapshot()
	start := time.Now()
	req := client.TestRequest{Spec: ptr(slowSpec()), K: 8, Eps: 0.3, TimeoutMS: 150}
	_, err := c.Test(context.Background(), req)
	elapsed := time.Since(start)

	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("expected an APIError, got %v", err)
	}
	if apiErr.Code != client.ErrCodeCanceled || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("expected canceled/504, got %s/%d", apiErr.Code, apiErr.Status)
	}
	// The full workload runs ≈2.6 s serial (see calibration in the sieve
	// batch sizing); a deadline at 150 ms must surface within one sieve
	// batch of the cutoff, comfortably under half the full runtime.
	if elapsed > raceScale*1300*time.Millisecond {
		t.Fatalf("cancelled run took %s; cancellation did not cut the run short", elapsed)
	}
	// The HTTP response is written only after the worker finished the
	// run, so the pool deltas are settled: balance proves the cancelled
	// run retained no pooled Counts.
	after := oracle.PoolStatsSnapshot()
	acq := after.Acquires - before.Acquires
	rel := after.Releases - before.Releases
	if acq != rel {
		t.Fatalf("pool counters unbalanced after cancellation: %d acquires vs %d releases", acq, rel)
	}
	if acq == 0 {
		t.Fatalf("cancelled run drew no pooled batches; the workload never reached the sieve")
	}
}

// TestClientDisconnectCancelsRun: closing the client connection cancels
// the run server-side (criterion (b), client-abandonment flavor). The
// pool must settle balanced once the worker notices.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s, hs, _ := newTestServer(t, serve.Config{Workers: 1})

	before := oracle.PoolStatsSnapshot()
	body, _ := json.Marshal(client.TestRequest{Spec: ptr(slowSpec()), K: 8, Eps: 0.3})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	httpReq, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/test", strings.NewReader(string(body)))
	httpReq.Header.Set("Content-Type", "application/json")
	_, err := http.DefaultClient.Do(httpReq)
	if err == nil {
		t.Fatalf("expected the client-side deadline to abort the request")
	}

	// Drain waits for the worker to finish the cancelled run, so after
	// it returns the pool deltas are settled.
	dctx, dcancel := context.WithTimeout(context.Background(), raceScale*10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after disconnect: %v", err)
	}
	after := oracle.PoolStatsSnapshot()
	if acq, rel := after.Acquires-before.Acquires, after.Releases-before.Releases; acq != rel {
		t.Fatalf("pool counters unbalanced after disconnect: %d acquires vs %d releases", acq, rel)
	}
}

// TestQueueSaturation is acceptance criterion (c): with one worker and a
// one-deep queue, a third concurrent request is pushed back with 429 +
// Retry-After, and the typed client's backoff rides out the saturation
// and completes once the pool frees up.
func TestQueueSaturation(t *testing.T) {
	// The per-request deadline starts at admission, so a retry that lands
	// in the queue spends its budget waiting behind the slow occupants —
	// scale the deadline with the occupants' race-detector slowdown.
	_, hs, c := newTestServer(t, serve.Config{
		Workers: 1, QueueDepth: 1, RetryAfter: time.Second,
		DefaultTimeout: raceScale * 30 * time.Second,
	})

	slow := client.TestRequest{Spec: ptr(fastSpec()), K: 8, Eps: 0.3} // ≈1.2 s serial
	post := func() (*http.Response, error) {
		body, _ := json.Marshal(slow)
		return http.Post(hs.URL+"/v1/test", "application/json", strings.NewReader(string(body)))
	}

	// Occupy the worker and the queue slot.
	var wg sync.WaitGroup
	results := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := post()
			if err != nil {
				t.Errorf("background request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			results[i] = resp.StatusCode
		}(i)
		// Give request i time to be admitted before the next submission,
		// so worker + queue are deterministically occupied.
		time.Sleep(150 * time.Millisecond)
	}

	// The third request must be pushed back immediately.
	resp, err := post()
	if err != nil {
		t.Fatalf("saturating request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429 under saturation, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("expected Retry-After: 1, got %q", ra)
	}

	// The typed client retries through the saturation and succeeds once
	// the two occupants finish (the occupants themselves slow down under
	// the race detector, so the retry budget scales too).
	c.MaxRetries = 30 * raceScale
	res, err := c.Test(context.Background(), slow)
	if err != nil {
		t.Fatalf("client did not recover from saturation: %v", err)
	}
	if res.Err != "" || !res.Accept {
		t.Fatalf("recovered request returned a bad verdict: %+v", res)
	}
	wg.Wait()
	for i, code := range results {
		if code != http.StatusOK {
			t.Fatalf("background request %d finished with %d", i, code)
		}
	}
}

// TestSaturatedQueueHonorsDeadline: the per-request deadline starts at
// admission and is honored end to end — a request whose deadline expires
// while it is still WAITING in the queue is answered 504 at the
// deadline, not after the worker eventually dequeues it. Before the fix
// the deadline clock only started when a worker picked the job up, so
// queue wait silently extended the budget past what the client asked for.
func TestSaturatedQueueHonorsDeadline(t *testing.T) {
	_, _, c := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1})

	// Occupy the single worker with a run that takes seconds.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.Test(context.Background(), client.TestRequest{Spec: ptr(slowSpec()), K: 8, Eps: 0.3})
	}()
	time.Sleep(300 * time.Millisecond) // the occupant is on the worker now

	// This request is admitted into the queue but cannot reach the worker
	// until the occupant finishes — far beyond its own 200 ms deadline.
	start := time.Now()
	_, err := c.Test(context.Background(), client.TestRequest{Spec: ptr(fastSpec()), K: 8, Eps: 0.8, TimeoutMS: 200})
	elapsed := time.Since(start)

	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("expected an APIError, got %v", err)
	}
	if apiErr.Code != client.ErrCodeCanceled || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("expected canceled/504, got %s/%d", apiErr.Code, apiErr.Status)
	}
	// The occupant holds the worker for seconds; being answered anywhere
	// near the 200 ms deadline proves the response did not wait for the
	// dequeue.
	if elapsed > raceScale*1200*time.Millisecond {
		t.Fatalf("queued request answered after %s; deadline not honored end to end", elapsed)
	}
	wg.Wait()
}

// TestDrain: draining flips /healthz and admission to 503 (with a
// Retry-After hint) while the in-flight run completes, and Drain returns
// cleanly once the pool idles.
func TestDrain(t *testing.T) {
	s, hs, c := newTestServer(t, serve.Config{Workers: 1, RetryAfter: 2 * time.Second})

	// Park one run in the pool.
	type outcome struct {
		res *client.TestResult
		err error
	}
	inFlight := make(chan outcome, 1)
	go func() {
		res, err := c.Test(context.Background(), client.TestRequest{Spec: ptr(fastSpec()), K: 8, Eps: 0.3})
		inFlight <- outcome{res, err}
	}()
	time.Sleep(200 * time.Millisecond) // let it be admitted

	s.StartDraining()

	if err := c.Health(context.Background()); err == nil {
		t.Fatalf("healthz still healthy while draining")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 from healthz, got %v", err)
	}

	body, _ := json.Marshal(fastReq())
	resp, err := http.Post(hs.URL+"/v1/test", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("post while draining: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 while draining, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("expected Retry-After: 2 while draining, got %q", ra)
	}

	// The in-flight run must finish normally under the drain.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := <-inFlight
	if out.err != nil {
		t.Fatalf("in-flight run failed under drain: %v", out.err)
	}
	if !out.res.Accept {
		t.Fatalf("in-flight run rejected unexpectedly: %+v", out.res)
	}
}

// TestDrainDeadlineCancelsInFlight: when the drain budget expires, the
// in-flight run is hard-cancelled through the tester's context checks
// and Drain still returns (with the deadline error).
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	s, _, c := newTestServer(t, serve.Config{Workers: 1, DefaultTimeout: -1})

	done := make(chan error, 1)
	go func() {
		_, err := c.Test(context.Background(), client.TestRequest{Spec: ptr(slowSpec()), K: 8, Eps: 0.3})
		done <- err
	}()
	time.Sleep(300 * time.Millisecond) // the run is on the worker now

	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(dctx)
	if err == nil {
		t.Fatalf("expected the drain deadline to expire")
	}
	if waited := time.Since(start); waited > raceScale*2*time.Second {
		t.Fatalf("drain hard-stop took %s; the cancellation did not reach the run", waited)
	}
	apiErr, ok := (<-done).(*client.APIError)
	if !ok || apiErr.Code != client.ErrCodeCanceled {
		t.Fatalf("in-flight run should have been cancelled, got %v", apiErr)
	}
}

// TestStreamBatch: the streaming endpoint fans a batch across the pool
// and yields every result; per-index results are bit-identical to
// single-request runs.
func TestStreamBatch(t *testing.T) {
	_, _, c := newTestServer(t, serve.Config{Workers: 4, QueueDepth: 8})
	ctx := context.Background()

	reqs := make([]client.TestRequest, 3)
	for i := range reqs {
		reqs[i] = fastReq()
		reqs[i].Seed = uint64(100 + i)
	}
	batch, err := c.TestBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch failed: %v", err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(batch), len(reqs))
	}
	for i, res := range batch {
		if res.Index != i {
			t.Fatalf("results not sorted by index: %v", batch)
		}
		single, err := c.Test(ctx, reqs[i])
		if err != nil {
			t.Fatalf("single request %d failed: %v", i, err)
		}
		if *single.Trace != *res.Trace {
			t.Fatalf("batch result %d differs from single-request run", i)
		}
	}
}

// TestStreamBatchOverloaded: a batch larger than the queue is pushed
// back atomically with 429 — no partial admission.
func TestStreamBatchOverloaded(t *testing.T) {
	_, hs, _ := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 2})
	reqs := client.BatchRequest{Requests: []client.TestRequest{fastReq(), fastReq(), fastReq()}}
	body, _ := json.Marshal(reqs)
	resp, err := http.Post(hs.URL+"/v1/test/stream", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("posting batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429 for an oversized batch, got %d", resp.StatusCode)
	}
}

// TestBadRequests: the validation surface — every malformed request is
// rejected before costing a queue slot, with the right status and code.
func TestBadRequests(t *testing.T) {
	_, hs, _ := newTestServer(t, serve.Config{Workers: 1})
	cases := []struct {
		name   string
		req    client.TestRequest
		status int
		code   string
	}{
		{"no source", client.TestRequest{K: 4, Eps: 0.5}, 400, client.ErrCodeBadRequest},
		{"two sources", client.TestRequest{Samples: []int{0, 1}, Spec: ptr(fastSpec()), N: 2, K: 4, Eps: 0.5}, 400, client.ErrCodeBadRequest},
		{"bad k", client.TestRequest{Spec: ptr(fastSpec()), K: 0, Eps: 0.5}, 400, client.ErrCodeBadRequest},
		{"bad eps", client.TestRequest{Spec: ptr(fastSpec()), K: 4, Eps: 1.5}, 400, client.ErrCodeBadRequest},
		{"samples without n", client.TestRequest{Samples: []int{0, 1, 2}, K: 2, Eps: 0.5}, 400, client.ErrCodeBadRequest},
		{"sample out of range", client.TestRequest{Samples: []int{0, 99}, N: 10, K: 2, Eps: 0.5}, 400, client.ErrCodeBadRequest},
		{"unknown sampler", client.TestRequest{Sampler: "nope", K: 4, Eps: 0.5}, 404, client.ErrCodeUnknownSampler},
		{"n mismatch", client.TestRequest{Spec: ptr(fastSpec()), N: 7, K: 4, Eps: 0.5}, 400, client.ErrCodeBadRequest},
		{"negative timeout", client.TestRequest{Spec: ptr(fastSpec()), K: 4, Eps: 0.5, TimeoutMS: -1}, 400, client.ErrCodeBadRequest},
		{"dataset too small", client.TestRequest{Samples: []int{0, 1, 2, 3}, N: 64, K: 2, Eps: 0.5}, 422, client.ErrCodeNeedMoreSamples},
		{"bad count strategy", client.TestRequest{Spec: ptr(fastSpec()), K: 4, Eps: 0.5, CountStrategy: "fast"}, 400, client.ErrCodeBadRequest},
		{"unknown engine", client.TestRequest{Spec: ptr(fastSpec()), K: 4, Eps: 0.5, Engine: "adk2"}, 400, client.ErrCodeBadRequest},
		{"engine case-sensitive", client.TestRequest{Spec: ptr(fastSpec()), K: 4, Eps: 0.5, Engine: "ADK"}, 400, client.ErrCodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _ := json.Marshal(tc.req)
			resp, err := http.Post(hs.URL+"/v1/test", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Fatalf("post: %v", err)
			}
			defer resp.Body.Close()
			var wire client.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
				t.Fatalf("decoding error body: %v", err)
			}
			if resp.StatusCode != tc.status || wire.Code != tc.code {
				t.Fatalf("got %d/%s (%s), want %d/%s", resp.StatusCode, wire.Code, wire.Error, tc.status, tc.code)
			}
		})
	}

	t.Run("bad spec", func(t *testing.T) {
		body, _ := json.Marshal(client.HistogramSpec{N: 100, Cuts: []int{50, 20}, Masses: []float64{1, 1, 1}})
		resp, err := http.Post(hs.URL+"/v1/samplers", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("expected 400 for an invalid spec, got %d", resp.StatusCode)
		}
	})
}

// TestExpvarCounters: served runs move the histd.* and histtest.*
// counters on /debug/vars.
func TestExpvarCounters(t *testing.T) {
	_, hs, c := newTestServer(t, serve.Config{Workers: 1})

	readVars := func() map[string]json.RawMessage {
		resp, err := http.Get(hs.URL + "/debug/vars")
		if err != nil {
			t.Fatalf("fetching /debug/vars: %v", err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decoding /debug/vars: %v", err)
		}
		return m
	}
	asInt := func(m map[string]json.RawMessage, key string) int64 {
		raw, ok := m[key]
		if !ok {
			t.Fatalf("expvar %q not published", key)
		}
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("expvar %q is not an int: %s", key, raw)
		}
		return v
	}

	before := readVars()
	if _, err := c.Test(context.Background(), fastReq()); err != nil {
		t.Fatalf("request failed: %v", err)
	}
	after := readVars()

	if d := asInt(after, "histd.runs_accept") - asInt(before, "histd.runs_accept"); d != 1 {
		t.Fatalf("histd.runs_accept moved by %d, want 1", d)
	}
	if d := asInt(after, "histtest.runs_started") - asInt(before, "histtest.runs_started"); d != 1 {
		t.Fatalf("histtest.runs_started moved by %d, want 1", d)
	}
	if d := asInt(after, "histtest.samples_total") - asInt(before, "histtest.samples_total"); d <= 0 {
		t.Fatalf("histtest.samples_total did not move")
	}
}
