package serve

// StreamShuffleSalt exposes the snapshot-shuffle seed salt to the
// external test package: the e2e bit-identity test reproduces a served
// stream verdict with a direct core.Test call and must derive the
// replay shuffle's RNG exactly as the server does.
const StreamShuffleSalt = streamShuffleSalt

// ClosenessSamplerSaltB and ClosenessShuffleSaltB expose the side-B seed
// salts of /v1/closeness: the bit-identity suite reconstructs both
// sides' oracles exactly as resolveSide does.
const (
	ClosenessSamplerSaltB = closenessSamplerSaltB
	ClosenessShuffleSaltB = closenessShuffleSaltB
)

// WithDefaults exposes Config resolution so tests can pin the default
// SieveWorkers clamp without starting a server.
func (c Config) WithDefaults() Config { return c.withDefaults() }
