package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/histtest/client"
	"repro/internal/closeness"
	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/serve"
)

// closeSpecA / closeSpecB are genuine 4-histograms over the same domain;
// A vs A is a same-distribution pair, A vs B is far (the bucket masses
// differ by 0.6 in TV before flattening effects).
func closeSpecA() client.HistogramSpec {
	return client.HistogramSpec{N: 4096, Cuts: []int{1024, 2048, 3072}, Masses: []float64{0.4, 0.1, 0.3, 0.2}}
}

func closeSpecB() client.HistogramSpec {
	return client.HistogramSpec{N: 4096, Cuts: []int{1024, 2048, 3072}, Masses: []float64{0.1, 0.4, 0.2, 0.3}}
}

// specDist builds the normalized distribution of a wire spec, exactly as
// the server's buildSampler does.
func specDist(t *testing.T, spec client.HistogramSpec) *dist.PiecewiseConstant {
	t.Helper()
	p := intervals.FromBoundaries(spec.N, spec.Cuts)
	total := 0.0
	for _, m := range spec.Masses {
		total += m
	}
	norm := make([]float64, len(spec.Masses))
	for i, m := range spec.Masses {
		norm[i] = m / total
	}
	pc, err := dist.FromWeights(p, norm)
	if err != nil {
		t.Fatalf("building distribution: %v", err)
	}
	return pc
}

// directClosenessConfig resolves a wire closeness request's tester config
// the way resolveCloseness does (server defaults, scale, strategy),
// pinned to serial workers — the whole point is that the served run's
// fan-out must not matter.
func directClosenessConfig(t *testing.T, req client.ClosenessRequest) closeness.Config {
	t.Helper()
	cfg := closeness.DefaultConfig()
	if req.Reps != 0 {
		cfg.Reps = req.Reps
	}
	if req.Scale > 0 && req.Scale != 1 {
		cfg = cfg.Scale(req.Scale)
	}
	cs, err := oracle.ParseCountStrategy(req.CountStrategy)
	if err != nil {
		t.Fatalf("parsing count strategy: %v", err)
	}
	cfg.CountStrategy = cs
	cfg.Workers = 1
	return cfg
}

// closenessSeeds resolves the request's zero-default seeds.
func closenessSeeds(req client.ClosenessRequest) (seed, samplerSeed uint64) {
	seed, samplerSeed = req.Seed, req.SamplerSeed
	if seed == 0 {
		seed = 1
	}
	if samplerSeed == 0 {
		samplerSeed = 1
	}
	return seed, samplerSeed
}

func assertClosenessBitIdentical(t *testing.T, label string, got *client.ClosenessResponse, want *closeness.TwoSampleResult) {
	t.Helper()
	wire := client.ClosenessVerdict{
		Accept: want.Accept, N: want.N, Intervals: want.Intervals,
		B: want.B, M: want.M, Reps: want.Reps, Accepts: want.Accepts,
		Z: want.Z, Threshold: want.Threshold,
		PartitionSamples: want.PartitionSamples, TestSamples: want.TestSamples,
		SamplesA: want.SamplesX, SamplesB: want.SamplesY,
	}
	if got.ClosenessVerdict != wire {
		t.Fatalf("%s: served verdict differs from direct run:\n  served: %+v\n  direct: %+v", label, got.ClosenessVerdict, wire)
	}
}

// TestClosenessSpecPairBitIdentical: a served spec-pair verdict matches a
// direct in-process closeness.TestTwoSample with the server's seed
// derivations — at every requested worker count, both count strategies,
// and for both the same-distribution and the far pair.
func TestClosenessSpecPairBitIdentical(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 2, SieveWorkers: 8}))
	ctx := context.Background()

	for _, tc := range []struct {
		name       string
		b          client.HistogramSpec
		wantAccept bool
	}{
		{"same", closeSpecA(), true},
		{"far", closeSpecB(), false},
	} {
		for _, cs := range []string{"", "closed-form"} {
			req := client.ClosenessRequest{
				A: client.ClosenessSide{Spec: ptr(closeSpecA())},
				B: client.ClosenessSide{Spec: ptr(tc.b)},
				K: 4, Eps: 0.4, Seed: 11, SamplerSeed: 7,
				CountStrategy: cs,
			}
			seed, samplerSeed := closenessSeeds(req)
			oa := oracle.NewSampler(specDist(t, closeSpecA()), rng.New(0)).Fork(rng.New(samplerSeed))
			ob := oracle.NewSampler(specDist(t, tc.b), rng.New(0)).Fork(rng.New(samplerSeed ^ serve.ClosenessSamplerSaltB))
			direct, err := closeness.TestTwoSample(ctx, oa, ob, rng.New(seed), req.K, req.Eps, directClosenessConfig(t, req))
			if err != nil {
				t.Fatalf("%s/%q: direct run failed: %v", tc.name, cs, err)
			}
			if direct.Accept != tc.wantAccept {
				t.Fatalf("%s/%q: direct accept = %v, want %v (%+v)", tc.name, cs, direct.Accept, tc.wantAccept, direct)
			}
			for _, workers := range []int{0, 1, 2, 4, 8} {
				req.Workers = workers
				res, err := c.Closeness(ctx, req)
				if err != nil {
					t.Fatalf("%s/%q workers=%d: %v", tc.name, cs, workers, err)
				}
				assertClosenessBitIdentical(t, tc.name, res, direct)
				if res.EventsA != 0 || res.EventsB != 0 {
					t.Fatalf("%s: non-stream sides reported window events: %+v", tc.name, res)
				}
			}
		}
	}
}

// TestClosenessReplayPairBitIdentical: recorded-dataset pairs run the
// serial replay path; the verdict must match the direct run and be
// independent of the requested worker count.
func TestClosenessReplayPairBitIdentical(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 2, SieveWorkers: 8}))
	ctx := context.Background()

	spec := closeSpecA()
	n, k, eps := spec.N, 4, 0.4
	need := closeness.DefaultConfig().ExpectedSamples(n, k, eps) * 2
	mkData := func(seed uint64) []int {
		src := oracle.NewSampler(specDist(t, spec), rng.New(0)).Fork(rng.New(seed))
		data := make([]int, need)
		for i := range data {
			data[i] = src.Draw()
		}
		return data
	}
	dataA, dataB := mkData(101), mkData(202)

	req := client.ClosenessRequest{
		A: client.ClosenessSide{Samples: dataA},
		B: client.ClosenessSide{Samples: dataB},
		N: n, K: k, Eps: eps, Seed: 13,
	}
	seed, _ := closenessSeeds(req)
	mkReplay := func(data []int) oracle.Oracle {
		rep, err := oracle.NewReplay(n, data)
		if err != nil {
			t.Fatalf("building replay: %v", err)
		}
		return rep
	}
	direct, err := closeness.TestTwoSample(ctx, mkReplay(dataA), mkReplay(dataB), rng.New(seed), k, eps, directClosenessConfig(t, req))
	if err != nil {
		t.Fatalf("direct run failed: %v", err)
	}
	if !direct.Accept {
		t.Fatalf("same-distribution replay pair rejected: %+v", direct)
	}
	for _, workers := range []int{0, 4} {
		req.Workers = workers
		res, err := c.Closeness(ctx, req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertClosenessBitIdentical(t, "replay", res, direct)
	}
}

// TestClosenessStreamPairBitIdentical: two live stream windows, snapshot
// semantics. The direct run folds the same events into pooled Counts and
// replays with the server's documented salts: side A seed^StreamShuffleSalt
// (the one-sample convention), side B seed^ClosenessShuffleSaltB.
func TestClosenessStreamPairBitIdentical(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 2, SieveWorkers: 8}))
	ctx := context.Background()

	n, k, eps := 4096, 4, 0.4
	need := closeness.DefaultConfig().ExpectedSamples(n, k, eps) * 2
	mkEvents := func(seed uint64) []int {
		src := rng.New(seed)
		data := make([]int, need)
		for i := range data {
			data[i] = src.Intn(n / 4) // uniform over the first quarter: a 2-histogram
		}
		return data
	}
	eventsA, eventsB := mkEvents(31), mkEvents(32)

	mkStream := func(events []int) string {
		info, err := c.CreateStream(ctx, client.StreamSpec{N: n, K: k, Eps: eps})
		if err != nil {
			t.Fatalf("creating stream: %v", err)
		}
		const chunk = 8192
		for i := 0; i < len(events); i += chunk {
			if _, err := c.IngestEvents(ctx, info.ID, events[i:min(i+chunk, len(events))]); err != nil {
				t.Fatalf("ingest: %v", err)
			}
		}
		return info.ID
	}
	idA, idB := mkStream(eventsA), mkStream(eventsB)

	req := client.ClosenessRequest{
		A: client.ClosenessSide{Stream: idA},
		B: client.ClosenessSide{Stream: idB},
		K: k, Eps: eps, Seed: 17,
	}
	seed, _ := closenessSeeds(req)
	mkWindow := func(events []int, shuffleSeed uint64) oracle.Oracle {
		counts := oracle.AcquireCounts(n, len(events))
		for _, v := range events {
			counts.AddN(v, 1)
		}
		o := oracle.NewCountsReplay(counts, rng.New(shuffleSeed))
		counts.Release()
		return o
	}
	direct, err := closeness.TestTwoSample(ctx,
		mkWindow(eventsA, seed^serve.StreamShuffleSalt),
		mkWindow(eventsB, seed^serve.ClosenessShuffleSaltB),
		rng.New(seed), k, eps, directClosenessConfig(t, req))
	if err != nil {
		t.Fatalf("direct run failed: %v", err)
	}
	if !direct.Accept {
		t.Fatalf("same-distribution stream pair rejected: %+v", direct)
	}
	for _, workers := range []int{0, 4} {
		req.Workers = workers
		res, err := c.Closeness(ctx, req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertClosenessBitIdentical(t, "stream", res, direct)
		if res.EventsA != int64(len(eventsA)) || res.EventsB != int64(len(eventsB)) {
			t.Fatalf("window sizes %d/%d, want %d/%d", res.EventsA, res.EventsB, len(eventsA), len(eventsB))
		}
	}
}

// TestClosenessValidation covers the admission-time error surface: every
// malformed pair is rejected with its precise status and code, before
// costing a queue slot.
func TestClosenessValidation(t *testing.T) {
	_, hs, c := newTestServer(t, noJanitor(serve.Config{Workers: 1}))
	ctx := context.Background()

	regd, err := c.RegisterSampler(ctx, closeSpecA())
	if err != nil {
		t.Fatalf("registering sampler: %v", err)
	}
	stInfo, err := c.CreateStream(ctx, client.StreamSpec{N: 4096, K: 4, Eps: 0.4})
	if err != nil {
		t.Fatalf("creating stream: %v", err)
	}

	okA := client.ClosenessSide{Spec: ptr(closeSpecA())}
	cases := []struct {
		name     string
		req      client.ClosenessRequest
		status   int
		wantCode string
	}{
		{"no sources", client.ClosenessRequest{K: 4, Eps: 0.4}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"two sources one side", client.ClosenessRequest{A: client.ClosenessSide{Spec: ptr(closeSpecA()), Sampler: regd.ID}, B: okA, K: 4, Eps: 0.4}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"bad k", client.ClosenessRequest{A: okA, B: okA, K: 0, Eps: 0.4}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"bad eps", client.ClosenessRequest{A: okA, B: okA, K: 4, Eps: 1.5}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"unknown sampler side b", client.ClosenessRequest{A: client.ClosenessSide{Sampler: regd.ID}, B: client.ClosenessSide{Sampler: "nope"}, K: 4, Eps: 0.4}, http.StatusNotFound, client.ErrCodeUnknownSampler},
		{"unknown stream", client.ClosenessRequest{A: okA, B: client.ClosenessSide{Stream: "nope"}, K: 4, Eps: 0.4}, http.StatusNotFound, client.ErrCodeNotFound},
		{"empty stream window", client.ClosenessRequest{A: okA, B: client.ClosenessSide{Stream: stInfo.ID}, K: 4, Eps: 0.4}, http.StatusUnprocessableEntity, client.ErrCodeNeedMoreSamples},
		{"mismatched domains", client.ClosenessRequest{A: okA, B: client.ClosenessSide{Spec: &client.HistogramSpec{N: 64, Masses: []float64{1}}}, K: 4, Eps: 0.4}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"dataset without n", client.ClosenessRequest{A: client.ClosenessSide{Samples: []int{1, 2, 3}}, B: okA, K: 4, Eps: 0.4}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"negative reps", client.ClosenessRequest{A: okA, B: okA, K: 4, Eps: 0.4, Reps: -2}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"negative timeout", client.ClosenessRequest{A: okA, B: okA, K: 4, Eps: 0.4, TimeoutMS: -1}, http.StatusBadRequest, client.ErrCodeBadRequest},
		{"bad count strategy", client.ClosenessRequest{A: okA, B: okA, K: 4, Eps: 0.4, CountStrategy: "psychic"}, http.StatusBadRequest, client.ErrCodeBadRequest},
	}
	for _, tc := range cases {
		_, err := c.Closeness(ctx, tc.req)
		apiErr, ok := err.(*client.APIError)
		if !ok {
			t.Fatalf("%s: error = %v, want *APIError", tc.name, err)
		}
		if apiErr.Status != tc.status || apiErr.Code != tc.wantCode {
			t.Fatalf("%s: got %d/%s, want %d/%s (%s)", tc.name, apiErr.Status, apiErr.Code, tc.status, tc.wantCode, apiErr.Message)
		}
	}

	// Unknown wire fields are 400, never silently dropped.
	resp, err := http.Post(hs.URL+"/v1/closeness", "application/json",
		strings.NewReader(`{"a":{"sampler":"`+regd.ID+`"},"b":{"sampler":"`+regd.ID+`"},"k":4,"eps":0.4,"bogus":1}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// A dataset smaller than the budget is a 422 at run time.
	small := make([]int, 64)
	_, err = c.Closeness(ctx, client.ClosenessRequest{
		A: client.ClosenessSide{Samples: small},
		B: client.ClosenessSide{Samples: small},
		N: 4096, K: 4, Eps: 0.4,
	})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != client.ErrCodeNeedMoreSamples {
		t.Fatalf("small dataset: error = %v, want 422 need_more_samples", err)
	}
}

// TestClosenessRepsOverride: the server default and the per-request
// override both reach the tester.
func TestClosenessRepsOverride(t *testing.T) {
	_, _, c := newTestServer(t, noJanitor(serve.Config{Workers: 1, ClosenessReps: 3}))
	ctx := context.Background()
	req := client.ClosenessRequest{
		A: client.ClosenessSide{Spec: ptr(closeSpecA())},
		B: client.ClosenessSide{Spec: ptr(closeSpecA())},
		K: 4, Eps: 0.4,
	}
	res, err := c.Closeness(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 3 {
		t.Fatalf("server default reps = %d, want 3", res.Reps)
	}
	req.Reps = 7
	res, err = c.Closeness(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 7 {
		t.Fatalf("override reps = %d, want 7", res.Reps)
	}
}

// TestClosenessVerdictOnWire: the raw JSON body carries the documented
// field names (the wire schema is the contract; a rename is a break).
func TestClosenessVerdictOnWire(t *testing.T) {
	_, hs, _ := newTestServer(t, noJanitor(serve.Config{Workers: 1}))
	body := `{"a":{"spec":{"n":4096,"cuts":[1024,2048,3072],"masses":[0.4,0.1,0.3,0.2]}},` +
		`"b":{"spec":{"n":4096,"cuts":[1024,2048,3072],"masses":[0.4,0.1,0.3,0.2]}},"k":4,"eps":0.4}`
	resp, err := http.Post(hs.URL+"/v1/closeness", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	for _, field := range []string{"accept", "n", "intervals", "b", "m", "reps", "accepts", "z", "threshold",
		"partition_samples", "test_samples", "samples_a", "samples_b", "elapsed_ms"} {
		if _, ok := raw[field]; !ok {
			t.Fatalf("response missing wire field %q: %v", field, raw)
		}
	}
}
