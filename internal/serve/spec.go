package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/histtest/client"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// runSpec is a TestRequest resolved into the concrete inputs of one
// core.TestContext call. Resolution happens on the HTTP goroutine at
// admission time, so malformed requests are rejected with 4xx before
// they cost a queue slot; everything here is deterministic, making a
// served run bit-identical to a direct call with the same inputs.
type runSpec struct {
	o          oracle.Oracle
	k          int
	eps        float64
	seed       uint64
	cfg        core.Config
	timeout    time.Duration
	datasetLen int // replay requests: the dataset size (error reporting)

	// close, when non-nil, marks a two-sample closeness run: o is side A
	// and close carries side B plus the closeness config (cfg above is
	// unused then). See closeness.go.
	close *closenessRun
}

// badRequest is a resolution failure carrying its wire error code.
type badRequest struct {
	code string
	msg  string
}

func (e *badRequest) Error() string { return e.msg }

func badReqf(format string, args ...any) error {
	return &badRequest{code: client.ErrCodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

// resolve turns a wire request into a runSpec, validating everything the
// core tester would reject — plus the serving-layer limits (deadline
// clamp, sieve fan-out cap).
func (s *Server) resolve(req *client.TestRequest) (*runSpec, error) {
	sources := 0
	if len(req.Samples) > 0 {
		sources++
	}
	if req.Spec != nil {
		sources++
	}
	if req.Sampler != "" {
		sources++
	}
	if sources != 1 {
		return nil, badReqf("exactly one of samples, spec, sampler must be set (got %d)", sources)
	}
	if req.K < 1 {
		return nil, badReqf("k = %d must be positive", req.K)
	}
	if req.Eps <= 0 || req.Eps > 1 {
		return nil, badReqf("eps = %v must be in (0, 1]", req.Eps)
	}

	sp := &runSpec{k: req.K, eps: req.Eps, seed: req.Seed}
	if sp.seed == 0 {
		sp.seed = 1 // histtest.Options.Seed semantics
	}

	samplerSeed := req.SamplerSeed
	if samplerSeed == 0 {
		samplerSeed = 1
	}

	switch {
	case len(req.Samples) > 0:
		if req.N < 1 {
			return nil, badReqf("n = %d must be positive with a samples dataset", req.N)
		}
		rep, err := oracle.NewReplay(req.N, req.Samples)
		if err != nil {
			return nil, badReqf("invalid dataset: %v", err)
		}
		sp.o = rep
		sp.datasetLen = len(req.Samples)
	case req.Spec != nil:
		proto, err := buildSampler(req.Spec)
		if err != nil {
			return nil, err
		}
		if req.N != 0 && req.N != proto.N() {
			return nil, badReqf("n = %d does not match the spec's domain %d", req.N, proto.N())
		}
		sp.o = proto.Fork(rng.New(samplerSeed))
	default:
		proto, ok := s.samplers.get(req.Sampler)
		if !ok {
			return nil, &badRequest{code: client.ErrCodeUnknownSampler, msg: fmt.Sprintf("sampler %q is not registered", req.Sampler)}
		}
		if req.N != 0 && req.N != proto.N() {
			return nil, badReqf("n = %d does not match sampler %q's domain %d", req.N, req.Sampler, proto.N())
		}
		sp.o = proto.Fork(rng.New(samplerSeed))
	}

	cfg := core.PracticalConfig()
	if req.Paper {
		cfg = core.PaperConfig()
	}
	if req.Scale > 0 && req.Scale != 1 {
		cfg = cfg.Scale(req.Scale)
	}
	// Within-request sieve fan-out: serial unless the deployment allows
	// more. Clamping never changes the verdict (Workers is a pure
	// throughput knob), so clamped requests still match direct runs.
	cfg.Workers = 1
	if req.Workers > 1 {
		cfg.Workers = min(req.Workers, s.cfg.SieveWorkers)
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if s.cfg.MaxSamplesPerRun > 0 {
		cfg.MaxSamples = s.cfg.MaxSamplesPerRun
	}
	cs, err := oracle.ParseCountStrategy(req.CountStrategy)
	if err != nil {
		return nil, badReqf("%v", err)
	}
	// Replay oracles lack the CountDrawer capability, so a closed-form
	// request over a dataset falls back to the exact path inside the
	// tester (oracle.EffectiveStrategy) — no error, same verdict law.
	cfg.CountStrategy = cs
	// Engine names resolve here at admission time so an unknown engine
	// is a 400 before it costs a queue slot — and never a silent
	// fallback to the default (core.TestContext would also refuse it,
	// but only after admission).
	if _, err := core.EngineFor(req.Engine); err != nil {
		return nil, badReqf("%v", err)
	}
	cfg.Engine = req.Engine
	sp.cfg = cfg

	switch {
	case req.TimeoutMS < 0:
		return nil, badReqf("timeout_ms = %d must not be negative", req.TimeoutMS)
	case req.TimeoutMS == 0:
		if s.cfg.DefaultTimeout > 0 {
			sp.timeout = s.cfg.DefaultTimeout
		}
	default:
		sp.timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	return sp, nil
}

// buildSampler validates a wire spec and builds the alias-table sampler
// prototype over it. The prototype's RNG is never drawn from; every run
// forks it with the request's sampler seed, so concurrent requests share
// the immutable alias tables (the same prototype-sharing scheme as
// histtest.Histogram.Sampler).
func buildSampler(spec *client.HistogramSpec) (*oracle.Sampler, error) {
	if spec.N < 1 {
		return nil, badReqf("spec: domain size %d must be positive", spec.N)
	}
	for i, c := range spec.Cuts {
		if c <= 0 || c >= spec.N || (i > 0 && c <= spec.Cuts[i-1]) {
			return nil, badReqf("spec: cuts must be ascending interior points of (0, %d)", spec.N)
		}
	}
	p := intervals.FromBoundaries(spec.N, spec.Cuts)
	if p.Count() != len(spec.Masses) {
		return nil, badReqf("spec: %d masses for %d buckets", len(spec.Masses), p.Count())
	}
	total := 0.0
	for _, m := range spec.Masses {
		if m < 0 {
			return nil, badReqf("spec: negative bucket mass %v", m)
		}
		total += m
	}
	if total <= 0 {
		return nil, badReqf("spec: zero total mass")
	}
	norm := make([]float64, len(spec.Masses))
	for i, m := range spec.Masses {
		norm[i] = m / total
	}
	pc, err := dist.FromWeights(p, norm)
	if err != nil {
		return nil, badReqf("spec: %v", err)
	}
	return oracle.NewSampler(pc, rng.New(0)), nil
}

// samplerTable is the registered-sampler registry: spec → immutable
// alias-table prototype, forked per request.
type samplerTable struct {
	mu    sync.Mutex
	next  int
	limit int
	byID  map[string]*oracle.Sampler
}

func (t *samplerTable) init(limit int) {
	t.byID = make(map[string]*oracle.Sampler)
	t.limit = limit
}

// register stores a validated prototype and returns its ID.
func (t *samplerTable) register(proto *oracle.Sampler) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.byID) >= t.limit {
		return "", badReqf("sampler table full (%d registered)", len(t.byID))
	}
	t.next++
	id := fmt.Sprintf("s%d", t.next)
	t.byID[id] = proto
	return id, nil
}

func (t *samplerTable) get(id string) (*oracle.Sampler, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.byID[id]
	return p, ok
}
