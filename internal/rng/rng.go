// Package rng provides a deterministic, seedable pseudo-random number
// generator and the exact discrete samplers the testing algorithms rely on
// (Poisson, Binomial, Gamma, Beta, Geometric, Gaussian).
//
// Every randomized component in this repository takes an explicit *RNG so
// that experiments are reproducible end to end from a single seed. The
// generator is xoshiro256**, seeded through splitmix64, which is more than
// adequate for Monte-Carlo work and much faster than crypto sources.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is NOT safe for concurrent use; give each goroutine its own RNG,
// e.g. via Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns an RNG seeded from the given seed using splitmix64, so that
// nearby seeds produce unrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Split derives an independent child generator from r's stream. The child's
// sequence is unrelated to r's subsequent output.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	r.SplitInto(child)
	return child
}

// SplitInto is Split without the allocation: it re-seeds child in place
// with exactly the randomness Split would have consumed from r, so the two
// are interchangeable stream-for-stream. Hot loops that re-derive child
// generators every round (the sieve's replicate fan-out) keep their RNG
// structs in scratch and re-split into them.
func (r *RNG) SplitInto(child *RNG) {
	child.Seed(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform float64 in (0, 1); useful when a logarithm
// of the result is taken.
func (r *RNG) Float64Open() float64 {
	for {
		f := float64(r.Uint64()>>11+1) * (1.0 / (1 << 53))
		if f < 1 {
			return f
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded rejection.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	}
	return r.Float64() < p
}

// Exponential returns an Exp(1) variate (mean 1).
func (r *RNG) Exponential() float64 {
	return -math.Log(r.Float64Open())
}

// Normal returns a standard Gaussian variate via the Marsaglia polar method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if p is not in
// (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U) / log(1-p)).
	g := math.Floor(math.Log(r.Float64Open()) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > float64(math.MaxInt32) {
		return math.MaxInt32
	}
	return int(g)
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
