package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 64", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(99)
	child := r.Split()
	// The child stream should not equal the parent's continued stream.
	equal := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("child stream tracks parent: %d/64 equal", equal)
	}
}

func TestZeroStateGuard(t *testing.T) {
	r := &RNG{}
	r.s0, r.s1, r.s2, r.s3 = 0, 0, 0, 0
	// Seed path must never leave the all-zero fixed point; construct via Seed.
	r.Seed(0)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		t.Fatal("seeding left all-zero state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		g := r.Float64Open()
		if g <= 0 || g >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", g)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, trials = 10, 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestBernoulliEdge(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(9)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

// meanVar returns the sample mean and variance of draws from f.
func meanVar(n int, f func() float64) (mean, variance float64) {
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := f()
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return
}

func TestNormalMoments(t *testing.T) {
	r := New(10)
	mean, v := meanVar(200000, r.Normal)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Normal mean = %v", mean)
	}
	if math.Abs(v-1) > 0.03 {
		t.Fatalf("Normal variance = %v", v)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(11)
	mean, v := meanVar(200000, r.Exponential)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exponential mean = %v", mean)
	}
	if math.Abs(v-1) > 0.05 {
		t.Fatalf("Exponential variance = %v", v)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(12)
	const p = 0.25
	mean, _ := meanVar(200000, func() float64 { return float64(r.Geometric(p)) })
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.05 {
		t.Fatalf("Geometric(%v) mean = %v, want %v", p, mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d", g)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(14)
	for _, mean := range []float64{0.1, 1, 5, 9.99, 10, 25, 100, 1000, 12345.6} {
		m, v := meanVar(60000, func() float64 { return float64(r.Poisson(mean)) })
		tol := 5 * math.Sqrt(mean/60000) * math.Max(1, math.Sqrt(mean))
		// Poisson: mean == variance == mean parameter.
		if math.Abs(m-mean) > math.Max(tol, 0.02) {
			t.Fatalf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > math.Max(0.15*mean, 0.05) {
			t.Fatalf("Poisson(%v) variance = %v", mean, v)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(15)
	for i := 0; i < 100; i++ {
		if k := r.Poisson(0); k != 0 {
			t.Fatalf("Poisson(0) = %d", k)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(16)
	for _, mean := range []float64{0.001, 0.5, 10, 500} {
		for i := 0; i < 5000; i++ {
			if k := r.Poisson(mean); k < 0 {
				t.Fatalf("Poisson(%v) = %d", mean, k)
			}
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(17)
	for _, shape := range []float64{0.3, 0.9, 1, 2.5, 10, 100} {
		m, v := meanVar(100000, func() float64 { return r.Gamma(shape) })
		if math.Abs(m-shape) > 0.05*math.Max(shape, 1) {
			t.Fatalf("Gamma(%v) mean = %v", shape, m)
		}
		if math.Abs(v-shape) > 0.15*math.Max(shape, 1) {
			t.Fatalf("Gamma(%v) variance = %v", shape, v)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(18)
	a, b := 2.0, 5.0
	m, _ := meanVar(100000, func() float64 { return r.Beta(a, b) })
	want := a / (a + b)
	if math.Abs(m-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean = %v, want %v", m, want)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(19)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5}, {64, 0.1}, {100, 0.9}, {1000, 0.3}, {100000, 0.5},
		{100000, 0.0001}, {7, 1}, {7, 0},
	}
	for _, c := range cases {
		m, v := meanVar(20000, func() float64 { return float64(r.Binomial(c.n, c.p)) })
		wantM := float64(c.n) * c.p
		wantV := wantM * (1 - c.p)
		tolM := math.Max(0.05*math.Max(wantM, 1), 5*math.Sqrt(wantV/20000+1e-12))
		if math.Abs(m-wantM) > tolM {
			t.Fatalf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, m, wantM)
		}
		if wantV > 1 && math.Abs(v-wantV) > 0.15*wantV {
			t.Fatalf("Binomial(%d,%v) variance = %v, want %v", c.n, c.p, v, wantV)
		}
	}
}

func TestBinomialRange(t *testing.T) {
	r := New(20)
	err := quick.Check(func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 2000)
		p := float64(pRaw) / 65535.0
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 100)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(22)
	const n, trials = 5, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("Perm first-element bucket %d count %d, want ~%v", i, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(1e6)
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(1<<20, 0.37)
	}
}
