package rng

import "math"

// Poisson returns a Poisson(mean) variate. It is exact for all mean >= 0
// (no Gaussian approximation): small means use multiplicative inversion,
// large means use Hörmann's PTRS transformed-rejection algorithm.
//
// Poissonization is the backbone of the paper's analysis (Section 2): the
// algorithms draw Poisson(m) samples so that per-element counts become
// independent. This sampler makes that literal in the implementation.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic("rng: Poisson with negative or NaN mean")
	case mean == 0:
		return 0
	case mean < 10:
		return r.poissonInversion(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

// poissonInversion draws by multiplying uniforms until the product drops
// below e^-mean. Expected work is O(mean); used only for mean < 10.
func (r *RNG) poissonInversion(mean float64) int {
	limit := math.Exp(-mean)
	prod := r.Float64Open()
	k := 0
	for prod > limit {
		prod *= r.Float64Open()
		k++
	}
	return k
}

// poissonPTRS implements W. Hörmann's PTRS algorithm ("The transformed
// rejection method for generating Poisson random variables", Insurance:
// Mathematics and Economics 12, 1993) for mean >= 10.
func (r *RNG) poissonPTRS(mean float64) int {
	logMean := math.Log(mean)
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)

	for {
		u := r.Float64() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		k := kf
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int(k)
		}
	}
}

// Gamma returns a Gamma(shape, 1) variate (scale 1) using the
// Marsaglia–Tsang squeeze method, with the standard boost for shape < 1.
// It panics if shape <= 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 || math.IsNaN(shape) {
		panic("rng: Gamma needs positive shape")
	}
	if shape < 1 {
		// Boosting: Gamma(a) = Gamma(a+1) * U^{1/a}.
		return r.Gamma(shape+1) * math.Pow(r.Float64Open(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) variate as a ratio of Gammas.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	return x / (x + y)
}

// Binomial returns a Binomial(n, p) variate, exact for all n >= 0 and
// p in [0, 1]. Small n counts Bernoulli trials; small n*min(p,1-p) uses
// geometric skips; the general case uses the exact beta-splitting recursion
// (Knuth TAOCP vol. 2, §3.4.1), which needs O(log n) Beta draws.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("rng: Binomial needs p in [0,1]")
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if p == 0 || n == 0 {
		return 0
	}
	count := 0
	for n > 0 {
		np := float64(n) * p
		switch {
		case n <= 64:
			for i := 0; i < n; i++ {
				if r.Float64() < p {
					count++
				}
			}
			return count
		case np < 32:
			// Geometric skips: expected O(np) iterations.
			i := -1
			for {
				i += 1 + r.Geometric(p)
				if i >= n {
					return count
				}
				count++
			}
		default:
			// Split at the median-ish order statistic: the a-th smallest of
			// n uniforms is Beta(a, n+1-a).
			a := 1 + n/2
			v := r.Beta(float64(a), float64(n+1-a))
			if v <= p {
				count += a
				n -= a
				p = (p - v) / (1 - v)
			} else {
				n = a - 1
				p = p / v
			}
			if p > 0.5 {
				return count + (n - r.Binomial(n, 1-p))
			}
		}
	}
	return count
}
