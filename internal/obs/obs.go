// Package obs is the observability layer of the tester: a structured
// event stream describing where a run's sample budget and wall-clock go
// across the four stages of Algorithm 1 (partition → learn → sieve →
// check+test), plus ready-made sinks — an in-memory recorder for tests,
// a JSON-lines emitter for offline analysis (cmd/histbench -trace-json),
// and process-wide expvar counters for a service front-end.
//
// Overhead contract: the observability layer is zero-overhead when
// disabled. A nil Observer in core.Config means no events are
// constructed, no clock is read, and no allocations happen on the
// tester's hot path (guarded by the BENCH_hotpath.json benchmarks).
// When an observer IS attached, events are flat value structs delivered
// synchronously from the run's own goroutine — attaching an observer
// never changes the tester's randomness, decision, or Trace (pinned by
// TestTraceIdenticalWithObserver).
//
// Concurrency: a single run emits events from one goroutine, but
// concurrent runs (e.g. the experiment harness's parallel trials) may
// share one Observer, so implementations must be safe for concurrent
// use. Events of concurrent runs interleave; the Run field groups them.
package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies one stage of Algorithm 1.
type Stage uint8

const (
	// StagePartition is learn.ApproxPart (Proposition 3.4).
	StagePartition Stage = iota
	// StageLearn is the Laplace learner (Lemma 3.5).
	StageLearn
	// StageSieve is the §3.2.1 sieve (heavy pass + halving rounds).
	StageSieve
	// StageCheck is the H_k-projection DP (Step 10 of Algorithm 1).
	StageCheck
	// StageTest is the final χ²-vs-TV identity test (Theorem 3.2).
	StageTest
	numStages
)

// NumStages is the number of pipeline stages.
const NumStages = int(numStages)

// String returns the stage name used in Event JSON and counter names.
func (s Stage) String() string {
	switch s {
	case StagePartition:
		return "partition"
	case StageLearn:
		return "learn"
	case StageSieve:
		return "sieve"
	case StageCheck:
		return "check"
	case StageTest:
		return "test"
	}
	return "unknown"
}

// Kind discriminates the event variants.
type Kind uint8

const (
	// KindRunStart opens a run: N, K (the requested k), Eps are set.
	KindRunStart Kind = iota
	// KindStageEnter marks entry into Stage.
	KindStageEnter
	// KindStageExit marks exit from Stage; Samples is the number of
	// oracle draws the stage consumed. Summed over a run's StageExit
	// events this equals the oracle's total draw count exactly (the
	// sample-conservation invariant, pinned by TestSampleConservation).
	KindStageExit
	// KindSieveRound reports one sieve decision batch: Round (0 is the
	// stage-3a heavy pass, 1.. are the halving rounds), Removed intervals,
	// Samples drawn by the round's replicates, Workers/Replicates
	// describing the fan-out, Dense/Sparse counting-path batch tallies,
	// and the pool hit/miss deltas observed during the round.
	KindSieveRound
	// KindRunEnd closes a run: Accept and RejectStage carry the decision,
	// Samples the total draw count; Err is set when the run failed or was
	// cancelled instead of deciding.
	KindRunEnd
)

// String returns the kind name used in Event JSON.
func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run-start"
	case KindStageEnter:
		return "stage-enter"
	case KindStageExit:
		return "stage-exit"
	case KindSieveRound:
		return "sieve-round"
	case KindRunEnd:
		return "run-end"
	}
	return "unknown"
}

// Event is one observation. It is a flat value struct — emitting one
// performs no allocation — with fields populated according to Kind (see
// the Kind constants for which fields each variant sets).
type Event struct {
	// Run groups the events of one tester invocation (process-unique,
	// from NextRunID).
	Run uint64
	// Kind discriminates the variant.
	Kind Kind
	// Stage is set on StageEnter/StageExit/SieveRound.
	Stage Stage
	// Elapsed is the monotonic time since the run's RunStart.
	Elapsed time.Duration

	// N, K, Eps are the run parameters (RunStart).
	N, K int
	Eps  float64

	// Samples is the stage's draw count (StageExit), the round's draw
	// count (SieveRound), or the run total (RunEnd).
	Samples int64

	// Round is the sieve round index: 0 for the stage-3a heavy pass,
	// 1..rounds for the halving rounds (SieveRound).
	Round int
	// Removed is the number of intervals the round discarded.
	Removed int
	// Workers is the goroutine fan-out used for the round's replicate
	// draws (1 when the oracle cannot be forked); Replicates is the
	// number of independent Poissonized batches — Replicates/Workers
	// batches per worker is the round's utilization.
	Workers, Replicates int
	// Dense and Sparse count the round's batches by counting path taken
	// (the m >= n/64 crossover of oracle.Counts).
	Dense, Sparse int
	// Exact and ClosedForm count the round's batches by count-synthesis
	// strategy actually used (oracle.CountStrategy after capability
	// fallback): Exact batches drew every sample individually,
	// ClosedForm batches synthesized the count vector from the sampler's
	// run structure.
	Exact, ClosedForm int
	// PoolHits and PoolMisses are the oracle buffer-pool acquire deltas
	// observed during the round. The pool counters are process-global, so
	// under concurrent runs the attribution is approximate.
	PoolHits, PoolMisses int64

	// Accept and RejectStage carry the decision (RunEnd; RejectStage is
	// empty on accept).
	Accept      bool
	RejectStage string
	// Err is the failure (or cancellation) that ended the run without a
	// decision (RunEnd).
	Err string
}

// Observer receives the event stream of tester runs. Implementations
// must be safe for concurrent use (concurrent runs may share a sink) and
// must not block: events are delivered synchronously from the run's
// goroutine.
type Observer interface {
	Observe(Event)
}

// runCounter feeds NextRunID.
var runCounter atomic.Uint64

// NextRunID returns a process-unique run identifier. core.Test assigns
// one per observed run; sinks use it to group interleaved events.
func NextRunID() uint64 { return runCounter.Add(1) }

// multi fans events out to several sinks in order.
type multi []Observer

// Observe implements Observer.
func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi combines observers into one, dropping nils. It returns nil when
// no non-nil observer remains (so the result can feed core.Config
// directly and keep the disabled fast path), and the sole observer
// unwrapped when only one remains.
func Multi(obs ...Observer) Observer {
	var out multi
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
