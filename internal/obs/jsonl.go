package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// jsonEvent is the wire form of an Event: enum fields as names, zero
// fields omitted, durations in microseconds. The schema is documented in
// DESIGN.md ("Observability & cancellation").
type jsonEvent struct {
	Run       uint64  `json:"run"`
	Kind      string  `json:"kind"`
	Stage     string  `json:"stage,omitempty"`
	ElapsedUS int64   `json:"elapsed_us"`
	N         int     `json:"n,omitempty"`
	K         int     `json:"k,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	Samples   int64   `json:"samples,omitempty"`
	Round     int     `json:"round"`
	Removed   int     `json:"removed,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Reps      int     `json:"replicates,omitempty"`
	Dense     int     `json:"dense_batches,omitempty"`
	Sparse    int     `json:"sparse_batches,omitempty"`
	Exact     int     `json:"exact_batches,omitempty"`
	Closed    int     `json:"closed_form_batches,omitempty"`
	PoolHits  int64   `json:"pool_hits,omitempty"`
	PoolMiss  int64   `json:"pool_misses,omitempty"`
	Accept    bool    `json:"accept,omitempty"`
	Reject    string  `json:"reject_stage,omitempty"`
	Err       string  `json:"err,omitempty"`
}

// JSONLines is an Observer that writes one JSON object per event to an
// io.Writer — the `histbench -trace-json` sink. Writes are serialized by
// a mutex, so one emitter can absorb concurrent runs; wrap the writer in
// a bufio.Writer (and flush it when done) for high-rate traces.
type JSONLines struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLines returns an emitter writing to w.
func NewJSONLines(w io.Writer) *JSONLines {
	return &JSONLines{enc: json.NewEncoder(w)}
}

// Observe implements Observer. Encoding errors are sticky and reported
// by Err rather than panicking mid-run.
func (j *JSONLines) Observe(e Event) {
	we := jsonEvent{
		Run:       e.Run,
		Kind:      e.Kind.String(),
		ElapsedUS: e.Elapsed.Microseconds(),
		N:         e.N,
		K:         e.K,
		Eps:       e.Eps,
		Samples:   e.Samples,
		Round:     e.Round,
		Removed:   e.Removed,
		Workers:   e.Workers,
		Reps:      e.Replicates,
		Dense:     e.Dense,
		Sparse:    e.Sparse,
		Exact:     e.Exact,
		Closed:    e.ClosedForm,
		PoolHits:  e.PoolHits,
		PoolMiss:  e.PoolMisses,
		Accept:    e.Accept,
		Reject:    e.RejectStage,
		Err:       e.Err,
	}
	if e.Kind == KindStageEnter || e.Kind == KindStageExit || e.Kind == KindSieveRound {
		we.Stage = e.Stage.String()
	}
	j.mu.Lock()
	if err := j.enc.Encode(we); err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// Err returns the first write error encountered, if any.
func (j *JSONLines) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
