package obs

import (
	"expvar"
	"fmt"
	"sync"
)

// ExpvarSink publishes run-level counters under the "histtest." expvar
// namespace — the hook for a future service front-end (expose
// expvar.Handler() over HTTP and the counters are live). It is a plain
// Observer: attach it (alone or via Multi) wherever tracing is wired.
//
// Published variables:
//
//	histtest.runs_started / runs_accepted / runs_rejected / runs_failed
//	histtest.samples_total
//	histtest.samples_<stage>    (partition, learn, sieve, check, test)
//	histtest.sieve_rounds, histtest.sieve_removed
type ExpvarSink struct {
	started, accepted, rejected, failed *expvar.Int
	samplesTotal                        *expvar.Int
	samplesByStage                      [numStages]*expvar.Int
	sieveRounds, sieveRemoved           *expvar.Int
}

var (
	expvarOnce sync.Once
	expvarSink *ExpvarSink
)

// Expvar returns the process-wide sink, registering its variables on
// first use (expvar names are global, so the sink is a singleton).
func Expvar() *ExpvarSink {
	expvarOnce.Do(func() {
		s := &ExpvarSink{
			started:      expvar.NewInt("histtest.runs_started"),
			accepted:     expvar.NewInt("histtest.runs_accepted"),
			rejected:     expvar.NewInt("histtest.runs_rejected"),
			failed:       expvar.NewInt("histtest.runs_failed"),
			samplesTotal: expvar.NewInt("histtest.samples_total"),
			sieveRounds:  expvar.NewInt("histtest.sieve_rounds"),
			sieveRemoved: expvar.NewInt("histtest.sieve_removed"),
		}
		for st := Stage(0); st < numStages; st++ {
			s.samplesByStage[st] = expvar.NewInt(fmt.Sprintf("histtest.samples_%s", st))
		}
		expvarSink = s
	})
	return expvarSink
}

// Observe implements Observer (expvar.Int is internally atomic).
func (s *ExpvarSink) Observe(e Event) {
	switch e.Kind {
	case KindRunStart:
		s.started.Add(1)
	case KindStageExit:
		s.samplesByStage[e.Stage].Add(e.Samples)
	case KindSieveRound:
		s.sieveRounds.Add(1)
		s.sieveRemoved.Add(int64(e.Removed))
	case KindRunEnd:
		s.samplesTotal.Add(e.Samples)
		switch {
		case e.Err != "":
			s.failed.Add(1)
		case e.Accept:
			s.accepted.Add(1)
		default:
			s.rejected.Add(1)
		}
	}
}
