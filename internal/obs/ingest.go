package obs

import (
	"expvar"
	"sync"
)

// IngestVars are the process-wide streaming-ingestion counters,
// published under the "histd.ingest_" expvar namespace next to the
// serving-layer counters (same /debug/vars endpoint). Like ExpvarSink,
// expvar names are global, so the set is a singleton shared by every
// server in the process.
//
//	histd.ingest_batches        ingest requests applied (any format)
//	histd.ingest_events         events tallied into accumulators
//	histd.ingest_bytes          request-body bytes decoded
//	histd.ingest_rejected       ingest requests pushed back with 429
//	histd.ingest_format_errors  requests rejected with 400 (malformed)
//	histd.ingest_streams        live streams (gauge)
//	histd.ingest_evictions      streams TTL-evicted
//	histd.ingest_rotations      window rotations fired
//	histd.ingest_dropped_events events that fell out of sliding windows
//	histd.ingest_tests          snapshot test runs (manual + scheduled)
type IngestVars struct {
	Batches       *expvar.Int
	Events        *expvar.Int
	Bytes         *expvar.Int
	Rejected      *expvar.Int
	FormatErrors  *expvar.Int
	ActiveStreams *expvar.Int
	Evictions     *expvar.Int
	Rotations     *expvar.Int
	DroppedEvents *expvar.Int
	Tests         *expvar.Int
}

var (
	ingestOnce sync.Once
	ingestInst *IngestVars
)

// Ingest returns the singleton, registering the expvar names on first
// use.
func Ingest() *IngestVars {
	ingestOnce.Do(func() {
		ingestInst = &IngestVars{
			Batches:       expvar.NewInt("histd.ingest_batches"),
			Events:        expvar.NewInt("histd.ingest_events"),
			Bytes:         expvar.NewInt("histd.ingest_bytes"),
			Rejected:      expvar.NewInt("histd.ingest_rejected"),
			FormatErrors:  expvar.NewInt("histd.ingest_format_errors"),
			ActiveStreams: expvar.NewInt("histd.ingest_streams"),
			Evictions:     expvar.NewInt("histd.ingest_evictions"),
			Rotations:     expvar.NewInt("histd.ingest_rotations"),
			DroppedEvents: expvar.NewInt("histd.ingest_dropped_events"),
			Tests:         expvar.NewInt("histd.ingest_tests"),
		}
	})
	return ingestInst
}
