package obs

import "sync"

// TraceRecorder is an in-memory Observer: it appends every event to a
// slice. Tests use it to assert stream invariants (sample conservation,
// cancellation promptness, stage coverage); it is also handy in
// examples. Safe for concurrent use.
type TraceRecorder struct {
	mu     sync.Mutex
	events []Event
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{} }

// Observe implements Observer.
func (t *TraceRecorder) Observe(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of every recorded event, in arrival order.
func (t *TraceRecorder) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *TraceRecorder) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset discards all recorded events.
func (t *TraceRecorder) Reset() {
	t.mu.Lock()
	t.events = nil
	t.mu.Unlock()
}

// Runs returns the distinct run IDs seen, in first-appearance order.
func (t *TraceRecorder) Runs() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []uint64
	for _, e := range t.events {
		if !seen[e.Run] {
			seen[e.Run] = true
			out = append(out, e.Run)
		}
	}
	return out
}

// RunEvents returns the events of one run, in order.
func (t *TraceRecorder) RunEvents(run uint64) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, e := range t.events {
		if e.Run == run {
			out = append(out, e)
		}
	}
	return out
}

// StageSamples sums the StageExit draw counts of one run per stage. The
// values sum to the run's total oracle draw count (the conservation
// invariant).
func (t *TraceRecorder) StageSamples(run uint64) map[Stage]int64 {
	out := make(map[Stage]int64, NumStages)
	for _, e := range t.RunEvents(run) {
		if e.Kind == KindStageExit {
			out[e.Stage] += e.Samples
		}
	}
	return out
}
