package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMultiDropsNilsAndUnwraps(t *testing.T) {
	if got := Multi(nil, nil); got != nil {
		t.Fatalf("Multi(nil, nil) = %v, want nil", got)
	}
	rec := NewTraceRecorder()
	if got := Multi(nil, rec); got != Observer(rec) {
		t.Fatalf("Multi with one live sink should unwrap it, got %T", got)
	}
	rec2 := NewTraceRecorder()
	m := Multi(rec, nil, rec2)
	m.Observe(Event{Kind: KindRunStart, Run: 7})
	if rec.Len() != 1 || rec2.Len() != 1 {
		t.Fatalf("fan-out failed: %d, %d events", rec.Len(), rec2.Len())
	}
}

func TestRecorderGroupsRuns(t *testing.T) {
	rec := NewTraceRecorder()
	rec.Observe(Event{Run: 1, Kind: KindStageExit, Stage: StagePartition, Samples: 10})
	rec.Observe(Event{Run: 2, Kind: KindStageExit, Stage: StageLearn, Samples: 5})
	rec.Observe(Event{Run: 1, Kind: KindStageExit, Stage: StageSieve, Samples: 7})
	runs := rec.Runs()
	if len(runs) != 2 || runs[0] != 1 || runs[1] != 2 {
		t.Fatalf("Runs() = %v", runs)
	}
	ss := rec.StageSamples(1)
	if ss[StagePartition] != 10 || ss[StageSieve] != 7 || len(ss) != 2 {
		t.Fatalf("StageSamples(1) = %v", ss)
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestRecorderConcurrentObserve(t *testing.T) {
	rec := NewTraceRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(run uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Observe(Event{Run: run, Kind: KindSieveRound, Round: i})
			}
		}(uint64(g))
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Fatalf("lost events: %d != 800", rec.Len())
	}
	for g := 0; g < 8; g++ {
		evs := rec.RunEvents(uint64(g))
		if len(evs) != 100 {
			t.Fatalf("run %d has %d events", g, len(evs))
		}
		for i, e := range evs {
			if e.Round != i {
				t.Fatalf("run %d out of order at %d: %d", g, i, e.Round)
			}
		}
	}
}

func TestJSONLinesSchema(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLines(&buf)
	j.Observe(Event{
		Run: 3, Kind: KindRunStart, N: 1024, K: 4, Eps: 0.4,
		Elapsed: 1500 * time.Microsecond,
	})
	j.Observe(Event{
		Run: 3, Kind: KindSieveRound, Stage: StageSieve, Round: 2,
		Removed: 1, Workers: 4, Replicates: 7, Dense: 7, PoolHits: 6, PoolMisses: 1,
		Samples: 12345,
	})
	j.Observe(Event{Run: 3, Kind: KindRunEnd, Accept: true, Samples: 99999})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSONL lines, got %d: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "run-start" || first["n"] != float64(1024) || first["elapsed_us"] != float64(1500) {
		t.Fatalf("run-start line wrong: %v", first)
	}
	if _, hasStage := first["stage"]; hasStage {
		t.Fatalf("run-start should omit stage: %v", first)
	}
	var round map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &round); err != nil {
		t.Fatal(err)
	}
	if round["stage"] != "sieve" || round["round"] != float64(2) || round["dense_batches"] != float64(7) {
		t.Fatalf("sieve-round line wrong: %v", round)
	}
}

func TestExpvarSinkCounts(t *testing.T) {
	s := Expvar()
	if s != Expvar() {
		t.Fatal("Expvar must be a singleton")
	}
	before := s.accepted.Value()
	beforeSieve := s.samplesByStage[StageSieve].Value()
	s.Observe(Event{Kind: KindRunStart})
	s.Observe(Event{Kind: KindStageExit, Stage: StageSieve, Samples: 42})
	s.Observe(Event{Kind: KindSieveRound, Removed: 3})
	s.Observe(Event{Kind: KindRunEnd, Accept: true, Samples: 100})
	if s.accepted.Value() != before+1 {
		t.Fatal("accepted counter did not advance")
	}
	if s.samplesByStage[StageSieve].Value() != beforeSieve+42 {
		t.Fatal("per-stage sample counter did not advance")
	}
	s.Observe(Event{Kind: KindRunEnd, Err: "context canceled"})
	if s.failed.Value() < 1 {
		t.Fatal("failed counter did not advance")
	}
}

func TestNextRunIDUnique(t *testing.T) {
	a, b := NextRunID(), NextRunID()
	if a == b || b != a+1 {
		t.Fatalf("NextRunID not monotone: %d, %d", a, b)
	}
}

func TestStageAndKindNames(t *testing.T) {
	names := map[string]bool{}
	for st := Stage(0); st < numStages; st++ {
		names[st.String()] = true
	}
	if len(names) != NumStages || names["unknown"] {
		t.Fatalf("stage names not distinct: %v", names)
	}
	for _, k := range []Kind{KindRunStart, KindStageEnter, KindStageExit, KindSieveRound, KindRunEnd} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}
