// Package gen generates the workload distributions the experiments and
// examples run on: random k-histograms (completeness instances),
// controlled perturbations at a target distance from H_k (soundness
// instances), and the natural shapes the paper's introduction motivates
// (power laws, discretized mixtures).
package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/intervals"
	"repro/internal/rng"
)

// KHistogram draws a random k-histogram over [0, n): k−1 distinct uniform
// breakpoints and Dirichlet(1,...,1) piece masses, resampled until the
// canonical representation has exactly k pieces (no two adjacent levels
// collide). It panics unless 1 <= k <= n.
func KHistogram(r *rng.RNG, n, k int) *dist.PiecewiseConstant {
	if k < 1 || k > n {
		panic(fmt.Sprintf("gen: KHistogram k=%d out of [1,%d]", k, n))
	}
	for attempt := 0; ; attempt++ {
		cuts := distinctCuts(r, n, k-1)
		p := intervals.FromBoundaries(n, cuts)
		masses := dirichlet(r, p.Count())
		d, err := dist.FromWeights(p, masses)
		if err != nil {
			panic(err)
		}
		if d.Compact().PieceCount() == k || attempt > 50 {
			return d
		}
	}
}

// distinctCuts returns c distinct interior cut points of [0, n).
func distinctCuts(r *rng.RNG, n, c int) []int {
	seen := make(map[int]bool, c)
	cuts := make([]int, 0, c)
	for len(cuts) < c {
		v := 1 + r.Intn(n-1)
		if !seen[v] {
			seen[v] = true
			cuts = append(cuts, v)
		}
	}
	sort.Ints(cuts)
	return cuts
}

// dirichlet draws flat-Dirichlet weights (normalized exponentials), with a
// floor to avoid degenerate near-zero pieces.
func dirichlet(r *rng.RNG, k int) []float64 {
	w := make([]float64, k)
	total := 0.0
	for i := range w {
		w[i] = r.Exponential() + 0.05
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// BlockComb perturbs d to total-variation distance ~delta away, while
// pushing it far from every small-k histogram: the domain is divided into
// `pairs` adjacent block pairs and mass 2·delta·(pair mass) is shifted
// within each pair. The result has ~2·pairs + pieces(d) pieces and, for
// pairs >> k, distance >= ~delta·(1 − k/pairs) from H_k (verify exactly
// with histdp.DistanceToHk). Shifts are capped so no block goes negative,
// so the achieved distance can fall slightly short of delta for very
// skewed d; the exact achieved TV distance from d is returned.
func BlockComb(d *dist.PiecewiseConstant, pairs int, delta float64) (*dist.PiecewiseConstant, float64) {
	n := d.N()
	if pairs < 1 || 2*pairs > n {
		panic(fmt.Sprintf("gen: BlockComb pairs=%d out of range for n=%d", pairs, n))
	}
	if delta < 0 || delta > 1 {
		panic("gen: BlockComb delta must be in [0, 1]")
	}
	// Block boundaries: 2·pairs equal-ish blocks.
	bounds := make([]int, 0, 2*pairs+1)
	for j := 0; j <= 2*pairs; j++ {
		bounds = append(bounds, j*n/(2*pairs))
	}
	var pieces []dist.Piece
	achieved := 0.0
	for pr := 0; pr < pairs; pr++ {
		lo, mid, hi := bounds[2*pr], bounds[2*pr+1], bounds[2*pr+2]
		ivA := intervals.Interval{Lo: lo, Hi: mid}
		ivB := intervals.Interval{Lo: mid, Hi: hi}
		mA, mB := d.IntervalMass(ivA), d.IntervalMass(ivB)
		// Shift x from B to A: the TV distance moved is exactly x, so the
		// pair contributes delta·(its mass); capped by what B holds.
		x := delta * (mA + mB)
		if x > mB {
			x = mB
		}
		achieved += x
		pieces = append(pieces,
			dist.Piece{Iv: ivA, Mass: mA + x},
			dist.Piece{Iv: ivB, Mass: mB - x},
		)
	}
	out, err := dist.NewPiecewiseConstant(n, pieces)
	if err != nil {
		panic(err)
	}
	// The flattening onto blocks changes d inside blocks too; measure the
	// true TV distance to d.
	return out, dist.TV(d, out)
}

// FarFromHk returns a distribution at (approximately) TV distance target
// from the k-histogram it perturbs, constructed to stay far from ALL of
// H_k: a random k-histogram base plus a block comb with many pairs. The
// exact lower bound on its distance to H_k should be verified by the
// caller via histdp when needed.
func FarFromHk(r *rng.RNG, n, k int, target float64, pairs int) *dist.PiecewiseConstant {
	base := KHistogram(r, n, k)
	flat := dist.Flatten(base, intervals.EquiWidth(n, 2*pairs))
	out, _ := BlockComb(flat, pairs, target)
	return out
}

// Zipf returns the Zipf(s) distribution over [0, n): P(i) ∝ (i+1)^−s.
// Power laws are the canonical "needs many bins at the head, few at the
// tail" shape from the selectivity-estimation literature.
func Zipf(n int, s float64) *dist.Dense {
	p := make([]float64, n)
	total := 0.0
	for i := range p {
		p[i] = math.Pow(float64(i+1), -s)
		total += p[i]
	}
	for i := range p {
		p[i] /= total
	}
	return dist.MustDense(p)
}

// GaussianMixture returns a discretized mixture of Gaussians over [0, n).
// means and sigmas are in domain units; weights need not be normalized.
func GaussianMixture(n int, means, sigmas, weights []float64) *dist.Dense {
	if len(means) != len(sigmas) || len(means) != len(weights) {
		panic("gen: mixture parameter lengths differ")
	}
	p := make([]float64, n)
	total := 0.0
	for i := range p {
		x := float64(i)
		for c := range means {
			z := (x - means[c]) / sigmas[c]
			p[i] += weights[c] * math.Exp(-z*z/2) / sigmas[c]
		}
		total += p[i]
	}
	if total <= 0 {
		panic("gen: mixture has zero mass on the domain")
	}
	for i := range p {
		p[i] /= total
	}
	return dist.MustDense(p)
}

// Staircase returns a deterministic s-step staircase over [0, n) with
// strongly non-monotone levels (useful as a reproducible far-from-small-k
// instance).
func Staircase(n, steps int) *dist.PiecewiseConstant {
	if steps < 1 || steps > n {
		panic("gen: Staircase steps out of range")
	}
	pieces := make([]dist.Piece, steps)
	total := 0.0
	for j := 0; j < steps; j++ {
		lo := j * n / steps
		hi := (j + 1) * n / steps
		mass := float64((j%4)+1) * float64(hi-lo)
		pieces[j] = dist.Piece{Iv: intervals.Interval{Lo: lo, Hi: hi}, Mass: mass}
		total += mass
	}
	for j := range pieces {
		pieces[j].Mass /= total
	}
	return dist.MustPiecewiseConstant(n, pieces)
}

// LogNormal returns the discretized log-normal distribution over [0, n)
// with the given location and scale of the underlying normal (domain
// units on a log grid) — the canonical heavy-tailed "file sizes /
// latencies" column shape.
func LogNormal(n int, mu, sigma float64) *dist.Dense {
	if sigma <= 0 {
		panic("gen: LogNormal needs positive sigma")
	}
	p := make([]float64, n)
	total := 0.0
	for i := range p {
		x := float64(i) + 0.5
		lx := math.Log(x)
		z := (lx - mu) / sigma
		p[i] = math.Exp(-z*z/2) / x
		total += p[i]
	}
	for i := range p {
		p[i] /= total
	}
	return dist.MustDense(p)
}

// PoissonPMF returns the Poisson(lambda) probability mass function
// truncated to [0, n) and renormalized — a natural unimodal count-data
// shape.
func PoissonPMF(n int, lambda float64) *dist.Dense {
	if lambda <= 0 {
		panic("gen: PoissonPMF needs positive lambda")
	}
	p := make([]float64, n)
	logLambda := math.Log(lambda)
	total := 0.0
	for i := range p {
		lg, _ := math.Lgamma(float64(i) + 1)
		p[i] = math.Exp(float64(i)*logLambda - lambda - lg)
		total += p[i]
	}
	if total <= 0 {
		panic("gen: PoissonPMF lost all mass to truncation")
	}
	for i := range p {
		p[i] /= total
	}
	return dist.MustDense(p)
}

// KModal returns a random k-modal distribution over [0, n): its pmf has
// exactly k local maxima (modality counting as in dist.Modality gives
// 2k−1 monotone runs for interior modes). The paper remarks that the
// Theorem 1.2 lower bound also applies to testing this class. Built as a
// piecewise-linear tent profile through k random peaks, discretized and
// normalized. Requires 1 <= k and 4k <= n.
func KModal(r *rng.RNG, n, k int) *dist.Dense {
	if k < 1 || 4*k > n {
		panic(fmt.Sprintf("gen: KModal k=%d out of range for n=%d", k, n))
	}
	// Peak positions: one per equal slice, jittered; valleys between.
	peaks := make([]int, k)
	for j := 0; j < k; j++ {
		lo := j * n / k
		hi := (j+1)*n/k - 1
		peaks[j] = lo + 1 + r.Intn(hi-lo-1)
	}
	p := make([]float64, n)
	addTent := func(center int, height, halfWidth float64) {
		lo := int(math.Max(0, float64(center)-halfWidth))
		hi := int(math.Min(float64(n-1), float64(center)+halfWidth))
		for i := lo; i <= hi; i++ {
			v := height * (1 - math.Abs(float64(i-center))/halfWidth)
			if v > p[i] {
				p[i] = v
			}
		}
	}
	for _, c := range peaks {
		addTent(c, 0.5+r.Float64(), float64(n)/(2.2*float64(k)))
	}
	total := 0.0
	for _, v := range p {
		total += v
	}
	for i := range p {
		p[i] /= total
	}
	return dist.MustDense(p)
}

// Comb returns the alternating element-level comb: mass 2/n on even
// elements, 0 on odd — distance ~1/2 from every o(n)-histogram. Its
// piecewise representation has n pieces; use only for moderate n.
func Comb(n int) *dist.PiecewiseConstant {
	pieces := make([]dist.Piece, n)
	for i := 0; i < n; i++ {
		m := 0.0
		if i%2 == 0 {
			m = 2.0 / float64(n)
		}
		pieces[i] = dist.Piece{Iv: intervals.Interval{Lo: i, Hi: i + 1}, Mass: m}
	}
	return dist.MustPiecewiseConstant(n, pieces)
}
