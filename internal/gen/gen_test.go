package gen

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/histdp"
	"repro/internal/intervals"
	"repro/internal/rng"
)

func TestKHistogramComplexity(t *testing.T) {
	r := rng.New(1)
	for _, k := range []int{1, 2, 5, 16} {
		for trial := 0; trial < 10; trial++ {
			d := KHistogram(r, 1024, k)
			if got := d.Compact().PieceCount(); got != k {
				t.Fatalf("k=%d: complexity = %d", k, got)
			}
			if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
				t.Fatal("not normalized")
			}
		}
	}
}

func TestKHistogramEdgeCases(t *testing.T) {
	r := rng.New(2)
	d := KHistogram(r, 8, 8)
	if d.N() != 8 {
		t.Fatal("wrong domain")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("k > n did not panic")
			}
		}()
		KHistogram(r, 4, 5)
	}()
}

func TestBlockCombDistance(t *testing.T) {
	r := rng.New(3)
	base := dist.Uniform(1024)
	out, achieved := BlockComb(base, 32, 0.25)
	if math.Abs(dist.TotalMass(out)-1) > 1e-9 {
		t.Fatal("mass not preserved")
	}
	// On the uniform base, no shift is capped: achieved distance = 0.25.
	if math.Abs(achieved-0.25) > 0.02 {
		t.Fatalf("achieved TV = %v, want ~0.25", achieved)
	}
	// And it must actually be far from small-k histograms.
	lower, _, err := histdp.DistanceToHk(out, 4, intervals.FullDomain(1024))
	if err != nil {
		t.Fatal(err)
	}
	if lower < 0.18 {
		t.Fatalf("distance to H_4 = %v, want >= 0.18", lower)
	}
	_ = r
}

func TestBlockCombZeroDelta(t *testing.T) {
	base := dist.Uniform(64)
	out, achieved := BlockComb(base, 8, 0)
	if achieved != 0 || dist.TV(base, out) > 1e-12 {
		t.Fatal("zero-delta comb changed the distribution")
	}
}

func TestBlockCombCapping(t *testing.T) {
	// All mass in the first block pair's B-side can be capped.
	d := dist.PointMass(64, 40) // element 40 is in some B block or A block
	out, achieved := BlockComb(d, 4, 0.4)
	if achieved > 1.0 {
		t.Fatalf("achieved = %v", achieved)
	}
	if math.Abs(dist.TotalMass(out)-1) > 1e-9 {
		t.Fatal("mass broken by capping")
	}
}

func TestFarFromHkIsFar(t *testing.T) {
	r := rng.New(4)
	d := FarFromHk(r, 2048, 4, 0.3, 64)
	lower, _, err := histdp.DistanceToHk(d, 4, intervals.FullDomain(2048))
	if err != nil {
		t.Fatal(err)
	}
	if lower < 0.2 {
		t.Fatalf("FarFromHk distance = %v, want >= 0.2", lower)
	}
}

func TestZipf(t *testing.T) {
	d := Zipf(1000, 1.2)
	if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
		t.Fatal("not normalized")
	}
	if d.Prob(0) <= d.Prob(1) || d.Prob(10) <= d.Prob(100) {
		t.Fatal("Zipf not decreasing")
	}
}

func TestGaussianMixture(t *testing.T) {
	d := GaussianMixture(512, []float64{100, 400}, []float64{20, 30}, []float64{1, 2})
	if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
		t.Fatal("not normalized")
	}
	// Modes should dominate the midpoint valley.
	if d.Prob(100) <= d.Prob(250) || d.Prob(400) <= d.Prob(250) {
		t.Fatal("mixture lacks modes")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched params did not panic")
			}
		}()
		GaussianMixture(16, []float64{1}, []float64{1, 2}, []float64{1})
	}()
}

func TestStaircase(t *testing.T) {
	d := Staircase(512, 64)
	if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
		t.Fatal("not normalized")
	}
	if got := d.Compact().PieceCount(); got < 32 {
		t.Fatalf("staircase collapsed to %d pieces", got)
	}
}

func TestLogNormal(t *testing.T) {
	d := LogNormal(1024, 4, 0.8)
	if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
		t.Fatal("not normalized")
	}
	// Unimodal with an interior mode near e^4 ≈ 55.
	if got := dist.Modality(d); got > 2 {
		t.Fatalf("modality = %d", got)
	}
	mode := 0
	for i := 1; i < 1024; i++ {
		if d.Prob(i) > d.Prob(mode) {
			mode = i
		}
	}
	if mode < 20 || mode > 120 {
		t.Fatalf("mode at %d, expected near 55", mode)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("sigma<=0 did not panic")
			}
		}()
		LogNormal(16, 0, 0)
	}()
}

func TestPoissonPMF(t *testing.T) {
	d := PoissonPMF(256, 40)
	if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
		t.Fatal("not normalized")
	}
	if got := dist.Modality(d); got > 2 {
		t.Fatalf("modality = %d", got)
	}
	if math.Abs(dist.Mean(d)-40) > 1 {
		t.Fatalf("mean = %v, want ~40", dist.Mean(d))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("lambda<=0 did not panic")
			}
		}()
		PoissonPMF(16, 0)
	}()
}

func TestKModal(t *testing.T) {
	r := rng.New(6)
	for _, k := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 5; trial++ {
			d := KModal(r, 1024, k)
			if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
				t.Fatal("not normalized")
			}
			// k peaks → up/down per peak: modality (monotone-run count) is
			// at most 2k and at least k (separated tents may overlap and
			// merge occasionally, but at these widths they stay distinct).
			mod := dist.Modality(d)
			if mod < k || mod > 2*k {
				t.Fatalf("k=%d: modality = %d", k, mod)
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("k too large did not panic")
			}
		}()
		KModal(r, 16, 8)
	}()
}

func TestComb(t *testing.T) {
	d := Comb(64)
	if math.Abs(dist.TotalMass(d)-1) > 1e-9 {
		t.Fatal("not normalized")
	}
	lower, _, err := histdp.DistanceToHk(d, 2, intervals.FullDomain(64))
	if err != nil {
		t.Fatal(err)
	}
	if lower < 0.4 {
		t.Fatalf("comb distance to H_2 = %v", lower)
	}
}
