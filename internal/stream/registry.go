package stream

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Stream registry: the per-tenant table of live ingestion streams.
//
// Each stream owns one sharded Accumulator plus the test parameters the
// serving layer runs over its snapshots. The registry bounds the total
// stream count and the per-tenant count (a handful of hot tenants must
// not evict everyone else's accumulators), and evicts streams that have
// seen no traffic for the TTL — ingest, test, and lookup all refresh
// the idle clock. The clock is injectable so eviction and window
// rotation are testable without sleeping.

// Registry limit defaults. Conservative: a dense accumulator is O(n)
// int64s per generation per stream, so the stream count is the knob
// that bounds resident memory.
const (
	DefaultMaxStreams  = 256
	DefaultTenantQuota = 32
	DefaultStreamTTL   = 15 * time.Minute
	DefaultTenant      = "default"
	maxTenantNameLen   = 128
	minRotatePeriod    = 100 * time.Millisecond
	minRetestPeriod    = 100 * time.Millisecond
	maxStreamGens      = 64
)

// Registry errors, mapped by the serving layer to 429 (capacity) and
// 404 (lookup).
var (
	ErrRegistryFull = errors.New("stream: registry at capacity")
	ErrTenantQuota  = errors.New("stream: tenant at stream quota")
)

// StreamConfig is everything a stream needs at creation time: the
// accumulator shape plus the test parameters its snapshots run under.
type StreamConfig struct {
	// Tenant scopes quota accounting ("" means DefaultTenant).
	Tenant string
	// Accum shapes the sharded accumulator (N required).
	Accum AccumConfig
	// Params are the tester parameters for this stream's snapshots.
	Params TestParams
	// Window is the rotation period for sliding windows; 0 disables
	// rotation (an ever-growing tally). Requires Accum.Generations > 1
	// to be a true sliding window — with 1 generation each rotation
	// clears the whole tally (tumbling window).
	Window time.Duration
	// RetestEvery schedules periodic automatic re-tests; 0 disables.
	RetestEvery time.Duration
}

// TestParams are the tester parameters bound to a stream. The serving
// layer interprets them (preset resolution, timeouts); the registry
// only stores them.
type TestParams struct {
	K    int
	Eps  float64
	Cfg  string // config preset name; "" = serving default
	Seed uint64 // base RNG seed for snapshots (reproducibility anchor)
}

// TestRecord is the compact record of a stream's most recent test run,
// surfaced in stream info responses.
type TestRecord struct {
	At       time.Time `json:"at"`
	Seed     uint64    `json:"seed"`
	Events   int64     `json:"events"`
	Distinct int       `json:"distinct"`
	Accept   bool      `json:"accept"`
	Stage    string    `json:"reject_stage,omitempty"`
	Err      string    `json:"error,omitempty"`
}

// Stream is one live ingestion stream. The accumulator handles its own
// locking; the stream's mutex guards only the bookkeeping clock fields.
type Stream struct {
	ID     string
	Tenant string
	Cfg    StreamConfig
	Acc    *Accumulator

	Created time.Time

	mu         sync.Mutex
	lastSeen   time.Time
	nextRotate time.Time // zero when rotation disabled
	nextRetest time.Time // zero when re-testing disabled
	lastTest   *TestRecord
	batches    int64
	bytes      int64
}

// Touch refreshes the idle clock and tallies one ingested batch.
func (s *Stream) Touch(now time.Time, batchBytes int64) {
	s.mu.Lock()
	s.lastSeen = now
	s.batches++
	s.bytes += batchBytes
	s.mu.Unlock()
}

// Seen refreshes the idle clock without tallying a batch (lookups,
// tests).
func (s *Stream) Seen(now time.Time) {
	s.mu.Lock()
	s.lastSeen = now
	s.mu.Unlock()
}

// Batches returns the ingested batch count and byte total.
func (s *Stream) Batches() (batches, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches, s.bytes
}

// LastSeen returns the last traffic time.
func (s *Stream) LastSeen() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeen
}

// RecordTest stores the latest test outcome.
func (s *Stream) RecordTest(rec TestRecord) {
	s.mu.Lock()
	s.lastTest = &rec
	s.mu.Unlock()
}

// LastTest returns a copy of the most recent test record, if any.
func (s *Stream) LastTest() (TestRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastTest == nil {
		return TestRecord{}, false
	}
	return *s.lastTest, true
}

// MaybeRotate advances the window if the rotation period has elapsed
// (possibly several times after a stall, one Rotate per elapsed
// period). Returns how many rotations fired and the events dropped.
func (s *Stream) MaybeRotate(now time.Time) (rotated int, dropped int64) {
	s.mu.Lock()
	if s.nextRotate.IsZero() {
		s.mu.Unlock()
		return 0, 0
	}
	period := s.Cfg.Window
	for !now.Before(s.nextRotate) {
		rotated++
		s.nextRotate = s.nextRotate.Add(period)
		if rotated >= s.Acc.Generations() {
			// Stalled past a full window: further catch-up rotations would
			// just clear already-empty slots. Jump the clock forward.
			for !now.Before(s.nextRotate) {
				s.nextRotate = s.nextRotate.Add(period)
			}
			break
		}
	}
	s.mu.Unlock()
	for i := 0; i < rotated; i++ {
		dropped += s.Acc.Rotate()
	}
	return rotated, dropped
}

// DueRetest reports whether a periodic re-test is due, advancing the
// schedule when it is.
func (s *Stream) DueRetest(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextRetest.IsZero() || now.Before(s.nextRetest) {
		return false
	}
	s.nextRetest = now.Add(s.Cfg.RetestEvery)
	return true
}

// RegistryConfig configures a Registry. Zero values take the defaults
// above; Now and NewID are injectable for tests.
type RegistryConfig struct {
	MaxStreams  int
	TenantQuota int
	TTL         time.Duration
	Now         func() time.Time
	NewID       func() string
}

// Registry is the table of live streams. Safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	streams   map[string]*Stream
	byTenant  map[string]int
	max       int
	quota     int
	ttl       time.Duration
	now       func() time.Time
	newID     func() string
	evictions int64
	created   int64
}

// NewRegistry builds a registry with the given limits.
func NewRegistry(cfg RegistryConfig) *Registry {
	r := &Registry{
		streams:  make(map[string]*Stream),
		byTenant: make(map[string]int),
		max:      cfg.MaxStreams,
		quota:    cfg.TenantQuota,
		ttl:      cfg.TTL,
		now:      cfg.Now,
		newID:    cfg.NewID,
	}
	if r.max <= 0 {
		r.max = DefaultMaxStreams
	}
	if r.quota <= 0 {
		r.quota = DefaultTenantQuota
	}
	if r.ttl <= 0 {
		r.ttl = DefaultStreamTTL
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.newID == nil {
		r.newID = randomID
	}
	return r
}

// randomID returns a 16-hex-char random stream ID.
func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("stream: reading id randomness: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new stream, building its accumulator. Capacity
// errors (ErrRegistryFull, ErrTenantQuota) are retryable after eviction
// or deletion; config errors are not.
func (r *Registry) Create(cfg StreamConfig) (*Stream, error) {
	if cfg.Tenant == "" {
		cfg.Tenant = DefaultTenant
	}
	if len(cfg.Tenant) > maxTenantNameLen {
		return nil, fmt.Errorf("stream: tenant name exceeds %d bytes", maxTenantNameLen)
	}
	if cfg.Window != 0 && cfg.Window < minRotatePeriod {
		return nil, fmt.Errorf("stream: window %v below the minimum %v", cfg.Window, minRotatePeriod)
	}
	if cfg.RetestEvery != 0 && cfg.RetestEvery < minRetestPeriod {
		return nil, fmt.Errorf("stream: retest period %v below the minimum %v", cfg.RetestEvery, minRetestPeriod)
	}
	if cfg.Accum.Generations > maxStreamGens {
		return nil, fmt.Errorf("stream: %d window generations exceeds the maximum %d", cfg.Accum.Generations, maxStreamGens)
	}
	acc, err := NewAccumulator(cfg.Accum)
	if err != nil {
		return nil, err
	}
	now := r.now()

	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.streams) >= r.max {
		// Opportunistic sweep before refusing: expired streams should not
		// hold capacity against a live tenant.
		if r.sweepLocked(now) == 0 {
			return nil, ErrRegistryFull
		}
	}
	if r.byTenant[cfg.Tenant] >= r.quota {
		return nil, ErrTenantQuota
	}
	id := r.newID()
	for r.streams[id] != nil {
		id = r.newID()
	}
	s := &Stream{
		ID:       id,
		Tenant:   cfg.Tenant,
		Cfg:      cfg,
		Acc:      acc,
		Created:  now,
		lastSeen: now,
	}
	if cfg.Window > 0 {
		s.nextRotate = now.Add(cfg.Window)
	}
	if cfg.RetestEvery > 0 {
		s.nextRetest = now.Add(cfg.RetestEvery)
	}
	r.streams[id] = s
	r.byTenant[cfg.Tenant]++
	r.created++
	return s, nil
}

// Get looks up a stream by ID, refreshing its idle clock on hit.
func (r *Registry) Get(id string) (*Stream, bool) {
	r.mu.Lock()
	s, ok := r.streams[id]
	r.mu.Unlock()
	if ok {
		s.Seen(r.now())
	}
	return s, ok
}

// Delete removes a stream. Returns false when the ID is unknown.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.streams[id]
	if !ok {
		return false
	}
	r.removeLocked(s)
	return true
}

func (r *Registry) removeLocked(s *Stream) {
	delete(r.streams, s.ID)
	if n := r.byTenant[s.Tenant] - 1; n > 0 {
		r.byTenant[s.Tenant] = n
	} else {
		delete(r.byTenant, s.Tenant)
	}
}

// Sweep evicts every stream idle past the TTL, returning how many.
func (r *Registry) Sweep() int {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweepLocked(now)
}

func (r *Registry) sweepLocked(now time.Time) int {
	var evicted []*Stream
	for _, s := range r.streams {
		if now.Sub(s.LastSeen()) > r.ttl {
			evicted = append(evicted, s)
		}
	}
	for _, s := range evicted {
		r.removeLocked(s)
	}
	r.evictions += int64(len(evicted))
	return len(evicted)
}

// Snapshot returns the live streams ordered by creation time (stable
// for listings and the janitor's rotation scan).
func (r *Registry) Snapshot() []*Stream {
	r.mu.Lock()
	out := make([]*Stream, 0, len(r.streams))
	for _, s := range r.streams {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the live stream count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.streams)
}

// Evictions returns the all-time TTL eviction count.
func (r *Registry) Evictions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}
