package stream

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock is the injectable registry clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func testRegistry(clk *fakeClock, max, quota int, ttl time.Duration) *Registry {
	seq := 0
	return NewRegistry(RegistryConfig{
		MaxStreams:  max,
		TenantQuota: quota,
		TTL:         ttl,
		Now:         clk.now,
		NewID:       func() string { seq++; return fmt.Sprintf("st%d", seq) },
	})
}

func streamCfg(tenant string) StreamConfig {
	return StreamConfig{
		Tenant: tenant,
		Accum:  AccumConfig{N: 100, Shards: 2},
		Params: TestParams{K: 4, Eps: 0.5, Seed: 1},
	}
}

// TestRegistryTTLEviction: idle streams fall out after the TTL; any
// touch (ingest, lookup) resets the clock.
func TestRegistryTTLEviction(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk, 10, 10, time.Minute)
	a, err := r.Create(streamCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Create(streamCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(50 * time.Second)
	a.Touch(clk.now(), 10) // a stays fresh; b keeps aging
	clk.advance(30 * time.Second)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d streams, want 1", n)
	}
	if _, ok := r.Get(b.ID); ok {
		t.Fatal("idle stream survived the sweep")
	}
	if _, ok := r.Get(a.ID); !ok {
		t.Fatal("fresh stream was evicted")
	}
	// The Get above refreshed a's clock.
	clk.advance(59 * time.Second)
	if n := r.Sweep(); n != 0 {
		t.Fatalf("sweep evicted %d streams after a refreshing Get, want 0", n)
	}
	if r.Evictions() != 1 {
		t.Fatalf("evictions counter = %d, want 1", r.Evictions())
	}
}

// TestRegistryBounds: the global cap and the per-tenant quota both
// refuse with their typed errors, and deletion frees quota.
func TestRegistryBounds(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk, 3, 2, time.Minute)
	if _, err := r.Create(streamCfg("a")); err != nil {
		t.Fatal(err)
	}
	s2, err := r.Create(streamCfg("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(streamCfg("a")); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third stream for tenant a: err = %v, want ErrTenantQuota", err)
	}
	if _, err := r.Create(streamCfg("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(streamCfg("c")); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("fourth stream: err = %v, want ErrRegistryFull", err)
	}
	if !r.Delete(s2.ID) {
		t.Fatal("delete failed")
	}
	if _, err := r.Create(streamCfg("c")); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
	// At capacity again, but with an expired stream: create sweeps
	// opportunistically instead of refusing.
	clk.advance(2 * time.Minute)
	if _, err := r.Create(streamCfg("d")); err != nil {
		t.Fatalf("create at capacity with expired streams: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("registry holds %d streams, want 1 (3 expired swept)", r.Len())
	}
}

// TestStreamWindowRotation: MaybeRotate fires once per elapsed period,
// catches up after stalls without clearing live generations more than a
// full window's worth, and leaves non-windowed streams alone.
func TestStreamWindowRotation(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk, 10, 10, time.Hour)
	cfg := streamCfg("")
	cfg.Window = time.Second
	cfg.Accum.Generations = 4
	s, err := r.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rot, _ := s.MaybeRotate(clk.now()); rot != 0 {
		t.Fatalf("rotated %d times before the period elapsed", rot)
	}
	clk.advance(1100 * time.Millisecond)
	if rot, _ := s.MaybeRotate(clk.now()); rot != 1 {
		t.Fatalf("rotated %d times, want 1", rot)
	}
	// Stall 10 periods: catch-up is capped at the generation count.
	clk.advance(10 * time.Second)
	rot, _ := s.MaybeRotate(clk.now())
	if rot != 4 {
		t.Fatalf("stall catch-up rotated %d times, want 4 (generation count)", rot)
	}
	// After the catch-up the schedule is re-anchored: no immediate refire.
	if rot, _ := s.MaybeRotate(clk.now()); rot != 0 {
		t.Fatalf("re-anchored schedule refired %d times", rot)
	}

	plain, err := r.Create(streamCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	if rot, _ := plain.MaybeRotate(clk.now()); rot != 0 {
		t.Fatal("windowless stream rotated")
	}
}

// TestStreamRetestSchedule: DueRetest fires once per period.
func TestStreamRetestSchedule(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk, 10, 10, time.Hour)
	cfg := streamCfg("")
	cfg.RetestEvery = time.Second
	s, err := r.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.DueRetest(clk.now()) {
		t.Fatal("retest due immediately after creation")
	}
	clk.advance(1100 * time.Millisecond)
	if !s.DueRetest(clk.now()) {
		t.Fatal("retest not due after the period")
	}
	if s.DueRetest(clk.now()) {
		t.Fatal("retest due twice without the clock advancing")
	}
}

// TestRegistryConfigValidation: window/retest minima, generation cap,
// tenant name length.
func TestRegistryConfigValidation(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk, 10, 10, time.Hour)
	bad := []StreamConfig{
		func() StreamConfig { c := streamCfg(""); c.Window = time.Millisecond; return c }(),
		func() StreamConfig { c := streamCfg(""); c.RetestEvery = time.Millisecond; return c }(),
		func() StreamConfig { c := streamCfg(""); c.Accum.Generations = 1000; return c }(),
		func() StreamConfig { c := streamCfg(""); c.Accum.N = 0; return c }(),
		func() StreamConfig {
			c := streamCfg("")
			for len(c.Tenant) <= maxTenantNameLen {
				c.Tenant += "x"
			}
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := r.Create(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("failed creates left %d streams registered", r.Len())
	}
}

// TestRegistrySnapshotOrder: Snapshot lists streams in creation order.
func TestRegistrySnapshotOrder(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk, 10, 10, time.Hour)
	var ids []string
	for i := 0; i < 5; i++ {
		s, err := r.Create(streamCfg(""))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
		clk.advance(time.Second)
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d streams, want 5", len(snap))
	}
	for i, s := range snap {
		if s.ID != ids[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, s.ID, ids[i])
		}
	}
}
