package stream

// openTable is a minimal open-addressed int32 → int64 counter table —
// the sparse backing of one accumulator shard generation. Compared to a
// Go map it stores keys and counts in two flat slices probed linearly,
// so the hot ingest loop touches at most two cache lines per event and
// reset keeps every allocation. A slot is occupied iff its count is
// non-zero (counts are only ever incremented by positive deltas, so
// zero is unambiguous).
//
// Not safe for concurrent use; the owning shard's lock serializes
// access.
type openTable struct {
	keys []int32
	cnts []int64
	used int // occupied slots
}

// openTableMinCap is the initial capacity of a lazily grown table.
const openTableMinCap = 64

// hashKey mixes the element into the probe start index (fibonacci
// multiplicative hashing; the high bits feed the mask).
func hashKey(v int32, mask uint32) uint32 {
	return uint32(uint64(uint32(v))*0x9e3779b97f4a7c15>>33) & mask
}

// add increments key k by delta (> 0), growing at 3/4 load.
func (t *openTable) add(k int32, delta int64) {
	if t.keys == nil || t.used*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint32(len(t.keys) - 1)
	i := hashKey(k, mask)
	for {
		if t.cnts[i] == 0 {
			t.keys[i] = k
			t.cnts[i] = delta
			t.used++
			return
		}
		if t.keys[i] == k {
			t.cnts[i] += delta
			return
		}
		i = (i + 1) & mask
	}
}

// get returns the count of key k (0 when absent). Test helper.
func (t *openTable) get(k int32) int64 {
	if t.keys == nil {
		return 0
	}
	mask := uint32(len(t.keys) - 1)
	i := hashKey(k, mask)
	for {
		if t.cnts[i] == 0 {
			return 0
		}
		if t.keys[i] == k {
			return t.cnts[i]
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table (or allocates the initial one) and rehashes.
func (t *openTable) grow() {
	newCap := openTableMinCap
	if len(t.keys) > 0 {
		newCap = len(t.keys) * 2
	}
	oldKeys, oldCnts := t.keys, t.cnts
	t.keys = make([]int32, newCap)
	t.cnts = make([]int64, newCap)
	t.used = 0
	mask := uint32(newCap - 1)
	for i, c := range oldCnts {
		if c == 0 {
			continue
		}
		k := oldKeys[i]
		j := hashKey(k, mask)
		for t.cnts[j] != 0 {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.cnts[j] = c
		t.used++
	}
}

// reset clears every slot, keeping the allocation for reuse (window
// rotation clears whole generations at once).
func (t *openTable) reset() {
	clear(t.cnts)
	t.used = 0
}

// forEach visits every occupied slot in table order (unordered with
// respect to keys; callers needing order fold into an oracle.Counts,
// which orders its own iteration).
func (t *openTable) forEach(f func(k int32, count int64)) {
	for i, c := range t.cnts {
		if c != 0 {
			f(t.keys[i], c)
		}
	}
}
