package stream

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, rng.New(1)); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestReservoirFillsThenHolds(t *testing.T) {
	r := rng.New(1)
	rv, err := NewReservoir(10, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rv.Offer(i)
	}
	if rv.Len() != 5 || rv.Seen() != 5 {
		t.Fatalf("len=%d seen=%d", rv.Len(), rv.Seen())
	}
	for i := 5; i < 1000; i++ {
		rv.Offer(i)
	}
	if rv.Len() != 10 {
		t.Fatalf("len=%d after overflow", rv.Len())
	}
	if rv.Seen() != 1000 {
		t.Fatalf("seen=%d", rv.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of n stream positions should appear in the reservoir with
	// probability capacity/n.
	r := rng.New(2)
	const capacity, n, reps = 20, 400, 3000
	counts := make([]int, n)
	for rep := 0; rep < reps; rep++ {
		rv, _ := NewReservoir(capacity, r)
		for i := 0; i < n; i++ {
			rv.Offer(i)
		}
		for _, v := range rv.Snapshot() {
			counts[v]++
		}
	}
	want := float64(reps) * capacity / n
	// Check aggregate uniformity over quarters of the stream (early
	// positions must not be over- or under-represented).
	for q := 0; q < 4; q++ {
		sum := 0
		for i := q * n / 4; i < (q+1)*n/4; i++ {
			sum += counts[i]
		}
		got := float64(sum) / float64(n/4)
		if math.Abs(got-want) > 0.08*want {
			t.Fatalf("quarter %d mean inclusion %v, want %v", q, got, want)
		}
	}
}

func TestReservoirSnapshotIsCopy(t *testing.T) {
	r := rng.New(3)
	rv, _ := NewReservoir(4, r)
	for i := 0; i < 4; i++ {
		rv.Offer(i)
	}
	snap := rv.Snapshot()
	snap[0] = 999
	if rv.Snapshot()[0] == 999 {
		t.Fatal("snapshot aliases internal storage")
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestWindowOrderAndEviction(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	w.Offer(1)
	w.Offer(2)
	if w.Full() {
		t.Fatal("window full too early")
	}
	snap := w.Snapshot()
	if len(snap) != 2 || snap[0] != 1 || snap[1] != 2 {
		t.Fatalf("partial snapshot = %v", snap)
	}
	w.Offer(3)
	w.Offer(4) // evicts 1
	w.Offer(5) // evicts 2
	if !w.Full() || w.Len() != 3 || w.Seen() != 5 {
		t.Fatalf("full=%v len=%d seen=%d", w.Full(), w.Len(), w.Seen())
	}
	snap = w.Snapshot()
	want := []int{3, 4, 5}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", snap, want)
		}
	}
}

func TestWindowWrapsRepeatedly(t *testing.T) {
	w, _ := NewWindow(7)
	for i := 0; i < 1000; i++ {
		w.Offer(i)
	}
	snap := w.Snapshot()
	for i, v := range snap {
		if v != 993+i {
			t.Fatalf("snapshot[%d] = %d", i, v)
		}
	}
}

func TestChunkerValidation(t *testing.T) {
	if _, err := NewChunker(0, func([]int) (bool, error) { return true, nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewChunker(5, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

func TestChunkerEmitsPerChunk(t *testing.T) {
	var seen [][]int
	c, err := NewChunker(3, func(s []int) (bool, error) {
		cp := append([]int(nil), s...)
		seen = append(seen, cp)
		return len(seen)%2 == 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Offer(i)
	}
	if len(seen) != 3 {
		t.Fatalf("chunks = %d", len(seen))
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
	vs := c.Verdicts()
	if len(vs) != 3 || !vs[0].Accept || vs[1].Accept || !vs[2].Accept {
		t.Fatalf("verdicts = %+v", vs)
	}
	if vs[2].ChunkIndex != 2 {
		t.Fatalf("chunk index = %d", vs[2].ChunkIndex)
	}
	// Chunk contents are in order.
	if seen[1][0] != 3 || seen[1][2] != 5 {
		t.Fatalf("second chunk = %v", seen[1])
	}
}

func TestChunkerRecordsErrors(t *testing.T) {
	boom := errors.New("boom")
	c, _ := NewChunker(2, func(s []int) (bool, error) { return false, boom })
	c.Offer(1)
	c.Offer(2)
	c.Offer(3)
	c.Offer(4)
	vs := c.Verdicts()
	if len(vs) != 2 || !errors.Is(vs[0].Err, boom) {
		t.Fatalf("verdicts = %+v", vs)
	}
}
