package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Batch decoders: the wire → accumulator path of the ingestion engine.
//
// Two formats, both decoded straight off the request body into a reused
// value buffer (no per-event allocation) and applied batch-by-batch
// through the sink callback:
//
//   - ndjson ("application/x-ndjson"): each line is either one bare
//     non-negative integer or a JSON array of non-negative integers —
//     the shape `jq -c '.value'` or a log tailer naturally produces.
//   - binary ("application/octet-stream"): a sequence of length-prefixed
//     frames, each `uvarint count` followed by `count` uvarint event
//     values. Compact (1–5 bytes per event), trivially streamable, and
//     ~5× faster to parse than ndjson.
//
// Malformed input — truncated length prefixes, non-numeric bytes,
// out-of-range elements, oversized frames — yields a *FormatError (the
// HTTP layer maps it to 400), never a panic. Batches decoded BEFORE the
// malformed point have already been applied; the ingest response
// reports how many (at-least-once per batch, mirroring how a partially
// written ndjson upload behaves anywhere else).

// DefaultMaxFrameEvents bounds one binary frame's event count: large
// enough that clients never think about it, small enough that a
// malicious prefix cannot make the decoder buffer unbounded work.
const DefaultMaxFrameEvents = 1 << 20

// decodeBatchLen is the value-buffer flush threshold: events are handed
// to the sink in batches of at most this many.
const decodeBatchLen = 8192

// FormatError reports malformed ingest input (wire-format or range
// violations). The serving layer maps it to HTTP 400.
type FormatError struct {
	msg string
}

func (e *FormatError) Error() string { return e.msg }

func formatErrf(format string, args ...any) error {
	return &FormatError{msg: fmt.Sprintf(format, args...)}
}

// decodeSink receives decoded event batches. The slice is reused across
// calls; implementations must consume it before returning (the
// accumulator's Ingest does).
type decodeSink func(values []int32)

// batchWriter stages decoded events and hands them to the sink in
// batches of decodeBatchLen. Holding the buffer and the applied counter
// in one place keeps every push/flush working on the SAME slice header
// — an earlier version threaded the buffer through helper calls with a
// flush closure over the caller's copy, and a mid-line flush re-sent
// the stale prefix, double-applying events.
type batchWriter struct {
	sink    decodeSink
	buf     []int32
	applied int64
}

func newBatchWriter(sink decodeSink) *batchWriter {
	return &batchWriter{sink: sink, buf: make([]int32, 0, decodeBatchLen)}
}

func (w *batchWriter) push(v int32) {
	w.buf = append(w.buf, v)
	if len(w.buf) == decodeBatchLen {
		w.flush()
	}
}

func (w *batchWriter) flush() {
	if len(w.buf) > 0 {
		w.sink(w.buf)
		w.applied += int64(len(w.buf))
		w.buf = w.buf[:0]
	}
}

// DecodeBinary decodes length-prefixed binary frames from r, validating
// every event against the domain [0, n), and feeds batches to sink.
// maxFrame bounds one frame's event count (0 means
// DefaultMaxFrameEvents). Returns the number of events applied, which
// on error counts only the batches handed to the sink before the
// malformed point.
func DecodeBinary(r io.Reader, n, maxFrame int, sink decodeSink) (int64, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameEvents
	}
	br := bufio.NewReaderSize(r, 64<<10)
	w := newBatchWriter(sink)
	for {
		count, err := binary.ReadUvarint(br)
		if err == io.EOF {
			w.flush()
			return w.applied, nil
		}
		if err != nil {
			w.flush()
			return w.applied, formatErrf("binary ingest: reading frame length prefix: %v", err)
		}
		if count > uint64(maxFrame) {
			w.flush()
			return w.applied, formatErrf("binary ingest: frame of %d events exceeds the limit %d", count, maxFrame)
		}
		for i := uint64(0); i < count; i++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				w.flush()
				return w.applied, formatErrf("binary ingest: frame truncated after %d of %d events", i, count)
			}
			if v >= uint64(n) {
				w.flush()
				return w.applied, formatErrf("binary ingest: event %d outside [0,%d)", v, n)
			}
			w.push(int32(v))
		}
	}
}

// DecodeNDJSON decodes newline-delimited events from r — each non-blank
// line one bare integer or one JSON array of integers — validating
// every event against [0, n), and feeds batches to sink. Returns the
// number of events applied (on error, the batches applied before the
// malformed line).
func DecodeNDJSON(r io.Reader, n int, sink decodeSink) (int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<22)
	w := newBatchWriter(sink)
	line := 0
	for sc.Scan() {
		line++
		if err := parseEventLine(sc.Bytes(), line, n, w); err != nil {
			w.flush()
			return w.applied, err
		}
	}
	if err := sc.Err(); err != nil {
		w.flush()
		if errors.Is(err, bufio.ErrTooLong) {
			return w.applied, formatErrf("ndjson ingest: line %d exceeds the 4 MiB line limit", line+1)
		}
		return w.applied, err
	}
	w.flush()
	return w.applied, nil
}

// parseEventLine pushes one ndjson line's events into w. It hand-parses
// the two accepted shapes so the per-event cost is a few byte
// comparisons — no encoding/json, no intermediate strings.
func parseEventLine(s []byte, line, n int, w *batchWriter) error {
	i := skipSpace(s, 0)
	if i == len(s) {
		return nil // blank line
	}
	if s[i] == '[' {
		i = skipSpace(s, i+1)
		if i < len(s) && s[i] == ']' {
			i++ // empty array
		} else {
			for {
				v, next, err := parseEvent(s, i, line, n)
				if err != nil {
					return err
				}
				w.push(int32(v))
				i = skipSpace(s, next)
				if i == len(s) {
					return formatErrf("ndjson ingest: line %d: unterminated array", line)
				}
				if s[i] == ']' {
					i++
					break
				}
				if s[i] != ',' {
					return formatErrf("ndjson ingest: line %d: expected ',' or ']' at byte %d", line, i)
				}
				i = skipSpace(s, i+1)
			}
		}
	} else {
		v, next, err := parseEvent(s, i, line, n)
		if err != nil {
			return err
		}
		w.push(int32(v))
		i = next
	}
	if i = skipSpace(s, i); i != len(s) {
		return formatErrf("ndjson ingest: line %d: trailing garbage at byte %d", line, i)
	}
	return nil
}

// parseEvent parses one non-negative integer at s[i:], validates it
// against [0, n), and returns the value and the index past it.
func parseEvent(s []byte, i, line, n int) (int64, int, error) {
	start := i
	var v int64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		if v >= int64(n) {
			return 0, 0, formatErrf("ndjson ingest: line %d: event outside [0,%d)", line, n)
		}
		i++
	}
	if i == start {
		return 0, 0, formatErrf("ndjson ingest: line %d: expected an event value at byte %d", line, i)
	}
	return v, i, nil
}

// skipSpace advances past JSON whitespace.
func skipSpace(s []byte, i int) int {
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r') {
		i++
	}
	return i
}
