package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// encodeFrames renders batches as the binary wire format.
func encodeFrames(batches ...[]uint64) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, b := range batches {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(b)))])
		for _, v := range b {
			buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
		}
	}
	return buf.Bytes()
}

// collect returns a sink appending every batch to out.
func collect(out *[]int32) decodeSink {
	return func(values []int32) { *out = append(*out, values...) }
}

func TestDecodeBinaryRoundTrip(t *testing.T) {
	payload := encodeFrames([]uint64{0, 1, 2, 300, 999}, []uint64{}, []uint64{999, 0})
	var got []int32
	applied, err := DecodeBinary(bytes.NewReader(payload), 1000, 0, collect(&got))
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	want := []int32{0, 1, 2, 300, 999, 999, 0}
	if applied != int64(len(want)) {
		t.Fatalf("applied = %d, want %d", applied, len(want))
	}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("event %d = %d, want %d", i, got[i], v)
		}
	}
}

func TestDecodeBinaryMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		n       int
	}{
		{"truncated prefix", []byte{0x80}, 100},                       // uvarint continuation byte, then EOF
		{"truncated frame", encodeFrames([]uint64{1, 2, 3})[:2], 100}, // count says 3, one value present
		{"out of range", encodeFrames([]uint64{1, 100}), 100},         // 100 outside [0,100)
		{"huge value", encodeFrames([]uint64{1, 1 << 40}), 100},       // far out of range
		{"oversized frame", encodeFrames([]uint64{}), 100},            // patched below
	}
	// Oversized frame: a count prefix beyond the limit with no values.
	var tmp [binary.MaxVarintLen64]byte
	cases[4].payload = tmp[:binary.PutUvarint(tmp[:], uint64(DefaultMaxFrameEvents)+1)]

	for _, tc := range cases {
		var got []int32
		_, err := DecodeBinary(bytes.NewReader(tc.payload), tc.n, 0, collect(&got))
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: err = %v, want *FormatError", tc.name, err)
		}
	}
}

// TestDecodeBinaryPartialApplication pins the at-least-once contract:
// frames decoded before the malformed point are applied and counted.
func TestDecodeBinaryPartialApplication(t *testing.T) {
	good := encodeFrames([]uint64{5, 6, 7})
	bad := append(append([]byte{}, good...), 0x80) // valid frame, then truncated prefix
	var got []int32
	applied, err := DecodeBinary(bytes.NewReader(bad), 100, 0, collect(&got))
	if err == nil {
		t.Fatal("truncated payload decoded cleanly")
	}
	if applied != 3 || len(got) != 3 {
		t.Fatalf("applied = %d (sink saw %d), want 3", applied, len(got))
	}
}

// TestDecodeFlushBoundary crosses the internal batch-flush threshold in
// both formats: every event must be applied exactly once. (Regression:
// the ndjson parser once flushed a stale copy of the staging buffer
// mid-line, double-applying the prefix of any payload past the
// threshold.)
func TestDecodeFlushBoundary(t *testing.T) {
	const total = 3*decodeBatchLen + 17
	events := make([]uint64, total)
	counts := func(got []int32) map[int32]int64 {
		m := make(map[int32]int64)
		for _, v := range got {
			m[v]++
		}
		return m
	}
	for i := range events {
		events[i] = uint64(i % 1000)
	}

	var fromBinary []int32
	applied, err := DecodeBinary(bytes.NewReader(encodeFrames(events)), 1000, 0, collect(&fromBinary))
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if applied != total || len(fromBinary) != total {
		t.Fatalf("binary: applied %d events (sink saw %d), want %d", applied, len(fromBinary), total)
	}

	var sb strings.Builder
	for _, v := range events {
		fmt.Fprintf(&sb, "%d\n", v)
	}
	var fromNDJSON []int32
	applied, err = DecodeNDJSON(strings.NewReader(sb.String()), 1000, collect(&fromNDJSON))
	if err != nil {
		t.Fatalf("DecodeNDJSON: %v", err)
	}
	if applied != total || len(fromNDJSON) != total {
		t.Fatalf("ndjson: applied %d events (sink saw %d), want %d", applied, len(fromNDJSON), total)
	}

	want := make(map[int32]int64)
	for _, v := range events {
		want[int32(v)]++
	}
	for name, got := range map[string]map[int32]int64{"binary": counts(fromBinary), "ndjson": counts(fromNDJSON)} {
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: element %d applied %d times, want %d", name, k, got[k], v)
			}
		}
	}

	// One giant array line crosses the threshold inside a single
	// parseEventLine call — the exact shape of the regression.
	var arr strings.Builder
	arr.WriteByte('[')
	for i := 0; i < total; i++ {
		if i > 0 {
			arr.WriteByte(',')
		}
		fmt.Fprintf(&arr, "%d", i%1000)
	}
	arr.WriteString("]\n")
	var fromArray []int32
	applied, err = DecodeNDJSON(strings.NewReader(arr.String()), 1000, collect(&fromArray))
	if err != nil {
		t.Fatalf("DecodeNDJSON(array): %v", err)
	}
	if applied != total || len(fromArray) != total {
		t.Fatalf("array line: applied %d events (sink saw %d), want %d", applied, len(fromArray), total)
	}
}

func TestDecodeNDJSON(t *testing.T) {
	input := "0\n5\n\n[1, 2,3]\n  42 \n[]\n[ 7 ]\n"
	var got []int32
	applied, err := DecodeNDJSON(strings.NewReader(input), 100, collect(&got))
	if err != nil {
		t.Fatalf("DecodeNDJSON: %v", err)
	}
	want := []int32{0, 5, 1, 2, 3, 42, 7}
	if applied != int64(len(want)) {
		t.Fatalf("applied = %d, want %d", applied, len(want))
	}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("event %d = %d, want %d", i, got[i], v)
		}
	}
}

func TestDecodeNDJSONMalformed(t *testing.T) {
	cases := []string{
		"abc\n",                   // not a number
		"-1\n",                    // negative
		"100\n",                   // out of range for n=100
		"[1, 2\n",                 // unterminated array
		"[1 2]\n",                 // missing comma
		"5 extra\n",               // trailing garbage
		"1.5\n",                   // fraction: trailing garbage after "1"
		"999999999999999999999\n", // overflows long before parsing ends
	}
	for _, input := range cases {
		var got []int32
		_, err := DecodeNDJSON(strings.NewReader(input), 100, collect(&got))
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("%q: err = %v, want *FormatError", input, err)
		}
	}
}

// FuzzIngestDecoder is the satellite fuzz target: arbitrary bytes
// through BOTH decoders must either decode cleanly or fail with a
// typed *FormatError — never panic, and never emit an out-of-range
// event (the accumulator panics on those, so the sink asserts).
func FuzzIngestDecoder(f *testing.F) {
	f.Add([]byte("0\n[1,2,3]\n"), 100)
	f.Add(encodeFrames([]uint64{1, 2, 3}), 100)
	f.Add([]byte{0x80, 0x80, 0x80}, 7)
	f.Add([]byte("["), 1)
	f.Add([]byte("9999999999999999999999999999"), 10)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 1 {
			n = 1
		}
		if n > 1<<20 {
			n = 1 << 20
		}
		var seen int64
		sink := func(values []int32) {
			seen += int64(len(values))
			for _, v := range values {
				if v < 0 || int(v) >= n {
					t.Fatalf("decoder emitted out-of-range event %d for n=%d", v, n)
				}
			}
		}
		for _, dec := range []func() (int64, error){
			func() (int64, error) { return DecodeBinary(bytes.NewReader(data), n, 0, sink) },
			func() (int64, error) { return DecodeNDJSON(bytes.NewReader(data), n, sink) },
		} {
			seen = 0
			applied, err := dec()
			if err != nil {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("n=%d: non-FormatError failure: %v", n, err)
				}
			}
			if applied != seen {
				t.Fatalf("n=%d: decoder reported %d applied events but the sink saw %d", n, applied, seen)
			}
		}
	})
}
