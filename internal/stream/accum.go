package stream

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/oracle"
)

// Sharded streaming count accumulator.
//
// The ingestion engine's job is to turn a firehose of raw events — POSTed
// by clients in batches — into the per-element count vector the tester
// runs over, at a per-event cost of roughly one integer increment and
// with no contention between concurrent ingest batches. The layout:
//
//   - The domain [0, n) is split across a fixed power-of-two number of
//     shards. Dense accumulators give each shard a CONTIGUOUS element
//     range backed by a private []int64 (separately allocated, so two
//     shards never share a cache line — the same discipline as the
//     striped pool counters); sparse accumulators (huge domains) give
//     each shard an open-addressed int32→int64 table addressed by a
//     mixed hash of the element.
//   - Ingest partitions a decoded batch into per-shard staging buffers
//     (reused via a pool, no per-event allocation), then applies each
//     shard's stage under that shard's lock: the lock is taken once per
//     (batch, shard), so concurrent batches contend only when they carry
//     events for the same shard at the same instant.
//   - Sliding windows keep G generation sub-tallies per shard. Ingest
//     lands in the current generation; Rotate advances the clock and
//     clears the slot that falls out of the window; Snapshot folds every
//     live generation. G = 1 means an infinite (never-rotated) window.
//
// Concurrency contract: Ingest may be called from any number of
// goroutines concurrently. Rotate and Snapshot take the accumulator's
// exclusive lock, so they observe (and delimit) a quiescent tally —
// ingest batches are atomic with respect to snapshots.
type Accumulator struct {
	n      int
	shards []accShard
	gens   int
	width  int  // dense: elements per shard (contiguous ranges)
	dense  bool // backing choice, fixed at construction
	mask   uint32

	// mu is the ingest/snapshot phase lock: Ingest holds it shared (the
	// per-shard locks serialize same-shard writers), Rotate and Snapshot
	// hold it exclusively so the generation clock and the fold observe a
	// quiescent accumulator.
	mu        sync.RWMutex
	cur       int   // current generation slot, advanced by Rotate under mu
	rotations int64 // Rotate calls so far

	// stagePool recycles the per-batch partition scratch so steady-state
	// ingest performs no allocation.
	stagePool sync.Pool
}

// accShard is one shard: a lock plus one tally per generation. The
// trailing pad keeps adjacent shards' locks off a shared cache line.
type accShard struct {
	mu       sync.Mutex
	gens     []genTally
	ingested int64 // all-time events applied through this shard
	_        [40]byte
}

// genTally is one generation's counts for one shard: exactly one of
// dense/sparse is live.
type genTally struct {
	dense  []int64
	sparse openTable
	total  int64
}

// AccumConfig configures an Accumulator.
type AccumConfig struct {
	// N is the domain size (events are values in [0, N)). Required.
	N int
	// Shards is the shard count; rounded up to a power of two. 0 means
	// 4× GOMAXPROCS (rounded up), bounded below by 1.
	Shards int
	// Generations is the number of window sub-tallies (1 = infinite
	// window, never rotated). 0 means 1.
	Generations int
	// ForceSparse forces the open-addressed backing regardless of the
	// dense/sparse crossover heuristic (tests; huge-domain simulations).
	ForceSparse bool
}

// maxShards bounds the shard fan-out; beyond the core count shards only
// buy reduced lock contention, and 1024 padded shards is already far
// past any realistic ingest parallelism.
const maxShards = 1024

// NewAccumulator builds an accumulator for the given config.
func NewAccumulator(cfg AccumConfig) (*Accumulator, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("stream: accumulator domain %d must be positive", cfg.N)
	}
	gens := cfg.Generations
	if gens <= 0 {
		gens = 1
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4 * runtime.GOMAXPROCS(0)
	}
	if shards > maxShards {
		shards = maxShards
	}
	s := 1
	for s < shards {
		s <<= 1
	}
	if s > cfg.N { // never more shards than elements
		s = 1
		for s*2 <= cfg.N {
			s <<= 1
		}
	}
	a := &Accumulator{
		n:      cfg.N,
		gens:   gens,
		mask:   uint32(s - 1),
		shards: make([]accShard, s),
		// The backing follows the same crossover the tester's own count
		// vectors use; ingest tallies are expected to be at least
		// domain-sized, so the decision reduces to "is the domain small
		// enough for dense".
		dense: !cfg.ForceSparse && oracle.UseDense(cfg.N, cfg.N),
		width: (cfg.N + s - 1) / s,
	}
	for i := range a.shards {
		sh := &a.shards[i]
		sh.gens = make([]genTally, gens)
		if a.dense {
			lo, hi := a.shardRange(i)
			for g := range sh.gens {
				sh.gens[g].dense = make([]int64, hi-lo)
			}
		}
	}
	a.stagePool.New = func() any {
		st := &staging{buf: make([][]int32, len(a.shards))}
		return st
	}
	return a, nil
}

// staging is the per-batch partition scratch: one reused value buffer
// per shard.
type staging struct {
	buf [][]int32
}

// shardRange returns the dense element range [lo, hi) shard i owns
// (possibly empty for trailing shards when n is not a multiple of the
// shard count).
func (a *Accumulator) shardRange(i int) (lo, hi int) {
	lo = i * a.width
	if lo > a.n {
		lo = a.n
	}
	hi = lo + a.width
	if hi > a.n {
		hi = a.n
	}
	return lo, hi
}

// shardOf maps an element to its shard: contiguous ranges for dense
// backings (preserves range locality within a shard), a mixed hash for
// sparse ones (spreads skewed domains across the shards).
func (a *Accumulator) shardOf(v int32) int {
	if a.dense {
		return int(v) / a.width
	}
	return int(uint32(uint64(uint32(v))*0x9e3779b97f4a7c15>>33) & a.mask)
}

// N returns the domain size.
func (a *Accumulator) N() int { return a.n }

// Dense reports whether the accumulator uses the dense backing.
func (a *Accumulator) Dense() bool { return a.dense }

// Shards returns the shard count.
func (a *Accumulator) Shards() int { return len(a.shards) }

// Generations returns the window sub-tally count.
func (a *Accumulator) Generations() int { return a.gens }

// Ingest applies one decoded batch of events. Every value must lie in
// [0, n) — the decoders guarantee this; Ingest panics otherwise (an
// out-of-range value reaching this point is a bug, not client input).
// Safe for concurrent use; the batch is applied atomically with respect
// to Rotate and Snapshot.
func (a *Accumulator) Ingest(values []int32) {
	if len(values) == 0 {
		return
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	cur := a.cur

	if len(a.shards) == 1 {
		// Single shard: skip the partition pass entirely.
		a.applyShard(&a.shards[0], 0, cur, values)
		return
	}

	st := a.stagePool.Get().(*staging)
	for _, v := range values {
		s := a.shardOf(v)
		st.buf[s] = append(st.buf[s], v)
	}
	for i := range st.buf {
		if len(st.buf[i]) == 0 {
			continue
		}
		a.applyShard(&a.shards[i], i, cur, st.buf[i])
		st.buf[i] = st.buf[i][:0]
	}
	a.stagePool.Put(st)
}

// applyShard folds one shard's staged values into its current
// generation under the shard lock.
func (a *Accumulator) applyShard(sh *accShard, idx, cur int, values []int32) {
	sh.mu.Lock()
	g := &sh.gens[cur]
	if g.dense != nil {
		lo := idx * a.width
		for _, v := range values {
			if int(v) < 0 || int(v) >= a.n {
				sh.mu.Unlock()
				panic(fmt.Sprintf("stream: event %d outside [0,%d)", v, a.n))
			}
			g.dense[int(v)-lo]++
		}
	} else {
		for _, v := range values {
			if int(v) < 0 || int(v) >= a.n {
				sh.mu.Unlock()
				panic(fmt.Sprintf("stream: event %d outside [0,%d)", v, a.n))
			}
			g.sparse.add(v, 1)
		}
	}
	g.total += int64(len(values))
	sh.ingested += int64(len(values))
	sh.mu.Unlock()
}

// Rotate advances the window clock: the oldest generation falls out of
// the window and its slot is cleared to receive new events. With a
// single generation, Rotate clears the whole tally (a tumbling window).
// Returns the number of events that fell out.
func (a *Accumulator) Rotate() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cur = (a.cur + 1) % a.gens
	var dropped int64
	for i := range a.shards {
		g := &a.shards[i].gens[a.cur]
		dropped += g.total
		if g.dense != nil {
			clear(g.dense)
		} else {
			g.sparse.reset()
		}
		g.total = 0
	}
	a.rotations++
	return dropped
}

// Rotations returns how many times the window has rotated.
func (a *Accumulator) Rotations() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.rotations
}

// WindowEvents returns the number of events currently inside the window
// (all live generations).
func (a *Accumulator) WindowEvents() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total int64
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for g := range sh.gens {
			total += sh.gens[g].total
		}
		sh.mu.Unlock()
	}
	return total
}

// TotalEvents returns every event ever ingested (monotone; rotations do
// not subtract).
func (a *Accumulator) TotalEvents() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total int64
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		total += sh.ingested
		sh.mu.Unlock()
	}
	return total
}

// SnapshotStats describes one Snapshot fold.
type SnapshotStats struct {
	// Events is the number of events in the snapshot (the Counts total).
	Events int64
	// Distinct is the number of distinct elements observed.
	Distinct int
	// OccupiedShards is the number of shards holding at least one event.
	OccupiedShards int
}

// Snapshot folds the live window into a pooled oracle.Counts — the
// count vector the tester runs over. The fold holds the exclusive phase
// lock, so the snapshot is a consistent cut: every batch is either
// fully in or fully out. The caller owns the returned Counts and should
// Release it once the run is done (the tester reads it only during
// oracle construction, so releasing right after NewCountsReplay is
// safe).
//
// The per-element tallies — and therefore the Counts contents — are
// identical to a serial fold of every ingested batch into one map, for
// any interleaving of concurrent ingests (pinned by the equivalence
// property test): addition commutes, and the shard layout only changes
// WHERE a count lives, never its value.
func (a *Accumulator) Snapshot() (*oracle.Counts, SnapshotStats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var stats SnapshotStats
	for i := range a.shards {
		sh := &a.shards[i]
		occupied := false
		for g := range sh.gens {
			if sh.gens[g].total > 0 {
				occupied = true
				stats.Events += sh.gens[g].total
			}
		}
		if occupied {
			stats.OccupiedShards++
		}
	}
	c := oracle.AcquireCounts(a.n, int(stats.Events))
	for i := range a.shards {
		sh := &a.shards[i]
		lo := i * a.width
		for g := range sh.gens {
			gt := &sh.gens[g]
			if gt.total == 0 {
				continue
			}
			if gt.dense != nil {
				for off, cnt := range gt.dense {
					if cnt != 0 {
						c.AddN(lo+off, int(cnt))
					}
				}
			} else {
				gt.sparse.forEach(func(v int32, cnt int64) {
					c.AddN(int(v), int(cnt))
				})
			}
		}
	}
	stats.Distinct = c.Distinct()
	return c, stats
}
