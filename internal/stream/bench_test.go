package stream

import (
	"testing"

	"repro/internal/rng"
)

func BenchmarkReservoirOffer(b *testing.B) {
	r := rng.New(1)
	rv, err := NewReservoir(1024, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rv.Offer(i & 0xffff)
	}
}

func BenchmarkWindowOffer(b *testing.B) {
	w, err := NewWindow(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Offer(i & 0xffff)
	}
}

func BenchmarkWindowSnapshot(b *testing.B) {
	w, _ := NewWindow(1 << 14)
	for i := 0; i < 1<<15; i++ {
		w.Offer(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Snapshot()
	}
}
